package repro

import (
	"testing"

	"repro/internal/metrics"
)

func TestFacadeRun(t *testing.T) {
	w := Representative17()[14] // H-WordCount
	v := Run(w, XeonE5645(), 100_000)
	if v[metrics.IPC] <= 0 {
		t.Fatal("façade Run produced no IPC")
	}
	if v[metrics.MixBranch] <= 0.05 || v[metrics.MixBranch] > 0.4 {
		t.Fatalf("branch ratio %v implausible", v[metrics.MixBranch])
	}
}

func TestFacadeRosters(t *testing.T) {
	if len(Representative17()) != 17 || len(MPI6()) != 6 || len(Roster77()) != 77 {
		t.Fatal("roster sizes wrong")
	}
}

func TestFacadeCharacterizeAndReduce(t *testing.T) {
	profiles := Characterize(MPI6(), XeonE5645(), 50_000)
	if len(profiles) != 6 {
		t.Fatalf("%d profiles", len(profiles))
	}
	red, err := Reduce(profiles, 3)
	if err != nil {
		t.Fatal(err)
	}
	if red.K != 3 {
		t.Fatalf("k = %d", red.K)
	}
}

func TestFacadeMachines(t *testing.T) {
	if XeonE5645().Cores != 6 || AtomD510().Cores != 2 {
		t.Fatal("machine presets wrong")
	}
}
