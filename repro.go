// Package repro is the public façade of the reproduction of
// "Characterization and Architectural Implications of Big Data
// Workloads" (Wang, Zhan, Jia, Han — ISPASS 2016 / arXiv:1506.07943).
//
// It re-exports the pieces a downstream user composes:
//
//   - workload rosters (the 17 representatives of Table 2, the six MPI
//     twins of §5.5, the 77-workload BigDataBench-like roster, the
//     comparator suites);
//   - machine models (Xeon E5645, Atom D510, the Fig. 6-9 cache
//     sweep);
//   - the 45-metric characterization vector;
//   - WCRT (profile → normalize → PCA → K-means → representatives);
//   - the per-table/figure experiment runners.
//
// See examples/ for runnable entry points and DESIGN.md for the system
// inventory.
package repro

import (
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

// Workload is one runnable workload (kernel x stack x dataset).
type Workload = workloads.Workload

// Profile is a workload's collected characterization.
type Profile = core.Profile

// Vector is the 45-metric characterization vector.
type Vector = metrics.Vector

// Machine is the composed per-core performance model.
type Machine = machine.Machine

// MachineConfig describes a modelled platform.
type MachineConfig = machine.Config

// Reduction is the outcome of the WCRT subset procedure.
type Reduction = core.Reduction

// Session caches experiment runs.
type Session = experiments.Session

// Engine runs the paper's tables and figures as a dependency-aware
// concurrent batch over one Session.
type Engine = experiments.Engine

// UnitResult is one executed experiment with its wall time.
type UnitResult = experiments.UnitResult

// XeonE5645 returns the paper's testbed platform model (Table 3).
func XeonE5645() MachineConfig { return machine.XeonE5645() }

// AtomD510 returns the paper's low-power comparison platform (Table 4).
func AtomD510() MachineConfig { return machine.AtomD510() }

// Representative17 returns the paper's Table 2 workload subset.
func Representative17() []Workload { return workloads.Representative17() }

// MPI6 returns the six MPI implementations of §5.5.
func MPI6() []Workload { return workloads.MPI6() }

// Roster77 returns the full BigDataBench-3.0-like roster.
func Roster77() []Workload { return workloads.Roster77() }

// Run executes one workload on a fresh machine and returns its
// characterization vector.
func Run(w Workload, cfg MachineConfig, budget int64) Vector {
	m := machine.New(cfg)
	workloads.Run(w, m, budget)
	m.Finish()
	return metrics.Compute(m)
}

// Characterize profiles a workload list in parallel on the given
// platform (the WCRT profiler).
func Characterize(list []Workload, cfg MachineConfig, budget int64) []Profile {
	p := &core.Profiler{Machine: cfg, Budget: budget}
	return p.ProfileAll(list)
}

// Reduce runs the WCRT analyzer over profiles: Gaussian normalization,
// PCA to 90% variance, K-means with k clusters (k <= 0 selects k
// automatically), representative selection.
func Reduce(profiles []Profile, k int) (*Reduction, error) {
	a := &core.Analyzer{ExplainTarget: 0.9, Seed: 0x5EED}
	return a.Reduce(profiles, k)
}

// Store is the content-keyed artifact store behind every memoized
// computation: dataset content, profile records, sweep curves and
// rendered experiment units.
type Store = artifact.Store

// StoreBackend is one persistence tier behind a Store: a local
// directory, an artifactd server, or a chain of tiers.
type StoreBackend = artifact.Backend

// GCResult summarizes one store GC sweep.
type GCResult = artifact.GCResult

// MemQuota bounds a Store's in-process memory tier: total resident
// bytes, entry idle age, and per-kind byte caps. Install it with
// Store.SetMemQuota; the zero value is unbounded.
type MemQuota = artifact.MemQuota

// ParseMemQuota parses a quota spec string — comma-separated size
// ("256MB"), idle age ("30m") and kind=size ("scenario-render=64MB")
// parts — into a MemQuota, the same grammar the CLIs' -mem-quota flag
// accepts.
func ParseMemQuota(spec string) (MemQuota, error) { return artifact.ParseQuotaSpec(spec) }

// NewStore returns an in-memory artifact store.
func NewStore() *Store { return artifact.New() }

// NewDiskStore returns an artifact store persisting under dir.
func NewDiskStore(dir string) (*Store, error) { return artifact.NewDisk(dir) }

// NewRemoteStore returns an artifact store persisting through the
// cmd/artifactd server at serverURL; with a non-empty cacheDir a local
// disk tier fronts the server (remote hits are promoted into it).
// Sessions on different machines sharing one server compute each
// artefact once between them and render byte-identical output.
func NewRemoteStore(cacheDir, serverURL string) (*Store, error) {
	return httpstore.OpenStore(cacheDir, serverURL, "")
}

// GCStore sweeps an on-disk store directory down to the given bounds:
// entries older than maxAge are removed, then the least recently used
// are evicted until the directory fits maxBytes (zero = unbounded).
// Safe to run while stores are filling; an evicted artefact is simply
// recomputed on next use.
func GCStore(dir string, maxBytes int64, maxAge time.Duration) (GCResult, error) {
	return artifact.GC(dir, maxBytes, maxAge)
}

// NewSession returns an experiment session with full budgets.
func NewSession() *Session { return experiments.NewSession(experiments.Default()) }

// NewQuickSession returns an experiment session with test budgets.
func NewQuickSession() *Session { return experiments.NewSession(experiments.Quick()) }

// NewPersistentSession returns a full-budget session whose artifacts —
// dataset content, 45-metric profiles, sweep curves — persist under
// dir: a later process warm-starts from the directory and recomputes
// nothing while producing byte-identical results.
//
// Dataset content is cached process-globally, so this call redirects
// the whole process's dataset caching to dir (datagen.SetStore) — the
// last NewPersistentSession wins for datasets. Use one persistent
// directory per process; results are unaffected either way (content is
// deterministic), only where datasets persist.
func NewPersistentSession(dir string) (*Session, error) {
	st, err := artifact.NewDisk(dir)
	if err != nil {
		return nil, err
	}
	datagen.SetStore(st)
	s := experiments.NewSession(experiments.Default())
	s.Store = st
	return s, nil
}

// NewRemoteSession is NewPersistentSession's network counterpart: a
// full-budget session whose artifacts persist through the
// cmd/artifactd server at serverURL, fronted by a local disk tier when
// cacheDir is non-empty. Sessions on different machines sharing one
// server compute each artefact — dataset content included — once
// between them and render byte-identical output.
//
// Like NewPersistentSession, this redirects the whole process's
// dataset caching to the returned store (datagen.SetStore); the last
// New*Session wins for datasets, results are unaffected either way.
func NewRemoteSession(cacheDir, serverURL string) (*Session, error) {
	st, err := httpstore.OpenStore(cacheDir, serverURL, "")
	if err != nil {
		return nil, err
	}
	datagen.SetStore(st)
	s := experiments.NewSession(experiments.Default())
	s.Store = st
	return s, nil
}

// NewEngine returns a concurrent experiment engine over s covering
// every table and figure of the paper.
func NewEngine(s *Session) *Engine { return &experiments.Engine{Session: s} }

// Scenario is a declarative ad-hoc experiment request: a cache sweep
// over any workload subset, budget and cache geometry, canonicalized
// so equivalent requests share one artifact identity (warm repeats are
// pure store I/O).
type Scenario = experiments.Scenario

// RunScenario computes (or fetches warm) and renders a scenario over
// the session, returning the rendered bytes.
func RunScenario(s *Session, spec Scenario) ([]byte, error) {
	return experiments.RunScenario(s, spec)
}

// Server is the reprod serving core: paper units and scenarios over a
// versioned HTTP API (/v1) with per-key request coalescing, a warm
// store fast path, fleet-wide rendezvous routing, async jobs and
// cancellation plumbed down to the simulators. cmd/reprod wraps it in
// a daemon; embed its Handler() to serve from your own process.
type Server = serve.Server

// ServerConfig sizes a Server.
type ServerConfig = serve.Config

// NewServer returns a serving core over cfg. The only error is an
// invalid fleet configuration (ServerConfig.Self / Peers).
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }
