// Command reprod serves the paper's tables, figures and ad-hoc
// scenarios on demand over HTTP — the request/response face of the
// reproduction pipeline. Where cmd/repro runs a batch and exits,
// reprod stays up: requests canonicalize into artifact keys, warm
// requests are answered straight from the store, cold ones are
// computed exactly once no matter how many clients ask (per-key
// request coalescing), and client disconnects cancel the simulation
// work they abandoned.
//
// Endpoints (see internal/serve): GET /v1/units/{unit},
// POST /v1/scenarios, POST /v1/jobs + GET /v1/jobs (paginated) +
// GET /v1/jobs/{id} + DELETE /v1/jobs/{id} for async batches,
// GET /v1/stats, GET /metrics (Prometheus text), GET /healthz. Legacy
// unversioned paths 308-redirect to their /v1 home.
//
// -cache-dir persists every artefact locally; -store-url shares them
// through a cmd/artifactd server (cold starts issue one bulk closure
// download instead of per-key fetches); with both, the disk tier
// fronts the server. Output bytes are identical to cmd/repro's for the
// same options — a unit fetched over HTTP diffs clean against the
// batch CLI's file.
//
// -self + -peers turn N replicas into a fleet: every artefact key is
// rendezvous-hashed to one home replica and cold requests are
// forwarded there, so per-key coalescing holds fleet-wide. Point every
// replica at the same -store-url so warm artefacts are shared too.
// Every peer carries a consecutive-failure circuit breaker
// (-peer-fail-limit / -peer-cooldown): a dead replica's keys are
// rerouted over the healthy members until a half-open probe recovers
// it. GET /readyz splits readiness (draining / store degraded → 503)
// from /healthz liveness.
//
// -fault-spec is for testing only: it injects latency, errors,
// connection resets, truncated bodies and up/down flapping windows
// into the serving endpoints (probes and stats stay clean) so chaos CI
// can exercise the resilience machinery against a real process.
//
// SIGTERM / SIGINT drains: in-flight requests and running jobs finish,
// queued jobs are cancelled, new submissions are refused 503, then the
// process exits 0.
//
// Usage:
//
//	reprod [-addr :9555] [-quick] [-parallel N] [-workers N] [-block N]
//	       [-engine stackdist|replay]
//	       [-cache-dir DIR] [-store-url URL] [-store-token T]
//	       [-self URL] [-peers URL,URL,...]
//	       [-peer-fail-limit N] [-peer-cooldown D] [-fault-spec SPEC]
//	       [-gc SPEC] [-gc-interval D] [-mem-quota SPEC] [-drain-timeout D]
//	       [-event-buffer N] [-log-level debug|info|warn|error]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9555", "listen address")
	quick := flag.Bool("quick", false, "serve reduced instruction budgets (tests/CI)")
	parallel := flag.Int("parallel", 0, "bound workers inside each computation (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "bound concurrently executing computations (0 = GOMAXPROCS)")
	block := flag.Int("block", 0, "trace-replay block size (0 = default); output is byte-identical for every size")
	engineFlag := flag.String("engine", "", "miss-ratio sweep engine: stackdist (single-pass, default) or replay (concrete-cache oracle); served bytes are identical for both")
	cacheDir := flag.String("cache-dir", "", "persist artifacts under this directory and warm-start from it")
	storeURL := flag.String("store-url", "", "share artifacts through the artifactd server at this URL")
	storeToken := flag.String("store-token", "", "bearer token for a -token'd artifactd server (default $REPRO_STORE_TOKEN)")
	gcSpec := flag.String("gc", "", `LRU-sweep the -cache-dir to this bound periodically: "4GB", "168h", "4GB,168h"`)
	gcInterval := flag.Duration("gc-interval", 10*time.Minute, "how often to run the -gc and -mem-quota age sweeps")
	memQuota := flag.String("mem-quota", "", `bound the in-process artifact cache: size, idle age and/or kind=size, comma-separated ("256MB", "256MB,30m,scenario-render=64MB")`)
	self := flag.String("self", "", `this replica's advertised base URL, e.g. "http://10.0.0.3:9555" (fleet mode)`)
	peers := flag.String("peers", "", "comma-separated advertised base URLs of every fleet replica (-self may be repeated in the list)")
	peerFailLimit := flag.Int("peer-fail-limit", 0, "consecutive proxy transport failures that sideline a fleet peer (0 = default 3)")
	peerCooldown := flag.Duration("peer-cooldown", 0, "how long a sidelined peer's breaker stays open before a half-open probe (0 = default 5s)")
	faultSpec := flag.String("fault-spec", "", `TESTING ONLY: inject faults into served requests, e.g. "seed=3,up=6s,down=4s" (see internal/faultinject; probe and stats endpoints stay clean)`)
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight work")
	eventBuffer := flag.Int("event-buffer", 0, "per-SSE-subscriber event ring size (0 = default 256); a subscriber that falls further behind sheds its oldest events")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	logger, err := newLogger("reprod", *logLevel)
	if err != nil {
		fatal(err)
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}

	engine, err := experiments.ParseSweepEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Opt: opt, Engine: engine, Parallelism: *parallel, BlockSize: *block, Workers: *workers,
		Self: *self, PeerFailLimit: *peerFailLimit, PeerCooldown: *peerCooldown,
		EventBuffer: *eventBuffer,
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.Peers = append(cfg.Peers, p)
		}
	}
	if cfg.Self != "" {
		for _, p := range cfg.Peers {
			logger.Debug("fleet member configured", "self", cfg.Self, "peer", p)
		}
	}
	if *memQuota != "" {
		q, err := artifact.ParseQuotaSpec(*memQuota)
		if err != nil {
			fatal(err)
		}
		cfg.MemQuota = q
	}
	if *cacheDir != "" || *storeURL != "" {
		st, err := httpstore.OpenStore(*cacheDir, *storeURL, *storeToken)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
		datagen.SetStore(st)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	// An idle store receives no charges, so MaxAge needs a ticker to
	// expire entries nobody is asking for anymore.
	if cfg.MemQuota.MaxAge > 0 {
		go func() {
			for range time.Tick(*gcInterval) {
				srv.Store().SweepMem()
			}
		}()
	}

	if *gcSpec != "" {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-gc needs -cache-dir"))
		}
		policy, err := artifact.ParseGCSpec(*gcSpec)
		if err != nil {
			fatal(err)
		}
		sweep := func() {
			res, err := artifact.GC(*cacheDir, policy.MaxBytes, policy.MaxAge)
			if err != nil {
				logger.Error("gc sweep failed", "dir", *cacheDir, "error", err)
				return
			}
			logger.Info("gc sweep", "dir", *cacheDir, "result", res.String())
		}
		sweep()
		go func() {
			for range time.Tick(*gcInterval) {
				sweep()
			}
		}()
	}

	handler := srv.Handler()
	if *faultSpec != "" {
		spec, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		// The probe/stats surface stays clean so CI (and a confused
		// operator) can always see what the chaos is doing to the
		// replica: only the serving endpoints misbehave.
		clean, faulty := handler, faultinject.New(spec).Handler(handler)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz", "/readyz", "/metrics", "/v1/stats":
				clean.ServeHTTP(w, r)
			default:
				faulty.ServeHTTP(w, r)
			}
		})
		logger.Warn(fmt.Sprintf("FAULT INJECTION ACTIVE (%s) — testing only, never production", spec))
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-stop
		logger.Info("draining (in-flight work finishes, queued jobs abort)", "signal", sig.String())
		srv.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", "error", err)
		}
		if err := srv.Drain(ctx); err != nil {
			logger.Error("job drain", "error", err)
		}
		close(done)
	}()

	logger.Info("serving experiments", "addr", *addr, "quick", *quick)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
	logger.Info("drained, exiting")
}

// newLogger builds the process logger: structured key=value lines on
// stderr, every record tagged with the daemon name, bounded below by
// the -log-level flag.
func newLogger(component, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q is not debug, info, warn or error", level)
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	return slog.New(h).With("component", component), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprod:", err)
	os.Exit(1)
}
