// Command reprobench load-tests a reprod fleet against committed goal
// files and fails on regression — the serving-layer gate next to the
// microbenchmark baseline (BENCH_baseline.json + benchguard).
//
// It loads one goal directory (a machine class plus its cases, see
// internal/loadgen and bench/goals/README.md), ramps each case's
// scenario mix over the target replicas via the v1 API, records
// throughput, p50/p90/p99 latency, fleet-wide compute counters
// (/v1/stats deltas) and — given -pids — peak RSS, then compares every
// number against the case's goals and the machine class's limits.
//
// Exit status 0 means every goal held; 1 means at least one goal
// regressed (each violation is printed benchguard-style); 2 means the
// run itself failed (unreachable fleet, bad goal files).
//
// Usage:
//
//	reprobench -goals bench/goals/ci-1core \
//	           -targets http://127.0.0.1:19561,http://127.0.0.1:19562 \
//	           [-out report.json] [-pids 123,456] [-salt S] [-timeout 2m]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/loadgen"
)

func main() {
	goals := flag.String("goals", "", "goal directory (machine.yaml + cases/*/experiment.yaml)")
	targets := flag.String("targets", "", "comma-separated reprod replica base URLs")
	out := flag.String("out", "", "write the JSON report here (\"\" = stdout only)")
	pids := flag.String("pids", "", "comma-separated PIDs whose summed RSS is sampled (replicas + artifactd)")
	salt := flag.String("salt", "", "cold-key salt (\"\" = derived from the clock; fix it to reproduce a run's keys)")
	timeout := flag.Duration("timeout", 0, "per-request timeout (0 = the suite's machine.yaml request_timeout, or 2m)")
	flag.Parse()
	if *goals == "" || *targets == "" {
		fmt.Fprintln(os.Stderr, "reprobench: -goals and -targets are required")
		os.Exit(2)
	}

	suite, err := loadgen.LoadSuite(*goals)
	if err != nil {
		fatal(err)
	}
	r := &loadgen.Runner{
		Salt: *salt,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "reprobench: "+format+"\n", args...)
		},
	}
	if *timeout > 0 {
		// An explicit flag overrides the suite's request_timeout; left
		// at 0, the runner reads it from machine.yaml (2m fallback).
		r.Client = &http.Client{Timeout: *timeout}
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			r.Targets = append(r.Targets, t)
		}
	}
	for _, p := range strings.Split(*pids, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pid, err := strconv.Atoi(p)
			if err != nil {
				fatal(fmt.Errorf("bad -pids entry %q: %w", p, err))
			}
			r.PIDs = append(r.PIDs, pid)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	report, err := r.Run(ctx, suite)
	if err != nil {
		fatal(err)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if len(report.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "reprobench: %d goal(s) regressed on machine class %s:\n",
			len(report.Failures), suite.Machine.Name)
		for _, f := range report.Failures {
			fmt.Fprintf(os.Stderr, "reprobench:   FAIL %s\n", f)
		}
		fmt.Fprintln(os.Stderr, "reprobench: if this is an accepted change, recalibrate the goal files under", *goals)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "reprobench: all %d case(s) passed on machine class %s\n",
		len(report.Cases), suite.Machine.Name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprobench:", err)
	os.Exit(2)
}
