// Command artifactd serves a content-keyed artifact store directory
// over HTTP, so engine shards on different machines share one cache:
// every shard points -store-url at this server, each artefact
// (dataset content, profile record, sweep curves, rendered unit) is
// computed by exactly one shard and downloaded by the rest, and the
// merged outputs are byte-identical to a single full run.
//
// Endpoints: GET/HEAD/PUT /artifact/{id}, POST /closure (bulk
// download of many entries in one round trip — how a cold shard or
// reprod instance warms up), GET /stats (JSON counters), GET
// /healthz. Uploads are verified — an entry whose recorded identity
// does not hash to its id is rejected — and entries are re-verified
// on the way out, so corruption anywhere costs a recomputation, never
// a wrong result.
//
// With -gc the entry directory is swept at startup and every
// -gc-interval: entries older than the age bound are removed, and the
// least recently used entries are evicted until the directory fits the
// size bound. Eviction is safe at any moment — an evicted artefact is
// recomputed by the next shard that needs it.
//
// With -token (or $ARTIFACTD_TOKEN) every artifact request must carry
// a matching "Authorization: Bearer" header — set it before exposing
// the server beyond a trusted LAN; clients pass the token via
// -store-token or $REPRO_STORE_TOKEN. /stats, /metrics (Prometheus
// text format) and /healthz stay open for probes and scrapers.
//
// -fault-spec is for testing only: it injects latency, errors,
// connection resets, truncated bodies and up/down windows into the
// artifact endpoints (probes and stats stay clean), so chaos CI can
// prove that clients treat a misbehaving store as misses-and-retries,
// never as wrong results.
//
// Usage:
//
//	artifactd [-addr :9444] [-dir DIR] [-token SECRET]
//	          [-gc "4GB,168h"] [-gc-interval 10m] [-fault-spec SPEC]
//	          [-log-level debug|info|warn|error]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/artifactd"
	"repro/internal/faultinject"
)

func main() {
	addr := flag.String("addr", ":9444", "listen address")
	dir := flag.String("dir", ".artifactd", "entry directory to serve (created if absent)")
	token := flag.String("token", os.Getenv("ARTIFACTD_TOKEN"),
		"require this bearer token on artifact requests (default $ARTIFACTD_TOKEN; empty = open server)")
	gcSpec := flag.String("gc", "", `bound the entry directory, as a size, an age, or both: "4GB", "168h", "4GB,168h" (LRU sweep; empty = never collect)`)
	gcInterval := flag.Duration("gc-interval", 10*time.Minute, "how often to run the -gc sweep")
	faultSpec := flag.String("fault-spec", "", `TESTING ONLY: inject faults into artifact requests, e.g. "seed=7,err=0.3,truncate=0.1" (see internal/faultinject; probe and stats endpoints stay clean)`)
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	logger, err := newLogger("artifactd", *logLevel)
	if err != nil {
		fatal(err)
	}

	srv, err := artifactd.New(*dir)
	if err != nil {
		fatal(err)
	}
	if *token != "" {
		srv.SetToken(*token)
		logger.Info("bearer-token auth enabled")
	}

	if *gcSpec != "" {
		policy, err := artifact.ParseGCSpec(*gcSpec)
		if err != nil {
			fatal(err)
		}
		sweep := func() {
			res, err := artifact.GC(srv.Dir(), policy.MaxBytes, policy.MaxAge)
			if err != nil {
				logger.Error("gc sweep failed", "dir", srv.Dir(), "error", err)
				return
			}
			logger.Info("gc sweep", "dir", srv.Dir(), "result", res.String())
		}
		sweep()
		go func() {
			for range time.Tick(*gcInterval) {
				sweep()
			}
		}()
	}

	handler := srv.Handler()
	if *faultSpec != "" {
		spec, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		// Probes and counters stay clean: chaos CI reads /stats and
		// /metrics to see how clients rode out the injected faults.
		clean, faulty := handler, faultinject.New(spec).Handler(handler)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz", "/stats", "/metrics":
				clean.ServeHTTP(w, r)
			default:
				faulty.ServeHTTP(w, r)
			}
		})
		logger.Warn(fmt.Sprintf("FAULT INJECTION ACTIVE (%s) — testing only, never production", spec))
	}

	logger.Info("serving artifacts", "dir", srv.Dir(), "addr", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatal(err)
	}
}

// newLogger builds the process logger: structured key=value lines on
// stderr, every record tagged with the daemon name, bounded below by
// the -log-level flag.
func newLogger(component, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q is not debug, info, warn or error", level)
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	return slog.New(h).With("component", component), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artifactd:", err)
	os.Exit(1)
}
