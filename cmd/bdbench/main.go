// Command bdbench runs big data workloads on the modelled machines and
// prints their micro-architectural characterization, one row per
// workload — the per-workload view behind the paper's Figs. 1-5.
//
// Rows are content-keyed artifacts: with -cache-dir each (machine,
// workload, budget) row persists, so a repeated run re-executes
// nothing, and -shard i/n lets n processes split a set (each prints
// only its interleaved slice) while sharing the store — across
// machines when they share a cmd/artifactd server via -store-url. -gc
// bounds the -cache-dir (LRU sweep) after the run.
//
// Usage:
//
//	bdbench [-budget N] [-machine xeon|atom] [-set reps|mpi|all|roster]
//	        [-parallel N] [-block N] [-cache-dir DIR] [-store-url URL]
//	        [-store-token T] [-gc SPEC] [-shard i/n] [id ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/conc"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

// row is one workload's printed characterization — the serializable
// artefact bdbench caches per (machine, workload signature, budget).
type row struct {
	ID   string
	V    metrics.Vector
	FW   float64
	MCRI string
}

func main() {
	budget := flag.Int64("budget", 2_000_000, "instruction budget per workload")
	mach := flag.String("machine", "xeon", "machine model: xeon or atom")
	set := flag.String("set", "reps", "workload set: reps, mpi, all (reps+mpi) or roster")
	parallel := flag.Int("parallel", 0, "bound concurrent workload runs (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := flag.String("cache-dir", "", "persist per-workload rows and dataset content under this directory and warm-start from it")
	storeURL := flag.String("store-url", "", "share rows through the artifactd server at this URL (combine with -cache-dir for a local tier in front)")
	storeToken := flag.String("store-token", "", "bearer token for a -token'd artifactd server (default $REPRO_STORE_TOKEN)")
	gcSpec := flag.String("gc", "", `after the run, LRU-sweep the -cache-dir down to this bound: a size, an age, or both ("4GB", "168h", "4GB,168h")`)
	shardSpec := flag.String("shard", "", "run only slice i of n of the set, as i/n (0-based)")
	block := flag.Int("block", 0, "trace-replay block size in instructions (0 = default); output is byte-identical for every size")
	engineFlag := flag.String("engine", "", "miss-ratio sweep engine: stackdist or replay (uniform across the repro CLIs; characterization rows run the full machine model and are identical under either)")
	memQuota := flag.String("mem-quota", "", `bound the in-process artifact cache: size, idle age and/or kind=size, comma-separated ("256MB", "256MB,datagen=96MB")`)
	flag.Parse()

	if _, err := experiments.ParseSweepEngine(*engineFlag); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(2)
	}

	var list []workloads.Workload
	switch *set {
	case "reps":
		list = workloads.Representative17()
	case "mpi":
		list = workloads.MPI6()
	case "all":
		list = append(workloads.Representative17(), workloads.MPI6()...)
	case "roster":
		list = workloads.Roster77()
	default:
		fmt.Fprintf(os.Stderr, "unknown set %q\n", *set)
		os.Exit(2)
	}
	if ids := flag.Args(); len(ids) > 0 {
		want := map[string]bool{}
		for _, id := range ids {
			want[strings.ToLower(id)] = true
		}
		var filtered []workloads.Workload
		for _, w := range list {
			if want[strings.ToLower(w.ID)] {
				filtered = append(filtered, w)
			}
		}
		list = filtered
	}
	if *shardSpec != "" {
		i, n, err := experiments.ParseShard(*shardSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			os.Exit(2)
		}
		list = workloads.ShardSlice(list, i, n)
	}

	sweep, err := artifact.GCSweeper(*cacheDir, *gcSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(2)
	}
	store := artifact.Default()
	if *cacheDir != "" || *storeURL != "" {
		st, err := httpstore.OpenStore(*cacheDir, *storeURL, *storeToken)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			os.Exit(1)
		}
		store = st
		datagen.SetStore(st)
	}
	if *memQuota != "" {
		q, err := artifact.ParseQuotaSpec(*memQuota)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			os.Exit(2)
		}
		store.SetMemQuota(q)
	}

	cfg := machine.XeonE5645()
	if *mach == "atom" {
		cfg = machine.AtomD510()
	}

	fmt.Printf("%-18s %5s %6s %6s %6s %6s %6s %5s %6s %5s %5s %5s %5s %5s %6s %6s %6s %5s %6s %6s %6s %6s %6s\n",
		"workload", "IPC", "L1I", "L1D", "L2", "L2I%", "L3", "brM%", "mCRI", "br%", "ld%", "st%", "int%", "fp%",
		"ITLB", "DTLB", "codeKB", "fw%", "ILP", "MLP", "front%", "imS/KI", "mpS/KI")
	// Each workload's row fills through the artifact store on its own
	// machine model; the fan-out runs on a bounded worker pool and rows
	// stay in input order.
	type rowKey struct {
		Machine  string
		Workload string
		Budget   int64
	}
	rows := make([]row, len(list))
	errs := make([]error, len(list))
	conc.ForEach(*parallel, len(list), func(i int) {
		w := list[i]
		key := artifact.KeyOf("bdbench-row", rowKey{cfg.Name, workloads.Signature(w), *budget})
		rows[i], errs[i] = artifact.GetChecked(store, key,
			func(r row) bool { return r.ID == w.ID },
			func() (row, error) {
				m := machine.New(cfg)
				res := workloads.RunBlock(w, m, *budget, *block)
				m.Finish()
				v := metrics.Compute(m)
				st := m.BP.Stats()
				tot := float64(st.Mispredicts)
				if tot == 0 {
					tot = 1
				}
				mcri := fmt.Sprintf("%2.0f/%2.0f/%2.0f",
					100*float64(st.MisCond)/tot, 100*float64(st.MisRet)/tot, 100*float64(st.MisInd)/tot)
				return row{ID: w.ID, V: v, FW: res.FrameworkShare, MCRI: mcri}, nil
			})
	})
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			os.Exit(1)
		}
	}
	for _, r := range rows {
		v := r.V
		fmt.Printf("%-18s %5.2f %6.1f %6.1f %6.1f %6.0f %6.2f %5.1f %6s %5.1f %5.1f %5.1f %5.1f %5.1f %6.3f %6.3f %6.0f %5.1f %6.1f %6.1f %6.1f %6.0f %6.0f\n",
			r.ID, v[metrics.IPC], v[metrics.L1IMPKI], v[metrics.L1DMPKI], v[metrics.L2MPKI],
			v[metrics.L2InstShare]*100, v[metrics.L3MPKI],
			v[metrics.BrMispredictRatio]*100, r.MCRI,
			v[metrics.MixBranch]*100, v[metrics.MixLoad]*100, v[metrics.MixStore]*100,
			v[metrics.MixInt]*100, v[metrics.MixFP]*100,
			v[metrics.ITLBMPKI], v[metrics.DTLBMPKI],
			v[metrics.CodeFootprintKB], r.FW*100, v[metrics.ILP], v[metrics.MLP],
			v[metrics.FrontStallRatio]*100,
			v[metrics.IMissStallPerKI], v[metrics.MispredictStallPerKI])
	}
	if sweep != nil {
		res, err := sweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bdbench: gc: %s\n", res)
	}
}
