// Command bdbench runs big data workloads on the modelled machines and
// prints their micro-architectural characterization, one row per
// workload — the per-workload view behind the paper's Figs. 1-5.
//
// Usage:
//
//	bdbench [-budget N] [-machine xeon|atom] [-set reps|mpi|all|roster] [id ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/conc"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

func main() {
	budget := flag.Int64("budget", 2_000_000, "instruction budget per workload")
	mach := flag.String("machine", "xeon", "machine model: xeon or atom")
	set := flag.String("set", "reps", "workload set: reps, mpi, all (reps+mpi) or roster")
	parallel := flag.Int("parallel", 0, "bound concurrent workload runs (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	var list []workloads.Workload
	switch *set {
	case "reps":
		list = workloads.Representative17()
	case "mpi":
		list = workloads.MPI6()
	case "all":
		list = append(workloads.Representative17(), workloads.MPI6()...)
	case "roster":
		list = workloads.Roster77()
	default:
		fmt.Fprintf(os.Stderr, "unknown set %q\n", *set)
		os.Exit(2)
	}
	if ids := flag.Args(); len(ids) > 0 {
		want := map[string]bool{}
		for _, id := range ids {
			want[strings.ToLower(id)] = true
		}
		var filtered []workloads.Workload
		for _, w := range list {
			if want[strings.ToLower(w.ID)] {
				filtered = append(filtered, w)
			}
		}
		list = filtered
	}

	cfg := machine.XeonE5645()
	if *mach == "atom" {
		cfg = machine.AtomD510()
	}

	fmt.Printf("%-18s %5s %6s %6s %6s %6s %6s %5s %6s %5s %5s %5s %5s %5s %6s %6s %6s %5s %6s %6s %6s %6s %6s\n",
		"workload", "IPC", "L1I", "L1D", "L2", "L2I%", "L3", "brM%", "mCRI", "br%", "ld%", "st%", "int%", "fp%",
		"ITLB", "DTLB", "codeKB", "fw%", "ILP", "MLP", "front%", "imS/KI", "mpS/KI")
	type row struct {
		id   string
		v    metrics.Vector
		fw   float64
		mCRI string
	}
	// Each workload runs on its own machine model, so characterization
	// fans out across a bounded worker pool; rows stay in input order.
	rows := make([]row, len(list))
	conc.ForEach(*parallel, len(list), func(i int) {
		w := list[i]
		m := machine.New(cfg)
		res := workloads.Run(w, m, *budget)
		m.Finish()
		v := metrics.Compute(m)
		st := m.BP.Stats()
		tot := float64(st.Mispredicts)
		if tot == 0 {
			tot = 1
		}
		mcri := fmt.Sprintf("%2.0f/%2.0f/%2.0f",
			100*float64(st.MisCond)/tot, 100*float64(st.MisRet)/tot, 100*float64(st.MisInd)/tot)
		rows[i] = row{id: w.ID, v: v, fw: res.FrameworkShare, mCRI: mcri}
	})
	for _, r := range rows {
		v := r.v
		fmt.Printf("%-18s %5.2f %6.1f %6.1f %6.1f %6.0f %6.2f %5.1f %6s %5.1f %5.1f %5.1f %5.1f %5.1f %6.3f %6.3f %6.0f %5.1f %6.1f %6.1f %6.1f %6.0f %6.0f\n",
			r.id, v[metrics.IPC], v[metrics.L1IMPKI], v[metrics.L1DMPKI], v[metrics.L2MPKI],
			v[metrics.L2InstShare]*100, v[metrics.L3MPKI],
			v[metrics.BrMispredictRatio]*100, r.mCRI,
			v[metrics.MixBranch]*100, v[metrics.MixLoad]*100, v[metrics.MixStore]*100,
			v[metrics.MixInt]*100, v[metrics.MixFP]*100,
			v[metrics.ITLBMPKI], v[metrics.DTLBMPKI],
			v[metrics.CodeFootprintKB], r.fw*100, v[metrics.ILP], v[metrics.MLP],
			v[metrics.FrontStallRatio]*100,
			v[metrics.IMissStallPerKI], v[metrics.MispredictStallPerKI])
	}
}
