// Command repro regenerates every table and figure of the paper's
// evaluation and writes ASCII renderings (and CSV curves for the
// figure sweeps) to stdout or an output directory.
//
// The experiments run through the concurrent engine by default: every
// workload is profiled and swept exactly once, shared across all
// dependent tables and figures, with independent experiments scheduled
// in parallel. -serial falls back to one-at-a-time dependency order.
//
// With -cache-dir every expensive artefact — dataset content,
// 45-metric profiles, Fig. 6-9 sweep curves, and the rendered output
// of each table and figure — persists in a content-keyed store under
// that directory, so a second run warm-starts and recomputes nothing
// (verify with -stats: zero trace passes, zero profiling runs, zero
// dataset generations, zero unit renders) while producing
// byte-identical output. -store-url points the same store at a
// cmd/artifactd server instead (or additionally: with both flags the
// disk tier fronts the server and remote hits warm it), which is how
// shards on different machines share one cache. -shard i/n runs only
// the i-th of n round-robin partitions of the selected items; n
// processes sharing a store — a -cache-dir or an artifactd URL —
// split a run and their merged -out files are byte-identical to a
// single full run. -gc bounds the -cache-dir by size and/or entry age
// (LRU sweep) after the run.
//
// -store-token (default $REPRO_STORE_TOKEN) authenticates against an
// artifactd started with -token. -block tunes the trace-replay block
// size (instructions per delivered batch); every value renders
// byte-identical output — the block pipeline only changes how fast the
// caches replay the stream.
//
// Usage:
//
//	repro [-quick] [-serial] [-parallel N] [-block N] [-timing] [-stats]
//	      [-cache-dir DIR] [-store-url URL] [-store-token T] [-gc SPEC]
//	      [-shard i/n] [-out DIR] [item ...]
//
// Items: table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6
// fig7 fig8 fig9 reduction stack. Default: all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced instruction budgets")
	outDir := flag.String("out", "", "also write per-item files to this directory")
	serial := flag.Bool("serial", false, "run experiments one at a time in dependency order")
	parallel := flag.Int("parallel", 0, "bound concurrency: experiments at once and workers within each (0 = GOMAXPROCS)")
	timing := flag.Bool("timing", false, "print the per-experiment timing table to stderr")
	cacheDir := flag.String("cache-dir", "", "persist artifacts (datasets, profiles, sweep curves, rendered units) under this directory and warm-start from it")
	storeURL := flag.String("store-url", "", "share artifacts through the artifactd server at this URL (combine with -cache-dir for a local tier in front)")
	storeToken := flag.String("store-token", "", "bearer token for a -token'd artifactd server (default $REPRO_STORE_TOKEN)")
	gcSpec := flag.String("gc", "", `after the run, LRU-sweep the -cache-dir down to this bound: a size, an age, or both ("4GB", "168h", "4GB,168h")`)
	shardSpec := flag.String("shard", "", "run only shard i of n visible items, as i/n (0-based); cooperating shards share a store and merge byte-identically")
	stats := flag.Bool("stats", false, "print artifact-store and recomputation probes to stderr")
	block := flag.Int("block", 0, "trace-replay block size in instructions (0 = default); output is byte-identical for every size")
	engineFlag := flag.String("engine", "", "miss-ratio sweep engine: stackdist (single-pass, default) or replay (concrete-cache oracle); output is byte-identical for both")
	scenarioFile := flag.String("scenario", "", `run one ad-hoc scenario spec (JSON file, "-" for stdin) instead of paper items; the rendered bytes go to stdout`)
	memQuota := flag.String("mem-quota", "", `bound the in-process artifact cache: size, idle age and/or kind=size, comma-separated ("256MB", "256MB,scenario-render=64MB")`)
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}

	var sel []string
	if args := flag.Args(); len(args) > 0 {
		known := map[string]bool{}
		for _, name := range experiments.VisibleUnitNames() {
			known[name] = true
		}
		for _, a := range args {
			item := strings.ToLower(a)
			if !known[item] {
				fatal(fmt.Errorf("unknown item %q (known: %s)",
					a, strings.Join(experiments.VisibleUnitNames(), " ")))
			}
			sel = append(sel, item)
		}
	}

	sweep, err := artifact.GCSweeper(*cacheDir, *gcSpec)
	if err != nil {
		fatal(err)
	}

	engine, err := experiments.ParseSweepEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}

	sess := experiments.NewSession(opt)
	sess.Engine = engine
	sess.Parallelism = *parallel
	sess.BlockSize = *block
	if *cacheDir != "" || *storeURL != "" {
		st, err := httpstore.OpenStore(*cacheDir, *storeURL, *storeToken)
		if err != nil {
			fatal(err)
		}
		sess.Store = st
		datagen.SetStore(st)
	}
	if *memQuota != "" {
		q, err := artifact.ParseQuotaSpec(*memQuota)
		if err != nil {
			fatal(err)
		}
		sess.ArtifactStore().SetMemQuota(q)
	}
	if *scenarioFile != "" {
		// Scenario mode: canonicalize, compute (or fetch warm) and
		// write exactly the rendered bytes — the same bytes reprod
		// serves for the same spec against the same store, which the
		// serving CI job diffs.
		if len(sel) > 0 {
			fatal(fmt.Errorf("-scenario and item selection are mutually exclusive"))
		}
		var raw []byte
		if *scenarioFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*scenarioFile)
		}
		if err != nil {
			fatal(err)
		}
		var spec experiments.Scenario
		if err := json.Unmarshal(raw, &spec); err != nil {
			fatal(fmt.Errorf("scenario %s: %w", *scenarioFile, err))
		}
		if err := experiments.RenderScenario(sess, spec, os.Stdout); err != nil {
			fatal(err)
		}
		if *stats {
			printStats(sess)
		}
		if sweep != nil {
			res, err := sweep()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "repro: gc: %s\n", res)
		}
		return
	}

	e := &experiments.Engine{
		Session:     sess,
		Parallelism: *parallel,
		Select:      sel,
	}
	if *shardSpec != "" {
		i, n, err := experiments.ParseShard(*shardSpec)
		if err != nil {
			fatal(err)
		}
		e.Shard, e.ShardCount = i, n
	}
	var results []experiments.UnitResult
	if *serial {
		results, err = e.RunSerial()
	} else {
		results, err = e.Run()
	}
	if err != nil {
		fatal(err)
	}

	out := func(name string) (io.Writer, func()) {
		if *outDir == "" {
			fmt.Printf("\n")
			return os.Stdout, func() {}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, name+".txt"))
		if err != nil {
			fatal(err)
		}
		return io.MultiWriter(os.Stdout, f), func() { f.Close() }
	}

	failed := false
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.Unit.Name, r.Err)
			failed = true
			continue
		}
		if r.Unit.Hidden || r.Artifact == nil {
			continue
		}
		w, done := out(r.Unit.Name)
		r.Artifact.Render(w)
		done()
	}
	if *timing {
		t := experiments.TimingTable(results)
		t.Render(os.Stderr)
	}
	if *stats {
		printStats(sess)
	}
	if sweep != nil {
		res, err := sweep()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repro: gc: %s\n", res)
	}
	if failed {
		os.Exit(1)
	}
}

func printStats(sess *experiments.Session) {
	ss := sess.ArtifactStore().Stats()
	fmt.Fprintf(os.Stderr, "repro: trace passes: %d (stackdist %d, replay %d); profile runs: %d; dataset generations: %d; unit renders: %d\n",
		sess.TracePasses(), sess.StackDistPasses(), sess.ReplayPasses(),
		sess.ProfileRuns(), datagen.Generations(), sess.Renders())
	fmt.Fprintf(os.Stderr, "repro: store: %d fills, %d memory hits, %d backend hits, %d backend discards, %d prefetched\n",
		ss.Fills, ss.MemHits, ss.BackendHits, ss.BackendDiscards, ss.Prefetched)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
