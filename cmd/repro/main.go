// Command repro regenerates every table and figure of the paper's
// evaluation and writes ASCII renderings (and CSV curves for the
// figure sweeps) to stdout or an output directory.
//
// The experiments run through the concurrent engine by default: every
// workload is profiled and swept exactly once, shared across all
// dependent tables and figures, with independent experiments scheduled
// in parallel. -serial falls back to one-at-a-time dependency order.
//
// Usage:
//
//	repro [-quick] [-serial] [-parallel N] [-timing] [-out DIR] [item ...]
//
// Items: table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6
// fig7 fig8 fig9 reduction stack. Default: all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced instruction budgets")
	outDir := flag.String("out", "", "also write per-item files to this directory")
	serial := flag.Bool("serial", false, "run experiments one at a time in dependency order")
	parallel := flag.Int("parallel", 0, "bound concurrency: experiments at once and workers within each (0 = GOMAXPROCS)")
	timing := flag.Bool("timing", false, "print the per-experiment timing table to stderr")
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}

	var sel []string
	if args := flag.Args(); len(args) > 0 {
		known := map[string]bool{}
		for _, name := range experiments.VisibleUnitNames() {
			known[name] = true
		}
		for _, a := range args {
			item := strings.ToLower(a)
			if !known[item] {
				fatal(fmt.Errorf("unknown item %q (known: %s)",
					a, strings.Join(experiments.VisibleUnitNames(), " ")))
			}
			sel = append(sel, item)
		}
	}

	sess := experiments.NewSession(opt)
	sess.Parallelism = *parallel
	e := &experiments.Engine{
		Session:     sess,
		Parallelism: *parallel,
		Select:      sel,
	}
	var results []experiments.UnitResult
	var err error
	if *serial {
		results, err = e.RunSerial()
	} else {
		results, err = e.Run()
	}
	if err != nil {
		fatal(err)
	}

	out := func(name string) (io.Writer, func()) {
		if *outDir == "" {
			fmt.Printf("\n")
			return os.Stdout, func() {}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, name+".txt"))
		if err != nil {
			fatal(err)
		}
		return io.MultiWriter(os.Stdout, f), func() { f.Close() }
	}

	failed := false
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.Unit.Name, r.Err)
			failed = true
			continue
		}
		if r.Unit.Hidden || r.Artifact == nil {
			continue
		}
		w, done := out(r.Unit.Name)
		r.Artifact.Render(w)
		done()
	}
	if *timing {
		t := experiments.TimingTable(results)
		t.Render(os.Stderr)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
