// Command repro regenerates every table and figure of the paper's
// evaluation and writes ASCII renderings (and CSV curves for the
// figure sweeps) to stdout or an output directory.
//
// Usage:
//
//	repro [-quick] [-out DIR] [item ...]
//
// Items: table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6
// fig7 fig8 fig9 reduction stack. Default: all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced instruction budgets")
	outDir := flag.String("out", "", "also write per-item files to this directory")
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	s := experiments.NewSession(opt)

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	out := func(name string) (io.Writer, func()) {
		if *outDir == "" {
			fmt.Printf("\n")
			return os.Stdout, func() {}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, name+".txt"))
		if err != nil {
			fatal(err)
		}
		return io.MultiWriter(os.Stdout, f), func() { f.Close() }
	}

	if sel("table1") {
		w, done := out("table1")
		experiments.RenderTable1(w, experiments.Table1())
		done()
	}
	if sel("table2") {
		w, done := out("table2")
		experiments.RenderTable2(w, experiments.Table2(s))
		done()
	}
	if sel("table3") {
		w, done := out("table3")
		t := experiments.Table3()
		t.Render(w)
		done()
	}
	if sel("table4") {
		w, done := out("table4")
		r := experiments.Table4(s)
		r.Mechanisms.Render(w)
		r.PerWorkload.Render(w)
		sum := report.Table{Headers: []string{"average misprediction", "measured", "paper"}}
		sum.Add("Atom D510", r.AtomAvg*100, r.PaperAtomAvg*100)
		sum.Add("Xeon E5645", r.XeonAvg*100, r.PaperXeonAvg*100)
		sum.Render(w)
		done()
	}
	if sel("fig1") {
		w, done := out("fig1")
		experiments.Fig1(s).Render(w)
		done()
	}
	if sel("fig2") {
		w, done := out("fig2")
		experiments.Fig2(s).Render(w)
		done()
	}
	if sel("fig3") {
		w, done := out("fig3")
		experiments.Fig3(s).Render(w)
		done()
	}
	if sel("fig4") {
		w, done := out("fig4")
		experiments.Fig4(s).Render(w)
		done()
	}
	if sel("fig5") {
		w, done := out("fig5")
		experiments.Fig5(s).Render(w)
		done()
	}
	for _, fig := range []struct {
		name string
		run  func(*experiments.Session) experiments.SweepResult
	}{
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
	} {
		if !sel(fig.name) {
			continue
		}
		w, done := out(fig.name)
		r := fig.run(s)
		r.Render(w)
		fmt.Fprintf(w, "knee(Hadoop, 0.2) = %d KB; knee(PARSEC, 0.2) = %d KB\n",
			r.Knee("Hadoop-workloads", 0.2), r.Knee("PARSEC-workloads", 0.2))
		done()
	}
	if sel("reduction") {
		w, done := out("reduction")
		r, err := experiments.Reduction(s)
		if err != nil {
			fatal(err)
		}
		r.Render(w)
		fmt.Fprintf(w, "PCA kept %d dimensions explaining %.1f%% of variance\n",
			r.Reduction.Dimensions, r.Reduction.Explained*100)
		done()
	}
	if sel("stack") {
		w, done := out("stack")
		r := experiments.StackImpact(s)
		r.Table.Render(w)
		fmt.Fprintf(w, "avg IPC: MPI %.2f vs Hadoop/Spark %.2f (paper: 1.4 vs 1.16)\n",
			r.MPIAvgIPC, r.OtherAvgIPC)
		fmt.Fprintf(w, "avg L1I MPKI: MPI %.1f vs Hadoop/Spark %.1f (paper: 3.4 vs 12.6)\n",
			r.MPIAvgL1I, r.OtherAvgL1I)
		done()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
