// Command wcrt is the workload characterization and reduction tool of
// the paper's §2.2: it profiles a workload roster on the modelled Xeon
// E5645, collects the 45-metric vectors, normalizes them, applies PCA,
// clusters with K-means and prints the representative subset.
//
// Usage:
//
//	wcrt [-k N] [-budget N] [-set roster|reps] [-metrics] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

func main() {
	k := flag.Int("k", 17, "cluster count (<= 0 selects k automatically)")
	budget := flag.Int64("budget", 1_500_000, "instruction budget per workload")
	set := flag.String("set", "roster", "workload set: roster (77) or reps (17)")
	showMetrics := flag.Bool("metrics", false, "print the full 45-metric vector per workload")
	asCSV := flag.Bool("csv", false, "emit metric vectors as CSV")
	flag.Parse()

	var list []workloads.Workload
	switch *set {
	case "roster":
		list = workloads.Roster77()
	case "reps":
		list = workloads.Representative17()
	default:
		fmt.Fprintf(os.Stderr, "wcrt: unknown set %q\n", *set)
		os.Exit(2)
	}

	prof := &core.Profiler{Machine: machine.XeonE5645(), Budget: *budget}
	fmt.Fprintf(os.Stderr, "wcrt: profiling %d workloads (%d instructions each)...\n", len(list), *budget)
	profiles := prof.ProfileAll(list)

	if *showMetrics || *asCSV {
		t := report.Table{Title: "45-metric characterization",
			Headers: append([]string{"workload"}, metrics.Names()...)}
		for _, p := range profiles {
			cells := make([]interface{}, 0, metrics.NumMetrics+1)
			cells = append(cells, p.Workload.ID)
			for _, v := range p.Vector {
				cells = append(cells, v)
			}
			t.Add(cells...)
		}
		if *asCSV {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	a := &core.Analyzer{ExplainTarget: 0.9, Seed: 0x5EED}
	red, err := a.Reduce(profiles, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcrt:", err)
		os.Exit(1)
	}
	fmt.Printf("PCA: kept %d of %d dimensions (%.1f%% variance)\n",
		red.Dimensions, metrics.NumMetrics, red.Explained*100)
	fmt.Printf("K-means: %d clusters\n\n", red.K)
	t := report.Table{Headers: []string{"representative", "represents", "members"}}
	for _, c := range red.Clusters {
		names := ""
		for i, m := range c.Members {
			if i > 0 {
				names += " "
			}
			names += red.Names[m]
		}
		t.Add(red.Names[c.Representative], len(c.Members), names)
	}
	t.Render(os.Stdout)
}
