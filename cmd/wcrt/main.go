// Command wcrt is the workload characterization and reduction tool of
// the paper's §2.2: it profiles a workload roster on the modelled Xeon
// E5645, collects the 45-metric vectors, normalizes them, applies PCA,
// clusters with K-means and prints the representative subset.
//
// Profiling runs through experiments.Session and the content-keyed
// artifact store, so repeated or combined runs never re-profile a
// workload they have already seen: with -cache-dir the profiles
// persist, and a second wcrt run (or a cmd/repro run at the same
// budget) reads them back instead of re-tracing the roster;
// -store-url shares them through a cmd/artifactd server instead, so
// the shards can live on different machines. -shard i/n distributes
// the profiling: shard processes each profile the i-th of n
// interleaved slices into the shared store and skip the reduction; a
// final run without -shard merges the warm profiles and reduces. -gc
// bounds the -cache-dir (LRU sweep) after the run.
//
// Usage:
//
//	wcrt [-k N] [-budget N] [-set roster|reps] [-metrics] [-csv]
//	     [-cache-dir DIR] [-store-url URL] [-store-token T] [-gc SPEC]
//	     [-shard i/n] [-parallel N] [-block N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

func main() {
	k := flag.Int("k", 17, "cluster count (<= 0 selects k automatically)")
	budget := flag.Int64("budget", 1_500_000, "instruction budget per workload")
	set := flag.String("set", "roster", "workload set: roster (77) or reps (17)")
	showMetrics := flag.Bool("metrics", false, "print the full 45-metric vector per workload")
	asCSV := flag.Bool("csv", false, "emit metric vectors as CSV")
	cacheDir := flag.String("cache-dir", "", "persist profiles and dataset content under this directory and warm-start from it")
	storeURL := flag.String("store-url", "", "share profiles through the artifactd server at this URL (combine with -cache-dir for a local tier in front)")
	storeToken := flag.String("store-token", "", "bearer token for a -token'd artifactd server (default $REPRO_STORE_TOKEN)")
	gcSpec := flag.String("gc", "", `after the run, LRU-sweep the -cache-dir down to this bound: a size, an age, or both ("4GB", "168h", "4GB,168h")`)
	shardSpec := flag.String("shard", "", "profile only slice i of n (as i/n, 0-based) into the store and skip the reduction; a later run without -shard merges")
	parallel := flag.Int("parallel", 0, "bound concurrent profiling runs (0 = GOMAXPROCS)")
	block := flag.Int("block", 0, "trace-replay block size in instructions (0 = default); output is byte-identical for every size")
	engineFlag := flag.String("engine", "", "miss-ratio sweep engine for any sweep fill this session runs: stackdist (default) or replay; byte-identical either way")
	memQuota := flag.String("mem-quota", "", `bound the in-process artifact cache: size, idle age and/or kind=size, comma-separated ("256MB", "256MB,profile=128MB")`)
	flag.Parse()

	var list []workloads.Workload
	switch *set {
	case "roster":
		list = workloads.Roster77()
	case "reps":
		list = workloads.Representative17()
	default:
		fmt.Fprintf(os.Stderr, "wcrt: unknown set %q\n", *set)
		os.Exit(2)
	}

	// One budget for every session cache, so shard fills, reps fills
	// and roster fills share per-workload artifacts at this budget.
	engine, err := experiments.ParseSweepEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}

	sess := experiments.NewSession(experiments.Options{
		Budget: *budget, SweepBudget: *budget, RosterBudget: *budget,
	})
	sess.Engine = engine
	sess.Parallelism = *parallel
	sess.BlockSize = *block
	gcSweep, err := artifact.GCSweeper(*cacheDir, *gcSpec)
	if err != nil {
		fatal(err)
	}
	if *cacheDir != "" || *storeURL != "" {
		st, err := httpstore.OpenStore(*cacheDir, *storeURL, *storeToken)
		if err != nil {
			fatal(err)
		}
		sess.Store = st
		datagen.SetStore(st)
	}
	if *memQuota != "" {
		q, err := artifact.ParseQuotaSpec(*memQuota)
		if err != nil {
			fatal(err)
		}
		sess.ArtifactStore().SetMemQuota(q)
	}
	sweep := func() {
		if gcSweep == nil {
			return
		}
		res, err := gcSweep()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wcrt: gc: %s\n", res)
	}

	if *shardSpec != "" {
		i, n, err := experiments.ParseShard(*shardSpec)
		if err != nil {
			fatal(err)
		}
		if *cacheDir == "" && *storeURL == "" {
			fatal(fmt.Errorf("-shard requires -cache-dir or -store-url: a shard's profiles must persist for the merge run to find them"))
		}
		slice := workloads.ShardSlice(list, i, n)
		fmt.Fprintf(os.Stderr, "wcrt: shard %d/%d profiling %d of %d workloads (%d instructions each)...\n",
			i, n, len(slice), len(list), *budget)
		profiles := sess.Profiles(machine.XeonE5645(), slice, *budget)
		if *showMetrics || *asCSV {
			printMetrics(profiles, *asCSV)
		}
		fmt.Fprintf(os.Stderr, "wcrt: shard done (%d profiling runs executed); run without -shard to merge and reduce\n",
			sess.ProfileRuns())
		sweep()
		return
	}

	fmt.Fprintf(os.Stderr, "wcrt: profiling %d workloads (%d instructions each)...\n", len(list), *budget)
	var profiles []core.Profile
	if *set == "roster" {
		profiles = sess.Roster()
	} else {
		profiles = sess.Reps()
	}

	if *showMetrics || *asCSV {
		printMetrics(profiles, *asCSV)
	}

	a := &core.Analyzer{ExplainTarget: 0.9, Seed: 0x5EED}
	red, err := a.Reduce(profiles, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PCA: kept %d of %d dimensions (%.1f%% variance)\n",
		red.Dimensions, metrics.NumMetrics, red.Explained*100)
	fmt.Printf("K-means: %d clusters\n\n", red.K)
	t := report.Table{Headers: []string{"representative", "represents", "members"}}
	for _, c := range red.Clusters {
		names := ""
		for i, m := range c.Members {
			if i > 0 {
				names += " "
			}
			names += red.Names[m]
		}
		t.Add(red.Names[c.Representative], len(c.Members), names)
	}
	t.Render(os.Stdout)
	sweep()
}

// printMetrics writes the profiles' 45-metric vectors to stdout as a
// table or CSV.
func printMetrics(profiles []core.Profile, asCSV bool) {
	t := report.Table{Title: "45-metric characterization",
		Headers: append([]string{"workload"}, metrics.Names()...)}
	for _, p := range profiles {
		cells := make([]interface{}, 0, metrics.NumMetrics+1)
		cells = append(cells, p.Workload.ID)
		for _, v := range p.Vector {
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	if asCSV {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wcrt:", err)
	os.Exit(1)
}
