// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-4, Figures 1-9, the §3 reduction and the
// §5.5 software-stack study). Each experiment returns structured rows
// and can render itself; cmd/repro and the root bench harness drive
// them, usually through the concurrent Engine.
package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machineutil"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// Options size the experiment runs.
type Options struct {
	// Budget is the instruction budget per workload run.
	Budget int64
	// SweepBudget is the budget per workload in the Fig. 6-9 cache
	// sweeps (they simulate 30 caches per instruction).
	SweepBudget int64
	// RosterBudget is the budget per workload in the 77-workload
	// reduction.
	RosterBudget int64
}

// Default returns the full-fidelity options used by cmd/repro.
func Default() Options {
	return Options{Budget: 4_000_000, SweepBudget: 1_500_000, RosterBudget: 1_500_000}
}

// Quick returns reduced budgets for tests.
func Quick() Options {
	return Options{Budget: 400_000, SweepBudget: 200_000, RosterBudget: 150_000}
}

// Session caches profiled runs shared by several experiments. Each
// cache fills at most once per session behind its own sync.Once, so
// independent experiments scheduled concurrently (the Engine's normal
// mode) never serialize on one session-wide lock and never repeat a
// profiling pass.
type Session struct {
	Opt Options

	// Parallelism bounds the worker pool of every profiling and sweep
	// fan-out this session performs (0 = GOMAXPROCS). The Engine's own
	// Parallelism bounds concurrent experiments; this bounds the work
	// inside each one.
	Parallelism int

	repsOnce sync.Once
	reps     []core.Profile

	mpiOnce sync.Once
	mpi     []core.Profile

	atomOnce sync.Once
	atomReps []core.Profile

	suitesOnce sync.Once
	suiteAvg   map[string]metrics.Vector
	suiteRuns  map[string][]core.Profile

	// sweeps memoizes one machine.Sweep trace pass per (workload,
	// budget); all three miss-ratio views of Figs. 6-9 are extracted
	// from that single pass.
	sweepMu     sync.Mutex
	sweeps      map[sweepKey]*sweepEntry
	tracePasses atomic.Int64
}

type sweepKey struct {
	id     string
	budget int64
}

type sweepEntry struct {
	once   sync.Once
	curves machine.Curves
}

// NewSession returns a session with the given options.
func NewSession(opt Options) *Session {
	return &Session{Opt: opt}
}

func (s *Session) profiler(cfg machine.Config) *core.Profiler {
	return &core.Profiler{Machine: cfg, Budget: s.Opt.Budget, Parallelism: s.Parallelism}
}

// Reps returns the 17 representative workloads profiled on the Xeon.
func (s *Session) Reps() []core.Profile {
	s.repsOnce.Do(func() {
		s.reps = s.profiler(machine.XeonE5645()).ProfileAll(workloads.Representative17())
	})
	return s.reps
}

// MPI returns the six MPI implementations profiled on the Xeon.
func (s *Session) MPI() []core.Profile {
	s.mpiOnce.Do(func() {
		s.mpi = s.profiler(machine.XeonE5645()).ProfileAll(workloads.MPI6())
	})
	return s.mpi
}

// AtomReps returns the 17 representatives profiled on the Atom D510
// model (used by Table 4's misprediction comparison).
func (s *Session) AtomReps() []core.Profile {
	s.atomOnce.Do(func() {
		s.atomReps = s.profiler(machine.AtomD510()).ProfileAll(workloads.Representative17())
	})
	return s.atomReps
}

// Suites returns the per-suite average vectors and the underlying runs
// for SPECINT, SPECFP, PARSEC, HPCC, CloudSuite and TPC-C. All suites'
// workloads are flattened into one list and profiled through a single
// bounded worker pool, rather than one serial ProfileAll per suite.
func (s *Session) Suites() (map[string]metrics.Vector, map[string][]core.Profile) {
	s.suitesOnce.Do(func() {
		all := suites.All()
		names := suites.Names()
		var flat []workloads.Workload
		spans := make(map[string][2]int, len(names))
		for _, name := range names {
			start := len(flat)
			flat = append(flat, all[name]...)
			spans[name] = [2]int{start, len(flat)}
		}
		profs := s.profiler(machine.XeonE5645()).ProfileAll(flat)
		s.suiteAvg = make(map[string]metrics.Vector, len(names))
		s.suiteRuns = make(map[string][]core.Profile, len(names))
		for _, name := range names {
			span := spans[name]
			runs := profs[span[0]:span[1]:span[1]]
			s.suiteRuns[name] = runs
			s.suiteAvg[name] = machineutil.Average(runs)
		}
	})
	return s.suiteAvg, s.suiteRuns
}

// SweepCurves returns the memoized Fig. 6-9 cache-sweep curves for one
// workload at the given budget, tracing the workload at most once per
// session. Concurrent callers for the same workload block on the
// entry's once while callers for other workloads proceed in parallel.
func (s *Session) SweepCurves(w workloads.Workload, budget int64) machine.Curves {
	key := sweepKey{id: w.ID, budget: budget}
	s.sweepMu.Lock()
	if s.sweeps == nil {
		s.sweeps = map[sweepKey]*sweepEntry{}
	}
	e, ok := s.sweeps[key]
	if !ok {
		e = &sweepEntry{}
		s.sweeps[key] = e
	}
	s.sweepMu.Unlock()
	e.once.Do(func() {
		sw := machine.NewSweep(machine.DefaultSweepSizesKB)
		workloads.Run(w, sw, budget)
		e.curves = sw.Curves()
		s.tracePasses.Add(1)
	})
	return e.curves
}

// TracePasses reports how many sweep trace passes the session has
// actually executed — the counting probe behind the "exactly one pass
// per (workload, budget)" guarantee.
func (s *Session) TracePasses() int64 { return s.tracePasses.Load() }

// BigDataAverage averages the 17 representatives' vectors.
func (s *Session) BigDataAverage() metrics.Vector {
	return machineutil.Average(s.Reps())
}
