// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-4, Figures 1-9, the §3 reduction and the
// §5.5 software-stack study). Each experiment returns structured rows
// and can render itself; cmd/repro and the root bench harness drive
// them, usually through the concurrent Engine.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/machineutil"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// Options size the experiment runs.
type Options struct {
	// Budget is the instruction budget per workload run.
	Budget int64
	// SweepBudget is the budget per workload in the Fig. 6-9 cache
	// sweeps (they simulate 30 caches per instruction).
	SweepBudget int64
	// RosterBudget is the budget per workload in the 77-workload
	// reduction.
	RosterBudget int64
}

// Default returns the full-fidelity options used by cmd/repro.
func Default() Options {
	return Options{Budget: 4_000_000, SweepBudget: 1_500_000, RosterBudget: 1_500_000}
}

// Quick returns reduced budgets for tests.
func Quick() Options {
	return Options{Budget: 400_000, SweepBudget: 200_000, RosterBudget: 150_000}
}

// SweepEngine selects how a session fills cold sweep curves. The
// engine is a compute strategy, not an identity: both engines produce
// bit-identical curves (proven by the differential tests and the CI
// diff job), so the artefact keys and bytes carry no engine mark and
// stores warmed by either engine serve the other.
type SweepEngine string

const (
	// EngineStackDist is the default: one Mattson stack-distance pass
	// per workload computes the curves of every requested geometry at
	// the shared line size (machine.StackSweep).
	EngineStackDist SweepEngine = "stackdist"
	// EngineReplay is the concrete-cache block-replay oracle: one
	// trace pass per geometry through machine.Sweep. Kept as the
	// escape hatch and the differential baseline.
	EngineReplay SweepEngine = "replay"
)

// ParseSweepEngine resolves a -engine flag value; "" selects the
// default (stackdist).
func ParseSweepEngine(v string) (SweepEngine, error) {
	switch SweepEngine(strings.ToLower(strings.TrimSpace(v))) {
	case "", EngineStackDist:
		return EngineStackDist, nil
	case EngineReplay:
		return EngineReplay, nil
	}
	return "", fmt.Errorf("experiments: unknown sweep engine %q (want stackdist or replay)", v)
}

// Session shares profiled runs and sweep curves between experiments
// through one uniform fill path: every expensive artefact — a
// workload's 45-metric profile, its Fig. 6-9 sweep curves, a profiled
// set — is content-keyed into an artifact.Store. The store's per-key
// singleflight replaces the bespoke per-cache sync.Once plumbing:
// independent experiments scheduled concurrently (the Engine's normal
// mode) never serialize on one session-wide lock and never repeat a
// profiling pass. With a disk-backed Store the artefacts also persist
// across processes, so warm runs and shard merges recompute nothing.
type Session struct {
	Opt Options

	// Ctx, when non-nil, bounds every simulation this session runs: a
	// cancelled context stops in-flight trace passes and profiling runs
	// within a few thousand instructions (the emitters zero their
	// budgets), aborted fills are discarded — never persisted, never
	// cached against their keys — and the cancellation surfaces as
	// ctx.Err() from Engine.RunContext / RunScenario. Set it before
	// first use; the serving daemon gives every request its own session
	// (sharing one Store) so each request cancels independently.
	//
	// Cancellation unwinds session accessors (Reps, SweepCurves, ...)
	// as a panic carrying ctx.Err(), because their signatures have no
	// error result; Engine.RunContext and RunScenario recover it at
	// the unit boundary. Callers driving a cancellable session by hand
	// must recover the same way (see RecoverCanceled).
	Ctx context.Context

	// Parallelism bounds the worker pool of every profiling and sweep
	// fan-out this session performs (0 = GOMAXPROCS). The Engine's own
	// Parallelism bounds concurrent experiments; this bounds the work
	// inside each one — including the per-cache fan-out of block-based
	// sweep replay (machine.Sweep.Parallelism is threaded from here).
	Parallelism int

	// BlockSize is the trace-replay batch size for every simulation
	// this session runs (instructions per delivered block; 0 =
	// trace.DefaultBlockSize). A plumbing knob only: results — and
	// therefore artifact-store keys — are identical for every size.
	BlockSize int

	// Store backs every memoized fill. Set it (before first use) to a
	// shared or disk-backed store to share artefacts between sessions
	// or processes; nil uses a private in-memory store, preserving
	// per-session memoization semantics.
	Store *artifact.Store

	// Engine selects the cold sweep-curve fill strategy ("" =
	// EngineStackDist). Artefact keys and bytes are engine-independent,
	// so flipping it never invalidates a warm store.
	Engine SweepEngine

	storeOnce sync.Once
	st        *artifact.Store

	tracePasses atomic.Int64
	stackPasses atomic.Int64
	replayPass  atomic.Int64
	profileRuns atomic.Int64
	renders     atomic.Int64
}

// NewSession returns a session with the given options.
func NewSession(opt Options) *Session {
	return &Session{Opt: opt}
}

// ArtifactStore returns the store backing this session's fills.
func (s *Session) ArtifactStore() *artifact.Store {
	s.storeOnce.Do(func() {
		s.st = s.Store
		if s.st == nil {
			s.st = artifact.New()
		}
	})
	return s.st
}

// canceledErr is the panic value session accessors unwind with when
// their context is cancelled mid-fill. It is also an error (unwrapping
// to context.Canceled / DeadlineExceeded) so the artifact store can
// record it for concurrent waiters of the same fill, and errors.Is
// keeps working wherever it surfaces.
type canceledErr struct{ err error }

func (c canceledErr) Error() string { return "experiments: session cancelled: " + c.err.Error() }
func (c canceledErr) Unwrap() error { return c.err }

// RecoverCanceled converts a session-cancellation panic into *err,
// re-raising anything else. Defer it wherever session accessors run
// under a cancellable context outside the engine:
//
//	func work(s *Session) (err error) {
//	    defer experiments.RecoverCanceled(&err)
//	    s.Reps()
//	    ...
func RecoverCanceled(err *error) {
	if p := recover(); p != nil {
		c, ok := p.(canceledErr)
		if !ok {
			panic(p)
		}
		*err = c.err
	}
}

// ctx returns the session's context (background when unset).
func (s *Session) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// mustFill unwraps a store fill whose compute cannot fail on its own:
// a cancellation unwinds as canceledErr (the session's cooperative
// abort signal), everything else (kind collisions, codec misuse) is a
// programming error.
func mustFill[T any](v T, err error) T {
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			var c canceledErr
			if !errors.As(err, &c) {
				c = canceledErr{err}
			}
			panic(c)
		}
		panic(fmt.Sprintf("experiments: artifact fill failed: %v", err))
	}
	return v
}

// profileKey identifies one profiled run in the store: the machine
// configuration, the workload's full content signature (IDs alone are
// ambiguous across rosters) and the instruction budget.
type profileKey struct {
	Machine  machine.Config
	Workload string
	Budget   int64
}

// profileOne fills one workload's profile through the store. The
// persisted form is a ProfileRecord (the live Workload cannot be
// serialized); it rebinds onto w on the way out, which reproduces the
// original Profile exactly.
func (s *Session) profileOne(cfg machine.Config, w workloads.Workload, budget int64) core.Profile {
	key := artifact.KeyOf("profile", profileKey{Machine: cfg, Workload: workloads.Signature(w), Budget: budget})
	rec := mustFill(artifact.GetChecked(s.ArtifactStore(), key,
		func(r core.ProfileRecord) bool { return r.Matches(w) },
		func() (core.ProfileRecord, error) {
			p := core.Profiler{Machine: cfg, Budget: budget, BlockSize: s.BlockSize}
			prof, err := p.ProfileCtx(s.ctx(), w)
			if err != nil {
				return core.ProfileRecord{}, err // aborted: never recorded, never persisted
			}
			s.profileRuns.Add(1)
			return core.Record(prof), nil
		}))
	return rec.Rebind(w)
}

// setKey identifies a profiled workload set's in-memory assembly.
type setKey struct {
	Machine string
	Set     string
	Budget  int64
	N       int
}

// profileSet profiles list through the store: one persistent artefact
// per workload (shared with any other set containing the same workload
// at the same budget — and with other processes over a disk store),
// filled through a bounded worker pool, plus one in-memory entry for
// the assembled set so repeated callers pay nothing.
func (s *Session) profileSet(set string, cfg machine.Config, list []workloads.Workload, budget int64) []core.Profile {
	key := artifact.KeyOf("profile-set", setKey{Machine: cfg.Name, Set: set, Budget: budget, N: len(list)})
	return mustFill(artifact.GetMem(s.ArtifactStore(), key, func() ([]core.Profile, error) {
		return s.Profiles(cfg, list, budget), nil
	}))
}

// Reps returns the 17 representative workloads profiled on the Xeon.
func (s *Session) Reps() []core.Profile {
	return s.profileSet("reps17", machine.XeonE5645(), workloads.Representative17(), s.Opt.Budget)
}

// MPI returns the six MPI implementations profiled on the Xeon.
func (s *Session) MPI() []core.Profile {
	return s.profileSet("mpi6", machine.XeonE5645(), workloads.MPI6(), s.Opt.Budget)
}

// AtomReps returns the 17 representatives profiled on the Atom D510
// model (used by Table 4's misprediction comparison).
func (s *Session) AtomReps() []core.Profile {
	return s.profileSet("reps17", machine.AtomD510(), workloads.Representative17(), s.Opt.Budget)
}

// Roster returns the full 77-workload roster profiled on the Xeon at
// the roster budget — the input to the §3 reduction, behind the same
// memoization as Reps()/Suites() so the reduction experiment, cmd/wcrt
// and future experiments share one profiling pass.
func (s *Session) Roster() []core.Profile {
	return s.profileSet("roster77", machine.XeonE5645(), workloads.Roster77(), s.Opt.RosterBudget)
}

// Profiles characterizes an ad-hoc workload list on cfg at an explicit
// budget through the same per-workload store artefacts (cmd/wcrt's
// shard mode warms the store with slices of a roster this way). The
// artefacts are shared wherever machine and budget match: pass the
// budget the eventual merged read will use — Opt.RosterBudget when
// warming Roster(), Opt.Budget when warming Reps().
func (s *Session) Profiles(cfg machine.Config, list []workloads.Workload, budget int64) []core.Profile {
	out := make([]core.Profile, len(list))
	err := conc.ForEachCtx(s.Ctx, s.Parallelism, len(list), func(i int) {
		out[i] = s.profileOne(cfg, list[i], budget)
	})
	if err != nil {
		// Cancelled mid-fan-out: some slots are zero — unwind rather
		// than hand back a torn profile set.
		panic(canceledErr{err})
	}
	return out
}

// suiteSet is the assembled comparator-suite view (memory tier only:
// the averages are cheap, deterministic reductions of the persisted
// per-workload profiles).
type suiteSet struct {
	avg  map[string]metrics.Vector
	runs map[string][]core.Profile
}

// Suites returns the per-suite average vectors and the underlying runs
// for SPECINT, SPECFP, PARSEC, HPCC, CloudSuite and TPC-C. All suites'
// workloads are flattened into one list and profiled through a single
// bounded worker pool, rather than one serial pass per suite; the
// averages accumulate in input order, so results are bit-identical to
// the serial reference.
func (s *Session) Suites() (map[string]metrics.Vector, map[string][]core.Profile) {
	key := artifact.KeyOf("suite-set", setKey{Machine: machine.XeonE5645().Name, Set: "suites", Budget: s.Opt.Budget})
	v := mustFill(artifact.GetMem(s.ArtifactStore(), key, func() (*suiteSet, error) {
		all := suites.All()
		names := suites.Names()
		var flat []workloads.Workload
		spans := make(map[string][2]int, len(names))
		for _, name := range names {
			start := len(flat)
			flat = append(flat, all[name]...)
			spans[name] = [2]int{start, len(flat)}
		}
		profs := s.profileSet("suites-flat", machine.XeonE5645(), flat, s.Opt.Budget)
		out := &suiteSet{
			avg:  make(map[string]metrics.Vector, len(names)),
			runs: make(map[string][]core.Profile, len(names)),
		}
		for _, name := range names {
			span := spans[name]
			runs := profs[span[0]:span[1]:span[1]]
			out.runs[name] = runs
			out.avg[name] = machineutil.Average(runs)
		}
		return out, nil
	}))
	return v.avg, v.runs
}

// sweepKey identifies one workload's cache-sweep curves. Ways and
// Line are omitted from the canonical JSON when they are the modeled
// defaults (8 ways, 64-byte lines), so the Fig. 6-9 keys are identical
// whether the curves were filled by a paper unit or by an ad-hoc
// scenario that left the geometry alone — the two share one artefact.
type sweepKey struct {
	Workload string
	Budget   int64
	SizesKB  []int
	Ways     int `json:",omitempty"`
	Line     int `json:",omitempty"`
}

// SweepCurves returns the memoized Fig. 6-9 cache-sweep curves for one
// workload at the given budget, tracing the workload at most once per
// store (and, with a disk store, at most once ever). Concurrent
// callers for the same workload block on that key's singleflight while
// callers for other workloads proceed in parallel.
func (s *Session) SweepCurves(w workloads.Workload, budget int64) machine.Curves {
	return s.SweepCurvesSpec(w, budget, machine.DefaultSweepSizesKB, 0, 0)
}

// SweepCurvesSpec is SweepCurves with the swept sizes and cache
// geometry chosen by the caller — the primitive behind scenario
// requests. ways and lineBytes of 0 select the paper defaults, and the
// default-geometry artefacts are exactly SweepCurves' (one trace pass
// serves both). Invalid geometries panic; the scenario canonicalizer
// validates before any session work.
func (s *Session) SweepCurvesSpec(w workloads.Workload, budget int64, sizes []int, ways, lineBytes int) machine.Curves {
	return s.SweepCurvesMulti(w, budget, sizes, []int{ways}, lineBytes)[0]
}

// sweepCheck validates a stored curve set against the requested sizes
// (the artifact layer's identity-corruption guard).
func sweepCheck(sizes []int) func(machine.Curves) bool {
	return func(c machine.Curves) bool {
		return len(c.SizesKB) == len(sizes) && len(c.Inst) == len(sizes) &&
			len(c.Data) == len(sizes) && len(c.Unified) == len(sizes)
	}
}

// SweepCurvesMulti fills the sweep curves of several associativities
// (sharing sizes and line size) in one call, returning one Curves per
// entry of waysList. With the default stack-distance engine every
// still-cold geometry is computed by a single shared trace pass — the
// multi-geometry cost model: one pass per workload no matter how many
// associativities the request sweeps. Each geometry's artefact lives
// under exactly the key SweepCurvesSpec would use, so single- and
// multi-geometry requests (and both engines) share artefacts freely.
func (s *Session) SweepCurvesMulti(w workloads.Workload, budget int64, sizes []int, waysList []int, lineBytes int) []machine.Curves {
	if len(waysList) == 0 {
		panic("experiments: SweepCurvesMulti with no geometries")
	}
	sig := workloads.Signature(w)
	line := lineBytes
	if line == machine.DefaultSweepLineBytes {
		line = 0
	}
	check := sweepCheck(sizes)
	keys := make([]artifact.Key, len(waysList))
	for i, ways := range waysList {
		if ways == machine.DefaultSweepWays {
			ways = 0
		}
		keys[i] = artifact.KeyOf("sweep-curves", sweepKey{
			Workload: sig, Budget: budget, SizesKB: sizes,
			Ways: ways, Line: line,
		})
	}
	out := make([]machine.Curves, len(waysList))

	if s.Engine == EngineReplay {
		// Oracle path: concrete-cache block replay, one trace pass per
		// geometry (cold ones only — each key still memoizes).
		for i, ways := range waysList {
			out[i] = s.replayCurves(keys[i], check, w, budget, sizes, ways, lineBytes)
		}
		return out
	}

	// Stack-distance engine. Peek first so the shared pass covers only
	// the geometries still cold here, then fill each key under its own
	// singleflight. The pass runs at most once, lazily, inside the
	// first fill closure that actually executes — a concurrent session
	// may win some keys' flights, and whoever computes, the curves are
	// identical.
	st := s.ArtifactStore()
	var missing []int
	for i := range waysList {
		if v, ok := artifact.Peek(st, keys[i], check); ok {
			out[i] = v
			continue
		}
		missing = append(missing, i)
	}
	var computed map[int]machine.Curves
	runPass := func() error {
		geoms := make([]machine.SweepGeometry, len(missing))
		for j, i := range missing {
			geoms[j] = machine.SweepGeometry{SizesKB: sizes, Ways: waysList[i]}
		}
		sw, err := machine.NewStackSweep(lineBytes, geoms...)
		if err != nil {
			return err
		}
		sw.Parallelism = s.Parallelism
		ctx := s.ctx()
		sw.Cancel = ctx.Done()
		if _, err := workloads.RunBlockCtx(ctx, w, sw, budget, s.BlockSize); err != nil {
			return err // aborted: histograms truncated, discard
		}
		s.tracePasses.Add(1)
		s.stackPasses.Add(1)
		computed = make(map[int]machine.Curves, len(missing))
		for j, i := range missing {
			computed[i] = sw.Curves(j)
		}
		return nil
	}
	for _, i := range missing {
		i := i
		out[i] = mustFill(artifact.GetChecked(st, keys[i], check, func() (machine.Curves, error) {
			if computed == nil {
				if err := runPass(); err != nil {
					return machine.Curves{}, err
				}
			}
			return computed[i], nil
		}))
	}
	return out
}

// replayCurves fills one geometry's curves through the concrete-cache
// replay oracle (the pre-stackdist default, retained verbatim).
func (s *Session) replayCurves(key artifact.Key, check func(machine.Curves) bool, w workloads.Workload, budget int64, sizes []int, ways, lineBytes int) machine.Curves {
	return mustFill(artifact.GetChecked(s.ArtifactStore(), key, check,
		func() (machine.Curves, error) {
			// Block-based replay: the trace is decoded into packed
			// access streams once per block and the caches replay
			// them through a worker pool bounded by s.Parallelism —
			// bit-identical to the retained serial path, so the store
			// key needs neither knob.
			sw, err := machine.NewSweepSpec(sizes, ways, lineBytes)
			if err != nil {
				return machine.Curves{}, err
			}
			sw.Parallelism = s.Parallelism
			ctx := s.ctx()
			sw.Cancel = ctx.Done()
			if _, err := workloads.RunBlockCtx(ctx, w, sw, budget, s.BlockSize); err != nil {
				return machine.Curves{}, err // aborted: curves truncated, discard
			}
			s.tracePasses.Add(1)
			s.replayPass.Add(1)
			return sw.Curves(), nil
		}))
}

// primerKeys enumerates the persisted store keys one hidden primer
// unit will fill — the per-workload profile records or sweep curves
// behind it. It must mirror the fills the primer actually performs
// (profileOne / SweepCurvesSpec build identical keys), which is why it
// lives beside those key types. Unknown primers contribute nothing.
func (s *Session) primerKeys(primer string) []artifact.Key {
	profiles := func(cfg machine.Config, list []workloads.Workload, budget int64) []artifact.Key {
		keys := make([]artifact.Key, 0, len(list))
		for _, w := range list {
			keys = append(keys, artifact.KeyOf("profile",
				profileKey{Machine: cfg, Workload: workloads.Signature(w), Budget: budget}))
		}
		return keys
	}
	sweeps := func(list []workloads.Workload, budget int64) []artifact.Key {
		keys := make([]artifact.Key, 0, len(list))
		for _, w := range list {
			keys = append(keys, artifact.KeyOf("sweep-curves", sweepKey{
				Workload: workloads.Signature(w), Budget: budget, SizesKB: machine.DefaultSweepSizesKB,
			}))
		}
		return keys
	}
	switch primer {
	case "warm-reps":
		return profiles(machine.XeonE5645(), workloads.Representative17(), s.Opt.Budget)
	case "warm-mpi":
		return profiles(machine.XeonE5645(), workloads.MPI6(), s.Opt.Budget)
	case "warm-atom":
		return profiles(machine.AtomD510(), workloads.Representative17(), s.Opt.Budget)
	case "warm-suites":
		var flat []workloads.Workload
		all := suites.All()
		for _, name := range suites.Names() {
			flat = append(flat, all[name]...)
		}
		return profiles(machine.XeonE5645(), flat, s.Opt.Budget)
	case "warm-roster":
		return profiles(machine.XeonE5645(), workloads.Roster77(), s.Opt.RosterBudget)
	case "warm-sweep-hadoop":
		return sweeps(hadoopGroup(), s.Opt.SweepBudget)
	case "warm-sweep-parsec":
		return sweeps(parsecGroup(), s.Opt.SweepBudget)
	case "warm-sweep-mpi":
		return sweeps(workloads.MPI6(), s.Opt.SweepBudget)
	}
	return nil
}

// TracePasses reports how many sweep trace passes the session has
// actually executed — the counting probe behind the "exactly one pass
// per (workload, budget)" guarantee; a warm-started session reports 0.
// It is the sum of StackDistPasses and ReplayPasses.
func (s *Session) TracePasses() int64 { return s.tracePasses.Load() }

// StackDistPasses reports trace passes executed by the stack-distance
// engine (each pricing every geometry it was asked for at once).
func (s *Session) StackDistPasses() int64 { return s.stackPasses.Load() }

// ReplayPasses reports trace passes executed by the concrete-cache
// replay oracle (one per geometry).
func (s *Session) ReplayPasses() int64 { return s.replayPass.Load() }

// ProfileRuns reports how many profiling runs the session has actually
// executed (store hits — memory or disk — add nothing); a warm-started
// session reports 0.
func (s *Session) ProfileRuns() int64 { return s.profileRuns.Load() }

// Renders reports how many engine units the session has actually
// rendered. The engine persists each visible unit's rendered bytes as
// a store artefact keyed by (unit, options, format), so a fully
// warm-started session reports 0 — such a run executes no simulation
// at all and only copies bytes out of the store.
func (s *Session) Renders() int64 { return s.renders.Load() }

// BigDataAverage averages the 17 representatives' vectors.
func (s *Session) BigDataAverage() metrics.Vector {
	return machineutil.Average(s.Reps())
}
