// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-4, Figures 1-9, the §3 reduction and the
// §5.5 software-stack study). Each experiment returns structured rows
// and can render itself; cmd/repro and the root bench harness drive
// them.
package experiments

import (
	"sync"

	"repro/internal/core"
	"repro/internal/machineutil"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// Options size the experiment runs.
type Options struct {
	// Budget is the instruction budget per workload run.
	Budget int64
	// SweepBudget is the budget per workload in the Fig. 6-9 cache
	// sweeps (they simulate 30 caches per instruction).
	SweepBudget int64
	// RosterBudget is the budget per workload in the 77-workload
	// reduction.
	RosterBudget int64
}

// Default returns the full-fidelity options used by cmd/repro.
func Default() Options {
	return Options{Budget: 4_000_000, SweepBudget: 1_500_000, RosterBudget: 1_500_000}
}

// Quick returns reduced budgets for tests.
func Quick() Options {
	return Options{Budget: 400_000, SweepBudget: 200_000, RosterBudget: 150_000}
}

// Session caches profiled runs shared by several experiments.
type Session struct {
	Opt Options

	mu        sync.Mutex
	reps      []core.Profile
	mpi       []core.Profile
	suiteAvg  map[string]metrics.Vector
	suiteRuns map[string][]core.Profile
	atomReps  []core.Profile
}

// NewSession returns a session with the given options.
func NewSession(opt Options) *Session {
	return &Session{Opt: opt}
}

func (s *Session) profiler(cfg machine.Config) *core.Profiler {
	return &core.Profiler{Machine: cfg, Budget: s.Opt.Budget}
}

// Reps returns the 17 representative workloads profiled on the Xeon.
func (s *Session) Reps() []core.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reps == nil {
		s.reps = s.profiler(machine.XeonE5645()).ProfileAll(workloads.Representative17())
	}
	return s.reps
}

// MPI returns the six MPI implementations profiled on the Xeon.
func (s *Session) MPI() []core.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mpi == nil {
		s.mpi = s.profiler(machine.XeonE5645()).ProfileAll(workloads.MPI6())
	}
	return s.mpi
}

// AtomReps returns the 17 representatives profiled on the Atom D510
// model (used by Table 4's misprediction comparison).
func (s *Session) AtomReps() []core.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.atomReps == nil {
		s.atomReps = s.profiler(machine.AtomD510()).ProfileAll(workloads.Representative17())
	}
	return s.atomReps
}

// Suites returns the per-suite average vectors and the underlying runs
// for SPECINT, SPECFP, PARSEC, HPCC, CloudSuite and TPC-C.
func (s *Session) Suites() (map[string]metrics.Vector, map[string][]core.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.suiteAvg == nil {
		s.suiteAvg = map[string]metrics.Vector{}
		s.suiteRuns = map[string][]core.Profile{}
		p := s.profiler(machine.XeonE5645())
		for name, list := range suites.All() {
			profs := p.ProfileAll(list)
			s.suiteRuns[name] = profs
			s.suiteAvg[name] = machineutil.Average(profs)
		}
	}
	return s.suiteAvg, s.suiteRuns
}

// BigDataAverage averages the 17 representatives' vectors.
func (s *Session) BigDataAverage() metrics.Vector {
	return machineutil.Average(s.Reps())
}
