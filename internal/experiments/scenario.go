package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/artifact"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

// Scenario is a declarative ad-hoc experiment request: a cache-size
// sweep figure over any workload subset, at any instruction budget, on
// any sweep-cache geometry — the paper's Fig. 6-9 methodology opened
// to the questions the paper didn't print ("the I-cache knee of just
// the Spark workloads at twice the budget on 4-way caches"). It is the
// request body of the serving daemon's /scenarios endpoint and of
// repro -scenario.
//
// A scenario is resolved against the fixed workload catalogue by
// Canonical, which validates every field and normalizes the spec so
// that every equivalent request produces the same canonical form —
// and therefore the same artifact.KeyOf identity. Warm repeats of a
// scenario are pure store I/O, and a scenario that leaves the budget,
// sizes and geometry at their defaults shares its per-workload sweep
// artefacts with the paper figures.
type Scenario struct {
	// Name optionally labels the request; it appears in the rendered
	// title (and therefore in the identity — differently named
	// renderings are different artefacts).
	Name string `json:"name,omitempty"`

	// Groups selects named workload groups, each rendered as its own
	// curve: "hadoop" (the §5.4 Hadoop-stack group), "parsec", "mpi"
	// (the six MPI twins), "reps17" (the Table 2 representatives).
	Groups []string `json:"groups,omitempty"`

	// Workloads selects individual 77-roster entries by ID (plus the
	// MPI twins); the selection is rendered as one additional curve.
	// At least one group or workload is required.
	Workloads []string `json:"workloads,omitempty"`

	// Budget is the per-workload instruction budget (0 = the serving
	// session's sweep budget).
	Budget int64 `json:"budget,omitempty"`

	// SizesKB lists the swept L1 capacities (nil = the paper's ten,
	// 16 KB to 8192 KB).
	SizesKB []int `json:"sizes_kb,omitempty"`

	// Ways and LineBytes override the sweep-cache geometry
	// (0 = the paper's 8 ways / 64-byte lines).
	Ways      int `json:"ways,omitempty"`
	LineBytes int `json:"line_bytes,omitempty"`

	// WaysSet sweeps several associativities in one scenario — one
	// rendered curve set per entry, per view. The stack-distance
	// engine prices the whole set at a single trace pass per workload,
	// so extra associativities are nearly free. Mutually exclusive
	// with Ways; a singleton canonicalizes into Ways (and the default
	// folds to zero), so equivalent requests alias the same artefacts.
	WaysSet []int `json:"ways_set,omitempty"`

	// Views selects the rendered miss-ratio views, any of "inst",
	// "data", "unified" (nil = inst only).
	Views []string `json:"views,omitempty"`
}

// scenarioGroups maps group names to their workload lists, in the
// same resolution the paper figures use.
func scenarioGroups() map[string]func() []workloads.Workload {
	return map[string]func() []workloads.Workload{
		"hadoop": hadoopGroup,
		"parsec": parsecGroup,
		"mpi":    workloads.MPI6,
		"reps17": workloads.Representative17,
	}
}

// ScenarioGroupNames lists the accepted group names.
func ScenarioGroupNames() []string {
	var names []string
	for name := range scenarioGroups() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// scenarioCatalogue indexes the selectable workloads by ID: the full
// 77-roster plus any MPI twins whose IDs the roster doesn't already
// claim. IDs resolve deterministically — the roster entry wins a
// collision — so a scenario's curves are a pure function of its
// canonical form.
func scenarioCatalogue() map[string]workloads.Workload {
	idx := make(map[string]workloads.Workload, 84)
	for _, w := range workloads.Roster77() {
		idx[w.ID] = w
	}
	for _, w := range workloads.MPI6() {
		if _, taken := idx[w.ID]; !taken {
			idx[w.ID] = w
		}
	}
	return idx
}

// ScenarioWorkloadIDs lists the selectable workload IDs, sorted.
func ScenarioWorkloadIDs() []string {
	idx := scenarioCatalogue()
	ids := make([]string, 0, len(idx))
	for id := range idx {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// scenarioViews is the canonical view order.
var scenarioViews = []struct {
	name string
	view func(machine.Curves) []float64
}{
	{"inst", curveInst},
	{"data", curveData},
	{"unified", curveUnified},
}

// Canonical validates the scenario against opt (the serving session's
// budgets supply the defaults) and returns its canonical form: groups
// and workloads sorted and deduplicated, the budget resolved to an
// explicit value, sizes resolved to an explicit ascending list, views
// deduplicated into canonical order, and default geometry folded to
// zero. Two requests meaning the same experiment canonicalize to the
// same value — and so to the same artifact key.
func (sc Scenario) Canonical(opt Options) (Scenario, error) {
	out := Scenario{Name: sc.Name}

	groups := scenarioGroups()
	seenG := map[string]bool{}
	for _, g := range sc.Groups {
		g = strings.ToLower(strings.TrimSpace(g))
		if _, ok := groups[g]; !ok {
			return Scenario{}, fmt.Errorf("experiments: unknown scenario group %q (known: %s)",
				g, strings.Join(ScenarioGroupNames(), " "))
		}
		if !seenG[g] {
			seenG[g] = true
			out.Groups = append(out.Groups, g)
		}
	}
	sort.Strings(out.Groups)

	catalogue := scenarioCatalogue()
	seenW := map[string]bool{}
	for _, id := range sc.Workloads {
		id = strings.TrimSpace(id)
		if _, ok := catalogue[id]; !ok {
			return Scenario{}, fmt.Errorf("experiments: unknown scenario workload %q", id)
		}
		if !seenW[id] {
			seenW[id] = true
			out.Workloads = append(out.Workloads, id)
		}
	}
	sort.Strings(out.Workloads)

	if len(out.Groups) == 0 && len(out.Workloads) == 0 {
		return Scenario{}, fmt.Errorf("experiments: scenario selects no groups and no workloads")
	}

	out.Budget = sc.Budget
	if out.Budget <= 0 {
		out.Budget = opt.SweepBudget
	}
	const maxScenarioBudget = 1 << 33 // ~8.6G insts: far past any real figure, bounds one request's CPU
	if out.Budget > maxScenarioBudget {
		return Scenario{}, fmt.Errorf("experiments: scenario budget %d exceeds %d", out.Budget, int64(maxScenarioBudget))
	}

	out.SizesKB = append([]int(nil), sc.SizesKB...)
	if len(out.SizesKB) == 0 {
		out.SizesKB = append(out.SizesKB, machine.DefaultSweepSizesKB...)
	}
	if len(out.SizesKB) > 64 {
		return Scenario{}, fmt.Errorf("experiments: scenario sweeps %d sizes, limit 64", len(out.SizesKB))
	}
	sort.Ints(out.SizesKB)
	for i, kb := range out.SizesKB {
		if kb <= 0 || (i > 0 && kb == out.SizesKB[i-1]) {
			return Scenario{}, fmt.Errorf("experiments: scenario sizes must be positive and distinct, got %v", sc.SizesKB)
		}
	}

	out.Ways, out.LineBytes = sc.Ways, sc.LineBytes
	if len(sc.WaysSet) > 0 {
		if sc.Ways != 0 {
			return Scenario{}, fmt.Errorf("experiments: scenario sets both ways and ways_set")
		}
		if len(sc.WaysSet) > 8 {
			return Scenario{}, fmt.Errorf("experiments: scenario sweeps %d associativities, limit 8", len(sc.WaysSet))
		}
		ws := append([]int(nil), sc.WaysSet...)
		sort.Ints(ws)
		var set []int
		for _, w := range ws {
			if w <= 0 {
				return Scenario{}, fmt.Errorf("experiments: scenario ways must be positive, got %d", w)
			}
			if len(set) == 0 || w != set[len(set)-1] {
				set = append(set, w)
			}
		}
		if len(set) == 1 {
			out.Ways = set[0] // singleton: alias the single-geometry form
		} else {
			out.WaysSet = set
		}
	}
	if out.Ways == machine.DefaultSweepWays {
		out.Ways = 0 // fold the default so the artefacts alias the paper's
	}
	if out.LineBytes == machine.DefaultSweepLineBytes {
		out.LineBytes = 0
	}
	for _, w := range out.waysList() {
		if _, err := machine.NewSweepSpec(out.SizesKB[:1], w, out.LineBytes); err != nil {
			return Scenario{}, err
		}
		for _, kb := range out.SizesKB {
			ways, line := w, out.LineBytes
			if ways == 0 {
				ways = machine.DefaultSweepWays
			}
			if line == 0 {
				line = machine.DefaultSweepLineBytes
			}
			if (kb<<10)%(ways*line) != 0 {
				return Scenario{}, fmt.Errorf("experiments: scenario size %d KB not divisible into %d-way sets of %d-byte lines",
					kb, ways, line)
			}
		}
	}

	if len(sc.Views) == 0 {
		out.Views = []string{"inst"}
	} else {
		want := map[string]bool{}
		for _, v := range sc.Views {
			v = strings.ToLower(strings.TrimSpace(v))
			known := false
			for _, sv := range scenarioViews {
				if sv.name == v {
					known = true
				}
			}
			if !known {
				return Scenario{}, fmt.Errorf("experiments: unknown scenario view %q (want inst, data or unified)", v)
			}
			want[v] = true
		}
		for _, sv := range scenarioViews {
			if want[sv.name] {
				out.Views = append(out.Views, sv.name)
			}
		}
	}
	return out, nil
}

// ScenarioKey returns the artifact identity a scenario's rendered
// bytes live under. Spec must already be canonical (Canonical is
// idempotent; callers canonicalize once and key on the result).
func ScenarioKey(canonical Scenario) artifact.Key {
	return artifact.KeyOf("scenario-render", canonical)
}

// waysList returns the scenario's effective associativities: the
// canonical multi-set, or the single Ways (0 meaning the default).
func (sc Scenario) waysList() []int {
	if len(sc.WaysSet) > 0 {
		return sc.WaysSet
	}
	return []int{sc.Ways}
}

// title builds the rendered heading for one view (and, for
// multi-associativity scenarios, one geometry).
func (sc Scenario) title(view string, ways int) string {
	name := sc.Name
	if name == "" {
		name = "ad-hoc"
	}
	if len(sc.WaysSet) > 0 {
		return fmt.Sprintf("Scenario %s: %s cache miss ratio vs cache size (%d-way, budget %d)", name, view, ways, sc.Budget)
	}
	return fmt.Sprintf("Scenario %s: %s cache miss ratio vs cache size (budget %d)", name, view, sc.Budget)
}

// run computes the scenario's sweep figures over the session. One
// SweepResult per view, each with one curve per selected group plus,
// when individual workloads are named, a "selection" curve.
func (sc Scenario) run(s *Session) ([]SweepResult, error) {
	groups := scenarioGroups()
	catalogue := scenarioCatalogue()
	type curveSet struct {
		name string
		list []workloads.Workload
	}
	var sets []curveSet
	for _, g := range sc.Groups {
		sets = append(sets, curveSet{name: g + "-workloads", list: groups[g]()})
	}
	if len(sc.Workloads) > 0 {
		list := make([]workloads.Workload, 0, len(sc.Workloads))
		for _, id := range sc.Workloads {
			list = append(list, catalogue[id])
		}
		sets = append(sets, curveSet{name: "selection", list: list})
	}

	// Every geometry of every set fills through SweepCurvesMulti, so a
	// multi-associativity scenario costs one trace pass per workload
	// under the stack-distance engine — later views and geometries
	// read the per-workload artefacts warm.
	waysAll := sc.waysList()
	var out []SweepResult
	for _, vname := range sc.Views {
		var view func(machine.Curves) []float64
		for _, sv := range scenarioViews {
			if sv.name == vname {
				view = sv.view
			}
		}
		perSet := make(map[string][][]float64, len(sets))
		for _, cs := range sets {
			perSet[cs.name] = sweepGroupMulti(s, cs.list, sc.Budget, sc.SizesKB, waysAll, sc.LineBytes, view)
		}
		for gi, ways := range waysAll {
			r := SweepResult{
				Title:   sc.title(vname, ways),
				SizesKB: sc.SizesKB,
				Curves:  make(map[string][]float64, len(sets)),
			}
			for _, cs := range sets {
				r.Order = append(r.Order, cs.name)
				r.Curves[cs.name] = perSet[cs.name][gi]
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// RunScenario resolves, computes and renders a scenario over the
// session, returning the rendered bytes. The bytes are a store
// artefact keyed by the canonical spec, so a warm request — this
// process or any other sharing the store — performs zero simulation
// and zero rendering; cold requests fill per-workload sweep artefacts
// shared with every other scenario (and, at default geometry, with the
// paper figures). Cancellation via s.Ctx aborts the computation and
// returns ctx.Err() without publishing anything.
func RunScenario(s *Session, spec Scenario) (out []byte, err error) {
	canon, err := spec.Canonical(s.Opt)
	if err != nil {
		return nil, err
	}
	defer RecoverCanceled(&err)
	key := ScenarioKey(canon)
	return mustFillBytes(artifact.Get(s.ArtifactStore(), key, func() ([]byte, error) {
		results, err := canon.run(s)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		for _, r := range results {
			r.Render(&buf)
			for _, name := range r.Order {
				fmt.Fprintf(&buf, "knee(%s, 0.2) = %d KB\n", name, r.Knee(name, 0.2))
			}
		}
		s.renders.Add(1)
		return buf.Bytes(), nil
	}))
}

// mustFillBytes passes a scenario fill through, letting cancellation
// unwind via mustFill's panic (recovered by RunScenario) while real
// errors return normally.
func mustFillBytes(b []byte, err error) ([]byte, error) {
	if err != nil {
		var c canceledErr
		if errors.As(err, &c) {
			panic(c)
		}
		return nil, err
	}
	return b, nil
}

// RenderScenario writes a scenario's rendered bytes to w (cmd/repro's
// -scenario path; the daemon serves the bytes directly).
func RenderScenario(s *Session, spec Scenario, w io.Writer) error {
	b, err := RunScenario(s, spec)
	if err != nil {
		return err
	}
	_, werr := w.Write(b)
	return werr
}
