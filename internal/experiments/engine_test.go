package experiments

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/workloads"
)

// tinyOptions keeps the engine-correctness tests fast; equivalence and
// determinism hold at any budget.
func tinyOptions() Options {
	return Options{Budget: 25_000, SweepBudget: 15_000, RosterBudget: 8_000}
}

// tinySession is shared by the equivalence tests below; like the
// engine's normal operation, every cache fills once and is reused.
var tinySession = NewSession(tinyOptions())

// visibleExceptReduction selects every paper unit but the §3
// reduction, which profiles its own 77-workload roster and dominates
// run time without exercising any shared cache.
func visibleExceptReduction() []string {
	var names []string
	for _, n := range VisibleUnitNames() {
		if n != "reduction" {
			names = append(names, n)
		}
	}
	return names
}

// TestSweepSingleTracePass is the counting probe of the memoized sweep
// cache: generating all four sweep figures must trace each distinct
// workload exactly once, not once per figure per view (the seed's 10
// group passes).
func TestSweepSingleTracePass(t *testing.T) {
	s := NewSession(tinyOptions())
	Fig6(s)
	Fig7(s)
	Fig8(s)
	Fig9(s)
	unique := len(hadoopGroup()) + len(parsecGroup()) + len(workloads.MPI6())
	if got := s.TracePasses(); got != int64(unique) {
		t.Fatalf("Fig6-9 executed %d trace passes, want exactly %d (one per workload)", got, unique)
	}
	// Re-running any figure must not trace anything again.
	Fig6(s)
	Fig9(s)
	if got := s.TracePasses(); got != int64(unique) {
		t.Fatalf("re-running figures re-traced: %d passes, want %d", got, unique)
	}
}

// TestMemoizedSweepsMatchSerial asserts the memoized concurrent sweep
// path reproduces the seed's serial path bit for bit: same curves, same
// knees, for every figure and group.
func TestMemoizedSweepsMatchSerial(t *testing.T) {
	serial := SerialSweepFigures(NewSession(tinyOptions()))
	s := tinySession
	memo := [4]SweepResult{Fig6(s), Fig7(s), Fig8(s), Fig9(s)}
	for f := range serial {
		want, got := serial[f], memo[f]
		if want.Title != got.Title {
			t.Fatalf("figure %d title %q vs %q", f, got.Title, want.Title)
		}
		for _, name := range want.Order {
			wc, gc := want.Curves[name], got.Curves[name]
			if len(wc) != len(gc) {
				t.Fatalf("%s/%s: %d sizes vs %d", want.Title, name, len(gc), len(wc))
			}
			for i := range wc {
				if math.Float64bits(wc[i]) != math.Float64bits(gc[i]) {
					t.Errorf("%s/%s at %d KB: memoized %v != serial %v",
						want.Title, name, want.SizesKB[i], gc[i], wc[i])
				}
			}
			for _, frac := range []float64{0.15, 0.2, 0.25} {
				if want.Knee(name, frac) != got.Knee(name, frac) {
					t.Errorf("%s/%s knee(%.2f): memoized %d != serial %d",
						want.Title, name, frac, got.Knee(name, frac), want.Knee(name, frac))
				}
			}
		}
	}
}

// renderAll renders every visible artifact of an engine run in order.
func renderAll(t *testing.T, results []UnitResult) string {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("unit %s: %v", r.Unit.Name, r.Err)
		}
		if r.Artifact != nil {
			r.Artifact.Render(&buf)
		}
	}
	return buf.String()
}

// TestEngineParallelMatchesSerial asserts the concurrent engine renders
// byte-identical output to the serial dependency-order run for the same
// options — every table, figure, curve and knee.
func TestEngineParallelMatchesSerial(t *testing.T) {
	sel := visibleExceptReduction()
	es := &Engine{Session: NewSession(tinyOptions()), Select: sel}
	serialRes, err := es.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	ep := &Engine{Session: tinySession, Select: sel}
	parRes, err := ep.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialOut := renderAll(t, serialRes)
	parOut := renderAll(t, parRes)
	if serialOut != parOut {
		t.Fatalf("parallel engine output differs from serial output:\n--- serial %d bytes, parallel %d bytes",
			len(serialOut), len(parOut))
	}
	if len(serialOut) == 0 {
		t.Fatal("engine rendered nothing")
	}
}

// TestEngineSelectPullsDeps asserts selection runs the transitive
// primer closure and nothing else.
func TestEngineSelectPullsDeps(t *testing.T) {
	e := &Engine{Session: NewSession(Options{Budget: 10_000, SweepBudget: 8_000, RosterBudget: 8_000}),
		Select: []string{"fig6"}}
	results, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Unit.Name] = true
	}
	for _, want := range []string{"fig6", "warm-sweep-hadoop", "warm-sweep-parsec"} {
		if !names[want] {
			t.Errorf("selected run missing %s (got %v)", want, names)
		}
	}
	if names["warm-reps"] || names["table2"] || names["fig9"] {
		t.Errorf("selected run pulled in unrelated units: %v", names)
	}
	// The sweep cache must hold only the two selected groups.
	if got, want := e.Session.TracePasses(), int64(len(hadoopGroup())+len(parsecGroup())); got != want {
		t.Errorf("selected run executed %d trace passes, want %d", got, want)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := (&Engine{Session: NewSession(tinyOptions()), Select: []string{"nonesuch"}}).Run(); err == nil {
		t.Error("unknown selection not rejected")
	}
	bad := []Unit{
		{Name: "a", Deps: []string{"b"}, Run: func(*Session) (Artifact, error) { return nil, nil }},
		{Name: "b", Deps: []string{"a"}, Run: func(*Session) (Artifact, error) { return nil, nil }},
	}
	if _, err := (&Engine{Session: NewSession(tinyOptions()), Units: bad}).Run(); err == nil {
		t.Error("dependency cycle not rejected")
	}
	dangling := []Unit{{Name: "a", Deps: []string{"ghost"}, Run: func(*Session) (Artifact, error) { return nil, nil }}}
	if _, err := (&Engine{Session: NewSession(tinyOptions()), Units: dangling}).Run(); err == nil {
		t.Error("unknown dependency not rejected")
	}
	dup := []Unit{
		{Name: "a", Run: func(*Session) (Artifact, error) { return nil, nil }},
		{Name: "a", Run: func(*Session) (Artifact, error) { return nil, nil }},
	}
	if _, err := (&Engine{Session: NewSession(tinyOptions()), Units: dup}).Run(); err == nil {
		t.Error("duplicate unit name not rejected")
	}
}

func TestEngineTimingTable(t *testing.T) {
	e := &Engine{Session: tinySession, Select: []string{"table1", "table3"}}
	results, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	tt := TimingTable(results)
	// One row per unit plus the total line.
	if len(tt.Rows) != len(results)+1 {
		t.Fatalf("timing table has %d rows for %d results", len(tt.Rows), len(results))
	}
}

// TestSessionConcurrentAccess hammers every session cache from many
// goroutines at once; run under -race it guards the lock-free-read,
// once-guarded-fill pattern against regression. It also checks all
// callers observe the same cached values.
func TestSessionConcurrentAccess(t *testing.T) {
	s := NewSession(Options{Budget: 10_000, SweepBudget: 8_000, RosterBudget: 8_000})
	sweepList := append(append([]workloads.Workload{}, hadoopGroup()...), workloads.MPI6()...)
	const hammers = 8
	var wg sync.WaitGroup
	repsLen := make([]int, hammers)
	kneeKB := make([]int, hammers)
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			repsLen[g] = len(s.Reps())
			_ = s.MPI()
			_ = s.AtomReps()
			avg, runs := s.Suites()
			if len(avg) != len(runs) {
				t.Errorf("suite maps disagree: %d vs %d", len(avg), len(runs))
			}
			_ = s.BigDataAverage()
			for _, w := range sweepList {
				c := s.SweepCurves(w, s.Opt.SweepBudget)
				if len(c.Inst) == 0 || len(c.Data) == 0 || len(c.Unified) == 0 {
					t.Errorf("empty sweep curves for %s", w.ID)
				}
			}
			kneeKB[g] = Fig6(s).Knee("Hadoop-workloads", 0.2)
		}(g)
	}
	wg.Wait()
	for g := 1; g < hammers; g++ {
		if repsLen[g] != repsLen[0] {
			t.Errorf("goroutine %d saw %d reps, first saw %d", g, repsLen[g], repsLen[0])
		}
		if kneeKB[g] != kneeKB[0] {
			t.Errorf("goroutine %d computed knee %d, first computed %d", g, kneeKB[g], kneeKB[0])
		}
	}
	// Each sweep workload must have been traced exactly once despite
	// eight concurrent requesters, plus the PARSEC group from Fig6.
	want := int64(len(sweepList) + len(parsecGroup()))
	if got := s.TracePasses(); got != want {
		t.Errorf("%d trace passes under concurrency, want %d", got, want)
	}
}

// TestKneeEdgeCases pins the Knee contract on degenerate curves.
func TestKneeEdgeCases(t *testing.T) {
	sizes := []int{16, 32, 64}
	mk := func(c []float64) SweepResult {
		return SweepResult{SizesKB: sizes[:len(c)], Curves: map[string][]float64{"g": c}}
	}
	// Flat curve: the knee is the first (smallest) size — no capacity
	// is needed to reach the floor.
	if got := mk([]float64{0.3, 0.3, 0.3}).Knee("g", 0.2); got != 16 {
		t.Errorf("flat curve knee = %d KB, want 16", got)
	}
	// Monotonically rising curve: the 16 KB point is already the
	// minimum, so the knee is again the first size.
	if got := mk([]float64{0.1, 0.2, 0.3}).Knee("g", 0.2); got != 16 {
		t.Errorf("rising curve knee = %d KB, want 16", got)
	}
	// Single-size sweep: the only size is the knee.
	if got := mk([]float64{0.4}).Knee("g", 0.2); got != 16 {
		t.Errorf("single-size knee = %d KB, want 16", got)
	}
	// Zero miss ratio at the smallest size: defined as 0 (no curve).
	if got := mk([]float64{0, 0, 0}).Knee("g", 0.2); got != 0 {
		t.Errorf("zero curve knee = %d KB, want 0", got)
	}
	// Missing curve: 0.
	if got := mk([]float64{0.1}).Knee("absent", 0.2); got != 0 {
		t.Errorf("absent curve knee = %d KB, want 0", got)
	}
	// A normal descending curve: knee where the curve has descended
	// frac of its range from the 16 KB value.
	r := SweepResult{SizesKB: sizes, Curves: map[string][]float64{"g": {0.4, 0.2, 0.1}}}
	if got := r.Knee("g", 0.5); got != 32 {
		t.Errorf("descending curve knee = %d KB, want 32", got)
	}
}

// TestFig6Fig9QualitativeClaims re-pins the paper's §5.4/§5.5 readings
// through the engine path: the Hadoop instruction footprint dwarfs
// PARSEC's, and the MPI implementations track PARSEC, not Hadoop.
func TestFig6Fig9QualitativeClaims(t *testing.T) {
	s := quickSession
	f6 := Fig6(s)
	hk := f6.Knee("Hadoop-workloads", 0.2)
	pk := f6.Knee("PARSEC-workloads", 0.2)
	if hk <= pk {
		t.Errorf("Fig6: Hadoop knee %d KB not beyond PARSEC knee %d KB (paper: ~1024 vs ~128)", hk, pk)
	}
	f9 := Fig9(s)
	mk := f9.Knee("MPI-workloads", 0.2)
	pk9 := f9.Knee("PARSEC-workloads", 0.2)
	hk9 := f9.Knee("Hadoop-workloads", 0.2)
	if mk > pk9*4 {
		t.Errorf("Fig9: MPI knee %d KB far beyond PARSEC knee %d KB — should track PARSEC", mk, pk9)
	}
	if mk >= hk9 {
		t.Errorf("Fig9: MPI knee %d KB not below Hadoop knee %d KB", mk, hk9)
	}
	// And at the smallest cache the MPI miss ratio sits with PARSEC's
	// order of magnitude, well below Hadoop's.
	m16 := f9.Curves["MPI-workloads"][0]
	h16 := f9.Curves["Hadoop-workloads"][0]
	if m16 >= h16 {
		t.Errorf("Fig9 at 16 KB: MPI %.4f not below Hadoop %.4f", m16, h16)
	}
}
