package experiments

import (
	"io"
	"sort"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/machineutil"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim/branch"
	"repro/internal/sim/machine"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// MixRow is one bar of Fig. 1 (retired instruction breakdown).
type MixRow struct {
	Name                         string
	Load, Store, Branch, Int, FP float64
}

func mixRow(name string, v metrics.Vector) MixRow {
	return MixRow{Name: name,
		Load:   v[metrics.MixLoad],
		Store:  v[metrics.MixStore],
		Branch: v[metrics.MixBranch],
		Int:    v[metrics.MixInt],
		FP:     v[metrics.MixFP],
	}
}

// Fig1Result reproduces Fig. 1 plus the §5.1 headline statistics.
type Fig1Result struct {
	Rows []MixRow
	// BigDataBranchAvg is the average branch ratio over the 17
	// representatives (paper: 18.7%).
	BigDataBranchAvg float64
	// BigDataIntAvg is the average integer ratio (paper: 38%).
	BigDataIntAvg float64
	// DataMovementShare is load+store+address-calculation share
	// (paper: ~73%); WithBranches adds branches (paper: ~92%).
	DataMovementShare, WithBranches float64
	// AvgGFLOPS vs PeakGFLOPS is the §5.1 floating-point observation
	// (paper: ~0.1 vs 57.6).
	AvgGFLOPS, PeakGFLOPS float64
}

// Fig1 computes the instruction-mix figure over the representative
// workloads, the MPI versions and the comparator suites.
func Fig1(s *Session) Fig1Result {
	var out Fig1Result
	reps := s.Reps()
	for _, p := range reps {
		out.Rows = append(out.Rows, mixRow(p.Workload.ID, p.Vector))
	}
	for _, p := range s.MPI() {
		out.Rows = append(out.Rows, mixRow(p.Workload.ID, p.Vector))
	}
	avg, _ := s.Suites()
	for _, name := range suites.Names() {
		out.Rows = append(out.Rows, mixRow(name, avg[name]))
	}
	bd := s.BigDataAverage()
	out.BigDataBranchAvg = bd[metrics.MixBranch]
	out.BigDataIntAvg = bd[metrics.MixInt]
	addr := bd[metrics.MixInt] * (bd[metrics.IntAddrShare] + bd[metrics.IntFPAddrShare])
	out.DataMovementShare = bd[metrics.MixLoad] + bd[metrics.MixStore] + addr
	out.WithBranches = out.DataMovementShare + bd[metrics.MixBranch]
	out.AvgGFLOPS = bd[metrics.GFLOPS]
	out.PeakGFLOPS = 57.6 // 6 cores x 2.4 GHz x 4 flops/cycle
	return out
}

// Render writes the figure as a table plus headline lines.
func (f Fig1Result) Render(w io.Writer) {
	t := report.Table{Title: "Figure 1: retired instruction breakdown",
		Headers: []string{"workload", "load%", "store%", "branch%", "integer%", "fp%"}}
	for _, r := range f.Rows {
		t.Add(r.Name, r.Load*100, r.Store*100, r.Branch*100, r.Int*100, r.FP*100)
	}
	t.Render(w)
	t2 := report.Table{Headers: []string{"statistic", "measured", "paper"}}
	t2.Add("big data branch ratio", f.BigDataBranchAvg*100, 18.7)
	t2.Add("big data integer ratio", f.BigDataIntAvg*100, 38.0)
	t2.Add("data movement share", f.DataMovementShare*100, 73.0)
	t2.Add("data movement + branches", f.WithBranches*100, 92.0)
	t2.Add("avg GFLOPS", f.AvgGFLOPS, 0.1)
	t2.Add("peak GFLOPS", f.PeakGFLOPS, 57.6)
	t2.Render(w)
}

// Fig2Result reproduces Fig. 2: the integer-instruction breakdown.
type Fig2Result struct {
	// IntAddr/FPAddr/Other are shares of integer instructions
	// (paper: 64% / 18% / 18%).
	IntAddr, FPAddr, Other float64
	PerWorkload            []struct {
		Name                   string
		IntAddr, FPAddr, Other float64
	}
}

// Fig2 computes the integer breakdown over the 17 representatives.
func Fig2(s *Session) Fig2Result {
	var out Fig2Result
	bd := s.BigDataAverage()
	out.IntAddr = bd[metrics.IntAddrShare]
	out.FPAddr = bd[metrics.IntFPAddrShare]
	out.Other = bd[metrics.IntOtherShare]
	for _, p := range s.Reps() {
		out.PerWorkload = append(out.PerWorkload, struct {
			Name                   string
			IntAddr, FPAddr, Other float64
		}{p.Workload.ID, p.Vector[metrics.IntAddrShare],
			p.Vector[metrics.IntFPAddrShare], p.Vector[metrics.IntOtherShare]})
	}
	return out
}

// Render writes Fig. 2.
func (f Fig2Result) Render(w io.Writer) {
	t := report.Table{Title: "Figure 2: integer instruction breakdown",
		Headers: []string{"workload", "int addr%", "fp addr%", "other%"}}
	for _, r := range f.PerWorkload {
		t.Add(r.Name, r.IntAddr*100, r.FPAddr*100, r.Other*100)
	}
	t.Add("AVERAGE (paper: 64/18/18)", f.IntAddr*100, f.FPAddr*100, f.Other*100)
	t.Render(w)
}

// ValueRow is one bar of a single-metric figure (Figs. 3-5).
type ValueRow struct {
	Name   string
	Values []float64
}

// FigSeriesResult holds a multi-metric bar figure.
type FigSeriesResult struct {
	Title    string
	Metrics  []string
	Rows     []ValueRow
	Averages map[string][]float64
}

// valueFigure assembles a figure over reps + MPI + suites for the given
// metric indices.
func valueFigure(s *Session, title string, names []string, idx []int) FigSeriesResult {
	out := FigSeriesResult{Title: title, Metrics: names, Averages: map[string][]float64{}}
	collect := func(name string, v metrics.Vector) []float64 {
		vals := make([]float64, len(idx))
		for i, ix := range idx {
			vals[i] = v[ix]
		}
		out.Rows = append(out.Rows, ValueRow{Name: name, Values: vals})
		return vals
	}
	for _, p := range s.Reps() {
		collect(p.Workload.ID, p.Vector)
	}
	for _, p := range s.MPI() {
		collect(p.Workload.ID, p.Vector)
	}
	avg, _ := s.Suites()
	for _, name := range suites.Names() {
		collect(name, avg[name])
	}
	bd := s.BigDataAverage()
	vals := make([]float64, len(idx))
	for i, ix := range idx {
		vals[i] = bd[ix]
	}
	out.Averages["big data (17 reps)"] = vals
	// Category and system-behaviour class averages, as the paper
	// reports per subsection.
	reps := s.Reps()
	for _, cat := range []workloads.Category{workloads.Service, workloads.DataAnalysis, workloads.InteractiveAnalysis} {
		v := machineutil.AverageWhere(reps, func(w workloads.Workload) bool { return w.Category == cat })
		vals := make([]float64, len(idx))
		for i, ix := range idx {
			vals[i] = v[ix]
		}
		out.Averages[cat.String()] = vals
	}
	return out
}

// Render writes the figure.
func (f FigSeriesResult) Render(w io.Writer) {
	t := report.Table{Title: f.Title, Headers: append([]string{"workload"}, f.Metrics...)}
	for _, r := range f.Rows {
		cells := make([]interface{}, 0, len(r.Values)+1)
		cells = append(cells, r.Name)
		for _, v := range r.Values {
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	keys := make([]string, 0, len(f.Averages))
	for k := range f.Averages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cells := make([]interface{}, 0, len(f.Averages[k])+1)
		cells = append(cells, "AVG "+k)
		for _, v := range f.Averages[k] {
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	t.Render(w)
}

// Fig3 reproduces Fig. 3 (IPC).
func Fig3(s *Session) FigSeriesResult {
	return valueFigure(s, "Figure 3: IPC", []string{"IPC"}, []int{metrics.IPC})
}

// Fig4 reproduces Fig. 4 (L1I/L1D/L2/L3 MPKI).
func Fig4(s *Session) FigSeriesResult {
	return valueFigure(s, "Figure 4: cache behaviour (MPKI)",
		[]string{"L1I", "L1D", "L2", "L3"},
		[]int{metrics.L1IMPKI, metrics.L1DMPKI, metrics.L2MPKI, metrics.L3MPKI})
}

// Fig5 reproduces Fig. 5 (ITLB/DTLB MPKI).
func Fig5(s *Session) FigSeriesResult {
	return valueFigure(s, "Figure 5: TLB behaviour (MPKI)",
		[]string{"ITLB", "DTLB"},
		[]int{metrics.ITLBMPKI, metrics.DTLBMPKI})
}

// AblationLoopPredictor measures the 17 representatives' average
// branch misprediction ratio on the Xeon model with and without the
// loop-counter component of the hybrid predictor (the mechanism the
// paper's Table 4 credits for part of the E5645's advantage).
func AblationLoopPredictor(s *Session) (withLoop, withoutLoop float64) {
	reps := s.Reps()
	for _, p := range reps {
		withLoop += p.Vector[metrics.BrMispredictRatio]
	}
	withLoop /= float64(len(reps))

	cfg := machine.XeonE5645()
	list := workloads.Representative17()
	ratios := make([]float64, len(list))
	conc.ForEach(s.Parallelism, len(list), func(i int) {
		m := machine.New(cfg)
		m.SetPredictor(branch.NewHybridOpt(false))
		workloads.Run(list[i], m, s.Opt.Budget)
		m.Finish()
		v := metrics.Compute(m)
		ratios[i] = v[metrics.BrMispredictRatio]
	})
	for _, r := range ratios {
		withoutLoop += r
	}
	withoutLoop /= float64(len(list))
	return withLoop, withoutLoop
}

// StackImpactResult reproduces §5.5: the same algorithms under MPI,
// Hadoop and Spark.
type StackImpactResult struct {
	Table report.Table
	// MPIAvgIPC vs OtherAvgIPC reproduce the "gap is 21%" measurement.
	MPIAvgIPC, OtherAvgIPC float64
	// MPIAvgL1I vs OtherAvgL1I reproduce the order-of-magnitude L1I
	// claim (paper: 3.4 vs 12.6).
	MPIAvgL1I, OtherAvgL1I float64
}

// StackImpact computes the §5.5 comparison from the session's profiled
// runs.
func StackImpact(s *Session) StackImpactResult {
	out := StackImpactResult{Table: report.Table{
		Title:   "Section 5.5: software stack impact",
		Headers: []string{"workload", "stack", "IPC", "L1I MPKI", "L2 MPKI", "L3 MPKI", "fw share%"},
	}}
	add := func(p core.Profile) {
		out.Table.Add(p.Workload.ID, p.Workload.Stack.Name,
			p.Vector[metrics.IPC], p.Vector[metrics.L1IMPKI],
			p.Vector[metrics.L2MPKI], p.Vector[metrics.L3MPKI],
			p.Run.FrameworkShare*100)
	}
	mpi := s.MPI()
	var nMPI, nOther int
	for _, p := range mpi {
		add(p)
		out.MPIAvgIPC += p.Vector[metrics.IPC]
		out.MPIAvgL1I += p.Vector[metrics.L1IMPKI]
		nMPI++
	}
	for _, p := range s.Reps() {
		switch p.Workload.Stack.Name {
		case "Hadoop", "Spark":
			add(p)
			out.OtherAvgIPC += p.Vector[metrics.IPC]
			out.OtherAvgL1I += p.Vector[metrics.L1IMPKI]
			nOther++
		}
	}
	out.MPIAvgIPC /= float64(nMPI)
	out.MPIAvgL1I /= float64(nMPI)
	out.OtherAvgIPC /= float64(nOther)
	out.OtherAvgL1I /= float64(nOther)
	return out
}
