package experiments

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/artifact"
)

// TestRunContextPreCancelled pins the cheap path: a context cancelled
// before the run starts executes nothing and returns ctx.Err().
func TestRunContextPreCancelled(t *testing.T) {
	s := NewSession(tinyOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &Engine{Session: s, Parallelism: 2}
	results, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unit %s err = %v, want context.Canceled", r.Unit.Name, r.Err)
		}
	}
	if s.TracePasses() != 0 || s.ProfileRuns() != 0 || s.Renders() != 0 {
		t.Fatalf("pre-cancelled run still simulated: passes=%d runs=%d renders=%d",
			s.TracePasses(), s.ProfileRuns(), s.Renders())
	}
}

// TestRunContextCancelMidRun cancels while simulation is in flight and
// checks three things the serving daemon depends on: the run returns
// ctx.Err() promptly, the store is left uncorrupted (a follow-up run
// over the same store completes and matches an untouched reference
// byte for byte), and no fill was published half-done.
func TestRunContextCancelMidRun(t *testing.T) {
	store := artifact.New()
	s := NewSession(tinyOptions())
	s.Store = store
	s.Parallelism = 2

	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{Session: s, Parallelism: 2, Select: []string{"fig6"}}

	done := make(chan error, 1)
	go func() {
		_, err := e.RunContext(ctx)
		done <- err
	}()
	// Cancel as soon as real work has started.
	for i := 0; i < 10_000 && s.TracePasses() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}

	// The shared store must still converge to the reference output.
	ref := NewSession(tinyOptions())
	refResults, err := (&Engine{Session: ref, Select: []string{"fig6"}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewSession(tinyOptions())
	resumed.Store = store
	resResults, err := (&Engine{Session: resumed, Select: []string{"fig6"}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	refResults[len(refResults)-1].Artifact.Render(&want)
	resResults[len(resResults)-1].Artifact.Render(&got)
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("store corrupted by cancellation: resumed output differs from reference")
	}
}

// TestCancelledFillNotPoisoned pins the store interaction directly: a
// sweep fill aborted by cancellation must not cache the error against
// the key — the next caller recomputes and succeeds.
func TestCancelledFillNotPoisoned(t *testing.T) {
	store := artifact.New()
	w := hadoopGroup()[0]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s1 := NewSession(tinyOptions())
	s1.Store = store
	s1.Ctx = ctx
	err := func() (err error) {
		defer RecoverCanceled(&err)
		s1.SweepCurves(w, s1.Opt.SweepBudget)
		return nil
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SweepCurves err = %v, want context.Canceled", err)
	}
	if s1.TracePasses() != 0 {
		t.Fatal("cancelled sweep counted a trace pass")
	}

	s2 := NewSession(tinyOptions())
	s2.Store = store
	curves := s2.SweepCurves(w, s2.Opt.SweepBudget)
	if len(curves.Inst) == 0 {
		t.Fatal("retry after cancellation produced no curves")
	}
	if s2.TracePasses() != 1 {
		t.Fatalf("retry executed %d trace passes, want 1", s2.TracePasses())
	}
}

// TestRunContextNoGoroutineLeak hammers cancel-while-running and then
// checks the goroutine count settles back — the engine's workers, the
// fan-out pools and the flight of emitters must all unwind.
func TestRunContextNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewSession(tinyOptions())
		s.Parallelism = 2
		ctx, cancel := context.WithCancel(context.Background())
		e := &Engine{Session: s, Parallelism: 2, Select: []string{"fig6"}}
		go func() {
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			cancel()
		}()
		e.RunContext(ctx)
		cancel()
	}
	// Allow unwinding goroutines to exit.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// The process-wide replay pool is persistent; everything else
		// must return to (near) the starting count.
		if runtime.NumGoroutine() <= before+int(runtime.NumCPU())+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancellation hammering", before, runtime.NumGoroutine())
}
