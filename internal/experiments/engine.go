package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Artifact is a renderable experiment output.
type Artifact interface {
	Render(w io.Writer)
}

// RenderFunc adapts a closure to Artifact.
type RenderFunc func(io.Writer)

// Render implements Artifact.
func (f RenderFunc) Render(w io.Writer) { f(w) }

// Unit is one schedulable experiment: a paper table/figure, or a
// hidden cache-primer that warms a Session cache so the visible units
// depending on it never contend for the same profiling pass.
type Unit struct {
	Name string
	// Deps name units that must complete before this one starts.
	Deps []string
	// Hidden marks cache primers: they produce no artifact and
	// cmd/repro does not list them as selectable items.
	Hidden bool
	Run    func(*Session) (Artifact, error)
}

// UnitResult is one executed unit with its wall time.
type UnitResult struct {
	Unit     Unit
	Artifact Artifact
	Err      error
	Elapsed  time.Duration
}

// EventSink receives engine lifecycle events (unit_scheduled,
// unit_start, unit_finish). It is declared here rather than importing
// the event bus so the experiments package stays dependency-free; a
// *eventbus.Publisher satisfies it directly. Active is the cheap gate:
// the engine skips building event payloads entirely when it reports
// false, keeping the no-observer run cost at zero.
type EventSink interface {
	Active() bool
	Event(typ string, data map[string]any)
}

// Engine runs every table and figure of the paper as a
// dependency-aware concurrent batch over one shared Session. Units
// whose dependencies are satisfied execute in parallel on a bounded
// worker pool; the hidden primer units fan the heavyweight profiling
// and sweep passes out first so no two visible units repeat work.
type Engine struct {
	Session *Session
	// Parallelism bounds concurrent units (0 = GOMAXPROCS).
	Parallelism int
	// Units overrides the experiment set (nil = Units()).
	Units []Unit
	// Select restricts the run to these visible unit names (nil = all);
	// dependencies are pulled in transitively.
	Select []string
	// Events, when non-nil and active, receives unit lifecycle events:
	// unit_scheduled (once per selected unit, in definition order, when
	// the run is planned), unit_start, and unit_finish (with wall-time
	// ms, status ok/primer/error, and source provenance — computed,
	// warm, primer, or custom). Publishing never blocks the run.
	Events EventSink
	// Shard/ShardCount split the selected visible units round-robin
	// (by definition order) across ShardCount cooperating engine runs;
	// shard Shard executes only its assigned units plus their
	// transitive primers. ShardCount <= 1 disables sharding. Shards
	// sharing a disk-backed session store compute each underlying
	// artefact once between them and merge to byte-identical output.
	Shard, ShardCount int
}

// ParseShard parses a CLI shard spec "i/n" (0-based, n >= 2),
// rejecting malformed or out-of-range specs — the one parser shared by
// cmd/repro, cmd/wcrt and cmd/bdbench. Both halves must be bare
// unsigned decimal digits: signed ("-1/3", "+1/3"), spaced, empty or
// out-of-range ("2/1") specs all fail with a clear error instead of
// silently producing an empty or aliased shard.
func ParseShard(spec string) (shard, count int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("invalid shard %q (want i/n with 0 <= i < n, n >= 2)", spec)
	}
	digits := func(s string) bool {
		if s == "" {
			return false
		}
		for _, r := range s {
			if r < '0' || r > '9' {
				return false
			}
		}
		return true
	}
	is, ns, ok := strings.Cut(spec, "/")
	if !ok || !digits(is) || !digits(ns) {
		return bad()
	}
	shard, err1 := strconv.Atoi(is)
	count, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil || count < 2 || shard >= count {
		return bad()
	}
	return shard, count, nil
}

// Run executes the selected units concurrently and returns results in
// unit-definition order.
func (e *Engine) Run() ([]UnitResult, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run bound to a context. Cancellation is plumbed all
// the way down: units not yet started are skipped (their result
// carries ctx.Err()), in-flight simulation work stops within a few
// thousand instructions (the session threads the context into every
// emitter and sweep fan-out), aborted fills are discarded — a
// cancelled run never publishes a partial artefact — and the call
// returns ctx.Err().
//
// The context is installed as the session's Ctx for the duration when
// the session has none; an engine run and other cancellable work must
// therefore not share one Session concurrently (the serving daemon
// builds a session per request).
func (e *Engine) RunContext(ctx context.Context) ([]UnitResult, error) {
	par := e.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return e.run(ctx, par)
}

// RunSerial executes the selected units one at a time in dependency
// order — the reference the concurrent path is benchmarked against.
func (e *Engine) RunSerial() ([]UnitResult, error) {
	return e.run(context.Background(), 1)
}

func (e *Engine) units() []Unit {
	if e.Units != nil {
		return e.Units
	}
	return Units()
}

// schedule is the validated execution graph over a unit set: which
// indices run, each one's in-degree, and its dependents.
type schedule struct {
	selected   map[int]bool
	indeg      map[int]int
	dependents map[int][]int
}

// plan validates the unit graph and builds the schedule: selection
// plus transitive dependencies, with the subgraph confirmed acyclic
// via Kahn's algorithm.
func (e *Engine) plan(units []Unit) (*schedule, error) {
	byName := make(map[string]int, len(units))
	for i, u := range units {
		if _, dup := byName[u.Name]; dup {
			return nil, fmt.Errorf("experiments: duplicate unit %q", u.Name)
		}
		byName[u.Name] = i
	}
	for _, u := range units {
		for _, d := range u.Deps {
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("experiments: unit %q depends on unknown unit %q", u.Name, d)
			}
		}
	}
	sc := &schedule{
		selected:   make(map[int]bool, len(units)),
		indeg:      map[int]int{},
		dependents: map[int][]int{},
	}
	// addTo pulls a unit and its transitive dependencies into a set.
	var addTo func(sel map[int]bool, i int)
	addTo = func(sel map[int]bool, i int) {
		if sel[i] {
			return
		}
		sel[i] = true
		for _, d := range units[i].Deps {
			addTo(sel, byName[d])
		}
	}
	if e.Select == nil {
		for i := range units {
			sc.selected[i] = true
		}
	} else {
		for _, name := range e.Select {
			i, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("experiments: unknown unit %q", name)
			}
			addTo(sc.selected, i)
		}
	}
	if e.ShardCount > 1 || e.Shard != 0 {
		if e.ShardCount < 2 || e.Shard < 0 || e.Shard >= e.ShardCount {
			return nil, fmt.Errorf("experiments: invalid shard %d/%d", e.Shard, e.ShardCount)
		}
		// Assign the selected visible units round-robin in definition
		// order (deterministic, so cooperating shards partition the
		// visible set exactly), then rebuild the primer closure for
		// this shard's share.
		mine := make(map[int]bool, len(sc.selected))
		vi := 0
		for i := range units {
			if sc.selected[i] && !units[i].Hidden {
				if vi%e.ShardCount == e.Shard {
					addTo(mine, i)
				}
				vi++
			}
		}
		sc.selected = mine
	}
	// Build edges in unit-definition order so dependent dispatch (and
	// therefore RunSerial's visit order) is deterministic.
	for i := range units {
		if !sc.selected[i] {
			continue
		}
		for _, d := range units[i].Deps {
			di := byName[d]
			if sc.selected[di] {
				sc.indeg[i]++
				sc.dependents[di] = append(sc.dependents[di], i)
			}
		}
	}
	// Cycle check over a copy of the in-degrees.
	indeg := make(map[int]int, len(sc.indeg))
	for i, d := range sc.indeg {
		indeg[i] = d
	}
	queue := make([]int, 0, len(sc.selected))
	for i := range units {
		if sc.selected[i] && indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range sc.dependents[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(sc.selected) {
		return nil, fmt.Errorf("experiments: dependency cycle among units")
	}
	return sc, nil
}

func (e *Engine) run(ctx context.Context, par int) ([]UnitResult, error) {
	units := e.units()
	sc, err := e.plan(units)
	if err != nil {
		return nil, err
	}
	// Install the context as the session's for the duration, so unit
	// bodies (which only see the Session) observe cancellation.
	if e.Session != nil && e.Session.Ctx == nil && ctx != context.Background() {
		e.Session.Ctx = ctx
		defer func() { e.Session.Ctx = nil }()
	}
	e.prefetch(units, sc)
	selected, indeg, dependents := sc.selected, sc.indeg, sc.dependents

	if e.eventsActive() {
		for i := range units {
			if selected[i] {
				e.Events.Event("unit_scheduled", map[string]any{
					"unit": units[i].Name, "primer": units[i].Hidden,
				})
			}
		}
	}

	n := len(selected)
	ready := make(chan int, n)
	completions := make(chan int, n)
	// Seed the ready queue in definition order so RunSerial visits
	// units deterministically.
	for i := range units {
		if selected[i] && indeg[i] == 0 {
			ready <- i
		}
	}

	res := make([]UnitResult, len(units))
	for w := 0; w < par; w++ {
		go func() {
			for i := range ready {
				if e.eventsActive() {
					e.Events.Event("unit_start", map[string]any{"unit": units[i].Name})
				}
				start := time.Now()
				art, src, err := e.runUnit(ctx, units[i])
				elapsed := time.Since(start)
				res[i] = UnitResult{Unit: units[i], Artifact: art, Err: err, Elapsed: elapsed}
				if e.eventsActive() {
					status := "ok"
					if err != nil {
						status = "error"
					} else if units[i].Hidden {
						status = "primer"
					}
					data := map[string]any{
						"unit": units[i].Name, "ms": float64(elapsed.Microseconds()) / 1000,
						"status": status, "source": src,
					}
					if err != nil {
						data["error"] = err.Error()
					}
					e.Events.Event("unit_finish", data)
				}
				completions <- i
			}
		}()
	}
	for done := 0; done < n; done++ {
		i := <-completions
		for _, d := range dependents[i] {
			if indeg[d]--; indeg[d] == 0 {
				ready <- d
			}
		}
	}
	close(ready)

	out := make([]UnitResult, 0, n)
	for i := range units {
		if selected[i] {
			out = append(out, res[i])
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// prefetch stages every persisted artefact the planned run can reuse —
// the primer closures (profile records, sweep curves) plus the
// selected units' rendered bytes — in one bulk backend download, so a
// cold engine against a remote store issues one POST /closure instead
// of a GET per key. Free when the store has no bulk-capable tier;
// custom unit sets have no computable keys and skip the render tier.
func (e *Engine) prefetch(units []Unit, sc *schedule) {
	s := e.Session
	if s == nil {
		return
	}
	st := s.ArtifactStore()
	if !st.BulkCapable() {
		return
	}
	var keys []artifact.Key
	for i, u := range units {
		if !sc.selected[i] {
			continue
		}
		if u.Hidden {
			keys = append(keys, s.primerKeys(u.Name)...)
		} else if e.Units == nil {
			keys = append(keys, UnitRenderKey(s.Opt, u.Name))
		}
	}
	st.Prefetch(keys)
}

// renderKey identifies one unit's rendered output in the store: the
// unit name, everything that determines its content (the session
// options — all artefacts downstream are deterministic functions of
// them) and the rendering format. artifact.Version covers code
// changes that alter output.
type renderKey struct {
	Unit   string
	Opt    Options
	Format string
}

// UnitRenderKey returns the store identity of a visible paper unit's
// rendered bytes at the given options — the key the engine memoizes
// runUnit under, exported so the serving daemon's warm fast path can
// answer a request straight from the store without planning an engine
// run.
func UnitRenderKey(opt Options, unit string) artifact.Key {
	return artifact.KeyOf("render", renderKey{Unit: unit, Opt: opt, Format: "text"})
}

// eventsActive reports whether event payloads are worth building: a
// sink is attached and it has someone listening.
func (e *Engine) eventsActive() bool {
	return e.Events != nil && e.Events.Active()
}

// runUnit executes one unit. Visible units of the default experiment
// set are render-memoized: the unit's rendered bytes are themselves a
// store artefact, so a warm-started run (same options, persisted
// store) skips not just the simulation behind a table or figure but
// the table walk and formatting too — it only copies bytes. Custom
// unit sets (e.Units != nil) run unmemoized: their names don't
// identify content the way the fixed paper set's do.
//
// src is the unit's render provenance for the event stream: "primer"
// (hidden warm-up), "custom" (unmemoized custom set), "computed" (the
// render pass ran here) or "warm" (bytes served from the store).
//
// Cancellation surfaces here: a unit whose context is already done is
// skipped outright, and a session-cancellation unwind out of a running
// unit body is converted back into its error result.
func (e *Engine) runUnit(ctx context.Context, u Unit) (art Artifact, src string, err error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, "", cerr
	}
	defer RecoverCanceled(&err)
	s := e.Session
	if u.Hidden || e.Units != nil {
		src = "custom"
		if u.Hidden {
			src = "primer"
		}
		art, err = u.Run(s)
		return art, src, err
	}
	key := UnitRenderKey(s.Opt, u.Name)
	rendered := false
	b, err := artifact.Get(s.ArtifactStore(), key, func() ([]byte, error) {
		art, err := u.Run(s)
		if err != nil || art == nil {
			return nil, err
		}
		var buf bytes.Buffer
		art.Render(&buf)
		s.renders.Add(1)
		rendered = true
		return buf.Bytes(), nil
	})
	src = "warm"
	if rendered {
		src = "computed"
	}
	if err != nil || b == nil {
		return nil, src, err
	}
	return RenderFunc(func(w io.Writer) { w.Write(b) }), src, nil
}

// TimingTable summarizes an engine run: one row per unit with its wall
// time, hidden primers included (they carry the heavyweight profiling).
func TimingTable(results []UnitResult) report.Table {
	t := report.Table{Title: "engine timing", Headers: []string{"unit", "ms", "status"}}
	var total time.Duration
	for _, r := range results {
		status := "ok"
		if r.Err != nil {
			status = "error: " + r.Err.Error()
		} else if r.Unit.Hidden {
			status = "primer"
		}
		t.Add(r.Unit.Name, float64(r.Elapsed.Microseconds())/1000, status)
		total += r.Elapsed
	}
	t.Add("TOTAL (cpu, not wall)", float64(total.Microseconds())/1000, "")
	return t
}

// Units returns the full experiment set: hidden primers that warm the
// session's profile and sweep caches, then every table and figure of
// the paper wired to its primers. The artifacts render exactly what
// cmd/repro prints per item.
func Units() []Unit {
	warm := func(f func(*Session)) func(*Session) (Artifact, error) {
		return func(s *Session) (Artifact, error) { f(s); return nil, nil }
	}
	return []Unit{
		{Name: "warm-reps", Hidden: true, Run: warm(func(s *Session) { s.Reps() })},
		{Name: "warm-mpi", Hidden: true, Run: warm(func(s *Session) { s.MPI() })},
		{Name: "warm-atom", Hidden: true, Run: warm(func(s *Session) { s.AtomReps() })},
		{Name: "warm-suites", Hidden: true, Run: warm(func(s *Session) { s.Suites() })},
		{Name: "warm-sweep-hadoop", Hidden: true, Run: warm(func(s *Session) { sweepGroup(s, hadoopGroup(), curveInst) })},
		{Name: "warm-sweep-parsec", Hidden: true, Run: warm(func(s *Session) { sweepGroup(s, parsecGroup(), curveInst) })},
		{Name: "warm-sweep-mpi", Hidden: true, Run: warm(func(s *Session) { sweepGroup(s, workloads.MPI6(), curveInst) })},
		{Name: "warm-roster", Hidden: true, Run: warm(func(s *Session) { s.Roster() })},

		{Name: "table1", Run: func(s *Session) (Artifact, error) {
			rows := Table1()
			return RenderFunc(func(w io.Writer) { RenderTable1(w, rows) }), nil
		}},
		{Name: "table2", Deps: []string{"warm-reps"}, Run: func(s *Session) (Artifact, error) {
			rows := Table2(s)
			return RenderFunc(func(w io.Writer) { RenderTable2(w, rows) }), nil
		}},
		{Name: "table3", Run: func(s *Session) (Artifact, error) {
			t := Table3()
			return RenderFunc(func(w io.Writer) { t.Render(w) }), nil
		}},
		{Name: "table4", Deps: []string{"warm-reps", "warm-atom"}, Run: func(s *Session) (Artifact, error) {
			r := Table4(s)
			return RenderFunc(func(w io.Writer) {
				r.Mechanisms.Render(w)
				r.PerWorkload.Render(w)
				sum := report.Table{Headers: []string{"average misprediction", "measured", "paper"}}
				sum.Add("Atom D510", r.AtomAvg*100, r.PaperAtomAvg*100)
				sum.Add("Xeon E5645", r.XeonAvg*100, r.PaperXeonAvg*100)
				sum.Render(w)
			}), nil
		}},
		{Name: "fig1", Deps: []string{"warm-reps", "warm-mpi", "warm-suites"}, Run: func(s *Session) (Artifact, error) {
			return Fig1(s), nil
		}},
		{Name: "fig2", Deps: []string{"warm-reps"}, Run: func(s *Session) (Artifact, error) {
			return Fig2(s), nil
		}},
		{Name: "fig3", Deps: []string{"warm-reps", "warm-mpi", "warm-suites"}, Run: func(s *Session) (Artifact, error) {
			return Fig3(s), nil
		}},
		{Name: "fig4", Deps: []string{"warm-reps", "warm-mpi", "warm-suites"}, Run: func(s *Session) (Artifact, error) {
			return Fig4(s), nil
		}},
		{Name: "fig5", Deps: []string{"warm-reps", "warm-mpi", "warm-suites"}, Run: func(s *Session) (Artifact, error) {
			return Fig5(s), nil
		}},
		{Name: "fig6", Deps: []string{"warm-sweep-hadoop", "warm-sweep-parsec"}, Run: sweepUnit(Fig6)},
		{Name: "fig7", Deps: []string{"warm-sweep-hadoop", "warm-sweep-parsec"}, Run: sweepUnit(Fig7)},
		{Name: "fig8", Deps: []string{"warm-sweep-hadoop", "warm-sweep-parsec"}, Run: sweepUnit(Fig8)},
		{Name: "fig9", Deps: []string{"warm-sweep-hadoop", "warm-sweep-parsec", "warm-sweep-mpi"}, Run: sweepUnit(Fig9)},
		{Name: "reduction", Deps: []string{"warm-roster"}, Run: func(s *Session) (Artifact, error) {
			r, err := Reduction(s)
			if err != nil {
				return nil, err
			}
			return RenderFunc(func(w io.Writer) {
				r.Render(w)
				fmt.Fprintf(w, "PCA kept %d dimensions explaining %.1f%% of variance\n",
					r.Reduction.Dimensions, r.Reduction.Explained*100)
			}), nil
		}},
		{Name: "stack", Deps: []string{"warm-reps", "warm-mpi"}, Run: func(s *Session) (Artifact, error) {
			r := StackImpact(s)
			return RenderFunc(func(w io.Writer) {
				r.Table.Render(w)
				fmt.Fprintf(w, "avg IPC: MPI %.2f vs Hadoop/Spark %.2f (paper: 1.4 vs 1.16)\n",
					r.MPIAvgIPC, r.OtherAvgIPC)
				fmt.Fprintf(w, "avg L1I MPKI: MPI %.1f vs Hadoop/Spark %.1f (paper: 3.4 vs 12.6)\n",
					r.MPIAvgL1I, r.OtherAvgL1I)
			}), nil
		}},
	}
}

// sweepUnit wraps a Fig6-9 runner, appending the knee reading cmd/repro
// prints under each sweep figure.
func sweepUnit(fig func(*Session) SweepResult) func(*Session) (Artifact, error) {
	return func(s *Session) (Artifact, error) {
		r := fig(s)
		return RenderFunc(func(w io.Writer) {
			r.Render(w)
			fmt.Fprintf(w, "knee(Hadoop, 0.2) = %d KB; knee(PARSEC, 0.2) = %d KB\n",
				r.Knee("Hadoop-workloads", 0.2), r.Knee("PARSEC-workloads", 0.2))
		}), nil
	}
}

// VisibleUnitNames lists the selectable (non-primer) units in
// definition order — the item names cmd/repro accepts.
func VisibleUnitNames() []string {
	var names []string
	for _, u := range Units() {
		if !u.Hidden {
			names = append(names, u.Name)
		}
	}
	return names
}
