package experiments

import (
	"strings"
	"testing"

	"repro/internal/sysmodel"
	"repro/internal/workloads"
)

// quickSession is shared across the experiment tests (profiled runs are
// cached inside).
var quickSession = NewSession(Quick())

func TestTable1SevenDatasets(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("%d datasets, want 7 (Table 1)", len(rows))
	}
	for _, r := range rows {
		if r.SimRecords <= 0 || r.SimBytes <= 0 {
			t.Fatalf("dataset %s not materialized", r.Name)
		}
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	if !strings.Contains(sb.String(), "Wikipedia") {
		t.Fatal("render missing Wikipedia row")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows := Table2(quickSession)
	if len(rows) != 17 {
		t.Fatalf("%d rows, want 17", len(rows))
	}
	byID := map[string]Table2Row{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// The paper's headline classifications that must reproduce.
	if byID["H-Read"].System != sysmodel.IOIntensive {
		t.Errorf("H-Read classified %v, paper says IO-intensive", byID["H-Read"].System)
	}
	if byID["H-Grep"].System != sysmodel.CPUIntensive {
		t.Errorf("H-Grep classified %v, paper says CPU-intensive", byID["H-Grep"].System)
	}
	if byID["H-NaiveBayes"].System != sysmodel.CPUIntensive {
		t.Errorf("H-NaiveBayes classified %v, paper says CPU-intensive", byID["H-NaiveBayes"].System)
	}
	if byID["S-Kmeans"].System != sysmodel.CPUIntensive {
		t.Errorf("S-Kmeans classified %v, paper says CPU-intensive", byID["S-Kmeans"].System)
	}
	if byID["S-PageRank"].System != sysmodel.CPUIntensive {
		t.Errorf("S-PageRank classified %v, paper says CPU-intensive", byID["S-PageRank"].System)
	}
	if byID["I-SelectQuery"].System != sysmodel.IOIntensive {
		t.Errorf("I-SelectQuery classified %v, paper says IO-intensive", byID["I-SelectQuery"].System)
	}
	// Data behaviours (Table 2 cells).
	if byID["S-Sort"].OutVsIn != workloads.RatioEqual {
		t.Errorf("S-Sort output %v, paper says Output=Input", byID["S-Sort"].OutVsIn)
	}
	if byID["H-Read"].OutVsIn != workloads.RatioEqual {
		t.Errorf("H-Read output %v, paper says Output=Input", byID["H-Read"].OutVsIn)
	}
	if byID["S-PageRank"].OutVsIn != workloads.RatioMore {
		t.Errorf("S-PageRank output %v, paper says Output>Input", byID["S-PageRank"].OutVsIn)
	}
	if byID["H-Grep"].OutVsIn != workloads.RatioNone {
		t.Errorf("H-Grep output %v, paper says Output<<Input", byID["H-Grep"].OutVsIn)
	}
}

func TestTable4PredictorGap(t *testing.T) {
	r := Table4(quickSession)
	if r.AtomAvg <= r.XeonAvg {
		t.Fatalf("Atom misprediction %.3f <= Xeon %.3f; paper: 7.8%% vs 2.8%%",
			r.AtomAvg, r.XeonAvg)
	}
	ratio := r.AtomAvg / r.XeonAvg
	if ratio < 1.7 || ratio > 5 {
		t.Fatalf("Atom/Xeon misprediction ratio %.2f far from the paper's ~2.8x", ratio)
	}
	if r.XeonAvg > 0.09 {
		t.Fatalf("Xeon misprediction %.1f%% too high (paper: 2.8%%)", r.XeonAvg*100)
	}
}

func TestFig1Headlines(t *testing.T) {
	f := Fig1(quickSession)
	if f.BigDataBranchAvg < 0.14 || f.BigDataBranchAvg > 0.26 {
		t.Errorf("big data branch ratio %.1f%%, paper: 18.7%%", f.BigDataBranchAvg*100)
	}
	if f.BigDataIntAvg < 0.30 || f.BigDataIntAvg > 0.50 {
		t.Errorf("big data integer ratio %.1f%%, paper: 38%%", f.BigDataIntAvg*100)
	}
	if f.WithBranches < 0.80 {
		t.Errorf("data movement + branches %.1f%%, paper: ~92%%", f.WithBranches*100)
	}
	if f.AvgGFLOPS > 2 {
		t.Errorf("big data GFLOPS %.2f; paper observes ~0.1 of a 57.6 peak", f.AvgGFLOPS)
	}
	// Branch ratio: big data above HPCC/SPECFP/PARSEC (paper's first
	// observation).
	suiteBranch := map[string]float64{}
	for _, row := range f.Rows {
		suiteBranch[row.Name] = row.Branch
	}
	for _, s := range []string{"HPCC", "SPECFP", "PARSEC"} {
		if f.BigDataBranchAvg <= suiteBranch[s] {
			t.Errorf("big data branch ratio %.3f not above %s %.3f",
				f.BigDataBranchAvg, s, suiteBranch[s])
		}
	}
}

func TestFig2IntegerBreakdown(t *testing.T) {
	f := Fig2(quickSession)
	sum := f.IntAddr + f.FPAddr + f.Other
	if sum < 0.98 || sum > 1.02 {
		t.Fatalf("integer breakdown sums to %v", sum)
	}
	// Paper: 64% integer address / 18% fp address / 18% other — address
	// calculation must dominate.
	if f.IntAddr < 0.4 {
		t.Errorf("int-address share %.2f, paper: 0.64", f.IntAddr)
	}
	if f.FPAddr <= 0.02 {
		t.Errorf("fp-address share %.2f, paper: 0.18", f.FPAddr)
	}
}

func TestFig3IPCShape(t *testing.T) {
	f := Fig3(quickSession)
	ipc := map[string]float64{}
	for _, r := range f.Rows {
		ipc[r.Name] = r.Values[0]
	}
	bd := f.Averages["big data (17 reps)"][0]
	if bd < 0.9 || bd > 1.7 {
		t.Errorf("big data average IPC %.2f, paper: 1.28", bd)
	}
	// The stack ordering of Fig. 3: MPI WordCount fastest, Hadoop in
	// the middle, Spark slowest (paper: 1.8 / 1.1 / 0.9).
	if !(ipc["M-WordCount"] > ipc["H-WordCount"] && ipc["H-WordCount"] > ipc["S-WordCount"]) {
		t.Errorf("WordCount IPC ordering M(%.2f) > H(%.2f) > S(%.2f) violated",
			ipc["M-WordCount"], ipc["H-WordCount"], ipc["S-WordCount"])
	}
	// H-Read is the paper's low-IPC service outlier (0.8).
	if ipc["H-Read"] > bd {
		t.Errorf("H-Read IPC %.2f above the big data average %.2f", ipc["H-Read"], bd)
	}
	// HPCC posts the highest suite IPC (1.5).
	if ipc["HPCC"] < ipc["SPECINT"] {
		t.Errorf("HPCC IPC %.2f below SPECINT %.2f", ipc["HPCC"], ipc["SPECINT"])
	}
}

func TestFig4CacheShape(t *testing.T) {
	f := Fig4(quickSession)
	l1i := map[string]float64{}
	l2 := map[string]float64{}
	l3 := map[string]float64{}
	for _, r := range f.Rows {
		l1i[r.Name] = r.Values[0]
		l2[r.Name] = r.Values[2]
		l3[r.Name] = r.Values[3]
	}
	// Order-of-magnitude stack difference (paper: M-WC 2, H-WC 7, S-WC 17).
	if l1i["M-WordCount"]*3 > l1i["H-WordCount"] {
		t.Errorf("L1I: MPI %.2f not << Hadoop %.2f", l1i["M-WordCount"], l1i["H-WordCount"])
	}
	if l1i["S-WordCount"] <= l1i["H-WordCount"] {
		t.Errorf("L1I: Spark %.1f not above Hadoop %.1f (paper: 17 vs 7)",
			l1i["S-WordCount"], l1i["H-WordCount"])
	}
	// H-Read (service) has the highest representative L1I (paper: 51).
	maxRep := 0.0
	for _, p := range quickSession.Reps() {
		if v := l1i[p.Workload.ID]; v > maxRep {
			maxRep = v
		}
	}
	if l1i["H-Read"] < maxRep {
		t.Errorf("H-Read L1I %.1f is not the service maximum %.1f", l1i["H-Read"], maxRep)
	}
	// L2: the same stack ordering holds (paper: 0.8 / 8.4 / 16).
	if !(l2["M-WordCount"] < l2["H-WordCount"] && l2["H-WordCount"] < l2["S-WordCount"]) {
		t.Errorf("L2 stack ordering violated: M %.1f H %.1f S %.1f",
			l2["M-WordCount"], l2["H-WordCount"], l2["S-WordCount"])
	}
	// L3: MPI below the JVM stacks (paper: 0.1 vs 1.9/2.7).
	if l3["M-WordCount"] >= l3["S-WordCount"] {
		t.Errorf("L3: MPI %.2f not below Spark %.2f", l3["M-WordCount"], l3["S-WordCount"])
	}
	// CloudSuite is the L1I-heaviest suite (paper: 32).
	if l1i["CloudSuite"] < l1i["PARSEC"]*4 {
		t.Errorf("CloudSuite L1I %.1f not >> PARSEC %.1f", l1i["CloudSuite"], l1i["PARSEC"])
	}
}

func TestFig5TLBShape(t *testing.T) {
	f := Fig5(quickSession)
	itlb := map[string]float64{}
	for _, r := range f.Rows {
		itlb[r.Name] = r.Values[0]
	}
	// Service ITLB pressure is of the same order as the analytics
	// classes. (Paper: service 0.2 vs data analysis 0.04; our stack
	// model spreads per-record slow paths over more pages than the
	// real Hadoop text layout, so the DA side runs high — recorded as
	// a deviation in EXPERIMENTS.md.)
	svc := f.Averages["service"][0]
	da := f.Averages["data analysis"][0]
	if svc < da*0.5 {
		t.Errorf("service ITLB %.3f far below data analysis %.3f", svc, da)
	}
	// DTLB MPKI stays in a sane band (paper: ~0.9 average).
	bd := f.Averages["big data (17 reps)"][1]
	if bd > 8 {
		t.Errorf("big data DTLB MPKI %.2f implausibly high", bd)
	}
}

func TestFig6FootprintContrast(t *testing.T) {
	r := Fig6(quickSession)
	h := r.Curves["Hadoop-workloads"]
	// Monotone non-increasing curves (LRU stack property; tolerate
	// sliver noise from set-count changes).
	for _, name := range r.Order {
		c := r.Curves[name]
		for i := 1; i < len(c); i++ {
			if c[i] > c[i-1]*1.05+1e-9 {
				t.Errorf("%s curve not monotone at %d KB", name, r.SizesKB[i])
			}
		}
	}
	// The paper's footprint reading: the Hadoop curve needs much more
	// capacity to flatten (paper: ~1024 KB) than PARSEC (~128 KB).
	hk := r.Knee("Hadoop-workloads", 0.15)
	pk := r.Knee("PARSEC-workloads", 0.15)
	if hk <= pk {
		t.Errorf("Hadoop knee %d KB not beyond PARSEC knee %d KB", hk, pk)
	}
	if pk > 256 {
		t.Errorf("PARSEC knee %d KB; paper: ~128 KB", pk)
	}
	// Hadoop still misses meaningfully at 128 KB (paper's curve is
	// visibly above zero there).
	if h[3] < 0.01 {
		t.Errorf("Hadoop miss ratio at 128 KB = %.4f, want a visible residue", h[3])
	}
}

func TestFig7DataCurvesConverge(t *testing.T) {
	r := Fig7(quickSession)
	h := r.Curves["Hadoop-workloads"]
	p := r.Curves["PARSEC-workloads"]
	// Paper: data curves are close after 64 KB: compare at 512 KB+.
	for i, kb := range r.SizesKB {
		if kb < 512 {
			continue
		}
		if h[i]-p[i] > 0.02 && h[i] > p[i]*4 {
			t.Errorf("at %d KB data miss ratios still far apart: %.4f vs %.4f", kb, h[i], p[i])
		}
	}
}

func TestFig9MPITracksPARSEC(t *testing.T) {
	r := Fig9(quickSession)
	m := r.Curves["MPI-workloads"]
	h := r.Curves["Hadoop-workloads"]
	// MPI's instruction footprint is PARSEC-like, far below Hadoop's
	// at small caches (paper's §5.5 conclusion).
	if m[0] > h[0]/2 {
		t.Errorf("16 KB I-miss: MPI %.4f not well below Hadoop %.4f", m[0], h[0])
	}
}

func TestReduction77To17(t *testing.T) {
	r, err := Reduction(quickSession)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) != 77 {
		t.Fatalf("profiled %d workloads, want 77", len(r.Profiles))
	}
	if r.Reduction.K != 17 || len(r.Reduction.Clusters) != 17 {
		t.Fatalf("reduced to %d clusters, want 17", r.Reduction.K)
	}
	total := 0
	stacks := map[string]bool{}
	for _, c := range r.Reduction.Clusters {
		total += len(c.Members)
		rep := r.Profiles[c.Representative].Workload
		stacks[rep.Stack.Name] = true
	}
	if total != 77 {
		t.Fatalf("cluster members sum to %d, want 77", total)
	}
	// The representatives must span several distinct software stacks,
	// as Table 2's subset does.
	if len(stacks) < 4 {
		t.Errorf("representatives cover only %d stacks: %v", len(stacks), stacks)
	}
	if r.Reduction.Explained < 0.9 {
		t.Errorf("PCA variance %.2f below target", r.Reduction.Explained)
	}
}

func TestStackImpactHeadlines(t *testing.T) {
	r := StackImpact(quickSession)
	if r.MPIAvgIPC <= r.OtherAvgIPC {
		t.Errorf("MPI IPC %.2f not above Hadoop/Spark %.2f (paper gap: 21%%)",
			r.MPIAvgIPC, r.OtherAvgIPC)
	}
	if r.MPIAvgL1I*3 > r.OtherAvgL1I {
		t.Errorf("L1I: MPI %.2f vs Hadoop/Spark %.2f — paper reports an order of magnitude",
			r.MPIAvgL1I, r.OtherAvgL1I)
	}
}

func TestFig1MixSumsToOne(t *testing.T) {
	f := Fig1(quickSession)
	for _, r := range f.Rows {
		sum := r.Load + r.Store + r.Branch + r.Int + r.FP
		if sum < 0.97 || sum > 1.03 {
			t.Errorf("%s: mix sums to %.3f", r.Name, sum)
		}
	}
}
