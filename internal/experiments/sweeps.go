package experiments

import (
	"io"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim/machine"
	"repro/internal/sim/trace"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// SweepResult is one of the Fig. 6-9 cache-size curves: average miss
// ratio versus L1 capacity for groups of workloads.
type SweepResult struct {
	Title   string
	SizesKB []int
	// Curves maps group name to per-size average miss ratio.
	Curves map[string][]float64
	Order  []string
}

// Accessors selecting one view of a workload's memoized sweep curves.
func curveInst(c machine.Curves) []float64    { return c.Inst }
func curveData(c machine.Curves) []float64    { return c.Data }
func curveUnified(c machine.Curves) []float64 { return c.Unified }

// sweepGroup averages one view of the group's miss-ratio curves. Each
// workload's trace is pulled from the session's memoized sweep cache
// (generated at most once per session, all three views from a single
// pass) and cache fills run through a bounded worker pool, mirroring
// core.Profiler.ProfileAll. The averaging itself accumulates in input
// order so the result is bit-identical to the serial reference path.
func sweepGroup(s *Session, list []workloads.Workload, view func(machine.Curves) []float64) []float64 {
	return sweepGroupSpec(s, list, s.Opt.SweepBudget, machine.DefaultSweepSizesKB, 0, 0, view)
}

// sweepGroupSpec is sweepGroup with explicit budget, sizes and cache
// geometry — shared by the paper figures (defaults) and ad-hoc
// scenario requests (any combination). Averaging accumulates in input
// order, so a given selection is bit-identical however it is computed.
func sweepGroupSpec(s *Session, list []workloads.Workload, budget int64, sizes []int, ways, lineBytes int, view func(machine.Curves) []float64) []float64 {
	curves := make([]machine.Curves, len(list))
	err := conc.ForEachCtx(s.Ctx, s.Parallelism, len(list), func(i int) {
		curves[i] = s.SweepCurvesSpec(list[i], budget, sizes, ways, lineBytes)
	})
	if err != nil {
		panic(canceledErr{err}) // torn curve set: unwind, never average
	}
	sum := make([]float64, len(sizes))
	for _, c := range curves {
		for i, v := range view(c) {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(list))
	}
	return sum
}

// sweepGroupMulti is sweepGroupSpec over several associativities at
// once: each workload's still-cold geometries fill from one shared
// stack-distance trace pass (SweepCurvesMulti), and the result holds
// one averaged curve per entry of waysList. The averaging accumulates
// in the same input order as sweepGroupSpec, so a multi-geometry
// request's curves are bit-identical to the equivalent single-geometry
// requests run one by one.
func sweepGroupMulti(s *Session, list []workloads.Workload, budget int64, sizes []int, waysList []int, lineBytes int, view func(machine.Curves) []float64) [][]float64 {
	curves := make([][]machine.Curves, len(list))
	err := conc.ForEachCtx(s.Ctx, s.Parallelism, len(list), func(i int) {
		curves[i] = s.SweepCurvesMulti(list[i], budget, sizes, waysList, lineBytes)
	})
	if err != nil {
		panic(canceledErr{err}) // torn curve set: unwind, never average
	}
	out := make([][]float64, len(waysList))
	for g := range waysList {
		sum := make([]float64, len(sizes))
		for _, c := range curves {
			for i, v := range view(c[g]) {
				sum[i] += v
			}
		}
		for i := range sum {
			sum[i] /= float64(len(list))
		}
		out[g] = sum
	}
	return out
}

// sweepGroupSerial is the seed's reference implementation: a fresh
// machine.Sweep and a full trace pass per workload per call, delivered
// per-instruction (trace.Unblocked pins the pre-PR path: no block
// decode, every cache accessed inline instruction by instruction).
// Retained for the equivalence tests and the serial-vs-block
// benchmarks.
func sweepGroupSerial(list []workloads.Workload, budget int64, view func(*machine.Sweep) []float64) []float64 {
	sizes := machine.DefaultSweepSizesKB
	sum := make([]float64, len(sizes))
	for _, w := range list {
		sw := machine.NewSweep(sizes)
		workloads.Run(w, trace.Unblocked(sw), budget)
		for i, v := range view(sw) {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(list))
	}
	return sum
}

// SerialSweepFigures regenerates Figs. 6-9 exactly as the seed did —
// re-tracing the Hadoop and PARSEC groups once per figure and per
// view, 10 group passes in all — bypassing the session sweep cache.
// It is the reference the memoized engine is tested and benchmarked
// against; new callers want Fig6..Fig9.
func SerialSweepFigures(s *Session) [4]SweepResult {
	b := s.Opt.SweepBudget
	sizes := machine.DefaultSweepSizesKB
	hp := []string{"Hadoop-workloads", "PARSEC-workloads"}
	return [4]SweepResult{
		{
			Title:   "Figure 6: instruction cache miss ratio vs cache size",
			SizesKB: sizes,
			Order:   hp,
			Curves: map[string][]float64{
				"Hadoop-workloads": sweepGroupSerial(hadoopGroup(), b, (*machine.Sweep).InstMissRatios),
				"PARSEC-workloads": sweepGroupSerial(parsecGroup(), b, (*machine.Sweep).InstMissRatios),
			},
		},
		{
			Title:   "Figure 7: data cache miss ratio vs cache size",
			SizesKB: sizes,
			Order:   hp,
			Curves: map[string][]float64{
				"Hadoop-workloads": sweepGroupSerial(hadoopGroup(), b, (*machine.Sweep).DataMissRatios),
				"PARSEC-workloads": sweepGroupSerial(parsecGroup(), b, (*machine.Sweep).DataMissRatios),
			},
		},
		{
			Title:   "Figure 8: cache miss ratio vs cache size",
			SizesKB: sizes,
			Order:   hp,
			Curves: map[string][]float64{
				"Hadoop-workloads": sweepGroupSerial(hadoopGroup(), b, (*machine.Sweep).UnifiedMissRatios),
				"PARSEC-workloads": sweepGroupSerial(parsecGroup(), b, (*machine.Sweep).UnifiedMissRatios),
			},
		},
		{
			Title:   "Figure 9: instruction cache miss ratio vs cache size (with MPI)",
			SizesKB: sizes,
			Order:   []string{"Hadoop-workloads", "PARSEC-workloads", "MPI-workloads"},
			Curves: map[string][]float64{
				"Hadoop-workloads": sweepGroupSerial(hadoopGroup(), b, (*machine.Sweep).InstMissRatios),
				"PARSEC-workloads": sweepGroupSerial(parsecGroup(), b, (*machine.Sweep).InstMissRatios),
				"MPI-workloads":    sweepGroupSerial(workloads.MPI6(), b, (*machine.Sweep).InstMissRatios),
			},
		},
	}
}

// hadoopGroup returns the Hadoop-stack workloads the paper's §5.4 case
// study sweeps.
func hadoopGroup() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range workloads.Representative17() {
		if w.Stack.Name == "Hadoop" {
			out = append(out, w)
		}
	}
	return out
}

func parsecGroup() []workloads.Workload { return suites.PARSEC() }

// Fig6 reproduces Fig. 6: instruction-cache miss ratio vs cache size
// for the Hadoop workloads and PARSEC. The paper's knees: Hadoop
// ≈ 1024 KB, PARSEC ≈ 128 KB.
func Fig6(s *Session) SweepResult {
	return SweepResult{
		Title:   "Figure 6: instruction cache miss ratio vs cache size",
		SizesKB: machine.DefaultSweepSizesKB,
		Order:   []string{"Hadoop-workloads", "PARSEC-workloads"},
		Curves: map[string][]float64{
			"Hadoop-workloads": sweepGroup(s, hadoopGroup(), curveInst),
			"PARSEC-workloads": sweepGroup(s, parsecGroup(), curveInst),
		},
	}
}

// Fig7 reproduces Fig. 7: data-cache miss ratio vs cache size (the
// curves converge after 64 KB).
func Fig7(s *Session) SweepResult {
	return SweepResult{
		Title:   "Figure 7: data cache miss ratio vs cache size",
		SizesKB: machine.DefaultSweepSizesKB,
		Order:   []string{"Hadoop-workloads", "PARSEC-workloads"},
		Curves: map[string][]float64{
			"Hadoop-workloads": sweepGroup(s, hadoopGroup(), curveData),
			"PARSEC-workloads": sweepGroup(s, parsecGroup(), curveData),
		},
	}
}

// Fig8 reproduces Fig. 8: unified cache miss ratio vs cache size (the
// curves converge after 1024 KB).
func Fig8(s *Session) SweepResult {
	return SweepResult{
		Title:   "Figure 8: cache miss ratio vs cache size",
		SizesKB: machine.DefaultSweepSizesKB,
		Order:   []string{"Hadoop-workloads", "PARSEC-workloads"},
		Curves: map[string][]float64{
			"Hadoop-workloads": sweepGroup(s, hadoopGroup(), curveUnified),
			"PARSEC-workloads": sweepGroup(s, parsecGroup(), curveUnified),
		},
	}
}

// Fig9 reproduces Fig. 9: instruction miss ratio vs cache size with
// the MPI implementations added (they track PARSEC, not Hadoop).
func Fig9(s *Session) SweepResult {
	return SweepResult{
		Title:   "Figure 9: instruction cache miss ratio vs cache size (with MPI)",
		SizesKB: machine.DefaultSweepSizesKB,
		Order:   []string{"Hadoop-workloads", "PARSEC-workloads", "MPI-workloads"},
		Curves: map[string][]float64{
			"Hadoop-workloads": sweepGroup(s, hadoopGroup(), curveInst),
			"PARSEC-workloads": sweepGroup(s, parsecGroup(), curveInst),
			"MPI-workloads":    sweepGroup(s, workloads.MPI6(), curveInst),
		},
	}
}

// Knee returns the smallest cache size (KB) at which a curve has
// descended frac of the way from its 16 KB value to its floor — the
// "footprint" reading the paper applies to Figs. 6-9. (Relative to the
// curve's own range, so a compulsory-miss floor does not mask the
// knee.)
func (r SweepResult) Knee(curve string, frac float64) int {
	c := r.Curves[curve]
	if len(c) == 0 || c[0] == 0 {
		return 0
	}
	lo := c[0]
	for _, v := range c {
		if v < lo {
			lo = v
		}
	}
	threshold := lo + (c[0]-lo)*frac
	for i, v := range c {
		if v <= threshold {
			return r.SizesKB[i]
		}
	}
	return r.SizesKB[len(r.SizesKB)-1]
}

// Render writes the curves as a table.
func (r SweepResult) Render(w io.Writer) {
	t := report.Table{Title: r.Title, Headers: append([]string{"cache KB"}, r.Order...)}
	for i, kb := range r.SizesKB {
		cells := []interface{}{kb}
		for _, name := range r.Order {
			cells = append(cells, r.Curves[name][i])
		}
		t.Add(cells...)
	}
	t.Render(w)
}

// ReductionResult is the §3 outcome: 77 workloads clustered to 17.
type ReductionResult struct {
	Reduction *core.Reduction
	Profiles  []core.Profile
}

// Reduction runs the full WCRT pipeline over the 77-workload roster
// with k=17, as the paper's final configuration. The roster profiles
// come from the session's memoized Roster(), so cmd/wcrt and other
// experiments sharing the session (or its store) reuse the same pass.
func Reduction(s *Session) (*ReductionResult, error) {
	profiles := s.Roster()
	a := &core.Analyzer{ExplainTarget: 0.9, Seed: 0x5EED}
	red, err := a.Reduce(profiles, 17)
	if err != nil {
		return nil, err
	}
	return &ReductionResult{Reduction: red, Profiles: profiles}, nil
}

// Render writes the reduction summary.
func (r *ReductionResult) Render(w io.Writer) {
	t := report.Table{Title: "Section 3: 77 workloads reduced to 17 representatives",
		Headers: []string{"cluster", "representative", "size", "members (sample)"}}
	for i, c := range r.Reduction.Clusters {
		sample := ""
		for j, m := range c.Members {
			if j == 4 {
				sample += " ..."
				break
			}
			if j > 0 {
				sample += " "
			}
			sample += r.Reduction.Names[m]
		}
		t.Add(i+1, r.Reduction.Names[c.Representative], len(c.Members), sample)
	}
	t.Render(w)
}
