package experiments

import (
	"bytes"
	"testing"

	"repro/internal/artifact"
	"repro/internal/datagen"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

// renderUnits renders every visible artifact of an engine run, keyed
// by unit name.
func renderUnits(t *testing.T, results []UnitResult) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("unit %s: %v", r.Unit.Name, r.Err)
		}
		if r.Unit.Hidden || r.Artifact == nil {
			continue
		}
		var buf bytes.Buffer
		r.Artifact.Render(&buf)
		out[r.Unit.Name] = buf.Bytes()
	}
	return out
}

// TestColdWarmEngineByteIdentical is the PR's acceptance probe: a
// warm-store engine run over a fresh store sharing the cold run's
// directory (modelling a second process) must render byte-identical
// output while executing zero dataset generations, zero trace passes
// and zero profiling runs.
func TestColdWarmEngineByteIdentical(t *testing.T) {
	dir := t.TempDir()

	cold, err := artifact.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	prev := datagen.SetStore(cold)
	t.Cleanup(func() { datagen.SetStore(prev) })

	coldSess := NewSession(tinyOptions())
	coldSess.Store = cold
	coldRes, err := (&Engine{Session: coldSess}).Run()
	if err != nil {
		t.Fatal(err)
	}
	coldOut := renderUnits(t, coldRes)
	if coldSess.TracePasses() == 0 || coldSess.ProfileRuns() == 0 || coldSess.Renders() == 0 {
		t.Fatalf("cold run recomputed nothing (trace=%d profile=%d renders=%d): probes broken",
			coldSess.TracePasses(), coldSess.ProfileRuns(), coldSess.Renders())
	}

	warm, err := artifact.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	datagen.SetStore(warm)
	gen0 := datagen.Generations()
	warmSess := NewSession(tinyOptions())
	warmSess.Store = warm
	warmRes, err := (&Engine{Session: warmSess}).Run()
	if err != nil {
		t.Fatal(err)
	}
	warmOut := renderUnits(t, warmRes)

	if got := warmSess.TracePasses(); got != 0 {
		t.Errorf("warm run executed %d trace passes, want 0", got)
	}
	if got := warmSess.ProfileRuns(); got != 0 {
		t.Errorf("warm run executed %d profiling runs, want 0", got)
	}
	if got := datagen.Generations() - gen0; got != 0 {
		t.Errorf("warm run executed %d dataset generations, want 0", got)
	}
	if got := warmSess.Renders(); got != 0 {
		t.Errorf("warm run rendered %d units, want 0 (render artefacts must persist)", got)
	}
	if len(warmOut) != len(coldOut) {
		t.Fatalf("warm run rendered %d units, cold %d", len(warmOut), len(coldOut))
	}
	for name, want := range coldOut {
		if got, ok := warmOut[name]; !ok {
			t.Errorf("warm run missing unit %s", name)
		} else if !bytes.Equal(got, want) {
			t.Errorf("unit %s: warm output differs from cold (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestShardedEngineMergesToFullRun partitions the visible units across
// two shards sharing one store (the in-process model of two processes
// sharing -cache-dir): the shards' outputs must partition the full
// run's visible set and merge to byte-identical artifacts.
func TestShardedEngineMergesToFullRun(t *testing.T) {
	sel := visibleExceptReduction()

	full := &Engine{Session: NewSession(tinyOptions()), Select: sel}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	fullOut := renderUnits(t, fullRes)

	shared := artifact.New()
	merged := map[string][]byte{}
	for shard := 0; shard < 2; shard++ {
		sess := NewSession(tinyOptions())
		sess.Store = shared
		e := &Engine{Session: sess, Select: sel, Shard: shard, ShardCount: 2}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		for name, b := range renderUnits(t, res) {
			if _, dup := merged[name]; dup {
				t.Errorf("unit %s rendered by more than one shard", name)
			}
			merged[name] = b
		}
	}

	if len(merged) != len(fullOut) {
		t.Fatalf("shards rendered %d units, full run %d", len(merged), len(fullOut))
	}
	for name, want := range fullOut {
		if got, ok := merged[name]; !ok {
			t.Errorf("no shard rendered unit %s", name)
		} else if !bytes.Equal(got, want) {
			t.Errorf("unit %s: sharded output differs from full run", name)
		}
	}
}

func TestShardValidation(t *testing.T) {
	for _, bad := range [][2]int{{2, 2}, {-1, 2}, {1, 1}, {1, 0}} {
		e := &Engine{Session: NewSession(tinyOptions()), Shard: bad[0], ShardCount: bad[1]}
		if _, err := e.Run(); err == nil {
			t.Errorf("shard %d/%d not rejected", bad[0], bad[1])
		}
	}
}

// TestParseShard is the table-driven contract of the one shard-spec
// parser all three CLIs share: well-formed "i/n" specs parse, and
// malformed, signed, spaced, out-of-range or trailing-junk specs all
// fail loudly instead of silently producing an empty or aliased shard.
func TestParseShard(t *testing.T) {
	good := []struct {
		spec     string
		shard, n int
	}{
		{"0/2", 0, 2},
		{"1/2", 1, 2},
		{"1/3", 1, 3},
		{"7/8", 7, 8},
		{"02/16", 2, 16},
	}
	for _, tc := range good {
		i, n, err := ParseShard(tc.spec)
		if err != nil || i != tc.shard || n != tc.n {
			t.Errorf("ParseShard(%q) = %d, %d, %v; want %d, %d", tc.spec, i, n, err, tc.shard, tc.n)
		}
	}
	bad := []string{
		"",     // empty
		"1",    // no slash
		"1/",   // missing count
		"/2",   // missing shard
		"2/2",  // shard == count
		"3/2",  // shard > count
		"2/1",  // count < 2 (a "shard" that would silently drop work)
		"0/1",  // count < 2
		"0/0",  // count zero
		"-1/3", // negative shard
		"1/-3", // negative count
		"+1/3", // signs are not digits
		"1/+3",
		" 1/3", // padding
		"1/3 ",
		"1 /3",
		"0/2x", // trailing junk
		"x0/2",
		"1/3/5", // too many parts
		"a/b",
		"1.0/3",
	}
	for _, spec := range bad {
		if i, n, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted as %d/%d", spec, i, n)
		}
	}
}

// TestRosterMemoized pins the PR-1 follow-up: the 77-workload roster
// profiles once per session and the reduction consumes the cached
// pass.
func TestRosterMemoized(t *testing.T) {
	s := NewSession(tinyOptions())
	roster := s.Roster()
	if len(roster) != 77 {
		t.Fatalf("roster has %d profiles, want 77", len(roster))
	}
	runs := s.ProfileRuns()
	if runs != 77 {
		t.Fatalf("roster executed %d profiling runs, want 77", runs)
	}
	if again := s.Roster(); &again[0] != &roster[0] {
		t.Error("second Roster() rebuilt the set")
	}
	r, err := Reduction(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) != 77 {
		t.Fatalf("reduction saw %d profiles", len(r.Profiles))
	}
	if got := s.ProfileRuns(); got != runs {
		t.Errorf("reduction re-profiled: %d runs after, %d before", got, runs)
	}
}

// TestSessionsShareStore pins cross-session sharing: a second session
// over the same in-memory store recomputes nothing and observes
// identical values.
func TestSessionsShareStore(t *testing.T) {
	shared := artifact.New()
	s1 := NewSession(tinyOptions())
	s1.Store = shared
	reps := s1.Reps()
	c1 := s1.SweepCurves(workloads.MPI6()[0], s1.Opt.SweepBudget)

	s2 := NewSession(tinyOptions())
	s2.Store = shared
	reps2 := s2.Reps()
	c2 := s2.SweepCurves(workloads.MPI6()[0], s2.Opt.SweepBudget)
	if s2.ProfileRuns() != 0 || s2.TracePasses() != 0 {
		t.Fatalf("second session recomputed: %d profile runs, %d trace passes",
			s2.ProfileRuns(), s2.TracePasses())
	}
	for i := range reps {
		if reps[i].Vector != reps2[i].Vector {
			t.Fatalf("shared-store sessions disagree on %s", reps[i].Workload.ID)
		}
	}
	for i := range c1.Inst {
		if c1.Inst[i] != c2.Inst[i] {
			t.Fatal("shared-store sessions disagree on sweep curves")
		}
	}
}

// TestProfileKeysDisambiguateRosters guards the ID-collision trap:
// Table 2's H-Difference (Hive) and the roster's H-Difference (Hadoop)
// share an ID but must not share a store artefact.
func TestProfileKeysDisambiguateRosters(t *testing.T) {
	var repsHD, rosterHD workloads.Workload
	for _, w := range workloads.Representative17() {
		if w.ID == "H-Difference" {
			repsHD = w
		}
	}
	for _, w := range workloads.Roster77() {
		if w.ID == "H-Difference" {
			rosterHD = w
		}
	}
	if repsHD.Stack.Name == rosterHD.Stack.Name {
		t.Skip("rosters no longer collide on H-Difference")
	}
	if workloads.Signature(repsHD) == workloads.Signature(rosterHD) {
		t.Fatal("signatures collide for distinct H-Difference definitions")
	}

	s := NewSession(tinyOptions())
	a := s.Profiles(machine.XeonE5645(), []workloads.Workload{repsHD}, s.Opt.Budget)
	b := s.Profiles(machine.XeonE5645(), []workloads.Workload{rosterHD}, s.Opt.Budget)
	if s.ProfileRuns() != 2 {
		t.Fatalf("%d profiling runs for two distinct definitions, want 2", s.ProfileRuns())
	}
	if a[0].Vector == b[0].Vector {
		t.Fatal("distinct stacks produced identical vectors — cache collision?")
	}
}
