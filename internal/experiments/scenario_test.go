package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/artifact"
)

// TestScenarioCanonicalEquivalence pins the keying contract: specs
// meaning the same experiment — unordered selections, explicit
// defaults, mixed-case names — canonicalize identically and therefore
// share one artifact key.
func TestScenarioCanonicalEquivalence(t *testing.T) {
	opt := tinyOptions()
	a := Scenario{
		Groups:    []string{"parsec", "hadoop", "hadoop"},
		Workloads: []string{"S-Sort", "H-Grep"},
		Views:     []string{"data", "inst"},
	}
	b := Scenario{
		Groups:    []string{"Hadoop", "PARSEC"},
		Workloads: []string{"H-Grep", "S-Sort", "H-Grep"},
		Budget:    opt.SweepBudget, // explicit default
		SizesKB:   []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192},
		Ways:      8,  // explicit modeled default folds to 0
		LineBytes: 64, // likewise
		Views:     []string{"inst", "data"},
	}
	ca, err := a.Canonical(opt)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioKey(ca).ID() != ScenarioKey(cb).ID() {
		t.Fatalf("equivalent specs keyed differently:\n%s\n%s",
			ScenarioKey(ca).Label, ScenarioKey(cb).Label)
	}
	if ca.Ways != 0 || ca.LineBytes != 0 {
		t.Fatalf("default geometry not folded: %+v", ca)
	}
	// Canonical is idempotent.
	cc, err := ca.Canonical(opt)
	if err != nil || ScenarioKey(cc).ID() != ScenarioKey(ca).ID() {
		t.Fatalf("Canonical not idempotent: %v", err)
	}
}

// TestScenarioValidation pins rejection of every malformed field.
func TestScenarioValidation(t *testing.T) {
	opt := tinyOptions()
	bad := []Scenario{
		{},                                 // selects nothing
		{Groups: []string{"nosuchgroup"}},  // unknown group
		{Workloads: []string{"Z-Nothing"}}, // unknown workload
		{Groups: []string{"mpi"}, SizesKB: []int{0}},            // non-positive size
		{Groups: []string{"mpi"}, SizesKB: []int{64, 64}},       // duplicate size
		{Groups: []string{"mpi"}, Ways: 3},                      // fractional sets at 16 KB
		{Groups: []string{"mpi"}, LineBytes: 48},                // line not a power of two
		{Groups: []string{"mpi"}, Views: []string{"imaginary"}}, // unknown view
		{Groups: []string{"mpi"}, Budget: 1 << 40},              // absurd budget
	}
	for i, sc := range bad {
		if _, err := sc.Canonical(opt); err == nil {
			t.Errorf("case %d (%+v) passed validation", i, sc)
		}
	}
}

// TestScenarioMatchesPaperFigure pins artefact sharing: a scenario at
// default budget/sizes/geometry pulls the same per-workload sweep
// artefacts the paper figures fill — running fig6's groups as a
// scenario over a warm store must trace nothing new.
func TestScenarioMatchesPaperFigure(t *testing.T) {
	store := artifact.New()
	s := NewSession(tinyOptions())
	s.Store = store

	// Warm the store with fig6's sweeps.
	Fig6(s)
	warmPasses := s.TracePasses()
	if warmPasses == 0 {
		t.Fatal("Fig6 traced nothing")
	}

	out, err := RunScenario(s, Scenario{Groups: []string{"hadoop", "parsec"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.TracePasses() != warmPasses {
		t.Fatalf("default-geometry scenario re-traced: %d -> %d passes", warmPasses, s.TracePasses())
	}
	if !strings.Contains(string(out), "hadoop-workloads") || !strings.Contains(string(out), "knee(") {
		t.Fatalf("scenario rendering missing expected content:\n%s", out)
	}
}

// TestScenarioWarmRepeatIsPureStoreIO pins the serving fast path: the
// second identical request renders nothing and simulates nothing, and
// the bytes are identical — including across sessions sharing the
// store.
func TestScenarioWarmRepeatIsPureStoreIO(t *testing.T) {
	store := artifact.New()
	s := NewSession(tinyOptions())
	s.Store = store
	spec := Scenario{Name: "warmth", Workloads: []string{"H-Grep", "S-Sort"}, Views: []string{"inst", "unified"}}

	cold, err := RunScenario(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Renders() != 1 {
		t.Fatalf("cold scenario renders = %d, want 1", s.Renders())
	}
	warm, err := RunScenario(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm scenario bytes differ")
	}
	if s.Renders() != 1 || s.TracePasses() != 2 {
		t.Fatalf("warm repeat recomputed: renders=%d passes=%d", s.Renders(), s.TracePasses())
	}

	other := NewSession(tinyOptions())
	other.Store = store
	again, err := RunScenario(other, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, again) {
		t.Fatal("cross-session scenario bytes differ")
	}
	if other.Renders() != 0 || other.TracePasses() != 0 {
		t.Fatalf("cross-session warm scenario recomputed: renders=%d passes=%d",
			other.Renders(), other.TracePasses())
	}
}

// TestScenarioGeometryOverridesChangeContent pins that ways/line
// overrides flow through to the caches: the same selection at 2-way
// associativity renders different numbers and keys differently.
func TestScenarioGeometryOverridesChangeContent(t *testing.T) {
	s := NewSession(tinyOptions())
	base := Scenario{Workloads: []string{"H-Grep"}, SizesKB: []int{16, 64}}
	narrow := Scenario{Workloads: []string{"H-Grep"}, SizesKB: []int{16, 64}, Ways: 2}

	cb, err := base.Canonical(s.Opt)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := narrow.Canonical(s.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioKey(cb).ID() == ScenarioKey(cn).ID() {
		t.Fatal("geometry override did not change the scenario key")
	}
	ob, err := RunScenario(s, base)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunScenario(s, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ob, on) {
		t.Fatal("2-way scenario rendered identical bytes to 8-way")
	}
}
