package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestSweepEnginesByteIdentical is the session-level differential: the
// stack-distance default and the replay oracle must fill bit-identical
// curves for every geometry, and each must report its passes on its
// own counter.
func TestSweepEnginesByteIdentical(t *testing.T) {
	opt := tinyOptions()
	w := workloads.Representative17()[14] // H-WordCount
	cases := []struct {
		sizes      []int
		ways, line int
	}{
		{[]int{16, 64, 256}, 0, 0},
		{[]int{16, 64, 256}, 1, 0},
		{[]int{16, 64, 256}, 16, 0},
		{[]int{16, 32}, 2, 128},
	}
	sd := NewSession(opt) // default engine
	rp := NewSession(opt)
	rp.Engine = EngineReplay
	for _, c := range cases {
		got := sd.SweepCurvesSpec(w, opt.SweepBudget, c.sizes, c.ways, c.line)
		want := rp.SweepCurvesSpec(w, opt.SweepBudget, c.sizes, c.ways, c.line)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ways=%d line=%d: engines disagree\nstackdist %+v\nreplay    %+v", c.ways, c.line, got, want)
		}
	}
	if sd.StackDistPasses() != int64(len(cases)) || sd.ReplayPasses() != 0 {
		t.Errorf("stackdist session counters: stack=%d replay=%d", sd.StackDistPasses(), sd.ReplayPasses())
	}
	if rp.ReplayPasses() != int64(len(cases)) || rp.StackDistPasses() != 0 {
		t.Errorf("replay session counters: stack=%d replay=%d", rp.StackDistPasses(), rp.ReplayPasses())
	}
	if sd.TracePasses() != sd.StackDistPasses() || rp.TracePasses() != rp.ReplayPasses() {
		t.Error("TracePasses is not the per-engine sum")
	}
}

// TestSweepCurvesMultiOnePass pins the multi-geometry cost model: N
// cold associativities fill from exactly one trace pass, each under
// the same key a single-geometry request would use (so follow-up
// single requests are pure store hits), and each bit-identical to the
// replay oracle.
func TestSweepCurvesMultiOnePass(t *testing.T) {
	opt := tinyOptions()
	w := workloads.Representative17()[4] // S-WordCount
	sizes := []int{16, 64, 256, 1024}
	waysList := []int{1, 2, 8, 16}

	s := NewSession(opt)
	multi := s.SweepCurvesMulti(w, opt.SweepBudget, sizes, waysList, 0)
	if got := s.TracePasses(); got != 1 {
		t.Fatalf("multi-geometry fill cost %d trace passes, want 1", got)
	}
	rp := NewSession(opt)
	rp.Engine = EngineReplay
	for i, ways := range waysList {
		if want := rp.SweepCurvesSpec(w, opt.SweepBudget, sizes, ways, 0); !reflect.DeepEqual(multi[i], want) {
			t.Errorf("ways=%d: multi curves diverge from replay oracle", ways)
		}
		// Same keys: the single-geometry accessor must hit warm.
		if got := s.SweepCurvesSpec(w, opt.SweepBudget, sizes, ways, 0); !reflect.DeepEqual(got, multi[i]) {
			t.Errorf("ways=%d: single-geometry readback differs", ways)
		}
	}
	if got := s.TracePasses(); got != 1 {
		t.Fatalf("warm readbacks re-traced: %d passes", got)
	}
}

// TestScenarioWaysSetCanonical pins the multi-associativity keying
// contract: sorted dedup, singleton folding into the single-geometry
// form (defaults folding further to zero), and rejection of the
// malformed combinations.
func TestScenarioWaysSetCanonical(t *testing.T) {
	opt := tinyOptions()

	one, err := Scenario{Groups: []string{"mpi"}, WaysSet: []int{8}}.Canonical(opt)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Scenario{Groups: []string{"mpi"}}.Canonical(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioKey(one).ID() != ScenarioKey(def).ID() {
		t.Error("ways_set [8] does not alias the default-geometry scenario")
	}

	multi, err := Scenario{Groups: []string{"mpi"}, WaysSet: []int{16, 2, 2, 8}}.Canonical(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi.WaysSet, []int{2, 8, 16}) || multi.Ways != 0 {
		t.Errorf("ways_set not sorted/deduped: %+v", multi)
	}
	again, err := multi.Canonical(opt)
	if err != nil || ScenarioKey(again).ID() != ScenarioKey(multi).ID() {
		t.Fatalf("Canonical not idempotent over ways_set: %v", err)
	}

	bad := []Scenario{
		{Groups: []string{"mpi"}, Ways: 2, WaysSet: []int{4}},                   // both forms
		{Groups: []string{"mpi"}, WaysSet: []int{1, 2, 3, 4, 5, 6, 7, 8, 16}},   // over limit
		{Groups: []string{"mpi"}, WaysSet: []int{0}},                            // non-positive
		{Groups: []string{"mpi"}, WaysSet: []int{-2, 4}},                        // negative
		{Groups: []string{"mpi"}, WaysSet: []int{3}},                            // fractional sets at 16 KB
		{Groups: []string{"mpi"}, WaysSet: []int{2, 6}, SizesKB: []int{16, 32}}, // 6-way doesn't divide
	}
	for i, sc := range bad {
		if _, err := sc.Canonical(opt); err == nil {
			t.Errorf("case %d (%+v) passed validation", i, sc)
		}
	}
}

// TestScenarioWaysSetOnePassByteIdentical runs a multi-associativity
// scenario under both engines: the served bytes must match exactly,
// and the stack-distance engine must price the whole geometry set at
// one trace pass per workload while the oracle pays one per geometry.
func TestScenarioWaysSetOnePassByteIdentical(t *testing.T) {
	opt := tinyOptions()
	spec := Scenario{
		Name:      "multigeo",
		Workloads: []string{"H-Grep"},
		SizesKB:   []int{16, 64, 256},
		WaysSet:   []int{1, 2, 8, 16},
		Views:     []string{"inst", "data"},
	}

	sd := NewSession(opt)
	got, err := RunScenario(sd, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sd.TracePasses() != 1 || sd.StackDistPasses() != 1 {
		t.Errorf("stackdist scenario cost %d passes (stack %d), want 1",
			sd.TracePasses(), sd.StackDistPasses())
	}

	rp := NewSession(opt)
	rp.Engine = EngineReplay
	want, err := RunScenario(rp, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ReplayPasses() != 4 {
		t.Errorf("replay scenario cost %d replay passes, want 4 (one per geometry)", rp.ReplayPasses())
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scenario bytes differ between engines:\nstackdist:\n%s\nreplay:\n%s", got, want)
	}
	if !bytes.Contains(got, []byte("16-way")) || !bytes.Contains(got, []byte("1-way")) {
		t.Error("rendered scenario missing per-geometry headings")
	}
}
