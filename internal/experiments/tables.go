package experiments

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
	"repro/internal/sysmodel"
	"repro/internal/workloads"
)

// Table1Row describes one dataset of the paper's Table 1.
type Table1Row struct {
	No          int
	Name        string
	Description string
	Generator   string
	// SimRecords/SimBytes are the simulation-scale materialization.
	SimRecords int
	SimBytes   int
}

// Table1 reproduces Table 1: the seven datasets and their generators,
// plus the simulation-scale materialization this reproduction uses.
func Table1() []Table1Row {
	l := mem.NewLayout()
	wiki := datagen.NewText(l, datagen.DefaultWiki())
	reviews := datagen.NewReviews(l, datagen.DefaultWiki(), 5)
	google := datagen.NewGraph(l, datagen.DefaultWebGraph())
	facebook := datagen.NewGraph(l, datagen.DefaultSocialGraph())
	ec := datagen.NewECommerce(l, 0xEC0, 40000, 120000)
	kv := datagen.NewKVStore(l, 0x4856, 60000, 1128)
	ds := datagen.NewTPCDS(l, 0xD5, 150000)
	return []Table1Row{
		{1, "Wikipedia Entries", "4,300,000 English articles (original)", "Text Generator of BDGS",
			len(wiki.Lines), wiki.Bytes()},
		{2, "Amazon Movie Reviews", "7,911,684 reviews (original)", "Text Generator of BDGS",
			len(reviews.Text.Lines), reviews.Text.Bytes()},
		{3, "Google Web Graph", "875,713 nodes, 5,105,039 edges (original)", "Graph Generator of BDGS",
			google.N, google.Edges() * 4},
		{4, "Facebook Social Network", "4,039 nodes, 88,234 edges (original)", "Graph Generator of BDGS",
			facebook.N, facebook.Edges() * 4},
		{5, "E-commerce Transaction Data", "order table: 4 columns; item table: 6 columns", "Table Generator of BDGS",
			ec.Orders.Rows + ec.Items.Rows, ec.Orders.Bytes() + ec.Items.Bytes()},
		{6, "ProfSearch Person Resumes", "278,956 resumes of 1128 bytes (original)", "Table Generator of BDGS",
			kv.N, kv.Bytes()},
		{7, "TPC-DS WebTable Data", "26 tables (star-schema subset modelled)", "TPC DSGen",
			ds.StoreSales.Rows, ds.StoreSales.Bytes() + ds.DateDim.Bytes() + ds.Item.Bytes() + ds.Customer.Bytes()},
	}
}

// RenderTable1 writes Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	t := report.Table{Title: "Table 1: data sets and generation tools",
		Headers: []string{"No", "data set", "description", "generator", "sim records", "sim bytes"}}
	for _, r := range rows {
		t.Add(r.No, r.Name, r.Description, r.Generator, r.SimRecords, r.SimBytes)
	}
	t.Render(w)
}

// Table2Row is one representative workload's characterization in the
// style of the paper's Table 2.
type Table2Row struct {
	ID            string
	Category      workloads.Category
	DataSet       string
	OutVsIn       workloads.DataRatio
	InterVsIn     workloads.DataRatio
	HasInter      bool
	System        sysmodel.Class
	CPUUtil       float64
	IOWait        float64
	WeightedIO    float64
	PaperCount    int
	PaperBehavior string
}

// Table2 reproduces Table 2: the 17 representative workloads with
// measured data behaviours and modelled system behaviours.
func Table2(s *Session) []Table2Row {
	cluster := sysmodel.DefaultCluster()
	var rows []Table2Row
	for _, p := range s.Reps() {
		b := sysmodel.Analyze(cluster, p.Run, p.Vector)
		rows = append(rows, Table2Row{
			ID:         p.Workload.ID,
			Category:   p.Workload.Category,
			DataSet:    p.Workload.DataSet,
			OutVsIn:    workloads.ClassifyRatio(p.Run.OutBytes, p.Run.InBytes),
			InterVsIn:  workloads.ClassifyRatio(p.Run.InterBytes, p.Run.InBytes),
			HasInter:   p.Run.InterBytes > 0,
			System:     b.Class,
			CPUUtil:    b.CPUUtil,
			IOWait:     b.IOWait,
			WeightedIO: b.WeightedIOTime,
			PaperCount: workloads.RepresentedCounts[p.Workload.ID],
		})
	}
	return rows
}

// RenderTable2 writes Table 2.
func RenderTable2(w io.Writer, rows []Table2Row) {
	t := report.Table{Title: "Table 2: representative big data workloads (measured)",
		Headers: []string{"ID", "category", "data set", "output", "intermediate",
			"system", "cpu%", "iowait%", "wIO", "represents"}}
	for _, r := range rows {
		t.Add(r.ID, r.Category.String(), r.DataSet,
			"Output"+r.OutVsIn.String(), "Inter"+r.InterVsIn.String(),
			r.System.String(), r.CPUUtil*100, r.IOWait*100, r.WeightedIO, r.PaperCount)
	}
	t.Render(w)
}

// Table3 reproduces Table 3: the node configuration of the modelled
// Xeon E5645.
func Table3() report.Table {
	cfg := machine.XeonE5645()
	t := report.Table{Title: "Table 3: node configuration (modelled)",
		Headers: []string{"component", "value"}}
	t.Add("CPU type", cfg.Name)
	t.Add("Number of cores", fmt.Sprintf("%d cores@%.2fG", cfg.Cores, cfg.FreqHz/1e9))
	t.Add("L1 DCache", fmt.Sprintf("%d x %d KB", cfg.Cores, cfg.L1D.Size>>10))
	t.Add("L1 ICache", fmt.Sprintf("%d x %d KB", cfg.Cores, cfg.L1I.Size>>10))
	t.Add("L2 Cache", fmt.Sprintf("%d x %d KB", cfg.Cores, cfg.L2.Size>>10))
	t.Add("L3 Cache", fmt.Sprintf("%d MB", cfg.L3.Size>>20))
	return t
}

// Table4Result is the branch-prediction comparison of Table 4 plus the
// measured misprediction ratios the surrounding text reports (7.8% on
// the Atom D510 vs 2.8% on the Xeon E5645).
type Table4Result struct {
	Mechanisms   report.Table
	AtomAvg      float64
	XeonAvg      float64
	PerWorkload  report.Table
	PaperAtomAvg float64
	PaperXeonAvg float64
}

// Table4 reproduces Table 4 and the §5.1 misprediction measurement.
func Table4(s *Session) Table4Result {
	res := Table4Result{PaperAtomAvg: 0.078, PaperXeonAvg: 0.028}
	res.Mechanisms = report.Table{Title: "Table 4: branch prediction mechanisms",
		Headers: []string{"component", "D510", "E5645"}}
	res.Mechanisms.Add("Conditional jumps",
		"two-level adaptive predictor with a global history table",
		"hybrid predictor combining a two-level predictor and a loop counter")
	res.Mechanisms.Add("Indirect jumps and calls", "Not", "two-level predictor")
	res.Mechanisms.Add("BTB entries", 128, 8192)
	res.Mechanisms.Add("Misprediction penalty", "15 cycles", "11-13 cycles")

	res.PerWorkload = report.Table{Title: "branch misprediction ratio per workload",
		Headers: []string{"workload", "Atom D510", "Xeon E5645"}}
	xeon := s.Reps()
	atom := s.AtomReps()
	for i := range xeon {
		ax := atom[i].Vector[metrics.BrMispredictRatio]
		xx := xeon[i].Vector[metrics.BrMispredictRatio]
		res.AtomAvg += ax
		res.XeonAvg += xx
		res.PerWorkload.Add(xeon[i].Workload.ID, ax*100, xx*100)
	}
	res.AtomAvg /= float64(len(xeon))
	res.XeonAvg /= float64(len(xeon))
	return res
}
