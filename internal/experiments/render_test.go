package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/artifact"
)

// TestRenderMemoizedAcrossSessions pins the render-artefact layer: a
// second session over a shared store replays every visible unit's
// bytes without rendering (Renders() == 0) — and without even walking
// the tables — while staying byte-identical.
func TestRenderMemoizedAcrossSessions(t *testing.T) {
	shared := artifact.New()
	sel := []string{"table1", "table2", "fig2"}

	s1 := NewSession(tinyOptions())
	s1.Store = shared
	res1, err := (&Engine{Session: s1, Select: sel}).Run()
	if err != nil {
		t.Fatal(err)
	}
	out1 := renderUnits(t, res1)
	if got := s1.Renders(); got != int64(len(sel)) {
		t.Fatalf("first session rendered %d units, want %d", got, len(sel))
	}

	s2 := NewSession(tinyOptions())
	s2.Store = shared
	res2, err := (&Engine{Session: s2, Select: sel}).Run()
	if err != nil {
		t.Fatal(err)
	}
	out2 := renderUnits(t, res2)
	if got := s2.Renders(); got != 0 {
		t.Fatalf("second session rendered %d units, want 0", got)
	}
	if len(out2) != len(out1) {
		t.Fatalf("second session rendered %d units, first %d", len(out2), len(out1))
	}
	for name, want := range out1 {
		if !bytes.Equal(out2[name], want) {
			t.Errorf("unit %s: memoized render differs from original", name)
		}
	}
}

// TestRenderKeysSeparateOptions guards the render key: sessions at
// different budgets over one store must not alias each other's
// rendered units — the second session re-renders under its own key
// instead of replaying the first session's bytes.
func TestRenderKeysSeparateOptions(t *testing.T) {
	shared := artifact.New()
	render := func(opt Options) int64 {
		s := NewSession(opt)
		s.Store = shared
		res, err := (&Engine{Session: s, Select: []string{"fig2"}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		renderUnits(t, res)
		return s.Renders()
	}
	if got := render(tinyOptions()); got != 1 {
		t.Fatalf("first session rendered %d units, want 1", got)
	}
	bigger := tinyOptions()
	bigger.Budget *= 2
	if got := render(bigger); got != 1 {
		t.Fatalf("different-budget session rendered %d units, want 1 (render keys are aliasing options)", got)
	}
}

// TestCustomUnitsNotRenderMemoized pins the guard rail: custom unit
// sets (e.Units != nil) run unmemoized, because their names don't
// identify content the way the fixed paper set's names do.
func TestCustomUnitsNotRenderMemoized(t *testing.T) {
	s := NewSession(tinyOptions())
	calls := 0
	units := []Unit{{Name: "counter", Run: func(*Session) (Artifact, error) {
		calls++
		n := calls
		return RenderFunc(func(w io.Writer) { fmt.Fprintf(w, "call %d\n", n) }), nil
	}}}
	for want := 1; want <= 2; want++ {
		res, err := (&Engine{Session: s, Units: units}).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res[0].Artifact.Render(&buf)
		if got := fmt.Sprintf("call %d\n", want); buf.String() != got {
			t.Fatalf("run %d rendered %q, want %q — custom units must not be memoized", want, buf.String(), got)
		}
	}
	if s.Renders() != 0 {
		t.Errorf("custom units counted %d renders; the probe tracks only the paper set", s.Renders())
	}
}

// TestRenderErrorPropagates pins error handling through the memoized
// path: a failing unit reports its error, not a cached artifact.
func TestRenderErrorPropagates(t *testing.T) {
	// The default set has no failing units, so drive runUnit directly
	// with a synthetic visible unit while e.Units stays nil.
	s := NewSession(tinyOptions())
	e := &Engine{Session: s}
	boom := fmt.Errorf("boom")
	u := Unit{Name: "synthetic-failure", Run: func(*Session) (Artifact, error) { return nil, boom }}
	if _, _, err := e.runUnit(context.Background(), u); err != boom {
		t.Fatalf("runUnit error = %v, want %v", err, boom)
	}
	if s.Renders() != 0 {
		t.Errorf("failed unit counted a render")
	}
}
