package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
)

// blockTestWorkloads is a cross-stack sample: a Hadoop rep, a PARSEC
// comparator and an MPI twin.
func blockTestWorkloads() []workloads.Workload {
	list := []workloads.Workload{workloads.Representative17()[14]}
	list = append(list, parsecGroup()[0])
	list = append(list, workloads.MPI6()[0])
	return list
}

// TestBlockReplayEquivalence is the end-to-end differential guarantee
// behind the block pipeline: for real workloads, sweep curves produced
// through block replay — at sizes 1, a prime, an exact budget divisor
// and the budget-truncating default — are bit-identical to the
// retained per-instruction serial path, with serial and parallel cache
// fan-out.
func TestBlockReplayEquivalence(t *testing.T) {
	const budget = 50_000
	for _, w := range blockTestWorkloads() {
		ref := machine.NewSweep(machine.DefaultSweepSizesKB)
		workloads.Run(w, trace.Unblocked(ref), budget)
		want := ref.Curves()
		for _, bs := range []int{1, 7, 10_000, trace.DefaultBlockSize} {
			for _, par := range []int{1, 4} {
				sw := machine.NewSweep(machine.DefaultSweepSizesKB)
				sw.Parallelism = par
				workloads.RunBlock(w, sw, budget, bs)
				if got := sw.Curves(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: block %d par %d: curves != serial", w.ID, bs, par)
				}
			}
		}
	}
}

// TestBlockProfileEquivalence proves profiling through the Machine's
// block path leaves the 45-metric vector bit-identical, whatever the
// block size.
func TestBlockProfileEquivalence(t *testing.T) {
	const budget = 40_000
	for _, w := range blockTestWorkloads() {
		ref := machine.New(machine.XeonE5645())
		workloads.Run(w, trace.Unblocked(ref), budget)
		ref.Finish()
		for _, bs := range []int{1, 7, 8_000, trace.DefaultBlockSize} {
			m := machine.New(machine.XeonE5645())
			workloads.RunBlock(w, m, budget, bs)
			m.Finish()
			if m.C != ref.C || m.Pipe.Cycles != ref.Pipe.Cycles {
				t.Fatalf("%s: block %d: machine state != serial", w.ID, bs)
			}
		}
	}
}

// TestSessionBlockSizeInvariant checks the Session-level knob: odd
// block sizes and sweep parallelism render the same figure bytes.
func TestSessionBlockSizeInvariant(t *testing.T) {
	render := func(blockSize, par int) []byte {
		s := NewSession(Options{Budget: 50_000, SweepBudget: 40_000, RosterBudget: 40_000})
		s.BlockSize = blockSize
		s.Parallelism = par
		var buf bytes.Buffer
		Fig6(s).Render(&buf)
		Fig7(s).Render(&buf)
		return buf.Bytes()
	}
	want := render(0, 1)
	for _, c := range []struct{ bs, par int }{{1, 2}, {7, 4}, {777, 0}} {
		if got := render(c.bs, c.par); !bytes.Equal(got, want) {
			t.Fatalf("block %d par %d: rendered figures differ", c.bs, c.par)
		}
	}
}

// TestSerialFiguresMatchEngineFigures re-pins the seed-path invariant
// now that the engine path replays blocks and the serial path stays
// per-instruction: both must produce identical curves.
func TestSerialFiguresMatchEngineFigures(t *testing.T) {
	s := NewSession(Options{Budget: 50_000, SweepBudget: 40_000, RosterBudget: 40_000})
	serial := SerialSweepFigures(s)
	engine := [4]SweepResult{Fig6(s), Fig7(s), Fig8(s), Fig9(s)}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Curves, engine[i].Curves) {
			t.Fatalf("figure %d: serial and engine curves differ", i+6)
		}
	}
}
