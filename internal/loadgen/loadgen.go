package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Runner drives one suite against a reprod fleet.
type Runner struct {
	// Targets are the replicas' base URLs; requests round-robin over
	// them so the fleet's routing and proxying are on the measured
	// path.
	Targets []string
	// Client issues every request (nil = a 2-minute-timeout default).
	Client *http.Client
	// Salt uniquifies cold scenario keys across runs, so re-running
	// the suite against a warm fleet still measures genuine cold
	// computes. Empty = derived from the current time.
	Salt string
	// PIDs are processes whose summed RSS is sampled during each case
	// (the replicas and artifactd, via reprobench -pids). Empty
	// disables RSS measurement.
	PIDs []int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// CaseResult is one case's measured numbers plus any goal violations.
type CaseResult struct {
	Case          string  `json:"case"`
	Mix           Mix     `json:"mix"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	DurationMs    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	// Fleet-wide /v1/stats deltas over the measured phase (priming
	// excluded), summed across every target.
	Computes  int64 `json:"computes"`
	WarmHits  int64 `json:"warm_hits"`
	Coalesced int64 `json:"coalesced"`
	Proxied   int64 `json:"proxied"`
	// MaxRSSBytes is the peak summed resident set of the monitored
	// PIDs during the case (0 when not measured).
	MaxRSSBytes int64    `json:"max_rss_bytes,omitempty"`
	Failures    []string `json:"failures,omitempty"`
}

// Report is one full suite run — reprobench writes it as JSON next to
// the CI artifacts.
type Report struct {
	Machine  string       `json:"machine"`
	Targets  []string     `json:"targets"`
	Salt     string       `json:"salt"`
	Cases    []CaseResult `json:"cases"`
	Failures []string     `json:"failures,omitempty"`
}

// Run executes every case in order and gates the results; the
// returned report's Failures list is empty exactly when the suite
// passed. Run itself errors only on environmental failures (no
// targets, unreadable goals), never on missed goals.
func (r *Runner) Run(ctx context.Context, suite *Suite) (*Report, error) {
	if len(r.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	client := r.Client
	if client == nil {
		timeout := 2 * time.Minute
		if d, err := suite.Machine.requestTimeout(); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		} else if d > 0 {
			timeout = d
		}
		client = &http.Client{Timeout: timeout}
	}
	salt := r.Salt
	if salt == "" {
		salt = fmt.Sprintf("%x", time.Now().UnixNano())
	}
	rep := &Report{Machine: suite.Machine.Name, Targets: r.Targets, Salt: salt}
	for _, c := range suite.Cases {
		res, err := r.runCase(ctx, client, c, salt)
		if err != nil {
			return nil, fmt.Errorf("loadgen: case %s: %w", c.Name, err)
		}
		res.Failures = gateCase(suite.Machine, c, res)
		for _, f := range res.Failures {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", c.Name, f))
		}
		rep.Cases = append(rep.Cases, *res)
		r.logf("case %-18s %6d req  %8.1f req/s  p99 %7.1fms  computes %d  warm %d  %s",
			c.Name, res.Requests, res.ThroughputRPS, res.P99Ms, res.Computes, res.WarmHits, passFail(res.Failures))
	}
	return rep, nil
}

func passFail(failures []string) string {
	if len(failures) == 0 {
		return "PASS"
	}
	return fmt.Sprintf("FAIL (%d goals)", len(failures))
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// runCase measures one case: prime (warm_flood only), snapshot fleet
// stats, drive the ramp, snapshot again.
func (r *Runner) runCase(ctx context.Context, client *http.Client, c Case, salt string) (*CaseResult, error) {
	res := &CaseResult{Case: c.Name, Mix: c.Mix}

	if c.Mix == MixWarmFlood {
		// Prime every replica once so the measured phase is pure warm
		// serving: the first request computes, the rest warm up each
		// replica's fast path through the shared store (or the fleet
		// proxy).
		body, err := scenarioBody(c.Scenario, "warm-"+salt+"-"+c.Name)
		if err != nil {
			return nil, err
		}
		for _, target := range r.Targets {
			if _, err := postScenario(ctx, client, target, body); err != nil {
				return nil, fmt.Errorf("priming %s: %w", target, err)
			}
		}
	}

	before, err := fleetStats(ctx, client, r.Targets)
	if err != nil {
		return nil, err
	}
	stopRSS := r.sampleRSS(&res.MaxRSSBytes)
	defer stopRSS()

	var latencies []float64
	var mu sync.Mutex
	var reqs, errs atomic.Int64
	next := atomic.Int64{} // round-robin cursor over targets
	do := func(ctx context.Context, body []byte) {
		target := r.Targets[int(next.Add(1))%len(r.Targets)]
		start := time.Now()
		ok, err := postScenario(ctx, client, target, body)
		ms := float64(time.Since(start).Microseconds()) / 1000
		reqs.Add(1)
		if err != nil || !ok {
			errs.Add(1)
			return
		}
		mu.Lock()
		latencies = append(latencies, ms)
		mu.Unlock()
	}

	started := time.Now()
	wave := 0
	for _, conc := range c.Ramp.steps() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch c.Mix {
		case MixColdStampede:
			// One wave: exactly conc simultaneous requests for ONE
			// fresh key — the coalescing acceptance shape at this
			// concurrency.
			wave++
			body, err := scenarioBody(c.Scenario, fmt.Sprintf("cold-%s-%s-%d", salt, c.Name, wave))
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			for i := 0; i < conc; i++ {
				wg.Add(1)
				go func() { defer wg.Done(); do(ctx, body) }()
			}
			wg.Wait()
		case MixWarmFlood, MixAdhocGeometries:
			// RequestsPerStep requests through conc workers. warm_flood
			// reuses the primed body; adhoc_geometries salts every
			// request and rotates geometries so each one computes.
			warmBody, err := scenarioBody(c.Scenario, "warm-"+salt+"-"+c.Name)
			if err != nil {
				return nil, err
			}
			var seq atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := seq.Add(1)
						if n > int64(c.Ramp.RequestsPerStep) || ctx.Err() != nil {
							return
						}
						body := warmBody
						if c.Mix == MixAdhocGeometries {
							var err error
							body, err = adhocBody(c.Scenario, fmt.Sprintf("adhoc-%s-%s-%d-%d", salt, c.Name, conc, n), n)
							if err != nil {
								errs.Add(1)
								reqs.Add(1)
								continue
							}
						}
						do(ctx, body)
					}
				}()
			}
			wg.Wait()
		}
	}
	res.DurationMs = float64(time.Since(started).Microseconds()) / 1000
	stopRSS()

	after, err := fleetStats(ctx, client, r.Targets)
	if err != nil {
		return nil, err
	}
	res.Requests = reqs.Load()
	res.Errors = errs.Load()
	if res.DurationMs > 0 {
		res.ThroughputRPS = float64(res.Requests) / (res.DurationMs / 1000)
	}
	res.Computes = after.computes - before.computes
	res.WarmHits = after.warmHits - before.warmHits
	res.Coalesced = after.coalesced - before.coalesced
	res.Proxied = after.proxied - before.proxied
	sort.Float64s(latencies)
	res.P50Ms = percentile(latencies, 50)
	res.P90Ms = percentile(latencies, 90)
	res.P99Ms = percentile(latencies, 99)
	if n := len(latencies); n > 0 {
		res.MaxMs = latencies[n-1]
	}
	return res, nil
}

// gateCase applies the case goals and the machine limits to measured
// numbers, benchguard-style: every violated bound is one failure line.
func gateCase(m Machine, c Case, res *CaseResult) []string {
	var fails []string
	g := c.Goals
	if g.MinThroughputRPS > 0 && res.ThroughputRPS < g.MinThroughputRPS {
		fails = append(fails, fmt.Sprintf("throughput %.1f req/s below goal %.1f", res.ThroughputRPS, g.MinThroughputRPS))
	}
	if g.MaxP99Ms > 0 && res.P99Ms > g.MaxP99Ms {
		fails = append(fails, fmt.Sprintf("p99 %.1fms exceeds goal %.1fms", res.P99Ms, g.MaxP99Ms))
	}
	if g.MaxErrorRate != nil {
		rate := 0.0
		if res.Requests > 0 {
			rate = float64(res.Errors) / float64(res.Requests)
		}
		if rate > *g.MaxErrorRate {
			fails = append(fails, fmt.Sprintf("error rate %.4f (%d/%d) exceeds goal %.4f",
				rate, res.Errors, res.Requests, *g.MaxErrorRate))
		}
	}
	if g.MaxComputes != nil && res.Computes > *g.MaxComputes {
		fails = append(fails, fmt.Sprintf("fleet computed %d times, goal allows %d (coalescing/warm path regression)",
			res.Computes, *g.MaxComputes))
	}
	if m.Limits.MaxRSSMB > 0 && res.MaxRSSBytes > m.Limits.MaxRSSMB<<20 {
		fails = append(fails, fmt.Sprintf("peak RSS %dMB exceeds machine class %s limit %dMB",
			res.MaxRSSBytes>>20, m.Name, m.Limits.MaxRSSMB))
	}
	return fails
}

// scenarioBody renders the scenario template with its salted name.
func scenarioBody(template map[string]any, name string) ([]byte, error) {
	spec := make(map[string]any, len(template)+1)
	for k, v := range template {
		spec[k] = v
	}
	spec["name"] = name
	return json.Marshal(spec)
}

// adhocGeometries are the ways_set variants adhoc bodies rotate
// through, so an ad-hoc mix exercises genuinely different cache
// geometries rather than one shape with different names.
var adhocGeometries = [][]int{{1, 8}, {2, 16}, {4}, {1, 2, 8}}

// adhocBody renders a distinct scenario per request: salted name plus
// a rotated ways_set geometry.
func adhocBody(template map[string]any, name string, n int64) ([]byte, error) {
	spec := make(map[string]any, len(template)+2)
	for k, v := range template {
		spec[k] = v
	}
	spec["name"] = name
	spec["ways_set"] = adhocGeometries[int(n)%len(adhocGeometries)]
	return json.Marshal(spec)
}

// postScenario issues one POST /v1/scenarios, reporting HTTP success.
func postScenario(ctx context.Context, client *http.Client, target string, body []byte) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(target, "/")+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return false, nil
	}
	return true, nil
}

// fleetCounters are the /v1/stats fields the gate reads, summed over
// every target.
type fleetCounters struct {
	computes, warmHits, coalesced, proxied int64
}

func fleetStats(ctx context.Context, client *http.Client, targets []string) (fleetCounters, error) {
	var sum fleetCounters
	for _, target := range targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			strings.TrimRight(target, "/")+"/v1/stats", nil)
		if err != nil {
			return sum, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return sum, fmt.Errorf("stats from %s: %w", target, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return sum, fmt.Errorf("stats from %s: %d", target, resp.StatusCode)
		}
		var st struct {
			Computes  int64 `json:"computes"`
			WarmHits  int64 `json:"warm_hits"`
			Coalesced int64 `json:"coalesced"`
			Proxied   int64 `json:"fleet_proxied"`
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return sum, fmt.Errorf("stats from %s: %w", target, err)
		}
		sum.computes += st.Computes
		sum.warmHits += st.WarmHits
		sum.coalesced += st.Coalesced
		sum.proxied += st.Proxied
	}
	return sum, nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// sampleRSS starts a 50ms sampler of the summed resident set of
// r.PIDs, storing the running peak into *max; the returned stop
// function is idempotent. No PIDs (or a non-Linux /proc-less host)
// yields 0, which disables the RSS gate.
func (r *Runner) sampleRSS(max *int64) func() {
	if len(r.PIDs) == 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	var peak int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			if rss := readRSS(r.PIDs); rss > peak {
				peak = rss
			}
			select {
			case <-done:
				return
			case <-tick.C:
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			*max = peak
		})
	}
}

// readRSS sums the resident set (bytes) of pids from /proc, skipping
// any it cannot read (exited process, non-Linux host).
func readRSS(pids []int) int64 {
	var total int64
	for _, pid := range pids {
		b, err := os.ReadFile(fmt.Sprintf("/proc/%d/statm", pid))
		if err != nil {
			continue
		}
		// statm: size resident shared ... (pages)
		fields := strings.Fields(string(b))
		if len(fields) < 2 {
			continue
		}
		var resident int64
		if _, err := fmt.Sscanf(fields[1], "%d", &resident); err != nil {
			continue
		}
		total += resident * int64(os.Getpagesize())
	}
	return total
}
