package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// startTestFleet brings up a 2-replica reprod fleet sharing one store
// — the in-process analogue of the CI serving-perf topology.
func startTestFleet(t *testing.T) ([]*serve.Server, []string) {
	t.Helper()
	opt := experiments.Options{Budget: 25_000, SweepBudget: 15_000, RosterBudget: 8_000}
	store := artifact.New()
	const n = 2
	servers := make([]*serve.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		host := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(host.Close)
		urls[i] = host.URL
	}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{Opt: opt, Store: store, Parallelism: 2, Self: urls[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	return servers, urls
}

// TestRunnerEndToEnd drives a full suite — warm flood, cold stampede,
// ad-hoc geometries — against a live 2-replica fleet and pins what the
// CI gate relies on: the warm mix never computes, each stampede wave
// computes exactly once fleet-wide, ad-hoc requests compute per
// request, and RSS sampling yields a real number.
func TestRunnerEndToEnd(t *testing.T) {
	servers, urls := startTestFleet(t)
	dir := writeSuite(t, testMachine, map[string]string{
		"1_warm_hit_flood": `
mix: warm_flood
scenario:
  workloads: [H-Grep]
  sizes_kb: [16, 64]
ramp:
  start: 2
  end: 4
  step: 2
  requests_per_step: 10
goals:
  min_throughput_rps: 1
  max_error_rate: 0
  max_computes: 0
`,
		"2_cold_stampede": `
mix: cold_stampede
scenario:
  workloads: [H-Grep]
  sizes_kb: [16]
ramp:
  start: 8
  end: 16
  step: 8
goals:
  max_error_rate: 0
  max_computes: 2
`,
		"3_adhoc_geometries": `
mix: adhoc_geometries
scenario:
  workloads: [S-Sort]
  sizes_kb: [16, 32]
ramp:
  start: 2
  end: 2
  step: 1
  requests_per_step: 4
goals:
  max_error_rate: 0
`,
	})
	suite, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Targets: urls,
		Salt:    "e2e",
		PIDs:    []int{os.Getpid()},
		Logf:    t.Logf,
	}
	report, err := r.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("suite failed: %v", report.Failures)
	}
	if len(report.Cases) != 3 || report.Machine != "test-class" {
		t.Fatalf("report %+v", report)
	}

	warm, cold, adhoc := report.Cases[0], report.Cases[1], report.Cases[2]
	// Warm flood: 2 steps × 10 requests, all warm, zero computes in
	// the measured phase (priming happens before the snapshot).
	if warm.Requests != 20 || warm.Errors != 0 {
		t.Fatalf("warm case: %+v", warm)
	}
	if warm.Computes != 0 || warm.WarmHits != 20 {
		t.Fatalf("warm flood computed %d / warm-hit %d, want 0/20", warm.Computes, warm.WarmHits)
	}
	// Cold stampede: two waves (8-wide, 16-wide), one fresh key each →
	// exactly 2 computes fleet-wide for 24 requests.
	if cold.Requests != 24 || cold.Errors != 0 {
		t.Fatalf("cold case: %+v", cold)
	}
	if cold.Computes != 2 {
		t.Fatalf("cold stampede computed %d times fleet-wide, want exactly 2", cold.Computes)
	}
	// Ad-hoc: every request is a distinct scenario → one compute each.
	if adhoc.Requests != 4 || adhoc.Computes != 4 {
		t.Fatalf("adhoc case: %+v", adhoc)
	}
	// RSS was actually sampled (monitoring this test process).
	for _, c := range report.Cases {
		if c.MaxRSSBytes <= 0 {
			t.Fatalf("case %s sampled no RSS", c.Case)
		}
	}
	// Replica counters agree with the report: the fleet as a whole
	// computed warm-prime 1 + cold 2 + adhoc 4 = 7 times.
	var computes int64
	for _, s := range servers {
		computes += s.Stats().Computes
	}
	if computes != 7 {
		t.Fatalf("fleet computed %d times total, want 7", computes)
	}

	// Goal regression turns into failures, not errors: rerun the warm
	// case against an impossible throughput floor.
	suite.Cases[0].Goals.MinThroughputRPS = 1e12
	report2, err := r.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Failures) == 0 {
		t.Fatal("impossible goal passed")
	}
}

// TestRunnerNoTargets pins environmental-failure handling.
func TestRunnerNoTargets(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(context.Background(), &Suite{Machine: Machine{Name: "x"}}); err == nil {
		t.Fatal("no-target run succeeded")
	}
}
