// Package loadgen is reprobench's engine: it ramps concurrent
// scenario mixes against a reprod fleet, records throughput, tail
// latency, fleet-wide compute counters and RSS, and gates the numbers
// against committed goal files — the serving-layer analogue of
// BENCH_baseline.json's benchguard gate, modeled on SMP-style machine
// classes (a machine.yaml of resource limits plus one experiment.yaml
// per case).
//
// A goal directory looks like:
//
//	bench/goals/ci-1core/
//	  machine.yaml                      # machine class + resource limits
//	  cases/
//	    warm_hit_flood/experiment.yaml  # one load case + its goals
//	    cold_stampede/experiment.yaml
//
// Cases come in three mixes:
//
//   - warm_flood: one scenario, primed before measurement — every
//     measured request must be a warm store hit. Gates throughput,
//     tail latency, and (max_computes: 0) that the warm path never
//     recomputes.
//   - cold_stampede: each ramp step fires exactly its concurrency in
//     simultaneous requests for ONE fresh (salted) scenario key — the
//     coalescing acceptance shape. Gates that computes stay at one per
//     wave (max_computes = number of steps) no matter the concurrency.
//   - adhoc_geometries: every request is a distinct salted scenario
//     (rotating ways_set geometries), so each one is a genuine
//     computation. Gates sustained compute throughput and error rate.
package loadgen

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Mix names the load shape of one case.
type Mix string

// The supported load mixes.
const (
	MixWarmFlood       Mix = "warm_flood"
	MixColdStampede    Mix = "cold_stampede"
	MixAdhocGeometries Mix = "adhoc_geometries"
)

// Limits are a machine class's resource bounds, applied to every case
// run on that class.
type Limits struct {
	// MaxRSSMB bounds the peak summed resident set of the monitored
	// processes (reprobench -pids) during any case. 0 = not gated.
	MaxRSSMB int64 `json:"max_rss_mb,omitempty"`
}

// Machine describes the machine class a goal directory is calibrated
// for — goals are meaningless without naming the hardware they were
// set on.
type Machine struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Limits      Limits `json:"limits,omitempty"`
	// RequestTimeout bounds each individual request when the runner is
	// not given its own client (a Go duration string, e.g. "3m"). Chaos
	// suites, whose requests ride out injected latency and retries, set
	// this explicitly; empty = the runner's 2-minute default.
	RequestTimeout string `json:"request_timeout,omitempty"`
}

// requestTimeout parses the configured bound (0 = unset).
func (m Machine) requestTimeout() (time.Duration, error) {
	if m.RequestTimeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(m.RequestTimeout)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("request_timeout %q is not a positive duration", m.RequestTimeout)
	}
	return d, nil
}

// Ramp shapes one case's concurrency schedule: steps at Start,
// Start+Step, ... up to End inclusive.
type Ramp struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Step  int `json:"step"`
	// RequestsPerStep is the request count issued at each concurrency
	// level (warm_flood and adhoc_geometries; cold_stampede waves are
	// sized by the concurrency itself and ignore it).
	RequestsPerStep int `json:"requests_per_step,omitempty"`
}

// steps expands the schedule.
func (r Ramp) steps() []int {
	var out []int
	for c := r.Start; c <= r.End; c += r.Step {
		out = append(out, c)
	}
	return out
}

// Goals are one case's pass/fail thresholds. Zero-valued fields are
// not gated; MaxErrorRate and MaxComputes use pointers because zero is
// their most useful bound.
type Goals struct {
	// MinThroughputRPS bounds measured requests/second from below.
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
	// MaxP99Ms bounds the 99th-percentile request latency.
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate bounds failed requests / total (nil = not gated;
	// explicit 0 = no errors tolerated).
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// MaxComputes bounds the fleet-wide computes delta during the
	// measured phase (nil = not gated; 0 = pure warm serving, N = one
	// per cold wave).
	MaxComputes *int64 `json:"max_computes,omitempty"`
}

// Case is one committed load case: a scenario template, a ramp, and
// the goals the measured numbers must meet.
type Case struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Mix         Mix    `json:"mix"`
	// Scenario is the POST /v1/scenarios body template. Cold mixes
	// salt its "name" field per run/request so keys are genuinely
	// cold; warm_flood sends it verbatim.
	Scenario map[string]any `json:"scenario"`
	Ramp     Ramp           `json:"ramp"`
	Goals    Goals          `json:"goals,omitempty"`
}

// Suite is one loaded goal directory.
type Suite struct {
	Machine Machine
	Cases   []Case
	Dir     string
}

// LoadSuite reads dir (machine.yaml + cases/*/experiment.yaml, cases
// sorted by directory name) and validates every case.
func LoadSuite(dir string) (*Suite, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "machine.yaml"))
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	s := &Suite{Dir: dir}
	if err := DecodeYAML(mb, &s.Machine); err != nil {
		return nil, fmt.Errorf("loadgen: %s/machine.yaml: %w", dir, err)
	}
	if s.Machine.Name == "" {
		return nil, fmt.Errorf("loadgen: %s/machine.yaml names no machine class", dir)
	}
	if _, err := s.Machine.requestTimeout(); err != nil {
		return nil, fmt.Errorf("loadgen: %s/machine.yaml: %w", dir, err)
	}
	caseDirs, err := filepath.Glob(filepath.Join(dir, "cases", "*", "experiment.yaml"))
	if err != nil {
		return nil, err
	}
	sort.Strings(caseDirs)
	for _, path := range caseDirs {
		cb, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		var c Case
		if err := DecodeYAML(cb, &c); err != nil {
			return nil, fmt.Errorf("loadgen: %s: %w", path, err)
		}
		if c.Name == "" {
			c.Name = filepath.Base(filepath.Dir(path))
		}
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("loadgen: %s: %w", path, err)
		}
		s.Cases = append(s.Cases, c)
	}
	if len(s.Cases) == 0 {
		return nil, fmt.Errorf("loadgen: %s has no cases/*/experiment.yaml", dir)
	}
	return s, nil
}

func (c *Case) validate() error {
	switch c.Mix {
	case MixWarmFlood, MixColdStampede, MixAdhocGeometries:
	default:
		return fmt.Errorf("case %s: unknown mix %q (want warm_flood, cold_stampede or adhoc_geometries)", c.Name, c.Mix)
	}
	if len(c.Scenario) == 0 {
		return fmt.Errorf("case %s: no scenario template", c.Name)
	}
	r := c.Ramp
	if r.Start <= 0 || r.End < r.Start || r.Step <= 0 {
		return fmt.Errorf("case %s: ramp start/end/step %d/%d/%d invalid", c.Name, r.Start, r.End, r.Step)
	}
	if c.Mix != MixColdStampede && r.RequestsPerStep <= 0 {
		return fmt.Errorf("case %s: mix %s needs ramp.requests_per_step", c.Name, c.Mix)
	}
	return nil
}
