package loadgen

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Goal files are YAML for human authoring (SMP-style machine classes
// and experiment cases read better with comments and without brace
// noise), but the repo carries zero dependencies — so this file is a
// deliberately small YAML subset parser covering exactly what goal
// files need:
//
//   - maps nested by indentation (spaces only)
//   - "key: value" scalars and "key:" block openers
//   - block lists of scalars ("- item") and flow lists ("[a, b, c]")
//   - strings (bare, single- or double-quoted), ints, floats, bools
//   - "#" comments and blank lines
//
// Anchors, multi-document streams, multiline strings, lists of maps
// and every other YAML dark corner are out of scope and rejected
// loudly rather than misparsed. DecodeYAML round-trips the parsed tree
// through encoding/json into the caller's typed struct, so goal types
// declare plain `json` tags.

// DecodeYAML parses src (the supported YAML subset) into v via a JSON
// round trip.
func DecodeYAML(src []byte, v any) error {
	tree, err := ParseYAML(src)
	if err != nil {
		return err
	}
	b, err := json.Marshal(tree)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("yaml: %w", err)
	}
	return nil
}

// ParseYAML parses src into nested map[string]any / []any / scalar
// values.
func ParseYAML(src []byte) (any, error) {
	var lines []yamlLine
	for n, raw := range strings.Split(string(src), "\n") {
		text := stripComment(raw)
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.Contains(text, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", n+1)
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		lines = append(lines, yamlLine{n + 1, indent, strings.TrimSpace(text)})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected outdent past the document root", lines[next].num)
	}
	return v, nil
}

type yamlLine struct {
	num    int
	indent int
	text   string
}

// parseBlock parses the run of lines at exactly this indent (a map or
// a list), returning the value and the index of the first line it did
// not consume.
func parseBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseList(lines []yamlLine, i, indent int) (any, int, error) {
	out := []any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") {
			return nil, 0, fmt.Errorf("yaml line %d: expected a %q list item", ln.num, "- ")
		}
		item := strings.TrimSpace(ln.text[2:])
		if item == "" || strings.HasSuffix(item, ":") || strings.Contains(item, ": ") {
			return nil, 0, fmt.Errorf("yaml line %d: only scalar list items are supported", ln.num)
		}
		v, err := parseScalar(item, ln.num)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, v)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("yaml line %d: unexpected indent inside a list", lines[i].num)
	}
	return out, i, nil
}

func parseMap(lines []yamlLine, i, indent int) (any, int, error) {
	out := map[string]any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, 0, fmt.Errorf("yaml line %d: expected \"key: value\" or \"key:\", got %q", ln.num, ln.text)
		}
		if _, dup := out[key]; dup {
			return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		i++
		if rest != "" {
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			out[key] = v
			continue
		}
		// Block opener: the nested value is the run of deeper-indented
		// lines; none means an empty map.
		if i >= len(lines) || lines[i].indent <= indent {
			out[key] = map[string]any{}
			continue
		}
		v, next, err := parseBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, 0, err
		}
		out[key] = v
		i = next
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("yaml line %d: unexpected indent", lines[i].num)
	}
	return out, i, nil
}

// splitKey splits "key: value" / "key:"; keys are bare words (goal
// files never need quoted keys).
func splitKey(text string) (key, rest string, ok bool) {
	idx := strings.Index(text, ":")
	if idx <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(text[:idx])
	rest = strings.TrimSpace(text[idx+1:])
	if key == "" || strings.ContainsAny(key, "\"'[]{}") {
		return "", "", false
	}
	if rest != "" && !strings.HasPrefix(text[idx+1:], " ") {
		// "a:b" is a scalar containing a colon, not a key — but as a
		// map entry's start it is malformed.
		return "", "", false
	}
	return key, rest, true
}

// parseScalar parses a value: flow list, quoted string, bool, number,
// or bare string.
func parseScalar(s string, line int) (any, error) {
	switch {
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("yaml line %d: empty element in flow list %q", line, s)
			}
			v, err := parseScalar(part, line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2:
		var out string
		if err := json.Unmarshal([]byte(s), &out); err != nil {
			return nil, fmt.Errorf("yaml line %d: bad quoted string %s", line, s)
		}
		return out, nil
	case strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2:
		return s[1 : len(s)-1], nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s == "null" || s == "~":
		return nil, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// stripComment removes a trailing "#"-comment, respecting quotes.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}
