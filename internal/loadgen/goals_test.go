package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeSuite materializes a goal directory for tests.
func writeSuite(t *testing.T, machine string, cases map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "machine.yaml"), []byte(machine), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, body := range cases {
		caseDir := filepath.Join(dir, "cases", name)
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(caseDir, "experiment.yaml"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testMachine = `
name: test-class
description: unit-test machine class
limits:
  max_rss_mb: 4096
`

// TestLoadSuite pins directory loading: machine class, sorted cases,
// name defaulting from the directory, and validation.
func TestLoadSuite(t *testing.T) {
	dir := writeSuite(t, testMachine, map[string]string{
		"b_cold": `
mix: cold_stampede
scenario:
  workloads: [H-Grep]
  sizes_kb: [16]
ramp:
  start: 8
  end: 16
  step: 8
goals:
  max_computes: 2
`,
		"a_warm": `
name: warm_named
mix: warm_flood
scenario:
  workloads: [H-Grep]
  sizes_kb: [16]
ramp:
  start: 2
  end: 4
  step: 2
  requests_per_step: 10
`,
	})
	s, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.Name != "test-class" || s.Machine.Limits.MaxRSSMB != 4096 {
		t.Fatalf("machine %+v", s.Machine)
	}
	if len(s.Cases) != 2 || s.Cases[0].Name != "warm_named" || s.Cases[1].Name != "b_cold" {
		t.Fatalf("cases %+v", s.Cases)
	}
	if got := s.Cases[1].Ramp.steps(); len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Fatalf("ramp steps %v", got)
	}

	for name, bad := range map[string]string{
		"bad mix":       "mix: tsunami\nscenario:\n  workloads: [H-Grep]\nramp:\n  start: 1\n  end: 1\n  step: 1\n  requests_per_step: 1\n",
		"no scenario":   "mix: warm_flood\nramp:\n  start: 1\n  end: 1\n  step: 1\n  requests_per_step: 1\n",
		"bad ramp":      "mix: warm_flood\nscenario:\n  workloads: [H-Grep]\nramp:\n  start: 4\n  end: 2\n  step: 1\n  requests_per_step: 1\n",
		"no per-step":   "mix: warm_flood\nscenario:\n  workloads: [H-Grep]\nramp:\n  start: 1\n  end: 1\n  step: 1\n",
		"unknown field": "mix: warm_flood\nscenario:\n  workloads: [H-Grep]\nramp:\n  start: 1\n  end: 1\n  step: 1\n  requests_per_step: 1\nbudget_goals: {}\n",
	} {
		dir := writeSuite(t, testMachine, map[string]string{"c": bad})
		if _, err := LoadSuite(dir); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
	if _, err := LoadSuite(writeSuite(t, testMachine, nil)); err == nil {
		t.Error("empty suite loaded without error")
	}
}

// TestMachineRequestTimeout pins the per-suite request bound: parsed
// from machine.yaml, validated at load time, zero when unset.
func TestMachineRequestTimeout(t *testing.T) {
	okCase := map[string]string{"c": `
mix: warm_flood
scenario:
  workloads: [H-Grep]
ramp:
  start: 1
  end: 1
  step: 1
  requests_per_step: 1
`}
	s, err := LoadSuite(writeSuite(t, "name: chaos-class\nrequest_timeout: \"3m\"\n", okCase))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := s.Machine.requestTimeout(); err != nil || d != 3*time.Minute {
		t.Fatalf("request_timeout %v %v, want 3m", d, err)
	}
	if d, err := (Machine{}).requestTimeout(); err != nil || d != 0 {
		t.Fatalf("unset request_timeout %v %v, want 0", d, err)
	}
	for _, bad := range []string{"3 parsecs", "-1s", "0s"} {
		if _, err := LoadSuite(writeSuite(t, "name: x\nrequest_timeout: \""+bad+"\"\n", okCase)); err == nil {
			t.Errorf("request_timeout %q accepted", bad)
		}
	}
}

// TestGateCase pins the benchguard-style comparison: each violated
// bound is one failure line, zero-valued goals gate nothing, and
// explicit-zero pointer goals do gate.
func TestGateCase(t *testing.T) {
	zero := int64(0)
	noErrs := 0.0
	m := Machine{Name: "test-class", Limits: Limits{MaxRSSMB: 1}}
	c := Case{
		Name: "warm",
		Goals: Goals{
			MinThroughputRPS: 100,
			MaxP99Ms:         50,
			MaxErrorRate:     &noErrs,
			MaxComputes:      &zero,
		},
	}
	res := &CaseResult{
		Requests: 100, Errors: 3,
		ThroughputRPS: 42, P99Ms: 80,
		Computes:    2,
		MaxRSSBytes: 2 << 20,
	}
	fails := gateCase(m, c, res)
	if len(fails) != 5 {
		t.Fatalf("want 5 failures, got %d: %v", len(fails), fails)
	}
	for _, want := range []string{"throughput", "p99", "error rate", "computed", "RSS"} {
		found := false
		for _, f := range fails {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no failure mentions %q: %v", want, fails)
		}
	}

	// All bounds met → clean. Unset (zero/nil) goals never gate.
	ok := &CaseResult{Requests: 100, ThroughputRPS: 500, P99Ms: 10, MaxRSSBytes: 1 << 10}
	if fails := gateCase(m, c, ok); len(fails) != 0 {
		t.Fatalf("passing result failed: %v", fails)
	}
	if fails := gateCase(Machine{}, Case{}, res); len(fails) != 0 {
		t.Fatalf("goalless case gated: %v", fails)
	}
}

// TestPercentile pins the tail-index arithmetic.
func TestPercentile(t *testing.T) {
	if p := percentile(nil, 99); p != 0 {
		t.Fatalf("empty percentile %v", p)
	}
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		p    int
		want float64
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}} {
		if got := percentile(lat, c.p); got != c.want {
			t.Errorf("p%d = %v, want %v", c.p, got, c.want)
		}
	}
}
