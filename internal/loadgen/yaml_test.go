package loadgen

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseYAMLSubset pins the supported surface: nested maps, block
// and flow lists, scalar typing, quoting, comments.
func TestParseYAMLSubset(t *testing.T) {
	src := `
# machine class
name: ci-1core
description: "shared CI runner: 1-2 cores"  # trailing comment
count: 3
ratio: 0.25
enabled: true
empty_list: []
limits:
  max_rss_mb: 2048
  nested:
    deep: 'single quoted'
workloads: [H-Grep, S-Sort]
sizes:
  - 16
  - 64
  - 256
`
	got, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":        "ci-1core",
		"description": "shared CI runner: 1-2 cores",
		"count":       int64(3),
		"ratio":       0.25,
		"enabled":     true,
		"empty_list":  []any{},
		"limits": map[string]any{
			"max_rss_mb": int64(2048),
			"nested":     map[string]any{"deep": "single quoted"},
		},
		"workloads": []any{"H-Grep", "S-Sort"},
		"sizes":     []any{int64(16), int64(64), int64(256)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", got, want)
	}
}

// TestParseYAMLRejectsDarkCorners pins loud rejection over misparsing.
func TestParseYAMLRejectsDarkCorners(t *testing.T) {
	for name, src := range map[string]string{
		"tabs":          "a:\n\tb: 1",
		"list of maps":  "items:\n  - name: x\n    v: 1",
		"duplicate key": "a: 1\na: 2",
		"indent inside list": `items:
  - 1
      - 2`,
		"bare scalar line": "a: 1\njust a scalar",
		"root outdent": `a:
    b: 1
  c: 2`,
	} {
		if _, err := ParseYAML([]byte(src)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestDecodeYAMLTyped pins the JSON round trip into goal structs,
// including unknown-field rejection (a typoed goal key must not be
// silently ignored — it would silently not gate).
func TestDecodeYAMLTyped(t *testing.T) {
	src := `
name: cold_stampede
mix: cold_stampede
scenario:
  workloads: [H-Grep]
  sizes_kb: [16, 64]
ramp:
  start: 8
  end: 32
  step: 8
goals:
  max_computes: 4
  max_error_rate: 0
`
	var c Case
	if err := DecodeYAML([]byte(src), &c); err != nil {
		t.Fatal(err)
	}
	if c.Mix != MixColdStampede || c.Ramp.End != 32 {
		t.Fatalf("decoded %+v", c)
	}
	if c.Goals.MaxComputes == nil || *c.Goals.MaxComputes != 4 {
		t.Fatalf("max_computes pointer lost: %+v", c.Goals)
	}
	if c.Goals.MaxErrorRate == nil || *c.Goals.MaxErrorRate != 0 {
		t.Fatalf("explicit zero error rate lost: %+v", c.Goals)
	}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}

	var bad Case
	err := DecodeYAML([]byte("name: x\nmix: warm_flood\ntypoed_goal: 1\n"), &bad)
	if err == nil || !strings.Contains(err.Error(), "typoed_goal") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}
