package artifact

// Health is the optional degraded-state report of a backend tier:
// whether it currently considers its persistence unreachable, plus
// the resilience counters that explain why. A tier that never
// degrades (DiskBackend) simply doesn't implement HealthReporter.
type Health struct {
	// Degraded means the tier is routing around a down dependency:
	// reads are instant misses and writes are dropped rather than
	// buffered, so the store serves memory hits and computes locally.
	Degraded bool
	// Retries counts extra attempts beyond each operation's first.
	Retries int64
	// Skipped counts operations short-circuited while degraded.
	Skipped int64
	// Breaker lifecycle counters (see retry.Breaker).
	BreakerTrips, BreakerProbes, BreakerRecoveries int64
}

// merge folds another tier's health into this one: counters add,
// degradation ORs (one dead tier degrades the whole chain's report —
// the store still works, but operators should know).
func (h Health) merge(o Health) Health {
	h.Degraded = h.Degraded || o.Degraded
	h.Retries += o.Retries
	h.Skipped += o.Skipped
	h.BreakerTrips += o.BreakerTrips
	h.BreakerProbes += o.BreakerProbes
	h.BreakerRecoveries += o.BreakerRecoveries
	return h
}

// HealthReporter is the optional health side of a Backend.
type HealthReporter interface {
	Health() Health
}

// Health implements HealthReporter over the chain: counters sum,
// degradation ORs across tiers.
func (c chain) Health() Health {
	var h Health
	for _, t := range c {
		h = h.merge(backendHealth(t))
	}
	return h
}

func backendHealth(b Backend) Health {
	if hr, ok := b.(HealthReporter); ok {
		return hr.Health()
	}
	return Health{}
}

// Health reports the store's backend health (zero when the backend is
// nil or health-agnostic). Degraded does not impair correctness — a
// degraded store serves memory-tier hits and recomputes everything
// else — but operators want it on /readyz.
//
// Health is also where degradation edges become events: backend health
// is pull-based, so the transition is detected at observation time (a
// /readyz poll or stats scrape) and published exactly once per edge as
// degraded / recovered.
func (s *Store) Health() Health {
	if s.backend == nil {
		return Health{}
	}
	h := backendHealth(s.backend)
	if s.events != nil && s.wasDegraded.Swap(h.Degraded) != h.Degraded {
		typ := "recovered"
		if h.Degraded {
			typ = "degraded"
		}
		s.events.Event(typ, map[string]any{"retries": h.Retries, "skipped": h.Skipped})
	}
	return h
}
