package artifact

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseQuotaSpec(t *testing.T) {
	cases := []struct {
		spec string
		want MemQuota
	}{
		{"256MB", MemQuota{MaxBytes: 256 << 20}},
		{"1GB", MemQuota{MaxBytes: 1 << 30}},
		{"30m", MemQuota{MaxAge: 30 * time.Minute}},
		{"1d", MemQuota{MaxAge: 24 * time.Hour}},
		{"256MB,30m", MemQuota{MaxBytes: 256 << 20, MaxAge: 30 * time.Minute}},
		{"scenario-render=64MB", MemQuota{Kinds: map[string]int64{"scenario-render": 64 << 20}}},
		{" 256MB , 30m , scenario-render=64MB , datagen=96MB ", MemQuota{
			MaxBytes: 256 << 20, MaxAge: 30 * time.Minute,
			Kinds: map[string]int64{"scenario-render": 64 << 20, "datagen": 96 << 20},
		}},
	}
	for _, c := range cases {
		got, err := ParseQuotaSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseQuotaSpec(%q): %v", c.spec, err)
		}
		if got.MaxBytes != c.want.MaxBytes || got.MaxAge != c.want.MaxAge || len(got.Kinds) != len(c.want.Kinds) {
			t.Fatalf("ParseQuotaSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		for k, v := range c.want.Kinds {
			if got.Kinds[k] != v {
				t.Fatalf("ParseQuotaSpec(%q).Kinds[%q] = %d, want %d", c.spec, k, got.Kinds[k], v)
			}
		}
		if !got.Enabled() {
			t.Fatalf("ParseQuotaSpec(%q) parsed but not Enabled", c.spec)
		}
	}
	for _, bad := range []string{
		"", "   ", "nonsense", "0B", "-1MB", "256MB,1GB", "30m,2h",
		"=64MB", "render=", "render=bogus", "render=0B", "x=1MB,x=2MB",
	} {
		if q, err := ParseQuotaSpec(bad); err == nil {
			t.Fatalf("ParseQuotaSpec(%q) = %+v, want error", bad, q)
		}
	}
	if (MemQuota{}).Enabled() {
		t.Fatal("zero MemQuota claims to be enabled")
	}
}

func TestQuotaStringRoundTrips(t *testing.T) {
	q := MemQuota{MaxBytes: 1 << 20, MaxAge: time.Hour, Kinds: map[string]int64{"a": 1 << 10, "b": 2 << 10}}
	back, err := ParseQuotaSpec(q.String())
	if err != nil {
		t.Fatalf("String %q did not re-parse: %v", q.String(), err)
	}
	if back.MaxBytes != q.MaxBytes || back.MaxAge != q.MaxAge || back.Kinds["a"] != q.Kinds["a"] || back.Kinds["b"] != q.Kinds["b"] {
		t.Fatalf("round trip %q -> %+v, want %+v", q.String(), back, q)
	}
	if (MemQuota{}).String() != "unbounded" {
		t.Fatalf("zero quota String = %q", (MemQuota{}).String())
	}
}

// memVal is the soak/eviction payload: deterministic function of its
// key index so every read can verify it got the right bytes back.
type memVal struct {
	I    int
	Body string
}

func mkVal(i int) memVal {
	return memVal{I: i, Body: fmt.Sprintf("payload-%08d-%08d", i, i*7)}
}

func memKey(kind string, i int) Key {
	return KeyOf(kind, cfg{Name: fmt.Sprintf("k%08d", i), N: i})
}

// fillKind inserts n entries of kind through GetMem and returns the
// per-entry charged size observed after the first insert.
func fillKind(t *testing.T, s *Store, kind string, n int) int64 {
	t.Helper()
	var per int64
	for i := 0; i < n; i++ {
		i := i
		v, err := GetMem(s, memKey(kind, i), func() (memVal, error) { return mkVal(i), nil })
		if err != nil || v != mkVal(i) {
			t.Fatalf("fill %d: %v %v", i, v, err)
		}
		if i == 0 {
			per = s.Stats().ResidentBytes
		}
	}
	return per
}

func TestGlobalQuotaBoundsResidentBytes(t *testing.T) {
	s := New()
	per := fillKind(t, s, "thing", 1)
	quota := 8*per + per/2 // room for ~8 entries
	s.SetMemQuota(MemQuota{MaxBytes: quota})
	fillKind(t, s, "thing", 64)

	st := s.Stats()
	if st.ResidentBytes > quota {
		t.Fatalf("resident %d exceeds quota %d", st.ResidentBytes, quota)
	}
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("64 entries into a ~8-entry quota evicted nothing: %+v", st)
	}
	if st.ResidentEntries == 0 {
		t.Fatal("quota evicted everything, should retain up to the bound")
	}
	// An evicted key recomputes to byte-identical output.
	fills := st.Fills
	v, err := GetMem(s, memKey("thing", 0), func() (memVal, error) { return mkVal(0), nil })
	if err != nil || v != mkVal(0) {
		t.Fatalf("re-get of evicted key: %v %v", v, err)
	}
	if got := s.Stats().Fills; got != fills+1 {
		t.Fatalf("evicted key should recompute exactly once: fills %d -> %d", fills, got)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	s := New()
	per := fillKind(t, s, "lru", 1) // key 0 resident
	s.SetMemQuota(MemQuota{MaxBytes: 2*per + per/2})

	GetMem(s, memKey("lru", 1), func() (memVal, error) { return mkVal(1), nil })
	// Touch key 0 so key 1 is now the LRU tail.
	GetMem(s, memKey("lru", 0), func() (memVal, error) {
		t.Fatal("touching a resident key must not recompute")
		return memVal{}, nil
	})
	// Key 2 displaces exactly one entry: the untouched key 1.
	GetMem(s, memKey("lru", 2), func() (memVal, error) { return mkVal(2), nil })

	fills := s.Stats().Fills
	GetMem(s, memKey("lru", 0), func() (memVal, error) {
		t.Fatal("recently used key was evicted before the LRU tail")
		return memVal{}, nil
	})
	GetMem(s, memKey("lru", 1), func() (memVal, error) { return mkVal(1), nil })
	if got := s.Stats().Fills; got != fills+1 {
		t.Fatalf("LRU key 1 should have been the eviction victim: fills %d -> %d", fills, got)
	}
}

func TestKindQuotaShedsOnlyItsOwnKinds(t *testing.T) {
	s := New()
	fillKind(t, s, "profile", 4)
	per := s.Stats().ResidentBytes / 4
	// Bound the flood family only; "flood" must cover "flood-render"
	// by prefix. The profiles stay untouched however hard it floods.
	s.SetMemQuota(MemQuota{Kinds: map[string]int64{"flood": 3 * per}})
	fillKind(t, s, "flood-render", 32)

	st := s.Stats()
	if st.KindResident["flood-render"] > 3*per {
		t.Fatalf("flood-render resident %d exceeds its kind quota %d", st.KindResident["flood-render"], 3*per)
	}
	if st.KindEvictions["flood-render"] == 0 {
		t.Fatalf("flood past its kind quota evicted nothing: %+v", st)
	}
	if st.KindEvictions["profile"] != 0 {
		t.Fatalf("kind quota for flood evicted %d profiles", st.KindEvictions["profile"])
	}
	for i := 0; i < 4; i++ {
		GetMem(s, memKey("profile", i), func() (memVal, error) {
			t.Fatalf("profile %d was evicted by the flood's kind quota", i)
			return memVal{}, nil
		})
	}
}

func TestMaxAgeSweepEvictsIdleEntries(t *testing.T) {
	s := New()
	fillKind(t, s, "aged", 8)
	s.SetMemQuota(MemQuota{MaxAge: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	s.SweepMem()
	st := s.Stats()
	if st.ResidentEntries != 0 || st.ResidentBytes != 0 {
		t.Fatalf("idle entries survived a MaxAge sweep: %+v", st)
	}
	if st.Evictions != 8 {
		t.Fatalf("want 8 age evictions, got %d", st.Evictions)
	}
}

func TestPrefetchStagedBytesAreCharged(t *testing.T) {
	b := newBulkBackend()
	seed := NewWithBackend(b)
	const n = 16
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = memKey("pre", i)
		i := i
		Get(seed, keys[i], func() (memVal, error) { return mkVal(i), nil })
	}

	// Unbounded store: staging charges the books, consumption via Get
	// uncharges the staged bytes (the decoded entry is charged anew).
	s := NewWithBackend(b)
	if got := s.Prefetch(keys); got != n {
		t.Fatalf("staged %d, want %d", got, n)
	}
	st := s.Stats()
	if st.ResidentEntries != n || st.ResidentBytes == 0 {
		t.Fatalf("staged prefetch bytes not charged: %+v", st)
	}
	b.mu.Lock()
	gets := b.gets
	b.mu.Unlock()
	for i := 0; i < n; i++ {
		v, err := Get(s, keys[i], func() (memVal, error) {
			t.Fatalf("prefetched key %d recomputed", i)
			return memVal{}, nil
		})
		if err != nil || v != mkVal(i) {
			t.Fatalf("prefetched key %d: %v %v", i, v, err)
		}
	}
	b.mu.Lock()
	getsAfter := b.gets
	b.mu.Unlock()
	if getsAfter != gets {
		t.Fatal("prefetched keys should not re-read the backend per key")
	}
	if rem := s.Stats(); rem.ResidentEntries != n {
		t.Fatalf("after consuming %d staged entries want %d residents (the decoded entries), got %+v", n, n, rem)
	}

	// Bounded store: a quota smaller than the staged total evicts
	// staged bytes like anything else, and evicted stages fall back to
	// per-key backend reads — values stay correct.
	s2 := NewWithBackend(b)
	s2.Prefetch(keys[:1])
	per := s2.Stats().ResidentBytes
	s2 = NewWithBackend(b)
	s2.SetMemQuota(MemQuota{MaxBytes: 4*per + per/2})
	s2.Prefetch(keys)
	st2 := s2.Stats()
	if st2.ResidentBytes > 4*per+per/2 {
		t.Fatalf("staged bytes exceed quota: %+v", st2)
	}
	if st2.Evictions == 0 {
		t.Fatalf("staging %d entries into a ~4-entry quota evicted nothing: %+v", n, st2)
	}
	for i := 0; i < n; i++ {
		v, err := Get(s2, keys[i], func() (memVal, error) {
			t.Fatalf("key %d recomputed despite backend copy", i)
			return memVal{}, nil
		})
		if err != nil || v != mkVal(i) {
			t.Fatalf("key %d after staged eviction: %v %v", i, v, err)
		}
	}
}

// TestEvictionByteInvisible is the differential proof the issue asks
// for: a quota-bounded store must serve exactly the bytes an unbounded
// store serves, for every key, whether the bounded store answers from
// memory, from the shared backend, or by recomputation after an
// eviction.
func TestEvictionByteInvisible(t *testing.T) {
	dir := t.TempDir()
	backend, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	unbounded := NewWithBackend(backend)
	bounded := NewWithBackend(backend)

	const n = 48
	compute := func(i int) func() (memVal, error) {
		return func() (memVal, error) { return mkVal(i), nil }
	}
	want := make([]memVal, n)
	for i := 0; i < n; i++ {
		want[i], err = Get(unbounded, memKey("diff", i), compute(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	per := func() int64 {
		probe := New()
		Get(probe, memKey("diff", 0), compute(0))
		return probe.Stats().ResidentBytes
	}()
	bounded.SetMemQuota(MemQuota{MaxBytes: 6 * per})

	// Walk the keyspace in a fixed pseudo-random order, several laps,
	// so most reads hit keys the quota has since evicted.
	idx := 0
	for lap := 0; lap < 4; lap++ {
		for j := 0; j < n; j++ {
			idx = (idx*131 + 17) % n
			got, err := Get(bounded, memKey("diff", idx), compute(idx))
			if err != nil {
				t.Fatal(err)
			}
			if got != want[idx] {
				t.Fatalf("lap %d key %d: bounded store served %+v, unbounded %+v", lap, idx, got, want[idx])
			}
		}
	}
	st := bounded.Stats()
	if st.Evictions == 0 {
		t.Fatalf("differential walk never evicted — quota too loose to prove anything: %+v", st)
	}

	// Memory-only variant: no backend, every evicted key recomputes.
	memOnly := New()
	memOnly.SetMemQuota(MemQuota{MaxBytes: 6 * per})
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < n; i++ {
			got, err := GetMem(memOnly, memKey("diff", i), compute(i))
			if err != nil || got != want[i] {
				t.Fatalf("mem-only lap %d key %d: %+v %v, want %+v", lap, i, got, err, want[i])
			}
		}
	}
	if memOnly.Stats().Evictions == 0 {
		t.Fatal("mem-only differential walk never evicted")
	}
}

// TestInFlightFillSurvivesEvictionPressure holds a fill open while a
// flood evicts everything around it: the in-flight fill must complete
// exactly once and its waiters must observe the computed value — an
// in-flight fill has no LRU node and cannot be evicted.
func TestInFlightFillSurvivesEvictionPressure(t *testing.T) {
	s := New()
	per := fillKind(t, s, "flood", 1)
	s.SetMemQuota(MemQuota{MaxBytes: 3 * per})

	block := make(chan struct{})
	var computes atomic.Int64
	slowKey := KeyOf("slow", cfg{Name: "held", N: 1})
	var wg sync.WaitGroup
	results := make([]memVal, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := GetMem(s, slowKey, func() (memVal, error) {
				computes.Add(1)
				<-block
				return mkVal(999), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", w, err)
			}
			results[w] = v
		}(w)
	}
	// Let the fill start, then flood hard enough to cycle the whole
	// quota several times over.
	time.Sleep(10 * time.Millisecond)
	fillKind(t, s, "flood", 32)
	close(block)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("in-flight fill ran %d times under eviction pressure", got)
	}
	for w, v := range results {
		if v != mkVal(999) {
			t.Fatalf("waiter %d observed %+v", w, v)
		}
	}
}

func TestCancelledFillNotCachedUnderQuota(t *testing.T) {
	s := New()
	s.SetMemQuota(MemQuota{MaxBytes: 1 << 20})
	key := KeyOf("cancel", cfg{Name: "c", N: 1})
	if _, err := GetMem(s, key, func() (memVal, error) {
		return memVal{}, context.Canceled
	}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := s.Stats()
	if st.ResidentEntries != 0 {
		t.Fatalf("cancelled fill was charged as a resident: %+v", st)
	}
	v, err := GetMem(s, key, func() (memVal, error) { return mkVal(7), nil })
	if err != nil || v != mkVal(7) {
		t.Fatalf("retry after cancellation: %v %v", v, err)
	}
}

// TestEvictionRaceHammer runs Get, Peek, Prefetch, cancelled fills and
// quota sweeps concurrently over an overlapping keyspace sized well
// past the quota, with -race watching. Every read must observe the
// deterministic value of its key.
func TestEvictionRaceHammer(t *testing.T) {
	b := newBulkBackend()
	seed := NewWithBackend(b)
	const keyspace = 64
	keys := make([]Key, keyspace)
	for i := 0; i < keyspace; i++ {
		keys[i] = memKey("hammer", i)
		i := i
		Get(seed, keys[i], func() (memVal, error) { return mkVal(i), nil })
	}
	per := func() int64 {
		probe := New()
		Get(probe, keys[0], func() (memVal, error) { return mkVal(0), nil })
		return probe.Stats().ResidentBytes
	}()

	s := NewWithBackend(b)
	s.SetMemQuota(MemQuota{MaxBytes: (keyspace / 4) * per})

	const workers = 12
	iters := 400
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(w*2654435761 + 1)
			next := func() int {
				rng = rng*1664525 + 1013904223
				return int(rng>>8) % keyspace
			}
			for it := 0; it < iters; it++ {
				i := next()
				switch w % 4 {
				case 0: // getter
					v, err := Get(s, keys[i], func() (memVal, error) { return mkVal(i), nil })
					if err != nil || v != mkVal(i) {
						t.Errorf("get %d: %+v %v", i, v, err)
						return
					}
				case 1: // peeker
					if v, ok := Peek[memVal](s, keys[i], nil); ok && v != mkVal(i) {
						t.Errorf("peek %d observed %+v", i, v)
						return
					}
				case 2: // prefetcher / canceller
					if it%8 == 0 {
						s.Prefetch(keys[i : i+min(4, keyspace-i)])
					} else {
						k := KeyOf("hammer-miss", cfg{Name: "m", N: i*workers + w})
						if _, err := GetMem(s, k, func() (memVal, error) {
							return memVal{}, context.Canceled
						}); err != context.Canceled && err != nil {
							t.Errorf("cancel fill %d: %v", i, err)
							return
						}
					}
				case 3: // sweeper
					if it%16 == 0 {
						s.SweepMem()
					} else {
						v, err := Get(s, keys[i], func() (memVal, error) { return mkVal(i), nil })
						if err != nil || v != mkVal(i) {
							t.Errorf("get %d: %+v %v", i, v, err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("hammer never evicted — quota too loose to exercise the races: %+v", st)
	}
	if q := s.MemQuota(); st.ResidentBytes > q.MaxBytes {
		t.Fatalf("resident %d exceeds quota %d after hammer", st.ResidentBytes, q.MaxBytes)
	}
}

// TestSoakBoundedMemory streams a large keyspace of distinct
// scenario-render-sized artefacts through a quota-bounded store — the
// long-lived daemon's leak scenario — and asserts the process heap
// plateaus instead of growing with the keyspace, that the quota
// actually evicted, and that re-served keys are byte-identical.
func TestSoakBoundedMemory(t *testing.T) {
	keyspace := soakKeys
	if testing.Short() {
		keyspace = soakKeys / 20
	}
	s := New()
	s.SetMemQuota(MemQuota{MaxBytes: 8 << 20})

	heapAfter := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	compute := func(i int) func() (memVal, error) {
		return func() (memVal, error) { return mkVal(i), nil }
	}
	key := func(i int) Key {
		return KeyOf("scenario-render", cfg{Name: fmt.Sprintf("soak%09d", i), N: i})
	}

	// Warm 1/4 of the way in, then sample the heap at intervals: under
	// a working quota the later samples stay near the warm baseline no
	// matter how many more distinct keys stream through.
	checkpoints := 4
	perCheck := keyspace / checkpoints
	var baseline uint64
	for c := 0; c < checkpoints; c++ {
		for i := c * perCheck; i < (c+1)*perCheck; i++ {
			v, err := GetMem(s, key(i), compute(i))
			if err != nil || v != mkVal(i) {
				t.Fatalf("soak key %d: %+v %v", i, v, err)
			}
		}
		h := heapAfter()
		if c == 0 {
			baseline = h
			continue
		}
		// Allow generous slack (2x + 16MB) over the first checkpoint:
		// the assertion is "flat", not "exact" — an unbounded store
		// grows ~linearly and blows far past this.
		if limit := 2*baseline + (16 << 20); h > limit {
			t.Fatalf("heap grew with the keyspace: checkpoint %d heap %dMB, baseline %dMB (limit %dMB) — quota not holding",
				c, h>>20, baseline>>20, limit>>20)
		}
	}

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("soak never evicted: %+v", st)
	}
	if st.ResidentBytes > 8<<20 {
		t.Fatalf("soak resident %d exceeds quota", st.ResidentBytes)
	}
	// Sampled re-gets: evicted keys recompute to identical values.
	for i := 0; i < keyspace; i += keyspace / 16 {
		v, err := GetMem(s, key(i), compute(i))
		if err != nil || v != mkVal(i) {
			t.Fatalf("soak re-get %d: %+v %v", i, v, err)
		}
	}
	t.Logf("soak: %d keys through an 8MB quota: %d evictions, %dMB evicted, %d resident entries (%dKB)",
		keyspace, st.Evictions, st.EvictedBytes>>20, st.ResidentEntries, st.ResidentBytes>>10)
}
