// Wire-transport helpers shared by both ends of the artifact network
// tier (internal/artifact/httpstore and internal/artifact/artifactd).
// The size bound and the gzip plumbing are protocol invariants — one
// definition here keeps the two ends from desynchronizing.

package artifact

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// MaxWireEntryBytes caps any entry crossing the network tier, raw or
// expanded from gzip — an order of magnitude above the largest real
// artefact (dataset contents, a few MB). One uniform cap keeps the
// protocol coherent (anything storable is also servable) and bounds
// what a gzip bomb can make either end allocate: kilobytes of wire
// can never buy a gigabyte of memory.
const MaxWireEntryBytes = 64 << 20

// MaxClosureIDs caps one closure request — generous against the real
// primer closures (a full paper run is a few hundred artefacts) while
// bounding what one request can make a server read and send.
const MaxClosureIDs = 4096

// MaxWireClosureBytes caps one closure response body (raw or expanded
// from gzip): the aggregate analogue of MaxWireEntryBytes. Servers
// stop packing entries at this bound (the rest fall back to per-key
// reads, still correct) and clients refuse bodies beyond it, so the
// protocol never lets 4096 maximum-size entries force a multi-GB
// allocation on either end.
const MaxWireClosureBytes = 256 << 20

// ClosureEntry is one (id, encoded entry) pair of a bulk closure
// download. Data is the same self-describing encoded Entry a single
// GET serves; receivers verify each entry exactly as they would a
// per-key download.
type ClosureEntry struct {
	ID   string
	Data []byte
}

// EncodeClosure serializes a closure response body (gob — the same
// codec as the entries themselves). Entries keep the encoder's order;
// servers answer in request order so responses are deterministic.
func EncodeClosure(entries []ClosureEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("artifact: encode closure: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeClosure parses a closure response body, rejecting oversized
// individual entries (each is bounded by MaxWireEntryBytes like any
// single download).
func DecodeClosure(b []byte) ([]ClosureEntry, error) {
	var entries []ClosureEntry
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("artifact: decode closure: %w", err)
	}
	if len(entries) > MaxClosureIDs {
		return nil, fmt.Errorf("artifact: closure of %d entries exceeds %d", len(entries), MaxClosureIDs)
	}
	for _, e := range entries {
		if len(e.Data) > MaxWireEntryBytes {
			return nil, fmt.Errorf("artifact: closure entry %s exceeds %d bytes", e.ID, MaxWireEntryBytes)
		}
	}
	return entries, nil
}

// gzWriters recycles gzip writers; gzip.NewWriter allocates large
// internal buffers, and cold runs publish (and servers re-serve)
// hundreds of entries.
var gzWriters = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// GzipBytes returns b gzip-compressed.
func GzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzWriters.Get().(*gzip.Writer)
	zw.Reset(&buf)
	zw.Write(b)
	zw.Close()
	gzWriters.Put(zw)
	return buf.Bytes()
}

// GunzipBytes expands a gzip body, refusing malformed input and
// expansions beyond MaxWireEntryBytes.
func GunzipBytes(zb []byte) ([]byte, error) {
	return GunzipBytesMax(zb, MaxWireEntryBytes)
}

// GunzipBytesMax is GunzipBytes with an explicit expansion bound —
// closure bodies aggregate many entries and are bounded by
// MaxWireClosureBytes instead of the single-entry cap.
func GunzipBytesMax(zb []byte, max int) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(zb))
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(io.LimitReader(zr, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if len(b) > max {
		return nil, fmt.Errorf("artifact: gzip body expands past %d bytes", max)
	}
	return b, nil
}
