// Wire-transport helpers shared by both ends of the artifact network
// tier (internal/artifact/httpstore and internal/artifact/artifactd).
// The size bound and the gzip plumbing are protocol invariants — one
// definition here keeps the two ends from desynchronizing.

package artifact

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

// MaxWireEntryBytes caps any entry crossing the network tier, raw or
// expanded from gzip — an order of magnitude above the largest real
// artefact (dataset contents, a few MB). One uniform cap keeps the
// protocol coherent (anything storable is also servable) and bounds
// what a gzip bomb can make either end allocate: kilobytes of wire
// can never buy a gigabyte of memory.
const MaxWireEntryBytes = 64 << 20

// gzWriters recycles gzip writers; gzip.NewWriter allocates large
// internal buffers, and cold runs publish (and servers re-serve)
// hundreds of entries.
var gzWriters = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// GzipBytes returns b gzip-compressed.
func GzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzWriters.Get().(*gzip.Writer)
	zw.Reset(&buf)
	zw.Write(b)
	zw.Close()
	gzWriters.Put(zw)
	return buf.Bytes()
}

// GunzipBytes expands a gzip body, refusing malformed input and
// expansions beyond MaxWireEntryBytes.
func GunzipBytes(zb []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(zb))
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(io.LimitReader(zr, MaxWireEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if len(b) > MaxWireEntryBytes {
		return nil, fmt.Errorf("artifact: gzip body expands past %d bytes", MaxWireEntryBytes)
	}
	return b, nil
}
