// Package httpstore is the artifact store's network backend: an
// artifact.Backend that reads and publishes encoded entries against a
// cmd/artifactd server, so shards on different machines share one
// cache and merge to byte-identical output.
//
// Wire protocol (see also internal/artifact/artifactd):
//
//	GET  {base}/artifact/{id}  -> 200 + encoded entry | 404 miss
//	HEAD {base}/artifact/{id}  -> 200 | 404
//	PUT  {base}/artifact/{id}  <- encoded entry; 204, or 400 if the
//	                              entry's recorded identity does not
//	                              hash to {id}
//
// Entries stay in the store's self-describing envelope
// (artifact.Entry), so identity is verified on both ends: the server
// rejects mislabelled uploads and re-verifies on read, and the client
// store verifies every downloaded entry against the key it asked for
// before trusting the payload. A corrupted or mislabelled entry —
// wherever it came from — costs a recomputation, never correctness.
//
// Every operation is best-effort: an unreachable or failing server
// degrades the store to compute-everything, it never breaks a run.
//
// Resilience: every operation runs under a retry.Policy (transient
// transport errors, 5xx answers and truncated bodies are retried with
// capped exponential backoff; 404s and auth/validation rejections are
// not), and a client-level circuit breaker tracks consecutive
// transport-level failures — a down backend trips it open, after
// which operations return instant misses (no dials, no buffering)
// until a half-open probe finds the server again. The breaker state
// is the store's degraded signal (Health), surfaced by reprod as
// store_degraded/readyz.
package httpstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/retry"
)

// TokenEnv is the environment variable New reads the default bearer
// token from, so every CLI pointed at an authenticated artifactd works
// without repeating -store-token.
const TokenEnv = "REPRO_STORE_TOKEN"

// maxEntryBytes caps a downloaded entry, raw or expanded from gzip
// (artifact.MaxWireEntryBytes — shared with the server, so anything
// it can store this client can load, and a hostile or broken server
// cannot turn a small wire body into a huge allocation here).
const maxEntryBytes = artifact.MaxWireEntryBytes

// Client is an artifact.Backend over an artifactd server.
type Client struct {
	base string
	// HTTP is the underlying client; replaceable before first use
	// (tests inject httptest clients, deployments tune timeouts).
	// There is deliberately no whole-request timeout: connection
	// establishment is bounded per phase by the shared transport
	// (DialTimeout, ResponseHeaderTimeout), so a long bulk fetch
	// streaming real bytes never races a wall clock.
	HTTP *http.Client
	// Token, when non-empty, is sent as "Authorization: Bearer" on
	// every request — required by artifactd servers started with
	// -token. New initializes it from $REPRO_STORE_TOKEN; set it
	// before first use to override.
	Token string
	// Retry bounds per-operation retries; replaceable before first
	// use. The zero policy means retry.DefaultPolicy.
	Retry retry.Policy
	// Breaker is the client-level circuit breaker fed by
	// transport-level failures. Replaceable before first use (tests
	// shorten the cooldown); nil disables breaking.
	Breaker *retry.Breaker

	gets, hits, puts, errs atomic.Int64
	bulkGets, bulkEntries  atomic.Int64
	retries, skipped       atomic.Int64
}

// Per-phase connection timeouts on the shared transport. They replace
// the old 60s whole-request cap: an unreachable server fails at dial
// or first-byte time, while an entry that genuinely streams for
// minutes is never cut off mid-body.
const (
	DialTimeout           = 5 * time.Second
	ResponseHeaderTimeout = 30 * time.Second
)

// New returns a backend talking to the artifactd server at baseURL
// (e.g. "http://cachehost:9444"), authenticating with
// $REPRO_STORE_TOKEN when set.
func New(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httpstore: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpstore: unsupported store URL %q (want http:// or https://)", baseURL)
	}
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Transport: SharedTransport()},
		Token:   os.Getenv(TokenEnv),
		Breaker: &retry.Breaker{},
	}, nil
}

// sharedTransport is the one connection pool every Client — and
// reprod's fleet proxy — rides on. http.DefaultTransport keeps only 2
// idle connections per host, which under a request flood (a reprod
// fleet hammering one artifactd, replicas proxying to one home peer)
// degenerates into a dial per request; this pool keeps enough per-peer
// keep-alives for a whole coalescing stampede to reuse warm
// connections.
var sharedTransport = func() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		t = &http.Transport{}
	}
	t = t.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.DialContext = (&net.Dialer{Timeout: DialTimeout, KeepAlive: 30 * time.Second}).DialContext
	t.ResponseHeaderTimeout = ResponseHeaderTimeout
	return t
}()

// SharedTransport returns the process-wide pooled transport shared by
// every httpstore Client and any other intra-fleet HTTP traffic (the
// reprod proxy), so per-peer connections are reused rather than
// redialed per request.
func SharedTransport() *http.Transport { return sharedTransport }

// URL returns the artefact endpoint for id.
func (c *Client) URL(id string) string { return c.base + "/artifact/" + id }

// Error classification for the retry policy: transport errors and
// mangled bodies may heal (retry), 5xx answers are the server's own
// transient failures (retry), everything the server said on purpose —
// 404 miss, 401/403 auth, 400 validation — is permanent.
var (
	errNotFound = errors.New("httpstore: not found")
	errNoBulk   = errors.New("httpstore: server has no closure endpoint")
)

// transportError marks failures where no HTTP response arrived at
// all — the only kind that feeds the circuit breaker.
type transportError struct{ err error }

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

// statusError is a non-2xx answer that isn't one of the expected
// protocol outcomes.
type statusError struct{ code int }

func (e statusError) Error() string { return fmt.Sprintf("httpstore: server answered %d", e.code) }

// errVersionSkew marks a 400 on a gzip PUT: a server predating gzip
// transport gob-decodes the compressed body, fails, and rejects — the
// retried attempt re-publishes raw, keeping mixed-version deployments
// working (against a current server a valid entry never 400s).
var errVersionSkew = errors.New("httpstore: gzip rejected, retrying raw")

func retryableErr(err error) bool {
	var s statusError
	if errors.As(err, &s) {
		return s.code/100 == 5 || s.code == http.StatusTooManyRequests
	}
	if errors.Is(err, errNotFound) || errors.Is(err, errNoBulk) {
		return false
	}
	return true
}

// policy returns the effective retry policy with the classifier
// attached.
func (c *Client) policy() retry.Policy {
	p := c.Retry
	if p.MaxAttempts == 0 && p.BaseDelay == 0 {
		p = retry.DefaultPolicy()
	}
	if p.Retryable == nil {
		p.Retryable = retryableErr
	}
	return p
}

// allow consults the breaker before an operation touches the network;
// a denied operation is an instant miss.
func (c *Client) allow() bool {
	if c.Breaker == nil {
		return true
	}
	if c.Breaker.Allow() {
		return true
	}
	c.skipped.Add(1)
	return false
}

// observe feeds the operation's final outcome to the breaker: only
// transport-level failures (no HTTP response at all) count against
// the server; any answer — a hit, a 404 miss, even a rejection —
// proves it reachable.
func (c *Client) observe(err error) {
	if c.Breaker == nil {
		return
	}
	var te transportError
	if err != nil && errors.As(err, &te) {
		c.Breaker.Failure()
		return
	}
	c.Breaker.Success()
}

// do runs op under the retry policy, counting retried attempts.
func (c *Client) do(op func() error) error {
	err := c.policy().Do(context.Background(), func(n int) error {
		if n > 0 {
			c.retries.Add(1)
		}
		return op()
	})
	c.observe(err)
	return err
}

// Get fetches id's encoded entry, advertising gzip transport (the
// server compresses gob entries several-fold on the wire; the raw
// entry is restored here before the store verifies it). Transient
// failures are retried; any final failure — network, non-200,
// oversized or corrupt body — is a miss and the caller recomputes.
func (c *Client) Get(id string) ([]byte, bool) {
	c.gets.Add(1)
	if !c.allow() {
		return nil, false
	}
	var out []byte
	err := c.do(func() error {
		b, err := c.getOnce(id)
		if err != nil {
			return err
		}
		out = b
		return nil
	})
	switch {
	case err == nil:
		c.hits.Add(1)
		return out, true
	case errors.Is(err, errNotFound):
		return nil, false
	default:
		c.errs.Add(1)
		return nil, false
	}
}

// getOnce performs one GET attempt.
func (c *Client) getOnce(id string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.URL(id), nil)
	if err != nil {
		return nil, retry.Permanent(err)
	}
	// Set explicitly (disabling the transport's hidden auto-gzip) so
	// the encoding is part of the wire protocol and testable.
	req.Header.Set("Accept-Encoding", "gzip")
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, transportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		if resp.StatusCode == http.StatusNotFound {
			return nil, errNotFound
		}
		return nil, statusError{resp.StatusCode}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return nil, fmt.Errorf("httpstore: read body: %w", err)
	}
	if len(b) > maxEntryBytes {
		return nil, retry.Permanent(fmt.Errorf("httpstore: entry exceeds %d bytes", maxEntryBytes))
	}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		if b, err = artifact.GunzipBytes(b); err != nil {
			return nil, fmt.Errorf("httpstore: gunzip: %w", err)
		}
	}
	return b, nil
}

// Put publishes id's encoded entry gzip-compressed, best-effort, with
// transient failures retried. The historical version-skew raw retry
// is folded into the policy: a 400 on the gzip attempt switches the
// next attempt to a raw body (see errVersionSkew).
func (c *Client) Put(id string, data []byte) {
	if !c.allow() {
		return
	}
	body, encoding := artifact.GzipBytes(data), "gzip"
	err := c.do(func() error {
		status, err := c.put(id, body, encoding)
		if err != nil {
			return transportError{err}
		}
		if status/100 == 2 {
			return nil
		}
		if status == http.StatusBadRequest && encoding == "gzip" {
			body, encoding = data, ""
			return errVersionSkew
		}
		return statusError{code: status}
	})
	if err != nil {
		c.errs.Add(1)
		return
	}
	c.puts.Add(1)
}

// put performs one PUT attempt and returns the HTTP status.
func (c *Client) put(id string, body []byte, encoding string) (int, error) {
	req, err := http.NewRequest(http.MethodPut, c.URL(id), bytes.NewReader(body))
	if err != nil {
		return 0, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// FetchAll implements artifact.BulkFetcher: one POST /closure round
// trip downloads every named entry the server has, instead of a GET
// per id. Like every other operation it is best-effort — a server
// without the endpoint (404/405 from older artifactd versions), a
// network failure or a corrupt body all degrade to an empty result and
// the store falls back to per-key reads. Each returned entry is still
// verified by the store before use.
func (c *Client) FetchAll(ids []string) map[string][]byte {
	if len(ids) == 0 || len(ids) > artifact.MaxClosureIDs {
		return nil
	}
	c.bulkGets.Add(1)
	if !c.allow() {
		return nil
	}
	var out map[string][]byte
	err := c.do(func() error {
		m, err := c.fetchAllOnce(ids)
		if err != nil {
			return err
		}
		out = m
		return nil
	})
	if err != nil {
		if !errors.Is(err, errNoBulk) {
			c.errs.Add(1)
		}
		return nil
	}
	c.bulkEntries.Add(int64(len(out)))
	return out
}

// fetchAllOnce performs one closure round trip.
func (c *Client) fetchAllOnce(ids []string) (map[string][]byte, error) {
	body, err := json.Marshal(struct {
		IDs []string `json:"ids"`
	}{IDs: ids})
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/closure", bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, transportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		// Older artifactd versions have no closure endpoint; the store
		// falls back to per-key reads.
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			return nil, errNoBulk
		}
		return nil, statusError{resp.StatusCode}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, artifact.MaxWireClosureBytes+1))
	if err != nil {
		return nil, fmt.Errorf("httpstore: read closure: %w", err)
	}
	if len(b) > artifact.MaxWireClosureBytes {
		return nil, retry.Permanent(fmt.Errorf("httpstore: closure exceeds %d bytes", artifact.MaxWireClosureBytes))
	}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		if b, err = artifact.GunzipBytesMax(b, artifact.MaxWireClosureBytes); err != nil {
			return nil, fmt.Errorf("httpstore: gunzip closure: %w", err)
		}
	}
	entries, err := artifact.DecodeClosure(b)
	if err != nil {
		return nil, fmt.Errorf("httpstore: decode closure: %w", err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		out[e.ID] = e.Data
	}
	return out, nil
}

// auth attaches the bearer token when one is configured.
func (c *Client) auth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// Stats is a snapshot of the client's activity counters.
type Stats struct {
	// Gets counts lookups issued; Hits the ones answered 200.
	Gets, Hits int64
	// Puts counts successful publishes.
	Puts int64
	// Errors counts failed operations (network errors, unexpected
	// statuses, oversized bodies) — all degraded to miss/drop.
	Errors int64
	// BulkGets counts closure round trips issued; BulkEntries totals
	// the entries they returned (each replacing one per-key Get).
	BulkGets, BulkEntries int64
	// Retries counts extra attempts beyond each operation's first;
	// Skipped counts operations short-circuited to a miss because the
	// breaker was open.
	Retries, Skipped int64
}

// Stats returns the current counter snapshot.
func (c *Client) Stats() Stats {
	return Stats{
		Gets: c.gets.Load(), Hits: c.hits.Load(), Puts: c.puts.Load(), Errors: c.errs.Load(),
		BulkGets: c.bulkGets.Load(), BulkEntries: c.bulkEntries.Load(),
		Retries: c.retries.Load(), Skipped: c.skipped.Load(),
	}
}

// Degraded reports whether the breaker currently considers the
// backend unreachable.
func (c *Client) Degraded() bool {
	return c.Breaker != nil && c.Breaker.State() != retry.Closed
}

// Health implements artifact.HealthReporter: the breaker state plus
// the resilience counters, aggregated by Store.Health across chained
// tiers and surfaced by reprod as store_degraded / reprod_retries.
func (c *Client) Health() artifact.Health {
	h := artifact.Health{
		Degraded: c.Degraded(),
		Retries:  c.retries.Load(),
		Skipped:  c.skipped.Load(),
	}
	if c.Breaker != nil {
		bc := c.Breaker.Counters()
		h.BreakerTrips, h.BreakerProbes, h.BreakerRecoveries = bc.Trips, bc.Probes, bc.Recoveries
	}
	return h
}

// OpenStore builds the store behind the CLIs' -cache-dir/-store-url
// flags: a local disk tier under cacheDir (when non-empty) chained in
// front of an artifactd client at serverURL (when non-empty) — reads
// hit the local tier first and remote hits are promoted into it, while
// fresh fills publish to both. At least one of the two must be set.
// token authenticates against a -token'd artifactd; empty keeps the
// client's default ($REPRO_STORE_TOKEN, or unauthenticated).
func OpenStore(cacheDir, serverURL, token string) (*artifact.Store, error) {
	var tiers []artifact.Backend
	if cacheDir != "" {
		disk, err := artifact.NewDiskBackend(cacheDir)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, disk)
	}
	if serverURL != "" {
		remote, err := New(serverURL)
		if err != nil {
			return nil, err
		}
		if token != "" {
			remote.Token = token
		}
		tiers = append(tiers, remote)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("httpstore: OpenStore needs a cache dir or a store URL")
	}
	return artifact.NewWithBackend(artifact.Chain(tiers...)), nil
}
