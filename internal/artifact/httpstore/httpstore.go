// Package httpstore is the artifact store's network backend: an
// artifact.Backend that reads and publishes encoded entries against a
// cmd/artifactd server, so shards on different machines share one
// cache and merge to byte-identical output.
//
// Wire protocol (see also internal/artifact/artifactd):
//
//	GET  {base}/artifact/{id}  -> 200 + encoded entry | 404 miss
//	HEAD {base}/artifact/{id}  -> 200 | 404
//	PUT  {base}/artifact/{id}  <- encoded entry; 204, or 400 if the
//	                              entry's recorded identity does not
//	                              hash to {id}
//
// Entries stay in the store's self-describing envelope
// (artifact.Entry), so identity is verified on both ends: the server
// rejects mislabelled uploads and re-verifies on read, and the client
// store verifies every downloaded entry against the key it asked for
// before trusting the payload. A corrupted or mislabelled entry —
// wherever it came from — costs a recomputation, never correctness.
//
// Every operation is best-effort: an unreachable or failing server
// degrades the store to compute-everything, it never breaks a run.
package httpstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
)

// TokenEnv is the environment variable New reads the default bearer
// token from, so every CLI pointed at an authenticated artifactd works
// without repeating -store-token.
const TokenEnv = "REPRO_STORE_TOKEN"

// maxEntryBytes caps a downloaded entry, raw or expanded from gzip
// (artifact.MaxWireEntryBytes — shared with the server, so anything
// it can store this client can load, and a hostile or broken server
// cannot turn a small wire body into a huge allocation here).
const maxEntryBytes = artifact.MaxWireEntryBytes

// Client is an artifact.Backend over an artifactd server.
type Client struct {
	base string
	// HTTP is the underlying client; replaceable before first use
	// (tests inject httptest clients, deployments tune timeouts).
	HTTP *http.Client
	// Token, when non-empty, is sent as "Authorization: Bearer" on
	// every request — required by artifactd servers started with
	// -token. New initializes it from $REPRO_STORE_TOKEN; set it
	// before first use to override.
	Token string

	gets, hits, puts, errs atomic.Int64
	bulkGets, bulkEntries  atomic.Int64
}

// New returns a backend talking to the artifactd server at baseURL
// (e.g. "http://cachehost:9444"), authenticating with
// $REPRO_STORE_TOKEN when set.
func New(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httpstore: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpstore: unsupported store URL %q (want http:// or https://)", baseURL)
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		HTTP:  &http.Client{Timeout: 60 * time.Second, Transport: SharedTransport()},
		Token: os.Getenv(TokenEnv),
	}, nil
}

// sharedTransport is the one connection pool every Client — and
// reprod's fleet proxy — rides on. http.DefaultTransport keeps only 2
// idle connections per host, which under a request flood (a reprod
// fleet hammering one artifactd, replicas proxying to one home peer)
// degenerates into a dial per request; this pool keeps enough per-peer
// keep-alives for a whole coalescing stampede to reuse warm
// connections.
var sharedTransport = func() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		t = &http.Transport{}
	}
	t = t.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	return t
}()

// SharedTransport returns the process-wide pooled transport shared by
// every httpstore Client and any other intra-fleet HTTP traffic (the
// reprod proxy), so per-peer connections are reused rather than
// redialed per request.
func SharedTransport() *http.Transport { return sharedTransport }

// URL returns the artefact endpoint for id.
func (c *Client) URL(id string) string { return c.base + "/artifact/" + id }

// Get fetches id's encoded entry, advertising gzip transport (the
// server compresses gob entries several-fold on the wire; the raw
// entry is restored here before the store verifies it). Any failure —
// network, non-200, oversized or corrupt body — is a miss; the caller
// recomputes.
func (c *Client) Get(id string) ([]byte, bool) {
	c.gets.Add(1)
	req, err := http.NewRequest(http.MethodGet, c.URL(id), nil)
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	// Set explicitly (disabling the transport's hidden auto-gzip) so
	// the encoding is part of the wire protocol and testable.
	req.Header.Set("Accept-Encoding", "gzip")
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			c.errs.Add(1)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(b) > maxEntryBytes {
		c.errs.Add(1)
		return nil, false
	}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		if b, err = artifact.GunzipBytes(b); err != nil {
			c.errs.Add(1)
			return nil, false
		}
	}
	c.hits.Add(1)
	return b, true
}

// Put publishes id's encoded entry gzip-compressed, best-effort. A
// 400 answer to the compressed attempt triggers one raw retry: a
// server predating gzip transport gob-decodes the compressed body,
// fails, and rejects 400 — the retry keeps mixed-version deployments
// publishing (against a current server a valid entry never 400s, so
// the retry only fires on that version skew).
func (c *Client) Put(id string, data []byte) {
	status := c.put(id, artifact.GzipBytes(data), "gzip")
	if status == http.StatusBadRequest {
		status = c.put(id, data, "")
	}
	if status/100 != 2 {
		c.errs.Add(1)
		return
	}
	c.puts.Add(1)
}

// put performs one PUT attempt and returns the HTTP status (0 on a
// transport error).
func (c *Client) put(id string, body []byte, encoding string) int {
	req, err := http.NewRequest(http.MethodPut, c.URL(id), bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode
}

// FetchAll implements artifact.BulkFetcher: one POST /closure round
// trip downloads every named entry the server has, instead of a GET
// per id. Like every other operation it is best-effort — a server
// without the endpoint (404/405 from older artifactd versions), a
// network failure or a corrupt body all degrade to an empty result and
// the store falls back to per-key reads. Each returned entry is still
// verified by the store before use.
func (c *Client) FetchAll(ids []string) map[string][]byte {
	if len(ids) == 0 || len(ids) > artifact.MaxClosureIDs {
		return nil
	}
	c.bulkGets.Add(1)
	body, err := json.Marshal(struct {
		IDs []string `json:"ids"`
	}{IDs: ids})
	if err != nil {
		c.errs.Add(1)
		return nil
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/closure", bytes.NewReader(body))
	if err != nil {
		c.errs.Add(1)
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	c.auth(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.errs.Add(1)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusMethodNotAllowed {
			c.errs.Add(1)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		return nil
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, artifact.MaxWireClosureBytes+1))
	if err != nil || len(b) > artifact.MaxWireClosureBytes {
		c.errs.Add(1)
		return nil
	}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		if b, err = artifact.GunzipBytesMax(b, artifact.MaxWireClosureBytes); err != nil {
			c.errs.Add(1)
			return nil
		}
	}
	entries, err := artifact.DecodeClosure(b)
	if err != nil {
		c.errs.Add(1)
		return nil
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		out[e.ID] = e.Data
	}
	c.bulkEntries.Add(int64(len(out)))
	return out
}

// auth attaches the bearer token when one is configured.
func (c *Client) auth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// Stats is a snapshot of the client's activity counters.
type Stats struct {
	// Gets counts lookups issued; Hits the ones answered 200.
	Gets, Hits int64
	// Puts counts successful publishes.
	Puts int64
	// Errors counts failed operations (network errors, unexpected
	// statuses, oversized bodies) — all degraded to miss/drop.
	Errors int64
	// BulkGets counts closure round trips issued; BulkEntries totals
	// the entries they returned (each replacing one per-key Get).
	BulkGets, BulkEntries int64
}

// Stats returns the current counter snapshot.
func (c *Client) Stats() Stats {
	return Stats{
		Gets: c.gets.Load(), Hits: c.hits.Load(), Puts: c.puts.Load(), Errors: c.errs.Load(),
		BulkGets: c.bulkGets.Load(), BulkEntries: c.bulkEntries.Load(),
	}
}

// OpenStore builds the store behind the CLIs' -cache-dir/-store-url
// flags: a local disk tier under cacheDir (when non-empty) chained in
// front of an artifactd client at serverURL (when non-empty) — reads
// hit the local tier first and remote hits are promoted into it, while
// fresh fills publish to both. At least one of the two must be set.
// token authenticates against a -token'd artifactd; empty keeps the
// client's default ($REPRO_STORE_TOKEN, or unauthenticated).
func OpenStore(cacheDir, serverURL, token string) (*artifact.Store, error) {
	var tiers []artifact.Backend
	if cacheDir != "" {
		disk, err := artifact.NewDiskBackend(cacheDir)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, disk)
	}
	if serverURL != "" {
		remote, err := New(serverURL)
		if err != nil {
			return nil, err
		}
		if token != "" {
			remote.Token = token
		}
		tiers = append(tiers, remote)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("httpstore: OpenStore needs a cache dir or a store URL")
	}
	return artifact.NewWithBackend(artifact.Chain(tiers...)), nil
}
