// Package httpstore is the artifact store's network backend: an
// artifact.Backend that reads and publishes encoded entries against a
// cmd/artifactd server, so shards on different machines share one
// cache and merge to byte-identical output.
//
// Wire protocol (see also internal/artifact/artifactd):
//
//	GET  {base}/artifact/{id}  -> 200 + encoded entry | 404 miss
//	HEAD {base}/artifact/{id}  -> 200 | 404
//	PUT  {base}/artifact/{id}  <- encoded entry; 204, or 400 if the
//	                              entry's recorded identity does not
//	                              hash to {id}
//
// Entries stay in the store's self-describing envelope
// (artifact.Entry), so identity is verified on both ends: the server
// rejects mislabelled uploads and re-verifies on read, and the client
// store verifies every downloaded entry against the key it asked for
// before trusting the payload. A corrupted or mislabelled entry —
// wherever it came from — costs a recomputation, never correctness.
//
// Every operation is best-effort: an unreachable or failing server
// degrades the store to compute-everything, it never breaks a run.
package httpstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
)

// maxEntryBytes caps a downloaded entry. Far above any real artefact
// (the largest are dataset contents, a few MB); guards against a
// misbehaving server exhausting memory.
const maxEntryBytes = 1 << 30

// Client is an artifact.Backend over an artifactd server.
type Client struct {
	base string
	// HTTP is the underlying client; replaceable before first use
	// (tests inject httptest clients, deployments tune timeouts).
	HTTP *http.Client

	gets, hits, puts, errs atomic.Int64
}

// New returns a backend talking to the artifactd server at baseURL
// (e.g. "http://cachehost:9444").
func New(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httpstore: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("httpstore: unsupported store URL %q (want http:// or https://)", baseURL)
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		HTTP: &http.Client{Timeout: 60 * time.Second},
	}, nil
}

// URL returns the artefact endpoint for id.
func (c *Client) URL(id string) string { return c.base + "/artifact/" + id }

// Get fetches id's encoded entry. Any failure — network, non-200,
// oversized body — is a miss; the caller recomputes.
func (c *Client) Get(id string) ([]byte, bool) {
	c.gets.Add(1)
	resp, err := c.HTTP.Get(c.URL(id))
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			c.errs.Add(1)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(b) > maxEntryBytes {
		c.errs.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return b, true
}

// Put publishes id's encoded entry, best-effort.
func (c *Client) Put(id string, data []byte) {
	req, err := http.NewRequest(http.MethodPut, c.URL(id), bytes.NewReader(data))
	if err != nil {
		c.errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.errs.Add(1)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		c.errs.Add(1)
		return
	}
	c.puts.Add(1)
}

// Stats is a snapshot of the client's activity counters.
type Stats struct {
	// Gets counts lookups issued; Hits the ones answered 200.
	Gets, Hits int64
	// Puts counts successful publishes.
	Puts int64
	// Errors counts failed operations (network errors, unexpected
	// statuses, oversized bodies) — all degraded to miss/drop.
	Errors int64
}

// Stats returns the current counter snapshot.
func (c *Client) Stats() Stats {
	return Stats{Gets: c.gets.Load(), Hits: c.hits.Load(), Puts: c.puts.Load(), Errors: c.errs.Load()}
}

// OpenStore builds the store behind the CLIs' -cache-dir/-store-url
// flags: a local disk tier under cacheDir (when non-empty) chained in
// front of an artifactd client at serverURL (when non-empty) — reads
// hit the local tier first and remote hits are promoted into it, while
// fresh fills publish to both. At least one of the two must be set.
func OpenStore(cacheDir, serverURL string) (*artifact.Store, error) {
	var tiers []artifact.Backend
	if cacheDir != "" {
		disk, err := artifact.NewDiskBackend(cacheDir)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, disk)
	}
	if serverURL != "" {
		remote, err := New(serverURL)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, remote)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("httpstore: OpenStore needs a cache dir or a store URL")
	}
	return artifact.NewWithBackend(artifact.Chain(tiers...)), nil
}
