package httpstore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/retry"
)

// fastRetry is a test policy with no real sleeping.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{
		MaxAttempts: attempts,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

// flakyHandler fails the first n requests with status, then delegates.
func flakyHandler(n int64, status int, next http.Handler) (http.Handler, *atomic.Int64) {
	var served atomic.Int64
	var failed atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if failed.Add(1) <= n {
			http.Error(w, "transient", status)
			return
		}
		next.ServeHTTP(w, r)
	})
	return h, &served
}

func fillEntry(t *testing.T, b artifact.Backend, key artifact.Key, val string) {
	t.Helper()
	if _, err := artifact.Get(artifact.NewWithBackend(b), key, func() (string, error) {
		return val, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGetRetries5xx(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("retry-get", cfg{N: 1})
	fillEntry(t, client(t, ts.URL), key, "v")

	flaky, served := flakyHandler(2, http.StatusServiceUnavailable, srv.Handler())
	fts := httptest.NewServer(flaky)
	defer fts.Close()

	c := client(t, fts.URL)
	c.Retry = fastRetry(3)
	if _, ok := c.Get(key.ID()); !ok {
		t.Fatal("Get failed despite retry budget covering the 503s")
	}
	if got := served.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 503s + success)", got)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Errors != 0 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 2 retries, 0 errors, 1 hit", st)
	}
}

func TestGetDoesNotRetry404(t *testing.T) {
	srv, _ := startServer(t)
	var served atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		srv.Handler().ServeHTTP(w, r)
	})
	fts := httptest.NewServer(counting)
	defer fts.Close()

	c := client(t, fts.URL)
	c.Retry = fastRetry(3)
	if _, ok := c.Get(artifact.KeyOf("absent", cfg{N: 9}).ID()); ok {
		t.Fatal("miss reported as hit")
	}
	if served.Load() != 1 {
		t.Fatalf("404 retried: server saw %d requests", served.Load())
	}
	if st := c.Stats(); st.Errors != 0 || st.Retries != 0 {
		t.Fatalf("stats %+v, want clean miss", st)
	}
}

func TestPutRetriesTransportFaults(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("retry-put", cfg{N: 2})
	entry := encodeFor(t, key, "payload")

	// A transport that resets every connection until told otherwise.
	inj := faultinject.New(faultinject.Spec{Seed: 1, ErrProb: 1})
	c := client(t, ts.URL)
	c.Retry = fastRetry(5)
	c.HTTP = &http.Client{Transport: inj.Transport(http.DefaultTransport)}
	c.Put(key.ID(), entry)
	if st := c.Stats(); st.Puts != 0 || st.Errors != 1 || st.Retries != 4 {
		t.Fatalf("stats %+v, want 0 puts / 1 error / 4 retries against a 100%%-faulty transport", st)
	}

	// Clean transport: the same publish lands.
	c2 := client(t, ts.URL)
	c2.Retry = fastRetry(3)
	c2.Put(key.ID(), entry)
	if st := c2.Stats(); st.Puts != 1 || st.Errors != 0 {
		t.Fatalf("stats %+v, want clean put", st)
	}
	if ss := srv.Stats(); ss.Puts != 1 {
		t.Fatalf("server puts=%d, want 1", ss.Puts)
	}
}

func encodeFor(t *testing.T, key artifact.Key, payload string) []byte {
	t.Helper()
	// Route through a scratch store so the envelope matches what a
	// real fill would publish.
	scratch := &capturingBackend{}
	fillEntry(t, scratch, key, payload)
	if scratch.data == nil {
		t.Fatal("no entry captured")
	}
	return scratch.data
}

type capturingBackend struct{ data []byte }

func (b *capturingBackend) Get(string) ([]byte, bool) { return nil, false }
func (b *capturingBackend) Put(_ string, data []byte) { b.data = data }

func TestBreakerTripsAndShortCircuits(t *testing.T) {
	// Point at a dead address: every op is a transport failure.
	c, err := New("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = fastRetry(1)
	now := time.Unix(1000, 0)
	c.Breaker = &retry.Breaker{FailLimit: 3, Cooldown: 5 * time.Second, Now: func() time.Time { return now }}

	for i := 0; i < 3; i++ {
		if c.Degraded() {
			t.Fatalf("degraded after only %d failures", i)
		}
		c.Get("kind-0000000000000000")
	}
	if !c.Degraded() {
		t.Fatal("3 consecutive transport failures did not trip the breaker")
	}
	before := c.Stats()
	c.Get("kind-0000000000000000")
	c.Put("kind-0000000000000000", []byte("x"))
	c.FetchAll([]string{"kind-0000000000000000"})
	after := c.Stats()
	if after.Skipped-before.Skipped != 3 {
		t.Fatalf("skipped delta %d, want 3 (ops must not dial while open)", after.Skipped-before.Skipped)
	}
	if after.Errors != before.Errors {
		t.Fatalf("skipped ops counted as errors: %d → %d", before.Errors, after.Errors)
	}
	h := c.Health()
	if !h.Degraded || h.BreakerTrips != 1 || h.Skipped != 3 {
		t.Fatalf("health %+v, want degraded with 1 trip and 3 skipped", h)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("recover", cfg{N: 3})
	fillEntry(t, client(t, ts.URL), key, "v")

	// A handler that can be switched between dead and healthy.
	var down atomic.Bool
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			panic(http.ErrAbortHandler)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	gts := httptest.NewServer(gate)
	defer gts.Close()

	now := time.Unix(1000, 0)
	c := client(t, gts.URL)
	c.Retry = fastRetry(1)
	c.Breaker = &retry.Breaker{FailLimit: 2, Cooldown: time.Second, Now: func() time.Time { return now }}

	down.Store(true)
	c.Get(key.ID())
	c.Get(key.ID())
	if !c.Degraded() {
		t.Fatal("breaker did not trip")
	}

	// Server heals; before the cooldown the client must not notice.
	down.Store(false)
	if _, ok := c.Get(key.ID()); ok {
		t.Fatal("open breaker let a request through mid-cooldown")
	}

	// After the cooldown one probe goes through, succeeds, and closes
	// the breaker.
	now = now.Add(time.Second)
	if _, ok := c.Get(key.ID()); !ok {
		t.Fatal("half-open probe did not recover the entry")
	}
	if c.Degraded() {
		t.Fatal("successful probe left the client degraded")
	}
	h := c.Health()
	if h.BreakerTrips != 1 || h.BreakerProbes != 1 || h.BreakerRecoveries != 1 {
		t.Fatalf("health %+v, want 1 trip / 1 probe / 1 recovery", h)
	}
}

func TestStoreHealthAggregatesChain(t *testing.T) {
	dir := t.TempDir()
	disk, err := artifact.NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = fastRetry(1)
	c.Breaker = &retry.Breaker{FailLimit: 1}
	st := artifact.NewWithBackend(artifact.Chain(disk, c))
	if st.Health().Degraded {
		t.Fatal("fresh chain degraded")
	}
	c.Get("kind-0000000000000000")
	h := st.Health()
	if !h.Degraded || h.BreakerTrips != 1 {
		t.Fatalf("chain health %+v, want degraded after the HTTP tier tripped", h)
	}
}

// TestDegradedStoreStillServesMemoryAndComputes is the degraded-mode
// acceptance shape at store level: with the backend breaker open, a
// fill computes locally (no buffering, no dial) and warm re-reads
// come from the memory tier.
func TestDegradedStoreStillServesMemoryAndComputes(t *testing.T) {
	c, err := New("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = fastRetry(1)
	c.Breaker = &retry.Breaker{FailLimit: 1, Cooldown: time.Hour}
	st := artifact.NewWithBackend(c)

	key := artifact.KeyOf("degraded", cfg{N: 1})
	computes := 0
	got, err := artifact.Get(st, key, func() (string, error) { computes++; return "local", nil })
	if err != nil || got != "local" {
		t.Fatalf("degraded fill: %q err=%v", got, err)
	}
	if !st.Health().Degraded {
		t.Fatal("store not degraded after backend failure")
	}
	// Warm re-read: memory tier, no recompute, no backend traffic.
	gets := c.Stats().Gets
	got, err = artifact.Get(st, key, func() (string, error) { computes++; return "local", nil })
	if err != nil || got != "local" || computes != 1 {
		t.Fatalf("warm degraded read recomputed: computes=%d err=%v", computes, err)
	}
	if c.Stats().Gets != gets {
		t.Fatal("warm read touched the degraded backend")
	}
}

func TestSharedTransportPerPhaseTimeouts(t *testing.T) {
	tr := SharedTransport()
	if tr.ResponseHeaderTimeout != ResponseHeaderTimeout {
		t.Fatalf("ResponseHeaderTimeout=%v, want %v", tr.ResponseHeaderTimeout, ResponseHeaderTimeout)
	}
	c, err := New("http://example.invalid")
	if err != nil {
		t.Fatal(err)
	}
	if c.HTTP.Timeout != 0 {
		t.Fatalf("whole-request timeout %v still set; per-phase timeouts replace it", c.HTTP.Timeout)
	}
}
