package httpstore

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/artifact/artifactd"
)

type cfg struct {
	Name string
	N    int
}

// startServer spins one artifactd over a temp dir.
func startServer(t *testing.T) (*artifactd.Server, *httptest.Server) {
	t.Helper()
	srv, err := artifactd.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func client(t *testing.T, url string) *Client {
	t.Helper()
	c, err := New(url)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

type blob struct {
	Words []string
	Vals  []float64
}

// TestHTTPRoundTrip is the tier's core contract: a second store
// sharing only the server URL (a remote shard) loads the first
// store's fill without computing, bit for bit.
func TestHTTPRoundTrip(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("blob", cfg{Name: "rt", N: 9})
	want := blob{Words: []string{"a", "b"}, Vals: []float64{1.5, -0.25, 1e-300}}

	a := artifact.NewWithBackend(client(t, ts.URL))
	if _, err := artifact.Get(a, key, func() (blob, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	b := artifact.NewWithBackend(client(t, ts.URL))
	got, err := artifact.Get(b, key, func() (blob, error) {
		t.Error("remote warm store executed the compute")
		return blob{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Words) != 2 || got.Words[0] != "a" || len(got.Vals) != 3 || got.Vals[2] != 1e-300 {
		t.Fatalf("HTTP round trip mangled the value: %+v", got)
	}
	if st := b.Stats(); st.Fills != 0 || st.BackendHits != 1 {
		t.Fatalf("warm store stats %+v, want 0 fills / 1 backend hit", st)
	}
	if st := srv.Stats(); st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("server stats %+v, want 1 put / 1 hit", st)
	}
}

// TestHTTPCorruptEntryFallsBack corrupts the server's copy on disk:
// the server must refuse to serve it (a miss) and the client must
// recompute and republish a good copy.
func TestHTTPCorruptEntryFallsBack(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("corrupt", cfg{N: 5})
	a := artifact.NewWithBackend(client(t, ts.URL))
	if _, err := artifact.Get(a, key, func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(srv.Dir(), key.ID()+".gob")
	if err := os.WriteFile(path, []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := artifact.NewWithBackend(client(t, ts.URL))
	v, err := artifact.Get(b, key, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("corrupted entry not recomputed: %d, %v", v, err)
	}
	if st := srv.Stats(); st.Discards != 1 {
		t.Fatalf("server stats %+v, want 1 discard", st)
	}

	// The recompute republished: a third store loads the good copy.
	c := artifact.NewWithBackend(client(t, ts.URL))
	if _, err := artifact.Get(c, key, func() (int, error) {
		t.Error("republished entry not loaded")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPMislabelledEntryDiscarded plants a well-formed entry under
// the wrong id server-side (what an FNV collision would look like):
// the server refuses to serve it, and a direct client download of a
// mislabelled entry is rejected by the store's own verification.
func TestHTTPMislabelledEntryDiscarded(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("label", cfg{N: 1})
	other := artifact.KeyOf("label", cfg{N: 2})
	a := artifact.NewWithBackend(client(t, ts.URL))
	if _, err := artifact.Get(a, other, func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	// Rename other's entry file to key's id.
	if err := os.Rename(
		filepath.Join(srv.Dir(), other.ID()+".gob"),
		filepath.Join(srv.Dir(), key.ID()+".gob")); err != nil {
		t.Fatal(err)
	}

	b := artifact.NewWithBackend(client(t, ts.URL))
	v, err := artifact.Get(b, key, func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("mislabelled entry was trusted: %d, %v", v, err)
	}
	if st := srv.Stats(); st.Discards == 0 {
		t.Fatalf("server stats %+v, want a discard", st)
	}
}

// TestHTTPRejectsMislabelledUpload PUTs an entry under an id its
// identity does not hash to: the server must reject it and store
// nothing — one shard cannot poison another's keys.
func TestHTTPRejectsMislabelledUpload(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("poison", cfg{N: 1})
	victim := artifact.KeyOf("poison", cfg{N: 2})
	entry, err := artifact.EncodeEntry(artifact.Entry{
		Version: artifact.Version, Kind: key.Kind, Label: key.Label, Payload: []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := client(t, ts.URL)
	c.Put(victim.ID(), entry)
	if st := c.Stats(); st.Puts != 0 || st.Errors != 1 {
		t.Fatalf("client stats %+v, want the put counted as an error", st)
	}
	// Two rejects: the gzip attempt plus the client's raw retry (a
	// 400 is indistinguishable from a pre-gzip server's rejection).
	if st := srv.Stats(); st.Rejects != 2 || st.Puts != 0 {
		t.Fatalf("server stats %+v, want 2 rejects / 0 puts", st)
	}
	if _, err := os.Stat(filepath.Join(srv.Dir(), victim.ID()+".gob")); !os.IsNotExist(err) {
		t.Fatal("rejected upload reached the entry directory")
	}
}

// TestHTTPServerDownDegradesToCompute points a store at a dead server:
// every fill computes, nothing errors out to the caller.
func TestHTTPServerDownDegradesToCompute(t *testing.T) {
	_, ts := startServer(t)
	url := ts.URL
	ts.Close()
	s := artifact.NewWithBackend(client(t, url))
	v, err := artifact.Get(s, artifact.KeyOf("down", cfg{N: 3}), func() (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("dead server broke the fill: %d, %v", v, err)
	}
	if st := s.Stats(); st.Fills != 1 || st.BackendHits != 0 {
		t.Fatalf("stats %+v, want 1 fill / 0 backend hits", st)
	}
}

// TestChainPromotesRemoteHits chains a disk tier in front of the HTTP
// tier (the CLIs' -cache-dir + -store-url mode): a remote hit is
// promoted into the local tier, so the next cold process reads purely
// from disk.
func TestChainPromotesRemoteHits(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("chain", cfg{N: 7})
	remoteOnly := artifact.NewWithBackend(client(t, ts.URL))
	if _, err := artifact.Get(remoteOnly, key, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}

	localDir := t.TempDir()
	chained, err := OpenStore(localDir, ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Get(chained, key, func() (int, error) {
		t.Error("chained store recomputed a remotely cached artefact")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(localDir, key.ID()+".gob")); err != nil {
		t.Fatal("remote hit was not promoted into the local tier")
	}

	// A fresh chained store now hits disk without touching the server.
	gets := srv.Stats().Gets
	again, err := OpenStore(localDir, ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Get(again, key, func() (int, error) {
		t.Error("promoted entry not read from disk")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Gets; got != gets {
		t.Fatalf("local hit still queried the server (%d -> %d gets)", gets, got)
	}
}

// TestChainPutWritesAllTiers pins the other half of the chain
// contract: a fresh fill publishes to the local tier and the server.
func TestChainPutWritesAllTiers(t *testing.T) {
	srv, ts := startServer(t)
	localDir := t.TempDir()
	chained, err := OpenStore(localDir, ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.KeyOf("chain-put", cfg{N: 8})
	if _, err := artifact.Get(chained, key, func() (int, error) { return 8, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(localDir, key.ID()+".gob")); err != nil {
		t.Fatal("fill missing from the local tier")
	}
	if _, err := os.Stat(filepath.Join(srv.Dir(), key.ID()+".gob")); err != nil {
		t.Fatal("fill missing from the server")
	}
	if st := srv.Stats(); st.Puts != 1 {
		t.Fatalf("server stats %+v, want 1 put", st)
	}
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"ftp://host/x", "host:9444", ""} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := OpenStore("", "", ""); err == nil {
		t.Error("OpenStore with no tiers accepted")
	}
}

// TestClientTokenAuth proves the client side of bearer auth: a
// tokenless client degrades to compute-everything against a token'd
// server (and publishes nothing), while a token'd client round-trips
// and a second one reads the entry back without recomputation.
func TestClientTokenAuth(t *testing.T) {
	srv, ts := startServer(t)
	srv.SetToken("sesame")
	key := artifact.KeyOf("auth-blob", cfg{"a", 1})
	want := blob{Words: []string{"x", "y"}, Vals: []float64{1, 2}}

	tokenless := client(t, ts.URL)
	st := artifact.NewWithBackend(tokenless)
	got, err := artifact.Get(st, key, func() (blob, error) { return want, nil })
	if err != nil || len(got.Words) != 2 {
		t.Fatalf("tokenless fill failed: %v", err)
	}
	if cs := tokenless.Stats(); cs.Puts != 0 || cs.Errors == 0 {
		t.Fatalf("tokenless client stats %+v: want zero puts, some errors", cs)
	}
	if ss := srv.Stats(); ss.Puts != 0 {
		t.Fatal("tokenless client published through auth")
	}

	writer := client(t, ts.URL)
	writer.Token = "sesame"
	if _, err := artifact.Get(artifact.NewWithBackend(writer), key,
		func() (blob, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if ss := srv.Stats(); ss.Puts != 1 {
		t.Fatalf("server puts %d, want 1", ss.Puts)
	}

	reader := client(t, ts.URL)
	reader.Token = "sesame"
	cold := artifact.NewWithBackend(reader)
	got, err = artifact.Get(cold, key, func() (blob, error) {
		t.Fatal("authorized reader recomputed")
		return blob{}, nil
	})
	if err != nil || got.Words[1] != "y" {
		t.Fatalf("authorized read failed: %v", err)
	}
}

// TestClientTokenFromEnv checks New picks up $REPRO_STORE_TOKEN.
func TestClientTokenFromEnv(t *testing.T) {
	t.Setenv(TokenEnv, "envtoken")
	c := client(t, "http://localhost:1")
	if c.Token != "envtoken" {
		t.Fatalf("Token = %q, want env default", c.Token)
	}
}

// TestGzipRoundTripShrinksWire checks entries cross the wire
// compressed in both directions and verification still passes.
func TestGzipRoundTripShrinksWire(t *testing.T) {
	srv, ts := startServer(t)
	key := artifact.KeyOf("zip-blob", cfg{"z", 2})
	// Repetitive payload, as gob-encoded curves and profiles are.
	big := blob{}
	for i := 0; i < 2000; i++ {
		big.Words = append(big.Words, "repetitive-token")
		big.Vals = append(big.Vals, 0.5)
	}

	writer := client(t, ts.URL)
	if _, err := artifact.Get(artifact.NewWithBackend(writer), key,
		func() (blob, error) { return big, nil }); err != nil {
		t.Fatal(err)
	}
	entrySize := dirEntrySize(t, srv.Dir())
	ss := srv.Stats()
	if ss.PutBytes >= entrySize/2 {
		t.Fatalf("gzip PUT moved %d wire bytes for a %d-byte entry", ss.PutBytes, entrySize)
	}

	reader := client(t, ts.URL)
	got, err := artifact.Get(artifact.NewWithBackend(reader), key, func() (blob, error) {
		t.Fatal("remote hit recomputed")
		return blob{}, nil
	})
	if err != nil || len(got.Words) != 2000 || got.Words[1999] != "repetitive-token" {
		t.Fatalf("gzip GET round trip failed: %v", err)
	}
	ss = srv.Stats()
	if ss.ServedBytes >= entrySize/2 {
		t.Fatalf("gzip GET moved %d wire bytes for a %d-byte entry", ss.ServedBytes, entrySize)
	}
}

// dirEntrySize returns the size of the single entry file under dir.
func dirEntrySize(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total == 0 {
		t.Fatal("no stored entry found")
	}
	return total
}

// TestOpenStoreToken threads the CLI flag through to the client tier.
func TestOpenStoreToken(t *testing.T) {
	srv, ts := startServer(t)
	srv.SetToken("sesame")
	key := artifact.KeyOf("openstore-auth", cfg{"o", 3})

	authed, err := OpenStore("", ts.URL, "sesame")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Get(authed, key, func() (int, error) { return 42, nil }); err != nil {
		t.Fatal(err)
	}
	if ss := srv.Stats(); ss.Puts != 1 {
		t.Fatalf("authed OpenStore did not publish (puts %d)", ss.Puts)
	}
}

// TestPutRawRetryAgainstPreGzipServer pins the mixed-version path: a
// server that cannot decode gzip bodies (as pre-gzip artifactd
// versions gob-decode the compressed bytes and reject 400) still
// receives the entry via the client's one raw retry.
func TestPutRawRetryAgainstPreGzipServer(t *testing.T) {
	srv, err := artifactd.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && r.Header.Get("Content-Encoding") == "gzip" {
			http.Error(w, "body is not an encoded artifact entry", http.StatusBadRequest)
			return
		}
		r.Header.Del("Content-Encoding")
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	key := artifact.KeyOf("compat", cfg{N: 9})
	entry, err := artifact.EncodeEntry(artifact.Entry{
		Version: artifact.Version, Kind: key.Kind, Label: key.Label, Payload: []byte{4, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := client(t, ts.URL)
	c.Put(key.ID(), entry)
	if st := c.Stats(); st.Puts != 1 || st.Errors != 0 {
		t.Fatalf("client stats %+v, want the raw retry to succeed", st)
	}
	if st := srv.Stats(); st.Puts != 1 {
		t.Fatalf("server stats %+v, want the entry stored", st)
	}
}

// TestFetchAllBulkClosure pins the prefetch wire path end to end: a
// producer publishes a closure of entries, a cold consumer stages them
// with one POST /closure and then fills every key without a single
// per-key GET.
func TestFetchAllBulkClosure(t *testing.T) {
	srv, ts := startServer(t)
	producer := artifact.NewWithBackend(client(t, ts.URL))
	keys := make([]artifact.Key, 10)
	for i := range keys {
		keys[i] = artifact.KeyOf("closure", cfg{Name: "bulk", N: i})
		i := i
		if _, err := artifact.Get(producer, keys[i], func() (blob, error) {
			return blob{Vals: []float64{float64(i)}}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	c := client(t, ts.URL)
	consumer := artifact.NewWithBackend(c)
	if !consumer.BulkCapable() {
		t.Fatal("httpstore client not bulk-capable")
	}
	if n := consumer.Prefetch(keys); n != 10 {
		t.Fatalf("prefetched %d of 10", n)
	}
	for i, k := range keys {
		v, err := artifact.Get(consumer, k, func() (blob, error) {
			t.Fatalf("key %d recomputed despite prefetch", i)
			return blob{}, nil
		})
		if err != nil || v.Vals[0] != float64(i) {
			t.Fatalf("key %d: %+v err=%v", i, v, err)
		}
	}
	cs := c.Stats()
	if cs.Gets != 0 {
		t.Fatalf("consumer issued %d per-key GETs after bulk prefetch", cs.Gets)
	}
	if cs.BulkGets != 1 || cs.BulkEntries != 10 {
		t.Fatalf("bulk stats: %+v", cs)
	}
	ss := srv.Stats()
	if ss.ClosureRequests != 1 || ss.ClosureServed != 10 {
		t.Fatalf("server closure stats: %+v", ss)
	}
}

// TestFetchAllMissesAreAbsent pins the degradation contract: unknown
// ids are simply missing from the result, and the store falls back to
// computing them.
func TestFetchAllMissesAreAbsent(t *testing.T) {
	_, ts := startServer(t)
	c := client(t, ts.URL)
	got := c.FetchAll([]string{"nosuch-0000000000000000"})
	if len(got) != 0 {
		t.Fatalf("missing ids returned entries: %v", got)
	}
	st := artifact.NewWithBackend(c)
	key := artifact.KeyOf("closure", cfg{Name: "missing", N: 1})
	st.Prefetch([]artifact.Key{key})
	v, err := artifact.Get(st, key, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("fallback compute: v=%d err=%v", v, err)
	}
}

// TestFetchAllAgainstServerWithoutEndpoint pins mixed-version
// deployments: a 404 degrades to an empty result, no error surfaced.
func TestFetchAllAgainstServerWithoutEndpoint(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	c := client(t, ts.URL)
	if got := c.FetchAll([]string{"x-0000000000000000"}); got != nil {
		t.Fatalf("got %v from a server without /closure", got)
	}
	if st := c.Stats(); st.Errors != 0 {
		t.Fatalf("404 closure counted as error: %+v", st)
	}
}
