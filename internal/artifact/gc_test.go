package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fillN persists n int entries of kind through a fresh store over dir
// and returns their keys.
func fillN(t *testing.T, dir, kind string, n int) []Key {
	t.Helper()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = KeyOf(kind, cfg{Name: kind, N: i})
		if _, err := Get(s, keys[i], func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// backdate pushes key's entry file age seconds into the past.
func backdate(t *testing.T, dir string, key Key, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(filepath.Join(dir, key.ID()+".gob"), when, when); err != nil {
		t.Fatal(err)
	}
}

func entryExists(dir string, key Key) bool {
	_, err := os.Stat(filepath.Join(dir, key.ID()+".gob"))
	return err == nil
}

func TestGCAgeBound(t *testing.T) {
	dir := t.TempDir()
	keys := fillN(t, dir, "gc-age", 6)
	// Backdate the first three beyond the bound.
	for _, k := range keys[:3] {
		backdate(t, dir, k, 48*time.Hour)
	}
	res, err := GC(dir, 0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 6 || res.Removed != 3 {
		t.Fatalf("GC scanned %d / removed %d, want 6 / 3 (%+v)", res.Scanned, res.Removed, res)
	}
	for _, k := range keys[:3] {
		if entryExists(dir, k) {
			t.Errorf("expired entry %s survived the age sweep", k.ID())
		}
	}
	for _, k := range keys[3:] {
		if !entryExists(dir, k) {
			t.Errorf("fresh entry %s was evicted by the age sweep", k.ID())
		}
	}
	// The evicted artefacts recompute and re-persist on next use.
	warm, _ := NewDisk(dir)
	if v, err := Get(warm, keys[0], func() (int, error) { return 0, nil }); err != nil || v != 0 {
		t.Fatalf("post-GC refill failed: %d, %v", v, err)
	}
	if st := warm.Stats(); st.Fills != 1 {
		t.Fatalf("post-GC stats %+v, want 1 fill", st)
	}
}

func TestGCSizeBoundEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	keys := fillN(t, dir, "gc-size", 8)
	var each int64
	// Entries of one kind and type have identical sizes; spread mtimes
	// so recency order is keys[0] (oldest) .. keys[7] (newest).
	for i, k := range keys {
		info, err := os.Stat(filepath.Join(dir, k.ID()+".gob"))
		if err != nil {
			t.Fatal(err)
		}
		each = info.Size()
		backdate(t, dir, k, time.Duration(len(keys)-i)*time.Hour)
	}
	// Cap at ~3 entries: the 5 least recently used must go.
	res, err := GC(dir, 3*each, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 5 {
		t.Fatalf("GC removed %d entries, want 5 (%+v)", res.Removed, res)
	}
	if res.BytesKept > 3*each {
		t.Fatalf("GC kept %d bytes over the %d cap", res.BytesKept, 3*each)
	}
	for _, k := range keys[:5] {
		if entryExists(dir, k) {
			t.Errorf("LRU entry %s survived the size sweep", k.ID())
		}
	}
	for _, k := range keys[5:] {
		if !entryExists(dir, k) {
			t.Errorf("recent entry %s was evicted by the size sweep", k.ID())
		}
	}
}

// TestGCReadRefreshesRecency pins the LRU signal: reading an entry
// through a store touches it, so a hot entry outlives colder ones in
// a size-capped sweep even if it was written first.
func TestGCReadRefreshesRecency(t *testing.T) {
	dir := t.TempDir()
	keys := fillN(t, dir, "gc-lru", 4)
	var each int64
	for i, k := range keys {
		info, err := os.Stat(filepath.Join(dir, k.ID()+".gob"))
		if err != nil {
			t.Fatal(err)
		}
		each = info.Size()
		backdate(t, dir, k, time.Duration(len(keys)-i)*time.Hour)
	}
	// Read the oldest entry through a warm store: it becomes the most
	// recently used.
	warm, _ := NewDisk(dir)
	if _, err := Get(warm, keys[0], func() (int, error) {
		t.Error("warm read recomputed")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(dir, 2*each, 0); err != nil {
		t.Fatal(err)
	}
	if !entryExists(dir, keys[0]) {
		t.Error("recently read entry was evicted — reads are not refreshing recency")
	}
	if entryExists(dir, keys[1]) {
		t.Error("least recently used entry survived a cap that must evict it")
	}
}

// TestGCKeepsConcurrentFills sweeps while another store is publishing:
// entries filled during the sweep must all survive and load afterwards.
func TestGCKeepsConcurrentFills(t *testing.T) {
	dir := t.TempDir()
	old := fillN(t, dir, "gc-old", 4)
	for _, k := range old {
		backdate(t, dir, k, 48*time.Hour)
	}

	filler, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fresh = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < fresh; i++ {
			key := KeyOf("gc-fresh", cfg{Name: "fresh", N: i})
			if _, err := Get(filler, key, func() (int, error) { return i, nil }); err != nil {
				t.Error(err)
			}
		}
	}()
	if _, err := GC(dir, 0, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// A second sweep after the fills still keeps every fresh key.
	if _, err := GC(dir, 0, 24*time.Hour); err != nil {
		t.Fatal(err)
	}

	warm, _ := NewDisk(dir)
	for i := 0; i < fresh; i++ {
		key := KeyOf("gc-fresh", cfg{Name: "fresh", N: i})
		v, err := Get(warm, key, func() (int, error) {
			return -1, fmt.Errorf("entry %d lost to a concurrent sweep", i)
		})
		if err != nil || v != i {
			t.Fatalf("fresh entry %d: %d, %v", i, v, err)
		}
	}
	for _, k := range old {
		if entryExists(dir, k) {
			t.Errorf("expired entry %s survived", k.ID())
		}
	}
}

func TestGCStaleTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "blob-0011223344556677.gob.tmp-123")
	if err := os.WriteFile(stale, []byte("crashed writer leavings"), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-2 * time.Hour)
	os.Chtimes(stale, when, when)
	inflight := filepath.Join(dir, "blob-8899aabbccddeeff.gob.tmp-456")
	if err := os.WriteFile(inflight, []byte("being written right now"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(dir, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(inflight); err != nil {
		t.Error("in-flight temp file was swept")
	}
}

func TestParseGCSpec(t *testing.T) {
	day := 24 * time.Hour
	good := []struct {
		spec string
		want GCPolicy
	}{
		{"4GB", GCPolicy{MaxBytes: 4 << 30}},
		{"512MB", GCPolicy{MaxBytes: 512 << 20}},
		{"64kb", GCPolicy{MaxBytes: 64 << 10}},
		{"1048576", GCPolicy{MaxBytes: 1 << 20}},
		{"100B", GCPolicy{MaxBytes: 100}},
		{"168h", GCPolicy{MaxAge: 168 * time.Hour}},
		{"90m", GCPolicy{MaxAge: 90 * time.Minute}},
		{"14d", GCPolicy{MaxAge: 14 * day}},
		{"4GB,168h", GCPolicy{MaxBytes: 4 << 30, MaxAge: 168 * time.Hour}},
		{"168h,4GB", GCPolicy{MaxBytes: 4 << 30, MaxAge: 168 * time.Hour}},
		{" 2tb , 7d ", GCPolicy{MaxBytes: 2 << 40, MaxAge: 7 * day}},
	}
	for _, tc := range good {
		got, err := ParseGCSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseGCSpec(%q): %v", tc.spec, err)
		} else if got != tc.want {
			t.Errorf("ParseGCSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{
		"", " ", ",", "4GB,", "banana", "-4GB", "-24h", "0", "0h",
		"4GB,2GB", "24h,36h", "4GB,168h,1MB", "1.5GB",
	}
	for _, spec := range bad {
		if p, err := ParseGCSpec(spec); err == nil {
			t.Errorf("ParseGCSpec(%q) accepted: %+v", spec, p)
		}
	}
}
