//go:build race

package artifact

// Under the race detector every fill costs ~10x, so the soak streams a
// smaller (still quota-overflowing many times over) keyspace; the
// full-size run belongs to the plain test and the CI soak job.
const soakKeys = 50_000
