package artifact

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// DiskBackend persists encoded entries as <id>.gob files under one
// directory — the local tier of the store. Concurrent processes (and,
// through artifactd, concurrent machines) may share a directory.
type DiskBackend struct {
	dir string
}

// NewDiskBackend returns a disk backend rooted at dir (created if
// absent).
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the backend's root directory.
func (d *DiskBackend) Dir() string { return d.dir }

func (d *DiskBackend) path(id string) string {
	return filepath.Join(d.dir, id+".gob")
}

// Get reads id's entry. A hit refreshes the file's mtime, which is the
// recency signal GC's LRU sweep evicts by — recently read entries
// survive a size-capped sweep ahead of stale ones.
func (d *DiskBackend) Get(id string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, false // cold miss (or unreadable: recompute either way)
	}
	now := time.Now()
	os.Chtimes(d.path(id), now, now) // best-effort LRU touch
	return b, true
}

// Stat reports whether id has an entry and its encoded size, without
// reading it — the cheap existence probe behind artifactd's HEAD.
func (d *DiskBackend) Stat(id string) (size int64, ok bool) {
	info, err := os.Stat(d.path(id))
	if err != nil {
		return 0, false
	}
	return info.Size(), true
}

// Put publishes id's entry, best-effort: a full write to a temp file
// followed by an atomic rename, so concurrent writers (sharded runs
// computing the same deterministic artefact) each publish a complete
// entry and readers never see a torn file. Write failures are
// swallowed — persistence is an optimization, not a correctness
// requirement.
func (d *DiskBackend) Put(id string, data []byte) {
	tmp, err := os.CreateTemp(d.dir, id+".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(id)); err != nil {
		os.Remove(name)
	}
}

// loadBackend reads and validates key's persisted entry through the
// store's backend, also reporting the encoded payload size (the
// memory tier's charge for the decoded resident). Any failure — plain
// miss aside — counts as a discard and falls back to recomputation;
// the store never propagates backend corruption.
func loadBackend[T any](s *Store, key Key, check func(T) bool) (T, int64, bool) {
	var zero T
	// A bulk-prefetched entry short-circuits the backend read: the
	// bytes already crossed the wire once, verification below is
	// identical either way.
	b, ok := s.takePrefetched(key.ID())
	if !ok {
		b, ok = s.backend.Get(key.ID())
	}
	if !ok {
		return zero, 0, false
	}
	de, err := DecodeEntry(b)
	if err != nil {
		s.backendDiscards.Add(1)
		return zero, 0, false
	}
	if !de.Matches(key) {
		s.backendDiscards.Add(1)
		return zero, 0, false
	}
	var v T
	if err := gob.NewDecoder(bytes.NewReader(de.Payload)).Decode(&v); err != nil {
		s.backendDiscards.Add(1)
		return zero, 0, false
	}
	if check != nil && !check(v) {
		s.backendDiscards.Add(1)
		return zero, 0, false
	}
	return v, int64(len(de.Payload)), true
}

// encodeValue gob-encodes a freshly computed value once, serving both
// consumers of the encoding: the persistence backend (the payload to
// publish) and the memory tier (the byte size to charge). Values the
// codec cannot round-trip (live workload lists, samplers — the
// GetMem-only artefacts) return nil: they are not persisted, and the
// memory tier charges memFallbackBytes instead.
func encodeValue[T any](v T) []byte {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil
	}
	return payload.Bytes()
}

// saveBackendEncoded persists an already-encoded payload through the
// store's backend, best-effort.
func saveBackendEncoded(s *Store, key Key, payload []byte) {
	b, err := EncodeEntry(Entry{Version: Version, Kind: key.Kind, Label: key.Label, Payload: payload})
	if err != nil {
		return
	}
	s.backend.Put(key.ID(), b)
}
