package artifact

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
)

// diskEntry wraps a persisted payload with the identity that produced
// it, so a reader can reject hash collisions, format changes and
// cross-kind mixups without trusting file names.
type diskEntry struct {
	Version int
	Kind    string
	Label   string
	Payload []byte
}

func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.ID()+".gob")
}

// loadDisk reads and validates key's persisted entry. Any failure —
// missing file aside — counts as a discard and falls back to
// recomputation; the store never propagates disk corruption.
func loadDisk[T any](s *Store, key Key, check func(T) bool) (T, bool) {
	var zero T
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return zero, false // cold miss (or unreadable: recompute either way)
	}
	var de diskEntry
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&de); err != nil {
		s.diskDiscards.Add(1)
		return zero, false
	}
	if de.Version != Version || de.Kind != key.Kind || de.Label != key.Label {
		s.diskDiscards.Add(1)
		return zero, false
	}
	var v T
	if err := gob.NewDecoder(bytes.NewReader(de.Payload)).Decode(&v); err != nil {
		s.diskDiscards.Add(1)
		return zero, false
	}
	if check != nil && !check(v) {
		s.diskDiscards.Add(1)
		return zero, false
	}
	return v, true
}

// saveDisk persists a freshly computed value, best-effort: a full
// write to a temp file followed by an atomic rename, so concurrent
// writers (sharded runs computing the same deterministic artefact)
// each publish a complete entry and readers never see a torn file.
// Write failures are swallowed — persistence is an optimization, not
// a correctness requirement.
func saveDisk[T any](s *Store, key Key, v T) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return
	}
	var buf bytes.Buffer
	de := diskEntry{Version: Version, Kind: key.Kind, Label: key.Label, Payload: payload.Bytes()}
	if err := gob.NewEncoder(&buf).Encode(de); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, key.ID()+".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
	}
}
