package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// GCPolicy bounds a disk tier: entries older than MaxAge are removed,
// and if the surviving entries still exceed MaxBytes the least
// recently used (oldest mtime — DiskBackend touches entries on read)
// are removed until the total fits. A zero field is unbounded.
type GCPolicy struct {
	MaxBytes int64
	MaxAge   time.Duration
}

// GCResult summarizes one sweep.
type GCResult struct {
	// Scanned counts the entries examined.
	Scanned int
	// Removed counts the entries (and stale temp files) deleted.
	Removed int
	// BytesFreed is the total size of what was deleted.
	BytesFreed int64
	// BytesKept is the total size of the surviving entries.
	BytesKept int64
}

func (r GCResult) String() string {
	return fmt.Sprintf("scanned %d entries, removed %d (%d bytes freed, %d kept)",
		r.Scanned, r.Removed, r.BytesFreed, r.BytesKept)
}

// tmpGrace is how old an orphaned .tmp-* file must be before GC treats
// it as the leavings of a crashed writer rather than an in-flight
// publish (publishes are sub-second).
const tmpGrace = time.Hour

// GC sweeps the disk tier rooted at dir down to the given bounds:
// size- and age-bounded LRU eviction over the *.gob entries, plus
// removal of orphaned temp files older than an hour. It is safe to run
// concurrently with fills — publishes are atomic renames, entries that
// appear after the scan are untouched, and an entry republished or
// read (DiskBackend refreshes mtime on read) after the scan is
// re-statted and kept rather than evicted. Eviction never loses
// results: an evicted artefact is recomputed on next use.
func GC(dir string, maxBytes int64, maxAge time.Duration) (GCResult, error) {
	var res GCResult
	ents, err := os.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("artifact: gc: %w", err)
	}
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	now := time.Now()
	var files []file
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // vanished mid-scan
		}
		name := de.Name()
		if strings.Contains(name, ".tmp-") {
			if now.Sub(info.ModTime()) > tmpGrace {
				if os.Remove(filepath.Join(dir, name)) == nil {
					res.Removed++
					res.BytesFreed += info.Size()
				}
			}
			continue
		}
		if !strings.HasSuffix(name, ".gob") {
			continue
		}
		files = append(files, file{path: filepath.Join(dir, name), size: info.Size(), mtime: info.ModTime()})
	}
	res.Scanned = len(files)
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })

	var total int64
	for _, f := range files {
		total += f.size
	}
	// remove deletes f unless it was republished or read since the
	// scan (fresher mtime) — in-flight keys survive the sweep.
	remove := func(f file) bool {
		if info, err := os.Stat(f.path); err != nil || info.ModTime().After(f.mtime) {
			return false
		}
		if os.Remove(f.path) != nil {
			return false
		}
		res.Removed++
		res.BytesFreed += f.size
		total -= f.size
		return true
	}
	kept := files[:0]
	for _, f := range files {
		if maxAge > 0 && now.Sub(f.mtime) > maxAge && remove(f) {
			continue
		}
		kept = append(kept, f)
	}
	if maxBytes > 0 {
		for _, f := range kept {
			if total <= maxBytes {
				break
			}
			remove(f)
		}
	}
	res.BytesKept = total
	return res, nil
}

// GCSweeper validates a CLI's -gc flag against its -cache-dir and
// returns the post-run sweep, or an error for a malformed spec or a
// missing cache dir — the one implementation shared by cmd/repro,
// cmd/wcrt and cmd/bdbench. An empty spec returns a nil sweep (no GC
// requested).
func GCSweeper(cacheDir, spec string) (func() (GCResult, error), error) {
	if spec == "" {
		return nil, nil
	}
	if cacheDir == "" {
		return nil, fmt.Errorf("-gc needs a -cache-dir to sweep")
	}
	p, err := ParseGCSpec(spec)
	if err != nil {
		return nil, err
	}
	return func() (GCResult, error) { return GC(cacheDir, p.MaxBytes, p.MaxAge) }, nil
}

// ParseGCSpec parses the CLIs' -gc flag: comma-separated bounds, each
// either a size ("512MB", "2GB", "1048576") capping the tier's total
// bytes or a duration ("72h", "30m", "14d") capping entry age. One
// bound of each kind at most; at least one bound overall.
func ParseGCSpec(spec string) (GCPolicy, error) {
	var p GCPolicy
	if strings.TrimSpace(spec) == "" {
		return p, fmt.Errorf("empty gc spec (want e.g. %q, %q or %q)", "4GB", "168h", "4GB,168h")
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if d, err := parseAge(part); err == nil {
			if p.MaxAge != 0 {
				return GCPolicy{}, fmt.Errorf("gc spec %q sets the age bound twice", spec)
			}
			if d <= 0 {
				return GCPolicy{}, fmt.Errorf("gc spec %q: age bound must be positive", spec)
			}
			p.MaxAge = d
			continue
		}
		if n, err := parseSize(part); err == nil {
			if p.MaxBytes != 0 {
				return GCPolicy{}, fmt.Errorf("gc spec %q sets the size bound twice", spec)
			}
			if n <= 0 {
				return GCPolicy{}, fmt.Errorf("gc spec %q: size bound must be positive", spec)
			}
			p.MaxBytes = n
			continue
		}
		return GCPolicy{}, fmt.Errorf("gc spec part %q is neither a size (512MB) nor a duration (72h)", part)
	}
	return p, nil
}

// parseAge is time.ParseDuration plus a day suffix ("14d").
func parseAge(s string) (time.Duration, error) {
	if n, ok := strings.CutSuffix(s, "d"); ok {
		days, err := strconv.ParseInt(n, 10, 64)
		if err != nil {
			return 0, err
		}
		return time.Duration(days) * 24 * time.Hour, nil
	}
	return time.ParseDuration(s)
}

// parseSize parses an integer byte count with an optional B/KB/MB/GB/TB
// suffix (case-insensitive, powers of 1024).
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{{"TB", 1 << 40}, {"GB", 1 << 30}, {"MB", 1 << 20}, {"KB", 1 << 10}, {"B", 1}} {
		if n, ok := strings.CutSuffix(u, suf.name); ok {
			u, mult = n, suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}
