// Package artifact is the content-keyed artifact store behind every
// memoized computation in this repository: dataset contents
// (internal/datagen), 45-metric profile records and Fig. 6-9 sweep
// curves (internal/experiments), and the per-workload rows of
// cmd/bdbench.
//
// Every artefact in the pipeline is a deterministic function of its
// configuration — the BDGS-style generators are seeded, the machine
// models are seeded, the kernels derive their RNG streams from the
// workload ID — so an artefact can be identified by its kind plus the
// canonical JSON of everything the computation depends on. KeyOf
// hashes that identity (FNV-64a) into a Key.
//
// A Store is a two-tier backend for those keys:
//
//   - a concurrency-safe in-memory singleflight map: the first caller
//     for a key computes, concurrent callers for the same key block on
//     that one fill, callers for other keys proceed in parallel;
//   - an optional persistence Backend (NewWithBackend): a local gob
//     directory (NewDisk / DiskBackend), an artifactd server reached
//     over HTTP (httpstore.Client), or a Chain of tiers. Fills publish
//     atomically so concurrent processes sharing a backend — e.g.
//     sharded engine runs on different machines — never observe torn
//     entries, and a later process warm-starts from it. Every
//     persisted entry records the full key label, so hash collisions,
//     format changes and corrupted or stale entries are detected and
//     fall back to recomputation.
//
// The persistence tier never changes results: a loaded artefact is the
// gob round-trip of the value the computation would produce (gob
// encodes float64 bit patterns exactly), and callers can attach a
// validity check that stale entries must pass before being trusted.
package artifact

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
)

// Version tags the store format. Bumping it invalidates every
// previously persisted artefact (the key hash covers the version).
const Version = 1

// Key identifies one artefact: a kind (the namespace of one artefact
// family, e.g. "profile" or "datagen-text") plus the canonical JSON of
// the configuration that determines the artefact's content.
type Key struct {
	Kind string
	// Label is the canonical JSON of the configuration. The disk tier
	// stores it verbatim so a reader can verify an entry's identity
	// without trusting the hash.
	Label string
	hash  string
}

// KeyOf builds the key for kind and cfg. cfg must be a plain data
// value (struct, map, scalar) — it is canonicalized with
// encoding/json, which is deterministic for struct fields (declaration
// order) and maps (sorted keys). Unmarshalable configs are programming
// errors and panic.
func KeyOf(kind string, cfg any) Key {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("artifact: unmarshalable config for kind %q: %v", kind, err))
	}
	return KeyFromLabel(kind, string(b))
}

// KeyFromLabel rebuilds the key for a kind and its already-canonical
// label — the inverse an artifactd server needs to verify that an
// uploaded entry's recorded identity hashes to the id it was addressed
// by.
func KeyFromLabel(kind, label string) Key {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d\x00%s\x00", Version, kind)
	io.WriteString(h, label)
	return Key{Kind: kind, Label: label, hash: fmt.Sprintf("%016x", h.Sum64())}
}

// ID names the key: kind plus the 64-bit content hash. It is unique up
// to FNV collisions, which the disk tier detects via Label.
func (k Key) ID() string { return k.Kind + "-" + k.hash }

// Store is the two-tier artifact store. The zero value is not usable;
// construct with New (memory only), NewDisk (memory + a local
// directory) or NewWithBackend (memory + any persistence tier).
type Store struct {
	mu      sync.Mutex
	entries map[string]*entry
	// backend is the persistence tier (nil = memory only). Immutable
	// after construction, so fills read it without locking.
	backend Backend

	fills           atomic.Int64
	memHits         atomic.Int64
	backendHits     atomic.Int64
	backendDiscards atomic.Int64
}

// entry is one key's singleflight slot. The once guards the fill;
// val/err are written inside it and read only after it returns.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// New returns an empty in-memory store.
func New() *Store { return &Store{entries: map[string]*entry{}} }

// NewWithBackend returns a store whose fills persist through b.
// Multiple processes (local or remote) may share a backend
// concurrently.
func NewWithBackend(b Backend) *Store {
	s := New()
	s.backend = b
	return s
}

// NewDisk returns a store whose fills persist under dir (created if
// absent). Multiple processes may share dir concurrently.
func NewDisk(dir string) (*Store, error) {
	b, err := NewDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b), nil
}

// Backend returns the persistence tier (nil when memory-only).
func (s *Store) Backend() Backend { return s.backend }

var defaultStore = New()

// Default returns the process-global store. Dataset content caches in
// it unless redirected (datagen.SetStore), so a dataset generates at
// most once per process no matter how many sessions run.
func Default() *Store { return defaultStore }

// Stats is a snapshot of a store's activity counters.
type Stats struct {
	// Fills counts computations actually executed (cache misses).
	Fills int64
	// MemHits counts lookups that found an existing in-memory entry.
	MemHits int64
	// BackendHits counts fills satisfied by the persistence backend
	// (disk or remote).
	BackendHits int64
	// BackendDiscards counts backend entries rejected as corrupted,
	// stale, mislabelled or invalid.
	BackendDiscards int64
}

// Stats returns the current counter snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Fills:           s.fills.Load(),
		MemHits:         s.memHits.Load(),
		BackendHits:     s.backendHits.Load(),
		BackendDiscards: s.backendDiscards.Load(),
	}
}

// Get returns the artefact for key, computing it at most once per
// store. With a persistence backend, a valid persisted entry is loaded
// instead of computing, and fresh computations are persisted. A
// compute error is cached and returned to every caller of the key.
func Get[T any](s *Store, key Key, compute func() (T, error)) (T, error) {
	return fill(s, key, true, nil, compute)
}

// GetChecked is Get with a validity check applied to backend-loaded
// values: an entry failing check is discarded and recomputed. Use it
// whenever a persisted artefact could have been written against a
// different roster or shape than the caller expects.
func GetChecked[T any](s *Store, key Key, check func(T) bool, compute func() (T, error)) (T, error) {
	return fill(s, key, true, check, compute)
}

// GetMem is Get restricted to the in-memory tier — for artefacts that
// are cheap to rebuild or hold values a codec cannot round-trip (live
// Workload lists, samplers).
func GetMem[T any](s *Store, key Key, compute func() (T, error)) (T, error) {
	return fill(s, key, false, nil, compute)
}

func fill[T any](s *Store, key Key, disk bool, check func(T) bool, compute func() (T, error)) (T, error) {
	// The memory tier keys on the full identity (kind + label), not the
	// hash, so an FNV collision can never alias two artifacts in
	// memory; the hash names disk files, where the stored label is
	// verified on load.
	id := key.Kind + "\x00" + key.Label
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		e = &entry{}
		s.entries[id] = e
	} else {
		s.memHits.Add(1)
	}
	s.mu.Unlock()
	e.once.Do(func() {
		if disk && s.backend != nil {
			if v, ok := loadBackend(s, key, check); ok {
				s.backendHits.Add(1)
				e.val = v
				return
			}
		}
		v, err := compute()
		if err != nil {
			e.err = err
			return
		}
		s.fills.Add(1)
		e.val = v
		if disk && s.backend != nil {
			saveBackend(s, key, v)
		}
	})
	if e.err != nil {
		var zero T
		return zero, e.err
	}
	v, ok2 := e.val.(T)
	if !ok2 {
		var zero T
		return zero, fmt.Errorf("artifact: key %s holds %T, caller wants %T", key.ID(), e.val, zero)
	}
	return v, nil
}
