// Package artifact is the content-keyed artifact store behind every
// memoized computation in this repository: dataset contents
// (internal/datagen), 45-metric profile records and Fig. 6-9 sweep
// curves (internal/experiments), and the per-workload rows of
// cmd/bdbench.
//
// Every artefact in the pipeline is a deterministic function of its
// configuration — the BDGS-style generators are seeded, the machine
// models are seeded, the kernels derive their RNG streams from the
// workload ID — so an artefact can be identified by its kind plus the
// canonical JSON of everything the computation depends on. KeyOf
// hashes that identity (FNV-64a) into a Key.
//
// A Store is a two-tier backend for those keys:
//
//   - a concurrency-safe in-memory singleflight map: the first caller
//     for a key computes, concurrent callers for the same key block on
//     that one fill, callers for other keys proceed in parallel;
//   - an optional persistence Backend (NewWithBackend): a local gob
//     directory (NewDisk / DiskBackend), an artifactd server reached
//     over HTTP (httpstore.Client), or a Chain of tiers. Fills publish
//     atomically so concurrent processes sharing a backend — e.g.
//     sharded engine runs on different machines — never observe torn
//     entries, and a later process warm-starts from it. Every
//     persisted entry records the full key label, so hash collisions,
//     format changes and corrupted or stale entries are detected and
//     fall back to recomputation.
//
// The persistence tier never changes results: a loaded artefact is the
// gob round-trip of the value the computation would produce (gob
// encodes float64 bit patterns exactly), and callers can attach a
// validity check that stale entries must pass before being trusted.
package artifact

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
)

// Version tags the store format. Bumping it invalidates every
// previously persisted artefact (the key hash covers the version).
const Version = 1

// Key identifies one artefact: a kind (the namespace of one artefact
// family, e.g. "profile" or "datagen-text") plus the canonical JSON of
// the configuration that determines the artefact's content.
type Key struct {
	Kind string
	// Label is the canonical JSON of the configuration. The disk tier
	// stores it verbatim so a reader can verify an entry's identity
	// without trusting the hash.
	Label string
	hash  string
}

// KeyOf builds the key for kind and cfg. cfg must be a plain data
// value (struct, map, scalar) — it is canonicalized with
// encoding/json, which is deterministic for struct fields (declaration
// order) and maps (sorted keys). Unmarshalable configs are programming
// errors and panic.
func KeyOf(kind string, cfg any) Key {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("artifact: unmarshalable config for kind %q: %v", kind, err))
	}
	return KeyFromLabel(kind, string(b))
}

// KeyFromLabel rebuilds the key for a kind and its already-canonical
// label — the inverse an artifactd server needs to verify that an
// uploaded entry's recorded identity hashes to the id it was addressed
// by.
func KeyFromLabel(kind, label string) Key {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d\x00%s\x00", Version, kind)
	io.WriteString(h, label)
	return Key{Kind: kind, Label: label, hash: fmt.Sprintf("%016x", h.Sum64())}
}

// ID names the key: kind plus the 64-bit content hash. It is unique up
// to FNV collisions, which the disk tier detects via Label.
func (k Key) ID() string { return k.Kind + "-" + k.hash }

// Store is the two-tier artifact store. The zero value is not usable;
// construct with New (memory only), NewDisk (memory + a local
// directory) or NewWithBackend (memory + any persistence tier).
type Store struct {
	mu      sync.Mutex
	entries map[string]*entry
	// backend is the persistence tier (nil = memory only). Immutable
	// after construction, so fills read it without locking.
	backend Backend

	// prefetched holds encoded entries bulk-downloaded ahead of use
	// (Prefetch), each one a charged resident on the LRU list;
	// loadBackend consumes them before asking the backend, so a
	// prefetched closure costs zero per-key backend reads. Guarded by
	// mu like the entries they stage for.
	prefetched map[string]*memNode

	// Memory-tier accounting (see mem.go), guarded by mu: the quota,
	// the LRU list over every charged resident, and the books.
	quota        MemQuota
	lruHead      *memNode
	lruTail      *memNode
	resident     int64
	residentN    int
	kindBytes    map[string]int64
	kindEvicts   map[string]int64
	evictions    int64
	evictedBytes int64

	fills           atomic.Int64
	memHits         atomic.Int64
	backendHits     atomic.Int64
	backendDiscards atomic.Int64
	prefetches      atomic.Int64

	// events receives store lifecycle events (SetEvents). Written once
	// before the store sees traffic, read without locking afterwards.
	events EventSink
	// wasDegraded tracks the last observed backend degradation so
	// Health() can publish the degraded/recovered transition exactly
	// once per edge.
	wasDegraded atomic.Bool
}

// EventSink receives store lifecycle events: fill (a computation ran,
// with ok/error), hit (tier mem or backend), eviction, and
// degraded/recovered backend transitions. Declared here rather than
// importing the event bus so this package stays dependency-free; a
// *eventbus.Publisher satisfies it directly. Active gates payload
// construction — an idle sink costs one interface call per site.
type EventSink interface {
	Active() bool
	Event(typ string, data map[string]any)
}

// SetEvents attaches the event sink. Call once, right after
// construction, before the store sees traffic.
func (s *Store) SetEvents(sink EventSink) { s.events = sink }

// eventsActive reports whether event payloads are worth building.
func (s *Store) eventsActive() bool {
	return s.events != nil && s.events.Active()
}

// entry is one key's singleflight slot. The once guards the fill;
// val/err are written inside it and read only after it returns. done
// flips once the fill finished (either way), which lets Peek read a
// completed value without risking a block on an in-flight fill. size
// is the charged byte estimate, written inside the fill; node is the
// LRU residency handle, non-nil only after the completed fill was
// charged (so an in-flight fill can never be evicted) and guarded by
// Store.mu.
type entry struct {
	once sync.Once
	val  any
	err  error
	done atomic.Bool
	size int64
	node *memNode
}

// New returns an empty in-memory store.
func New() *Store { return &Store{entries: map[string]*entry{}} }

// NewWithBackend returns a store whose fills persist through b.
// Multiple processes (local or remote) may share a backend
// concurrently.
func NewWithBackend(b Backend) *Store {
	s := New()
	s.backend = b
	return s
}

// NewDisk returns a store whose fills persist under dir (created if
// absent). Multiple processes may share dir concurrently.
func NewDisk(dir string) (*Store, error) {
	b, err := NewDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b), nil
}

// Backend returns the persistence tier (nil when memory-only).
func (s *Store) Backend() Backend { return s.backend }

var defaultStore = New()

// Default returns the process-global store. Dataset content caches in
// it unless redirected (datagen.SetStore), so a dataset generates at
// most once per process no matter how many sessions run.
func Default() *Store { return defaultStore }

// Stats is a snapshot of a store's activity counters.
type Stats struct {
	// Fills counts computations actually executed (cache misses).
	Fills int64
	// MemHits counts lookups that found an existing in-memory entry.
	MemHits int64
	// BackendHits counts fills satisfied by the persistence backend
	// (disk or remote).
	BackendHits int64
	// BackendDiscards counts backend entries rejected as corrupted,
	// stale, mislabelled or invalid.
	BackendDiscards int64
	// Prefetched counts entries staged by bulk Prefetch downloads.
	Prefetched int64
	// Evictions counts residents evicted by the memory tier's quota
	// (entries and staged prefetch bytes alike).
	Evictions int64
	// EvictedBytes totals the charged size of everything evicted.
	EvictedBytes int64
	// ResidentBytes is the charged size of everything currently held
	// in memory (encoded payload estimate + per-entry overhead).
	ResidentBytes int64
	// ResidentEntries counts the charged residents.
	ResidentEntries int64
	// KindResident breaks ResidentBytes down by artefact kind.
	KindResident map[string]int64
	// KindEvictions breaks Evictions down by artefact kind.
	KindEvictions map[string]int64
}

// MemHitRatio is the fraction of memory-tier lookups answered by an
// already-resident entry — the serving daemon's cheapest possible
// path. 0 when the store has seen no traffic.
func (st Stats) MemHitRatio() float64 {
	total := st.MemHits + st.Fills + st.BackendHits
	if total == 0 {
		return 0
	}
	return float64(st.MemHits) / float64(total)
}

// Stats returns the current counter snapshot.
func (s *Store) Stats() Stats {
	st := Stats{
		Fills:           s.fills.Load(),
		MemHits:         s.memHits.Load(),
		BackendHits:     s.backendHits.Load(),
		BackendDiscards: s.backendDiscards.Load(),
		Prefetched:      s.prefetches.Load(),
	}
	s.mu.Lock()
	st.Evictions = s.evictions
	st.EvictedBytes = s.evictedBytes
	st.ResidentBytes = s.resident
	st.ResidentEntries = int64(s.residentN)
	if len(s.kindBytes) > 0 {
		st.KindResident = make(map[string]int64, len(s.kindBytes))
		for k, v := range s.kindBytes {
			st.KindResident[k] = v
		}
	}
	if len(s.kindEvicts) > 0 {
		st.KindEvictions = make(map[string]int64, len(s.kindEvicts))
		for k, v := range s.kindEvicts {
			st.KindEvictions[k] = v
		}
	}
	s.mu.Unlock()
	return st
}

// BulkCapable reports whether the store's persistence tier can serve
// closure downloads (a BulkFetcher backend, or a chain containing
// one) — the cheap guard callers consult before assembling a key
// closure for Prefetch.
func (s *Store) BulkCapable() bool {
	switch b := s.backend.(type) {
	case nil:
		return false
	case chain:
		for _, t := range b {
			if _, ok := t.(BulkFetcher); ok {
				return true
			}
		}
		return false
	default:
		_, ok := b.(BulkFetcher)
		return ok
	}
}

// Prefetch stages the closure of keys in one bulk backend download
// instead of the per-key Gets later fills would issue. Keys already
// filled in memory or already staged are skipped; everything the bulk
// tier returns is parked as encoded bytes and consumed (verified, as
// always) by the next fill of that key. Returns the number of entries
// staged. A store without a bulk-capable backend stages nothing — the
// call is free to make unconditionally.
//
// Staged bytes are charged to the memory budget like any resident and
// expire with the same eviction pass — a prefetched closure nobody
// consumes (a cancelled engine run, an abandoned shard) cannot linger
// forever.
func (s *Store) Prefetch(keys []Key) int {
	if !s.BulkCapable() {
		return 0
	}
	bf, ok := s.backend.(BulkFetcher)
	if !ok {
		return 0
	}
	var ids []string
	seen := make(map[string]bool, len(keys))
	s.mu.Lock()
	for _, k := range keys {
		id := k.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		if e := s.entries[memID(k)]; e != nil && e.done.Load() && e.err == nil {
			continue // already filled in memory
		}
		if _, staged := s.prefetched[id]; staged {
			continue
		}
		ids = append(ids, id)
	}
	s.mu.Unlock()
	if len(ids) == 0 {
		return 0
	}
	got := bf.FetchAll(ids)
	if len(got) == 0 {
		return 0
	}
	now := nowNanos()
	s.mu.Lock()
	if s.prefetched == nil {
		s.prefetched = make(map[string]*memNode, len(got))
	}
	staged := 0
	for id, b := range got {
		if _, dup := s.prefetched[id]; dup {
			continue // a concurrent Prefetch staged it first
		}
		n := &memNode{id: id, kind: kindOfID(id), size: memEntryOverhead + int64(len(id)+len(b)), data: b}
		s.prefetched[id] = n
		s.chargeLocked(n, now)
		staged++
	}
	s.mu.Unlock()
	s.prefetches.Add(int64(staged))
	return staged
}

// takePrefetched consumes a staged encoded entry for id, if any,
// releasing its memory-budget charge.
func (s *Store) takePrefetched(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.prefetched[id]
	if !ok {
		return nil, false
	}
	delete(s.prefetched, id)
	s.unchargeLocked(n)
	return n.data, true
}

// Get returns the artefact for key, computing it at most once per
// store. With a persistence backend, a valid persisted entry is loaded
// instead of computing, and fresh computations are persisted. A
// deterministic compute error is cached and returned to every caller
// of the key; a cancellation (context error) is returned only to the
// caller whose compute was cancelled — concurrent waiters with live
// contexts retry, and later callers recompute.
func Get[T any](s *Store, key Key, compute func() (T, error)) (T, error) {
	return fill(s, key, true, nil, compute)
}

// GetChecked is Get with a validity check applied to backend-loaded
// values: an entry failing check is discarded and recomputed. Use it
// whenever a persisted artefact could have been written against a
// different roster or shape than the caller expects.
func GetChecked[T any](s *Store, key Key, check func(T) bool, compute func() (T, error)) (T, error) {
	return fill(s, key, true, check, compute)
}

// GetMem is Get restricted to the in-memory tier — for artefacts that
// are cheap to rebuild or hold values a codec cannot round-trip (live
// Workload lists, samplers).
func GetMem[T any](s *Store, key Key, compute func() (T, error)) (T, error) {
	return fill(s, key, false, nil, compute)
}

// memID is the in-memory tier's map key: the full identity (kind +
// label), not the hash, so an FNV collision can never alias two
// artifacts in memory; the hash names disk files, where the stored
// label is verified on load.
func memID(key Key) string { return key.Kind + "\x00" + key.Label }

// retryable reports whether a fill failure is transient — the caller
// gave up (context cancellation), not the computation itself — and so
// must not be cached against the key: the next caller retries.
// Deterministic compute errors stay cached, as ever.
func retryable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func fill[T any](s *Store, key Key, disk bool, check func(T) bool, compute func() (T, error)) (T, error) {
	for {
		v, err, owner := fillAttempt(s, key, disk, check, compute)
		// A waiter that inherited another caller's cancellation (the
		// computing goroutine's context died, not this one's) retries
		// against the now-vacated slot: its own compute runs under its
		// own context, so a live caller converges on a real answer
		// instead of a spurious abort. The cancelled owner itself gets
		// its error back unchanged. Each retry either wins the slot
		// (and returns as owner) or waits on whoever did.
		if err != nil && !owner && retryable(err) {
			continue
		}
		return v, err
	}
}

// fillAttempt is one pass of the two-tier fill; owner reports whether
// this caller executed the fill body (computed or loaded) rather than
// waiting on another goroutine's in-flight fill.
func fillAttempt[T any](s *Store, key Key, disk bool, check func(T) bool, compute func() (T, error)) (T, error, bool) {
	id := memID(key)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[string]*entry{}
	}
	e, ok := s.entries[id]
	if !ok {
		e = &entry{}
		s.entries[id] = e
	} else {
		s.memHits.Add(1)
		if e.node != nil {
			s.touchLocked(e.node, nowNanos())
		}
	}
	s.mu.Unlock()
	if ok && s.eventsActive() {
		s.events.Event("hit", map[string]any{"id": key.ID(), "kind": key.Kind, "tier": "mem"})
	}
	owner := false
	e.once.Do(func() {
		owner = true
		// A panic out of compute would leave the once consumed with a
		// zero value — every waiter would read garbage. Record the
		// failure and drop the entry before letting the panic unwind
		// (sync.Once counts a panicking f as done, so waiters proceed
		// and see e.err), then re-raise it on the computing goroutine:
		// panic-based unwinding — the experiment session's cancellation
		// signal — keeps working through nested fills.
		defer func() {
			failed := e.err != nil
			var rethrow any
			if p := recover(); p != nil {
				failed = true
				if perr, ok := p.(error); ok {
					e.err = perr
				} else {
					e.err = fmt.Errorf("artifact: compute for %s panicked: %v", key.ID(), p)
				}
				rethrow = p
			}
			// Transient failures (cancellation, panics) are not held
			// against the key: waiters of THIS fill see the error, the
			// next caller gets a fresh slot and recomputes. Everything
			// that stays — values and cached deterministic errors — is
			// charged to the memory budget now that the fill is
			// complete; an in-flight fill is never on the LRU list and
			// so can never be evicted.
			s.mu.Lock()
			if failed && (rethrow != nil || retryable(e.err)) {
				if s.entries[id] == e {
					delete(s.entries, id)
				}
			} else if s.entries[id] == e && e.node == nil {
				if e.size == 0 {
					e.size = memFallbackBytes
					if e.err != nil {
						e.size = int64(len(e.err.Error()))
					}
				}
				n := &memNode{id: id, kind: key.Kind, size: memEntryOverhead + int64(len(id)) + e.size, e: e}
				e.node = n
				s.chargeLocked(n, nowNanos())
			}
			s.mu.Unlock()
			e.done.Store(true)
			if rethrow != nil {
				panic(rethrow)
			}
		}()
		if disk && s.backend != nil {
			if v, size, ok := loadBackend(s, key, check); ok {
				s.backendHits.Add(1)
				if s.eventsActive() {
					s.events.Event("hit", map[string]any{"id": key.ID(), "kind": key.Kind, "tier": "backend"})
				}
				e.val = v
				e.size = size
				return
			}
		}
		v, err := compute()
		if err != nil {
			e.err = err
			if s.eventsActive() {
				s.events.Event("fill", map[string]any{"id": key.ID(), "kind": key.Kind, "ok": false, "error": err.Error()})
			}
			return
		}
		s.fills.Add(1)
		if s.eventsActive() {
			s.events.Event("fill", map[string]any{"id": key.ID(), "kind": key.Kind, "ok": true})
		}
		e.val = v
		enc := encodeValue(v)
		if enc != nil {
			e.size = int64(len(enc))
		}
		if disk && s.backend != nil && enc != nil {
			saveBackendEncoded(s, key, enc)
		}
	})
	if e.err != nil {
		var zero T
		return zero, e.err, owner
	}
	v, ok2 := e.val.(T)
	if !ok2 {
		var zero T
		return zero, fmt.Errorf("artifact: key %s holds %T, caller wants %T", key.ID(), e.val, zero), owner
	}
	return v, nil, owner
}

// Peek returns key's artefact when it is already available — a
// completed in-memory fill, or a valid persisted entry — without ever
// computing, blocking on an in-flight fill, or caching an error. A
// backend hit is installed into the memory tier so repeated peeks (the
// serving daemon's warm fast path) cost one map lookup. check, when
// non-nil, is applied to backend-loaded values exactly as in
// GetChecked.
func Peek[T any](s *Store, key Key, check func(T) bool) (T, bool) {
	var zero T
	id := memID(key)
	s.mu.Lock()
	e := s.entries[id]
	if e != nil && e.node != nil {
		s.touchLocked(e.node, nowNanos())
	}
	s.mu.Unlock()
	if e != nil {
		if !e.done.Load() || e.err != nil {
			return zero, false
		}
		v, ok := e.val.(T)
		if ok && s.eventsActive() {
			s.events.Event("hit", map[string]any{"id": key.ID(), "kind": key.Kind, "tier": "mem"})
		}
		return v, ok
	}
	if s.backend == nil {
		return zero, false
	}
	v, size, ok := loadBackend(s, key, check)
	if !ok {
		return zero, false
	}
	s.backendHits.Add(1)
	if s.eventsActive() {
		s.events.Event("hit", map[string]any{"id": key.ID(), "kind": key.Kind, "tier": "backend"})
	}
	ne := &entry{val: v, size: size}
	ne.once.Do(func() {}) // consume: a later Get must not re-fill over val
	ne.done.Store(true)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = map[string]*entry{}
	}
	if _, exists := s.entries[id]; !exists {
		s.entries[id] = ne
		n := &memNode{id: id, kind: key.Kind, size: memEntryOverhead + int64(len(id)) + size, e: ne}
		ne.node = n
		s.chargeLocked(n, nowNanos())
	}
	s.mu.Unlock()
	return v, true
}
