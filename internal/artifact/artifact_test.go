package artifact

import (
	"bytes"
	"encoding/gob"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

// diskPath locates key's entry file in a disk-backed store's backend.
func diskPath(s *Store, key Key) string {
	return s.backend.(*DiskBackend).path(key.ID())
}

type cfg struct {
	Name string
	N    int
}

func TestKeyOfCanonical(t *testing.T) {
	a := KeyOf("kind", cfg{Name: "x", N: 3})
	b := KeyOf("kind", cfg{Name: "x", N: 3})
	if a.ID() != b.ID() || a.Label != b.Label {
		t.Fatalf("same config produced different keys: %q vs %q", a.ID(), b.ID())
	}
	if c := KeyOf("kind", cfg{Name: "x", N: 4}); c.ID() == a.ID() {
		t.Fatalf("different configs share key %q", c.ID())
	}
	if d := KeyOf("other", cfg{Name: "x", N: 3}); d.ID() == a.ID() {
		t.Fatalf("different kinds share key %q", d.ID())
	}
	if a.Label != `{"Name":"x","N":3}` {
		t.Fatalf("label is not canonical JSON: %q", a.Label)
	}
}

// TestGetSingleflight race-hammers one key from many goroutines: the
// compute must execute exactly once and everyone must observe its
// value. Run with -race this also guards the fill pattern.
func TestGetSingleflight(t *testing.T) {
	s := New()
	key := KeyOf("flight", cfg{Name: "k", N: 1})
	var computes atomic.Int64
	const hammers = 32
	vals := make([]int, hammers)
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Get(s, key, func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[g] = v
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", got)
	}
	for g, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d observed %d, want 42", g, v)
		}
	}
	if st := s.Stats(); st.Fills != 1 {
		t.Fatalf("stats report %d fills, want 1", st.Fills)
	}
}

func TestGetDistinctKeysFillIndependently(t *testing.T) {
	s := New()
	var computes atomic.Int64
	for i := 0; i < 4; i++ {
		v, err := Get(s, KeyOf("multi", cfg{N: i}), func() (int, error) {
			computes.Add(1)
			return i * i, nil
		})
		if err != nil || v != i*i {
			t.Fatalf("key %d: got %d, %v", i, v, err)
		}
	}
	if computes.Load() != 4 {
		t.Fatalf("%d computes for 4 keys", computes.Load())
	}
}

func TestGetTypeMismatchRejected(t *testing.T) {
	s := New()
	key := KeyOf("typed", cfg{N: 1})
	if _, err := Get(s, key, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(s, key, func() (string, error) { return "x", nil }); err == nil {
		t.Fatal("type mismatch on a shared key not rejected")
	}
}

type blob struct {
	Words []string
	Vals  []float64
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("blob", cfg{Name: "rt", N: 9})
	want := blob{Words: []string{"a", "b"}, Vals: []float64{1.5, -0.25, 1e-300}}
	if _, err := Get(a, key, func() (blob, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory models a new process: the
	// fill must come from disk, executing nothing.
	b, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Get(b, key, func() (blob, error) {
		t.Error("warm store executed the compute")
		return blob{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Words) != 2 || got.Words[0] != "a" || len(got.Vals) != 3 || got.Vals[2] != 1e-300 {
		t.Fatalf("disk round trip mangled the value: %+v", got)
	}
	st := b.Stats()
	if st.Fills != 0 || st.BackendHits != 1 {
		t.Fatalf("warm store stats %+v, want 0 fills / 1 disk hit", st)
	}
}

func TestDiskCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("corrupt", cfg{N: 5})
	if _, err := Get(a, key, func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(diskPath(a, key), []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	b, _ := NewDisk(dir)
	v, err := Get(b, key, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("corrupted entry not recomputed: %d, %v", v, err)
	}
	st := b.Stats()
	if st.BackendDiscards != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v, want 1 discard / 1 fill", st)
	}

	// The recompute rewrote a valid entry: a third store reads it.
	c, _ := NewDisk(dir)
	if _, err := Get(c, key, func() (int, error) {
		t.Error("rewritten entry not loaded")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDiskMislabelledEntryDiscarded plants a well-formed entry whose
// recorded label disagrees with the key (what an FNV collision or a
// stale config format would look like): it must be discarded.
func TestDiskMislabelledEntryDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewDisk(dir)
	key := KeyOf("label", cfg{N: 1})

	var payload bytes.Buffer
	gob.NewEncoder(&payload).Encode(999)
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(Entry{
		Version: Version, Kind: key.Kind, Label: `{"Other":"config"}`, Payload: payload.Bytes(),
	})
	if err := os.WriteFile(diskPath(s, key), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := Get(s, key, func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("mislabelled entry was trusted: %d, %v", v, err)
	}
	if st := s.Stats(); st.BackendDiscards != 1 {
		t.Fatalf("stats %+v, want 1 discard", st)
	}
}

// TestGetCheckedRejectsStale persists a value, then loads it through a
// check that rejects it (as when a persisted roster no longer matches
// the code): the store must recompute.
func TestGetCheckedRejectsStale(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("checked", cfg{N: 2})
	if _, err := Get(a, key, func() ([]int, error) { return []int{1, 2}, nil }); err != nil {
		t.Fatal(err)
	}

	b, _ := NewDisk(dir)
	v, err := GetChecked(b, key,
		func(v []int) bool { return len(v) == 3 }, // the caller now expects 3
		func() ([]int, error) { return []int{1, 2, 3}, nil })
	if err != nil || len(v) != 3 {
		t.Fatalf("stale entry not recomputed: %v, %v", v, err)
	}
	if st := b.Stats(); st.BackendDiscards != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v, want 1 discard / 1 fill", st)
	}
}

func TestGetMemSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("memonly", cfg{N: 3})
	if _, err := GetMem(a, key, func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(diskPath(a, key)); !os.IsNotExist(err) {
		t.Fatal("GetMem persisted to disk")
	}
	// Same store: memory hit, no recompute.
	ran := false
	if v, _ := GetMem(a, key, func() (int, error) { ran = true; return 0, nil }); v != 3 || ran {
		t.Fatalf("memory tier missed: v=%d ran=%v", v, ran)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	s := New()
	key := KeyOf("err", cfg{N: 4})
	wantErr := os.ErrPermission
	if _, err := Get(s, key, func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	// The error is cached: later callers see it without recomputing.
	if _, err := Get(s, key, func() (int, error) { return 1, nil }); err != wantErr {
		t.Fatalf("cached error lost: %v", err)
	}
	if st := s.Stats(); st.Fills != 0 {
		t.Fatalf("failed compute counted as fill: %+v", st)
	}
}
