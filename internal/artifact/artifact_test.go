package artifact

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// diskPath locates key's entry file in a disk-backed store's backend.
func diskPath(s *Store, key Key) string {
	return s.backend.(*DiskBackend).path(key.ID())
}

type cfg struct {
	Name string
	N    int
}

func TestKeyOfCanonical(t *testing.T) {
	a := KeyOf("kind", cfg{Name: "x", N: 3})
	b := KeyOf("kind", cfg{Name: "x", N: 3})
	if a.ID() != b.ID() || a.Label != b.Label {
		t.Fatalf("same config produced different keys: %q vs %q", a.ID(), b.ID())
	}
	if c := KeyOf("kind", cfg{Name: "x", N: 4}); c.ID() == a.ID() {
		t.Fatalf("different configs share key %q", c.ID())
	}
	if d := KeyOf("other", cfg{Name: "x", N: 3}); d.ID() == a.ID() {
		t.Fatalf("different kinds share key %q", d.ID())
	}
	if a.Label != `{"Name":"x","N":3}` {
		t.Fatalf("label is not canonical JSON: %q", a.Label)
	}
}

// TestGetSingleflight race-hammers one key from many goroutines: the
// compute must execute exactly once and everyone must observe its
// value. Run with -race this also guards the fill pattern.
func TestGetSingleflight(t *testing.T) {
	s := New()
	key := KeyOf("flight", cfg{Name: "k", N: 1})
	var computes atomic.Int64
	const hammers = 32
	vals := make([]int, hammers)
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Get(s, key, func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[g] = v
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", got)
	}
	for g, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d observed %d, want 42", g, v)
		}
	}
	if st := s.Stats(); st.Fills != 1 {
		t.Fatalf("stats report %d fills, want 1", st.Fills)
	}
}

func TestGetDistinctKeysFillIndependently(t *testing.T) {
	s := New()
	var computes atomic.Int64
	for i := 0; i < 4; i++ {
		v, err := Get(s, KeyOf("multi", cfg{N: i}), func() (int, error) {
			computes.Add(1)
			return i * i, nil
		})
		if err != nil || v != i*i {
			t.Fatalf("key %d: got %d, %v", i, v, err)
		}
	}
	if computes.Load() != 4 {
		t.Fatalf("%d computes for 4 keys", computes.Load())
	}
}

func TestGetTypeMismatchRejected(t *testing.T) {
	s := New()
	key := KeyOf("typed", cfg{N: 1})
	if _, err := Get(s, key, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(s, key, func() (string, error) { return "x", nil }); err == nil {
		t.Fatal("type mismatch on a shared key not rejected")
	}
}

type blob struct {
	Words []string
	Vals  []float64
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("blob", cfg{Name: "rt", N: 9})
	want := blob{Words: []string{"a", "b"}, Vals: []float64{1.5, -0.25, 1e-300}}
	if _, err := Get(a, key, func() (blob, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory models a new process: the
	// fill must come from disk, executing nothing.
	b, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Get(b, key, func() (blob, error) {
		t.Error("warm store executed the compute")
		return blob{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Words) != 2 || got.Words[0] != "a" || len(got.Vals) != 3 || got.Vals[2] != 1e-300 {
		t.Fatalf("disk round trip mangled the value: %+v", got)
	}
	st := b.Stats()
	if st.Fills != 0 || st.BackendHits != 1 {
		t.Fatalf("warm store stats %+v, want 0 fills / 1 disk hit", st)
	}
}

func TestDiskCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("corrupt", cfg{N: 5})
	if _, err := Get(a, key, func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(diskPath(a, key), []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	b, _ := NewDisk(dir)
	v, err := Get(b, key, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("corrupted entry not recomputed: %d, %v", v, err)
	}
	st := b.Stats()
	if st.BackendDiscards != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v, want 1 discard / 1 fill", st)
	}

	// The recompute rewrote a valid entry: a third store reads it.
	c, _ := NewDisk(dir)
	if _, err := Get(c, key, func() (int, error) {
		t.Error("rewritten entry not loaded")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDiskMislabelledEntryDiscarded plants a well-formed entry whose
// recorded label disagrees with the key (what an FNV collision or a
// stale config format would look like): it must be discarded.
func TestDiskMislabelledEntryDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewDisk(dir)
	key := KeyOf("label", cfg{N: 1})

	var payload bytes.Buffer
	gob.NewEncoder(&payload).Encode(999)
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(Entry{
		Version: Version, Kind: key.Kind, Label: `{"Other":"config"}`, Payload: payload.Bytes(),
	})
	if err := os.WriteFile(diskPath(s, key), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := Get(s, key, func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("mislabelled entry was trusted: %d, %v", v, err)
	}
	if st := s.Stats(); st.BackendDiscards != 1 {
		t.Fatalf("stats %+v, want 1 discard", st)
	}
}

// TestGetCheckedRejectsStale persists a value, then loads it through a
// check that rejects it (as when a persisted roster no longer matches
// the code): the store must recompute.
func TestGetCheckedRejectsStale(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("checked", cfg{N: 2})
	if _, err := Get(a, key, func() ([]int, error) { return []int{1, 2}, nil }); err != nil {
		t.Fatal(err)
	}

	b, _ := NewDisk(dir)
	v, err := GetChecked(b, key,
		func(v []int) bool { return len(v) == 3 }, // the caller now expects 3
		func() ([]int, error) { return []int{1, 2, 3}, nil })
	if err != nil || len(v) != 3 {
		t.Fatalf("stale entry not recomputed: %v, %v", v, err)
	}
	if st := b.Stats(); st.BackendDiscards != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v, want 1 discard / 1 fill", st)
	}
}

func TestGetMemSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewDisk(dir)
	key := KeyOf("memonly", cfg{N: 3})
	if _, err := GetMem(a, key, func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(diskPath(a, key)); !os.IsNotExist(err) {
		t.Fatal("GetMem persisted to disk")
	}
	// Same store: memory hit, no recompute.
	ran := false
	if v, _ := GetMem(a, key, func() (int, error) { ran = true; return 0, nil }); v != 3 || ran {
		t.Fatalf("memory tier missed: v=%d ran=%v", v, ran)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	s := New()
	key := KeyOf("err", cfg{N: 4})
	wantErr := os.ErrPermission
	if _, err := Get(s, key, func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	// The error is cached: later callers see it without recomputing.
	if _, err := Get(s, key, func() (int, error) { return 1, nil }); err != wantErr {
		t.Fatalf("cached error lost: %v", err)
	}
	if st := s.Stats(); st.Fills != 0 {
		t.Fatalf("failed compute counted as fill: %+v", st)
	}
}

func TestContextErrorNotCached(t *testing.T) {
	s := New()
	key := KeyOf("ctxerr", cfg{N: 9})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Get(s, key, func() (int, error) { return 0, ctx.Err() }); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Unlike a deterministic compute error, a cancellation is the
	// caller's fault: the next caller must recompute and succeed.
	v, err := Get(s, key, func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after cancellation: v=%d err=%v", v, err)
	}
}

func TestPanickingComputeNotCachedAndRethrown(t *testing.T) {
	s := New()
	key := KeyOf("panic", cfg{N: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("compute panic was swallowed")
			}
		}()
		Get(s, key, func() (int, error) { panic("compute exploded") })
	}()
	v, err := Get(s, key, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after panic: v=%d err=%v", v, err)
	}
}

func TestPeek(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("peek", cfg{N: 3})
	if _, ok := Peek[int](a, key, nil); ok {
		t.Fatal("peek hit on an empty store")
	}
	if _, err := Get(a, key, func() (int, error) { return 33, nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := Peek[int](a, key, nil); !ok || v != 33 {
		t.Fatalf("peek after fill: v=%d ok=%v", v, ok)
	}
	// A fresh store over the same directory peeks the persisted entry
	// without computing, and installs it for the next peek.
	b, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Peek[int](b, key, nil); !ok || v != 33 {
		t.Fatalf("cross-process peek: v=%d ok=%v", v, ok)
	}
	if st := b.Stats(); st.Fills != 0 || st.BackendHits != 1 {
		t.Fatalf("peek stats: %+v", st)
	}
	if v, ok := Peek[int](b, key, nil); !ok || v != 33 {
		t.Fatalf("second peek: v=%d ok=%v", v, ok)
	}
	if st := b.Stats(); st.BackendHits != 1 {
		t.Fatalf("second peek re-read the backend: %+v", st)
	}
	// And a Get after a peek must not recompute over the installed value.
	v, err := Get(b, key, func() (int, error) {
		t.Fatal("Get recomputed a peeked value")
		return 0, nil
	})
	if err != nil || v != 33 {
		t.Fatalf("get after peek: v=%d err=%v", v, err)
	}
}

// bulkBackend wraps a map backend with FetchAll, counting calls.
type bulkBackend struct {
	mu       sync.Mutex
	entries  map[string][]byte
	gets     int
	bulkGets int
}

func newBulkBackend() *bulkBackend { return &bulkBackend{entries: map[string][]byte{}} }

func (b *bulkBackend) Get(id string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	e, ok := b.entries[id]
	return e, ok
}

func (b *bulkBackend) Put(id string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries[id] = data
}

func (b *bulkBackend) FetchAll(ids []string) map[string][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bulkGets++
	out := map[string][]byte{}
	for _, id := range ids {
		if e, ok := b.entries[id]; ok {
			out[id] = e
		}
	}
	return out
}

func TestPrefetchStagesClosureInOneRoundTrip(t *testing.T) {
	bb := newBulkBackend()
	producer := NewWithBackend(bb)
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = KeyOf("bulk", cfg{N: i})
		if _, err := Get(producer, keys[i], func() (int, error) { return i * 11, nil }); err != nil {
			t.Fatal(err)
		}
	}

	consumer := NewWithBackend(bb)
	if !consumer.BulkCapable() {
		t.Fatal("bulk backend not recognized")
	}
	bb.mu.Lock()
	bb.gets = 0
	bb.mu.Unlock()
	if n := consumer.Prefetch(keys); n != 8 {
		t.Fatalf("prefetched %d of 8", n)
	}
	for i, k := range keys {
		v, err := Get(consumer, k, func() (int, error) {
			t.Fatalf("key %d recomputed despite prefetch", i)
			return 0, nil
		})
		if err != nil || v != i*11 {
			t.Fatalf("key %d: v=%d err=%v", i, v, err)
		}
	}
	bb.mu.Lock()
	gets, bulk := bb.gets, bb.bulkGets
	bb.mu.Unlock()
	if gets != 0 {
		t.Fatalf("fills issued %d per-key backend gets after prefetch", gets)
	}
	if bulk != 1 {
		t.Fatalf("prefetch issued %d bulk round trips, want 1", bulk)
	}
	if st := consumer.Stats(); st.Prefetched != 8 || st.BackendHits != 8 {
		t.Fatalf("prefetch stats: %+v", st)
	}
	// A second prefetch of already-filled keys stages nothing.
	if n := consumer.Prefetch(keys); n != 0 {
		t.Fatalf("re-prefetch staged %d entries", n)
	}
}

func TestPrefetchNoopWithoutBulkBackend(t *testing.T) {
	s := New()
	if s.BulkCapable() {
		t.Fatal("memory-only store claims bulk capability")
	}
	if n := s.Prefetch([]Key{KeyOf("x", cfg{N: 1})}); n != 0 {
		t.Fatalf("prefetch staged %d entries with no backend", n)
	}
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if d.BulkCapable() {
		t.Fatal("disk-only store claims bulk capability")
	}
}

func TestChainFetchAllPromotesAndSkipsLocalHits(t *testing.T) {
	bb := newBulkBackend()
	producer := NewWithBackend(bb)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf("chainbulk", cfg{N: i})
		if _, err := Get(producer, keys[i], func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	disk, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the local tier with key 0 only.
	if b, ok := bb.Get(keys[0].ID()); ok {
		disk.Put(keys[0].ID(), b)
	}
	ch := Chain(disk, bb).(BulkFetcher)
	bb.mu.Lock()
	bb.bulkGets = 0
	bb.mu.Unlock()
	ids := make([]string, len(keys))
	for i, k := range keys {
		ids[i] = k.ID()
	}
	got := ch.FetchAll(ids)
	if len(got) != 4 {
		t.Fatalf("chain FetchAll returned %d of 4", len(got))
	}
	bb.mu.Lock()
	bulk := bb.bulkGets
	bb.mu.Unlock()
	if bulk != 1 {
		t.Fatalf("chain issued %d bulk calls, want 1", bulk)
	}
	// Remote entries were promoted into the disk tier.
	for _, k := range keys[1:] {
		if _, ok := disk.Get(k.ID()); !ok {
			t.Fatalf("entry %s not promoted into the front tier", k.ID())
		}
	}
	// A chain without any bulk tier fetches nothing.
	if got := Chain(disk).(Backend); got == nil {
		t.Fatal("unreachable")
	}
	plain := chain{disk}
	if got := plain.FetchAll(ids); got != nil {
		t.Fatalf("bulk-less chain returned %d entries", len(got))
	}
}

func TestClosureWireRoundTrip(t *testing.T) {
	entries := []ClosureEntry{
		{ID: "a-0000000000000001", Data: []byte("alpha")},
		{ID: "b-0000000000000002", Data: []byte("beta")},
	}
	b, err := EncodeClosure(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeClosure(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a-0000000000000001" || string(got[1].Data) != "beta" {
		t.Fatalf("round trip mangled entries: %+v", got)
	}
	if _, err := DecodeClosure([]byte("not gob")); err == nil {
		t.Fatal("garbage closure decoded")
	}
}

// TestWaiterRetriesAfterForeignCancellation pins the coalescing
// repair: a caller blocked on another goroutine's fill must not
// inherit that goroutine's cancellation — it retries under its own
// (live) context and converges on a real answer.
func TestWaiterRetriesAfterForeignCancellation(t *testing.T) {
	s := New()
	key := KeyOf("shared", cfg{N: 1})
	computing := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	ownerErr := make(chan error, 1)
	go func() {
		_, err := Get(s, key, func() (int, error) {
			close(computing)
			<-release
			return 0, ctx.Err() // the owner's context died mid-compute
		})
		ownerErr <- err
	}()
	<-computing

	waiterVal := make(chan int, 1)
	go func() {
		// Arrives while the doomed fill is in flight; must end up
		// computing (or waiting on a successful fill), never seeing
		// the owner's context error.
		v, err := Get(s, key, func() (int, error) { return 99, nil })
		if err != nil {
			t.Errorf("waiter err = %v", err)
		}
		waiterVal <- v
	}()
	// Let the waiter reach the singleflight, then cancel the owner.
	time.Sleep(10 * time.Millisecond)
	cancel()
	close(release)

	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	if v := <-waiterVal; v != 99 {
		t.Fatalf("waiter got %d, want its own compute (99)", v)
	}
}
