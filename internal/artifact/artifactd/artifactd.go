// Package artifactd implements the artifact store's network tier: the
// HTTP server behind cmd/artifactd, publishing one disk-backed entry
// directory to any number of remote shards (internal/artifact/httpstore
// clients).
//
// Endpoints:
//
//	GET  /artifact/{id}  one encoded entry (artifact.Entry gob), 404 on
//	                     miss or on an entry that fails verification
//	HEAD /artifact/{id}  existence probe
//	PUT  /artifact/{id}  publish an entry; 400 unless the entry's
//	                     recorded identity (version, kind, label)
//	                     hashes to {id}
//	GET  /stats          counters as JSON (gets, hits, misses, puts,
//	                     rejects, discards, entries, bytes)
//	GET  /healthz        liveness probe, "ok"
//
// Verification happens on both ends of the wire: the server decodes
// every uploaded entry and rejects ids that don't match the recorded
// identity (so one shard can never poison another's keys with a
// mislabelled upload), re-verifies entries on the way out (corrupted
// files are reported as misses, costing the client a recomputation,
// never a wrong result), and the client-side store verifies every
// entry it downloads against the key it asked for.
package artifactd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"

	"repro/internal/artifact"
)

// maxEntryBytes caps an uploaded entry's size.
const maxEntryBytes = 1 << 30

// idPattern matches well-formed entry ids: "<kind>-<16 hex>", with
// kinds drawn from [a-z0-9-]. Anything else — path traversal attempts
// included — is rejected before touching the filesystem.
var idPattern = regexp.MustCompile(`^[a-z0-9-]{1,128}-[0-9a-f]{16}$`)

// Server serves one entry directory. Construct with New.
type Server struct {
	backend *artifact.DiskBackend

	gets, hits, misses      atomic.Int64
	puts, rejects, discards atomic.Int64
	putBytes, servedBytes   atomic.Int64
}

// New returns a server over the entry directory dir (created if
// absent).
func New(dir string) (*Server, error) {
	b, err := artifact.NewDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	return &Server{backend: b}, nil
}

// Dir returns the served entry directory.
func (s *Server) Dir() string { return s.backend.Dir() }

// Stats is a snapshot of the server's counters — the "did the warm
// pass recompute anything" probe CI reads from /stats (a warm pass
// adds no puts).
type Stats struct {
	// Gets counts artefact lookups; Hits and Misses partition them.
	Gets, Hits, Misses int64
	// Puts counts accepted publishes; Rejects counts uploads refused
	// because the entry's identity did not hash to its id.
	Puts, Rejects int64
	// Discards counts stored entries that failed verification on read.
	Discards int64
	// PutBytes and ServedBytes total the entry payloads moved.
	PutBytes, ServedBytes int64
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Gets: s.gets.Load(), Hits: s.hits.Load(), Misses: s.misses.Load(),
		Puts: s.puts.Load(), Rejects: s.rejects.Load(), Discards: s.discards.Load(),
		PutBytes: s.putBytes.Load(), ServedBytes: s.servedBytes.Load(),
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/artifact/", s.handleArtifact)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{
		"gets": st.Gets, "hits": st.Hits, "misses": st.Misses,
		"puts": st.Puts, "rejects": st.Rejects, "discards": st.Discards,
		"put_bytes": st.PutBytes, "served_bytes": st.ServedBytes,
	})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Path[len("/artifact/"):]
	if !idPattern.MatchString(id) {
		http.Error(w, "malformed artifact id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.serve(w, r, id)
	case http.MethodPut:
		s.accept(w, r, id)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serve answers GET/HEAD. GET loads, re-verifies and sends: an entry
// that fails verification (bit rot, a file renamed by hand) is a
// miss — the client recomputes and republishes a good copy. HEAD is a
// pure existence probe (one stat, no read or decode); GET still
// verifies before any payload crosses the wire.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, id string) {
	s.gets.Add(1)
	if r.Method == http.MethodHead {
		size, ok := s.backend.Stat(id)
		if !ok {
			s.misses.Add(1)
			http.NotFound(w, r)
			return
		}
		s.hits.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		return
	}
	b, ok := s.backend.Get(id)
	if ok {
		e, err := artifact.DecodeEntry(b)
		if err != nil || e.Version != artifact.Version || e.Key().ID() != id {
			s.discards.Add(1)
			ok = false
		}
	}
	if !ok {
		s.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	s.hits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	s.servedBytes.Add(int64(len(b)))
	w.Write(b)
}

// accept answers PUT: decode, verify the recorded identity hashes to
// the addressed id, publish atomically.
func (s *Server) accept(w http.ResponseWriter, r *http.Request, id string) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
	if err != nil {
		s.rejects.Add(1)
		http.Error(w, "unreadable body", http.StatusBadRequest)
		return
	}
	e, err := artifact.DecodeEntry(b)
	if err != nil {
		s.rejects.Add(1)
		http.Error(w, "body is not an encoded artifact entry", http.StatusBadRequest)
		return
	}
	if e.Version != artifact.Version {
		s.rejects.Add(1)
		http.Error(w, fmt.Sprintf("entry format v%d, server speaks v%d", e.Version, artifact.Version),
			http.StatusBadRequest)
		return
	}
	if got := e.Key().ID(); got != id {
		s.rejects.Add(1)
		http.Error(w, fmt.Sprintf("entry identity hashes to %s, addressed as %s", got, id),
			http.StatusBadRequest)
		return
	}
	s.backend.Put(id, b)
	s.puts.Add(1)
	s.putBytes.Add(int64(len(b)))
	w.WriteHeader(http.StatusNoContent)
}
