// Package artifactd implements the artifact store's network tier: the
// HTTP server behind cmd/artifactd, publishing one disk-backed entry
// directory to any number of remote shards (internal/artifact/httpstore
// clients).
//
// Endpoints:
//
//	GET  /artifact/{id}  one encoded entry (artifact.Entry gob), 404 on
//	                     miss or on an entry that fails verification
//	HEAD /artifact/{id}  existence probe
//	PUT  /artifact/{id}  publish an entry; 400 unless the entry's
//	                     recorded identity (version, kind, label)
//	                     hashes to {id}
//	POST /closure        bulk download: {"ids": [...]} answered with
//	                     one encoded body holding every named entry
//	                     the server has and can verify — a cold peer's
//	                     single round trip instead of a GET per key
//	GET  /stats          counters as JSON (gets, hits, misses, puts,
//	                     rejects, discards, entries, bytes)
//	GET  /metrics        the same counters in Prometheus text format
//	GET  /healthz        liveness probe, "ok"
//
// With a bearer token configured (SetToken / artifactd -token), every
// artifact operation — GET, HEAD and PUT — requires a matching
// "Authorization: Bearer <token>" header and is answered 401
// otherwise; /stats, /metrics and /healthz stay open for probes and
// scrapers. Entry payloads cross the wire gzip-compressed when the
// peer advertises it (Accept-Encoding on GET, Content-Encoding on
// PUT); gob-encoded entries are repetitive, so this typically shrinks
// wire bytes several-fold while the on-disk form stays raw.
//
// Verification happens on both ends of the wire: the server decodes
// every uploaded entry and rejects ids that don't match the recorded
// identity (so one shard can never poison another's keys with a
// mislabelled upload), re-verifies entries on the way out (corrupted
// files are reported as misses, costing the client a recomputation,
// never a wrong result), and the client-side store verifies every
// entry it downloads against the key it asked for.
package artifactd

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/artifact"
)

// maxEntryBytes caps an entry's size on the wire, raw or expanded
// from gzip (artifact.MaxWireEntryBytes — shared with the client so
// anything storable is also servable, and a gzip bomb cannot buy a
// large allocation with a tiny body).
const maxEntryBytes = artifact.MaxWireEntryBytes

// idPattern matches well-formed entry ids: "<kind>-<16 hex>", with
// kinds drawn from [a-z0-9-]. Anything else — path traversal attempts
// included — is rejected before touching the filesystem.
var idPattern = regexp.MustCompile(`^[a-z0-9-]{1,128}-[0-9a-f]{16}$`)

// Server serves one entry directory. Construct with New.
type Server struct {
	backend *artifact.DiskBackend
	token   string

	gets, hits, misses      atomic.Int64
	puts, rejects, discards atomic.Int64
	putBytes, servedBytes   atomic.Int64
	unauthorized            atomic.Int64
	closureReqs             atomic.Int64
	closureServed           atomic.Int64
}

// SetToken requires "Authorization: Bearer token" on every artifact
// operation (GET/HEAD/PUT). An empty token (the default) leaves the
// server open — appropriate only on a trusted network. Call before
// serving.
func (s *Server) SetToken(token string) { s.token = token }

// authorized reports whether r carries the configured bearer token.
func (s *Server) authorized(r *http.Request) bool {
	if s.token == "" {
		return true
	}
	auth, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(auth), []byte(s.token)) == 1
}

// New returns a server over the entry directory dir (created if
// absent).
func New(dir string) (*Server, error) {
	b, err := artifact.NewDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	return &Server{backend: b}, nil
}

// Dir returns the served entry directory.
func (s *Server) Dir() string { return s.backend.Dir() }

// Stats is a snapshot of the server's counters — the "did the warm
// pass recompute anything" probe CI reads from /stats (a warm pass
// adds no puts).
type Stats struct {
	// Gets counts artefact lookups; Hits and Misses partition them.
	Gets, Hits, Misses int64
	// Puts counts accepted publishes; Rejects counts uploads refused
	// because the entry's identity did not hash to its id.
	Puts, Rejects int64
	// Discards counts stored entries that failed verification on read.
	Discards int64
	// PutBytes and ServedBytes total the entry payloads moved, as wire
	// bytes (after any transport compression).
	PutBytes, ServedBytes int64
	// Unauthorized counts artifact requests refused for a missing or
	// wrong bearer token.
	Unauthorized int64
	// ClosureRequests counts bulk closure downloads (POST /closure);
	// ClosureServed totals the entries they returned. One closure
	// request replaces ClosureServed per-key GETs for a cold peer.
	ClosureRequests, ClosureServed int64
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Gets: s.gets.Load(), Hits: s.hits.Load(), Misses: s.misses.Load(),
		Puts: s.puts.Load(), Rejects: s.rejects.Load(), Discards: s.discards.Load(),
		PutBytes: s.putBytes.Load(), ServedBytes: s.servedBytes.Load(),
		Unauthorized:    s.unauthorized.Load(),
		ClosureRequests: s.closureReqs.Load(), ClosureServed: s.closureServed.Load(),
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/artifact/", s.handleArtifact)
	mux.HandleFunc("/closure", s.handleClosure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{
		"gets": st.Gets, "hits": st.Hits, "misses": st.Misses,
		"puts": st.Puts, "rejects": st.Rejects, "discards": st.Discards,
		"put_bytes": st.PutBytes, "served_bytes": st.ServedBytes,
		"unauthorized":     st.Unauthorized,
		"closure_requests": st.ClosureRequests, "closure_served": st.ClosureServed,
	})
}

// handleMetrics exposes the counters in the Prometheus text exposition
// format (version 0.0.4), one counter family per Stats field, so a
// scraper can watch hit rates and wire volume without bespoke glue.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, m := range []struct {
		name, help string
		value      int64
	}{
		{"artifactd_gets_total", "Artifact lookups received (GET and HEAD).", st.Gets},
		{"artifactd_hits_total", "Lookups answered with an entry.", st.Hits},
		{"artifactd_misses_total", "Lookups answered 404.", st.Misses},
		{"artifactd_puts_total", "Entry publishes accepted.", st.Puts},
		{"artifactd_rejects_total", "Uploads refused by identity verification.", st.Rejects},
		{"artifactd_discards_total", "Stored entries that failed verification on read.", st.Discards},
		{"artifactd_put_bytes_total", "Wire bytes received in accepted publishes.", st.PutBytes},
		{"artifactd_served_bytes_total", "Wire bytes sent serving entries.", st.ServedBytes},
		{"artifactd_unauthorized_total", "Artifact requests refused for a bad bearer token.", st.Unauthorized},
		{"artifactd_closure_requests_total", "Bulk closure downloads served.", st.ClosureRequests},
		{"artifactd_closure_served_total", "Entries returned by closure downloads.", st.ClosureServed},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		s.unauthorized.Add(1)
		w.Header().Set("WWW-Authenticate", "Bearer")
		http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
		return
	}
	id := r.URL.Path[len("/artifact/"):]
	if !idPattern.MatchString(id) {
		http.Error(w, "malformed artifact id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.serve(w, r, id)
	case http.MethodPut:
		s.accept(w, r, id)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serve answers GET/HEAD. GET loads, re-verifies and sends: an entry
// that fails verification (bit rot, a file renamed by hand) is a
// miss — the client recomputes and republishes a good copy. HEAD is a
// pure existence probe (one stat, no read or decode); GET still
// verifies before any payload crosses the wire.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, id string) {
	s.gets.Add(1)
	if r.Method == http.MethodHead {
		size, ok := s.backend.Stat(id)
		if !ok {
			s.misses.Add(1)
			http.NotFound(w, r)
			return
		}
		s.hits.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		return
	}
	b, ok := s.backend.Get(id)
	if ok {
		e, err := artifact.DecodeEntry(b)
		if err != nil || e.Version != artifact.Version || e.Key().ID() != id {
			s.discards.Add(1)
			ok = false
		}
	}
	if !ok {
		s.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	s.hits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	// Compress on the wire when the client accepts it; storage stays
	// raw so the directory remains a plain DiskBackend. The entry is
	// compressed into a buffer first — wire bytes are counted exactly
	// and Content-Length stays correct.
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		zb := artifact.GzipBytes(b)
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Length", strconv.Itoa(len(zb)))
		s.servedBytes.Add(int64(len(zb)))
		w.Write(zb)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	s.servedBytes.Add(int64(len(b)))
	w.Write(b)
}

// accept answers PUT: decode, verify the recorded identity hashes to
// the addressed id, publish atomically. A gzip Content-Encoding is
// unwrapped first (wire bytes are counted compressed; the stored form
// is always the raw encoded entry, so mixed-transport clients share
// entries transparently).
func (s *Server) accept(w http.ResponseWriter, r *http.Request, id string) {
	wire, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
	if err != nil {
		s.rejects.Add(1)
		http.Error(w, "unreadable body", http.StatusBadRequest)
		return
	}
	b := wire
	if r.Header.Get("Content-Encoding") == "gzip" {
		b, err = artifact.GunzipBytes(wire)
		if err != nil {
			s.rejects.Add(1)
			http.Error(w, "bad gzip body", http.StatusBadRequest)
			return
		}
	}
	e, err := artifact.DecodeEntry(b)
	if err != nil {
		s.rejects.Add(1)
		http.Error(w, "body is not an encoded artifact entry", http.StatusBadRequest)
		return
	}
	if e.Version != artifact.Version {
		s.rejects.Add(1)
		http.Error(w, fmt.Sprintf("entry format v%d, server speaks v%d", e.Version, artifact.Version),
			http.StatusBadRequest)
		return
	}
	if got := e.Key().ID(); got != id {
		s.rejects.Add(1)
		http.Error(w, fmt.Sprintf("entry identity hashes to %s, addressed as %s", got, id),
			http.StatusBadRequest)
		return
	}
	s.backend.Put(id, b)
	s.puts.Add(1)
	s.putBytes.Add(int64(len(wire)))
	w.WriteHeader(http.StatusNoContent)
}

// handleClosure answers POST /closure: a JSON body {"ids": [...]}
// names the entries a cold peer wants, and the response is one
// artifact.EncodeClosure body holding every named entry the server has
// and can verify (in request order; misses and corrupt entries are
// simply absent — the peer recomputes them, exactly as with a per-key
// miss). One round trip replaces hundreds of per-key GETs when a fresh
// shard or serving instance warms up. Requires the bearer token like
// any artifact operation, and compresses like a single GET when the
// peer accepts gzip.
func (s *Server) handleClosure(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		s.unauthorized.Add(1)
		w.Header().Set("WWW-Authenticate", "Bearer")
		http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		IDs []string `json:"ids"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil || json.Unmarshal(body, &req) != nil {
		http.Error(w, "body is not a JSON id list", http.StatusBadRequest)
		return
	}
	if len(req.IDs) > artifact.MaxClosureIDs {
		http.Error(w, fmt.Sprintf("closure of %d ids exceeds %d", len(req.IDs), artifact.MaxClosureIDs),
			http.StatusBadRequest)
		return
	}
	for _, id := range req.IDs {
		if !idPattern.MatchString(id) {
			http.Error(w, "malformed artifact id "+id, http.StatusBadRequest)
			return
		}
	}
	s.closureReqs.Add(1)
	entries := make([]artifact.ClosureEntry, 0, len(req.IDs))
	seen := make(map[string]bool, len(req.IDs))
	total := 0
	for _, id := range req.IDs {
		if seen[id] {
			continue
		}
		seen[id] = true
		b, ok := s.backend.Get(id)
		if !ok {
			continue
		}
		if total+len(b) > artifact.MaxWireClosureBytes {
			// Response full: the remaining ids fall back to per-key
			// reads on the client, which is merely slower, never wrong.
			break
		}
		e, err := artifact.DecodeEntry(b)
		if err != nil || e.Version != artifact.Version || e.Key().ID() != id {
			s.discards.Add(1)
			continue
		}
		total += len(b)
		entries = append(entries, artifact.ClosureEntry{ID: id, Data: b})
	}
	s.closureServed.Add(int64(len(entries)))
	payload, err := artifact.EncodeClosure(entries)
	if err != nil {
		http.Error(w, "closure encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		zb := artifact.GzipBytes(payload)
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Length", strconv.Itoa(len(zb)))
		s.servedBytes.Add(int64(len(zb)))
		w.Write(zb)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	s.servedBytes.Add(int64(len(payload)))
	w.Write(payload)
}
