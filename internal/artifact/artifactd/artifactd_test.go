package artifactd

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/artifact"
)

func start(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func encodedEntry(t *testing.T, key artifact.Key, payload []byte) []byte {
	t.Helper()
	b, err := artifact.EncodeEntry(artifact.Entry{
		Version: artifact.Version, Kind: key.Kind, Label: key.Label, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func put(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestPutGetHead(t *testing.T) {
	srv, ts := start(t)
	key := artifact.KeyOf("wire", map[string]int{"n": 1})
	entry := encodedEntry(t, key, []byte("payload"))
	url := ts.URL + "/artifact/" + key.ID()

	if resp := put(t, url, entry); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d, want 204", resp.StatusCode)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b, entry) {
		t.Fatalf("GET status %d, %d bytes; want 200 with the %d uploaded bytes",
			resp.StatusCode, len(b), len(entry))
	}
	head, err := http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK || head.ContentLength != int64(len(entry)) {
		t.Fatalf("HEAD status %d length %d, want 200 / %d", head.StatusCode, head.ContentLength, len(entry))
	}
	missing, err := http.Head(ts.URL + "/artifact/wire-0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD of a missing id returned %d, want 404", missing.StatusCode)
	}
	if st := srv.Stats(); st.Puts != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 put / 2 hits / 1 miss", st)
	}
}

func TestMalformedIDsRejected(t *testing.T) {
	_, ts := start(t)
	for _, id := range []string{
		"", "noslash", "UPPER-0123456789abcdef", "kind-123", "kind-0123456789abcdeff",
		"..%2f..%2fetc%2fpasswd-0123456789abcdef", "a/b-0123456789abcdef",
	} {
		resp, err := http.Get(ts.URL + "/artifact/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
			resp.StatusCode != http.StatusMovedPermanently {
			t.Errorf("id %q: status %d, want a rejection", id, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusOK {
			t.Errorf("id %q was served", id)
		}
	}
}

func TestPutGarbageRejected(t *testing.T) {
	srv, ts := start(t)
	key := artifact.KeyOf("garbage", 1)
	url := ts.URL + "/artifact/" + key.ID()
	if resp := put(t, url, []byte("not an entry")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT status %d, want 400", resp.StatusCode)
	}
	// Wrong-version entries are rejected too.
	stale, err := artifact.EncodeEntry(artifact.Entry{
		Version: artifact.Version + 1, Kind: key.Kind, Label: key.Label, Payload: []byte("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := put(t, url, stale); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale-version PUT status %d, want 400", resp.StatusCode)
	}
	if st := srv.Stats(); st.Rejects != 2 || st.Puts != 0 {
		t.Fatalf("stats %+v, want 2 rejects / 0 puts", st)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := start(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"gets", "hits", "misses", "puts", "rejects", "discards"} {
		if _, ok := stats[field]; !ok {
			t.Errorf("stats missing %q: %v", field, stats)
		}
	}
}

func TestBearerTokenAuth(t *testing.T) {
	srv, ts := start(t)
	srv.SetToken("sesame")
	key := artifact.KeyOf("auth", 1)
	entry := encodedEntry(t, key, []byte("payload"))
	url := ts.URL + "/artifact/" + key.ID()

	// Unauthenticated PUT, GET and HEAD are all refused 401.
	if resp := put(t, url, entry); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless PUT status %d, want 401", resp.StatusCode)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless GET status %d, want 401", resp.StatusCode)
	}
	resp, err = http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless HEAD status %d, want 401", resp.StatusCode)
	}

	// A wrong token is refused too.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token GET status %d, want 401", resp.StatusCode)
	}

	// The right token round-trips.
	req, _ = http.NewRequest(http.MethodPut, url, bytes.NewReader(entry))
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("authorized PUT status %d, want 204", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, entry) {
		t.Fatalf("authorized GET status %d", resp.StatusCode)
	}

	// Probes stay open; the refusals were counted.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d", resp.StatusCode)
	}
	if st := srv.Stats(); st.Unauthorized != 4 {
		t.Fatalf("unauthorized count %d, want 4", st.Unauthorized)
	}
}

func TestGzipWire(t *testing.T) {
	srv, ts := start(t)
	// A repetitive payload, like gob output.
	payload := bytes.Repeat([]byte("sweep-curve-payload "), 400)
	key := artifact.KeyOf("zip", 7)
	entry := encodedEntry(t, key, payload)
	url := ts.URL + "/artifact/" + key.ID()

	// Gzip PUT: compressed body with Content-Encoding.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(entry)
	zw.Close()
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(buf.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("gzip PUT status %d, want 204", resp.StatusCode)
	}
	if st := srv.Stats(); st.PutBytes != int64(buf.Len()) {
		t.Fatalf("PutBytes %d, want compressed size %d", st.PutBytes, buf.Len())
	}

	// Plain GET returns the raw entry (stored form is uncompressed).
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept-Encoding", "identity")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(plain, entry) {
		t.Fatal("plain GET did not return the raw entry")
	}

	// Gzip GET: compressed on the wire, identical after expansion.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip GET not gzip-encoded")
	}
	if len(wire) >= len(entry) {
		t.Fatalf("wire bytes %d not smaller than entry %d", len(wire), len(entry))
	}
	zr, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(expanded, entry) {
		t.Fatal("gzip GET payload does not expand to the entry")
	}

	// A corrupt gzip PUT is rejected, not stored.
	req, _ = http.NewRequest(http.MethodPut, url, strings.NewReader("not gzip at all"))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt gzip PUT status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := start(t)
	key := artifact.KeyOf("prom", 3)
	put(t, ts.URL+"/artifact/"+key.ID(), encodedEntry(t, key, []byte("x")))
	resp, err := http.Get(ts.URL + "/artifact/" + key.ID())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE artifactd_gets_total counter",
		"artifactd_gets_total 1",
		"artifactd_puts_total 1",
		"artifactd_hits_total 1",
		"# HELP artifactd_served_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	_ = srv
}

// postClosure issues one POST /closure for ids.
func postClosure(t *testing.T, url string, ids []string, headers map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string][]string{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/closure", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestClosureServesVerifiedEntriesInRequestOrder(t *testing.T) {
	srv, ts := start(t)
	keys := make([]artifact.Key, 3)
	ids := make([]string, 3)
	for i := range keys {
		keys[i] = artifact.KeyOf("cl", map[string]int{"n": i})
		ids[i] = keys[i].ID()
		resp := put(t, ts.URL+"/artifact/"+ids[i], encodedEntry(t, keys[i], []byte{byte(i)}))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed put %d: %d", i, resp.StatusCode)
		}
	}
	// Corrupt the middle entry on disk: it must be silently absent.
	srv.backend.Put(ids[1], []byte("garbage"))

	resp := postClosure(t, ts.URL, []string{ids[2], ids[1], ids[0], ids[0]}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("closure status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := artifact.DecodeClosure(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ID != ids[2] || entries[1].ID != ids[0] {
		t.Fatalf("closure entries: %+v", entries)
	}
	st := srv.Stats()
	if st.ClosureRequests != 1 || st.ClosureServed != 2 || st.Discards != 1 {
		t.Fatalf("closure stats: %+v", st)
	}
}

func TestClosureGzipTransport(t *testing.T) {
	_, ts := start(t)
	key := artifact.KeyOf("clz", map[string]int{"n": 0})
	put(t, ts.URL+"/artifact/"+key.ID(), encodedEntry(t, key, bytes.Repeat([]byte("abc"), 500)))
	resp := postClosure(t, ts.URL, []string{key.ID()}, map[string]string{"Accept-Encoding": "gzip"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("status %d encoding %q", resp.StatusCode, resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := artifact.DecodeClosure(body)
	if err != nil || len(entries) != 1 {
		t.Fatalf("gzip closure: %d entries, err=%v", len(entries), err)
	}
}

func TestClosureRejectsBadRequests(t *testing.T) {
	_, ts := start(t)
	// Malformed id.
	if resp := postClosure(t, ts.URL, []string{"../etc/passwd"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal id: %d", resp.StatusCode)
	}
	// Not JSON.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/closure", strings.NewReader("not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/closure")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET closure: %d", getResp.StatusCode)
	}
}

func TestClosureRequiresToken(t *testing.T) {
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetToken("sekrit")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp := postClosure(t, ts.URL, []string{"a-0000000000000000"}, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless closure: %d", resp.StatusCode)
	}
	ok := postClosure(t, ts.URL, []string{"a-0000000000000000"},
		map[string]string{"Authorization": "Bearer sekrit"})
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("authenticated closure: %d", ok.StatusCode)
	}
}
