//go:build !race

package artifact

// soakKeys is the full soak keyspace: large enough that an unbounded
// store would hold hundreds of MB of distinct scenario renders.
const soakKeys = 1_000_000
