package artifact

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Backend is one persistence tier behind a Store: opaque encoded
// entries (EncodeEntry) addressed by key ID. The store owns the
// encoding and the identity verification; a backend only moves bytes,
// which is what lets the same Store run over a local directory
// (DiskBackend), an artifactd server (httpstore.Client) or a chain of
// both.
//
// Implementations must be safe for concurrent use, and Put must be
// atomic with respect to concurrent Gets of the same id (readers never
// observe a torn entry). Both operations are best-effort: a failed Get
// is a miss and a failed Put is dropped — persistence is an
// optimization, never a correctness requirement.
type Backend interface {
	// Get returns the encoded entry stored under id, or ok=false on a
	// miss (or any failure).
	Get(id string) (data []byte, ok bool)
	// Put publishes the encoded entry under id.
	Put(id string, data []byte)
}

// BulkFetcher is the optional closure-download side of a backend: one
// round trip for many ids instead of a Get per id. Missing or invalid
// ids are simply absent from the result — like Get, the operation is
// best-effort and each returned entry is still verified by the store
// before use. The artifactd network tier implements it over
// POST /closure; a Chain forwards to its first bulk-capable tier.
type BulkFetcher interface {
	FetchAll(ids []string) map[string][]byte
}

// Entry is the self-describing envelope every backend stores: the
// identity that produced a payload travels with the payload, so any
// reader — a warm-starting store, an artifactd server, a remote
// shard — can verify an entry against the key it was addressed by
// without trusting the address.
type Entry struct {
	Version int
	Kind    string
	Label   string
	Payload []byte
}

// Key rebuilds the content key an entry's recorded identity hashes
// to. An entry stored under an id that differs from e.Key().ID() is
// mislabelled (a hash collision, a tampered upload, a renamed file)
// and must be discarded.
func (e Entry) Key() Key { return KeyFromLabel(e.Kind, e.Label) }

// Matches reports whether e is exactly the entry key addresses:
// format version, kind and full label.
func (e Entry) Matches(key Key) bool {
	return e.Version == Version && e.Kind == key.Kind && e.Label == key.Label
}

// EncodeEntry serializes an entry to the gob wire/disk format shared
// by every backend.
func EncodeEntry(e Entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("artifact: encode entry: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEntry parses an encoded entry. Callers must still verify the
// identity (Matches / Key().ID()) before trusting the payload.
func DecodeEntry(b []byte) (Entry, error) {
	var e Entry
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("artifact: decode entry: %w", err)
	}
	return e, nil
}

// chain composes backends into one read-through tier list.
type chain []Backend

// Chain composes tiers into a single Backend: Get tries each tier in
// order and promotes a hit into every tier in front of it (a disk tier
// chained before an HTTP tier therefore warms locally on first read);
// Put publishes to every tier. One tier chains to itself.
func Chain(tiers ...Backend) Backend {
	if len(tiers) == 1 {
		return tiers[0]
	}
	return chain(tiers)
}

func (c chain) Get(id string) ([]byte, bool) {
	for i, t := range c {
		if b, ok := t.Get(id); ok {
			for _, front := range c[:i] {
				front.Put(id, b)
			}
			return b, true
		}
	}
	return nil, false
}

func (c chain) Put(id string, data []byte) {
	for _, t := range c {
		t.Put(id, data)
	}
}

// FetchAll implements BulkFetcher over the chain: cheap front tiers
// are consulted with per-id Gets (they are local), the remaining ids
// go to the first bulk-capable tier in one round trip, and everything
// that tier returns is promoted into the tiers in front of it — the
// same read-through discipline as Get. Without a bulk-capable tier it
// returns nothing: a chain of local directories has no wire round
// trips worth batching.
func (c chain) FetchAll(ids []string) map[string][]byte {
	bulkAt := -1
	for i, t := range c {
		if _, ok := t.(BulkFetcher); ok {
			bulkAt = i
			break
		}
	}
	if bulkAt < 0 {
		return nil
	}
	out := make(map[string][]byte, len(ids))
	remaining := ids
	for i, t := range c {
		if len(remaining) == 0 {
			break
		}
		if i == bulkAt {
			got := t.(BulkFetcher).FetchAll(remaining)
			for id, b := range got {
				out[id] = b
				for _, front := range c[:i] {
					front.Put(id, b)
				}
			}
			break
		}
		var miss []string
		for _, id := range remaining {
			if b, ok := t.Get(id); ok {
				out[id] = b
			} else {
				miss = append(miss, id)
			}
		}
		remaining = miss
	}
	return out
}
