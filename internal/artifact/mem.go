// The bounded memory tier: size-aware LRU eviction with per-kind
// quotas over the store's in-process entry map.
//
// Before this tier existed the memory map only grew — fine for a batch
// run that exits, fatal for a long-lived serving daemon accumulating
// distinct ad-hoc scenario renders until the OS kills it. Now every
// resident entry (and every staged prefetch) is charged its encoded
// byte size plus a fixed bookkeeping overhead, an LRU list orders them
// by last use, and an eviction pass runs after every charge:
//
//   - entries idle longer than MemQuota.MaxAge go first;
//   - any kind family over its MemQuota.Kinds budget sheds its own
//     least-recently-used entries (one hot namespace — a flood of
//     ad-hoc scenario renders — can never starve the profiles and
//     dataset content everything else needs);
//   - then the global MemQuota.MaxBytes bound evicts strictly LRU.
//
// Eviction is byte-invisible: every artefact in the store is a
// deterministic function of its key, so an evicted entry re-fetched
// from the persistence backend or recomputed serves byte-identical
// output (TestEvictionByteInvisible proves it differentially against
// an unbounded store). The singleflight invariants survive because
// only *completed* fills are ever charged — an in-flight fill has no
// LRU node and therefore cannot be evicted — and eviction only unhooks
// an entry from the map: waiters already holding the entry pointer
// still read its immutable val/err.
package artifact

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MemQuota bounds a store's in-process memory tier. The zero value is
// unbounded (the pre-quota behavior). All bounds cover the charged
// size: encoded payload bytes plus memEntryOverhead per entry.
type MemQuota struct {
	// MaxBytes caps the total charged bytes resident in memory
	// (entries of every kind plus staged prefetch bytes). 0 = no cap.
	MaxBytes int64
	// MaxAge evicts entries idle (not read or written) longer than
	// this on the next eviction pass or SweepMem call. 0 = no age
	// bound.
	MaxAge time.Duration
	// Kinds caps individual kind families by name prefix: a quota
	// under name q covers every kind equal to q or prefixed by it
	// ("profile" covers "profile" and "profile-set"; "datagen" covers
	// every datagen-* content kind; "scenario-render" covers exactly
	// the ad-hoc scenario renders). Longest-prefix semantics are not
	// needed — each quota is enforced independently over the kinds it
	// matches.
	Kinds map[string]int64
}

// Enabled reports whether q bounds anything.
func (q MemQuota) Enabled() bool {
	return q.MaxBytes > 0 || q.MaxAge > 0 || len(q.Kinds) > 0
}

func (q MemQuota) String() string {
	var parts []string
	if q.MaxBytes > 0 {
		parts = append(parts, fmt.Sprintf("%dB", q.MaxBytes))
	}
	if q.MaxAge > 0 {
		parts = append(parts, q.MaxAge.String())
	}
	kinds := make([]string, 0, len(q.Kinds))
	for k := range q.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%dB", k, q.Kinds[k]))
	}
	if len(parts) == 0 {
		return "unbounded"
	}
	return strings.Join(parts, ",")
}

// ParseQuotaSpec parses the CLIs' -mem-quota flag with the same
// grammar as ParseGCSpec plus per-kind bounds: comma-separated parts,
// each either a bare size ("256MB") capping total resident bytes, a
// bare duration ("30m", "2h", "1d") capping entry idle age, or
// kind=size ("scenario-render=64MB", "datagen=96MB") capping one kind
// family. One global size and one age at most; at least one bound
// overall.
func ParseQuotaSpec(spec string) (MemQuota, error) {
	var q MemQuota
	if strings.TrimSpace(spec) == "" {
		return q, fmt.Errorf("empty mem-quota spec (want e.g. %q, %q or %q)",
			"256MB", "256MB,30m", "256MB,scenario-render=64MB")
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if kind, val, ok := strings.Cut(part, "="); ok {
			kind = strings.TrimSpace(kind)
			if kind == "" {
				return MemQuota{}, fmt.Errorf("mem-quota part %q names no kind", part)
			}
			n, err := parseSize(val)
			if err != nil || n <= 0 {
				return MemQuota{}, fmt.Errorf("mem-quota part %q: kind bound must be a positive size (64MB)", part)
			}
			if _, dup := q.Kinds[kind]; dup {
				return MemQuota{}, fmt.Errorf("mem-quota spec %q bounds kind %q twice", spec, kind)
			}
			if q.Kinds == nil {
				q.Kinds = map[string]int64{}
			}
			q.Kinds[kind] = n
			continue
		}
		if d, err := parseAge(part); err == nil {
			if q.MaxAge != 0 {
				return MemQuota{}, fmt.Errorf("mem-quota spec %q sets the age bound twice", spec)
			}
			if d <= 0 {
				return MemQuota{}, fmt.Errorf("mem-quota spec %q: age bound must be positive", spec)
			}
			q.MaxAge = d
			continue
		}
		if n, err := parseSize(part); err == nil {
			if q.MaxBytes != 0 {
				return MemQuota{}, fmt.Errorf("mem-quota spec %q sets the size bound twice", spec)
			}
			if n <= 0 {
				return MemQuota{}, fmt.Errorf("mem-quota spec %q: size bound must be positive", spec)
			}
			q.MaxBytes = n
			continue
		}
		return MemQuota{}, fmt.Errorf("mem-quota part %q is neither a size (256MB), a duration (30m) nor kind=size (datagen=96MB)", part)
	}
	return q, nil
}

// kindInQuota reports whether kind falls under the quota named q:
// exact match or prefix ("profile" covers "profile-set", "datagen"
// covers "datagen-text").
func kindInQuota(kind, q string) bool {
	return kind == q || strings.HasPrefix(kind, q)
}

// memEntryOverhead approximates the per-entry bookkeeping a resident
// artefact costs beyond its payload: the map slot, the entry and node
// structs, and the interface header. Charging it keeps a flood of
// tiny entries (or cached deterministic errors) bounded too — a
// million empty entries is still gigabytes of map.
const memEntryOverhead = 256

// memFallbackBytes is the charge for a value the gob codec cannot
// size (live Workload lists, samplers — the GetMem-only artefacts).
// These are bounded-count by construction (keyed by roster set or
// generator config, not by ad-hoc request), so an estimate is enough
// to keep the books honest.
const memFallbackBytes = 1 << 12

// memNode is one charged resident: either a completed entry (e != nil)
// or staged prefetch bytes (data != nil). Nodes live on the store's
// LRU list, most recently used at the head. All fields are guarded by
// Store.mu.
type memNode struct {
	id   string // entries: memID(key); prefetched: key.ID()
	kind string
	size int64
	last int64 // UnixNano of last touch
	prev *memNode
	next *memNode
	e    *entry
	data []byte
}

// SetMemQuota installs (or replaces) the memory-tier bounds and runs
// an immediate eviction pass. Safe to call concurrently with fills,
// though callers normally set it once right after construction.
func (s *Store) SetMemQuota(q MemQuota) {
	s.mu.Lock()
	s.quota = q
	s.evictLocked(time.Now().UnixNano())
	s.mu.Unlock()
}

// MemQuota returns the installed memory-tier bounds.
func (s *Store) MemQuota() MemQuota {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota
}

// SweepMem runs one eviction pass now — the hook a long-lived daemon
// ticks to apply MemQuota.MaxAge to an idle store (charges trigger
// passes on their own, but an idle store receives no charges).
func (s *Store) SweepMem() {
	s.mu.Lock()
	s.evictLocked(time.Now().UnixNano())
	s.mu.Unlock()
}

// touchLocked moves n to the LRU head and stamps its last use.
func (s *Store) touchLocked(n *memNode, now int64) {
	n.last = now
	if s.lruHead == n {
		return
	}
	s.unlinkLocked(n)
	s.linkFrontLocked(n)
}

func (s *Store) linkFrontLocked(n *memNode) {
	n.prev = nil
	n.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = n
	}
	s.lruHead = n
	if s.lruTail == nil {
		s.lruTail = n
	}
}

func (s *Store) unlinkLocked(n *memNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
}

// chargeLocked admits n as a resident: onto the LRU head, into the
// books, then an eviction pass to restore the bounds. Caller holds
// s.mu and has already published n's referent (map entry or staged
// bytes).
func (s *Store) chargeLocked(n *memNode, now int64) {
	n.last = now
	s.linkFrontLocked(n)
	s.resident += n.size
	s.residentN++
	if s.kindBytes == nil {
		s.kindBytes = map[string]int64{}
	}
	s.kindBytes[n.kind] += n.size
	s.evictLocked(now)
}

// unchargeLocked removes n from the books without counting an
// eviction — the consumption path (takePrefetched) and the eviction
// path share it.
func (s *Store) unchargeLocked(n *memNode) {
	s.unlinkLocked(n)
	s.resident -= n.size
	s.residentN--
	if s.kindBytes[n.kind] -= n.size; s.kindBytes[n.kind] <= 0 {
		delete(s.kindBytes, n.kind)
	}
}

// evictNodeLocked evicts one resident: unhook it from the map it
// lives in and from the books. An evicted entry is only unhooked —
// goroutines already holding the *entry still read its immutable
// val/err; the next Get for the key starts a fresh fill.
func (s *Store) evictNodeLocked(n *memNode) {
	s.unchargeLocked(n)
	if n.e != nil {
		n.e.node = nil
		if s.entries[n.id] == n.e {
			delete(s.entries, n.id)
		}
	} else {
		delete(s.prefetched, n.id)
	}
	s.evictions++
	s.evictedBytes += n.size
	if s.kindEvicts == nil {
		s.kindEvicts = map[string]int64{}
	}
	s.kindEvicts[n.kind]++
	// Publishing under s.mu is safe: the bus takes only its own locks
	// and nothing in it calls back into the store.
	if s.eventsActive() {
		s.events.Event("eviction", map[string]any{"kind": n.kind, "bytes": n.size})
	}
}

// evictLocked restores every installed bound: age expiry first, then
// per-kind quotas (each sheds only its own kinds), then the global
// byte budget, all strictly least-recently-used first. In-flight
// fills are untouchable by construction — they have no node until
// they complete.
func (s *Store) evictLocked(now int64) {
	q := s.quota
	if q.MaxAge > 0 {
		cutoff := now - int64(q.MaxAge)
		for n := s.lruTail; n != nil && n.last < cutoff; {
			prev := n.prev
			s.evictNodeLocked(n)
			n = prev
		}
	}
	for qk, limit := range q.Kinds {
		used := int64(0)
		for kind, b := range s.kindBytes {
			if kindInQuota(kind, qk) {
				used += b
			}
		}
		for n := s.lruTail; n != nil && used > limit; {
			prev := n.prev
			if kindInQuota(n.kind, qk) {
				used -= n.size
				s.evictNodeLocked(n)
			}
			n = prev
		}
	}
	if q.MaxBytes > 0 {
		for s.lruTail != nil && s.resident > q.MaxBytes {
			s.evictNodeLocked(s.lruTail)
		}
	}
}

// kindOfID recovers the kind from a key ID ("kind-16hexhash") — the
// only identity a staged prefetch entry carries before it is decoded.
func kindOfID(id string) string {
	if i := strings.LastIndex(id, "-"); i > 0 {
		return id[:i]
	}
	return id
}

// nowNanos is the memory tier's clock: wall nanos, read outside any
// hot loop (once per charge or touch).
func nowNanos() int64 { return time.Now().UnixNano() }
