// Package linalg provides the small dense linear algebra kit behind
// the WCRT analyzer: matrices, covariance, and a symmetric Jacobi
// eigensolver for the principal component analysis of §3.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero r-by-c matrix.
func NewMatrix(r, c int) *Matrix {
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch %d != %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Covariance returns the sample covariance matrix of the rows of X
// (observations in rows, variables in columns).
func Covariance(x *Matrix) *Matrix {
	n, d := x.Rows, x.Cols
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	denom := float64(n - 1)
	if denom <= 0 {
		denom = 1
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			for b := a; b < d; b++ {
				cov.Data[a*d+b] += da * (row[b] - mean[b])
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.Data[a*d+b] / denom
			cov.Data[a*d+b] = v
			cov.Data[b*d+a] = v
		}
	}
	return cov
}

// EigenSym computes the eigenvalues and eigenvectors of a symmetric
// matrix with the cyclic Jacobi method. It returns the eigenvalues in
// descending order and the corresponding eigenvectors as the COLUMNS
// of the returned matrix.
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigenSym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, cos*akp-sin*akq)
					w.Set(k, q, sin*akp+cos*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, cos*apk-sin*aqk)
					w.Set(q, k, sin*apk+cos*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, cos*vkp-sin*vkq)
					v.Set(k, q, sin*vkp+cos*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (stable selection).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for i, oi := range order {
		sortedVals[i] = vals[oi]
		for k := 0; k < n; k++ {
			sortedVecs.Set(k, i, v.At(k, oi))
		}
	}
	return sortedVals, sortedVecs, nil
}
