package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randSym(n int, seed uint64) *Matrix {
	r := xrand.New(seed)
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenReconstruction(t *testing.T) {
	a := randSym(8, 1)
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// A v_i = lambda_i v_i for each eigenpair.
	for k := 0; k < 8; k++ {
		v := make([]float64, 8)
		for i := range v {
			v[i] = vecs.At(i, k)
		}
		av, err := a.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-8 {
				t.Fatalf("eigenpair %d: (Av)[%d]=%v != lambda*v=%v", k, i, av[i], vals[k]*v[i])
			}
		}
	}
}

func TestEigenOrthonormal(t *testing.T) {
	f := func(seed uint64) bool {
		a := randSym(6, seed)
		_, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				dot := 0.0
				for k := 0; k < 6; k++ {
					dot += vecs.At(k, i) * vecs.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenValuesDescending(t *testing.T) {
	vals, _, err := EigenSym(randSym(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending at %d: %v > %v", i, vals[i], vals[i-1])
		}
	}
}

func TestEigenTraceInvariant(t *testing.T) {
	a := randSym(9, 3)
	trace := 0.0
	for i := 0; i < 9; i++ {
		trace += a.At(i, i)
	}
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-8 {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, trace)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	x := NewMatrix(3, 2)
	for i, v := range []float64{1, 2, 3} {
		x.Set(i, 0, v)
		x.Set(i, 1, 2*v)
	}
	c := Covariance(x)
	if math.Abs(c.At(0, 0)-1) > 1e-12 {
		t.Fatalf("var(x0) = %v, want 1", c.At(0, 0))
	}
	if math.Abs(c.At(0, 1)-2) > 1e-12 {
		t.Fatalf("cov = %v, want 2", c.At(0, 1))
	}
	if math.Abs(c.At(1, 1)-4) > 1e-12 {
		t.Fatalf("var(x1) = %v, want 4", c.At(1, 1))
	}
}

func TestCovarianceSymmetricPSD(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		x := NewMatrix(20, 5)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		c := Covariance(x)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if math.Abs(c.At(i, j)-c.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		vals, _, err := EigenSym(c)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecDimensionError(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch not reported")
	}
}

func TestEigenNonSquareError(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix not rejected")
	}
}
