package workloads

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

// linesPerSplit groups lines into ~64 KB HDFS-block-sized splits, the
// K-V record granularity of the paper's Table 2 Wikipedia entries.
const linesPerSplit = 700

// WordCount counts word occurrences: scan, tokenize, hash-aggregate,
// emitting one intermediate pair per token ("a fundamental operation
// for big data statistics analytics" — Table 2).
type WordCount struct {
	Cfg datagen.TextConfig
}

// Name implements Kernel.
func (k *WordCount) Name() string { return "WordCount" }

// Run implements Kernel.
func (k *WordCount) Run(c *Ctx) {
	t := datagen.NewText(c.L, k.Cfg)
	tbl := newHashTable(c.L, k.Cfg.Vocab*2)
	e, rt := c.E, c.RT
	// Hadoop WordCount runs a map-side combiner, so its intermediate
	// volume is the distinct-word set (Table 2: Inter<<Input); Spark
	// 1.0's groupByKey shuffles every pair (Inter<Input... up to ~2x).
	combiner := rt.D.Name != "Spark"
	lineTop := e.Here() // the map() entry: every record starts here
	for e.OK() {
		for li := 0; li < len(t.Lines) && e.OK(); li++ {
			if li%linesPerSplit == 0 {
				rt.TaskStart()
			}
			sp := t.Lines[li]
			rt.ReadRecord(sp.Len())
			c.InBytes += uint64(sp.Len())
			c.Records++
			scanBytes(e, t.Base, sp.Start, sp.End, e.Fixed(1))
			wordTop := e.Here()
			for wi, id := range t.WordIDs[li] {
				fresh := tbl.add(e, int64(id), 1)
				if fresh {
					c.OutBytes += 12 // new distinct word in final output
				}
				rt.EmitKV(12)
				if !combiner || fresh {
					c.InterBytes += 12
				}
				e.Loop(wordTop, wi+1 < len(t.WordIDs[li]), e.Fixed(1))
			}
			e.Loop(lineTop, li+1 < len(t.Lines), e.Fixed(1))
		}
	}
}

// Grep searches for lines matching a pattern; the match rate is low so
// output is a tiny fraction of input and almost no framework emission
// happens — which is what makes H-Grep CPU-intensive in Table 2.
type Grep struct {
	Cfg datagen.TextConfig
	// MatchID is the vocabulary id treated as the pattern; DefaultWiki
	// vocabularies make it a mid-frequency word.
	MatchID int32
}

// Name implements Kernel.
func (k *Grep) Name() string { return "Grep" }

// Run implements Kernel.
func (k *Grep) Run(c *Ctx) {
	t := datagen.NewText(c.L, k.Cfg)
	e, rt := c.E, c.RT
	lineTop := e.Here()
	for e.OK() {
		for li := 0; li < len(t.Lines) && e.OK(); li++ {
			if li%linesPerSplit == 0 {
				rt.TaskStart()
			}
			sp := t.Lines[li]
			rt.ReadRecord(sp.Len())
			c.InBytes += uint64(sp.Len())
			c.Records++
			// memchr-style first-byte scan over the record, then a
			// short verify per candidate word — the Boyer-Moore-ish
			// shape of grep.
			scanBytes(e, t.Base, sp.Start, sp.End, e.Fixed(1))
			matched := false
			words := t.WordIDs[li]
			off := sp.Start
			for wi := 0; wi < len(words); wi += 2 {
				// Candidate filter per pair of words (the scan above
				// already classified bytes; this is the table check).
				id := words[wi]
				cand := id&0x3F == k.MatchID&0x3F
				v := e.Int(isa.IntAlu, e.Fixed(1), isa.NoReg)
				e.Branch(cand, v)
				if cand {
					// verify: compare whole word
					w := e.Load(t.AddrOf(off), 8, isa.NoReg)
					eq := id == k.MatchID
					e.Branch(eq, w)
					if eq {
						matched = true
					}
				}
				off += 13
				if off >= sp.End {
					off = sp.Start
				}
			}
			if matched {
				rt.EmitKV(sp.Len())
				c.OutBytes += uint64(sp.Len())
			}
			e.Loop(lineTop, li+1 < len(t.Lines), e.Fixed(1))
		}
	}
}

// Sort orders records by key; the merge passes stream loads/stores
// with data-dependent comparison branches. Output=Input and
// Intermediate=Input (Table 2).
type Sort struct {
	Cfg datagen.TextConfig
}

// Name implements Kernel.
func (k *Sort) Name() string { return "Sort" }

// Run implements Kernel.
func (k *Sort) Run(c *Ctx) {
	t := datagen.NewText(c.L, k.Cfg)
	n := len(t.Lines)
	aBase := c.L.AllocArray(n, 8)
	bBase := c.L.AllocArray(n, 8)
	e, rt := c.E, c.RT
	c.CPUWeight = 2.5 // full-scale sorts run more merge passes
	for e.OK() {
		// Map phase: read each record, emit (key, record) to shuffle.
		keys := make([]int64, n)
		mapTop := e.Here()
		for li := 0; li < n && e.OK(); li++ {
			if li%linesPerSplit == 0 {
				rt.TaskStart()
			}
			sp := t.Lines[li]
			rt.ReadRecord(sp.Len())
			c.InBytes += uint64(sp.Len())
			c.Records++
			v := e.Load(t.AddrOf(sp.Start), 8, isa.NoReg)
			h := e.Int(isa.IntMul, v, isa.NoReg)
			storeIdx(e, aBase, li, 8, h)
			if len(t.WordIDs[li]) > 0 {
				// Key = leading word: heavily duplicated under the
				// Zipfian vocabulary, like real text sort keys, which
				// makes merge comparisons partially predictable.
				keys[li] = int64(t.WordIDs[li][0])
			}
			rt.EmitKV(sp.Len())
			c.InterBytes += uint64(sp.Len())
			e.Loop(mapTop, li+1 < n, h)
		}
		// Shuffle + reduce-side merge sort.
		rt.Shuffle(int(c.InterBytes) / 4)
		mergeSortEmit(e, keys, aBase, bBase)
		// Reduce output: one writer emission per run of records.
		for li := 0; li < n && e.OK(); li += 16 {
			rt.EmitKV(t.Lines[li].Len() * 16)
		}
		c.OutBytes = c.InBytes
	}
}

// NaiveBayes classifies text records against per-class word
// log-probability tables ("a simple but widely used probabilistic
// classifier" — Table 2). The tables are FP arrays, so its integer mix
// leans to FP address calculation.
type NaiveBayes struct {
	Cfg     datagen.TextConfig
	Classes int
}

// Name implements Kernel.
func (k *NaiveBayes) Name() string { return "NaiveBayes" }

// Run implements Kernel.
func (k *NaiveBayes) Run(c *Ctx) {
	classes := k.Classes
	if classes <= 0 {
		classes = 5
	}
	rv := datagen.NewReviews(c.L, k.Cfg, classes)
	t := rv.Text
	// Model: vocab x classes float64 log-probabilities.
	logp := make([]float64, t.Vocab*classes)
	r := xrand.New(0xBA1E5)
	for i := range logp {
		logp[i] = -1 - 8*r.Float64()
	}
	probBase := c.L.AllocArray(len(logp), 8)
	priors := make([]float64, classes)
	for i := range priors {
		priors[i] = -1.6
	}
	e, rt := c.E, c.RT
	lineTop := e.Here()
	for e.OK() {
		for li := 0; li < len(t.Lines) && e.OK(); li++ {
			if li%linesPerSplit == 0 {
				rt.TaskStart()
			}
			sp := t.Lines[li]
			rt.ReadRecord(sp.Len())
			c.InBytes += uint64(sp.Len())
			c.Records++
			scanBytes(e, t.Base, sp.Start, sp.End, e.Fixed(1))
			// Accumulate per-class scores.
			score := make([]float64, classes)
			copy(score, priors)
			accs := [5]isa.Reg{e.Fixed(2), e.Fixed(3), e.Fixed(4), e.Fixed(5), e.Fixed(6)}
			words := t.WordIDs[li]
			wordTop := e.Here()
			for wi, id := range words {
				classTop := e.Here()
				for cl := 0; cl < classes; cl++ {
					v := loadFPIdx(e, probBase, int(id)*classes+cl, 8, isa.NoReg)
					e.FPTo(accs[cl%5], isa.FPArith, accs[cl%5], v)
					score[cl] += logp[int(id)*classes+cl]
					e.Loop(classTop, cl+1 < classes, v)
				}
				e.Loop(wordTop, wi+1 < len(words), e.Fixed(1))
			}
			// Argmax with data-dependent comparison branches.
			best := 0
			for cl := 1; cl < classes; cl++ {
				gt := score[cl] > score[best]
				e.FP(isa.FPArith, accs[cl%5], accs[(cl-1)%5])
				e.Branch(gt, isa.NoReg)
				if gt {
					best = cl
				}
			}
			rt.EmitKV(6)
			c.OutBytes += 6
			_ = best
			e.Loop(lineTop, li+1 < len(t.Lines), e.Fixed(1))
		}
	}
}

// Index builds an inverted index: tokenization plus posting-list
// appends (sequential stores into per-word lists).
type Index struct {
	Cfg datagen.TextConfig
}

// Name implements Kernel.
func (k *Index) Name() string { return "Index" }

// Run implements Kernel.
func (k *Index) Run(c *Ctx) {
	t := datagen.NewText(c.L, k.Cfg)
	postBase := c.L.AllocArray(k.Cfg.Vocab*64, 8)
	postLen := make([]int32, k.Cfg.Vocab)
	tbl := newHashTable(c.L, k.Cfg.Vocab*2)
	e, rt := c.E, c.RT
	lineTop := e.Here()
	for e.OK() {
		for li := 0; li < len(t.Lines) && e.OK(); li++ {
			if li%linesPerSplit == 0 {
				rt.TaskStart()
			}
			sp := t.Lines[li]
			rt.ReadRecord(sp.Len())
			c.InBytes += uint64(sp.Len())
			c.Records++
			scanBytes(e, t.Base, sp.Start, sp.End, e.Fixed(1))
			words := t.WordIDs[li]
			wordTop := e.Here()
			for wi, id := range words {
				tbl.add(e, int64(id), 1)
				// Append (docID) to the word's posting list.
				slot := int(id)*64 + int(postLen[id]%60)
				storeIdx(e, postBase, slot, 8, e.Fixed(1))
				postLen[id]++
				rt.EmitKV(8)
				c.InterBytes += 8
				c.OutBytes += 8
				e.Loop(wordTop, wi+1 < len(words), e.Fixed(1))
			}
			e.Loop(lineTop, li+1 < len(t.Lines), e.Fixed(1))
		}
	}
}
