package workloads

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
)

// KMeans clusters dense points; its inner loop is the paper's
// Algorithm 1: for each point, compute the distance to every center
// and keep the minimum — a small basic block full of conditional
// judgements, plus FP-array loads whose address arithmetic retires as
// the "FP address" integer class. The fixed trip count of the centers
// loop is exactly what the E5645's loop predictor captures and the
// D510's two-level predictor does not (Table 4).
type KMeans struct {
	N, Dim, K int
	Seed      uint64
}

// Name implements Kernel.
func (k *KMeans) Name() string { return "KMeans" }

// Run implements Kernel.
func (k *KMeans) Run(c *Ctx) {
	n, dim, kk := k.N, k.Dim, k.K
	if n == 0 {
		n, dim, kk = 20000, 8, 16
	}
	p := datagen.NewPoints(c.L, k.Seed^0x4B4D, n, dim, kk)
	cent := make([]float64, kk*dim)
	for i := range cent {
		cent[i] = float64(p.X[(i*7919)%len(p.X)])
	}
	assign := make([]int32, n)
	e, rt := c.E, c.RT
	c.CPUWeight = 15 // typical k-means iteration count at scale
	firstPass := true
	pointTop := e.Here()
	for e.OK() {
		rt.IterStart()
		for i := 0; i < n && e.OK(); i++ {
			if firstPass && i%2048 == 0 {
				rt.TaskStart()
			}
			if firstPass {
				rt.ReadRecord(dim * 4)
				c.Records++
				c.InBytes += uint64(dim * 4)
			}
			minDis := 1e300
			best := int32(0)
			acc := e.Fixed(1)
			acc2 := e.Fixed(2)
			centersTop := e.Here()
			for ci := 0; ci < kk; ci++ {
				// dis = ComputeDist(instance, centers[ci]); two
				// independent accumulators, as compiled SSE code keeps.
				var dis float64
				for d := 0; d < dim; d += 2 {
					a := loadFPIdx(e, p.Base, i*dim+d, 4, isa.NoReg)
					b := loadFPIdx(e, p.CentBase, ci*dim+d, 4, isa.NoReg)
					df := e.FP(isa.FPArith, a, b) // sub
					if d%4 == 0 {
						e.FPTo(acc, isa.FPArith, acc, df)
					} else {
						e.FPTo(acc2, isa.FPArith, acc2, df)
					}
					e.Int(isa.IntAlu, df, isa.NoReg) // index/bounds
					x := float64(p.X[i*dim+d]) - cent[ci*dim+d]
					y := float64(p.X[i*dim+d+1]) - cent[ci*dim+d+1]
					dis += x*x + y*y
				}
				sum := e.FP(isa.FPArith, acc, acc2)
				lt := dis < minDis
				e.Branch(lt, sum) // if dis < minDis (Algorithm 1 line 6)
				if lt {
					minDis = dis
					best = int32(ci)
				}
				e.Loop(centersTop, ci+1 < kk, acc)
			}
			assign[i] = best
			storeIdx(e, p.AssignBase, i, 4, acc)
			if firstPass {
				c.InterBytes += uint64(dim * 4)
			}
			e.Loop(pointTop, i+1 < n, acc)
		}
		// Center recomputation (streaming pass over the centroids).
		recompTop := e.Here()
		for ci := 0; ci < kk*dim && e.OK(); ci += 4 {
			v := loadFPIdx(e, p.CentBase, ci, 8, isa.NoReg)
			e.FPTo(e.Fixed(3), isa.FPArith, e.Fixed(3), v)
			storeFPIdx(e, p.CentBase, ci, 8, v)
			e.Loop(recompTop, ci+4 < kk*dim, v)
		}
		rt.Shuffle(kk * dim * 8)
		c.OutBytes = c.InBytes // cluster-tagged points
		firstPass = false
	}
}

// PageRank iterates rank propagation over a CSR web graph: sequential
// edge streaming with scattered accumulations into the next-rank
// array, and a divide per vertex ("used by Google to score the
// importance of the web page" — Table 2). Output>Input because ranks
// are emitted every iteration.
type PageRank struct {
	Cfg datagen.GraphConfig
}

// Name implements Kernel.
func (k *PageRank) Name() string { return "PageRank" }

// Run implements Kernel.
func (k *PageRank) Run(c *Ctx) {
	g := datagen.NewGraph(c.L, k.Cfg)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1 / float64(g.N)
	}
	e, rt := c.E, c.RT
	c.CPUWeight = 15 // PageRank iterations to convergence at scale
	firstPass := true
	vertTop := e.Here()
	for e.OK() {
		rt.IterStart()
		for v := 0; v < g.N && e.OK(); v++ {
			if firstPass && v%4096 == 0 {
				rt.TaskStart()
			}
			if firstPass {
				c.Records++
				c.InBytes += uint64(g.Off[v+1]-g.Off[v])*4 + 12
			}
			lo := loadIdx(e, g.OffBase, v, 4, isa.NoReg)
			hi := loadIdx(e, g.OffBase, v+1, 4, isa.NoReg)
			rv := loadFPIdx(e, g.RankBase, v, 8, isa.NoReg)
			deg := int(g.Off[v+1] - g.Off[v])
			e.Int(isa.IntAlu, lo, hi)
			contrib := e.FP(isa.FPDiv, rv, isa.NoReg) // rank/deg
			share := 0.0
			if deg > 0 {
				share = rank[v] / float64(deg)
			}
			edgeTop := e.Here()
			for ei := g.Off[v]; ei < g.Off[v+1] && e.OK(); ei++ {
				tgt := loadIdx(e, g.AdjBase, int(ei), 4, contrib)
				t := int(g.Adj[ei])
				old := loadFPIdx(e, g.NextBase, t, 8, tgt)
				s := e.FPTo(old, isa.FPArith, old, contrib)
				storeFPIdx(e, g.NextBase, t, 8, s)
				next[t] += share
				// PageRank-on-a-data-flow-engine emits one (target,
				// contribution) pair per edge into the shuffle.
				rt.EmitKV(12)
				e.Loop(edgeTop, ei+1 < g.Off[v+1], tgt)
			}
			e.Loop(vertTop, v+1 < g.N, contrib)
		}
		// Swap + damping pass.
		swapTop := e.Here()
		for v := 0; v < g.N && e.OK(); v += 4 {
			nv := loadFPIdx(e, g.NextBase, v, 8, isa.NoReg)
			d := e.FP(isa.FPArith, nv, isa.NoReg)
			storeFPIdx(e, g.RankBase, v, 8, d)
			e.Loop(swapTop, v+4 < g.N, d)
		}
		for v := range next {
			rank[v] = 0.15/float64(g.N) + 0.85*next[v]
			next[v] = 0
		}
		rt.Shuffle(g.N * 8)
		c.InterBytes += uint64(g.N * 8)
		c.OutBytes += uint64(g.N * 12)
		firstPass = false
	}
}

// BFS performs level-synchronous breadth-first search over the graph
// (frontier queue + visited bitmap: irregular loads, very branchy).
type BFS struct {
	Cfg datagen.GraphConfig
}

// Name implements Kernel.
func (k *BFS) Name() string { return "BFS" }

// Run implements Kernel.
func (k *BFS) Run(c *Ctx) {
	g := datagen.NewGraph(c.L, k.Cfg)
	visitedBase := c.L.AllocArray(g.N, 1)
	frontierBase := c.L.AllocArray(g.N, 4)
	e, rt := c.E, c.RT
	root := 0
	firstPass := true
	for e.OK() {
		rt.TaskStart()
		visited := make([]bool, g.N)
		frontier := []int32{int32(root)}
		visited[root] = true
		for len(frontier) > 0 && e.OK() {
			var nextF []int32
			for _, v := range frontier {
				if !e.OK() {
					break
				}
				c.Records++
				if firstPass {
					c.InBytes += uint64(g.Off[v+1]-g.Off[v])*4 + 8
				}
				loadIdx(e, frontierBase, int(v)%g.N, 4, isa.NoReg)
				edgeTop := e.Here()
				for ei := g.Off[v]; ei < g.Off[v+1]; ei++ {
					t := g.Adj[ei]
					tv := loadIdx(e, g.AdjBase, int(ei), 4, isa.NoReg)
					vis := loadIdx(e, visitedBase, int(t), 1, tv)
					seen := visited[t]
					e.Branch(seen, vis) // visited test: data-dependent
					if !seen {
						visited[t] = true
						storeIdx(e, visitedBase, int(t), 1, vis)
						nextF = append(nextF, t)
						c.InterBytes += 4
					}
					e.Loop(edgeTop, ei+1 < g.Off[v+1], tv)
				}
			}
			frontier = nextF
			rt.Shuffle(len(frontier) * 4)
		}
		c.OutBytes += uint64(g.N * 4)
		root = (root + 17) % g.N
		firstPass = false
	}
}

// ConnectedComponents runs label propagation until stable: like
// PageRank's traffic but with integer min-label compares.
type ConnectedComponents struct {
	Cfg datagen.GraphConfig
}

// Name implements Kernel.
func (k *ConnectedComponents) Name() string { return "ConnectedComponents" }

// Run implements Kernel.
func (k *ConnectedComponents) Run(c *Ctx) {
	g := datagen.NewGraph(c.L, k.Cfg)
	labelBase := c.L.AllocArray(g.N, 4)
	label := make([]int32, g.N)
	for i := range label {
		label[i] = int32(i)
	}
	e, rt := c.E, c.RT
	c.CPUWeight = 10 // label-propagation rounds at scale
	firstPass := true
	vertTop := e.Here()
	for e.OK() {
		rt.IterStart()
		changed := false
		for v := 0; v < g.N && e.OK(); v++ {
			c.Records++
			if firstPass {
				c.InBytes += uint64(g.Off[v+1]-g.Off[v])*4 + 8
			}
			loadIdx(e, labelBase, v, 4, isa.NoReg)
			edgeTop := e.Here()
			for ei := g.Off[v]; ei < g.Off[v+1] && e.OK(); ei++ {
				t := int(g.Adj[ei])
				tv := loadIdx(e, g.AdjBase, int(ei), 4, isa.NoReg)
				lt := loadIdx(e, labelBase, t, 4, tv)
				smaller := label[t] < label[v]
				e.Branch(smaller, lt)
				if smaller {
					label[v] = label[t]
					storeIdx(e, labelBase, v, 4, lt)
					changed = true
				}
				e.Loop(edgeTop, ei+1 < g.Off[v+1], tv)
			}
			e.Loop(vertTop, v+1 < g.N, isa.NoReg)
		}
		rt.Shuffle(g.N * 4)
		c.InterBytes += uint64(g.N * 4)
		firstPass = false
		if !changed {
			c.OutBytes = uint64(g.N * 8)
		}
	}
	if c.OutBytes == 0 {
		c.OutBytes = uint64(g.N * 8)
	}
}

// CollabFilter is an item-based collaborative-filtering scoring pass
// (sparse dot products over a ratings matrix).
type CollabFilter struct {
	Users, Items int
	Seed         uint64
}

// Name implements Kernel.
func (k *CollabFilter) Name() string { return "CollabFilter" }

// Run implements Kernel.
func (k *CollabFilter) Run(c *Ctx) {
	users, items := k.Users, k.Items
	if users == 0 {
		users, items = 4000, 2000
	}
	perUser := 24
	ratingsBase := c.L.AllocArray(users*perUser, 8)
	scoreBase := c.L.AllocArray(items, 8)
	e, rt := c.E, c.RT
	userTop := e.Here()
	for e.OK() {
		for u := 0; u < users && e.OK(); u++ {
			if u%1024 == 0 {
				rt.TaskStart()
			}
			rt.ReadRecord(perUser * 8)
			c.Records++
			c.InBytes += uint64(perUser * 8)
			acc := e.Fixed(1)
			dotTop := e.Here()
			for r := 0; r < perUser; r++ {
				it := (u*31 + r*17) % items
				rv := loadFPIdx(e, ratingsBase, u*perUser+r, 8, isa.NoReg)
				sv := loadFPIdx(e, scoreBase, it, 8, rv)
				m := e.FP(isa.FPArith, rv, sv)
				e.FPTo(acc, isa.FPArith, acc, m)
				e.Loop(dotTop, r+1 < perUser, m)
			}
			storeFPIdx(e, scoreBase, u%items, 8, acc)
			rt.EmitKV(16)
			c.InterBytes += 16
			e.Loop(userTop, u+1 < users, acc)
		}
		c.OutBytes = uint64(items * 16)
	}
}
