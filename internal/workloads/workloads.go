// Package workloads implements the big data workloads of the paper:
// the algorithm kernels (WordCount, Grep, Sort, K-means, PageRank,
// Naive Bayes, the relational operators, the TPC-DS queries, the cloud
// OLTP operations and the graph kernels), the 77-workload
// BigDataBench-3.0-like roster they combine into, the 17 representative
// workloads of Table 2, and the six MPI re-implementations of §5.5.
//
// A workload = an algorithm kernel x a software stack x a dataset.
// Kernels do their real computation on generated data and narrate the
// machine-level work through the trace.Emitter; the stack model
// interposes framework instructions around record reads, key-value
// emissions, tasks and requests.
package workloads

import (
	"context"

	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/stack"
	"repro/internal/xrand"
)

// Category is the paper's application-category dimension (§3.2.3).
type Category int

// Application categories.
const (
	Service Category = iota
	DataAnalysis
	InteractiveAnalysis
)

var categoryNames = []string{"service", "data analysis", "interactive analysis"}

// String names the category.
func (c Category) String() string { return categoryNames[c] }

// Kernel is an instrumented algorithm implementation.
type Kernel interface {
	// Name identifies the algorithm ("WordCount").
	Name() string
	// Run executes the kernel until the context's instruction budget
	// is exhausted, emitting its dynamic instruction stream and
	// tallying its I/O volumes in the context.
	Run(c *Ctx)
}

// KernelFunc adapts a function to the Kernel interface; the comparator
// suites use it for their mini-kernels.
type KernelFunc struct {
	// KernelName identifies the mini-kernel.
	KernelName string
	// F runs the kernel.
	F func(*Ctx)
}

// Name implements Kernel.
func (k KernelFunc) Name() string { return k.KernelName }

// Run implements Kernel.
func (k KernelFunc) Run(c *Ctx) { k.F(c) }

// Ctx carries everything a kernel needs for one run.
type Ctx struct {
	// E is the instruction emitter (budget-bearing).
	E *trace.Emitter
	// RT is the software-stack runtime to charge framework events to.
	RT *stack.Runtime
	// L is the run's simulated address space.
	L *mem.Layout
	// Rng is the run's deterministic random source.
	Rng *xrand.Rand
	// Code is the kernel's primary code routine; kernels may allocate
	// more from L.
	Code *trace.Routine

	// I/O tallies (bytes), maintained by the kernel as it processes
	// data: read input, produced output, and intermediate (shuffled)
	// data. They drive the Table 2 data-behaviour classification.
	InBytes, OutBytes, InterBytes uint64
	// Records counts logical records (or requests) processed.
	Records uint64
	// CPUWeight scales per-input-byte CPU work to deployment scale for
	// kernels whose simulated run cannot cover the full job shape:
	// iterative algorithms set it to their typical iteration count,
	// sorts to the extra merge passes of a full-scale run. Default 1.
	CPUWeight float64
}

// Workload is one roster entry.
type Workload struct {
	// ID is the paper-style identifier ("S-WordCount").
	ID string
	// Kernel is the algorithm.
	Kernel Kernel
	// Stack is the software-stack descriptor.
	Stack stack.Descriptor
	// Category is the application category.
	Category Category
	// DataSet names the Table 1 dataset the workload consumes.
	DataSet string
	// KernelKB sizes the kernel's code routine (default 24 KB).
	KernelKB int
}

// Result summarizes one run.
type Result struct {
	Workload Workload
	// Insts is the number of instructions emitted.
	Insts uint64
	// InBytes/OutBytes/InterBytes are the kernel's I/O tallies.
	InBytes, OutBytes, InterBytes uint64
	// Records is the number of records/requests processed.
	Records uint64
	// FrameworkShare is the fraction of instructions emitted by the
	// software-stack model rather than the kernel.
	FrameworkShare float64
	// CPUWeight is the kernel's deployment-scale CPU multiplier.
	CPUWeight float64
}

// Run executes w against probe p with the given instruction budget and
// returns the run summary. Each run gets a fresh simulated address
// space and deterministic seeds derived from the workload ID, so runs
// are reproducible and independent.
//
// Probes implementing trace.BlockProbe receive the stream in
// trace.DefaultBlockSize batches; use RunBlock to pick the batch size.
// Results are identical either way — blocking changes when the probe
// observes the stream, never what it observes.
func Run(w Workload, p trace.Probe, budget int64) *Result {
	return RunBlock(w, p, budget, 0)
}

// RunBlock is Run with an explicit trace-replay block size
// (instructions per delivered batch; <= 0 means
// trace.DefaultBlockSize). The block size is a plumbing knob: every
// size yields byte-identical results, it only tunes batching overhead
// against buffer footprint. Probes without a block path are driven
// per-instruction regardless.
func RunBlock(w Workload, p trace.Probe, budget int64, blockSize int) *Result {
	res, _ := RunBlockCtx(nil, w, p, budget, blockSize)
	return res
}

// RunBlockCtx is RunBlock bound to a context: a cancelled ctx aborts
// the run early — the emitter zeroes its budget at the next poll (a
// few thousand instructions), the kernel winds down, and the call
// returns ctx.Err() with a nil Result. The truncated stream the probe
// observed must be discarded, never published: a cancelled run's
// tallies are not a prefix-deterministic artefact. A nil or background
// context never cancels and behaves exactly like RunBlock.
func RunBlockCtx(ctx context.Context, w Workload, p trace.Probe, budget int64, blockSize int) (*Result, error) {
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err // cancelled before any work
		}
		done = ctx.Done()
	}
	l := mem.NewLayout()
	e := trace.NewBlockEmitter(p, budget, blockSize)
	e.SetCancel(done)
	seed := idSeed(w.ID)
	rt := stack.NewRuntime(w.Stack, e, l, seed)
	kb := w.KernelKB
	if kb <= 0 {
		kb = 24
	}
	code := trace.NewRoutine(l, w.ID+"/kernel", uint64(kb)<<10)
	e.Enter(code)
	c := &Ctx{E: e, RT: rt, L: l, Rng: xrand.New(seed ^ 0xC0FFEE), Code: code}
	w.Kernel.Run(c)
	e.Flush()
	// Any cancellation during the run condemns the result — not just
	// one the emitter's periodic poll observed. The signal can land
	// after the last poll but before the tail flush, in which case a
	// probe watching the same ctx (machine.Sweep.Cancel) has already
	// drained deliveries the emitter still counted; the only safe
	// answer is abort.
	if e.Canceled() || (ctx != nil && ctx.Err() != nil) {
		return nil, ctx.Err()
	}
	insts := e.Emitted()
	cw := c.CPUWeight
	if cw <= 0 {
		cw = 1
	}
	res := &Result{
		Workload: w,
		Insts:    insts,
		InBytes:  c.InBytes, OutBytes: c.OutBytes, InterBytes: c.InterBytes,
		Records:   c.Records,
		CPUWeight: cw,
	}
	if insts > 0 {
		res.FrameworkShare = float64(rt.FrameworkInsts) / float64(insts)
	}
	return res, nil
}

// DataRatio is the paper's §3.2.2 data-behaviour classification of an
// output(or intermediate)-to-input byte ratio.
type DataRatio int

// Data-behaviour classes.
const (
	// RatioNone means no data of that kind is produced (ratio < 0.01).
	RatioNone DataRatio = iota
	// RatioLess means between 1% and 90% of the input (Out<In).
	RatioLess
	// RatioEqual means within [0.9, 1.1) of the input (Out=In).
	RatioEqual
	// RatioMore means at least 1.1x the input (Out>In).
	RatioMore
)

var ratioNames = []string{"<<Input", "<Input", "=Input", ">Input"}

// String renders the class in the paper's Table 2 notation.
func (r DataRatio) String() string { return ratioNames[r] }

// ClassifyRatio applies the paper's thresholds to out/in.
func ClassifyRatio(out, in uint64) DataRatio {
	if in == 0 {
		return RatioNone
	}
	r := float64(out) / float64(in)
	switch {
	case r < 0.01:
		return RatioNone
	case r < 0.9:
		return RatioLess
	case r < 1.1:
		return RatioEqual
	default:
		return RatioMore
	}
}

// ShardSlice returns the shard-th of count interleaved slices of list
// (elements whose index ≡ shard mod count) — the deterministic
// partition cooperating CLI shards agree on.
func ShardSlice(list []Workload, shard, count int) []Workload {
	var out []Workload
	for i, w := range list {
		if i%count == shard {
			out = append(out, w)
		}
	}
	return out
}

func idSeed(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
