package workloads

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
)

// ECommerceScale sizes the transaction tables for the relational
// kernels (the paper's Table 1 dataset 5, scaled).
type ECommerceScale struct {
	OrderRows, ItemRows int
	Seed                uint64
}

// DefaultECommerce is the simulation-scale e-commerce shape.
func DefaultECommerce() ECommerceScale {
	return ECommerceScale{OrderRows: 40000, ItemRows: 120000, Seed: 0xEC0}
}

func (s ECommerceScale) build(c *Ctx) *datagen.ECommerce {
	return datagen.NewECommerce(c.L, s.Seed, s.OrderRows, s.ItemRows)
}

// readRows charges the stack's record-reader overhead for n rows of
// rowBytes each, honouring the engine's batch size.
func readRows(c *Ctx, n, rowBytes int) {
	batch := c.RT.D.Batch()
	c.InBytes += uint64(n * rowBytes)
	for n > 0 {
		take := batch
		if take > n {
			take = n
		}
		c.RT.ReadRecord(take * rowBytes)
		n -= take
	}
}

// Select is the relational filter ("one of the five basic operators
// from relational algebra" — Table 2): a predicate scan over the item
// table with a selective output.
type Select struct {
	Scale ECommerceScale
	// PriceCut is the predicate threshold (goods_price > PriceCut).
	PriceCut int64
}

// Name implements Kernel.
func (k *Select) Name() string { return "Select" }

// Run implements Kernel.
func (k *Select) Run(c *Ctx) {
	ec := k.Scale.build(c)
	price := ec.Items.Col("goods_price")
	amount := ec.Items.Col("goods_amount")
	cut := k.PriceCut
	if cut == 0 {
		cut = 18000 // ~10% selectivity of the generated distribution
	}
	e, rt := c.E, c.RT
	rowBytes := 52
	vectorized := rt.D.Batch() > 1
	for e.OK() {
		rt.TaskStart()
		scanTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%4096 == 0 {
				readRows(c, 4096, rowBytes)
			}
			v := loadIdx(e, price.Base, i, 8, isa.NoReg)
			match := price.Vals[i] > cut
			if vectorized {
				// Vectorized engines evaluate the predicate into a
				// selection mask without a per-row branch.
				e.Int(isa.IntAlu, v, isa.NoReg)
			} else {
				e.Branch(match, v)
			}
			if match {
				a := loadIdx(e, amount.Base, i, 8, v)
				rt.EmitKV(rowBytes)
				c.OutBytes += uint64(rowBytes)
				_ = a
			}
			e.Loop(scanTop, i+1 < ec.Items.Rows, v)
			c.Records++
		}
	}
}

// Project copies a column subset — almost pure sequential loads and
// stores with near-zero branches, which is why S-Project posts one of
// the highest IPCs in the paper's Fig. 3 (1.6).
type Project struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *Project) Name() string { return "Project" }

// Run implements Kernel.
func (k *Project) Run(c *Ctx) {
	ec := k.Scale.build(c)
	c1 := ec.Items.Col("order_id")
	c2 := ec.Items.Col("goods_amount")
	outBase := c.L.AllocArray(ec.Items.Rows*2, 8)
	e, rt := c.E, c.RT
	rowBytes := 52
	for e.OK() {
		rt.TaskStart()
		copyTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%4096 == 0 {
				readRows(c, 4096, rowBytes)
			}
			a := loadIdx(e, c1.Base, i, 8, isa.NoReg)
			b := loadIdx(e, c2.Base, i, 8, isa.NoReg)
			storeIdx(e, outBase, i*2, 8, a)
			storeIdx(e, outBase, i*2+1, 8, b)
			e.Loop(copyTop, i+1 < ec.Items.Rows, b)
			c.Records++
			c.OutBytes += 16
		}
		rt.EmitKV(1024)
	}
}

// OrderBy sorts the item table by a key column (Table 2: "a
// fundamental operation from relational algebra and extensively used").
type OrderBy struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *OrderBy) Name() string { return "OrderBy" }

// Run implements Kernel.
func (k *OrderBy) Run(c *Ctx) {
	ec := k.Scale.build(c)
	col := ec.Orders.Col("amount")
	n := ec.Orders.Rows
	aBase := c.L.AllocArray(n, 8)
	bBase := c.L.AllocArray(n, 8)
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		rt.TaskStart()
		readRows(c, n, rowBytes)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = col.Vals[i]<<20 | int64(i)
		}
		c.Records += uint64(n)
		c.CPUWeight = 2.5 // full-scale sorts run more merge passes
		rt.Shuffle(n * rowBytes / 8)
		c.InterBytes += uint64(n * rowBytes)
		mergeSortEmit(e, keys, aBase, bBase)
		rt.EmitKV(4096)
		c.OutBytes += uint64(n * rowBytes)
	}
}

// Aggregation groups the item table by order and sums a money column
// in floating point (Hive-style SUM(double)).
type Aggregation struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *Aggregation) Name() string { return "Aggregation" }

// Run implements Kernel.
func (k *Aggregation) Run(c *Ctx) {
	ec := k.Scale.build(c)
	fk := ec.Items.Col("order_id")
	val := ec.Items.Col("goods_amount")
	tbl := newHashTable(c.L, k.Scale.OrderRows*2)
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		rt.TaskStart()
		rowTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			kr := loadIdx(e, fk.Base, i, 8, isa.NoReg)
			loadIdx(e, val.Base, i, 8, kr)
			tbl.addFP(e, fk.Vals[i], float64(val.Vals[i]))
			c.Records++
			e.Loop(rowTop, i+1 < ec.Items.Rows, kr)
		}
		rt.Shuffle(tbl.Entries * 16)
		c.InterBytes += uint64(tbl.Entries * 16)
		c.OutBytes = uint64(tbl.Entries * 16)
	}
}

// Join hash-joins items against orders (build on orders, probe from
// items).
type Join struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *Join) Name() string { return "Join" }

// Run implements Kernel.
func (k *Join) Run(c *Ctx) {
	ec := k.Scale.build(c)
	buildKey := ec.Orders.Col("order_id")
	buildVal := ec.Orders.Col("buyer_id")
	probeKey := ec.Items.Col("order_id")
	tbl := newHashTable(c.L, k.Scale.OrderRows*2)
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		// Build side.
		rt.TaskStart()
		buildTop := e.Here()
		for i := 0; i < ec.Orders.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			loadIdx(e, buildKey.Base, i, 8, isa.NoReg)
			tbl.add(e, buildKey.Vals[i], buildVal.Vals[i])
			c.Records++
			e.Loop(buildTop, i+1 < ec.Orders.Rows, isa.NoReg)
		}
		// Probe side.
		vectorized := rt.D.Batch() > 1
		probeTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			kr := loadIdx(e, probeKey.Base, i, 8, isa.NoReg)
			var hit bool
			if vectorized {
				_, hit = tbl.probeVec(e, probeKey.Vals[i])
			} else {
				_, hit = tbl.probe(e, probeKey.Vals[i])
			}
			if hit {
				rt.EmitKV(24)
				c.OutBytes += 24
			}
			c.Records++
			_ = kr
			e.Loop(probeTop, i+1 < ec.Items.Rows, kr)
		}
		rt.Shuffle(ec.Items.Rows)
		c.InterBytes += uint64(ec.Items.Rows * 8)
	}
}

// Difference computes A \ B over order keys, one of the five basic
// relational operators (H-Difference in Table 2): build a hash set of
// B, anti-probe with A.
type Difference struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *Difference) Name() string { return "Difference" }

// Run implements Kernel.
func (k *Difference) Run(c *Ctx) {
	ec := k.Scale.build(c)
	a := ec.Items.Col("order_id")  // larger side
	b := ec.Orders.Col("order_id") // smaller side: keys 0..OrderRows
	tbl := newHashTable(c.L, k.Scale.OrderRows*2)
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		rt.TaskStart()
		buildTop := e.Here()
		for i := 0; i < ec.Orders.Rows/2 && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			loadIdx(e, b.Base, i, 8, isa.NoReg)
			tbl.add(e, b.Vals[i], 1)
			c.Records++
			e.Loop(buildTop, i+1 < ec.Orders.Rows/2, isa.NoReg)
		}
		probeTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			loadIdx(e, a.Base, i, 8, isa.NoReg)
			_, hit := tbl.probe(e, a.Vals[i])
			if !hit {
				rt.EmitKV(rowBytes)
				c.OutBytes += uint64(rowBytes)
			}
			c.Records++
			e.Loop(probeTop, i+1 < ec.Items.Rows, isa.NoReg)
		}
		rt.Shuffle(ec.Items.Rows * 2)
		c.InterBytes += uint64(ec.Items.Rows * 12)
	}
}

// CrossProduct emits the Cartesian product of two small order subsets
// (Output>Input by construction).
type CrossProduct struct {
	Scale ECommerceScale
	Side  int
}

// Name implements Kernel.
func (k *CrossProduct) Name() string { return "CrossProduct" }

// Run implements Kernel.
func (k *CrossProduct) Run(c *Ctx) {
	ec := k.Scale.build(c)
	col := ec.Orders.Col("buyer_id")
	side := k.Side
	if side == 0 {
		side = 400
	}
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		rt.TaskStart()
		readRows(c, side*2, rowBytes)
		outerTop := e.Here()
		for i := 0; i < side && e.OK(); i++ {
			av := loadIdx(e, col.Base, i, 8, isa.NoReg)
			innerTop := e.Here()
			for j := 0; j < side && e.OK(); j++ {
				bv := loadIdx(e, col.Base, side+j, 8, isa.NoReg)
				e.Int(isa.IntAlu, av, bv)
				rt.EmitKV(16)
				c.OutBytes += 16
				c.Records++
				e.Loop(innerTop, j+1 < side, bv)
			}
			e.Loop(outerTop, i+1 < side, av)
		}
	}
}

// Union concatenates and deduplicates two key columns (SQL UNION).
type Union struct {
	Scale ECommerceScale
}

// Name implements Kernel.
func (k *Union) Name() string { return "Union" }

// Run implements Kernel.
func (k *Union) Run(c *Ctx) {
	ec := k.Scale.build(c)
	a := ec.Orders.Col("buyer_id")
	b := ec.Items.Col("goods_id")
	tbl := newHashTable(c.L, (k.Scale.OrderRows+8000)*2)
	rowBytes := 52
	e, rt := c.E, c.RT
	for e.OK() {
		rt.TaskStart()
		aTop := e.Here()
		for i := 0; i < ec.Orders.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			loadIdx(e, a.Base, i, 8, isa.NoReg)
			if tbl.add(e, a.Vals[i], 1) {
				rt.EmitKV(8)
				c.OutBytes += 8
			}
			c.Records++
			e.Loop(aTop, i+1 < ec.Orders.Rows, isa.NoReg)
		}
		bTop := e.Here()
		for i := 0; i < ec.Items.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			loadIdx(e, b.Base, i, 8, isa.NoReg)
			if tbl.add(e, b.Vals[i]+1<<40, 1) {
				rt.EmitKV(8)
				c.OutBytes += 8
			}
			c.Records++
			e.Loop(bTop, i+1 < ec.Items.Rows, isa.NoReg)
		}
		rt.Shuffle(tbl.Entries)
		c.InterBytes += uint64(tbl.Entries * 8)
	}
}
