package workloads

import (
	"encoding/json"
	"fmt"

	"repro/internal/stack"
)

// Signature returns a stable content identity for everything
// Run(w, probe, budget) depends on besides the probe and the budget:
// the workload ID (which seeds the run's RNG streams and stack
// layout), the kernel's type, name and configuration, the full
// software-stack descriptor, and the kernel code size.
//
// IDs alone are not unique identities across rosters — Table 2's
// "H-Difference" runs on Hive while the 77-roster's "H-Difference"
// runs on Hadoop — so content-keyed artefacts (cached profiles, sweep
// curves) must key on this signature, never on the bare ID.
func Signature(w Workload) string {
	kcfg, err := json.Marshal(w.Kernel)
	if err != nil {
		// Closure kernels (KernelFunc) carry no marshalable config;
		// their name is unique within this repository's rosters.
		kcfg = nil
	}
	sig := struct {
		ID         string
		KernelType string
		KernelName string
		KernelCfg  json.RawMessage `json:",omitempty"`
		Stack      stack.Descriptor
		KernelKB   int
	}{
		ID:         w.ID,
		KernelType: fmt.Sprintf("%T", w.Kernel),
		KernelName: w.Kernel.Name(),
		KernelCfg:  kcfg,
		Stack:      w.Stack,
		KernelKB:   w.KernelKB,
	}
	b, err := json.Marshal(sig)
	if err != nil {
		panic("workloads: unmarshalable signature for " + w.ID + ": " + err.Error())
	}
	return string(b)
}
