package workloads

import (
	"testing"

	"repro/internal/sim/trace"
)

func TestRoster77Count(t *testing.T) {
	roster := Roster77()
	if len(roster) != 77 {
		t.Fatalf("roster has %d workloads, want 77 (BigDataBench 3.0)", len(roster))
	}
	seen := map[string]bool{}
	for _, w := range roster {
		if w.ID == "" || w.Kernel == nil || w.Stack.Name == "" {
			t.Fatalf("incomplete roster entry %+v", w)
		}
		if seen[w.ID] {
			t.Fatalf("duplicate workload ID %q", w.ID)
		}
		seen[w.ID] = true
	}
}

func TestRepresentative17(t *testing.T) {
	reps := Representative17()
	if len(reps) != 17 {
		t.Fatalf("%d representatives, want 17", len(reps))
	}
	// Table 2's parenthesized counts must sum to 77.
	sum := 0
	for _, w := range reps {
		c, ok := RepresentedCounts[w.ID]
		if !ok {
			t.Fatalf("no represented count for %s", w.ID)
		}
		sum += c
	}
	if sum != 77 {
		t.Fatalf("represented counts sum to %d, want 77", sum)
	}
	// The sole service representative is H-Read, as in Table 2.
	services := 0
	for _, w := range reps {
		if w.Category == Service {
			services++
			if w.ID != "H-Read" {
				t.Fatalf("unexpected service representative %s", w.ID)
			}
		}
	}
	if services != 1 {
		t.Fatalf("%d service representatives, want 1", services)
	}
}

func TestMPI6(t *testing.T) {
	mpi := MPI6()
	if len(mpi) != 6 {
		t.Fatalf("%d MPI workloads, want 6 (§5.5)", len(mpi))
	}
	for _, w := range mpi {
		if w.Stack.Name != "MPI" {
			t.Fatalf("%s not on the MPI stack", w.ID)
		}
	}
}

func TestEveryRepresentativeRuns(t *testing.T) {
	for _, w := range Representative17() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			var c trace.CountProbe
			res := Run(w, &c, 60_000)
			if res.Insts < 50_000 {
				t.Fatalf("emitted only %d instructions", res.Insts)
			}
			if c.Total != res.Insts {
				t.Fatalf("probe saw %d, result says %d", c.Total, res.Insts)
			}
			if res.InBytes == 0 {
				t.Fatal("no input bytes tallied")
			}
			if res.Records == 0 {
				t.Fatal("no records tallied")
			}
			if c.ByOp[3] == 0 { // branches
				t.Fatal("workload emitted no branches")
			}
		})
	}
}

func TestEveryMPIWorkloadRuns(t *testing.T) {
	for _, w := range MPI6() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			var c trace.CountProbe
			res := Run(w, &c, 250_000)
			if res.Insts < 200_000 {
				t.Fatalf("emitted only %d instructions", res.Insts)
			}
			if res.FrameworkShare > 0.6 {
				t.Fatalf("MPI framework share %.2f implausibly high", res.FrameworkShare)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	w := Representative17()[4] // S-WordCount
	var a, b trace.CountProbe
	Run(w, &a, 50_000)
	Run(w, &b, 50_000)
	if a.Total != b.Total || a.Taken != b.Taken || a.Memory != b.Memory {
		t.Fatalf("same workload runs diverged: %+v vs %+v", a, b)
	}
}

func TestFrameworkShareOrdering(t *testing.T) {
	var mpi, hadoop trace.CountProbe
	mpiRes := Run(MPI6()[4], &mpi, 200_000)               // M-WordCount
	hRes := Run(Representative17()[14], &hadoop, 200_000) // H-WordCount
	if mpiRes.FrameworkShare >= hRes.FrameworkShare {
		t.Fatalf("MPI framework share %.2f >= Hadoop %.2f",
			mpiRes.FrameworkShare, hRes.FrameworkShare)
	}
}

func TestClassifyRatio(t *testing.T) {
	cases := []struct {
		out, in uint64
		want    DataRatio
	}{
		{0, 100, RatioNone},
		{1, 1000, RatioNone}, // <1%
		{50, 100, RatioLess},
		{95, 100, RatioEqual},
		{109, 100, RatioEqual},
		{111, 100, RatioMore},
		{0, 0, RatioNone},
	}
	for _, c := range cases {
		if got := ClassifyRatio(c.out, c.in); got != c.want {
			t.Errorf("ClassifyRatio(%d, %d) = %v, want %v", c.out, c.in, got, c.want)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	for _, budget := range []int64{10_000, 100_000} {
		var c trace.CountProbe
		res := Run(Representative17()[6], &c, budget) // H-Grep
		// Kernels stop shortly after exhaustion; allow bounded overshoot.
		if int64(res.Insts) < budget || int64(res.Insts) > budget+budget/2+5000 {
			t.Fatalf("budget %d -> %d instructions", budget, res.Insts)
		}
	}
}
