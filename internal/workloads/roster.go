package workloads

import (
	"repro/internal/datagen"
	"repro/internal/stack"
)

// Dataset names from the paper's Table 1.
const (
	DSWikipedia = "Wikipedia Entries"
	DSAmazon    = "Amazon Movie Reviews"
	DSGoogle    = "Google Web Graph"
	DSFacebook  = "Facebook Social Network"
	DSECommerce = "E-commerce Transaction Data"
	DSProf      = "ProfSearch Person Resumes"
	DSTPCDS     = "TPC-DS WebTable Data"
)

// kernel constructors shared by roster entries. Each call returns a
// fresh kernel so runs never share mutable state.
func kWordCount() Kernel { return &WordCount{Cfg: datagen.DefaultWiki()} }
func kGrep() Kernel      { return &Grep{Cfg: datagen.DefaultWiki(), MatchID: 97} }
func kSort() Kernel      { return &Sort{Cfg: datagen.DefaultWiki()} }
func kBayes() Kernel     { return &NaiveBayes{Cfg: amazonCfg(), Classes: 5} }
func kIndex() Kernel     { return &Index{Cfg: datagen.DefaultWiki()} }
func kKMeans() Kernel    { return &KMeans{N: 20000, Dim: 8, K: 16, Seed: 0xFB} }
func kPageRank() Kernel  { return &PageRank{Cfg: datagen.DefaultWebGraph()} }
func kBFS() Kernel       { return &BFS{Cfg: datagen.DefaultWebGraph()} }
func kCC() Kernel        { return &ConnectedComponents{Cfg: datagen.DefaultWebGraph()} }
func kCF() Kernel        { return &CollabFilter{} }

func kSelect() Kernel  { return &Select{Scale: DefaultECommerce()} }
func kProject() Kernel { return &Project{Scale: DefaultECommerce()} }
func kOrderBy() Kernel { return &OrderBy{Scale: DefaultECommerce()} }
func kAgg() Kernel     { return &Aggregation{Scale: DefaultECommerce()} }
func kJoin() Kernel    { return &Join{Scale: DefaultECommerce()} }
func kDiff() Kernel    { return &Difference{Scale: DefaultECommerce()} }
func kCross() Kernel   { return &CrossProduct{Scale: DefaultECommerce()} }
func kUnion() Kernel   { return &Union{Scale: DefaultECommerce()} }
func kQ3() Kernel      { return &TPCDSQ3{Scale: DefaultTPCDS()} }
func kQ8() Kernel      { return &TPCDSQ8{Scale: DefaultTPCDS()} }
func kQ10() Kernel     { return &TPCDSQ10{Scale: DefaultTPCDS()} }
func kRead() Kernel    { return &HBaseRead{Scale: DefaultKV()} }
func kWrite() Kernel   { return &HBaseWrite{Scale: DefaultKV()} }
func kScan() Kernel    { return &HBaseScan{Scale: DefaultKV()} }

func amazonCfg() datagen.TextConfig {
	cfg := datagen.DefaultWiki()
	cfg.Seed = 0xA3A204
	cfg.Lines = 3000
	cfg.WordsPerLine = 16
	return cfg
}

// Representative17 returns the paper's Table 2 workload subset, in
// Table 2 order.
func Representative17() []Workload {
	return []Workload{
		{ID: "H-Read", Kernel: kRead(), Stack: stack.HBase(), Category: Service, DataSet: DSProf},
		{ID: "H-Difference", Kernel: kDiff(), Stack: stack.Hive(), Category: InteractiveAnalysis, DataSet: DSECommerce},
		{ID: "I-SelectQuery", Kernel: kSelect(), Stack: stack.Impala(), Category: InteractiveAnalysis, DataSet: DSECommerce},
		{ID: "H-TPC-DS-query3", Kernel: kQ3(), Stack: stack.Hive(), Category: InteractiveAnalysis, DataSet: DSTPCDS},
		{ID: "S-WordCount", Kernel: kWordCount(), Stack: stack.Spark(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "I-OrderBy", Kernel: kOrderBy(), Stack: stack.Impala(), Category: InteractiveAnalysis, DataSet: DSECommerce},
		{ID: "H-Grep", Kernel: kGrep(), Stack: stack.Hadoop(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "S-TPC-DS-query10", Kernel: kQ10(), Stack: stack.Shark(), Category: InteractiveAnalysis, DataSet: DSTPCDS},
		{ID: "S-Project", Kernel: kProject(), Stack: stack.Shark(), Category: InteractiveAnalysis, DataSet: DSECommerce},
		{ID: "S-OrderBy", Kernel: kOrderBy(), Stack: stack.Shark(), Category: InteractiveAnalysis, DataSet: DSECommerce},
		{ID: "S-Kmeans", Kernel: kKMeans(), Stack: stack.Spark(), Category: DataAnalysis, DataSet: DSFacebook},
		{ID: "S-TPC-DS-query8", Kernel: kQ8(), Stack: stack.Shark(), Category: InteractiveAnalysis, DataSet: DSTPCDS},
		{ID: "S-PageRank", Kernel: kPageRank(), Stack: stack.Spark(), Category: DataAnalysis, DataSet: DSGoogle},
		{ID: "S-Grep", Kernel: kGrep(), Stack: stack.Spark(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "H-WordCount", Kernel: kWordCount(), Stack: stack.Hadoop(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "H-NaiveBayes", Kernel: kBayes(), Stack: stack.Hadoop(), Category: DataAnalysis, DataSet: DSAmazon},
		{ID: "S-Sort", Kernel: kSort(), Stack: stack.Spark(), Category: DataAnalysis, DataSet: DSWikipedia},
	}
}

// RepresentedCounts maps each Table 2 representative to the number of
// roster workloads its cluster represents (the parenthesized counts in
// Table 2; they sum to 77).
var RepresentedCounts = map[string]int{
	"H-Read": 10, "H-Difference": 9, "I-SelectQuery": 9, "H-TPC-DS-query3": 9,
	"S-WordCount": 8, "I-OrderBy": 7, "H-Grep": 7, "S-TPC-DS-query10": 4,
	"S-Project": 4, "S-OrderBy": 3, "S-Kmeans": 1, "S-TPC-DS-query8": 1,
	"S-PageRank": 1, "S-Grep": 1, "H-WordCount": 1, "H-NaiveBayes": 1, "S-Sort": 1,
}

// MPI6 returns the six MPI re-implementations of §5.5 (Bayes, K-means,
// PageRank, Grep, WordCount and Sort).
func MPI6() []Workload {
	return []Workload{
		{ID: "M-Bayes", Kernel: kBayes(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSAmazon},
		{ID: "M-Kmeans", Kernel: kKMeans(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSFacebook},
		{ID: "M-PageRank", Kernel: kPageRank(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSGoogle},
		{ID: "M-Grep", Kernel: kGrep(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "M-WordCount", Kernel: kWordCount(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSWikipedia},
		{ID: "M-Sort", Kernel: kSort(), Stack: stack.MPI(), Category: DataAnalysis, DataSet: DSWikipedia},
	}
}

// Roster77 returns the full BigDataBench-3.0-like roster of 77
// workloads: every operation/algorithm under each of the software
// stacks that implement it, mirroring the suite's
// (algorithm x implementation) matrix. The WCRT reduction of §3 runs
// over this roster.
func Roster77() []Workload {
	type entry struct {
		op   string
		mk   func() Kernel
		cat  Category
		data string
	}
	hadoopOps := []entry{
		{"WordCount", kWordCount, DataAnalysis, DSWikipedia},
		{"Grep", kGrep, DataAnalysis, DSWikipedia},
		{"Sort", kSort, DataAnalysis, DSWikipedia},
		{"NaiveBayes", kBayes, DataAnalysis, DSAmazon},
		{"Kmeans", kKMeans, DataAnalysis, DSFacebook},
		{"PageRank", kPageRank, DataAnalysis, DSGoogle},
		{"BFS", kBFS, DataAnalysis, DSGoogle},
		{"Index", kIndex, DataAnalysis, DSWikipedia},
		{"CF", kCF, DataAnalysis, DSAmazon},
		{"Select", kSelect, InteractiveAnalysis, DSECommerce},
		{"Project", kProject, InteractiveAnalysis, DSECommerce},
		{"OrderBy", kOrderBy, InteractiveAnalysis, DSECommerce},
		{"Aggregation", kAgg, InteractiveAnalysis, DSECommerce},
		{"Join", kJoin, InteractiveAnalysis, DSECommerce},
		{"Difference", kDiff, InteractiveAnalysis, DSECommerce},
	}
	sparkOps := []entry{
		{"WordCount", kWordCount, DataAnalysis, DSWikipedia},
		{"Grep", kGrep, DataAnalysis, DSWikipedia},
		{"Sort", kSort, DataAnalysis, DSWikipedia},
		{"NaiveBayes", kBayes, DataAnalysis, DSAmazon},
		{"Kmeans", kKMeans, DataAnalysis, DSFacebook},
		{"PageRank", kPageRank, DataAnalysis, DSGoogle},
		{"BFS", kBFS, DataAnalysis, DSGoogle},
		{"CC", kCC, DataAnalysis, DSGoogle},
		{"CF", kCF, DataAnalysis, DSAmazon},
		{"Project", kProject, InteractiveAnalysis, DSECommerce},
	}
	sqlOps := []entry{ // Hive, Shark, Impala each implement these
		{"Select", kSelect, InteractiveAnalysis, DSECommerce},
		{"Project", kProject, InteractiveAnalysis, DSECommerce},
		{"OrderBy", kOrderBy, InteractiveAnalysis, DSECommerce},
		{"Aggregation", kAgg, InteractiveAnalysis, DSECommerce},
		{"Join", kJoin, InteractiveAnalysis, DSECommerce},
		{"Difference", kDiff, InteractiveAnalysis, DSECommerce},
		{"CrossProduct", kCross, InteractiveAnalysis, DSECommerce},
		{"Union", kUnion, InteractiveAnalysis, DSECommerce},
		{"TPC-DS-query3", kQ3, InteractiveAnalysis, DSTPCDS},
		{"TPC-DS-query8", kQ8, InteractiveAnalysis, DSTPCDS},
		{"TPC-DS-query10", kQ10, InteractiveAnalysis, DSTPCDS},
	}
	mpiOps := []entry{
		{"WordCount", kWordCount, DataAnalysis, DSWikipedia},
		{"Grep", kGrep, DataAnalysis, DSWikipedia},
		{"Sort", kSort, DataAnalysis, DSWikipedia},
		{"NaiveBayes", kBayes, DataAnalysis, DSAmazon},
		{"Kmeans", kKMeans, DataAnalysis, DSFacebook},
		{"PageRank", kPageRank, DataAnalysis, DSGoogle},
		{"BFS", kBFS, DataAnalysis, DSGoogle},
		{"CC", kCC, DataAnalysis, DSGoogle},
	}
	hbaseOps := []entry{
		{"Read", kRead, Service, DSProf},
		{"Write", kWrite, Service, DSProf},
		{"Scan", kScan, Service, DSProf},
	}
	mysqlOps := []entry{
		{"Read", kRead, Service, DSProf},
		{"Write", kWrite, Service, DSProf},
		{"Scan", kScan, Service, DSProf},
		{"Select", kSelect, InteractiveAnalysis, DSECommerce},
		{"Project", kProject, InteractiveAnalysis, DSECommerce},
		{"OrderBy", kOrderBy, InteractiveAnalysis, DSECommerce},
		{"Aggregation", kAgg, InteractiveAnalysis, DSECommerce},
		{"Join", kJoin, InteractiveAnalysis, DSECommerce},
	}

	var out []Workload
	add := func(prefix string, st stack.Descriptor, ops []entry) {
		for _, op := range ops {
			out = append(out, Workload{
				ID:     prefix + "-" + op.op,
				Kernel: op.mk(), Stack: st, Category: op.cat, DataSet: op.data,
			})
		}
	}
	add("H", stack.Hadoop(), hadoopOps) // 15
	add("S", stack.Spark(), sparkOps)   // 10
	add("HV", stack.Hive(), sqlOps)     // 11
	add("SH", stack.Shark(), sqlOps)    // 11
	add("I", stack.Impala(), sqlOps)    // 11
	add("M", stack.MPI(), mpiOps)       // 8
	add("HB", stack.HBase(), hbaseOps)  // 3
	add("MY", stack.MySQL(), mysqlOps)  // 8
	return out                          // total 77
}
