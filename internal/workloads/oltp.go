package workloads

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
)

// KVScale sizes the ProfSearch-resume key-value store behind the cloud
// OLTP workloads (Table 1 dataset 6: 1128-byte records).
type KVScale struct {
	Records  int
	ValBytes int
	Seed     uint64
}

// DefaultKV is the simulation-scale ProfSearch shape.
func DefaultKV() KVScale {
	return KVScale{Records: 60000, ValBytes: 1128, Seed: 0x4856}
}

// copyValue emits the byte-copy of one stored value (load+store per
// 8 bytes, closed by a loop branch).
func copyValue(c *Ctx, src uint64, n int) {
	e := c.E
	dst := c.L.Alloc(uint64(n))
	top := e.Here()
	for off := 0; off < n; off += 16 {
		v := e.Load(src+uint64(off), 8, isa.NoReg)
		e.Store(dst+uint64(off), 8, v, isa.NoReg)
		e.Loop(top, off+16 < n, v)
	}
}

// HBaseRead is the basic read operation of the non-relational store
// (H-Read, the sole service workload among the 17 representatives):
// per request, a memstore probe, a block-index binary search, a block
// scan and the value copy — wrapped in the region server's fat
// request path.
type HBaseRead struct {
	Scale KVScale
}

// Name implements Kernel.
func (k *HBaseRead) Name() string { return "HBase-Read" }

// Run implements Kernel.
func (k *HBaseRead) Run(c *Ctx) {
	kv := datagen.NewKVStore(c.L, k.Scale.Seed, k.Scale.Records, k.Scale.ValBytes)
	memstore := newHashTable(c.L, 8192)
	e, rt := c.E, c.RT
	reqTop := e.Here()
	for e.OK() {
		idx := kv.Pop.Sample(c.Rng)
		key := kv.Keys[idx]
		rt.Request(kv.ValBytes)
		c.Records++
		// Memstore probe (usually misses: most data is in store files).
		memstore.probe(e, int64(key))
		// Block index binary search: the classic unpredictable-branch
		// pattern of index lookups.
		at := bsearchEmit(e, kv.IndexBase, kv.Keys, key)
		// Block scan: walk up to 16 cells to the exact key.
		blockStart := at &^ 15
		scanTop := e.Here()
		for i := blockStart; i <= at; i++ {
			kr := loadIdx(e, kv.IndexBase, i, 8, isa.NoReg)
			found := i == at
			e.Branch(found, kr)
			e.Loop(scanTop, i < at, kr)
		}
		copyValue(c, kv.ValAddr(at%kv.N), kv.ValBytes)
		c.InBytes += uint64(kv.ValBytes)
		c.OutBytes += uint64(kv.ValBytes)
		e.Loop(reqTop, true, isa.NoReg)
	}
}

// HBaseWrite appends records: memstore insert plus a sequential
// write-ahead-log append.
type HBaseWrite struct {
	Scale KVScale
}

// Name implements Kernel.
func (k *HBaseWrite) Name() string { return "HBase-Write" }

// Run implements Kernel.
func (k *HBaseWrite) Run(c *Ctx) {
	kv := datagen.NewKVStore(c.L, k.Scale.Seed^0x77, k.Scale.Records, k.Scale.ValBytes)
	memstore := newHashTable(c.L, 1<<16)
	walBase := c.L.Alloc(64 << 20)
	walOff := uint64(0)
	e, rt := c.E, c.RT
	n := 0
	reqTop := e.Here()
	for e.OK() {
		key := kv.Keys[c.Rng.Intn(kv.N)] + uint64(n)
		rt.Request(kv.ValBytes)
		c.Records++
		memstore.add(e, int64(key), int64(n))
		// WAL append: sequential stores of the value.
		top := e.Here()
		for off := 0; off < kv.ValBytes; off += 16 {
			v := e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
			e.Store(walBase+walOff+uint64(off), 8, v, isa.NoReg)
			e.Loop(top, off+16 < kv.ValBytes, v)
		}
		walOff = (walOff + uint64(kv.ValBytes)) % (60 << 20)
		c.InBytes += uint64(kv.ValBytes)
		c.OutBytes += uint64(kv.ValBytes)
		n++
		// Periodic memstore flush: sorted run emission.
		if n%4096 == 0 {
			rt.TaskStart()
			rt.Shuffle(4096 * kv.ValBytes / 64)
			c.InterBytes += uint64(4096 * kv.ValBytes / 64)
		}
		e.Loop(reqTop, true, isa.NoReg)
	}
}

// HBaseScan reads a contiguous range of records per request.
type HBaseScan struct {
	Scale KVScale
	Range int
}

// Name implements Kernel.
func (k *HBaseScan) Name() string { return "HBase-Scan" }

// Run implements Kernel.
func (k *HBaseScan) Run(c *Ctx) {
	kv := datagen.NewKVStore(c.L, k.Scale.Seed^0x5C, k.Scale.Records, k.Scale.ValBytes)
	rng := k.Range
	if rng == 0 {
		rng = 32
	}
	e, rt := c.E, c.RT
	reqTop := e.Here()
	for e.OK() {
		idx := kv.Pop.Sample(c.Rng)
		rt.Request(rng * kv.ValBytes / 4)
		c.Records++
		at := bsearchEmit(e, kv.IndexBase, kv.Keys, kv.Keys[idx])
		for i := 0; i < rng && e.OK(); i++ {
			copyValue(c, kv.ValAddr((at+i)%kv.N), kv.ValBytes/4)
			c.InBytes += uint64(kv.ValBytes)
			c.OutBytes += uint64(kv.ValBytes)
		}
		e.Loop(reqTop, true, isa.NoReg)
	}
}
