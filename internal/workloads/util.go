package workloads

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/xrand"
)

// loadIdx emits an integer address calculation followed by a load of
// element idx of an array at base with elem-byte elements, returning
// the value register.
func loadIdx(e *trace.Emitter, base uint64, idx int, elem uint64, dep isa.Reg) isa.Reg {
	a := e.Int(isa.IntAddr, dep, isa.NoReg)
	return e.Load(base+uint64(idx)*elem, accSize(elem), a)
}

// loadFPIdx is loadIdx for floating-point arrays (the address
// calculation retires as the paper's "FP address" integer class).
func loadFPIdx(e *trace.Emitter, base uint64, idx int, elem uint64, dep isa.Reg) isa.Reg {
	a := e.Int(isa.FPAddr, dep, isa.NoReg)
	return e.Load(base+uint64(idx)*elem, accSize(elem), a)
}

// storeIdx emits an address calculation and a store to element idx.
func storeIdx(e *trace.Emitter, base uint64, idx int, elem uint64, val isa.Reg) {
	a := e.Int(isa.IntAddr, val, isa.NoReg)
	e.Store(base+uint64(idx)*elem, accSize(elem), val, a)
}

// storeFPIdx is storeIdx for floating-point arrays.
func storeFPIdx(e *trace.Emitter, base uint64, idx int, elem uint64, val isa.Reg) {
	a := e.Int(isa.FPAddr, val, isa.NoReg)
	e.Store(base+uint64(idx)*elem, accSize(elem), val, a)
}

func accSize(elem uint64) uint8 {
	if elem > 8 {
		return 8
	}
	return uint8(elem)
}

// scanBytes emits the byte-scanning loop of text kernels: per 8 input
// bytes, one load plus the per-byte classify/mask work a real
// tokenizer does, a word-boundary test, and a backward loop branch —
// the canonical "simple and conditional judgement operations" kernel
// shape the paper describes.
func scanBytes(e *trace.Emitter, base uint64, start, end int32, acc isa.Reg) {
	top := e.Here()
	for off := start; off < end; off += 8 {
		v := e.Load(base+uint64(off), 8, isa.NoReg)
		e.IntTo(acc, isa.IntAlu, acc, v)
		e.Int(isa.IntAddr, v, isa.NoReg)
		e.Int(isa.IntAlu, v, acc)
		e.Int(isa.IntAddr, v, isa.NoReg)
		// Word-boundary test: most 8-byte windows contain a boundary,
		// so the branch is biased taken with data-driven exceptions.
		boundary := (off/8)%4 != 3
		e.Branch(boundary, acc)
		e.Loop(top, off+8 < end, acc)
	}
}

// hashWord emits the per-word hash mixing of a tokenizer (FNV-style:
// multiply+xor per couple of bytes).
func hashWord(e *trace.Emitter, wordLen int, dep isa.Reg) isa.Reg {
	h := dep
	for b := 0; b < wordLen; b += 2 {
		h = e.Int(isa.IntMul, h, isa.NoReg)
		h = e.Int(isa.IntAlu, h, isa.NoReg)
	}
	return h
}

// hashTable is an open-addressing hash table that exists both as real
// Go arrays (so probes have real outcomes) and as a simulated memory
// region (so probes have real address streams). Buckets are 16 bytes:
// key and value words.
type hashTable struct {
	keys []int64 // 0 = empty, otherwise key+1
	vals []int64
	base uint64
	mask uint64
	// Entries counts occupied buckets.
	Entries int
}

func newHashTable(l *mem.Layout, slots int) *hashTable {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &hashTable{
		keys: make([]int64, n),
		vals: make([]int64, n),
		base: l.AllocArray(n, 16),
		mask: uint64(n - 1),
	}
}

func (t *hashTable) slotAddr(idx uint64) uint64 { return t.base + idx*16 }

// probe emits the lookup of key: hash mixing, then a linear-probing
// loop of load+compare+branch per step with the real outcomes of the
// real table. It returns the bucket index and whether the key was
// present.
func (t *hashTable) probe(e *trace.Emitter, key int64) (uint64, bool) {
	h := e.Int(isa.IntMul, isa.NoReg, isa.NoReg) // hash mix
	h = e.Int(isa.IntAlu, h, isa.NoReg)
	idx := xrand.Hash64(uint64(key)) & t.mask
	for {
		k := loadIdx(e, t.base, int(idx), 16, h)
		switch t.keys[idx] {
		case key + 1: // hit: exit loop (branch not taken)
			e.Branch(false, k)
			return idx, true
		case 0: // empty: exit loop (branch not taken on empty test)
			e.Branch(false, k)
			return idx, false
		default: // occupied by another key: keep probing
			e.Branch(true, k)
			idx = (idx + 1) & t.mask
		}
	}
}

// probeVec emits a branch-free (vectorized/predicated) lookup: the
// bucket compare is evaluated into a mask instead of branching, the way
// columnar engines evaluate hash joins over batches. Collision chains
// still walk with real (taken) branches.
func (t *hashTable) probeVec(e *trace.Emitter, key int64) (uint64, bool) {
	h := e.Int(isa.IntMul, isa.NoReg, isa.NoReg)
	h = e.Int(isa.IntAlu, h, isa.NoReg)
	idx := xrand.Hash64(uint64(key)) & t.mask
	for {
		k := loadIdx(e, t.base, int(idx), 16, h)
		switch t.keys[idx] {
		case key + 1:
			e.Int(isa.IntAlu, k, isa.NoReg) // compare into mask
			return idx, true
		case 0:
			e.Int(isa.IntAlu, k, isa.NoReg)
			return idx, false
		default:
			e.Branch(true, k) // rare collision walk
			idx = (idx + 1) & t.mask
		}
	}
}

// add emits a lookup-and-accumulate: on hit the value word is loaded,
// incremented by delta and stored back; on miss the key is inserted
// with value delta. It returns true when the key was new.
func (t *hashTable) add(e *trace.Emitter, key, delta int64) bool {
	idx, found := t.probe(e, key)
	a := e.Int(isa.IntAddr, isa.NoReg, isa.NoReg)
	if found {
		v := e.Load(t.slotAddr(idx)+8, 8, a)
		v = e.IntTo(v, isa.IntAlu, v, isa.NoReg)
		e.Store(t.slotAddr(idx)+8, 8, v, a)
		t.vals[idx] += delta
		return false
	}
	e.Store(t.slotAddr(idx), 8, a, isa.NoReg)
	e.Store(t.slotAddr(idx)+8, 8, a, isa.NoReg)
	t.keys[idx] = key + 1
	t.vals[idx] = delta
	t.Entries++
	return true
}

// addFP is add with a floating-point accumulate (Hive/Shark-style
// SUM(double) aggregation).
func (t *hashTable) addFP(e *trace.Emitter, key int64, delta float64) bool {
	idx, found := t.probe(e, key)
	a := e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
	if found {
		v := e.Load(t.slotAddr(idx)+8, 8, a)
		v = e.FPTo(v, isa.FPArith, v, isa.NoReg)
		e.Store(t.slotAddr(idx)+8, 8, v, a)
		t.vals[idx] += int64(delta)
		return false
	}
	e.Store(t.slotAddr(idx), 8, a, isa.NoReg)
	e.Store(t.slotAddr(idx)+8, 8, a, isa.NoReg)
	t.keys[idx] = key + 1
	t.vals[idx] = int64(delta)
	t.Entries++
	return true
}

// mergeSortEmit sorts keys in place while emitting the compare/move
// traffic of a bottom-up merge sort between the simulated arrays at
// aBase and bBase (each len(keys)*8 bytes). It stops early when the
// emitter's budget runs out; the real sort still completes so callers
// get correct results.
func mergeSortEmit(e *trace.Emitter, keys []int64, aBase, bBase uint64) {
	n := len(keys)
	src := keys
	dst := make([]int64, n)
	sb, db := aBase, bBase
	for width := 1; width < n; width *= 2 {
		// One merge pass = one inner loop in the real code: a single
		// code address for every block of this pass.
		branchless := width < 16 // small runs sort with predicated min/max
		mergeTop := e.Here()
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				takeLeft := j >= hi || (i < mid && src[i] <= src[j])
				if e.OK() {
					// Real record merges compare serialized keys, pick a
					// side, then move the record: the value copy
					// dominates the instruction count, as in a real
					// sort of sized records. Small runs use predicated
					// (branch-free) min/max, as tuned sorts do; larger
					// merges branch on the real comparison outcome.
					a := loadIdx(e, sb, i%n, 8, isa.NoReg)
					b := loadIdx(e, sb, j%n, 8, isa.NoReg)
					cmp := e.Int(isa.IntAlu, a, b)
					e.Int(isa.IntAlu, cmp, isa.NoReg)
					if branchless {
						e.Int(isa.IntAlu, cmp, a)
					} else {
						e.Branch(takeLeft, cmp)
					}
					src64 := sb
					if !takeLeft {
						src64 = db
					}
					mv := e.Fixed(7)
					for word := 0; word < 4; word++ {
						mv = e.LoadTo(mv, src64+uint64((k%n)*32+word*8), 8, isa.NoReg)
						e.Store(db+uint64((k%n)*32+word*8), 8, mv, isa.NoReg)
					}
					e.Int(isa.IntAddr, cmp, isa.NoReg)
					e.Int(isa.IntAddr, cmp, isa.NoReg)
					e.Loop(mergeTop, k+1 < hi, cmp)
				}
				if takeLeft {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
		sb, db = db, sb
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// bsearchEmit performs a real binary search over keys for target,
// emitting the load+compare+branch of each step (the classic
// unpredictable-branch pattern of index lookups). It returns the
// insertion index.
func bsearchEmit(e *trace.Emitter, base uint64, keys []uint64, target uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		v := loadIdx(e, base, mid, 8, isa.NoReg)
		goRight := keys[mid] < target
		e.Branch(goRight, v)
		if goRight {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func nextPow2(x int) int {
	n := 1
	for n < x {
		n <<= 1
	}
	return n
}
