package workloads

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
)

// TPCDSScale sizes the star schema for the decision-support queries
// (Table 1 dataset 7).
type TPCDSScale struct {
	FactRows int
	Seed     uint64
}

// DefaultTPCDS is the simulation-scale TPC-DS shape.
func DefaultTPCDS() TPCDSScale {
	return TPCDSScale{FactRows: 150000, Seed: 0xD5}
}

// buildDimFilter scans a dimension column once (emitting the scan) and
// returns the set of surrogate keys passing pred, loaded into a
// simulated hash set.
func buildDimFilter(c *Ctx, t *datagen.Table, keyCol, valCol string, pred func(int64) bool) (*hashTable, map[int64]int64) {
	key := t.Col(keyCol)
	val := t.Col(valCol)
	// Size the hash set to the filtered cardinality (queries build
	// tight semi-join sets, which is what keeps their probes
	// cache-resident).
	matches := 0
	for i := 0; i < t.Rows; i++ {
		if pred(val.Vals[i]) {
			matches++
		}
	}
	tbl := newHashTable(c.L, matches*2+16)
	pass := make(map[int64]int64, matches)
	e := c.E
	scanTop := e.Here()
	for i := 0; i < t.Rows && e.OK(); i++ {
		v := loadIdx(e, val.Base, i, 8, isa.NoReg)
		ok := pred(val.Vals[i])
		e.Branch(ok, v)
		if ok {
			tbl.add(e, key.Vals[i], val.Vals[i])
			pass[key.Vals[i]] = val.Vals[i]
		}
		c.Records++
		e.Loop(scanTop, i+1 < t.Rows, v)
	}
	c.InBytes += uint64(t.Rows * len(t.Cols) * 8)
	return tbl, pass
}

// TPCDSQ3 is TPC-DS query 3 (H-TPC-DS-query3 in Table 2): filter the
// date dimension to one month, join store_sales, join item, and
// aggregate revenue by brand.
type TPCDSQ3 struct {
	Scale TPCDSScale
}

// Name implements Kernel.
func (k *TPCDSQ3) Name() string { return "TPCDS-Q3" }

// Run implements Kernel.
func (k *TPCDSQ3) Run(c *Ctx) {
	d := datagen.NewTPCDS(c.L, k.Scale.Seed, k.Scale.FactRows)
	e, rt := c.E, c.RT
	rowBytes := 5 * 8
	for e.OK() {
		rt.TaskStart()
		dateSet, datePass := buildDimFilter(c, d.DateDim, "d_date_sk", "d_moy",
			func(m int64) bool { return m == 12 })
		brandOf := d.Item.Col("i_brand_id")
		agg := newHashTable(c.L, 1024)
		dateCol := d.StoreSales.Col("ss_sold_date_sk")
		itemCol := d.StoreSales.Col("ss_item_sk")
		priceCol := d.StoreSales.Col("ss_sales_price")
		factTop := e.Here()
		for i := 0; i < d.StoreSales.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			dk := loadIdx(e, dateCol.Base, i, 8, isa.NoReg)
			_, dateHit := dateSet.probe(e, dateCol.Vals[i])
			_, inMonth := datePass[dateCol.Vals[i]]
			if dateHit && inMonth {
				ik := loadIdx(e, itemCol.Base, i, 8, dk)
				pv := loadIdx(e, priceCol.Base, i, 8, ik)
				brand := brandOf.Vals[itemCol.Vals[i]]
				agg.addFP(e, brand, float64(priceCol.Vals[i]))
				_ = pv
			}
			c.Records++
			e.Loop(factTop, i+1 < d.StoreSales.Rows, dk)
		}
		rt.Shuffle(agg.Entries * 16)
		c.InterBytes += uint64(agg.Entries * 16)
		c.OutBytes = uint64(agg.Entries * 16)
		rt.EmitKV(agg.Entries * 16 / 4)
	}
}

// TPCDSQ8 is TPC-DS query 8 (S-TPC-DS-query8): join store_sales with a
// filtered customer dimension and aggregate by category. Under Shark's
// columnar batches the probe loop dominates, giving the high IPC the
// paper reports for S-TPC-DS-query8 (1.7).
type TPCDSQ8 struct {
	Scale TPCDSScale
}

// Name implements Kernel.
func (k *TPCDSQ8) Name() string { return "TPCDS-Q8" }

// Run implements Kernel.
func (k *TPCDSQ8) Run(c *Ctx) {
	d := datagen.NewTPCDS(c.L, k.Scale.Seed^0x8, k.Scale.FactRows)
	e, rt := c.E, c.RT
	rowBytes := 5 * 8
	for e.OK() {
		rt.TaskStart()
		custSet, _ := buildDimFilter(c, d.Customer, "c_customer_sk", "c_county",
			func(county int64) bool { return county < 10 })
		catOf := d.Item.Col("i_category_id")
		agg := newHashTable(c.L, 64)
		custCol := d.StoreSales.Col("ss_customer_sk")
		itemCol := d.StoreSales.Col("ss_item_sk")
		qtyCol := d.StoreSales.Col("ss_quantity")
		vectorized := rt.D.Batch() > 1
		factTop := e.Here()
		for i := 0; i < d.StoreSales.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			ck := loadIdx(e, custCol.Base, i, 8, isa.NoReg)
			var custHit bool
			if vectorized {
				_, custHit = custSet.probeVec(e, custCol.Vals[i])
			} else {
				_, custHit = custSet.probe(e, custCol.Vals[i])
			}
			if custHit {
				iv := loadIdx(e, itemCol.Base, i, 8, ck)
				qv := loadIdx(e, qtyCol.Base, i, 8, iv)
				cat := catOf.Vals[itemCol.Vals[i]]
				agg.addFP(e, cat, float64(qtyCol.Vals[i]))
				_ = qv
			}
			c.Records++
			e.Loop(factTop, i+1 < d.StoreSales.Rows, ck)
		}
		rt.Shuffle(agg.Entries * 16)
		c.InterBytes += uint64(agg.Entries * 16)
		c.OutBytes = uint64(agg.Entries * 16)
	}
}

// TPCDSQ10 is TPC-DS query 10 (S-TPC-DS-query10): customer-centric
// semi-join — mark customers with store sales in a date range, then
// filter and count customers by demographic columns.
type TPCDSQ10 struct {
	Scale TPCDSScale
}

// Name implements Kernel.
func (k *TPCDSQ10) Name() string { return "TPCDS-Q10" }

// Run implements Kernel.
func (k *TPCDSQ10) Run(c *Ctx) {
	d := datagen.NewTPCDS(c.L, k.Scale.Seed^0x10, k.Scale.FactRows)
	e, rt := c.E, c.RT
	rowBytes := 5 * 8
	for e.OK() {
		rt.TaskStart()
		// Phase 1: semi-join marks via the fact table.
		seen := newHashTable(c.L, d.Customer.Rows*2)
		custCol := d.StoreSales.Col("ss_customer_sk")
		dateCol := d.StoreSales.Col("ss_sold_date_sk")
		vectorized := rt.D.Batch() > 1
		markTop := e.Here()
		for i := 0; i < d.StoreSales.Rows && e.OK(); i++ {
			if i%2048 == 0 {
				readRows(c, 2048, rowBytes)
			}
			dk := loadIdx(e, dateCol.Base, i, 8, isa.NoReg)
			inRange := dateCol.Vals[i] < 400
			if vectorized {
				e.Int(isa.IntAlu, dk, isa.NoReg)
			} else {
				e.Branch(inRange, dk)
			}
			if inRange {
				seen.add(e, custCol.Vals[i], 1)
			}
			c.Records++
			e.Loop(markTop, i+1 < d.StoreSales.Rows, dk)
		}
		// Phase 2: scan customers, probe marks, aggregate by birth
		// decade.
		birth := d.Customer.Col("c_birth_year")
		key := d.Customer.Col("c_customer_sk")
		agg := newHashTable(c.L, 32)
		custTop := e.Here()
		for i := 0; i < d.Customer.Rows && e.OK(); i++ {
			kv := loadIdx(e, key.Base, i, 8, isa.NoReg)
			var hit bool
			if vectorized {
				_, hit = seen.probeVec(e, key.Vals[i])
			} else {
				_, hit = seen.probe(e, key.Vals[i])
			}
			if hit {
				bv := loadIdx(e, birth.Base, i, 8, kv)
				agg.add(e, birth.Vals[i]/10, 1)
				_ = bv
			}
			c.Records++
			e.Loop(custTop, i+1 < d.Customer.Rows, kv)
		}
		c.InBytes += uint64(d.Customer.Rows * 3 * 8)
		rt.Shuffle(agg.Entries * 16)
		c.OutBytes = uint64(agg.Entries * 16)
	}
}
