package datagen

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/sim/mem"
)

// withStore swaps the content store for the test's duration.
func withStore(t *testing.T, s *artifact.Store) {
	t.Helper()
	prev := SetStore(s)
	t.Cleanup(func() { SetStore(prev) })
}

// TestContentGeneratedOncePerProcess builds the same corpus for two
// independent runs: one generation, shared backing arrays, identical
// simulated addresses.
func TestContentGeneratedOncePerProcess(t *testing.T) {
	withStore(t, artifact.New())
	g0 := Generations()
	a := NewText(mem.NewLayout(), DefaultWiki())
	b := NewText(mem.NewLayout(), DefaultWiki())
	if got := Generations() - g0; got != 1 {
		t.Fatalf("two builds executed %d generations, want 1", got)
	}
	if &a.Buf[0] != &b.Buf[0] {
		t.Fatal("same-config corpora do not share content")
	}
	if a.Base != b.Base {
		t.Fatalf("binding changed addresses: %#x vs %#x", a.Base, b.Base)
	}
	// A different config is a different artefact.
	cfg := DefaultWiki()
	cfg.Seed++
	NewText(mem.NewLayout(), cfg)
	if got := Generations() - g0; got != 2 {
		t.Fatalf("distinct config did not generate (%d generations)", got)
	}
}

// TestAllDatasetsPersistAcrossStores generates all seven Table 1
// datasets against one disk store, then rebuilds them through a fresh
// store over the same directory (modelling a new process): content
// must round-trip identically with zero regenerations.
func TestAllDatasetsPersistAcrossStores(t *testing.T) {
	dir := t.TempDir()
	cold, err := artifact.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	withStore(t, cold)

	build := func() (l *mem.Layout, vals []any) {
		l = mem.NewLayout()
		wiki := NewText(l, DefaultWiki())
		rev := NewReviews(l, DefaultWiki(), 5)
		g := NewGraph(l, DefaultWebGraph())
		fb := NewGraph(l, DefaultSocialGraph())
		ec := NewECommerce(l, 0xEC0, 4000, 12000)
		kv := NewKVStore(l, 0x4856, 6000, 1128)
		ds := NewTPCDS(l, 0xD5, 15000)
		pts := NewPoints(l, 0xFB, 2000, 8, 16)
		return l, []any{
			wiki.Buf, wiki.Lines, wiki.WordIDs, wiki.Base,
			rev.Labels,
			g.Off, g.Adj, g.OffBase, g.AdjBase,
			fb.Off, fb.Adj,
			ec.Orders.Col("amount").Vals, ec.Items.Col("order_id").Vals, ec.Items.Col("order_id").Base,
			kv.Keys, kv.ValBase,
			ds.StoreSales.Col("ss_item_sk").Vals, ds.StoreSales.Col("ss_item_sk").Base,
			pts.X, pts.Base,
		}
	}
	_, want := build()

	warm, err := artifact.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetStore(warm)
	g0 := Generations()
	_, got := build()
	if d := Generations() - g0; d != 0 {
		t.Fatalf("warm store executed %d generations, want 0", d)
	}
	// All content comes from disk; the only compute allowed is the
	// memory-tier Zipf sampler rebuild (derived state, never persisted).
	if st := warm.Stats(); st.Fills > 1 || st.BackendHits < 8 || st.BackendDiscards != 0 {
		t.Fatalf("warm store stats %+v, want pure disk hits (+1 sampler rebuild)", st)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("dataset field %d differs between generated and persisted content", i)
		}
	}
}

// TestConcurrentDatasetBuilds hammers the keyed constructors from many
// goroutines (run under -race): per distinct artefact, one generation.
func TestConcurrentDatasetBuilds(t *testing.T) {
	withStore(t, artifact.New())
	g0 := Generations()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := mem.NewLayout()
			NewText(l, DefaultWiki())
			NewGraph(l, DefaultWebGraph())
			NewECommerce(l, 0xEC0, 1000, 3000)
			NewKVStore(l, 0x4856, 2000, 1128)
		}()
	}
	wg.Wait()
	if d := Generations() - g0; d != 4 {
		t.Fatalf("16 concurrent builders executed %d generations, want 4", d)
	}
}

// TestKVStoreSharesPopularitySampler pins the derived-state contract:
// same-shape stores share one immutable Zipf sampler.
func TestKVStoreSharesPopularitySampler(t *testing.T) {
	withStore(t, artifact.New())
	a := NewKVStore(mem.NewLayout(), 0x4856, 3000, 1128)
	b := NewKVStore(mem.NewLayout(), 0x4856^0x77, 3000, 1128)
	if a.Pop != b.Pop {
		t.Fatal("same-n stores rebuilt the popularity sampler")
	}
	if a.Pop.N() != 3000 {
		t.Fatalf("sampler over %d items, want 3000", a.Pop.N())
	}
}
