package datagen

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/mem"
)

func TestTextDeterministic(t *testing.T) {
	a := NewText(mem.NewLayout(), DefaultWiki())
	b := NewText(mem.NewLayout(), DefaultWiki())
	if len(a.Buf) != len(b.Buf) || len(a.Lines) != len(b.Lines) {
		t.Fatal("same-seed corpora differ in size")
	}
	for i := range a.Buf {
		if a.Buf[i] != b.Buf[i] {
			t.Fatalf("same-seed corpora differ at byte %d", i)
		}
	}
}

func TestTextSpansValid(t *testing.T) {
	tx := NewText(mem.NewLayout(), DefaultWiki())
	for i, sp := range tx.Lines {
		if sp.Start > sp.End || int(sp.End) > len(tx.Buf) {
			t.Fatalf("line %d span [%d,%d) invalid for %d bytes", i, sp.Start, sp.End, len(tx.Buf))
		}
		if len(tx.WordIDs[i]) == 0 {
			t.Fatalf("line %d has no words", i)
		}
		for _, id := range tx.WordIDs[i] {
			if id < 0 || int(id) >= tx.Vocab {
				t.Fatalf("line %d word id %d out of vocab %d", i, id, tx.Vocab)
			}
		}
	}
}

func TestTextZipfSkew(t *testing.T) {
	tx := NewText(mem.NewLayout(), DefaultWiki())
	counts := make([]int, tx.Vocab)
	total := 0
	for _, ids := range tx.WordIDs {
		for _, id := range ids {
			counts[id]++
			total++
		}
	}
	top := 0
	for id := 0; id < 100; id++ {
		top += counts[id]
	}
	if float64(top)/float64(total) < 0.2 {
		t.Fatalf("top-100 words carry only %.1f%% of tokens; want Zipfian skew",
			100*float64(top)/float64(total))
	}
}

func TestGraphCSRWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGraph(mem.NewLayout(), GraphConfig{Nodes: 500, AvgDegree: 5, Seed: seed})
		if len(g.Off) != g.N+1 || g.Off[0] != 0 {
			return false
		}
		for v := 0; v < g.N; v++ {
			if g.Off[v] > g.Off[v+1] {
				return false
			}
		}
		if int(g.Off[g.N]) != len(g.Adj) {
			return false
		}
		for _, tgt := range g.Adj {
			if tgt < 0 || int(tgt) >= g.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDegreeSkew(t *testing.T) {
	g := NewGraph(mem.NewLayout(), DefaultWebGraph())
	indeg := make([]int, g.N)
	for _, tgt := range g.Adj {
		indeg[tgt]++
	}
	maxDeg, sum := 0, 0
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	avg := float64(sum) / float64(g.N)
	if float64(maxDeg) < 10*avg {
		t.Fatalf("max in-degree %d vs avg %.1f: no heavy tail", maxDeg, avg)
	}
}

func TestECommerceSchema(t *testing.T) {
	ec := NewECommerce(mem.NewLayout(), 1, 1000, 4000)
	if len(ec.Orders.Cols) != 4 {
		t.Fatalf("order table has %d columns, want 4 (Table 1)", len(ec.Orders.Cols))
	}
	if len(ec.Items.Cols) != 6 {
		t.Fatalf("item table has %d columns, want 6 (Table 1)", len(ec.Items.Cols))
	}
	fk := ec.Items.Col("order_id")
	for i, v := range fk.Vals {
		if v < 0 || v >= int64(ec.Orders.Rows) {
			t.Fatalf("item %d references missing order %d", i, v)
		}
	}
}

func TestTPCDSStarIntegrity(t *testing.T) {
	d := NewTPCDS(mem.NewLayout(), 2, 5000)
	for _, ref := range []struct {
		col *Column
		dim *Table
	}{
		{d.StoreSales.Col("ss_sold_date_sk"), d.DateDim},
		{d.StoreSales.Col("ss_item_sk"), d.Item},
		{d.StoreSales.Col("ss_customer_sk"), d.Customer},
	} {
		for i, v := range ref.col.Vals {
			if v < 0 || v >= int64(ref.dim.Rows) {
				t.Fatalf("fact row %d: dangling %s = %d", i, ref.col.Name, v)
			}
		}
	}
}

func TestKVStoreSortedKeys(t *testing.T) {
	kv := NewKVStore(mem.NewLayout(), 3, 10000, 1128)
	for i := 1; i < kv.N; i++ {
		if kv.Keys[i] <= kv.Keys[i-1] {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
	}
	if kv.ValBytes != 1128 {
		t.Fatal("ProfSearch record size should be 1128 bytes (Table 2)")
	}
}

func TestPointsShape(t *testing.T) {
	p := NewPoints(mem.NewLayout(), 4, 1000, 8, 10)
	if len(p.X) != 1000*8 {
		t.Fatalf("points array %d, want %d", len(p.X), 8000)
	}
	// Clustered generation: variance should be well above noise.
	var mean float64
	for _, v := range p.X {
		mean += float64(v)
	}
	mean /= float64(len(p.X))
	var variance float64
	for _, v := range p.X {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(len(p.X))
	if variance < 2 {
		t.Fatalf("points variance %.2f too small for clustered data", variance)
	}
}

func TestTableColPanicsOnMissing(t *testing.T) {
	ec := NewECommerce(mem.NewLayout(), 1, 100, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("missing column did not panic")
		}
	}()
	ec.Orders.Col("nope")
}
