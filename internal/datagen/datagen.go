// Package datagen provides seeded synthetic equivalents of the seven
// BigDataBench datasets in the paper's Table 1, at simulation scale.
//
// It stands in for BDGS (the BigDataBench Data Generator Suite): each
// generator keeps the documented record shape (64 KB-block Wikipedia
// text, 52-byte e-commerce transactions, 1128-byte ProfSearch resumes,
// the Google web graph's skewed degree distribution, ...) while scaling
// the record count down to what a trace-driven micro-architecture
// simulation needs. Every generated object carries both its real
// content (ordinary Go values the kernels compute on) and a simulated
// base address (so the cache models see the right access streams).
package datagen

import (
	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

// Span is a half-open [Start, End) byte range into a buffer.
type Span struct {
	Start, End int32
}

// Len returns the span length.
func (s Span) Len() int { return int(s.End - s.Start) }

// Text is a corpus of newline-free text records ("lines"): the unit a
// map function sees. Blocks of ~64 KB group lines into the K-V records
// of the paper's Table 2.
type Text struct {
	// Base is the simulated address of Buf[0].
	Base uint64
	// Buf holds the raw bytes; words are separated by single spaces.
	Buf []byte
	// Lines are the record spans.
	Lines []Span
	// WordIDs[i] lists the vocabulary ids of line i's words, in order
	// (kept so kernels avoid re-tokenizing when they only need ids).
	WordIDs [][]int32
	// Vocab is the vocabulary size.
	Vocab int
}

// TextConfig sizes a Text corpus.
type TextConfig struct {
	Lines        int
	WordsPerLine int
	Vocab        int
	ZipfS        float64
	Seed         uint64
}

// DefaultWiki is the simulation-scale Wikipedia corpus shape.
func DefaultWiki() TextConfig {
	return TextConfig{Lines: 4000, WordsPerLine: 12, Vocab: 8000, ZipfS: 1.05, Seed: 0x57494B49}
}

// NewText builds a corpus, reserving simulated memory from l.
func NewText(l *mem.Layout, cfg TextConfig) *Text {
	r := xrand.New(cfg.Seed)
	z := xrand.NewZipf(cfg.Vocab, cfg.ZipfS)
	t := &Text{Vocab: cfg.Vocab}
	t.Buf = make([]byte, 0, cfg.Lines*cfg.WordsPerLine*7)
	t.Lines = make([]Span, 0, cfg.Lines)
	t.WordIDs = make([][]int32, 0, cfg.Lines)
	for i := 0; i < cfg.Lines; i++ {
		start := int32(len(t.Buf))
		nw := cfg.WordsPerLine/2 + r.Intn(cfg.WordsPerLine)
		ids := make([]int32, 0, nw)
		for w := 0; w < nw; w++ {
			id := z.Sample(r)
			ids = append(ids, int32(id))
			if w > 0 {
				t.Buf = append(t.Buf, ' ')
			}
			t.Buf = appendWord(t.Buf, id)
		}
		t.Lines = append(t.Lines, Span{Start: start, End: int32(len(t.Buf))})
		t.WordIDs = append(t.WordIDs, ids)
	}
	t.Base = l.AllocArray(len(t.Buf), 1)
	return t
}

// AddrOf returns the simulated address of byte offset off.
func (t *Text) AddrOf(off int32) uint64 { return t.Base + uint64(off) }

// Bytes returns the total corpus size in bytes.
func (t *Text) Bytes() int { return len(t.Buf) }

// appendWord derives a deterministic 3..11-letter word for id.
func appendWord(buf []byte, id int) []byte {
	h := xrand.Hash64(uint64(id) + 0x9E37)
	n := 3 + int(h%9)
	for i := 0; i < n; i++ {
		buf = append(buf, byte('a'+(h>>(5*uint(i%10)))%26))
	}
	return buf
}

// Reviews is the Amazon-movie-reviews-like labelled corpus used by the
// Bayes workloads: text plus a class label per record.
type Reviews struct {
	Text   *Text
	Labels []int8 // class per line, 0..NumClasses-1
	// NumClasses is the label cardinality (5 star ratings).
	NumClasses int
}

// NewReviews builds a labelled corpus.
func NewReviews(l *mem.Layout, cfg TextConfig, classes int) *Reviews {
	t := NewText(l, cfg)
	r := xrand.New(cfg.Seed ^ 0xBA7E5)
	labels := make([]int8, len(t.Lines))
	for i := range labels {
		labels[i] = int8(r.Intn(classes))
	}
	return &Reviews{Text: t, Labels: labels, NumClasses: classes}
}

// Graph is a directed graph in CSR form; the Google-web-graph and
// Facebook-social-network stand-ins. Generated with a preferential-
// attachment process so the in-degree distribution is heavy-tailed
// like the originals.
type Graph struct {
	N int
	// Off and Adj are the CSR arrays; node i's out-edges are
	// Adj[Off[i]:Off[i+1]].
	Off []int32
	Adj []int32
	// OffBase and AdjBase are the simulated addresses of the arrays.
	OffBase, AdjBase uint64
	// RankBase and NextBase address the two float64 rank arrays used
	// by PageRank-style kernels.
	RankBase, NextBase uint64
}

// GraphConfig sizes a graph.
type GraphConfig struct {
	Nodes     int
	AvgDegree int
	Seed      uint64
}

// DefaultWebGraph is the Google-web-graph stand-in shape. The node
// count keeps several full PageRank iterations inside one instruction
// budget (the real graph's micro-architectural signature comes from
// the skewed degrees and the scattered rank updates, not the node
// count).
func DefaultWebGraph() GraphConfig {
	return GraphConfig{Nodes: 6000, AvgDegree: 7, Seed: 0x600617E}
}

// DefaultSocialGraph is the Facebook-social-network stand-in shape
// (the original has 4039 nodes and 88234 edges, average degree ~22).
func DefaultSocialGraph() GraphConfig {
	return GraphConfig{Nodes: 4039, AvgDegree: 22, Seed: 0xFACEB0}
}

// NewGraph builds a preferential-attachment graph in CSR form.
func NewGraph(l *mem.Layout, cfg GraphConfig) *Graph {
	r := xrand.New(cfg.Seed)
	n := cfg.Nodes
	m := cfg.AvgDegree
	// Endpoint pool for preferential attachment: targets are sampled
	// from previously used endpoints with probability 1/2, uniformly
	// otherwise, yielding a heavy-tailed in-degree distribution.
	pool := make([]int32, 0, n*m)
	edges := make([][]int32, n)
	for v := 0; v < n; v++ {
		deg := 1 + r.Intn(2*m)
		for e := 0; e < deg; e++ {
			var tgt int32
			if len(pool) > 0 && r.Bool(0.5) {
				tgt = pool[r.Intn(len(pool))]
			} else {
				tgt = int32(r.Intn(n))
			}
			edges[v] = append(edges[v], tgt)
			pool = append(pool, tgt, int32(v))
		}
	}
	g := &Graph{N: n}
	g.Off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + int32(len(edges[v]))
	}
	g.Adj = make([]int32, g.Off[n])
	for v := 0; v < n; v++ {
		copy(g.Adj[g.Off[v]:], edges[v])
	}
	g.OffBase = l.AllocArray(n+1, 4)
	g.AdjBase = l.AllocArray(len(g.Adj), 4)
	g.RankBase = l.AllocArray(n, 8)
	g.NextBase = l.AllocArray(n, 8)
	return g
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Adj) }

// Points is a dense vector dataset for clustering (the paper drives
// K-means from the Facebook dataset; the micro-architectural behaviour
// is that of dense float vectors scanned against k centroids).
type Points struct {
	N, Dim int
	X      []float32
	// Base addresses the row-major point array; CentBase the centroid
	// array; AssignBase the per-point assignment array.
	Base, CentBase, AssignBase uint64
}

// NewPoints builds n points in dim dimensions around k latent centers.
func NewPoints(l *mem.Layout, seed uint64, n, dim, k int) *Points {
	r := xrand.New(seed)
	centers := make([]float32, k*dim)
	for i := range centers {
		centers[i] = float32(r.NormFloat64() * 5)
	}
	p := &Points{N: n, Dim: dim, X: make([]float32, n*dim)}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		for d := 0; d < dim; d++ {
			p.X[i*dim+d] = centers[c*dim+d] + float32(r.NormFloat64())
		}
	}
	p.Base = l.AllocArray(n*dim, 4)
	p.CentBase = l.AllocArray(k*dim, 4)
	p.AssignBase = l.AllocArray(n, 4)
	return p
}
