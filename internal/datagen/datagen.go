// Package datagen provides seeded synthetic equivalents of the seven
// BigDataBench datasets in the paper's Table 1, at simulation scale.
//
// It stands in for BDGS (the BigDataBench Data Generator Suite): each
// generator keeps the documented record shape (64 KB-block Wikipedia
// text, 52-byte e-commerce transactions, 1128-byte ProfSearch resumes,
// the Google web graph's skewed degree distribution, ...) while scaling
// the record count down to what a trace-driven micro-architecture
// simulation needs. Every generated object carries both its real
// content (ordinary Go values the kernels compute on) and a simulated
// base address (so the cache models see the right access streams).
//
// The builders are keyed constructors over the content-keyed artifact
// store: record content is a deterministic function of the
// configuration, so it is generated at most once per process (and at
// most once ever with a persistent store — see SetStore), then shared
// read-only by every run. Only the simulated addresses are bound per
// run, with exactly the allocation sequence the original single-pass
// builders performed, so a cached dataset is bit-identical — content
// and addresses — to a freshly generated one. Kernels must treat
// dataset content as immutable; mutable working state (ranks, labels,
// assignments) lives in per-run arrays the kernels allocate.
package datagen

import (
	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

// Span is a half-open [Start, End) byte range into a buffer.
type Span struct {
	Start, End int32
}

// Len returns the span length.
func (s Span) Len() int { return int(s.End - s.Start) }

// Text is a corpus of newline-free text records ("lines"): the unit a
// map function sees. Blocks of ~64 KB group lines into the K-V records
// of the paper's Table 2.
type Text struct {
	// Base is the simulated address of Buf[0].
	Base uint64
	// Buf holds the raw bytes; words are separated by single spaces.
	Buf []byte
	// Lines are the record spans.
	Lines []Span
	// WordIDs[i] lists the vocabulary ids of line i's words, in order
	// (kept so kernels avoid re-tokenizing when they only need ids).
	WordIDs [][]int32
	// Vocab is the vocabulary size.
	Vocab int
}

// TextConfig sizes a Text corpus.
type TextConfig struct {
	Lines        int
	WordsPerLine int
	Vocab        int
	ZipfS        float64
	Seed         uint64
}

// DefaultWiki is the simulation-scale Wikipedia corpus shape.
func DefaultWiki() TextConfig {
	return TextConfig{Lines: 4000, WordsPerLine: 12, Vocab: 8000, ZipfS: 1.05, Seed: 0x57494B49}
}

// NewText builds a corpus, reserving simulated memory from l. The
// record content comes from the artifact store (generated at most
// once per configuration) and is shared read-only across runs.
func NewText(l *mem.Layout, cfg TextConfig) *Text {
	c := textContent(cfg)
	t := &Text{Buf: c.Buf, Lines: c.Lines, WordIDs: c.WordIDs, Vocab: c.Vocab}
	t.Base = l.AllocArray(len(t.Buf), 1)
	return t
}

// AddrOf returns the simulated address of byte offset off.
func (t *Text) AddrOf(off int32) uint64 { return t.Base + uint64(off) }

// Bytes returns the total corpus size in bytes.
func (t *Text) Bytes() int { return len(t.Buf) }

// appendWord derives a deterministic 3..11-letter word for id.
func appendWord(buf []byte, id int) []byte {
	h := xrand.Hash64(uint64(id) + 0x9E37)
	n := 3 + int(h%9)
	for i := 0; i < n; i++ {
		buf = append(buf, byte('a'+(h>>(5*uint(i%10)))%26))
	}
	return buf
}

// Reviews is the Amazon-movie-reviews-like labelled corpus used by the
// Bayes workloads: text plus a class label per record.
type Reviews struct {
	Text   *Text
	Labels []int8 // class per line, 0..NumClasses-1
	// NumClasses is the label cardinality (5 star ratings).
	NumClasses int
}

// NewReviews builds a labelled corpus.
func NewReviews(l *mem.Layout, cfg TextConfig, classes int) *Reviews {
	t := NewText(l, cfg)
	rc := reviewsContent(cfg, classes)
	return &Reviews{Text: t, Labels: rc.Labels, NumClasses: rc.NumClasses}
}

// Graph is a directed graph in CSR form; the Google-web-graph and
// Facebook-social-network stand-ins. Generated with a preferential-
// attachment process so the in-degree distribution is heavy-tailed
// like the originals.
type Graph struct {
	N int
	// Off and Adj are the CSR arrays; node i's out-edges are
	// Adj[Off[i]:Off[i+1]].
	Off []int32
	Adj []int32
	// OffBase and AdjBase are the simulated addresses of the arrays.
	OffBase, AdjBase uint64
	// RankBase and NextBase address the two float64 rank arrays used
	// by PageRank-style kernels.
	RankBase, NextBase uint64
}

// GraphConfig sizes a graph.
type GraphConfig struct {
	Nodes     int
	AvgDegree int
	Seed      uint64
}

// DefaultWebGraph is the Google-web-graph stand-in shape. The node
// count keeps several full PageRank iterations inside one instruction
// budget (the real graph's micro-architectural signature comes from
// the skewed degrees and the scattered rank updates, not the node
// count).
func DefaultWebGraph() GraphConfig {
	return GraphConfig{Nodes: 6000, AvgDegree: 7, Seed: 0x600617E}
}

// DefaultSocialGraph is the Facebook-social-network stand-in shape
// (the original has 4039 nodes and 88234 edges, average degree ~22).
func DefaultSocialGraph() GraphConfig {
	return GraphConfig{Nodes: 4039, AvgDegree: 22, Seed: 0xFACEB0}
}

// NewGraph builds a preferential-attachment graph in CSR form, binding
// cached content to fresh simulated addresses.
func NewGraph(l *mem.Layout, cfg GraphConfig) *Graph {
	c := graphContent(cfg)
	g := &Graph{N: c.N, Off: c.Off, Adj: c.Adj}
	g.OffBase = l.AllocArray(g.N+1, 4)
	g.AdjBase = l.AllocArray(len(g.Adj), 4)
	g.RankBase = l.AllocArray(g.N, 8)
	g.NextBase = l.AllocArray(g.N, 8)
	return g
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Adj) }

// Points is a dense vector dataset for clustering (the paper drives
// K-means from the Facebook dataset; the micro-architectural behaviour
// is that of dense float vectors scanned against k centroids).
type Points struct {
	N, Dim int
	X      []float32
	// Base addresses the row-major point array; CentBase the centroid
	// array; AssignBase the per-point assignment array.
	Base, CentBase, AssignBase uint64
}

// NewPoints builds n points in dim dimensions around k latent centers.
func NewPoints(l *mem.Layout, seed uint64, n, dim, k int) *Points {
	c := pointsContent(seed, n, dim, k)
	p := &Points{N: c.N, Dim: c.Dim, X: c.X}
	p.Base = l.AllocArray(n*dim, 4)
	p.CentBase = l.AllocArray(k*dim, 4)
	p.AssignBase = l.AllocArray(n, 4)
	return p
}
