package datagen

// content.go holds the address-free halves of the dataset builders:
// pure record content, generated once per configuration through the
// artifact store and shared — read-only — by every workload run that
// binds it. Persisting the store (artifact.NewDisk) makes datasets
// survive across processes; generation order never affects simulated
// addresses because binding performs exactly the allocation sequence
// the original single-pass builders did.

import (
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/xrand"
)

var (
	storeMu    sync.Mutex
	storeOverr *artifact.Store

	generations atomic.Int64
)

// SetStore redirects dataset-content caching to s (pass a disk-backed
// store to persist datasets across processes; pass nil to return to
// the process-global default) and returns the previously active store.
func SetStore(s *artifact.Store) *artifact.Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	prev := storeOverr
	if prev == nil {
		prev = artifact.Default()
	}
	storeOverr = s
	return prev
}

func activeStore() *artifact.Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	if storeOverr != nil {
		return storeOverr
	}
	return artifact.Default()
}

// Generations reports how many dataset-content generations this
// process has actually executed — the probe behind "every dataset
// generates at most once per process, and not at all when a persisted
// store already holds it".
func Generations() int64 { return generations.Load() }

// fillContent routes one content build through the active store.
// Generators are deterministic and total, so errors (codec misuse,
// kind collisions) are programming errors and panic.
func fillContent[T any](kind string, cfg any, gen func() T) T {
	v, err := artifact.Get(activeStore(), artifact.KeyOf(kind, cfg), func() (T, error) {
		generations.Add(1)
		return gen(), nil
	})
	if err != nil {
		panic("datagen: " + err.Error())
	}
	return v
}

// TextContent is the record content of a Text corpus (everything but
// the simulated base address). Shared across runs; never mutate it.
type TextContent struct {
	Buf     []byte
	Lines   []Span
	WordIDs [][]int32
	Vocab   int
}

func textContent(cfg TextConfig) *TextContent {
	return fillContent("datagen-text", cfg, func() *TextContent {
		r := xrand.New(cfg.Seed)
		z := xrand.NewZipf(cfg.Vocab, cfg.ZipfS)
		t := &TextContent{Vocab: cfg.Vocab}
		t.Buf = make([]byte, 0, cfg.Lines*cfg.WordsPerLine*7)
		t.Lines = make([]Span, 0, cfg.Lines)
		t.WordIDs = make([][]int32, 0, cfg.Lines)
		for i := 0; i < cfg.Lines; i++ {
			start := int32(len(t.Buf))
			nw := cfg.WordsPerLine/2 + r.Intn(cfg.WordsPerLine)
			ids := make([]int32, 0, nw)
			for w := 0; w < nw; w++ {
				id := z.Sample(r)
				ids = append(ids, int32(id))
				if w > 0 {
					t.Buf = append(t.Buf, ' ')
				}
				t.Buf = appendWord(t.Buf, id)
			}
			t.Lines = append(t.Lines, Span{Start: start, End: int32(len(t.Buf))})
			t.WordIDs = append(t.WordIDs, ids)
		}
		return t
	})
}

// ReviewsContent is the labelling of a Reviews corpus.
type ReviewsContent struct {
	Labels     []int8
	NumClasses int
}

func reviewsContent(cfg TextConfig, classes int) *ReviewsContent {
	type key struct {
		Cfg     TextConfig
		Classes int
	}
	return fillContent("datagen-reviews", key{cfg, classes}, func() *ReviewsContent {
		t := textContent(cfg)
		r := xrand.New(cfg.Seed ^ 0xBA7E5)
		labels := make([]int8, len(t.Lines))
		for i := range labels {
			labels[i] = int8(r.Intn(classes))
		}
		return &ReviewsContent{Labels: labels, NumClasses: classes}
	})
}

// GraphContent is the CSR structure of a generated graph.
type GraphContent struct {
	N        int
	Off, Adj []int32
}

func graphContent(cfg GraphConfig) *GraphContent {
	return fillContent("datagen-graph", cfg, func() *GraphContent {
		r := xrand.New(cfg.Seed)
		n := cfg.Nodes
		m := cfg.AvgDegree
		// Endpoint pool for preferential attachment: targets are sampled
		// from previously used endpoints with probability 1/2, uniformly
		// otherwise, yielding a heavy-tailed in-degree distribution.
		pool := make([]int32, 0, n*m)
		edges := make([][]int32, n)
		for v := 0; v < n; v++ {
			deg := 1 + r.Intn(2*m)
			for e := 0; e < deg; e++ {
				var tgt int32
				if len(pool) > 0 && r.Bool(0.5) {
					tgt = pool[r.Intn(len(pool))]
				} else {
					tgt = int32(r.Intn(n))
				}
				edges[v] = append(edges[v], tgt)
				pool = append(pool, tgt, int32(v))
			}
		}
		g := &GraphContent{N: n}
		g.Off = make([]int32, n+1)
		for v := 0; v < n; v++ {
			g.Off[v+1] = g.Off[v] + int32(len(edges[v]))
		}
		g.Adj = make([]int32, g.Off[n])
		for v := 0; v < n; v++ {
			copy(g.Adj[g.Off[v]:], edges[v])
		}
		return g
	})
}

// PointsContent is the dense vector content of a Points dataset.
type PointsContent struct {
	N, Dim int
	X      []float32
}

func pointsContent(seed uint64, n, dim, k int) *PointsContent {
	type key struct {
		Seed      uint64
		N, Dim, K int
	}
	return fillContent("datagen-points", key{seed, n, dim, k}, func() *PointsContent {
		r := xrand.New(seed)
		centers := make([]float32, k*dim)
		for i := range centers {
			centers[i] = float32(r.NormFloat64() * 5)
		}
		p := &PointsContent{N: n, Dim: dim, X: make([]float32, n*dim)}
		for i := 0; i < n; i++ {
			c := r.Intn(k)
			for d := 0; d < dim; d++ {
				p.X[i*dim+d] = centers[c*dim+d] + float32(r.NormFloat64())
			}
		}
		return p
	})
}

// ColumnContent is one column's values; TableContent a full table.
type ColumnContent struct {
	Name string
	Vals []int64
}

// TableContent is the address-free half of a columnar Table.
type TableContent struct {
	Name string
	Rows int
	Cols []ColumnContent
}

// genTable builds one table's content with the same per-row generator
// contract newTable had: gen is called column-major, row-major within
// a column, off one shared RNG stream.
func genTable(name string, rows int, cols []string, gen func(r *xrand.Rand, col int, row int) int64, seed uint64) TableContent {
	r := xrand.New(seed)
	t := TableContent{Name: name, Rows: rows}
	for ci, cn := range cols {
		c := ColumnContent{Name: cn, Vals: make([]int64, rows)}
		for i := 0; i < rows; i++ {
			c.Vals[i] = gen(r, ci, i)
		}
		t.Cols = append(t.Cols, c)
	}
	return t
}

// ECommerceContent holds both transaction tables.
type ECommerceContent struct {
	Orders, Items TableContent
}

// TPCDSContent holds the star-schema subset.
type TPCDSContent struct {
	StoreSales, DateDim, Item, Customer TableContent
}

// KVContent is the sorted key set of a KVStore. The Zipf popularity
// sampler is rebuilt (and shared in-memory) at bind time — it is
// derived state, not content.
type KVContent struct {
	Keys []uint64
}

func kvContent(seed uint64, n int) *KVContent {
	type key struct {
		Seed uint64
		N    int
	}
	return fillContent("datagen-kv", key{seed, n}, func() *KVContent {
		r := xrand.New(seed)
		kv := &KVContent{Keys: make([]uint64, n)}
		next := uint64(1000)
		for i := 0; i < n; i++ {
			next += 1 + r.Uint64n(97)
			kv.Keys[i] = next
		}
		return kv
	})
}

// sharedZipf memoizes one immutable Zipf sampler per (n, s) in the
// active store's memory tier (Sample is read-only, so sharing across
// concurrent runs is safe; the table is cheap to rebuild, so it is
// never persisted).
func sharedZipf(n int, s float64) *xrand.Zipf {
	type key struct {
		N int
		S float64
	}
	z, err := artifact.GetMem(activeStore(), artifact.KeyOf("datagen-zipf", key{n, s}),
		func() (*xrand.Zipf, error) { return xrand.NewZipf(n, s), nil })
	if err != nil {
		panic("datagen: " + err.Error())
	}
	return z
}
