package datagen

import (
	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

// Column is one integer column of a columnar table, with real values
// and a simulated base address. All relational kernels run on integer
// columns; string predicates in the originals become dictionary-encoded
// integer predicates here, which preserves the scan/compare/hash
// behaviour the cache and branch models observe.
type Column struct {
	Name string
	Vals []int64
	Base uint64
}

// Addr returns the simulated address of row i.
func (c *Column) Addr(i int) uint64 { return c.Base + uint64(i)*8 }

// Table is a columnar table.
type Table struct {
	Name string
	Rows int
	Cols []*Column
}

// Col returns the named column; it panics if absent (schema errors are
// programming errors in this repository).
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	panic("datagen: table " + t.Name + " has no column " + name)
}

// Bytes returns the table's simulated size in bytes.
func (t *Table) Bytes() int { return t.Rows * len(t.Cols) * 8 }

// bindTable attaches cached table content to fresh simulated
// addresses, allocating per column in declaration order — the same
// allocation sequence the original generate-and-allocate loop
// performed, so addresses are unchanged.
func bindTable(l *mem.Layout, c TableContent) *Table {
	t := &Table{Name: c.Name, Rows: c.Rows}
	for _, cc := range c.Cols {
		col := &Column{Name: cc.Name, Vals: cc.Vals}
		col.Base = l.AllocArray(c.Rows, 8)
		t.Cols = append(t.Cols, col)
	}
	return t
}

// ECommerce is the paper's e-commerce transaction dataset: an ORDER
// table with 4 columns and an order-ITEM table with 6 columns
// (Table 1: 38658 and 242735 rows in the original; scaled here).
type ECommerce struct {
	Orders *Table
	Items  *Table
}

// NewECommerce builds the two transaction tables; items references
// orders with a skewed foreign key. Content is cached per
// (seed, orderRows, itemRows); only addresses are bound per run.
func NewECommerce(l *mem.Layout, seed uint64, orderRows, itemRows int) *ECommerce {
	type key struct {
		Seed                uint64
		OrderRows, ItemRows int
	}
	c := fillContent("datagen-ecommerce", key{seed, orderRows, itemRows}, func() *ECommerceContent {
		orders := genTable("order", orderRows,
			[]string{"order_id", "buyer_id", "create_date", "amount"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(row)
				case 1:
					return int64(r.Intn(orderRows / 4))
				case 2:
					return int64(20120101 + r.Intn(720))
				default:
					return int64(r.Intn(100000)) // cents
				}
			}, seed)
		z := xrand.NewZipf(orderRows, 0.8)
		items := genTable("item", itemRows,
			[]string{"item_id", "order_id", "goods_id", "goods_number", "goods_price", "goods_amount"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(row)
				case 1:
					return int64(z.Sample(r))
				case 2:
					return int64(r.Intn(5000))
				case 3:
					return int64(1 + r.Intn(8))
				case 4:
					return int64(100 + r.Intn(20000))
				default:
					return int64(100 + r.Intn(160000))
				}
			}, seed^0x17EA5)
		return &ECommerceContent{Orders: orders, Items: items}
	})
	return &ECommerce{Orders: bindTable(l, c.Orders), Items: bindTable(l, c.Items)}
}

// TPCDS is the TPC-DS web-table stand-in: a star schema with one fact
// table and three dimensions — the subset exercised by the paper's
// query workloads (Q3, Q8, Q10 in Table 2).
type TPCDS struct {
	StoreSales *Table // fact
	DateDim    *Table
	Item       *Table
	Customer   *Table
}

// NewTPCDS builds the star schema at the given fact-table scale.
// Content is cached per (seed, factRows); the binder allocates the
// four tables in the original order (date_dim, item, customer,
// store_sales), so simulated addresses are unchanged.
func NewTPCDS(l *mem.Layout, seed uint64, factRows int) *TPCDS {
	type key struct {
		Seed     uint64
		FactRows int
	}
	c := fillContent("datagen-tpcds", key{seed, factRows}, func() *TPCDSContent {
		dateRows := 2000
		itemRows := 4000
		custRows := 8000
		d := &TPCDSContent{}
		d.DateDim = genTable("date_dim", dateRows,
			[]string{"d_date_sk", "d_year", "d_moy"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(row)
				case 1:
					return int64(1998 + row/366)
				default:
					return int64(1 + (row/30)%12)
				}
			}, seed)
		d.Item = genTable("item", itemRows,
			[]string{"i_item_sk", "i_brand_id", "i_category_id", "i_manufact_id"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(row)
				case 1:
					return int64(r.Intn(500))
				case 2:
					return int64(r.Intn(10))
				default:
					return int64(r.Intn(200))
				}
			}, seed^0x1)
		d.Customer = genTable("customer", custRows,
			[]string{"c_customer_sk", "c_birth_year", "c_county"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(row)
				case 1:
					return int64(1930 + r.Intn(70))
				default:
					return int64(r.Intn(50))
				}
			}, seed^0x2)
		zi := xrand.NewZipf(itemRows, 0.9)
		zc := xrand.NewZipf(custRows, 0.7)
		d.StoreSales = genTable("store_sales", factRows,
			[]string{"ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_quantity", "ss_sales_price"},
			func(r *xrand.Rand, col, row int) int64 {
				switch col {
				case 0:
					return int64(r.Intn(dateRows))
				case 1:
					return int64(zi.Sample(r))
				case 2:
					return int64(zc.Sample(r))
				case 3:
					return int64(1 + r.Intn(20))
				default:
					return int64(50 + r.Intn(30000))
				}
			}, seed^0x3)
		return d
	})
	return &TPCDS{
		DateDim:    bindTable(l, c.DateDim),
		Item:       bindTable(l, c.Item),
		Customer:   bindTable(l, c.Customer),
		StoreSales: bindTable(l, c.StoreSales),
	}
}

// KVStore is the ProfSearch-resume stand-in behind the cloud-OLTP
// workloads: n records of ValBytes bytes each (1128 in Table 2),
// addressable by key, with a sorted key index (the HBase block index)
// and a Zipfian request popularity distribution.
type KVStore struct {
	N        int
	ValBytes int
	// Keys is sorted ascending; record i's value lives at
	// ValBase + i*ValBytes.
	Keys []uint64
	// IndexBase addresses the key index; ValBase the value heap;
	// MemBase the memstore hash table region.
	IndexBase, ValBase, MemBase uint64
	// MemBuckets is the memstore hash bucket count.
	MemBuckets int
	// Pop is the request popularity sampler.
	Pop *xrand.Zipf
}

// NewKVStore builds the store with n records of valBytes each. The
// key set is cached content; the popularity sampler is shared derived
// state (immutable, rebuilt per process).
func NewKVStore(l *mem.Layout, seed uint64, n, valBytes int) *KVStore {
	c := kvContent(seed, n)
	kv := &KVStore{N: n, ValBytes: valBytes, MemBuckets: 4096, Keys: c.Keys}
	kv.IndexBase = l.AllocArray(n, 8)
	kv.ValBase = l.AllocArray(n, uint64(valBytes))
	kv.MemBase = l.AllocArray(kv.MemBuckets, 64)
	kv.Pop = sharedZipf(n, 1.1)
	return kv
}

// ValAddr returns the simulated address of record i's value.
func (kv *KVStore) ValAddr(i int) uint64 {
	return kv.ValBase + uint64(i)*uint64(kv.ValBytes)
}

// Bytes returns the store's simulated size.
func (kv *KVStore) Bytes() int { return kv.N * (kv.ValBytes + 8) }
