package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
			if v := r.Float32(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformity(t *testing.T) {
	r := New(99)
	buckets := make([]int, 16)
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for b, c := range buckets {
		if c < n/16*8/10 || c > n/16*12/10 {
			t.Fatalf("bucket %d has %d of %d (expected ~%d)", b, c, n, n/16)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	var sum, sum2 float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("Hash64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 is not a pure function")
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(100, 1.0)
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := z.Sample(r)
			if v < 0 || v >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := New(3)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[500]*10 {
		t.Fatalf("Zipf not skewed: rank 0 = %d, rank 500 = %d", counts[0], counts[500])
	}
	// Monotone-ish head.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("Zipf head not decreasing: %d %d %d", counts[0], counts[1], counts[10])
	}
}

// TestZipfGuideMatchesFullSearch pins the guide-table bracketing to
// the reference full binary search, including the adversarial inputs:
// exact bucket boundaries i/m and their ulp neighbours, where naive
// int(u*m) bucketing lands one bucket off.
func TestZipfGuideMatchesFullSearch(t *testing.T) {
	ref := func(z *Zipf, u float64) int {
		lo, hi := 0, z.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for _, cfg := range []struct {
		n int
		s float64
	}{{12, 1.0}, {100, 1.05}, {8000, 1.05}, {1, 2.0}, {2, 0.5}} {
		z := NewZipf(cfg.n, cfg.s)
		m := len(z.guide) - 1
		check := func(u float64) {
			if u < 0 || u >= 1 {
				return
			}
			if got, want := z.find(u), ref(z, u); got != want {
				t.Fatalf("n=%d s=%v u=%v: guided find %d != reference %d",
					cfg.n, cfg.s, u, got, want)
			}
		}
		for i := 0; i <= m; i++ {
			b := float64(i) / float64(m)
			check(b)
			check(math.Nextafter(b, 0))
			check(math.Nextafter(b, 1))
		}
		for _, c := range z.cdf {
			check(c)
			check(math.Nextafter(c, 0))
			check(math.Nextafter(c, 1))
		}
		r := New(0xC0DE)
		for i := 0; i < 2000; i++ {
			check(r.Float64())
		}
	}
}

func TestZipfPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, ...) did not panic")
		}
	}()
	NewZipf(0, 1)
}
