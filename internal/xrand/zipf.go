package xrand

import "math"

// Zipf samples integers in [0, n) with a Zipfian distribution of
// exponent s (s > 0): P(k) proportional to 1/(k+1)^s.
//
// Word frequencies in the Wikipedia-like text generator, key popularity
// in the OLTP request generators and graph degree skew all use Zipf
// samplers, mirroring the skew assumptions of BDGS (the BigDataBench
// data generator suite).
type Zipf struct {
	n   int
	cdf []float64
	// guide[i] is the smallest k with cdf[k] >= i/(len(guide)-1); a
	// sample's binary search runs only between guide[i] and guide[i+1],
	// which for a u-indexed table is almost always a one-entry range.
	// The guide narrows the search bracket without changing which k a
	// given u maps to.
	guide []int32
}

// NewZipf precomputes the CDF for n items with exponent s.
// For the n values used in this repository (vocabulary sizes and key
// spaces up to a few hundred thousand) a precomputed table is the
// fastest and simplest correct approach.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range z.cdf {
		z.cdf[k] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	m := n
	z.guide = make([]int32, m+1)
	k := 0
	for i := 0; i <= m; i++ {
		u := float64(i) / float64(m)
		for k < n-1 && z.cdf[k] < u {
			k++
		}
		z.guide[i] = int32(k)
	}
	return z
}

// N returns the number of items.
func (z *Zipf) N() int { return z.n }

// Sample draws one value in [0, n) using r.
func (z *Zipf) Sample(r *Rand) int {
	return z.find(r.Float64())
}

// find returns the smallest k with cdf[k] >= u — the same k a full
// binary search over the CDF would find — but brackets the search
// with the guide table first.
func (z *Zipf) find(u float64) int {
	m := len(z.guide) - 1
	i := int(u * float64(m))
	if i >= m {
		i = m - 1
	}
	// Rounding in u*m can land u one bucket off; nudge i until
	// float64(i)/float64(m) <= u < float64(i+1)/float64(m), the same
	// divisions the guide was built with, so the bracket below is
	// exact rather than off by an ulp at bucket boundaries.
	for i > 0 && u < float64(i)/float64(m) {
		i--
	}
	for i < m-1 && u >= float64(i+1)/float64(m) {
		i++
	}
	// guide[i] <= answer <= guide[i+1]: cdf[guide[i]] is the first
	// value >= i/m <= u, and cdf[guide[i+1]] >= (i+1)/m > u.
	lo, hi := int(z.guide[i]), int(z.guide[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
