package xrand

import "math"

// Zipf samples integers in [0, n) with a Zipfian distribution of
// exponent s (s > 0): P(k) proportional to 1/(k+1)^s.
//
// Word frequencies in the Wikipedia-like text generator, key popularity
// in the OLTP request generators and graph degree skew all use Zipf
// samplers, mirroring the skew assumptions of BDGS (the BigDataBench
// data generator suite).
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for n items with exponent s.
// For the n values used in this repository (vocabulary sizes and key
// spaces up to a few hundred thousand) a precomputed table is the
// fastest and simplest correct approach.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range z.cdf {
		z.cdf[k] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// N returns the number of items.
func (z *Zipf) N() int { return z.n }

// Sample draws one value in [0, n) using r.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
