// Package xrand provides a small, fast, deterministic random number
// generator shared by the trace, datagen and stats packages.
//
// Every stochastic component of the reproduction (data generation,
// framework code-path selection, K-means seeding) draws from an xrand.Rand
// seeded explicitly, so repeated runs of every experiment are bit-identical.
// The generator is SplitMix64, which passes BigCrush and needs no
// allocation or locking.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Hash64 is a stateless mix function: it hashes x to a well distributed
// 64-bit value. Used to derive per-PC deterministic branch outcomes and
// per-record code paths without consuming generator state.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
