// Package machineutil holds small helpers over profiled runs shared by
// the experiments and the root benchmark harness.
package machineutil

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Average returns the element-wise mean vector of the profiles.
func Average(profiles []core.Profile) metrics.Vector {
	var out metrics.Vector
	if len(profiles) == 0 {
		return out
	}
	for _, p := range profiles {
		for i, v := range p.Vector {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(profiles))
	}
	return out
}

// AverageWhere averages the subset of profiles whose workload matches
// pred.
func AverageWhere(profiles []core.Profile, pred func(workloads.Workload) bool) metrics.Vector {
	var sub []core.Profile
	for _, p := range profiles {
		if pred(p.Workload) {
			sub = append(sub, p)
		}
	}
	return Average(sub)
}
