// Command benchguard compares a bench2json results file against a
// committed baseline and fails (exit 1) when any benchmark matching a
// pattern regressed beyond a tolerance — CI's guard against the sweep
// replay pipeline quietly losing its throughput.
//
//	go run ./internal/tools/benchguard \
//	    -baseline BENCH_baseline.json -current BENCH_results.json \
//	    -match '^BenchmarkSweep' -max-regress 0.25 \
//	    -ratio 'BenchmarkSweepFiguresBlocked<=0.5*BenchmarkSweepFiguresSerial'
//
// Regression is measured on ns/op (current/baseline - 1). Benchmark
// names are normalized by stripping the -GOMAXPROCS suffix, so runs
// from machines with different core counts compare. A matched baseline
// benchmark missing from the current run fails too (a rename must
// update the baseline); benchmarks only in the current run are listed
// but don't fail. When the machine legitimately changes or the
// pipeline legitimately slows, refresh the baseline by committing the
// new BENCH_results.json over BENCH_baseline.json.
//
// -ratio adds hardware-independent assertions evaluated *within* the
// current run (comma-separated "A<=F*B" terms: benchmark A's ns/op
// must be at most F times benchmark B's). Cross-machine baselines
// drift with runner hardware; a within-run ratio — e.g. "the blocked
// figure path is at least twice the serial path's throughput" — holds
// on any machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type envelope struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

// normalize strips the -N GOMAXPROCS suffix go test appends on
// multi-proc machines.
var procSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string { return procSuffix.ReplaceAllString(name, "") }

func load(path string) (map[string]result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(env.Benchmarks))
	for _, r := range env.Benchmarks {
		out[normalize(r.Name)] = r
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline (bench2json format)")
	currentPath := flag.String("current", "BENCH_results.json", "fresh results (bench2json format)")
	match := flag.String("match", "^BenchmarkSweep", "regexp of benchmark names to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "tolerated fractional ns/op increase before failing")
	ratios := flag.String("ratio", "", `within-run assertions on the current results, comma-separated "A<=F*B" (A's ns/op at most F times B's)`)
	flag.Parse()

	re, err := regexp.Compile(*match)
	if err != nil {
		fatal(err)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}

	failed := false
	guarded := 0
	for name, base := range baseline {
		if !re.MatchString(name) {
			continue
		}
		guarded++
		cur, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %-32s missing from current run (renamed? refresh the baseline)\n", name)
			failed = true
			continue
		}
		delta := cur.NsPerOp/base.NsPerOp - 1
		status := "ok  "
		if delta > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-32s %14.0f -> %14.0f ns/op  (%+.1f%%, tolerance %+.0f%%)\n",
			status, name, base.NsPerOp, cur.NsPerOp, delta*100, *maxRegress*100)
	}
	for name := range current {
		if re.MatchString(name) {
			if _, ok := baseline[name]; !ok {
				fmt.Printf("new  %-32s not in baseline (commit a refreshed baseline to guard it)\n", name)
			}
		}
	}
	if guarded == 0 {
		fatal(fmt.Errorf("no baseline benchmark matches %q", *match))
	}
	if *ratios != "" {
		for _, term := range strings.Split(*ratios, ",") {
			if !checkRatio(strings.TrimSpace(term), current) {
				failed = true
			}
		}
	}
	if failed {
		fmt.Println("benchguard: regression beyond tolerance")
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within tolerance\n", guarded)
}

// ratioTerm parses "A<=F*B".
var ratioTerm = regexp.MustCompile(`^([\w/-]+)<=([0-9.]+)\*([\w/-]+)$`)

// checkRatio evaluates one within-run assertion against the current
// results, printing and returning its verdict.
func checkRatio(term string, current map[string]result) bool {
	m := ratioTerm.FindStringSubmatch(term)
	if m == nil {
		fatal(fmt.Errorf("malformed -ratio term %q (want A<=F*B)", term))
	}
	factor, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		fatal(err)
	}
	a, okA := current[normalize(m[1])]
	b, okB := current[normalize(m[3])]
	if !okA || !okB {
		fmt.Printf("FAIL ratio %s: benchmark missing from current run\n", term)
		return false
	}
	ratio := a.NsPerOp / b.NsPerOp
	if ratio > factor {
		fmt.Printf("FAIL ratio %-60s measured %.3f > %.3f\n", term, ratio, factor)
		return false
	}
	fmt.Printf("ok   ratio %-60s measured %.3f <= %.3f\n", term, ratio, factor)
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
