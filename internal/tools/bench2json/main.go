// Command bench2json converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so CI can track the performance
// trajectory across commits:
//
//	go test -run - -bench . -benchtime 1x . | go run ./internal/tools/bench2json > BENCH_results.json
//
// Each benchmark result line
//
//	BenchmarkEngineParallel-8    1    123456789 ns/op    12 extra/op
//
// becomes one object with the iteration count, ns/op and any extra
// metric pairs; context lines (goos/goarch/pkg/cpu) are captured into
// the envelope.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type envelope struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

func main() {
	out := envelope{Context: map[string]string{}, Benchmarks: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
