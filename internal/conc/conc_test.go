package conc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 3, 64} {
		const n = 100
		counts := make([]int32, n)
		ForEach(par, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("par=%d: index %d visited %d times", par, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const par, n = 4, 50
	var cur, max int32
	ForEach(par, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if max > par {
		t.Fatalf("observed %d concurrent calls, bound is %d", max, par)
	}
}

func TestForEachZeroN(t *testing.T) {
	ForEach(2, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestPoolForEach(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	out := make([]int, 100)
	// Many small fan-outs over the same pool, like per-block replay.
	for round := 0; round < 50; round++ {
		p.ForEach(len(out), func(i int) { out[i]++ })
	}
	for i, v := range out {
		if v != 50 {
			t.Fatalf("out[%d] = %d, want 50", i, v)
		}
	}
}

func TestPoolConcurrentForEach(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	sums := make([]int64, 8)
	for g := range sums {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				p.ForEach(30, func(i int) {
					atomic.AddInt64(&sums[g], int64(i))
				})
			}
		}(g)
	}
	wg.Wait()
	for g, s := range sums {
		if s != 20*435 { // sum 0..29 = 435
			t.Fatalf("goroutine %d sum %d, want %d", g, s, 20*435)
		}
	}
}

func TestPoolForEachNBoundsConcurrency(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var inFlight, maxSeen int64
	p.ForEachN(2, 40, func(i int) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			m := atomic.LoadInt64(&maxSeen)
			if cur <= m || atomic.CompareAndSwapInt64(&maxSeen, m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
	})
	if maxSeen > 2 {
		t.Fatalf("ForEachN(2) had %d tasks in flight", maxSeen)
	}
	if maxSeen < 1 {
		t.Fatal("nothing ran")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		p := recover()
		if p != "boom-7" {
			t.Fatalf("recovered %v, want boom-7", p)
		}
	}()
	var ran atomic.Int64
	ForEach(4, 20, func(i int) {
		ran.Add(1)
		if i == 7 {
			panic("boom-7")
		}
	})
	t.Fatal("panic did not propagate")
}

func TestForEachCtxStopsStartingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForEachCtx(ctx, 1, 100, func(i int) {
		if started.Add(1) == 3 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// par=1: after the cancelling call returns, no further index may
	// start. A few in-flight launches can slip through the window, but
	// nowhere near the full 100.
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d indices ran despite cancellation", n)
	}
}

func TestForEachCtxNilAndBackgroundRunEverything(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int64
		if err := ForEachCtx(ctx, 4, 50, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("err = %v", err)
		}
		if ran.Load() != 50 {
			t.Fatalf("ran %d of 50", ran.Load())
		}
	}
}

func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("pool fan-out swallowed the panic")
			}
		}()
		p.ForEach(4, func(i int) {
			if i == 2 {
				panic("task boom")
			}
		})
	}()
	// The workers must still be alive for the next caller.
	var ran atomic.Int64
	p.ForEach(8, func(i int) { ran.Add(1) })
	if ran.Load() != 8 {
		t.Fatalf("pool ran %d of 8 after a panicking task", ran.Load())
	}
}

func TestPoolForEachNBoundedPanicReleasesWindow(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.ForEachN(2, 10, func(i int) {
			panic("every task panics")
		})
	}()
	// If a panicking task leaked its window slot, this second bounded
	// call would deadlock; run it with a watchdog.
	done := make(chan struct{})
	go func() {
		p.ForEachN(2, 10, func(i int) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("bounded fan-out deadlocked after panics")
	}
}
