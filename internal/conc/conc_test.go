package conc

import (
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 3, 64} {
		const n = 100
		counts := make([]int32, n)
		ForEach(par, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("par=%d: index %d visited %d times", par, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const par, n = 4, 50
	var cur, max int32
	ForEach(par, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if max > par {
		t.Fatalf("observed %d concurrent calls, bound is %d", max, par)
	}
}

func TestForEachZeroN(t *testing.T) {
	ForEach(2, 0, func(int) { t.Fatal("fn called for n=0") })
}
