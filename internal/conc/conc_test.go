package conc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 3, 64} {
		const n = 100
		counts := make([]int32, n)
		ForEach(par, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("par=%d: index %d visited %d times", par, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const par, n = 4, 50
	var cur, max int32
	ForEach(par, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if max > par {
		t.Fatalf("observed %d concurrent calls, bound is %d", max, par)
	}
}

func TestForEachZeroN(t *testing.T) {
	ForEach(2, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestPoolForEach(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	out := make([]int, 100)
	// Many small fan-outs over the same pool, like per-block replay.
	for round := 0; round < 50; round++ {
		p.ForEach(len(out), func(i int) { out[i]++ })
	}
	for i, v := range out {
		if v != 50 {
			t.Fatalf("out[%d] = %d, want 50", i, v)
		}
	}
}

func TestPoolConcurrentForEach(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	sums := make([]int64, 8)
	for g := range sums {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				p.ForEach(30, func(i int) {
					atomic.AddInt64(&sums[g], int64(i))
				})
			}
		}(g)
	}
	wg.Wait()
	for g, s := range sums {
		if s != 20*435 { // sum 0..29 = 435
			t.Fatalf("goroutine %d sum %d, want %d", g, s, 20*435)
		}
	}
}

func TestPoolForEachNBoundsConcurrency(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var inFlight, maxSeen int64
	p.ForEachN(2, 40, func(i int) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			m := atomic.LoadInt64(&maxSeen)
			if cur <= m || atomic.CompareAndSwapInt64(&maxSeen, m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
	})
	if maxSeen > 2 {
		t.Fatalf("ForEachN(2) had %d tasks in flight", maxSeen)
	}
	if maxSeen < 1 {
		t.Fatal("nothing ran")
	}
}
