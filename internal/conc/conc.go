// Package conc holds the bounded fan-out primitive shared by the
// profiler, the experiment engine's sweep cache and the CLIs.
package conc

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most par concurrent
// goroutines (par <= 0 means GOMAXPROCS) and waits for all of them.
// Callers communicate results by writing to distinct indices of a
// pre-sized slice; ForEach imposes no ordering beyond that.
func ForEach(par, n int, fn func(i int)) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Pool is a fixed set of long-lived workers executing submitted index
// fan-outs. Where ForEach spawns n goroutines per call, a Pool pays
// the goroutine cost once at construction — the right shape for hot
// loops that fan out small task sets thousands of times (the
// block-replay cache fan-out submits ~30 tasks per 4096-instruction
// block). Tasks must not submit back into the same pool: a worker
// blocking on its own pool can deadlock it.
type Pool struct {
	tasks chan poolTask
}

type poolTask struct {
	fn  func(int)
	idx int
	wg  *sync.WaitGroup
}

// NewPool starts workers long-lived worker goroutines (<= 0 means
// GOMAXPROCS, but at least 2 so fan-outs interleave across goroutines
// even on one core). The workers live until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = 2
	}
	p := &Pool{tasks: make(chan poolTask)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.idx)
				t.wg.Done()
			}
		}()
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on the pool's workers and
// waits for all of them. Concurrent ForEach calls share the workers;
// total concurrency never exceeds the pool size.
func (p *Pool) ForEach(n int, fn func(i int)) { p.ForEachN(0, n, fn) }

// ForEachN is ForEach with this call's concurrency additionally
// bounded to par tasks in flight (par <= 0 means unbounded — the pool
// size is then the only limit). The bound is enforced on the
// submitting side, so a capped call never parks pool workers that
// other callers could use.
func (p *Pool) ForEachN(par, n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	if par > 0 && par < n {
		window := make(chan struct{}, par)
		bounded := func(i int) {
			fn(i)
			<-window
		}
		for i := 0; i < n; i++ {
			window <- struct{}{}
			p.tasks <- poolTask{fn: bounded, idx: i, wg: &wg}
		}
	} else {
		for i := 0; i < n; i++ {
			p.tasks <- poolTask{fn: fn, idx: i, wg: &wg}
		}
	}
	wg.Wait()
}

// Close stops the workers once queued tasks finish. ForEach after
// Close panics.
func (p *Pool) Close() { close(p.tasks) }
