// Package conc holds the bounded fan-out primitive shared by the
// profiler, the experiment engine's sweep cache and the CLIs.
package conc

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most par concurrent
// goroutines (par <= 0 means GOMAXPROCS) and waits for all of them.
// Callers communicate results by writing to distinct indices of a
// pre-sized slice; ForEach imposes no ordering beyond that.
func ForEach(par, n int, fn func(i int)) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
