// Package conc holds the bounded fan-out primitives shared by the
// profiler, the experiment engine's sweep cache, the serving daemon
// and the CLIs.
package conc

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most par concurrent
// goroutines (par <= 0 means GOMAXPROCS) and waits for all of them.
// Callers communicate results by writing to distinct indices of a
// pre-sized slice; ForEach imposes no ordering beyond that.
//
// A panic inside fn does not crash the worker goroutine: the first
// panic value is captured and re-raised on the calling goroutine after
// every worker finishes, so fan-outs compose with panic-based
// unwinding (the experiment session signals cancellation that way).
func ForEach(par, n int, fn func(i int)) {
	ForEachCtx(nil, par, n, fn)
}

// ForEachCtx is ForEach bound to a context: once ctx is cancelled no
// further indices start (in-flight calls run to completion — fn
// observes cancellation through whatever it carries), and the return
// value is ctx.Err(). A nil or background context never cancels and
// always returns nil.
func ForEachCtx(ctx context.Context, par, n int, fn func(i int)) error {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var pmu sync.Mutex
	var pval any
	var panicked bool
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					pmu.Lock()
					if !panicked {
						panicked, pval = true, p
					}
					pmu.Unlock()
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			if done != nil {
				select {
				case <-done:
					return // cancelled before this index started
				default:
				}
			}
			fn(i)
		}(i)
	}
	wg.Wait()
	if panicked {
		panic(pval)
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Pool is a fixed set of long-lived workers executing submitted index
// fan-outs. Where ForEach spawns n goroutines per call, a Pool pays
// the goroutine cost once at construction — the right shape for hot
// loops that fan out small task sets thousands of times (the
// block-replay cache fan-out submits ~30 tasks per 4096-instruction
// block). Tasks must not submit back into the same pool: a worker
// blocking on its own pool can deadlock it.
type Pool struct {
	tasks chan poolTask
}

type poolTask struct {
	fn  func(int)
	idx int
	wg  *sync.WaitGroup
	pb  *panicBox
}

// panicBox collects the first panic of one submitted fan-out so the
// submitting goroutine can re-raise it; the pool's worker goroutines
// (shared by every caller in the process) survive.
type panicBox struct {
	mu   sync.Mutex
	val  any
	seen bool
}

func (b *panicBox) capture(p any) {
	b.mu.Lock()
	if !b.seen {
		b.seen, b.val = true, p
	}
	b.mu.Unlock()
}

// run executes one task, capturing a panic instead of unwinding the
// worker.
func (t poolTask) run() {
	defer t.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			t.pb.capture(p)
		}
	}()
	t.fn(t.idx)
}

// NewPool starts workers long-lived worker goroutines (<= 0 means
// GOMAXPROCS, but at least 2 so fan-outs interleave across goroutines
// even on one core). The workers live until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = 2
	}
	p := &Pool{tasks: make(chan poolTask)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t.run()
			}
		}()
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on the pool's workers and
// waits for all of them. Concurrent ForEach calls share the workers;
// total concurrency never exceeds the pool size.
func (p *Pool) ForEach(n int, fn func(i int)) { p.ForEachN(0, n, fn) }

// ForEachN is ForEach with this call's concurrency additionally
// bounded to par tasks in flight (par <= 0 means unbounded — the pool
// size is then the only limit). The bound is enforced on the
// submitting side, so a capped call never parks pool workers that
// other callers could use. As with the package-level ForEach, the
// first panic inside fn is re-raised on the submitting goroutine once
// every task of this call finishes.
func (p *Pool) ForEachN(par, n int, fn func(i int)) {
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(n)
	if par > 0 && par < n {
		window := make(chan struct{}, par)
		bounded := func(i int) {
			defer func() { <-window }() // release even when fn panics
			fn(i)
		}
		for i := 0; i < n; i++ {
			window <- struct{}{}
			p.tasks <- poolTask{fn: bounded, idx: i, wg: &wg, pb: &pb}
		}
	} else {
		for i := 0; i < n; i++ {
			p.tasks <- poolTask{fn: fn, idx: i, wg: &wg, pb: &pb}
		}
	}
	wg.Wait()
	if pb.seen {
		panic(pb.val)
	}
}

// Close stops the workers once queued tasks finish. ForEach after
// Close panics.
func (p *Pool) Close() { close(p.tasks) }
