// Package retry holds the two small resilience primitives shared by
// the store client and the fleet proxy: a bounded retry policy with
// capped exponential backoff and jitter, and a consecutive-failure
// circuit breaker with a half-open recovery probe.
//
// Both are deliberately deterministic under test: Policy takes an
// injectable sleep and jitter source, Breaker an injectable clock.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds how an idempotent operation is retried. The zero
// value means "one attempt, no backoff"; DefaultPolicy is the tuning
// the store client and fleet proxy share.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (values < 1 behave as 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized: the
	// actual sleep is delay*(1-Jitter) + delay*Jitter*rand. 0 = none.
	Jitter float64
	// Retryable classifies errors; a nil classifier retries every
	// error. Errors wrapped by Permanent stop the loop regardless.
	Retryable func(error) bool
	// Sleep replaces the context-aware backoff sleep (tests). nil =
	// real time.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand replaces the jitter source (tests). nil = math/rand.
	Rand func() float64
}

// DefaultPolicy is the shared tuning: three attempts, 50ms base
// backoff doubling to a 1s cap, half of each delay jittered.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
}

// permanentError marks an error as not retryable regardless of the
// policy's classifier.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately and returns it (minus
// the marker). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// Do runs op until it succeeds, exhausts the attempt budget, hits a
// non-retryable error, or ctx is done. op receives the zero-based
// attempt number. The returned error is the last attempt's error
// (unwrapped from any Permanent marker), or ctx's error if the
// context died between attempts.
func (p Policy) Do(ctx context.Context, op func(attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			if serr := p.sleep(ctx, p.Delay(n-1)); serr != nil {
				return serr
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		err = op(n)
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
	}
	return err
}

// Delay reports the backoff after the given zero-based failed attempt:
// BaseDelay << attempt, capped at MaxDelay, with the jitter fraction
// randomized.
func (p Policy) Delay(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt && d < maxDuration/2; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		r := p.Rand
		if r == nil {
			r = rand.Float64
		}
		d = time.Duration(float64(d) * (1 - j + j*r()))
	}
	return d
}

const maxDuration = time.Duration(1<<63 - 1)

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// State is a breaker's position in the closed → open → half-open
// cycle.
type State int32

// Breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerCounters is a monotonic snapshot of a breaker's lifecycle
// events, for /stats surfaces.
type BreakerCounters struct {
	Trips      int64 // closed→open transitions
	Probes     int64 // half-open attempts granted
	Recoveries int64 // half-open→closed transitions
}

// Breaker is a consecutive-failure circuit breaker. FailLimit
// consecutive Failure calls trip it open; Allow then denies all
// callers until Cooldown has elapsed, after which exactly one caller
// is let through as a half-open probe. That probe's Success closes
// the breaker, its Failure re-opens it for another cooldown.
//
// The zero value uses DefaultFailLimit/DefaultCooldown. All methods
// are safe for concurrent use.
type Breaker struct {
	// FailLimit is the consecutive-failure count that trips the
	// breaker (<1 = DefaultFailLimit).
	FailLimit int
	// Cooldown is how long the breaker stays open before granting a
	// half-open probe (<=0 = DefaultCooldown).
	Cooldown time.Duration
	// Now replaces the clock (tests). nil = time.Now.
	Now func() time.Time
	// OnChange, when set, is called after every state transition with
	// the old and new state. It runs outside the breaker's lock, on the
	// goroutine that caused the transition, so it must not block for
	// long. Set it before the breaker sees traffic; it is read without
	// synchronization afterwards.
	OnChange func(from, to State)

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool
	counters BreakerCounters
}

// Default breaker tuning shared by the store client and fleet peers.
const (
	DefaultFailLimit = 3
	DefaultCooldown  = 5 * time.Second
)

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) failLimit() int {
	if b.FailLimit < 1 {
		return DefaultFailLimit
	}
	return b.FailLimit
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return DefaultCooldown
	}
	return b.Cooldown
}

// Allow reports whether the caller may attempt the guarded operation.
// Closed: always. Open: false until Cooldown elapses, then the first
// caller transitions the breaker to half-open and becomes the probe.
// Half-open: false while the probe is in flight. A caller granted
// true MUST report the outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	ok, probe := false, false
	switch b.state {
	case Closed:
		ok = true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.state = HalfOpen
			b.probing = true
			b.counters.Probes++
			ok, probe = true, true
		}
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			b.counters.Probes++
			ok = true
		}
	}
	b.mu.Unlock()
	if probe {
		b.notify(Open, HalfOpen)
	}
	return ok
}

// Viable reports, without consuming a probe slot, whether the member
// behind this breaker should receive routed traffic: only a closed
// breaker is viable. Half-open peers get exactly their probe (granted
// by Allow on the owning path), not rerouted load.
func (b *Breaker) Viable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == Closed
}

// Success records a successful guarded operation: it resets the
// consecutive-failure count and closes a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	recovered := false
	if b.state == HalfOpen {
		b.state = Closed
		b.counters.Recoveries++
		recovered = true
	}
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
	if recovered {
		b.notify(HalfOpen, Closed)
	}
}

// Failure records a failed guarded operation: it trips a closed
// breaker at FailLimit consecutive failures and re-opens a half-open
// one immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	from := b.state
	tripped := false
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
		b.counters.Trips++
		b.probing = false
		tripped = true
	case Closed:
		b.fails++
		if b.fails >= b.failLimit() {
			b.state = Open
			b.openedAt = b.now()
			b.counters.Trips++
			tripped = true
		}
	}
	b.mu.Unlock()
	if tripped {
		b.notify(from, Open)
	}
}

// notify invokes OnChange outside the lock.
func (b *Breaker) notify(from, to State) {
	if b.OnChange != nil {
		b.OnChange(from, to)
	}
}

// State reports the breaker's current position. An open breaker whose
// cooldown has elapsed still reports Open until a caller claims the
// probe via Allow.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters snapshots the lifecycle counters.
func (b *Breaker) Counters() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counters
}
