package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// noSleep makes Do instantaneous while recording requested delays.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		if delays != nil {
			*delays = append(*delays, d)
		}
		return nil
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Sleep: noSleep(nil)}
	calls := 0
	err := p.Do(context.Background(), func(n int) error {
		if n != calls {
			t.Fatalf("attempt number %d, want %d", n, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: noSleep(nil)}
	calls := 0
	boom := errors.New("boom")
	if err := p.Do(context.Background(), func(int) error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	var p Policy
	calls := 0
	p.Do(context.Background(), func(int) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
}

func TestClassifierStopsRetries(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: noSleep(nil), Retryable: func(err error) bool {
		return err.Error() == "transient"
	}}
	calls := 0
	fatal := errors.New("fatal")
	err := p.Do(context.Background(), func(n int) error {
		calls++
		if n == 0 {
			return errors.New("transient")
		}
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 2 {
		t.Fatalf("err=%v calls=%d, want fatal after 2 calls", err, calls)
	}
}

func TestPermanentOverridesClassifier(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: noSleep(nil), Retryable: func(error) bool { return true }}
	calls := 0
	inner := errors.New("denied")
	err := p.Do(context.Background(), func(int) error { calls++; return Permanent(inner) })
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("err=%v, want inner error", err)
	}
	if _, ok := err.(permanentError); ok {
		t.Fatalf("Do leaked the permanent marker: %T", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestPermanentWrappedStillStops(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: noSleep(nil)}
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		return fmt.Errorf("op: %w", Permanent(errors.New("bad request")))
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if err == nil || err.Error() != "bad request" {
		t.Fatalf("err=%v, want unwrapped bad request", err)
	}
}

func TestDoContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(int) error { calls++; cancel(); return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
}

func TestDelayBackoffAndCap(t *testing.T) {
	p := Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	want := []time.Duration{50, 100, 200, 300, 300}
	for i, w := range want {
		if d := p.Delay(i); d != w*time.Millisecond {
			t.Fatalf("Delay(%d)=%v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	for _, r := range []float64{0, 0.5, 0.999} {
		p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return r }}
		d := p.Delay(0)
		lo, hi := 50*time.Millisecond, 100*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v,%v] for rand=%v", d, lo, hi, r)
		}
	}
}

func TestDelaysRecorded(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Sleep: noSleep(&delays)}
	p.Do(context.Background(), func(int) error { return errors.New("x") })
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 20*time.Millisecond {
		t.Fatalf("delays=%v, want [10ms 20ms]", delays)
	}
}

func TestBreakerTripAndBlock(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{FailLimit: 3, Cooldown: 5 * time.Second, Now: func() time.Time { return now }}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state=%v after 2 failures, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state=%v after 3 failures, want open", b.State())
	}
	if c := b.Counters(); c.Trips != 1 {
		t.Fatalf("trips=%d, want 1", c.Trips)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	now = now.Add(4 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed mid-cooldown")
	}
}

func TestBreakerHalfOpenProbeRecovery(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{FailLimit: 1, Cooldown: 5 * time.Second, Now: func() time.Time { return now }}
	b.Failure()
	now = now.Add(5 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller allowed while probe in flight")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state=%v after probe success, want closed", b.State())
	}
	c := b.Counters()
	if c.Probes != 1 || c.Recoveries != 1 {
		t.Fatalf("counters=%+v, want 1 probe, 1 recovery", c)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker denied")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{FailLimit: 1, Cooldown: time.Second, Now: func() time.Time { return now }}
	b.Failure()
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state=%v after probe failure, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed immediately")
	}
	// A fresh cooldown grants a fresh probe.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe denied after fresh cooldown")
	}
	b.Success()
	if c := b.Counters(); c.Trips != 2 || c.Probes != 2 || c.Recoveries != 1 {
		t.Fatalf("counters=%+v, want trips=2 probes=2 recoveries=1", c)
	}
}

func TestBreakerViable(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{FailLimit: 1, Cooldown: time.Second, Now: func() time.Time { return now }}
	if !b.Viable() {
		t.Fatal("closed breaker not viable")
	}
	b.Failure()
	if b.Viable() {
		t.Fatal("open breaker viable")
	}
	now = now.Add(2 * time.Second)
	if b.Viable() {
		t.Fatal("cooldown elapsed must not make a breaker viable without a probe")
	}
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	if b.Viable() {
		t.Fatal("half-open breaker viable")
	}
	b.Success()
	if !b.Viable() {
		t.Fatal("recovered breaker not viable")
	}
}

func TestBreakerSuccessResetsFailStreak(t *testing.T) {
	b := &Breaker{FailLimit: 2}
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed (streak reset by success)", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state=%v, want open", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state strings wrong")
	}
}
