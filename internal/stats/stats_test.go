package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/xrand"
)

func clustered(n, d, k int, seed uint64) (*linalg.Matrix, []int) {
	r := xrand.New(seed)
	centers := linalg.NewMatrix(k, d)
	for i := range centers.Data {
		centers.Data[i] = r.NormFloat64() * 20
	}
	x := linalg.NewMatrix(n, d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		for j := 0; j < d; j++ {
			x.Set(i, j, centers.At(c, j)+r.NormFloat64())
		}
	}
	return x, truth
}

func TestNormalizeZScores(t *testing.T) {
	r := xrand.New(1)
	x := linalg.NewMatrix(100, 4)
	for i := range x.Data {
		x.Data[i] = 5 + 3*r.NormFloat64()
	}
	Normalize(x)
	for j := 0; j < 4; j++ {
		var mean, variance float64
		for i := 0; i < 100; i++ {
			mean += x.At(i, j)
		}
		mean /= 100
		for i := 0; i < 100; i++ {
			dv := x.At(i, j) - mean
			variance += dv * dv
		}
		variance /= 99
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v != 0", j, mean)
		}
		if math.Abs(variance-1) > 1e-9 {
			t.Fatalf("column %d variance %v != 1", j, variance)
		}
	}
}

func TestNormalizeConstantColumn(t *testing.T) {
	x := linalg.NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 7)
		x.Set(i, 1, float64(i))
	}
	Normalize(x)
	for i := 0; i < 10; i++ {
		if x.At(i, 0) != 0 {
			t.Fatal("zero-variance column not zeroed")
		}
	}
}

func TestPCARecoversLowRank(t *testing.T) {
	// Data living on a 2-dimensional subspace of R^6.
	r := xrand.New(2)
	x := linalg.NewMatrix(200, 6)
	for i := 0; i < 200; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		for j := 0; j < 6; j++ {
			x.Set(i, j, a*float64(j+1)+b*float64((j*j)%5))
		}
	}
	Normalize(x)
	res, err := PCA(x, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Projected.Cols > 3 {
		t.Fatalf("PCA kept %d dims for rank-2 data", res.Projected.Cols)
	}
	if res.Explained < 0.99 {
		t.Fatalf("explained %v < target", res.Explained)
	}
}

func TestPCAErrorOnTooFewRows(t *testing.T) {
	if _, err := PCA(linalg.NewMatrix(1, 3), 0.9); err == nil {
		t.Fatal("PCA accepted a single observation")
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	x, truth := clustered(120, 4, 3, 5)
	res, err := KMeans(x, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same-truth pairs must map to the same cluster (check a sample).
	for i := 0; i < 117; i += 3 {
		for j := i + 3; j < i+12 && j < 120; j += 3 {
			if truth[i] == truth[j] && res.Assign[i] != res.Assign[j] {
				t.Fatalf("points %d,%d in same true cluster split apart", i, j)
			}
		}
	}
}

func TestKMeansAssignsNearestCentroid(t *testing.T) {
	f := func(seed uint64) bool {
		x, _ := clustered(60, 3, 4, seed)
		res, err := KMeans(x, 4, seed^1)
		if err != nil {
			return false
		}
		for i := 0; i < 60; i++ {
			own := sqDist(x.Row(i), res.Centroids.Row(res.Assign[i]))
			for c := 0; c < 4; c++ {
				if sqDist(x.Row(i), res.Centroids.Row(c)) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := clustered(80, 4, 5, 9)
	a, _ := KMeans(x, 5, 7)
	b, _ := KMeans(x, 5, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same-seed K-means runs differ")
		}
	}
}

func TestKMeansNoEmptyClusters(t *testing.T) {
	x, _ := clustered(40, 3, 2, 11)
	res, err := KMeans(x, 8, 3) // k much larger than natural clusters
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for _, a := range res.Assign {
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}

func TestKMeansWCSSDecreasesWithK(t *testing.T) {
	x, _ := clustered(150, 4, 6, 13)
	var last float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(x, k, 99)
		if err != nil {
			t.Fatal(err)
		}
		if res.WCSS > last*1.02 {
			t.Fatalf("WCSS grew from %v to %v at k=%d", last, res.WCSS, k)
		}
		last = res.WCSS
	}
}

func TestKMeansRangeErrors(t *testing.T) {
	x, _ := clustered(10, 2, 2, 1)
	if _, err := KMeans(x, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(x, 11, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestChooseKFindsStructure(t *testing.T) {
	x, _ := clustered(150, 4, 5, 21)
	k, err := ChooseK(x, 2, 10, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k < 3 || k > 8 {
		t.Fatalf("ChooseK = %d for 5 well-separated clusters", k)
	}
}

func TestIdenticalVectorsCluster(t *testing.T) {
	x := linalg.NewMatrix(10, 3) // all zero
	res, err := KMeans(x, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS != 0 {
		t.Fatalf("WCSS %v for identical points", res.WCSS)
	}
}
