// Package stats implements the statistical functions of the WCRT
// performance-data analyzer (§2.2 and §3 of the paper): Gaussian
// normalization of metric columns, principal component analysis, and
// K-means clustering with deterministic k-means++ seeding.
package stats

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/xrand"
)

// Normalize z-scores each column of x in place ("we normalize these
// metric values to a Gaussian distribution", §3). Columns with zero
// variance become all-zero. It returns the per-column means and
// standard deviations.
func Normalize(x *linalg.Matrix) (mean, std []float64) {
	n, d := x.Rows, x.Cols
	mean = make([]float64, d)
	std = make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(max(n-1, 1)))
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			if std[j] > 1e-12 {
				row[j] = (row[j] - mean[j]) / std[j]
			} else {
				row[j] = 0
			}
		}
	}
	return mean, std
}

// PCAResult is the outcome of a principal component analysis.
type PCAResult struct {
	// Components holds the principal directions as columns (d x k).
	Components *linalg.Matrix
	// EigenValues are the variances along each kept component.
	EigenValues []float64
	// Explained is the fraction of total variance kept.
	Explained float64
	// Projected is the input projected onto the kept components (n x k).
	Projected *linalg.Matrix
}

// PCA projects the rows of x onto the smallest set of principal
// components whose cumulative variance reaches explainTarget
// (e.g. 0.9). x should already be normalized.
func PCA(x *linalg.Matrix, explainTarget float64) (*PCAResult, error) {
	if x.Rows < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 observations, got %d", x.Rows)
	}
	cov := linalg.Covariance(x)
	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	k := 0
	acc := 0.0
	for k < len(vals) {
		if vals[k] > 0 {
			acc += vals[k]
		}
		k++
		if total > 0 && acc/total >= explainTarget {
			break
		}
	}
	if k == 0 {
		k = 1
	}
	comp := linalg.NewMatrix(x.Cols, k)
	for j := 0; j < k; j++ {
		for i := 0; i < x.Cols; i++ {
			comp.Set(i, j, vecs.At(i, j))
		}
	}
	proj := linalg.NewMatrix(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := 0; j < k; j++ {
			s := 0.0
			for a := 0; a < x.Cols; a++ {
				s += row[a] * comp.At(a, j)
			}
			proj.Set(i, j, s)
		}
	}
	explained := 1.0
	if total > 0 {
		explained = acc / total
	}
	return &PCAResult{Components: comp, EigenValues: vals[:k], Explained: explained, Projected: proj}, nil
}

// KMeansResult is a clustering outcome.
type KMeansResult struct {
	// K is the cluster count.
	K int
	// Assign maps each observation to its cluster.
	Assign []int
	// Centroids holds the cluster centers (k x d).
	Centroids *linalg.Matrix
	// WCSS is the within-cluster sum of squares.
	WCSS float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters the rows of x into k clusters using k-means++
// seeding and Lloyd iteration, deterministically from seed.
func KMeans(x *linalg.Matrix, k int, seed uint64) (*KMeansResult, error) {
	n, d := x.Rows, x.Cols
	if k <= 0 || k > n {
		return nil, fmt.Errorf("stats: KMeans k=%d out of range for %d observations", k, n)
	}
	rng := xrand.New(seed)
	cent := linalg.NewMatrix(k, d)

	// k-means++ seeding.
	first := rng.Intn(n)
	copy(cent.Row(0), x.Row(first))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(x.Row(i), cent.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dv := range dist {
			total += dv
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, dv := range dist {
				acc += dv
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), x.Row(pick))
		for i := range dist {
			if dd := sqDist(x.Row(i), cent.Row(c)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}

	assign := make([]int, n)
	const maxIter = 200
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := sqDist(x.Row(i), cent.Row(c)); dd < bestD {
					bestD = dd
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; reseed empty clusters with the point
		// farthest from its centroid.
		counts := make([]int, k)
		next := linalg.NewMatrix(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := next.Row(c)
			for j, v := range x.Row(i) {
				row[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if dd := sqDist(x.Row(i), cent.Row(assign[i])); dd > farD {
						farD = dd
						far = i
					}
				}
				copy(next.Row(c), x.Row(far))
				counts[c] = 1
				assign[far] = c
				continue
			}
			row := next.Row(c)
			for j := range row {
				row[j] /= float64(counts[c])
			}
		}
		cent = next
	}
	wcss := 0.0
	for i := 0; i < n; i++ {
		wcss += sqDist(x.Row(i), cent.Row(assign[i]))
	}
	return &KMeansResult{K: k, Assign: assign, Centroids: cent, WCSS: wcss, Iterations: iter + 1}, nil
}

// ChooseK selects a cluster count via the Bayesian-information-style
// criterion the WCRT analyzer uses: it evaluates k in [kMin, kMax] and
// returns the k minimizing WCSS + penalty*k*d*log(n).
func ChooseK(x *linalg.Matrix, kMin, kMax int, penalty float64, seed uint64) (int, error) {
	if kMin < 1 || kMax < kMin {
		return 0, fmt.Errorf("stats: ChooseK invalid range [%d, %d]", kMin, kMax)
	}
	bestK, bestScore := kMin, math.Inf(1)
	for k := kMin; k <= kMax && k <= x.Rows; k++ {
		res, err := KMeans(x, k, seed)
		if err != nil {
			return 0, err
		}
		score := res.WCSS + penalty*float64(k*x.Cols)*math.Log(float64(x.Rows))
		if score < bestScore {
			bestScore = score
			bestK = k
		}
	}
	return bestK, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
