package stack

import (
	"testing"

	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
)

func TestAllDescriptorsUsable(t *testing.T) {
	for _, d := range []Descriptor{
		MPI(), Hadoop(), Spark(), Hive(), Shark(), Impala(), HBase(), MySQL(), Native(),
	} {
		if d.Name == "" || d.CodeKB <= 0 {
			t.Fatalf("descriptor %+v incomplete", d)
		}
		l := mem.NewLayout()
		e := trace.NewEmitter(&trace.CountProbe{}, 50_000)
		rt := NewRuntime(d, e, l, 1)
		rt.TaskStart()
		rt.ReadRecord(100)
		rt.EmitKV(20)
		rt.Request(256)
		rt.Shuffle(1000)
		rt.IterStart()
		if d.TaskInsts > 0 && rt.FrameworkInsts == 0 {
			t.Fatalf("%s: no framework instructions emitted", d.Name)
		}
	}
}

func TestThickStacksEmitMore(t *testing.T) {
	run := func(d Descriptor) uint64 {
		l := mem.NewLayout()
		e := trace.NewEmitter(&trace.CountProbe{}, 1_000_000)
		rt := NewRuntime(d, e, l, 1)
		for i := 0; i < 100; i++ {
			rt.ReadRecord(100)
			rt.EmitKV(12)
		}
		return rt.FrameworkInsts
	}
	mpi, hadoop := run(MPI()), run(Hadoop())
	if hadoop < mpi*10 {
		t.Fatalf("Hadoop per-record overhead (%d) not >> MPI (%d)", hadoop, mpi)
	}
}

func TestFrameworkPreservesKernelPosition(t *testing.T) {
	l := mem.NewLayout()
	e := trace.NewEmitter(&trace.CountProbe{}, 100_000)
	rt := NewRuntime(Hadoop(), e, l, 1)
	kernel := trace.NewRoutine(l, "k", 4096)
	e.Enter(kernel)
	e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	before := e.PC()
	rt.ReadRecord(100)
	// Each framework chunk is entered by a call instruction at the
	// kernel call site, so the PC advances a few slots but must stay
	// in the kernel routine just past the call sites.
	if e.Routine() != kernel {
		t.Fatalf("framework emission left the kernel routine")
	}
	if e.PC() < before || e.PC() > before+64 {
		t.Fatalf("framework emission moved the kernel position: %#x -> %#x", before, e.PC())
	}
	if e.Depth() != 0 {
		t.Fatalf("unbalanced framework call depth %d", e.Depth())
	}
}

func TestCodeFootprintsOrdered(t *testing.T) {
	// The stack models' text footprints drive the paper's L1I story:
	// MPI < Impala < Spark < Hadoop < HBase.
	sizes := []struct {
		name string
		kb   int
	}{
		{"MPI", MPI().CodeKB},
		{"Impala", Impala().CodeKB},
		{"Spark", Spark().CodeKB},
		{"Hadoop", Hadoop().CodeKB},
		{"HBase", HBase().CodeKB},
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i].kb <= sizes[i-1].kb {
			t.Fatalf("footprint ordering violated: %s (%d KB) <= %s (%d KB)",
				sizes[i].name, sizes[i].kb, sizes[i-1].name, sizes[i-1].kb)
		}
	}
}

func TestJVMStacksRunGC(t *testing.T) {
	l := mem.NewLayout()
	probe := &trace.CountProbe{}
	e := trace.NewEmitter(probe, 3_000_000)
	rt := NewRuntime(Spark(), e, l, 1)
	for e.OK() {
		rt.ReadRecord(100)
		rt.EmitKV(12)
	}
	if rt.sinceGC == 0 && rt.FrameworkInsts < uint64(rt.D.GCPeriod) {
		t.Skip("budget too small to trigger GC")
	}
	// GC emission happened if framework instructions exceeded a period.
	if rt.FrameworkInsts > uint64(rt.D.GCPeriod)*2 && rt.gcWalk == nil {
		t.Fatal("no GC walk configured for a JVM stack")
	}
}

func TestBatchDefaults(t *testing.T) {
	d := Descriptor{}
	if d.Batch() != 1 {
		t.Fatal("zero BatchRows should mean 1")
	}
	imp := Impala()
	if imp.Batch() != 1024 {
		t.Fatalf("Impala batch = %d, want 1024", imp.Batch())
	}
}
