// Package stack models the software stacks whose impact is the paper's
// third headline observation: "complex software stacks that fail to
// use state-of-practise processors efficiently are one of the main
// factors leading to high front-end stalls. For the same workloads,
// the L1I cache miss rates have one order of magnitude differences
// among diverse implementations with different software stacks."
//
// A stack model is an instruction-footprint overlay: around every
// record read, key-value emission, task boundary and request, it emits
// framework instructions drawn from a text segment of the stack's
// characteristic size, split between a small hot core (dispatch loops,
// serializer inner loops — instruction-cache resident) and a large
// cold periphery (RPC, task management, format negotiation — the code
// that blows out the L1I). JVM stacks additionally emit periodic
// garbage-collection sweeps over the framework heap, which is what
// pushes their L2/LLC data traffic above the thin stacks' (§5.5,
// third observation).
package stack

import (
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/xrand"
)

// Descriptor parameterizes a software stack model. The values for the
// concrete stacks live in descriptors.go and are the calibrated
// constants declared in DESIGN.md §4.
type Descriptor struct {
	// Name is the stack name as used in workload IDs ("Hadoop").
	Name string
	// JVM marks managed-runtime stacks (enables the GC model).
	JVM bool

	// CodeKB is the total framework text footprint; HotKB the
	// instruction-cache-resident core of it.
	CodeKB, HotKB int
	// ColdFrac is the fraction of framework dynamic instructions
	// executed from cold paths (uniformly spread over the cold text).
	ColdFrac float32

	// ReadInsts + ReadPerByte*bytes instructions are emitted per input
	// record read (record reader, deserialization).
	ReadInsts   int
	ReadPerByte float32
	// EmitInsts + EmitPerByte*bytes per emitted key-value pair
	// (collector, serializer, spill accounting).
	EmitInsts   int
	EmitPerByte float32
	// TaskInsts per task/split boundary (scheduling, setup, commit).
	TaskInsts int
	// IterInsts per iteration boundary of iterative jobs (Spark-style
	// cached RDD re-scan bookkeeping).
	IterInsts int
	// RequestInsts per served request (service stacks: RPC decode,
	// dispatch, filter chain, response encode).
	RequestInsts int
	// ShufflePerByte instructions per shuffled byte.
	ShufflePerByte float32

	// GCPeriod is the framework-instruction interval between GC
	// sweeps; GCInsts their length; zero disables GC.
	GCPeriod, GCInsts int
	// HeapMB sizes the framework heap the GC walks and from which
	// serialization metadata is read.
	HeapMB int

	// Mix is the framework instruction composition; IndirectEvery adds
	// an indirect call every so many framework instructions (virtual
	// dispatch density).
	Mix           trace.Mix
	IndirectEvery int

	// ColdZipfS skews cold-routine popularity (default 1.35); service
	// stacks use a steeper skew, keeping their hottest slow paths
	// L2-resident while the tail still blows out the L1I.
	ColdZipfS float64

	// SysCPUFactor scales the simulated user-level instruction count to
	// deployment-scale CPU seconds in the system-behaviour model: it
	// stands for the system-software path the micro-architectural
	// simulation does not emit (kernel I/O, JVM services, HDFS
	// datanode work, checksumming). Calibrated per stack; see
	// DESIGN.md §4.
	SysCPUFactor float64

	// BatchRows is how many rows a relational engine pulls per
	// record-reader invocation: 1 for row-at-a-time executors (Hive
	// 0.9, MySQL), large for vectorized engines (Impala, Shark's
	// columnar RDDs). Kernels use Batch() so zero means 1.
	BatchRows int
}

// Batch returns the effective batch size (at least 1).
func (d *Descriptor) Batch() int {
	if d.BatchRows < 1 {
		return 1
	}
	return d.BatchRows
}

// Runtime is one workload run's instantiation of a stack model: its
// routines and heap walks are allocated from the run's layout, and all
// framework emission goes through the run's emitter.
type Runtime struct {
	D Descriptor
	E *trace.Emitter

	hot     []*trace.Routine
	cold    []*trace.Routine
	coldPop *xrand.Zipf
	// sticky is the slow-path routine small framework events reuse;
	// consecutive record-level events walk the same cold pages, as a
	// real runtime's per-record slow path does.
	sticky     *trace.Routine
	stickyLeft int
	gcRtn      *trace.Routine
	stream     trace.Stream
	gcWalk     *trace.Walk
	rng        *xrand.Rand
	hotSlot    int
	sinceGC    int

	// FrameworkInsts tallies instructions emitted by the stack model
	// (vs. the kernel), for the overhead-share reports.
	FrameworkInsts uint64
}

const coldChunkKB = 16

// NewRuntime allocates the stack's simulated text and heap from l and
// binds it to e. Allocate the runtime before kernel routines so the
// framework occupies the bottom of the text segment, as a real process
// image would place its libraries.
func NewRuntime(d Descriptor, e *trace.Emitter, l *mem.Layout, seed uint64) *Runtime {
	rt := &Runtime{D: d, E: e, rng: xrand.New(seed)}
	hotKB := d.HotKB
	if hotKB <= 0 {
		hotKB = 16
	}
	nHot := 4
	for i := 0; i < nHot; i++ {
		rt.hot = append(rt.hot, trace.NewRoutine(l, d.Name+"/hot", uint64(hotKB/nHot)<<10))
	}
	coldKB := d.CodeKB - hotKB
	for coldKB > 0 {
		sz := coldChunkKB
		if coldKB < sz {
			sz = coldKB
		}
		rt.cold = append(rt.cold, trace.NewRoutine(l, d.Name+"/cold", uint64(sz)<<10))
		coldKB -= sz
	}
	if len(rt.cold) > 0 {
		// Cold-path popularity is skewed: a handful of cold routines
		// (common slow paths) take most of the cold executions, the
		// long tail the rest.
		s := d.ColdZipfS
		if s == 0 {
			s = 1.15
		}
		rt.coldPop = xrand.NewZipf(len(rt.cold), s)
	}
	if d.GCPeriod > 0 {
		rt.gcRtn = trace.NewRoutine(l, d.Name+"/gc", 24<<10)
	}
	heapMB := d.HeapMB
	if heapMB <= 0 {
		heapMB = 2
	}
	heapBase := l.Alloc(uint64(heapMB) << 20)
	// Serialization buffers are small and recycled: the runtime writes
	// the same ~64 KB of active spill space over and over (L1/L2
	// resident), so framework buffer traffic does not stream the heap.
	spill := trace.NewWalk(heapBase, 16<<10, 16)
	// Runtime metadata (object headers, dispatch tables): random inside
	// a compact working set that the caches cover.
	meta := trace.NewRandomWalk(heapBase+(64<<10), 32<<10)
	// Object-graph touches into the wider young generation: random
	// page, a handful of object fields per page — the L2-missing,
	// L3-hitting component of managed-heap traffic.
	farMB := uint64(4)
	if uint64(heapMB) < farMB {
		farMB = uint64(heapMB)
	}
	far := trace.NewClusterWalk(heapBase+(1<<20), farMB<<20, 256, 16)
	farP := float32(0.020)
	if !d.JVM {
		farP = 0.008
	}
	rt.stream = trace.Stream{
		Mix: d.Mix, Pri: spill, Sec: meta, SecP: 0.12,
		Far: far, FarP: farP, Rng: rt.rng,
	}
	// GC increments sweep the whole heap in address order (mark/sweep
	// phase locality): long strided scans that miss the LLC on a heap
	// bigger than it — the thick stacks' LLC traffic of §5.5.
	rt.gcWalk = trace.NewWalk(heapBase, uint64(heapMB)<<20, 16)
	return rt
}

// framework emits n framework instructions split between hot and cold
// code, then returns the emitter to the kernel's position.
func (rt *Runtime) framework(n int) {
	if n <= 0 || !rt.E.OK() {
		return
	}
	d := &rt.D
	nCold := int(float32(n) * d.ColdFrac)
	nHot := n - nCold
	before := rt.E.Emitted()

	if nHot > 0 {
		r := rt.hot[rt.hotSlot%len(rt.hot)]
		// Eight stable entry points per hot routine: the hot working
		// set stays a few dozen KB, inside the L1I, like a real
		// runtime's dispatch core.
		off := uint64(rt.hotSlot%8) * 640
		rt.hotSlot++
		rt.E.Call(r)
		rt.stream.Emit(rt.E, r, off, nHot)
		rt.E.Ret()
	}
	if nCold > 0 && nCold < 160 && len(rt.cold) > 0 {
		// Small per-record events reuse one sticky slow-path routine
		// for a while: consecutive records execute the same cold pages
		// (ITLB-friendly), and the sticky routine rotates slowly so the
		// run still covers the stack's text footprint.
		if rt.sticky == nil || rt.stickyLeft <= 0 {
			rt.sticky = rt.cold[rt.coldPop.Sample(rt.rng)]
			rt.stickyLeft = 5
		}
		rt.stickyLeft--
		rt.E.Call(rt.sticky)
		rt.stream.Emit(rt.E, rt.sticky, (rt.sticky.Size/4)*rt.rng.Uint64n(4), nCold)
		rt.E.Ret()
		nCold = 0
	}
	for nCold > 0 && len(rt.cold) > 0 {
		chunk := nCold
		if chunk > 500 {
			chunk = 500 // long slow paths traverse several functions
		}
		nCold -= chunk
		r := rt.cold[rt.coldPop.Sample(rt.rng)]
		// Four canonical entry points per cold routine: cold paths are
		// still functions with fixed addresses, so re-executions walk
		// the same instructions (and their branches become learnable),
		// they are just spread over a lot of text.
		off := (r.Size / 4) * rt.rng.Uint64n(4)
		rt.E.Call(r)
		rt.stream.Emit(rt.E, r, off, chunk)
		rt.E.Ret()
	}
	rt.FrameworkInsts += rt.E.Emitted() - before

	if d.GCPeriod > 0 {
		rt.sinceGC += n
		if rt.sinceGC >= d.GCPeriod {
			rt.sinceGC = 0
			rt.gc()
		}
	}
}

// gc emits one garbage-collection increment: a sweep loop in the GC
// routine whose loads stride the framework heap.
func (rt *Runtime) gc() {
	d := &rt.D
	if d.GCInsts <= 0 || !rt.E.OK() {
		return
	}
	before := rt.E.Emitted()
	e := rt.E
	e.Call(rt.gcRtn)
	mark := trace.Stream{
		Mix: trace.Mix{Load: 0.38, Store: 0.08, Branch: 0.2, IntAddr: 0.22,
			Taken: 0.3, Noise: 0.02, Chain: 0.45},
		Pri: rt.gcWalk,
		Rng: rt.rng,
	}
	mark.Emit(e, rt.gcRtn, 0, d.GCInsts)
	e.Ret()
	rt.FrameworkInsts += rt.E.Emitted() - before
}

// TaskStart emits the per-task framework overhead (split scheduling,
// task setup, output committer negotiation).
func (rt *Runtime) TaskStart() { rt.framework(rt.D.TaskInsts) }

// IterStart emits the per-iteration overhead of iterative jobs.
func (rt *Runtime) IterStart() { rt.framework(rt.D.IterInsts) }

// ReadRecord emits the record-reader overhead for one input record of
// the given size.
func (rt *Runtime) ReadRecord(bytes int) {
	rt.framework(rt.D.ReadInsts + int(rt.D.ReadPerByte*float32(bytes)))
}

// EmitKV emits the collector/serializer overhead for one emitted
// key-value pair of the given size.
func (rt *Runtime) EmitKV(bytes int) {
	rt.framework(rt.D.EmitInsts + int(rt.D.EmitPerByte*float32(bytes)))
}

// Request emits the per-request overhead of a service stack plus the
// response serialization for respBytes.
func (rt *Runtime) Request(respBytes int) {
	rt.framework(rt.D.RequestInsts + int(rt.D.EmitPerByte*float32(respBytes)))
}

// Shuffle emits the shuffle/exchange overhead for the given volume.
func (rt *Runtime) Shuffle(bytes int) {
	rt.framework(int(rt.D.ShufflePerByte * float32(bytes)))
}
