package stack

import "repro/internal/sim/trace"

// jvmMix is the framework instruction composition of managed-runtime
// stacks: data-movement heavy, branchy, no floating point — the mix
// that makes big data workloads "data movement dominated computing
// with more branch operations" (paper §5.1).
var jvmMix = trace.Mix{
	Load: 0.28, Store: 0.12, Branch: 0.20, IntAddr: 0.28,
	IntMul: 0.010, IntDiv: 0.002,
	Taken: 0.28, Noise: 0.01, Chain: 0.35,
}

// nativeMix is the leaner composition of C/C++ runtime code.
var nativeMix = trace.Mix{
	Load: 0.27, Store: 0.11, Branch: 0.17, IntAddr: 0.29,
	IntMul: 0.012, IntDiv: 0.002,
	Taken: 0.28, Noise: 0.008, Chain: 0.30,
}

// MPI returns the thin message-passing stack of the paper's §5.5
// comparison implementations: a small text footprint and near-zero
// per-record overhead, so the kernel's own behaviour dominates — which
// is why the MPI versions' L1I miss rates sit with the traditional
// benchmarks.
func MPI() Descriptor {
	return Descriptor{
		Name:   "MPI",
		CodeKB: 384, HotKB: 48, ColdFrac: 0.06,
		ReadInsts: 6, ReadPerByte: 0.02,
		EmitInsts: 3, EmitPerByte: 0.05,
		TaskInsts: 400, IterInsts: 60,
		ShufflePerByte: 0.15,
		HeapMB:         4,
		Mix:            nativeMix,
		IndirectEvery:  200,
		BatchRows:      128,
		SysCPUFactor:   4,
	}
}

// Hadoop returns the Hadoop MapReduce stack model (JDK 1.6 /
// Hadoop 1.0.2 era, per the paper's testbed).
func Hadoop() Descriptor {
	return Descriptor{
		Name: "Hadoop", JVM: true,
		CodeKB: 1536, HotKB: 160, ColdFrac: 0.17,
		ReadInsts: 140, ReadPerByte: 0.5,
		EmitInsts: 80, EmitPerByte: 0.9,
		TaskInsts: 12000, IterInsts: 4000,
		ShufflePerByte: 1.2,
		GCPeriod:       400000, GCInsts: 9000, HeapMB: 48,
		Mix:           jvmMix,
		IndirectEvery: 75,
		SysCPUFactor:  48,
	}
}

// Spark returns the Spark 1.0.2 stack model. Its per-record closure
// dispatch spreads over more cold code than Hadoop's record reader
// (the paper measures Spark WordCount at L1I MPKI 17 vs Hadoop's 7),
// while its iterative jobs amortize framework work across cached-RDD
// passes.
func Spark() Descriptor {
	return Descriptor{
		Name: "Spark", JVM: true,
		CodeKB: 1280, HotKB: 128, ColdFrac: 0.46,
		ReadInsts: 110, ReadPerByte: 0.4,
		EmitInsts: 100, EmitPerByte: 1.0,
		TaskInsts: 9000, IterInsts: 2500,
		ShufflePerByte: 1.0,
		GCPeriod:       320000, GCInsts: 11000, HeapMB: 64,
		Mix:           jvmMix,
		IndirectEvery: 55,
		SysCPUFactor:  17,
	}
}

// Hive returns the Hive-on-MapReduce stack model: Hadoop plus the
// per-row operator-tree interpretation of the Hive 0.9 executor.
func Hive() Descriptor {
	return Descriptor{
		Name: "Hive", JVM: true,
		CodeKB: 1792, HotKB: 176, ColdFrac: 0.16,
		ReadInsts: 170, ReadPerByte: 0.5,
		EmitInsts: 100, EmitPerByte: 1.0,
		TaskInsts:      14000,
		ShufflePerByte: 1.3,
		GCPeriod:       400000, GCInsts: 9000, HeapMB: 48,
		Mix:           jvmMix,
		IndirectEvery: 70,
		SysCPUFactor:  30,
	}
}

// Shark returns the Shark (SQL-on-Spark) stack model.
func Shark() Descriptor {
	return Descriptor{
		Name: "Shark", JVM: true,
		CodeKB: 1408, HotKB: 144, ColdFrac: 0.22,
		ReadInsts: 130, ReadPerByte: 0.05,
		EmitInsts: 95, EmitPerByte: 0.9,
		TaskInsts: 9000, IterInsts: 2500,
		ShufflePerByte: 1.0,
		GCPeriod:       360000, GCInsts: 10000, HeapMB: 56,
		Mix:           jvmMix,
		IndirectEvery: 60,
		BatchRows:     512,
		SysCPUFactor:  9,
	}
}

// Impala returns the Impala stack model: a C++ vectorized engine whose
// batch-at-a-time execution leaves very little per-row framework work.
func Impala() Descriptor {
	return Descriptor{
		Name:   "Impala",
		CodeKB: 640, HotKB: 128, ColdFrac: 0.07,
		ReadInsts: 12, ReadPerByte: 0.02,
		EmitInsts: 8, EmitPerByte: 0.15,
		TaskInsts:      8000,
		ShufflePerByte: 0.4,
		HeapMB:         24,
		Mix:            nativeMix,
		IndirectEvery:  80,
		BatchRows:      1024,
		SysCPUFactor:   12,
	}
}

// HBase returns the HBase region-server stack model used by the cloud
// OLTP (service) workloads: a very large text footprint walked almost
// randomly per request (RPC decode, filter chains, block cache,
// memstore), which is what gives the service class its L1I MPKI of ~51
// in the paper's Fig. 4.
func HBase() Descriptor {
	return Descriptor{
		Name: "HBase", JVM: true,
		CodeKB: 2560, HotKB: 128, ColdFrac: 0.62, ColdZipfS: 1.3,
		ReadInsts: 150, ReadPerByte: 0.4,
		EmitInsts: 90, EmitPerByte: 0.8,
		TaskInsts:      5000,
		RequestInsts:   5200,
		ShufflePerByte: 0.8,
		GCPeriod:       260000, GCInsts: 9000, HeapMB: 64,
		Mix:           jvmMix,
		IndirectEvery: 50,
		SysCPUFactor:  30,
	}
}

// MySQL returns a row-store RDBMS stack model (roster variety: the
// BigDataBench OLTP operations have MySQL implementations).
func MySQL() Descriptor {
	return Descriptor{
		Name:   "MySQL",
		CodeKB: 896, HotKB: 128, ColdFrac: 0.28,
		ReadInsts: 60, ReadPerByte: 0.2,
		EmitInsts: 40, EmitPerByte: 0.4,
		TaskInsts:      3000,
		RequestInsts:   1400,
		ShufflePerByte: 0.5,
		HeapMB:         32,
		Mix:            nativeMix,
		IndirectEvery:  60,
		SysCPUFactor:   8,
	}
}

// Native returns the near-empty stack under the comparator suites
// (SPEC, PARSEC, HPCC run as plain compiled binaries).
func Native() Descriptor {
	return Descriptor{
		Name:   "Native",
		CodeKB: 48, HotKB: 32, ColdFrac: 0.02,
		ReadInsts: 2, EmitInsts: 1,
		TaskInsts:    50,
		HeapMB:       2,
		Mix:          nativeMix,
		SysCPUFactor: 1,
	}
}
