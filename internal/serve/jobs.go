package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/eventbus"
)

// JobState is a job's lifecycle stage.
type JobState string

// Job lifecycle: queued (accepted, waiting for a pool worker) →
// running → one of done / failed / canceled. Shutdown drains running
// jobs and cancels queued ones; DELETE /jobs/{id} cancels either.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// UnitTiming is one executed unit's wall time within a job — the same
// rows experiments.TimingTable prints, made pollable.
type UnitTiming struct {
	Unit   string  `json:"unit"`
	Ms     float64 `json:"ms"`
	Status string  `json:"status"`
}

// JobRequest is the POST /jobs body: any mix of paper units and
// ad-hoc scenarios, computed asynchronously into the shared store.
type JobRequest struct {
	Units     []string   `json:"units,omitempty"`
	Scenarios []Scenario `json:"scenarios,omitempty"`
}

// JobStatus is the GET /jobs/{id} body. Results carries each
// completed unit's (and scenario's) rendered text inline, keyed like
// Timings' Unit column — the retrieval path that keeps working when
// the store has since evicted the rendered artefact, and the only one
// for ad-hoc scenario renders (re-POSTing the spec would otherwise
// recompute them after an eviction).
type JobStatus struct {
	ID               string            `json:"id"`
	State            JobState          `json:"state"`
	Units            []string          `json:"units,omitempty"`
	Scenarios        int               `json:"scenarios,omitempty"`
	Created          time.Time         `json:"created"`
	Started          *time.Time        `json:"started,omitempty"`
	Finished         *time.Time        `json:"finished,omitempty"`
	Timings          []UnitTiming      `json:"timings,omitempty"`
	Results          map[string]string `json:"results,omitempty"`
	ResultsTruncated bool              `json:"results_truncated,omitempty"`
	Error            string            `json:"error,omitempty"`
}

// validJobState reports whether s names a lifecycle state — the
// ?state= filter on GET /v1/jobs rejects anything else.
func validJobState(s JobState) bool {
	switch s {
	case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
		return true
	}
	return false
}

// defaultJobResultBytes caps the rendered bytes one job retains inline
// (Config.MaxJobResultBytes overrides) — finished jobs are themselves
// retained (up to maxFinishedJobs), so unbounded per-job results would
// reopen the memory hole the store quota closes. Renders past the cap
// are dropped from the retained record (the status notes the
// truncation, and jobStatus recovers them from the store when still
// available); every real paper unit and scenario render is a few KB of
// ASCII, far under it.
const defaultJobResultBytes = 1 << 20

// job is one asynchronous computation with its cancellation handle.
type job struct {
	id  string
	req JobRequest

	ctx    context.Context
	cancel context.CancelFunc

	mu            sync.Mutex
	state         JobState
	created       time.Time
	started       time.Time
	finished      time.Time
	timings       []UnitTiming
	results       map[string]string
	resultKeys    map[string]artifact.Key
	resultsDroppd bool
	errMsg        string

	// The bounded lifecycle-event backlog GET /v1/jobs/{id}/events
	// replays before going live. evMu also serializes bus emission for
	// this job's topic, so backlog order always matches sequence order
	// (it nests outside the bus lock; nothing on the bus calls back
	// into a job).
	evMu          sync.Mutex
	events        []eventbus.Event
	eventsDropped int64
}

// eventSnapshot copies the backlog for replay: the retained events
// plus how many older ones the backlog cap already shed.
func (j *job) eventSnapshot() ([]eventbus.Event, int64) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	return append([]eventbus.Event(nil), j.events...), j.eventsDropped
}

// scenarioSpec finds the submitted scenario behind a job result name
// (the part after "scenario:"): a spec's own name, or the positional
// scenario-N fallback unnamed specs are recorded under.
func (j *job) scenarioSpec(name string) (Scenario, bool) {
	for i, spec := range j.req.Scenarios {
		n := spec.Name
		if n == "" {
			n = fmt.Sprintf("scenario-%d", i+1)
		}
		if n == name {
			return spec, true
		}
	}
	return Scenario{}, false
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state,
		Units: j.req.Units, Scenarios: len(j.req.Scenarios),
		Created:          j.created,
		Timings:          append([]UnitTiming(nil), j.timings...),
		ResultsTruncated: j.resultsDroppd,
		Error:            j.errMsg,
	}
	if len(j.results) > 0 {
		st.Results = make(map[string]string, len(j.results))
		for k, v := range j.results {
			st.Results[k] = v
		}
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// maxFinishedJobs bounds retained terminal jobs: a long-running
// daemon must not grow per submission, so once the cap is exceeded
// the oldest finished jobs are evicted (their artefacts live on in
// the store — only the status record goes). Queued and running jobs
// are never evicted.
const maxFinishedJobs = 512

// jobSet owns every job the server has accepted.
type jobSet struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  int
	wg   sync.WaitGroup
}

func newJobSet() *jobSet {
	return &jobSet{jobs: map[string]*job{}}
}

func (s *jobSet) add(req JobRequest) *job {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.seq++
	j := &job{
		id:      fmt.Sprintf("job-%08d", s.seq),
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		state:   JobQueued,
		created: time.Now(),
	}
	s.jobs[j.id] = j
	s.pruneLocked()
	s.mu.Unlock()
	s.wg.Add(1)
	return j
}

// pruneLocked evicts the oldest finished jobs beyond maxFinishedJobs.
// Caller holds s.mu.
func (s *jobSet) pruneLocked() {
	var finished []string
	for id, j := range s.jobs {
		j.mu.Lock()
		terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		j.mu.Unlock()
		if terminal {
			finished = append(finished, id)
		}
	}
	if len(finished) <= maxFinishedJobs {
		return
	}
	// Zero-padded sequence ids sort chronologically.
	sort.Strings(finished)
	for _, id := range finished[:len(finished)-maxFinishedJobs] {
		delete(s.jobs, id)
	}
}

func (s *jobSet) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobPage is the GET /v1/jobs response envelope: one page of job
// summaries, newest first, plus the cursor that resumes the listing
// after this page (absent on the last page — pass it back as ?cursor=).
type JobPage struct {
	Jobs       []JobStatus `json:"jobs"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

// page returns one page of job summaries, newest first. state filters
// to one lifecycle state ("" = all); limit bounds the page; cursor, a
// job id from a previous page's NextCursor, resumes strictly after it
// (ids smaller than the cursor, in the newest-first order). Summaries
// carry identity and lifecycle only — Timings and Results are stripped,
// fetched per job at GET /v1/jobs/{id}.
func (s *jobSet) page(state JobState, limit int, cursor string) JobPage {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	// ids are zero-padded sequence numbers: lexicographic = submission
	// order, reversed for newest-first.
	sort.Slice(all, func(i, k int) bool { return all[i].id > all[k].id })
	page := JobPage{Jobs: []JobStatus{}}
	for _, j := range all {
		if cursor != "" && j.id >= cursor {
			continue
		}
		st := j.status()
		if state != "" && st.State != state {
			continue
		}
		st.Timings = nil
		st.Results = nil
		st.ResultsTruncated = false
		page.Jobs = append(page.Jobs, st)
		if len(page.Jobs) == limit {
			// More candidates may remain below this id; hand the client
			// a cursor even if the remainder filters to nothing — the
			// next page is then empty and final, which is still correct.
			if j != all[len(all)-1] {
				page.NextCursor = st.ID
			}
			break
		}
	}
	return page
}

// cancelQueued cancels every job still waiting for a worker — the
// shutdown rule: in-flight work drains, queued work aborts.
func (s *jobSet) cancelQueued() {
	s.mu.Lock()
	var queued []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == JobQueued {
			queued = append(queued, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.cancel()
	}
}
