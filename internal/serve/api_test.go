package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// errEnvelope decodes the v1 error body.
type errEnvelope struct {
	Error apiError `json:"error"`
}

func decodeErr(t *testing.T, b []byte) apiError {
	t.Helper()
	var env errEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code == "" {
		t.Fatalf("body %q is not an error envelope: %v", b, err)
	}
	return env.Error
}

// TestErrorEnvelope pins the uniform v1 error shape: every failure is
// JSON with a stable machine-readable code, never ad-hoc text.
func TestErrorEnvelope(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{http.MethodGet, "/v1/units/fig99", "", http.StatusNotFound, "unknown_unit"},
		{http.MethodPost, "/v1/units/fig6", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodGet, "/v1/scenarios", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodPost, "/v1/scenarios", "not json", http.StatusBadRequest, "bad_body"},
		{http.MethodPost, "/v1/scenarios", `{"workloads": ["Z-Nothing"]}`, http.StatusBadRequest, "invalid_scenario"},
		{http.MethodPost, "/v1/jobs", `{}`, http.StatusBadRequest, "invalid_job"},
		{http.MethodPost, "/v1/jobs", `{"units": ["fig99"]}`, http.StatusBadRequest, "unknown_unit"},
		{http.MethodPost, "/v1/jobs", "garbage", http.StatusBadRequest, "bad_body"},
		{http.MethodGet, "/v1/jobs/job-99999999", "", http.StatusNotFound, "unknown_job"},
		{http.MethodGet, "/v1/jobs?state=flying", "", http.StatusBadRequest, "invalid_query"},
		{http.MethodGet, "/v1/jobs?limit=0", "", http.StatusBadRequest, "invalid_query"},
		{http.MethodGet, "/v1/jobs?limit=9999", "", http.StatusBadRequest, "invalid_query"},
		{http.MethodGet, "/v1/jobs?cursor=banana", "", http.StatusBadRequest, "invalid_query"},
		{http.MethodPut, "/v1/jobs", "", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, c := range cases {
		var rd io.Reader
		if c.body != "" {
			rd = strings.NewReader(c.body)
		}
		req, err := http.NewRequest(c.method, ts.URL+c.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.status, b)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s %s: error Content-Type %q", c.method, c.path, ct)
		}
		if e := decodeErr(t, b); e.Code != c.code || e.Message == "" {
			t.Errorf("%s %s: envelope %+v, want code %q", c.method, c.path, e, c.code)
		}
	}
}

// TestLegacyPathsRedirect pins the migration contract: every
// unversioned path 308s to its /v1 home, and — because 308 preserves
// method and body — a redirect-following client keeps working through
// POSTs unchanged.
func TestLegacyPathsRedirect(t *testing.T) {
	srv, ts := startServer(t, Config{})
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, c := range []struct{ path, want string }{
		{"/units/fig6", "/v1/units/fig6"},
		{"/scenarios", "/v1/scenarios"},
		{"/jobs", "/v1/jobs"},
		{"/jobs/job-00000001", "/v1/jobs/job-00000001"},
		{"/stats", "/v1/stats"},
		{"/jobs?state=done&limit=5", "/v1/jobs?state=done&limit=5"},
	} {
		resp, err := noFollow.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Fatalf("GET %s: %d, want 308", c.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != c.want {
			t.Fatalf("GET %s: Location %q, want %q", c.path, loc, c.want)
		}
	}

	// A stock client POSTing a scenario to the legacy path follows the
	// 308 with its body intact and gets the rendered result.
	resp, err := http.Post(ts.URL+"/scenarios", "application/json",
		strings.NewReader(`{"workloads": ["H-Grep"], "sizes_kb": [16]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(b) == 0 {
		t.Fatalf("legacy POST through redirect: %d: %s", resp.StatusCode, b)
	}
	if st := srv.Stats(); st.ScenarioRequests != 1 || st.Computes != 1 {
		t.Fatalf("redirected POST did not reach v1: %+v", st)
	}
}

// seedJobs plants n terminal jobs directly in the set (no computation)
// with alternating done/failed states, returning their ids oldest
// first.
func seedJobs(srv *Server, n int) []string {
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		j := srv.jobs.add(JobRequest{Units: []string{"table1"}})
		j.mu.Lock()
		if i%2 == 0 {
			j.state = JobDone
		} else {
			j.state = JobFailed
		}
		j.finished = time.Now()
		j.timings = []UnitTiming{{Unit: "table1", Ms: 1, Status: "ok"}}
		j.results = map[string]string{"table1": "data"}
		j.mu.Unlock()
		srv.jobs.wg.Done()
		ids[i] = j.id
	}
	return ids
}

// TestJobsPagination pins the GET /v1/jobs wire contract: newest-first
// pages of summaries (no timings, no results), cursor resumption
// walking the full set exactly once, state filtering, and no cursor on
// the final page.
func TestJobsPagination(t *testing.T) {
	srv, ts := startServer(t, Config{})
	ids := seedJobs(srv, 7)

	getPage := func(query string) JobPage {
		t.Helper()
		code, _, b := get(t, ts.URL+"/v1/jobs"+query)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: %d: %s", query, code, b)
		}
		var page JobPage
		if err := json.Unmarshal(b, &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Walk with limit=3: 3 + 3 + 1, newest first, each summary
	// stripped of its heavy fields.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination never terminated")
		}
		q := "?limit=3"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		page := getPage(q)
		for _, j := range page.Jobs {
			if len(j.Timings) != 0 || len(j.Results) != 0 {
				t.Fatalf("summary %s carries timings/results", j.ID)
			}
			walked = append(walked, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, want %d: %v", len(walked), len(ids), walked)
	}
	for i, id := range walked {
		if want := ids[len(ids)-1-i]; id != want {
			t.Fatalf("position %d: %s, want %s (newest first)", i, id, want)
		}
	}

	// State filter: the 4 done jobs only.
	done := getPage("?state=done")
	if len(done.Jobs) != 4 {
		t.Fatalf("state=done returned %d jobs, want 4", len(done.Jobs))
	}
	for _, j := range done.Jobs {
		if j.State != JobDone {
			t.Fatalf("state=done returned a %s job", j.State)
		}
	}

	// Default limit covers the whole set in one cursorless page.
	all := getPage("")
	if len(all.Jobs) != 7 || all.NextCursor != "" {
		t.Fatalf("default page: %d jobs cursor %q", len(all.Jobs), all.NextCursor)
	}

	// Full detail still lives at the per-job endpoint.
	code, _, b := get(t, ts.URL+"/v1/jobs/"+ids[0])
	var st JobStatus
	if code != http.StatusOK || json.Unmarshal(b, &st) != nil || len(st.Results) == 0 {
		t.Fatalf("job detail: %d: %s", code, b)
	}
}

// TestJobResultsRecoveredPastCap pins the eviction-survival contract
// for inline results: renders dropped from the retained record by the
// per-job cap are transparently re-inlined from the store at GET time,
// so GET /v1/jobs/{id} serves full results (and no truncation flag) as
// long as the artefacts are fetchable — with the retained record
// itself staying tiny.
func TestJobResultsRecoveredPastCap(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2, MaxJobResultBytes: 1})
	body := `{"units": ["table2"], "scenarios": [{"name": "capped", "workloads": ["H-Grep"], "sizes_kb": [16, 64]}]}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var idResp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ack, &idResp); err != nil || idResp.ID == "" {
		t.Fatalf("submit ack %q: %v", ack, err)
	}

	var status JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, _, b := get(t, ts.URL+"/v1/jobs/"+idResp.ID)
		if err := json.Unmarshal(b, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == JobDone || status.State == JobFailed || status.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", status.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.State != JobDone {
		t.Fatalf("job finished %s (%s)", status.State, status.Error)
	}

	// The retained record dropped everything (1-byte cap)...
	j, ok := srv.jobs.get(idResp.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	j.mu.Lock()
	retained, dropped := len(j.results), j.resultsDroppd
	j.mu.Unlock()
	if retained != 0 || !dropped {
		t.Fatalf("cap not exercised: %d retained, dropped=%v", retained, dropped)
	}

	// ...yet the API response recovered both renders from the store.
	if status.ResultsTruncated {
		t.Fatalf("results truncated despite store recovery: %v", keysOf(status.Results))
	}
	if len(status.Results) != 2 {
		t.Fatalf("want 2 recovered results, got %d: %v", len(status.Results), keysOf(status.Results))
	}
	code, _, unitBytes := get(t, ts.URL+"/v1/units/table2")
	if code != http.StatusOK {
		t.Fatalf("unit fetch: %d", code)
	}
	if status.Results["table2"] != string(unitBytes) {
		t.Fatal("recovered unit result differs from /v1/units/table2")
	}
	if len(status.Results["scenario:capped"]) == 0 {
		t.Fatal("recovered scenario result empty")
	}
}
