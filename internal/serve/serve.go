// Package serve implements reprod, the on-demand experiment-serving
// daemon: paper units and ad-hoc scenario specs answered over HTTP out
// of the content-keyed artifact store, computed at most once no matter
// how many clients ask — per process, or per fleet.
//
// The serving core is four mechanisms layered on the existing
// pipeline:
//
//   - Warm fast path: every request canonicalizes to an artifact key
//     (experiments.UnitRenderKey / experiments.ScenarioKey) and is
//     first answered by artifact.Peek — a warm request is pure store
//     I/O, no session, no engine, no simulation, no render.
//   - Request coalescing: cold requests for the same key share one
//     flight (flightGroup); N concurrent requests for a cold figure
//     run exactly one computation. Flights execute on a bounded
//     conc.Pool, and a flight abandoned by every waiter is cancelled —
//     client disconnects propagate down to the emitters and stop
//     simulation within a few thousand instructions.
//   - Fleet routing: replicas configured with Self/Peers rendezvous-
//     hash every key to one home replica and forward cold requests
//     there (see fleet.go), so coalescing holds across the whole
//     fleet: N replicas × M clients asking for one cold key still run
//     exactly one computation.
//   - Async jobs: POST /v1/jobs accepts unit/scenario batches, returns
//     an id immediately, and GET /v1/jobs/{id} reports state plus
//     per-unit timing and inline results. Jobs fill the same store, so
//     finished work is fetched warm through the synchronous endpoints.
//
// The HTTP surface is versioned under /v1 with a uniform JSON error
// envelope; legacy unversioned paths 308-redirect (see api.go for the
// wire schema). Shutdown (SIGTERM in cmd/reprod) drains: in-flight
// requests and running jobs complete, queued jobs are cancelled, new
// submissions are refused 503.
package serve

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/conc"
	"repro/internal/eventbus"
	"repro/internal/experiments"
	"repro/internal/retry"
)

// Scenario re-exports the declarative request spec.
type Scenario = experiments.Scenario

// Config sizes a server.
type Config struct {
	// Opt is the experiment options every computation runs at; it is
	// part of every artifact identity, so one daemon serves one
	// fidelity (run a second daemon for -quick output).
	Opt experiments.Options
	// Store backs every computation. nil gets a private in-memory
	// store — still shared across all of this server's requests.
	Store *artifact.Store
	// Engine selects the sweep engine every computation uses
	// (experiments.ParseSweepEngine; "" = stackdist). Engines are
	// byte-identical, so served artefacts — and their keys — do not
	// depend on this; only the cost profile does.
	Engine experiments.SweepEngine
	// Parallelism bounds the workers inside one computation
	// (experiments.Session.Parallelism; 0 = GOMAXPROCS).
	Parallelism int
	// BlockSize is the trace-replay batch size (plumbing only).
	BlockSize int
	// Workers bounds concurrently executing computations — flights and
	// jobs together (0 = GOMAXPROCS; the pool floors at 2).
	Workers int
	// MemQuota bounds the store's in-process memory tier (resident
	// bytes, idle age, per-kind budgets — see artifact.ParseQuotaSpec).
	// The zero value leaves the store unbounded; a long-lived daemon
	// accumulating distinct ad-hoc scenario renders should always set
	// it. Applied to Store (or the private store) at construction.
	MemQuota artifact.MemQuota
	// Self is this replica's advertised base URL (how peers reach it,
	// e.g. "http://10.0.0.3:9555"). Empty disables fleet mode.
	Self string
	// Peers lists every replica's advertised base URL (Self may but
	// need not be repeated). With two or more distinct members, every
	// artefact key is rendezvous-hashed to one home replica and cold
	// requests are forwarded there — fleet-wide coalescing.
	Peers []string
	// PeerFailLimit is the consecutive transport failures that trip a
	// peer's circuit breaker (0 = retry.DefaultFailLimit). While open,
	// that peer's keys are rerouted over the healthy members instead of
	// paying a dial timeout per request.
	PeerFailLimit int
	// PeerCooldown is how long a tripped peer breaker stays open before
	// one request is let through as a half-open probe
	// (0 = retry.DefaultCooldown).
	PeerCooldown time.Duration
	// MaxJobResultBytes caps the rendered bytes one job retains inline
	// (0 = 1 MB). Results past the cap are dropped from the retained
	// record but recovered from the store at GET time when still
	// resident (see jobStatus).
	MaxJobResultBytes int
	// EventBuffer sizes each SSE subscriber's event ring
	// (0 = eventbus.DefaultBuffer). A subscriber that falls behind
	// sheds its oldest buffered events — the stream carries a `lag`
	// event when that happens — and never slows a publisher.
	EventBuffer int
}

// Server is the reprod serving core, usable behind any http.Server
// (cmd/reprod) or httptest (the tests). Construct with New.
type Server struct {
	cfg       Config
	store     *artifact.Store
	pool      *conc.Pool
	flights   *flightGroup
	jobs      *jobSet
	fleet     *fleet
	resultCap int

	// bus is the live observability fan-out (GET /v1/events). The topic
	// publishers are pre-bound handles the hot paths gate on — an idle
	// bus costs one atomic load per instrumentation site.
	bus          *eventbus.Bus
	engineEvents *eventbus.Publisher
	flightEvents *eventbus.Publisher
	fleetEvents  *eventbus.Publisher

	draining atomic.Bool

	unitReqs, scenarioReqs            atomic.Int64
	warmHits, coalesced, computes     atomic.Int64
	abandoned                         atomic.Int64
	jobsSubmitted, jobsDone           atomic.Int64
	jobsFailed, jobsCanceled          atomic.Int64
	tracePasses, profileRuns, renders atomic.Int64
	stackPasses, replayPasses         atomic.Int64
	proxied, proxyFallback            atomic.Int64
	peerServed, loopGuarded           atomic.Int64
	rerouted, proxyRetries            atomic.Int64
}

// New returns a serving core over cfg. The only error is an invalid
// fleet configuration (peers without a self URL, non-absolute member
// URLs).
func New(cfg Config) (*Server, error) {
	fl, err := newFleet(cfg.Self, cfg.Peers, cfg.PeerFailLimit, cfg.PeerCooldown)
	if err != nil {
		return nil, err
	}
	st := cfg.Store
	if st == nil {
		st = artifact.New()
	}
	if cfg.MemQuota.Enabled() {
		st.SetMemQuota(cfg.MemQuota)
	}
	cap := cfg.MaxJobResultBytes
	if cap <= 0 {
		cap = defaultJobResultBytes
	}
	bus := eventbus.New()
	srv := &Server{
		cfg:          cfg,
		store:        st,
		pool:         conc.NewPool(cfg.Workers),
		jobs:         newJobSet(),
		fleet:        fl,
		resultCap:    cap,
		bus:          bus,
		engineEvents: bus.Topic("engine"),
		flightEvents: bus.Topic("flight"),
		fleetEvents:  bus.Topic("fleet"),
	}
	srv.flights = newFlightGroup(srv.flightEvents)
	// The store publishes fill/hit/eviction/degraded transitions onto
	// this server's bus. A store shared between servers reports to the
	// last one constructed.
	st.SetEvents(bus.Topic("store"))
	if fl != nil {
		for peer, br := range fl.health {
			br.OnChange = srv.breakerEvent(peer)
		}
	}
	return srv, nil
}

// breakerEvent builds the per-peer breaker transition hook: every
// state change lands on the fleet topic as breaker_trip (→ open),
// breaker_probe (→ half-open) or breaker_recover (→ closed).
func (s *Server) breakerEvent(peer string) func(from, to retry.State) {
	return func(from, to retry.State) {
		if !s.fleetEvents.Active() {
			return
		}
		typ := "breaker_trip"
		switch to {
		case retry.HalfOpen:
			typ = "breaker_probe"
		case retry.Closed:
			typ = "breaker_recover"
		}
		s.fleetEvents.Event(typ, map[string]any{"peer": peer, "from": from.String(), "to": to.String()})
	}
}

// eventBuf is the per-subscriber ring capacity for SSE streams.
func (s *Server) eventBuf() int {
	if s.cfg.EventBuffer > 0 {
		return s.cfg.EventBuffer
	}
	return eventbus.DefaultBuffer
}

// Bus returns the server's event bus (tests subscribe directly).
func (s *Server) Bus() *eventbus.Bus { return s.bus }

// Store returns the store behind every computation.
func (s *Server) Store() *artifact.Store { return s.store }

// session builds one computation's session: private probes, shared
// store, the request's context.
func (s *Server) session(ctx context.Context) *experiments.Session {
	sess := experiments.NewSession(s.cfg.Opt)
	sess.Engine = s.cfg.Engine
	sess.Parallelism = s.cfg.Parallelism
	sess.BlockSize = s.cfg.BlockSize
	sess.Store = s.store
	sess.Ctx = ctx
	return sess
}

// absorb folds a finished session's probes into the server totals —
// the counters CI reads to prove "32 concurrent cold requests computed
// once" and "warm requests simulate nothing".
func (s *Server) absorb(sess *experiments.Session) {
	s.tracePasses.Add(sess.TracePasses())
	s.stackPasses.Add(sess.StackDistPasses())
	s.replayPasses.Add(sess.ReplayPasses())
	s.profileRuns.Add(sess.ProfileRuns())
	s.renders.Add(sess.Renders())
}

// compute runs fn on the bounded worker pool under the flight context.
// Queued work re-checks the context so an abandoned flight never
// occupies a worker. The computes counter counts sessions that
// actually rendered something: a flight whose artefact turns out to be
// warm by the time it executes (a proxy-fallback straggler racing a
// rerouted wave, say) only copies bytes out of the store — counting it
// would make the coalescing gates lie under fault-injected timing.
func (s *Server) compute(ctx context.Context, keyID string, fn func(sess *experiments.Session) ([]byte, error)) ([]byte, error) {
	var out []byte
	err := ctx.Err()
	if err != nil {
		return nil, err
	}
	s.pool.ForEach(1, func(int) {
		if err = ctx.Err(); err != nil {
			return // cancelled while queued for a worker
		}
		if s.flightEvents.Active() {
			s.flightEvents.Event("compute_start", map[string]any{"key": keyID})
		}
		start := time.Now()
		sess := s.session(ctx)
		out, err = fn(sess)
		if sess.Renders() > 0 {
			s.computes.Add(1)
		}
		s.absorb(sess)
		if s.flightEvents.Active() {
			s.flightEvents.Event("compute_finish", map[string]any{
				"key": keyID, "ms": float64(time.Since(start).Microseconds()) / 1000, "ok": err == nil,
			})
		}
	})
	return out, err
}

// validUnit reports whether name is a selectable paper unit.
func validUnit(name string) bool {
	for _, u := range experiments.VisibleUnitNames() {
		if u == name {
			return true
		}
	}
	return false
}

// renderUnit runs the one-unit engine (primers included) and extracts
// the unit's rendered bytes.
func (s *Server) renderUnit(ctx context.Context, sess *experiments.Session, unit string, events experiments.EventSink) ([]byte, error) {
	e := &experiments.Engine{Session: sess, Parallelism: s.cfg.Parallelism, Select: []string{unit}, Events: events}
	results, err := e.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Unit.Name != unit {
			continue
		}
		if r.Err != nil {
			return nil, r.Err
		}
		if r.Artifact == nil {
			return nil, fmt.Errorf("unit %s produced no artifact", unit)
		}
		var buf strings.Builder
		r.Artifact.Render(&buf)
		return []byte(buf.String()), nil
	}
	return nil, fmt.Errorf("unit %s missing from engine results", unit)
}

// runJob executes one job on the pool worker that picked it up.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.ctx.Err() != nil {
		j.state = JobCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		s.jobsCanceled.Add(1)
		s.emitJob(j, "canceled", map[string]any{"error": "canceled while queued"})
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.emitJob(j, "started", nil)

	sess := s.session(j.ctx)
	s.computes.Add(1)
	var timings []UnitTiming
	var firstErr error

	// Rendered results are retained inline (bounded by the job-result
	// cap) so GET /v1/jobs/{id} can hand them back even after the
	// store evicts the artefacts — and at all for ad-hoc scenarios,
	// which have no /v1/units retrieval path. Each result's store key
	// is recorded alongside, so a render the cap dropped can still be
	// recovered from the store at GET time.
	results := map[string]string{}
	keys := map[string]artifact.Key{}
	resultBytes := 0
	truncated := false
	keep := func(name string, key artifact.Key, b []byte) {
		keys[name] = key
		if resultBytes+len(b) > s.resultCap {
			truncated = true
			return
		}
		resultBytes += len(b)
		results[name] = string(b)
	}

	if len(j.req.Units) > 0 {
		e := &experiments.Engine{Session: sess, Parallelism: s.cfg.Parallelism, Select: j.req.Units, Events: jobSink{s, j}}
		runResults, err := e.RunContext(j.ctx)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, r := range runResults {
			status := "ok"
			switch {
			case r.Err != nil:
				status = "error: " + r.Err.Error()
				if firstErr == nil {
					firstErr = r.Err
				}
			case r.Unit.Hidden:
				status = "primer"
			}
			if r.Err == nil && !r.Unit.Hidden && r.Artifact != nil {
				var buf strings.Builder
				r.Artifact.Render(&buf)
				keep(r.Unit.Name, experiments.UnitRenderKey(s.cfg.Opt, r.Unit.Name), []byte(buf.String()))
			}
			timings = append(timings, UnitTiming{
				Unit: r.Unit.Name, Ms: float64(r.Elapsed.Microseconds()) / 1000, Status: status,
			})
		}
	}
	for i, spec := range j.req.Scenarios {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("scenario-%d", i+1)
		}
		s.emitJob(j, "scenario_start", map[string]any{"scenario": name})
		start := time.Now()
		b, err := experiments.RunScenario(sess, spec)
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		s.emitJob(j, "scenario_finish", map[string]any{
			"scenario": name, "ms": float64(time.Since(start).Microseconds()) / 1000, "status": status,
		})
		if err == nil {
			// Canonical succeeded at submit time and is deterministic,
			// so it cannot fail here.
			canon, _ := spec.Canonical(s.cfg.Opt)
			keep("scenario:"+name, experiments.ScenarioKey(canon), b)
		}
		timings = append(timings, UnitTiming{
			Unit: "scenario:" + name, Ms: float64(time.Since(start).Microseconds()) / 1000, Status: status,
		})
	}
	s.absorb(sess)

	j.mu.Lock()
	j.timings = timings
	j.results = results
	j.resultKeys = keys
	j.resultsDroppd = truncated
	j.finished = time.Now()
	terminal := "done"
	var data map[string]any
	switch {
	case j.ctx.Err() != nil:
		j.state = JobCanceled
		j.errMsg = j.ctx.Err().Error()
		s.jobsCanceled.Add(1)
		terminal, data = "canceled", map[string]any{"error": j.errMsg}
	case firstErr != nil:
		j.state = JobFailed
		j.errMsg = firstErr.Error()
		s.jobsFailed.Add(1)
		terminal, data = "failed", map[string]any{"error": j.errMsg}
	default:
		j.state = JobDone
		s.jobsDone.Add(1)
	}
	j.mu.Unlock()
	s.emitJob(j, terminal, data)
}

// jobStatus returns j's status, recovering inline results the cap
// dropped: any result absent from the retained record whose rendered
// bytes are still available to the store (memory tier or backend) is
// re-inlined into this response — transiently, never re-retained, so
// the per-job memory bound holds.
//
// A result gone from the store too (evicted from a memory-only store)
// is recomputed for a successfully finished job: every job render is a
// deterministic function of its recorded spec, so the recomputation —
// run through the flight group under the caller's context, coalesced
// with any concurrent request for the same key — reproduces the bytes
// exactly and refills the store for the next poll. ResultsTruncated
// stays set only for results this response could not recover (a failed
// or canceled job's missing renders, or a recompute cut short by ctx).
func (s *Server) jobStatus(ctx context.Context, j *job) JobStatus {
	st := j.status()
	if !st.ResultsTruncated {
		return st
	}
	j.mu.Lock()
	keys := make(map[string]artifact.Key, len(j.resultKeys))
	for name, k := range j.resultKeys {
		keys[name] = k
	}
	j.mu.Unlock()
	missing := false
	for name, key := range keys {
		if _, ok := st.Results[name]; ok {
			continue
		}
		b, ok := artifact.Peek[[]byte](s.store, key, nil)
		if !ok && st.State == JobDone {
			b, ok = s.recomputeResult(ctx, j, name, key)
		}
		if ok {
			if st.Results == nil {
				st.Results = map[string]string{}
			}
			st.Results[name] = string(b)
		} else {
			missing = true
		}
	}
	st.ResultsTruncated = missing
	return st
}

// recomputeResult re-renders one dropped job result from its recorded
// spec: a paper unit by name, or a scenario looked up in the job's
// submitted specs. Runs through the flight group so concurrent polls
// (and synchronous requests for the same key) share one computation.
func (s *Server) recomputeResult(ctx context.Context, j *job, name string, key artifact.Key) ([]byte, bool) {
	run := func(fctx context.Context) ([]byte, error) { return nil, fmt.Errorf("unresolvable result %q", name) }
	if scen, ok := strings.CutPrefix(name, "scenario:"); ok {
		spec, found := j.scenarioSpec(scen)
		if !found {
			return nil, false
		}
		canon, err := spec.Canonical(s.cfg.Opt)
		if err != nil {
			return nil, false
		}
		run = func(fctx context.Context) ([]byte, error) {
			return s.compute(fctx, key.ID(), func(sess *experiments.Session) ([]byte, error) {
				return experiments.RunScenario(sess, canon)
			})
		}
	} else if validUnit(name) {
		run = func(fctx context.Context) ([]byte, error) {
			return s.compute(fctx, key.ID(), func(sess *experiments.Session) ([]byte, error) {
				return s.renderUnit(fctx, sess, name, s.engineEvents)
			})
		}
	} else {
		return nil, false
	}
	b, _, err := s.flights.do(ctx, key.ID(), run)
	return b, err == nil && b != nil
}

// BeginShutdown starts a drain: new jobs are refused, queued jobs are
// cancelled, running jobs and in-flight requests continue. Call before
// http.Server.Shutdown.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
	s.jobs.cancelQueued()
}

// Drain blocks until every accepted job has finished (or ctx expires).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a snapshot of the serving counters.
type Stats struct {
	UnitRequests, ScenarioRequests int64
	WarmHits, Coalesced, Computes  int64
	Abandoned                      int64
	InFlight                       int64
	JobsSubmitted, JobsDone        int64
	JobsFailed, JobsCanceled       int64
	TracePasses, ProfileRuns       int64
	StackDistPasses, ReplayPasses  int64
	Renders                        int64
	// Fleet counters: requests this replica forwarded to a key's home
	// (Proxied), forwards that failed over to local compute
	// (ProxyFallback), requests received from a peer (PeerServed), and
	// peer-forwarded requests this replica would itself have routed
	// elsewhere — membership disagreement absorbed by the loop guard
	// (LoopGuarded). FleetSize is 0 when fleet mode is off.
	Proxied, ProxyFallback  int64
	PeerServed, LoopGuarded int64
	FleetSize               int
	// Peer-health counters: requests routed around a tripped owner
	// (Rerouted), extra proxy attempts beyond each forward's first
	// (ProxyRetries), peers currently sidelined — breaker not closed
	// (PeerUnhealthy) — plus the summed breaker lifecycle counters and
	// every peer's current breaker state keyed by its advertised URL.
	Rerouted, ProxyRetries                         int64
	PeerUnhealthy                                  int64
	BreakerTrips, BreakerProbes, BreakerRecoveries int64
	PeerStates                                     map[string]string
	// Store health: whether the persistence backend is degraded (this
	// replica serves memory hits and computes locally, buffering
	// nothing) and the backend's retry/skip counters.
	StoreDegraded              bool
	StoreRetries, StoreSkipped int64
	// Event-bus counters: events materialized on the bus, events shed
	// from slow subscribers' rings, and currently attached subscribers.
	EventsPublished, EventsDropped int64
	EventSubscribers               int64
}

// Healthy reports readiness: not draining and the store backend not
// degraded. Liveness is /healthz; this feeds /readyz.
func (s *Server) Healthy() (ready bool, reason string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.store.Health().Degraded {
		return false, "degraded"
	}
	return true, "ready"
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	states, unhealthy, bc := s.fleet.healthSnapshot()
	sh := s.store.Health()
	bs := s.bus.Stats()
	return Stats{
		UnitRequests: s.unitReqs.Load(), ScenarioRequests: s.scenarioReqs.Load(),
		WarmHits: s.warmHits.Load(), Coalesced: s.coalesced.Load(), Computes: s.computes.Load(),
		Abandoned: s.abandoned.Load(), InFlight: int64(s.flights.inFlight()),
		JobsSubmitted: s.jobsSubmitted.Load(), JobsDone: s.jobsDone.Load(),
		JobsFailed: s.jobsFailed.Load(), JobsCanceled: s.jobsCanceled.Load(),
		TracePasses: s.tracePasses.Load(), ProfileRuns: s.profileRuns.Load(),
		StackDistPasses: s.stackPasses.Load(), ReplayPasses: s.replayPasses.Load(),
		Renders: s.renders.Load(),
		Proxied: s.proxied.Load(), ProxyFallback: s.proxyFallback.Load(),
		PeerServed: s.peerServed.Load(), LoopGuarded: s.loopGuarded.Load(),
		FleetSize: s.fleet.size(),
		Rerouted:  s.rerouted.Load(), ProxyRetries: s.proxyRetries.Load(),
		PeerUnhealthy: unhealthy,
		BreakerTrips:  bc.Trips, BreakerProbes: bc.Probes, BreakerRecoveries: bc.Recoveries,
		PeerStates:    states,
		StoreDegraded: sh.Degraded,
		StoreRetries:  sh.Retries, StoreSkipped: sh.Skipped,
		EventsPublished: bs.Published, EventsDropped: bs.Dropped,
		EventSubscribers: bs.Subscribers,
	}
}
