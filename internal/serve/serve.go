// Package serve implements reprod, the on-demand experiment-serving
// daemon: paper units and ad-hoc scenario specs answered over HTTP out
// of the content-keyed artifact store, computed at most once no matter
// how many clients ask.
//
// The serving core is three mechanisms layered on the existing
// pipeline:
//
//   - Warm fast path: every request canonicalizes to an artifact key
//     (experiments.UnitRenderKey / experiments.ScenarioKey) and is
//     first answered by artifact.Peek — a warm request is pure store
//     I/O, no session, no engine, no simulation, no render.
//   - Request coalescing: cold requests for the same key share one
//     flight (flightGroup); N concurrent requests for a cold figure
//     run exactly one computation. Flights execute on a bounded
//     conc.Pool, and a flight abandoned by every waiter is cancelled —
//     client disconnects propagate down to the emitters and stop
//     simulation within a few thousand instructions.
//   - Async jobs: POST /jobs accepts unit/scenario batches, returns an
//     id immediately, and GET /jobs/{id} reports state plus per-unit
//     timing. Jobs fill the same store, so finished work is fetched
//     warm through the synchronous endpoints.
//
// Endpoints:
//
//	GET    /units/{unit}   one paper unit, rendered text (fig6, table2, ...)
//	POST   /scenarios      ad-hoc scenario spec (JSON body) → rendered text
//	POST   /jobs           {"units": [...], "scenarios": [...]} → {"id": ...}
//	GET    /jobs           every job's status, newest first
//	GET    /jobs/{id}      state, timings, error
//	DELETE /jobs/{id}      cancel (queued or running)
//	GET    /stats          counters as JSON
//	GET    /metrics        the same counters in Prometheus text format
//	GET    /healthz        liveness probe, "ok"
//
// Shutdown (SIGTERM in cmd/reprod) drains: in-flight requests and
// running jobs complete, queued jobs are cancelled, new submissions
// are refused 503.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/conc"
	"repro/internal/datagen"
	"repro/internal/experiments"
)

// Scenario re-exports the declarative request spec.
type Scenario = experiments.Scenario

// Config sizes a server.
type Config struct {
	// Opt is the experiment options every computation runs at; it is
	// part of every artifact identity, so one daemon serves one
	// fidelity (run a second daemon for -quick output).
	Opt experiments.Options
	// Store backs every computation. nil gets a private in-memory
	// store — still shared across all of this server's requests.
	Store *artifact.Store
	// Engine selects the sweep engine every computation uses
	// (experiments.ParseSweepEngine; "" = stackdist). Engines are
	// byte-identical, so served artefacts — and their keys — do not
	// depend on this; only the cost profile does.
	Engine experiments.SweepEngine
	// Parallelism bounds the workers inside one computation
	// (experiments.Session.Parallelism; 0 = GOMAXPROCS).
	Parallelism int
	// BlockSize is the trace-replay batch size (plumbing only).
	BlockSize int
	// Workers bounds concurrently executing computations — flights and
	// jobs together (0 = GOMAXPROCS; the pool floors at 2).
	Workers int
	// MemQuota bounds the store's in-process memory tier (resident
	// bytes, idle age, per-kind budgets — see artifact.ParseQuotaSpec).
	// The zero value leaves the store unbounded; a long-lived daemon
	// accumulating distinct ad-hoc scenario renders should always set
	// it. Applied to Store (or the private store) at construction.
	MemQuota artifact.MemQuota
}

// Server is the reprod serving core, usable behind any http.Server
// (cmd/reprod) or httptest (the tests). Construct with New.
type Server struct {
	cfg     Config
	store   *artifact.Store
	pool    *conc.Pool
	flights *flightGroup
	jobs    *jobSet

	draining atomic.Bool

	unitReqs, scenarioReqs            atomic.Int64
	warmHits, coalesced, computes     atomic.Int64
	abandoned                         atomic.Int64
	jobsSubmitted, jobsDone           atomic.Int64
	jobsFailed, jobsCanceled          atomic.Int64
	tracePasses, profileRuns, renders atomic.Int64
	stackPasses, replayPasses         atomic.Int64
}

// New returns a serving core over cfg.
func New(cfg Config) *Server {
	st := cfg.Store
	if st == nil {
		st = artifact.New()
	}
	if cfg.MemQuota.Enabled() {
		st.SetMemQuota(cfg.MemQuota)
	}
	return &Server{
		cfg:     cfg,
		store:   st,
		pool:    conc.NewPool(cfg.Workers),
		flights: newFlightGroup(),
		jobs:    newJobSet(),
	}
}

// Store returns the store behind every computation.
func (s *Server) Store() *artifact.Store { return s.store }

// session builds one computation's session: private probes, shared
// store, the request's context.
func (s *Server) session(ctx context.Context) *experiments.Session {
	sess := experiments.NewSession(s.cfg.Opt)
	sess.Engine = s.cfg.Engine
	sess.Parallelism = s.cfg.Parallelism
	sess.BlockSize = s.cfg.BlockSize
	sess.Store = s.store
	sess.Ctx = ctx
	return sess
}

// absorb folds a finished session's probes into the server totals —
// the counters CI reads to prove "32 concurrent cold requests computed
// once" and "warm requests simulate nothing".
func (s *Server) absorb(sess *experiments.Session) {
	s.tracePasses.Add(sess.TracePasses())
	s.stackPasses.Add(sess.StackDistPasses())
	s.replayPasses.Add(sess.ReplayPasses())
	s.profileRuns.Add(sess.ProfileRuns())
	s.renders.Add(sess.Renders())
}

// compute runs fn on the bounded worker pool under the flight context,
// counting the execution. Queued work re-checks the context so an
// abandoned flight never occupies a worker.
func (s *Server) compute(ctx context.Context, fn func(sess *experiments.Session) ([]byte, error)) ([]byte, error) {
	var out []byte
	err := ctx.Err()
	if err != nil {
		return nil, err
	}
	s.pool.ForEach(1, func(int) {
		if err = ctx.Err(); err != nil {
			return // cancelled while queued for a worker
		}
		s.computes.Add(1)
		sess := s.session(ctx)
		out, err = fn(sess)
		s.absorb(sess)
	})
	return out, err
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/units/", s.handleUnit)
	mux.HandleFunc("/scenarios", s.handleScenario)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// validUnit reports whether name is a selectable paper unit.
func validUnit(name string) bool {
	for _, u := range experiments.VisibleUnitNames() {
		if u == name {
			return true
		}
	}
	return false
}

// respond writes rendered bytes with provenance headers — the id the
// bytes live under in the store, and how this request obtained them
// (warm / computed / coalesced), which the coalescing tests and the CI
// serving job assert on.
func respond(w http.ResponseWriter, keyID, source string, b []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Reprod-Key", keyID)
	w.Header().Set("X-Reprod-Source", source)
	w.Write(b)
}

// handleUnit answers GET /units/{unit}: the rendered unit, served warm
// from the store when possible, computed (coalesced) otherwise —
// byte-identical to what cmd/repro writes for the same unit at the
// same options.
func (s *Server) handleUnit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	unit := strings.ToLower(strings.TrimPrefix(r.URL.Path, "/units/"))
	if !validUnit(unit) {
		http.Error(w, fmt.Sprintf("unknown unit %q (known: %s)",
			unit, strings.Join(experiments.VisibleUnitNames(), " ")), http.StatusNotFound)
		return
	}
	s.unitReqs.Add(1)
	key := experiments.UnitRenderKey(s.cfg.Opt, unit)
	if b, ok := artifact.Peek[[]byte](s.store, key, nil); ok {
		s.warmHits.Add(1)
		respond(w, key.ID(), "warm", b)
		return
	}
	b, joined, err := s.flights.do(r.Context(), key.ID(), func(fctx context.Context) ([]byte, error) {
		return s.compute(fctx, func(sess *experiments.Session) ([]byte, error) {
			return s.renderUnit(fctx, sess, unit)
		})
	})
	s.finish(w, key.ID(), joined, b, err)
}

// renderUnit runs the one-unit engine (primers included) and extracts
// the unit's rendered bytes.
func (s *Server) renderUnit(ctx context.Context, sess *experiments.Session, unit string) ([]byte, error) {
	e := &experiments.Engine{Session: sess, Parallelism: s.cfg.Parallelism, Select: []string{unit}}
	results, err := e.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Unit.Name != unit {
			continue
		}
		if r.Err != nil {
			return nil, r.Err
		}
		if r.Artifact == nil {
			return nil, fmt.Errorf("unit %s produced no artifact", unit)
		}
		var buf strings.Builder
		r.Artifact.Render(&buf)
		return []byte(buf.String()), nil
	}
	return nil, fmt.Errorf("unit %s missing from engine results", unit)
}

// handleScenario answers POST /scenarios: validate and canonicalize
// the spec, then serve it exactly like a unit — warm from the store,
// or computed once under coalescing.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	spec, ok := decodeScenario(w, r)
	if !ok {
		return
	}
	canon, err := spec.Canonical(s.cfg.Opt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.scenarioReqs.Add(1)
	key := experiments.ScenarioKey(canon)
	if b, ok := artifact.Peek[[]byte](s.store, key, nil); ok {
		s.warmHits.Add(1)
		respond(w, key.ID(), "warm", b)
		return
	}
	b, joined, err := s.flights.do(r.Context(), key.ID(), func(fctx context.Context) ([]byte, error) {
		return s.compute(fctx, func(sess *experiments.Session) ([]byte, error) {
			return experiments.RunScenario(sess, canon)
		})
	})
	s.finish(w, key.ID(), joined, b, err)
}

// finish maps a flight outcome onto the response.
func (s *Server) finish(w http.ResponseWriter, keyID string, joined bool, b []byte, err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or every client was): nothing useful
			// to write, but account for the abandonment.
			s.abandoned.Add(1)
			http.Error(w, "request cancelled", statusClientClosedRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	source := "computed"
	if joined {
		source = "coalesced"
		s.coalesced.Add(1)
	}
	respond(w, keyID, source, b)
}

// statusClientClosedRequest is nginx's conventional 499 — the request
// ended because the requester left, not because either side failed.
const statusClientClosedRequest = 499

// decodeScenario parses a scenario body, bounding it like any request
// body.
func decodeScenario(w http.ResponseWriter, r *http.Request) (Scenario, bool) {
	var spec Scenario
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil || json.Unmarshal(body, &spec) != nil {
		http.Error(w, "body is not a JSON scenario spec", http.StatusBadRequest)
		return Scenario{}, false
	}
	return spec, true
}

// handleJobs answers POST /jobs (submit) and GET /jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.jobs.list())
	case http.MethodPost:
		if s.draining.Load() {
			http.Error(w, "server is draining", http.StatusServiceUnavailable)
			return
		}
		var req JobRequest
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || json.Unmarshal(body, &req) != nil {
			http.Error(w, "body is not a JSON job request", http.StatusBadRequest)
			return
		}
		if len(req.Units) == 0 && len(req.Scenarios) == 0 {
			http.Error(w, "job selects no units and no scenarios", http.StatusBadRequest)
			return
		}
		for i, u := range req.Units {
			req.Units[i] = strings.ToLower(u)
			if !validUnit(req.Units[i]) {
				http.Error(w, fmt.Sprintf("unknown unit %q", u), http.StatusBadRequest)
				return
			}
		}
		// Scenarios are validated now (a bad spec fails the submit, not
		// the poll) but canonicalized again at run time; Canonical is
		// deterministic, so the two agree.
		for _, spec := range req.Scenarios {
			if _, err := spec.Canonical(s.cfg.Opt); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		j := s.jobs.add(req)
		s.jobsSubmitted.Add(1)
		go func() {
			defer s.jobs.wg.Done()
			s.pool.ForEach(1, func(int) { s.runJob(j) })
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": j.id})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleJob answers GET /jobs/{id} (status) and DELETE /jobs/{id}
// (cancel).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	j, ok := s.jobs.get(id)
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(j.status())
	case http.MethodDelete:
		j.cancel()
		w.WriteHeader(http.StatusAccepted)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// runJob executes one job on the pool worker that picked it up.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.ctx.Err() != nil {
		j.state = JobCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		s.jobsCanceled.Add(1)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	sess := s.session(j.ctx)
	s.computes.Add(1)
	var timings []UnitTiming
	var firstErr error

	// Rendered results are retained inline (bounded by
	// maxJobResultBytes) so GET /jobs/{id} can hand them back even
	// after the store evicts the artefacts — and at all for ad-hoc
	// scenarios, which have no /units retrieval path.
	results := map[string]string{}
	resultBytes := 0
	truncated := false
	keep := func(name string, b []byte) {
		if resultBytes+len(b) > maxJobResultBytes {
			truncated = true
			return
		}
		resultBytes += len(b)
		results[name] = string(b)
	}

	if len(j.req.Units) > 0 {
		e := &experiments.Engine{Session: sess, Parallelism: s.cfg.Parallelism, Select: j.req.Units}
		runResults, err := e.RunContext(j.ctx)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, r := range runResults {
			status := "ok"
			switch {
			case r.Err != nil:
				status = "error: " + r.Err.Error()
				if firstErr == nil {
					firstErr = r.Err
				}
			case r.Unit.Hidden:
				status = "primer"
			}
			if r.Err == nil && !r.Unit.Hidden && r.Artifact != nil {
				var buf strings.Builder
				r.Artifact.Render(&buf)
				keep(r.Unit.Name, []byte(buf.String()))
			}
			timings = append(timings, UnitTiming{
				Unit: r.Unit.Name, Ms: float64(r.Elapsed.Microseconds()) / 1000, Status: status,
			})
		}
	}
	for i, spec := range j.req.Scenarios {
		start := time.Now()
		b, err := experiments.RunScenario(sess, spec)
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("scenario-%d", i+1)
		}
		if err == nil {
			keep("scenario:"+name, b)
		}
		timings = append(timings, UnitTiming{
			Unit: "scenario:" + name, Ms: float64(time.Since(start).Microseconds()) / 1000, Status: status,
		})
	}
	s.absorb(sess)

	j.mu.Lock()
	j.timings = timings
	j.results = results
	j.resultsDroppd = truncated
	j.finished = time.Now()
	switch {
	case j.ctx.Err() != nil:
		j.state = JobCanceled
		j.errMsg = j.ctx.Err().Error()
		s.jobsCanceled.Add(1)
	case firstErr != nil:
		j.state = JobFailed
		j.errMsg = firstErr.Error()
		s.jobsFailed.Add(1)
	default:
		j.state = JobDone
		s.jobsDone.Add(1)
	}
	j.mu.Unlock()
}

// BeginShutdown starts a drain: new jobs are refused, queued jobs are
// cancelled, running jobs and in-flight requests continue. Call before
// http.Server.Shutdown.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
	s.jobs.cancelQueued()
}

// Drain blocks until every accepted job has finished (or ctx expires).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a snapshot of the serving counters.
type Stats struct {
	UnitRequests, ScenarioRequests int64
	WarmHits, Coalesced, Computes  int64
	Abandoned                      int64
	InFlight                       int64
	JobsSubmitted, JobsDone        int64
	JobsFailed, JobsCanceled       int64
	TracePasses, ProfileRuns       int64
	StackDistPasses, ReplayPasses  int64
	Renders                        int64
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		UnitRequests: s.unitReqs.Load(), ScenarioRequests: s.scenarioReqs.Load(),
		WarmHits: s.warmHits.Load(), Coalesced: s.coalesced.Load(), Computes: s.computes.Load(),
		Abandoned: s.abandoned.Load(), InFlight: int64(s.flights.inFlight()),
		JobsSubmitted: s.jobsSubmitted.Load(), JobsDone: s.jobsDone.Load(),
		JobsFailed: s.jobsFailed.Load(), JobsCanceled: s.jobsCanceled.Load(),
		TracePasses: s.tracePasses.Load(), ProfileRuns: s.profileRuns.Load(),
		StackDistPasses: s.stackPasses.Load(), ReplayPasses: s.replayPasses.Load(),
		Renders: s.renders.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	ss := s.store.Stats()
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{
		"unit_requests": st.UnitRequests, "scenario_requests": st.ScenarioRequests,
		"warm_hits": st.WarmHits, "coalesced": st.Coalesced, "computes": st.Computes,
		"abandoned": st.Abandoned, "in_flight": st.InFlight,
		"jobs_submitted": st.JobsSubmitted, "jobs_done": st.JobsDone,
		"jobs_failed": st.JobsFailed, "jobs_canceled": st.JobsCanceled,
		"trace_passes": st.TracePasses, "profile_runs": st.ProfileRuns,
		"sweep_stackdist_passes": st.StackDistPasses,
		"sweep_replay_passes":    st.ReplayPasses,
		"renders":                st.Renders,
		"dataset_generations":    datagen.Generations(),
		"store_fills":            ss.Fills, "store_mem_hits": ss.MemHits,
		"store_backend_hits": ss.BackendHits, "store_backend_discards": ss.BackendDiscards,
		"store_prefetched":       ss.Prefetched,
		"store_evictions":        ss.Evictions,
		"store_evicted_bytes":    ss.EvictedBytes,
		"store_resident_bytes":   ss.ResidentBytes,
		"store_resident_entries": ss.ResidentEntries,
		"store_mem_hit_ratio":    ss.MemHitRatio(),
		"goroutines":             int64(runtime.NumGoroutine()),
	}
	if len(ss.KindResident) > 0 {
		out["store_kind_resident_bytes"] = ss.KindResident
	}
	if len(ss.KindEvictions) > 0 {
		out["store_kind_evictions"] = ss.KindEvictions
	}
	json.NewEncoder(w).Encode(out)
}

// handleMetrics exposes the counters in the Prometheus text exposition
// format, matching artifactd's conventions (one counter family per
// field, reprod_ prefix).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	ss := s.store.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counters := []struct {
		name, help string
		value      int64
	}{
		{"reprod_unit_requests_total", "Paper-unit requests received.", st.UnitRequests},
		{"reprod_scenario_requests_total", "Scenario requests received.", st.ScenarioRequests},
		{"reprod_warm_hits_total", "Requests answered straight from the store.", st.WarmHits},
		{"reprod_coalesced_total", "Requests that joined an in-flight computation.", st.Coalesced},
		{"reprod_computes_total", "Computations actually executed.", st.Computes},
		{"reprod_abandoned_total", "Requests whose clients left before the answer.", st.Abandoned},
		{"reprod_jobs_submitted_total", "Jobs accepted.", st.JobsSubmitted},
		{"reprod_jobs_done_total", "Jobs finished successfully.", st.JobsDone},
		{"reprod_jobs_failed_total", "Jobs finished with an error.", st.JobsFailed},
		{"reprod_jobs_canceled_total", "Jobs cancelled (client or shutdown).", st.JobsCanceled},
		{"reprod_trace_passes_total", "Sweep trace passes executed.", st.TracePasses},
		{"reprod_sweep_stackdist_passes_total", "Trace passes run by the stack-distance sweep engine.", st.StackDistPasses},
		{"reprod_sweep_replay_passes_total", "Trace passes run by the concrete-cache replay engine.", st.ReplayPasses},
		{"reprod_profile_runs_total", "Profiling runs executed.", st.ProfileRuns},
		{"reprod_renders_total", "Units rendered.", st.Renders},
		{"reprod_store_fills_total", "Store computations executed.", ss.Fills},
		{"reprod_store_backend_hits_total", "Fills satisfied by the persistence backend.", ss.BackendHits},
		{"reprod_store_prefetched_total", "Entries staged by bulk prefetch.", ss.Prefetched},
		{"reprod_store_evictions_total", "Memory-tier residents evicted under quota.", ss.Evictions},
		{"reprod_store_evicted_bytes_total", "Charged bytes evicted by the memory tier.", ss.EvictedBytes},
	}
	for _, m := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
	fmt.Fprintf(w, "# HELP reprod_in_flight Computations currently in flight.\n# TYPE reprod_in_flight gauge\nreprod_in_flight %d\n", st.InFlight)
	fmt.Fprintf(w, "# HELP reprod_store_resident_bytes Charged bytes resident in the store's memory tier.\n# TYPE reprod_store_resident_bytes gauge\nreprod_store_resident_bytes %d\n", ss.ResidentBytes)
	fmt.Fprintf(w, "# HELP reprod_store_resident_entries Residents (entries + staged prefetches) in the memory tier.\n# TYPE reprod_store_resident_entries gauge\nreprod_store_resident_entries %d\n", ss.ResidentEntries)
	fmt.Fprintf(w, "# HELP reprod_store_mem_hit_ratio Fraction of store lookups answered by a resident entry.\n# TYPE reprod_store_mem_hit_ratio gauge\nreprod_store_mem_hit_ratio %g\n", ss.MemHitRatio())
	writeKindFamily(w, "reprod_store_kind_resident_bytes", "Resident memory-tier bytes by artefact kind.", "gauge", ss.KindResident)
	writeKindFamily(w, "reprod_store_kind_evictions_total", "Memory-tier evictions by artefact kind.", "counter", ss.KindEvictions)
}

// writeKindFamily emits one labeled Prometheus family with a
// deterministic (sorted) sample order, skipping empty families.
func writeKindFamily(w io.Writer, name, help, typ string, byKind map[string]int64) {
	if len(byKind) == 0 {
		return
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k := range kinds {
		fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, byKind[k])
	}
}
