package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/experiments"
)

// mustFleet builds a fleet or fails the test.
func mustFleet(t *testing.T, self string, peers []string) *fleet {
	t.Helper()
	f, err := newFleet(self, peers, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatalf("fleet(%s, %v) disabled", self, peers)
	}
	return f
}

// TestRendezvousStability pins HRW's minimal-disruption contract
// exactly: removing a member moves only the keys it owned, adding one
// moves only the keys it wins (~1/N of the space), and every other key
// keeps its owner — the property that keeps a fleet's warm set warm
// through membership changes.
func TestRendezvousStability(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	f4 := mustFleet(t, members[0], members)
	const nKeys = 2000
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("artifact-key-%04d", i)
	}

	// Owners are balanced: no member holds a wildly disproportionate
	// share (expected 500 each; FNV spreads well over this key shape).
	byOwner := map[string]int{}
	for _, k := range keys {
		byOwner[f4.owner(k)] = byOwner[f4.owner(k)] + 1
	}
	for _, m := range members {
		if n := byOwner[m]; n < nKeys/8 || n > nKeys/2 {
			t.Fatalf("member %s owns %d of %d keys (want ~%d)", m, n, nKeys, nKeys/4)
		}
	}

	// Remove d: every key d owned moves, every other key stays put.
	f3 := mustFleet(t, members[0], members[:3])
	for _, k := range keys {
		before, after := f4.owner(k), f3.owner(k)
		if before == "http://d:1" {
			if after == before {
				t.Fatalf("key %s still owned by removed member", k)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, before, after)
		}
	}

	// Add e: keys either keep their owner or move to e — never between
	// incumbents — and roughly 1/5 of the space moves.
	f5 := mustFleet(t, members[0], append(append([]string{}, members...), "http://e:1"))
	moved := 0
	for _, k := range keys {
		before, after := f4.owner(k), f5.owner(k)
		if after == before {
			continue
		}
		if after != "http://e:1" {
			t.Fatalf("key %s moved %s -> %s on an add that should only feed the newcomer", k, before, after)
		}
		moved++
	}
	if moved < nKeys*12/100 || moved > nKeys*28/100 {
		t.Fatalf("adding a 5th member moved %d of %d keys, want ~1/5", moved, nKeys)
	}
}

// TestFleetConfigValidation pins newFleet's error and disable rules.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := newFleet("", []string{"http://b:1"}, 0, 0); err == nil {
		t.Fatal("peers without a self URL accepted")
	}
	if _, err := newFleet("http://a:1", []string{"b:1"}, 0, 0); err == nil {
		t.Fatal("relative member URL accepted")
	}
	if f, err := newFleet("", nil, 0, 0); err != nil || f != nil {
		t.Fatalf("no fleet config: %v %v", f, err)
	}
	// Self-only membership (including repeated spellings) disables
	// fleet mode rather than proxying to itself.
	if f, err := newFleet("http://a:1", []string{"http://a:1/", " http://a:1 "}, 0, 0); err != nil || f != nil {
		t.Fatalf("fleet of one: %v %v", f, err)
	}
	f := mustFleet(t, "http://a:1/", []string{"http://b:1"})
	if f.size() != 2 || f.self != "http://a:1" {
		t.Fatalf("normalized fleet: size %d self %q", f.size(), f.self)
	}
}

// startFleet brings up n replicas sharing one in-process store, each
// knowing every member's URL — the httptest analogue of N reprod
// processes pointed at one artifactd.
func startFleet(t *testing.T, n int, cfg Config) ([]*Server, []*httptest.Server) {
	t.Helper()
	if cfg.Opt == (experiments.Options{}) {
		cfg.Opt = tinyOpt()
	}
	if cfg.Store == nil {
		cfg.Store = artifact.New()
	}
	servers := make([]*Server, n)
	hosts := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range hosts {
		i := i
		// Late binding: the handler closure lets the httptest server
		// allocate its URL before the Server that needs it exists.
		hosts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(hosts[i].Close)
		urls[i] = hosts[i].URL
	}
	for i := range servers {
		c := cfg
		c.Self = urls[i]
		c.Peers = urls
		srv, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	return servers, hosts
}

// fleetIndexes splits a 2-replica fleet by ownership of keyID.
func fleetIndexes(t *testing.T, servers []*Server, keyID string) (ownerIdx, otherIdx int) {
	t.Helper()
	owner := servers[0].fleet.owner(keyID)
	for i, s := range servers {
		if s.fleet.self == owner {
			return i, 1 - i
		}
	}
	t.Fatalf("no replica advertises owner %s", owner)
	return 0, 0
}

// TestFleetProxyColdToOwner pins rule 2 of the routing contract: a
// cold request landing on a non-home replica is forwarded to the key's
// home, computed there, and answered through — with the provenance and
// owner headers intact, and every fleet counter accounting for the hop.
func TestFleetProxyColdToOwner(t *testing.T) {
	servers, hosts := startFleet(t, 2, Config{Parallelism: 2})
	keyID := experiments.UnitRenderKey(tinyOpt(), "fig6").ID()
	ownerIdx, otherIdx := fleetIndexes(t, servers, keyID)

	code, hdr, body := get(t, hosts[otherIdx].URL+"/v1/units/fig6")
	if code != http.StatusOK {
		t.Fatalf("proxied unit: %d: %s", code, body)
	}
	if got := hdr.Get(fleetOwnerHeader); got != servers[ownerIdx].fleet.self {
		t.Fatalf("owner header %q, want %q", got, servers[ownerIdx].fleet.self)
	}
	if src := hdr.Get("X-Reprod-Source"); src != "computed" {
		t.Fatalf("proxied cold source %q, want computed", src)
	}
	if hdr.Get("X-Reprod-Key") == "" {
		t.Fatal("proxied response lost the artifact key header")
	}
	ownerSt, otherSt := servers[ownerIdx].Stats(), servers[otherIdx].Stats()
	if ownerSt.Computes != 1 || otherSt.Computes != 0 {
		t.Fatalf("computes owner=%d other=%d, want 1/0", ownerSt.Computes, otherSt.Computes)
	}
	if otherSt.Proxied != 1 || ownerSt.PeerServed != 1 || ownerSt.LoopGuarded != 0 {
		t.Fatalf("fleet counters: %+v / %+v", ownerSt, otherSt)
	}

	// The shared store makes the same request warm on BOTH replicas
	// now — rule 1: routing never touches a warm request.
	code, hdr, warm := get(t, hosts[otherIdx].URL+"/v1/units/fig6")
	if code != http.StatusOK || hdr.Get("X-Reprod-Source") != "warm" {
		t.Fatalf("re-request: %d source %q", code, hdr.Get("X-Reprod-Source"))
	}
	if hdr.Get(fleetOwnerHeader) != "" {
		t.Fatal("warm request was proxied")
	}
	if !bytes.Equal(body, warm) {
		t.Fatal("warm bytes differ from proxied cold bytes")
	}
	if st := servers[otherIdx].Stats(); st.Proxied != 1 {
		t.Fatalf("warm request proxied again: %+v", st)
	}
}

// TestFleetLoopGuard pins the one-hop rule: a request already carrying
// the hop header is computed locally even by a replica that would
// route it elsewhere — membership disagreement costs one misplaced
// computation, never a forwarding loop.
func TestFleetLoopGuard(t *testing.T) {
	servers, hosts := startFleet(t, 2, Config{Parallelism: 2})
	keyID := experiments.UnitRenderKey(tinyOpt(), "fig7").ID()
	_, otherIdx := fleetIndexes(t, servers, keyID)

	// Hand-deliver a forwarded-looking request to the WRONG replica.
	req, err := http.NewRequest(http.MethodGet, hosts[otherIdx].URL+"/v1/units/fig7", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(fleetHopHeader, "http://some-peer:9555")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loop-guarded request: %d: %s", resp.StatusCode, b)
	}
	if src := resp.Header.Get("X-Reprod-Source"); src != "computed" {
		t.Fatalf("loop-guarded source %q, want computed (locally)", src)
	}
	st := servers[otherIdx].Stats()
	if st.Computes != 1 || st.Proxied != 0 {
		t.Fatalf("loop-guarded request forwarded on: %+v", st)
	}
	if st.PeerServed != 1 || st.LoopGuarded != 1 {
		t.Fatalf("loop-guard counters: peerServed=%d loopGuarded=%d, want 1/1", st.PeerServed, st.LoopGuarded)
	}
}

// TestFleetOwnerDownFallback pins rule 3: an unreachable home replica
// degrades the request to a local computation — availability over
// strict single-compute.
func TestFleetOwnerDownFallback(t *testing.T) {
	// A 2-member fleet whose peer is a dead address (nothing listens on
	// discard); find a scenario the dead member owns.
	const dead = "http://127.0.0.1:9"
	var srv *Server
	host := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(host.Close)
	var err error
	srv, err = New(Config{Opt: tinyOpt(), Parallelism: 2, Self: host.URL, Peers: []string{host.URL, dead}})
	if err != nil {
		t.Fatal(err)
	}

	var spec Scenario
	for i := 0; ; i++ {
		spec = Scenario{Name: fmt.Sprintf("down-%d", i), Workloads: []string{"H-Grep"}, SizesKB: []int{16}}
		canon, err := spec.Canonical(tinyOpt())
		if err != nil {
			t.Fatal(err)
		}
		if srv.fleet.owner(experiments.ScenarioKey(canon).ID()) == dead {
			break
		}
		if i > 100 {
			t.Fatal("no scenario key hashed to the dead peer in 100 tries")
		}
	}
	body := fmt.Sprintf(`{"name": %q, "workloads": ["H-Grep"], "sizes_kb": [16]}`, spec.Name)
	resp, err := http.Post(host.URL+"/v1/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner-down scenario: %d: %s", resp.StatusCode, b)
	}
	st := srv.Stats()
	if st.ProxyFallback != 1 || st.Computes != 1 || st.Proxied != 0 {
		t.Fatalf("fallback counters: %+v", st)
	}
}

// TestFleetCoalescingOneComputeFleetWide is the fleet acceptance
// criterion: 32 concurrent cold requests for ONE scenario key, split
// across a 2-replica fleet sharing a store, run exactly one computation
// fleet-wide — counter-asserted by summing computes over both replicas.
func TestFleetCoalescingOneComputeFleetWide(t *testing.T) {
	servers, hosts := startFleet(t, 2, Config{Parallelism: 2})
	spec := `{"name": "fleetcoal", "workloads": ["H-Grep"], "sizes_kb": [16, 64]}`

	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hosts[i%2].URL+"/v1/scenarios", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	var computes, renders int64
	for _, s := range servers {
		st := s.Stats()
		computes += st.Computes
		renders += st.Renders
	}
	if computes != 1 {
		t.Fatalf("32 cold requests across the fleet ran %d computations, want exactly 1", computes)
	}
	if renders != 1 {
		t.Fatalf("fleet rendered %d times, want exactly 1", renders)
	}
}
