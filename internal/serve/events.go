// The SSE surface over the event bus: GET /v1/events streams the
// global firehose (optionally filtered by ?topics=), and
// GET /v1/jobs/{id}/events streams one job's lifecycle — a bounded
// backlog replayed first, then live events, ending at the terminal
// done/failed/canceled event.
//
// Wire format is standard text/event-stream: every bus event becomes
// one SSE message with `event:` carrying the bus event type, `id:`
// carrying topic/seq, and `data:` the JSON-encoded event. Streams
// interleave `: keepalive` comments while idle, and a subscriber that
// fell behind (drop-oldest ring) receives a synthetic `lag` event
// counting what it missed before the stream continues.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/eventbus"
)

// jobSink adapts a job into an experiments.EventSink: engine events of
// a job land on its job/<id> topic and in its replayable backlog.
// Active is unconditionally true — the backlog must record the
// lifecycle even with no subscriber attached, so a client connecting
// after the job finished still replays the full sequence.
type jobSink struct {
	s *Server
	j *job
}

func (k jobSink) Active() bool                          { return true }
func (k jobSink) Event(typ string, data map[string]any) { k.s.emitJob(k.j, typ, data) }

// jobBacklogCap bounds one job's retained event backlog. Overflow
// sheds the oldest events (counted, surfaced as a lag event at replay
// time) — the same drop-oldest contract as live subscribers.
const jobBacklogCap = 1024

// emitJob materializes one event on the job's topic and appends it to
// the replay backlog. Emission and append happen under the job's event
// lock so backlog order always equals sequence order; Emit (not
// Publish) because the backlog records regardless of subscribers.
func (s *Server) emitJob(j *job, typ string, data map[string]any) {
	j.evMu.Lock()
	ev := s.bus.Emit("job/"+j.id, typ, data)
	if len(j.events) < jobBacklogCap {
		j.events = append(j.events, ev)
	} else {
		copy(j.events, j.events[1:])
		j.events[len(j.events)-1] = ev
		j.eventsDropped++
	}
	j.evMu.Unlock()
}

// terminalJobEvent reports whether typ ends a job's event stream.
func terminalJobEvent(typ string) bool {
	return typ == "done" || typ == "failed" || typ == "canceled"
}

// sseKeepalive is the idle-stream comment interval.
const sseKeepalive = 15 * time.Second

// writeSSEEvent frames one bus event as an SSE message.
func writeSSEEvent(w io.Writer, ev eventbus.Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %s/%d\ndata: %s\n\n", ev.Type, ev.Topic, ev.Seq, b)
	return err
}

// writeSSELag frames a synthetic lag notice: n events were shed
// between the previous message and the next one.
func writeSSELag(w io.Writer, n int64) error {
	_, err := fmt.Fprintf(w, "event: lag\ndata: {\"dropped\":%d}\n\n", n)
	return err
}

// startSSE negotiates the stream: rejects non-GET and non-flushable
// writers, sets the event-stream headers, and returns the flusher.
func startSSE(w http.ResponseWriter, r *http.Request) (http.Flusher, bool) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "event streams are fetched with GET", "")
		return nil, false
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming_unsupported", "response writer cannot stream", "")
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl, true
}

// streamSSE pumps sub to the client until ctx dies, the subscriber
// closes, a write fails (client gone), or — when terminal is non-nil —
// a terminal event has been written. Events with Seq <= dedupBelow are
// skipped: the per-job stream passes the last replayed backlog
// sequence so events living in both the backlog snapshot and the live
// ring are delivered once (valid because that stream has one topic).
func streamSSE(ctx context.Context, w io.Writer, fl http.Flusher, sub *eventbus.Subscriber, dedupBelow uint64, terminal func(eventbus.Event) bool) {
	var lagged uint64
	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	for {
		if d := sub.Dropped(); d > lagged {
			if writeSSELag(w, int64(d-lagged)) != nil {
				return
			}
			lagged = d
		}
		ev, ok := sub.Next()
		if !ok {
			if sub.Closed() {
				return
			}
			fl.Flush()
			select {
			case <-sub.Wait():
			case <-keep.C:
				if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
					return
				}
				fl.Flush()
			case <-ctx.Done():
				return
			}
			continue
		}
		if ev.Seq <= dedupBelow {
			continue
		}
		if writeSSEEvent(w, ev) != nil {
			return
		}
		if terminal != nil && terminal(ev) {
			fl.Flush()
			return
		}
	}
}

// handleEvents answers GET /v1/events: the global firehose, optionally
// filtered to ?topics= (comma-separated names; a trailing * matches a
// prefix, e.g. topics=flight,engine or topics=job/*). The stream runs
// until the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var topics []string
	for _, t := range strings.Split(r.URL.Query().Get("topics"), ",") {
		if t = strings.TrimSpace(t); t != "" {
			topics = append(topics, t)
		}
	}
	fl, ok := startSSE(w, r)
	if !ok {
		return
	}
	sub := s.bus.Subscribe(s.eventBuf(), topics...)
	defer sub.Close()
	streamSSE(r.Context(), w, fl, sub, 0, nil)
}

// handleJobEvents answers GET /v1/jobs/{id}/events: replay the job's
// retained backlog, then go live, ending at the terminal
// done/failed/canceled event. Subscribing before snapshotting the
// backlog closes the gap — an event emitted between the two appears in
// the live ring, and replayed duplicates are dropped by sequence.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := startSSE(w, r)
	if !ok {
		return
	}
	sub := s.bus.Subscribe(s.eventBuf(), "job/"+j.id)
	defer sub.Close()
	backlog, dropped := j.eventSnapshot()
	if dropped > 0 {
		if writeSSELag(w, dropped) != nil {
			return
		}
	}
	var last uint64
	for _, ev := range backlog {
		if writeSSEEvent(w, ev) != nil {
			return
		}
		last = ev.Seq
		if terminalJobEvent(ev.Type) {
			fl.Flush()
			return
		}
	}
	fl.Flush()
	streamSSE(r.Context(), w, fl, sub, last, func(ev eventbus.Event) bool { return terminalJobEvent(ev.Type) })
}
