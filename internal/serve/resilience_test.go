package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/httpstore"
	"repro/internal/experiments"
	"repro/internal/retry"
)

// scenarioOwnedBy searches scenario names until one's key is owned by
// member, returning the request body and the key.
func scenarioOwnedBy(t *testing.T, f *fleet, member, tag string) (string, artifact.Key) {
	t.Helper()
	return scenarioOwnedByOpt(t, f, member, tag, tinyOpt())
}

func scenarioOwnedByOpt(t *testing.T, f *fleet, member, tag string, opt experiments.Options) (string, artifact.Key) {
	t.Helper()
	for i := 0; i < 500; i++ {
		spec := Scenario{Name: fmt.Sprintf("%s-%d", tag, i), Workloads: []string{"H-Grep"}, SizesKB: []int{16}}
		canon, err := spec.Canonical(opt)
		if err != nil {
			t.Fatal(err)
		}
		key := experiments.ScenarioKey(canon)
		if f.owner(key.ID()) == member {
			return fmt.Sprintf(`{"name": %q, "workloads": ["H-Grep"], "sizes_kb": [16]}`, spec.Name), key
		}
	}
	t.Fatalf("no scenario key owned by %s in 500 tries", member)
	return "", artifact.Key{}
}

func postScenario(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestFleetBreakerTripsAndReroutes pins the peer-health contract: a
// dead owner costs PeerFailLimit failed forwards (each falling back to
// local compute), then its breaker trips and further requests for its
// keys are rerouted — re-running rendezvous over the healthy members —
// without dialing it at all.
func TestFleetBreakerTripsAndReroutes(t *testing.T) {
	const dead = "http://127.0.0.1:9"
	var srv *Server
	host := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(host.Close)
	var err error
	srv, err = New(Config{
		Opt: tinyOpt(), Parallelism: 2,
		Self: host.URL, Peers: []string{host.URL, dead},
		PeerFailLimit: 2, PeerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		body, _ := scenarioOwnedBy(t, srv.fleet, dead, fmt.Sprintf("trip-%d", i))
		code, _, b := postScenario(t, host.URL, body)
		if code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, code, b)
		}
	}
	st := srv.Stats()
	if st.ProxyFallback != 2 {
		t.Fatalf("proxy fallbacks %d, want 2 (then the breaker takes over)", st.ProxyFallback)
	}
	if st.Rerouted != 1 {
		t.Fatalf("rerouted %d, want 1 (the post-trip request must not dial)", st.Rerouted)
	}
	if st.Computes != 3 {
		t.Fatalf("computes %d, want 3 (every request answered locally)", st.Computes)
	}
	if st.BreakerTrips != 1 || st.PeerUnhealthy != 1 {
		t.Fatalf("trips=%d unhealthy=%d, want 1/1", st.BreakerTrips, st.PeerUnhealthy)
	}
	if got := st.PeerStates[dead]; got != "open" {
		t.Fatalf("dead peer state %q, want open", got)
	}
}

// TestFleetBreakerHalfOpenRecovery drives the full breaker lifecycle
// through real proxied requests: trip on a down peer, reroute around
// it mid-cooldown even after it heals, then recover it with the single
// half-open probe once the cooldown elapses.
func TestFleetBreakerHalfOpenRecovery(t *testing.T) {
	store := artifact.New()
	var down atomic.Bool
	servers := make([]*Server, 2)
	hosts := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range hosts {
		i := i
		hosts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if i == 1 && down.Load() {
				panic(http.ErrAbortHandler) // the peer is "down": connections reset
			}
			servers[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(hosts[i].Close)
		urls[i] = hosts[i].URL
	}
	for i := range servers {
		srv, err := New(Config{
			Opt: tinyOpt(), Parallelism: 2, Store: store,
			Self: urls[i], Peers: urls,
			PeerFailLimit: 1, PeerCooldown: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	// The gated replica (index 1) plays the flapping owner; drive
	// everything through replica 0 on a fake clock.
	var nowSec atomic.Int64
	nowSec.Store(1_000_000)
	br := servers[0].fleet.health[urls[1]]
	br.Now = func() time.Time { return time.Unix(nowSec.Load(), 0) }

	// 1. Down owner: the forward fails, the request computes locally,
	// the breaker trips at FailLimit 1.
	down.Store(true)
	body, _ := scenarioOwnedBy(t, servers[0].fleet, urls[1], "flap-a")
	if code, _, b := postScenario(t, urls[0], body); code != http.StatusOK {
		t.Fatalf("owner-down request: %d: %s", code, b)
	}
	if st := servers[0].Stats(); st.ProxyFallback != 1 || st.BreakerTrips != 1 {
		t.Fatalf("after down request: %+v", st)
	}

	// 2. Owner heals mid-cooldown: the open breaker still reroutes —
	// no dial, no proxied request.
	down.Store(false)
	body, _ = scenarioOwnedBy(t, servers[0].fleet, urls[1], "flap-b")
	if code, _, b := postScenario(t, urls[0], body); code != http.StatusOK {
		t.Fatalf("mid-cooldown request: %d: %s", code, b)
	}
	st := servers[0].Stats()
	if st.Rerouted != 1 || st.Proxied != 0 {
		t.Fatalf("mid-cooldown: rerouted=%d proxied=%d, want 1/0", st.Rerouted, st.Proxied)
	}
	if st.PeerStates[urls[1]] != "open" {
		t.Fatalf("mid-cooldown state %q, want open", st.PeerStates[urls[1]])
	}

	// 3. Cooldown elapses: the next request is the half-open probe; it
	// succeeds and closes the breaker.
	nowSec.Add(11)
	body, _ = scenarioOwnedBy(t, servers[0].fleet, urls[1], "flap-c")
	if code, _, b := postScenario(t, urls[0], body); code != http.StatusOK {
		t.Fatalf("probe request: %d: %s", code, b)
	}
	st = servers[0].Stats()
	if st.Proxied != 1 {
		t.Fatalf("probe was not proxied: %+v", st)
	}
	if st.BreakerProbes != 1 || st.BreakerRecoveries != 1 {
		t.Fatalf("probes=%d recoveries=%d, want 1/1", st.BreakerProbes, st.BreakerRecoveries)
	}
	if st.PeerUnhealthy != 0 || st.PeerStates[urls[1]] != "closed" {
		t.Fatalf("recovered peer still sidelined: %+v", st)
	}
}

// TestProxyPassesErrorEnvelopesByteIdentical pins the pass-through
// contract: an owner's HTTP response — success or error envelope —
// reaches the client byte-identical, with status and content headers
// intact, and counts for the peer's health (a served error proves the
// peer alive; only transport failures feed the breaker).
func TestProxyPassesErrorEnvelopesByteIdentical(t *testing.T) {
	type canned struct {
		status      int
		contentType string
		body        string
	}
	var mu sync.Mutex
	var current canned
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		c := current
		mu.Unlock()
		w.Header().Set("Content-Type", c.contentType)
		w.Header().Set("X-Reprod-Key", "stub-key")
		w.WriteHeader(c.status)
		fmt.Fprint(w, c.body)
	}))
	t.Cleanup(stub.Close)

	var srv *Server
	host := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(host.Close)
	var err error
	srv, err = New(Config{Opt: tinyOpt(), Parallelism: 2, Self: host.URL, Peers: []string{host.URL, stub.URL}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		resp canned
	}{
		{"compute_failed", canned{
			status:      http.StatusInternalServerError,
			contentType: "application/json",
			body:        `{"error":{"code":"compute_failed","message":"engine exploded","key":"unit-deadbeef"}}` + "\n",
		}},
		{"draining", canned{
			status:      http.StatusServiceUnavailable,
			contentType: "application/json",
			body:        `{"error":{"code":"draining","message":"server is draining; submit to another replica"}}` + "\n",
		}},
		{"ok", canned{
			status:      http.StatusOK,
			contentType: "text/plain; charset=utf-8",
			body:        "rendered unit bytes\n",
		}},
	}
	for i, tc := range cases {
		mu.Lock()
		current = tc.resp
		mu.Unlock()
		body, _ := scenarioOwnedBy(t, srv.fleet, stub.URL, fmt.Sprintf("env-%d", i))
		code, hdr, got := postScenario(t, host.URL, body)
		if code != tc.resp.status {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.resp.status)
		}
		if string(got) != tc.resp.body {
			t.Fatalf("%s: body %q, want byte-identical %q", tc.name, got, tc.resp.body)
		}
		if ct := hdr.Get("Content-Type"); ct != tc.resp.contentType {
			t.Fatalf("%s: content-type %q, want %q", tc.name, ct, tc.resp.contentType)
		}
		if hdr.Get("X-Reprod-Key") != "stub-key" || hdr.Get(fleetOwnerHeader) != stub.URL {
			t.Fatalf("%s: provenance headers lost: %v", tc.name, hdr)
		}
	}
	st := srv.Stats()
	if st.Proxied != int64(len(cases)) || st.ProxyFallback != 0 {
		t.Fatalf("proxied=%d fallback=%d, want %d/0", st.Proxied, st.ProxyFallback, len(cases))
	}
	// Served errors are NOT peer failures: the breaker must stay closed.
	if st.PeerUnhealthy != 0 || st.BreakerTrips != 0 {
		t.Fatalf("error envelopes tripped the breaker: %+v", st)
	}
}

// TestCancellationThroughProxyHop pins last-waiter-leaves fleet-wide:
// a client abandoning a proxied request cancels the flight on the
// OWNER replica (the hop propagates the disconnect), the computation
// unwinds, the artefact is not published — and the abandoned forward
// does not count against the peer's health.
func TestCancellationThroughProxyHop(t *testing.T) {
	// A deliberately slow computation: the disconnect must win the race
	// against compute completion, crossing two HTTP hops on the way.
	slow := experiments.Options{Budget: 20_000_000, SweepBudget: 20_000_000, RosterBudget: 8_000}
	servers, hosts := startFleet(t, 2, Config{Parallelism: 1, Opt: slow})
	body, key := scenarioOwnedByOpt(t, servers[0].fleet, servers[1].fleet.self, "cancel", slow)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hosts[0].URL+"/v1/scenarios", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("abandoned request got a %d response", resp.StatusCode)
		}
		errc <- err
	}()

	// Wait until the flight is running on the OWNER — proof the hop
	// happened — then walk away.
	deadline := time.Now().Add(10 * time.Second)
	for servers[1].flights.inFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if servers[1].flights.inFlight() == 0 {
		t.Fatal("flight never started on the owner replica")
	}
	cancel()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error %v, want context cancellation", err)
	}

	// The owner's flight unwinds and accounts for the abandonment.
	for time.Now().Before(deadline) && servers[1].flights.inFlight() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := servers[1].flights.inFlight(); n != 0 {
		t.Fatalf("%d flights still alive on the owner after abandonment", n)
	}
	for servers[1].Stats().Abandoned == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := servers[1].Stats(); st.Abandoned != 1 {
		t.Fatalf("owner abandoned=%d, want 1", st.Abandoned)
	}
	// Nothing half-computed was published.
	if _, ok := artifact.Peek[[]byte](servers[0].Store(), key, nil); ok {
		t.Fatal("abandoned computation published an artefact")
	}
	// A cancelled forward is the client's doing, not the peer's: the
	// owner's breaker must not have moved.
	if st := servers[0].Stats(); st.PeerUnhealthy != 0 || st.BreakerTrips != 0 {
		t.Fatalf("cancellation fed the peer breaker: %+v", st)
	}
}

// TestReadyzSplitsLivenessFromReadiness pins the probe contract:
// /healthz answers "ok" for a live process no matter what; /readyz
// flips to 503 while draining and while the store backend is degraded.
func TestReadyzSplitsLivenessFromReadiness(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2})
	if code, _, b := get(t, ts.URL+"/readyz"); code != http.StatusOK || string(b) != "ready\n" {
		t.Fatalf("fresh readyz: %d %q", code, b)
	}
	srv.BeginShutdown()
	if code, _, b := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(b) != "draining\n" {
		t.Fatalf("draining readyz: %d %q", code, b)
	}
	if code, _, b := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("draining healthz: %d %q", code, b)
	}
}

func TestReadyzReportsDegradedStore(t *testing.T) {
	// A store whose HTTP backend is a dead address with a hair-trigger
	// breaker: the first cold computation degrades it.
	c, err := httpstore.New("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = retry.Policy{MaxAttempts: 1}
	c.Breaker = &retry.Breaker{FailLimit: 1, Cooldown: time.Hour}
	_, ts := startServer(t, Config{Parallelism: 2, Store: artifact.NewWithBackend(c)})

	if code, _, b := get(t, ts.URL+"/readyz"); code != http.StatusOK || string(b) != "ready\n" {
		t.Fatalf("pre-traffic readyz: %d %q", code, b)
	}
	// The request still succeeds — degraded means local compute, not
	// failure — but readiness flips.
	if code, _, b := get(t, ts.URL+"/v1/units/fig6"); code != http.StatusOK {
		t.Fatalf("degraded unit request: %d: %s", code, b)
	}
	if code, _, b := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(b) != "degraded\n" {
		t.Fatalf("degraded readyz: %d %q", code, b)
	}
	if code, _, b := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("degraded healthz: %d %q", code, b)
	}
}
