package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
)

// sseMsg is one parsed text/event-stream message.
type sseMsg struct {
	typ  string
	id   string
	data string
}

// unit extracts data.unit from the message's JSON payload ("" if absent).
func (m sseMsg) unit() string {
	var ev struct {
		Data map[string]any `json:"data"`
	}
	json.Unmarshal([]byte(m.data), &ev)
	u, _ := ev.Data["unit"].(string)
	return u
}

// seq extracts the per-topic sequence from the id field ("topic/seq").
func (m sseMsg) seq() uint64 {
	i := strings.LastIndex(m.id, "/")
	n, _ := strconv.ParseUint(m.id[i+1:], 10, 64)
	return n
}

func parseSSE(r io.Reader) []sseMsg {
	var out []sseMsg
	var cur sseMsg
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" || cur.data != "" {
				out = append(out, cur)
			}
			cur = sseMsg{}
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if cur.typ != "" || cur.data != "" {
		out = append(out, cur)
	}
	return out
}

// streamSSEInto reads one live SSE response into a channel of messages.
func streamSSEInto(body io.Reader, out chan<- sseMsg) {
	defer close(out)
	var cur sseMsg
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" || cur.data != "" {
				out <- cur
			}
			cur = sseMsg{}
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// openFirehose connects one live SSE subscriber to /v1/events.
func openFirehose(t *testing.T, ctx context.Context, base, query string) <-chan sseMsg {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("firehose status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("firehose Content-Type = %q", ct)
	}
	ch := make(chan sseMsg, 1024)
	go func() {
		defer resp.Body.Close()
		streamSSEInto(resp.Body, ch)
	}()
	return ch
}

// TestFirehoseSSEDuringColdCompute watches the flight/engine topics
// over real SSE while a cold unit computes: the coalescing layer and
// the engine both narrate, with exactly one compute for one flight,
// and the bus gauges land in /v1/stats.
func TestFirehoseSSEDuringColdCompute(t *testing.T) {
	_, ts := startServer(t, Config{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := openFirehose(t, ctx, ts.URL, "?topics=flight,engine")

	if code, _, b := get(t, ts.URL+"/v1/units/table2"); code != http.StatusOK {
		t.Fatalf("cold unit: status %d: %s", code, b)
	}

	seen := map[string]int{}
	deadline := time.After(60 * time.Second)
	for seen["flight_finish"] == 0 || seen["compute_finish"] == 0 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream ended early; saw %v", seen)
			}
			seen[ev.typ]++
		case <-deadline:
			t.Fatalf("timed out waiting for flight_finish+compute_finish; saw %v", seen)
		}
	}
	for _, want := range []string{"flight_start", "compute_start", "unit_scheduled", "unit_start", "unit_finish"} {
		if seen[want] == 0 {
			t.Errorf("no %s event on the firehose; saw %v", want, seen)
		}
	}
	if seen["compute_start"] != 1 {
		t.Errorf("compute_start seen %d times, want exactly 1 for one cold flight", seen["compute_start"])
	}

	_, _, sb := get(t, ts.URL+"/v1/stats")
	var stats map[string]any
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if pub, _ := stats["events_published"].(float64); pub == 0 {
		t.Error("stats events_published == 0 after a narrated compute")
	}
	if subs, _ := stats["subscribers"].(float64); subs < 1 {
		t.Errorf("stats subscribers = %v with a live SSE stream", subs)
	}
	if _, ok := stats["events_dropped"]; !ok {
		t.Error("stats missing events_dropped")
	}
}

// TestJobEventStreamReplaysFullLifecycle is the acceptance sequence:
// GET /v1/jobs/{id}/events on a completed job replays the entire
// lifecycle — queued, started, then scheduled→start→finish for every
// unit of the job (hidden primers included), ending with the terminal
// done event — and the per-topic sequence numbers are strictly
// increasing.
func TestJobEventStreamReplaysFullLifecycle(t *testing.T) {
	_, ts := startServer(t, Config{Parallelism: 2})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"units":["table2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID string }
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("no job id")
	}
	waitJobState(t, ts.URL, sub.ID, JobDone)

	code, hdr, body := get(t, ts.URL+"/v1/jobs/"+sub.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	msgs := parseSSE(strings.NewReader(string(body)))
	if len(msgs) == 0 {
		t.Fatal("no events replayed")
	}
	if msgs[0].typ != "queued" {
		t.Errorf("first event %q, want queued", msgs[0].typ)
	}
	if last := msgs[len(msgs)-1]; last.typ != "done" {
		t.Errorf("last event %q, want terminal done", last.typ)
	}
	pos := func(typ, unit string) int {
		for i, m := range msgs {
			if m.typ == typ && (unit == "" || m.unit() == unit) {
				return i
			}
		}
		return -1
	}
	// table2 pulls in its warm-reps primer: both must narrate the full
	// scheduled → start → finish arc, in order.
	for _, unit := range []string{"warm-reps", "table2"} {
		sched, start, finish := pos("unit_scheduled", unit), pos("unit_start", unit), pos("unit_finish", unit)
		if sched < 0 || start < 0 || finish < 0 {
			t.Fatalf("unit %s: incomplete arc (scheduled=%d start=%d finish=%d)", unit, sched, start, finish)
		}
		if !(pos("started", "") < sched && sched < start && start < finish) {
			t.Errorf("unit %s: out-of-order arc (scheduled=%d start=%d finish=%d)", unit, sched, start, finish)
		}
	}
	var lastSeq uint64
	for _, m := range msgs {
		if s := m.seq(); s <= lastSeq {
			t.Fatalf("sequence not strictly increasing: %d after %d (%s)", s, lastSeq, m.typ)
		} else {
			lastSeq = s
		}
	}
}

func waitJobState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		_, _, b := get(t, base+"/v1/jobs/"+id)
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == JobFailed || st.State == JobCanceled {
			t.Fatalf("job reached %s (want %s): %s", st.State, want, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// Test32SSESubscribersColdCompute is the acceptance load shape: 32
// concurrent SSE subscribers on the full firehose while one cold unit
// computes. The publish path never blocks the engine (the compute
// completes, exactly once), and every subscriber observes the
// compute_finish event.
func Test32SSESubscribersColdCompute(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 32
	streams := make([]<-chan sseMsg, n)
	for i := range streams {
		streams[i] = openFirehose(t, ctx, ts.URL, "")
	}
	// Every handler must be attached before the compute starts, or a
	// late subscriber misses the early events.
	for deadline := time.Now().Add(10 * time.Second); srv.Bus().Stats().Subscribers < n; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers attached", srv.Bus().Stats().Subscribers, n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, _, b := get(t, ts.URL+"/v1/units/table2"); code != http.StatusOK {
		t.Fatalf("cold unit: status %d: %s", code, b)
	}
	if c := srv.Stats().Computes; c != 1 {
		t.Fatalf("computes = %d with 32 subscribers attached, want 1", c)
	}

	for i, ch := range streams {
		deadline := time.After(60 * time.Second)
	drain:
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					t.Fatalf("subscriber %d: stream ended before compute_finish", i)
				}
				if ev.typ == "compute_finish" {
					break drain
				}
			case <-deadline:
				t.Fatalf("subscriber %d never saw compute_finish", i)
			}
		}
	}
}

// TestJobBacklogReplayBoundary pins the bounded-backlog contract: a
// job that outgrows jobBacklogCap sheds its oldest events, the
// snapshot holds exactly the newest cap events, and the SSE replay
// leads with a lag event counting the shed prefix before ending at
// the terminal event.
func TestJobBacklogReplayBoundary(t *testing.T) {
	srv, ts := startServer(t, Config{})
	j := srv.jobs.add(JobRequest{Units: []string{"table1"}})
	defer srv.jobs.wg.Done()
	const extra = 41
	for i := 0; i < jobBacklogCap+extra-1; i++ {
		srv.emitJob(j, "tick", map[string]any{"i": i})
	}
	srv.emitJob(j, "done", nil)

	snapshot, dropped := j.eventSnapshot()
	if len(snapshot) != jobBacklogCap {
		t.Fatalf("backlog holds %d events, want cap %d", len(snapshot), jobBacklogCap)
	}
	if dropped != extra {
		t.Fatalf("backlog dropped %d, want %d", dropped, extra)
	}
	if last := snapshot[len(snapshot)-1]; last.Type != "done" {
		t.Fatalf("newest retained event %q, want the terminal done", last.Type)
	}

	code, _, body := get(t, ts.URL+"/v1/jobs/"+j.id+"/events")
	if code != http.StatusOK {
		t.Fatalf("events status %d", code)
	}
	msgs := parseSSE(strings.NewReader(string(body)))
	if len(msgs) != jobBacklogCap+1 {
		t.Fatalf("replayed %d messages, want %d (lag + retained backlog)", len(msgs), jobBacklogCap+1)
	}
	if msgs[0].typ != "lag" || msgs[0].data != fmt.Sprintf(`{"dropped":%d}`, extra) {
		t.Fatalf("first message = %s %s, want lag {\"dropped\":%d}", msgs[0].typ, msgs[0].data, extra)
	}
	if last := msgs[len(msgs)-1]; last.typ != "done" {
		t.Fatalf("replay ended with %q, want done", last.typ)
	}
	var lastSeq uint64
	for _, m := range msgs[1:] {
		if s := m.seq(); s <= lastSeq {
			t.Fatalf("replay sequence not strictly increasing: %d after %d", s, lastSeq)
		} else {
			lastSeq = s
		}
	}
}

// TestJobStatusRecomputesEvictedResults closes the ROADMAP serving
// gap: a done job's inline result that has been dropped by the result
// cap AND evicted from the store is recomputed at GET time — the
// response carries the full result, byte-identical, and clears
// results_truncated.
func TestJobStatusRecomputesEvictedResults(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2, MaxJobResultBytes: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"units":["table2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID string }
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	waitJobState(t, ts.URL, sub.ID, JobDone)

	// The 1-byte cap dropped the render from the retained record; the
	// store still has it, so the first GET recovers it warm.
	st := waitJobState(t, ts.URL, sub.ID, JobDone)
	want, ok := st.Results["table2"]
	if !ok || want == "" || st.ResultsTruncated {
		t.Fatalf("store-backed recovery failed: truncated=%v results=%v", st.ResultsTruncated, st.Results)
	}

	// Evict everything: a tiny quota clears the memory tier, and there
	// is no persistence backend — the render is now gone from both the
	// record and the store. jobStatus must recompute it.
	srv.Store().SetMemQuota(artifact.MemQuota{MaxBytes: 1})
	_, _, b := get(t, ts.URL+"/v1/jobs/"+sub.ID)
	var st2 JobStatus
	if err := json.Unmarshal(b, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ResultsTruncated {
		t.Fatal("results_truncated still set after recompute")
	}
	if got := st2.Results["table2"]; got != want {
		t.Fatalf("recomputed result differs from original (%d vs %d bytes)", len(got), len(want))
	}
}
