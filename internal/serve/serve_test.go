package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
)

// tinyOpt keeps serving tests fast; identity and coalescing hold at
// any budget.
func tinyOpt() experiments.Options {
	return experiments.Options{Budget: 25_000, SweepBudget: 15_000, RosterBudget: 8_000}
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Opt == (experiments.Options{}) {
		cfg.Opt = tinyOpt()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestCoalescing32ConcurrentColdRequests is the tentpole proof: 32
// concurrent requests for one cold figure run exactly one computation
// (one render, one flight execution), return identical bytes, and the
// warm re-request afterwards recomputes nothing at all.
func TestCoalescing32ConcurrentColdRequests(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2})

	const n = 32
	bodies := make([][]byte, n)
	sources := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, b := get(t, ts.URL+"/v1/units/fig6")
			if code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, code, b)
				return
			}
			bodies[i] = b
			sources[i] = hdr.Get("X-Reprod-Source")
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	st := srv.Stats()
	if st.Computes != 1 {
		t.Fatalf("32 cold requests ran %d computations, want exactly 1", st.Computes)
	}
	if st.Renders != 1 {
		t.Fatalf("32 cold requests rendered %d times, want exactly 1", st.Renders)
	}
	coldPasses := st.TracePasses
	if coldPasses == 0 {
		t.Fatal("cold figure traced nothing")
	}
	computed := 0
	for _, s := range sources {
		if s == "computed" {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d requests claim to have computed; want 1 (rest coalesced/warm)", computed)
	}

	// Warm re-request: zero simulation, zero renders, straight store I/O.
	code, hdr, b := get(t, ts.URL+"/v1/units/fig6")
	if code != http.StatusOK || hdr.Get("X-Reprod-Source") != "warm" {
		t.Fatalf("warm request: status %d source %q", code, hdr.Get("X-Reprod-Source"))
	}
	if !bytes.Equal(b, bodies[0]) {
		t.Fatal("warm bytes differ from cold")
	}
	st = srv.Stats()
	if st.Computes != 1 || st.Renders != 1 || st.TracePasses != coldPasses {
		t.Fatalf("warm request recomputed: %+v", st)
	}
}

// TestUnitBytesMatchEngine pins the byte-identity criterion: a unit
// served over HTTP equals the same unit rendered by the engine (the
// path cmd/repro writes files through) at the same options.
func TestUnitBytesMatchEngine(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, _, served := get(t, ts.URL+"/v1/units/table2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, served)
	}

	sess := experiments.NewSession(tinyOpt())
	e := &experiments.Engine{Session: sess, Select: []string{"table2"}}
	results, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range results {
		if r.Unit.Name == "table2" {
			r.Artifact.Render(&want)
		}
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served unit differs from engine rendering:\nserved %d bytes, engine %d bytes",
			len(served), want.Len())
	}
}

// TestScenarioEndpoint pins the scenario round trip: cold compute,
// equivalent-spec warm hit, byte identity with the library path, and
// validation errors as 400s.
func TestScenarioEndpoint(t *testing.T) {
	srv, ts := startServer(t, Config{})
	spec := `{"workloads": ["H-Grep", "S-Sort"], "sizes_kb": [16, 64, 256]}`
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold scenario: %d: %s", resp.StatusCode, cold)
	}

	// The equivalent spec (reordered, explicit defaults) must hit warm.
	equiv := `{"workloads": ["S-Sort", "H-Grep"], "sizes_kb": [256, 64, 16], "ways": 8, "views": ["inst"]}`
	resp, err = http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(equiv))
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := io.ReadAll(resp.Body)
	src := resp.Header.Get("X-Reprod-Source")
	resp.Body.Close()
	if src != "warm" {
		t.Fatalf("equivalent spec source %q, want warm", src)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("equivalent scenario bytes differ")
	}
	if st := srv.Stats(); st.Computes != 1 {
		t.Fatalf("equivalent specs computed %d times", st.Computes)
	}

	// Library path serves the same bytes from a session sharing the store.
	sess := experiments.NewSession(tinyOpt())
	sess.Store = srv.Store()
	var spec2 Scenario
	if err := json.Unmarshal([]byte(spec), &spec2); err != nil {
		t.Fatal(err)
	}
	lib, err := experiments.RunScenario(sess, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, lib) {
		t.Fatal("served scenario differs from library rendering")
	}

	// Bad specs are 400s, not 500s.
	for _, bad := range []string{
		`{"workloads": ["Z-Nothing"]}`,
		`{"groups": ["nope"]}`,
		`{}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestUnknownUnit404 pins request validation.
func TestUnknownUnit404(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, _, _ := get(t, ts.URL+"/v1/units/fig99")
	if code != http.StatusNotFound {
		t.Fatalf("unknown unit: %d", code)
	}
}

// TestJobLifecycle pins the async API: submit → poll to done with
// per-unit timings → the computed unit is then served warm.
func TestJobLifecycle(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 2})
	body := `{"units": ["table2"], "scenarios": [{"name": "jobspec", "workloads": ["H-Grep"], "sizes_kb": [16, 64]}]}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, ack)
	}
	var idResp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ack, &idResp); err != nil || idResp.ID == "" {
		t.Fatalf("submit ack %q: %v", ack, err)
	}

	var status JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, b := get(t, ts.URL+"/v1/jobs/"+idResp.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d: %s", code, b)
		}
		if err := json.Unmarshal(b, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == JobDone || status.State == JobFailed || status.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", status.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.State != JobDone {
		t.Fatalf("job finished %s (%s)", status.State, status.Error)
	}
	if status.Started == nil || status.Finished == nil {
		t.Fatal("done job missing timestamps")
	}
	var sawUnit, sawPrimer, sawScenario bool
	for _, tm := range status.Timings {
		switch {
		case tm.Unit == "table2" && tm.Status == "ok":
			sawUnit = true
		case tm.Status == "primer":
			sawPrimer = true
		case tm.Unit == "scenario:jobspec" && tm.Status == "ok":
			sawScenario = true
		}
	}
	if !sawUnit || !sawPrimer || !sawScenario {
		t.Fatalf("timings missing rows: unit=%v primer=%v scenario=%v (%+v)",
			sawUnit, sawPrimer, sawScenario, status.Timings)
	}

	// The job warmed the store: the unit now serves warm.
	code, hdr, _ := get(t, ts.URL+"/v1/units/table2")
	if code != http.StatusOK || hdr.Get("X-Reprod-Source") != "warm" {
		t.Fatalf("post-job unit: %d source %q", code, hdr.Get("X-Reprod-Source"))
	}
	if st := srv.Stats(); st.JobsDone != 1 {
		t.Fatalf("jobs done = %d", st.JobsDone)
	}

	// Job listing includes it (as a summary in the page envelope).
	code, _, b := get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var page JobPage
	if err := json.Unmarshal(b, &page); err != nil || len(page.Jobs) != 1 || page.Jobs[0].ID != idResp.ID {
		t.Fatalf("list %s: %v", b, err)
	}
}

// TestJobValidation pins early rejection.
func TestJobValidation(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, bad := range []string{
		`{}`,
		`{"units": ["fig99"]}`,
		`{"scenarios": [{"workloads": ["Z-Nothing"]}]}`,
		`garbage`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("job %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestShutdownDrainsRunningAbortsQueued pins the drain contract: after
// BeginShutdown new jobs are refused 503, queued jobs finish canceled,
// and Drain returns once running work completes.
func TestShutdownDrainsRunningAbortsQueued(t *testing.T) {
	srv, ts := startServer(t, Config{})

	// A job cancelled before any worker picks it up must finish
	// canceled; simulate the queued state directly.
	j := srv.jobs.add(JobRequest{Units: []string{"table3"}})
	j.cancel()
	go func() {
		defer srv.jobs.wg.Done()
		srv.pool.ForEach(1, func(int) { srv.runJob(j) })
	}()

	srv.BeginShutdown()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"units": ["table3"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j.status().State != JobCanceled {
		t.Fatalf("queued job finished %s, want canceled", j.status().State)
	}
}

// TestClientDisconnectCancelsAbandonedFlight pins cancellation by
// abandonment: when every waiter of a cold computation leaves, the
// flight's context is cancelled, the simulation stops, and the key is
// left clean for the next request.
func TestClientDisconnectCancelsAbandonedFlight(t *testing.T) {
	srv, ts := startServer(t, Config{Parallelism: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/units/fig7", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Give the flight a moment to start, then walk away.
	deadline := time.Now().Add(10 * time.Second)
	for srv.flights.inFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request returned a response")
	}

	// The abandoned flight must unwind (not linger computing).
	for time.Now().Before(deadline) && srv.flights.inFlight() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.flights.inFlight(); n != 0 {
		t.Fatalf("%d flights still alive after abandonment", n)
	}

	// And the key is not poisoned: a fresh request computes fine.
	code, _, b := get(t, ts.URL+"/v1/units/fig7")
	if code != http.StatusOK {
		t.Fatalf("post-abandon request: %d: %s", code, b)
	}
}

// TestFlightGroupSharesOneRun unit-tests the coalescing primitive:
// concurrent do() calls for one key run fn once; a second round after
// completion runs it again (no stale flights).
func TestFlightGroupSharesOneRun(t *testing.T) {
	g := newFlightGroup(nil)
	var runs int32
	var mu sync.Mutex
	run := func(ctx context.Context) ([]byte, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return []byte("v"), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.do(context.Background(), "k", run)
			if err != nil || string(v) != "v" {
				t.Errorf("do: %q %v", v, err)
			}
		}()
	}
	wg.Wait()
	if runs != 1 {
		t.Fatalf("16 concurrent do() ran fn %d times", runs)
	}
	if _, _, err := g.do(context.Background(), "k", run); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("post-completion do() reused a dead flight (runs=%d)", runs)
	}
}

// TestFlightGroupAbandonmentCancelsRun unit-tests refcounted
// cancellation: when all waiters leave, fn's context dies.
func TestFlightGroupAbandonmentCancelsRun(t *testing.T) {
	g := newFlightGroup(nil)
	started := make(chan struct{})
	cancelled := make(chan struct{})
	run := func(ctx context.Context) ([]byte, error) {
		close(started)
		select {
		case <-ctx.Done():
			close(cancelled)
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return []byte("too late"), nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", run)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("abandoned waiter err = %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("flight context never cancelled after last waiter left")
	}
}

// TestStatsAndMetricsEndpoints pins the observability surface.
func TestStatsAndMetricsEndpoints(t *testing.T) {
	_, ts := startServer(t, Config{})
	get(t, ts.URL+"/v1/units/table3")

	code, _, b := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var stats map[string]any
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"unit_requests", "computes", "renders", "trace_passes", "store_fills",
		"store_evictions", "store_resident_bytes", "store_mem_hit_ratio"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats missing %q", k)
		}
	}
	if stats["unit_requests"] != float64(1) || stats["computes"] != float64(1) {
		t.Fatalf("stats counters off: %v", stats)
	}

	code, hdr, mb := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics: %d %q", code, hdr.Get("Content-Type"))
	}
	for _, family := range []string{
		"# TYPE reprod_unit_requests_total counter",
		"# TYPE reprod_computes_total counter",
		"# TYPE reprod_in_flight gauge",
		"reprod_unit_requests_total 1",
	} {
		if !strings.Contains(string(mb), family) {
			t.Errorf("metrics missing %q", family)
		}
	}

	code, _, hb := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || string(hb) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, hb)
	}
}

// TestEngineCountersAndMultiGeometryServing pins the escape hatch's
// observability and cost model: a default (stack-distance) server
// prices a four-associativity scenario at one trace pass, reported on
// sweep_stackdist_passes; a -engine=replay server serves the same
// bytes, pays one pass per geometry, and reports them on
// sweep_replay_passes.
func TestEngineCountersAndMultiGeometryServing(t *testing.T) {
	spec := `{"name": "multigeo", "workloads": ["H-Grep"], "sizes_kb": [16, 64, 256], "ways_set": [1, 2, 8, 16], "views": ["inst", "data"]}`
	post := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scenario: %d: %s", resp.StatusCode, b)
		}
		return b
	}

	sd, sdTS := startServer(t, Config{})
	sdBytes := post(sdTS)
	if st := sd.Stats(); st.TracePasses != 1 || st.StackDistPasses != 1 || st.ReplayPasses != 0 {
		t.Fatalf("stackdist server passes: trace %d stackdist %d replay %d, want 1/1/0",
			st.TracePasses, st.StackDistPasses, st.ReplayPasses)
	}

	rp, rpTS := startServer(t, Config{Engine: experiments.EngineReplay})
	rpBytes := post(rpTS)
	if st := rp.Stats(); st.ReplayPasses != 4 || st.StackDistPasses != 0 {
		t.Fatalf("replay server passes: stackdist %d replay %d, want 0/4",
			st.StackDistPasses, st.ReplayPasses)
	}
	if !bytes.Equal(sdBytes, rpBytes) {
		t.Fatal("engines served different scenario bytes")
	}

	_, _, b := get(t, sdTS.URL+"/v1/stats")
	var stats map[string]any
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["sweep_stackdist_passes"] != float64(1) || stats["sweep_replay_passes"] != float64(0) {
		t.Fatalf("stats JSON counters off: %v", stats)
	}
	_, _, mb := get(t, rpTS.URL+"/metrics")
	for _, family := range []string{
		"# TYPE reprod_sweep_stackdist_passes_total counter",
		"reprod_sweep_replay_passes_total 4",
		"reprod_sweep_stackdist_passes_total 0",
	} {
		if !strings.Contains(string(mb), family) {
			t.Errorf("metrics missing %q", family)
		}
	}
}

// TestServedBytesStableAcrossRestart pins persistence integration: a
// second server over the same disk store serves the first server's
// bytes warm.
func TestServedBytesStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, *httptest.Server) {
		st, err := artifact.NewDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		return startServer(t, Config{Store: st})
	}
	_, ts1 := open()
	code, _, cold := get(t, ts1.URL+"/v1/units/table1")
	if code != http.StatusOK {
		t.Fatalf("cold: %d", code)
	}
	srv2, ts2 := open()
	code, hdr, warm := get(t, ts2.URL+"/v1/units/table1")
	if code != http.StatusOK || hdr.Get("X-Reprod-Source") != "warm" {
		t.Fatalf("restart: %d source %q", code, hdr.Get("X-Reprod-Source"))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("restarted server served different bytes")
	}
	if st := srv2.Stats(); st.Computes != 0 {
		t.Fatalf("restarted server recomputed %d times", st.Computes)
	}
}

// TestJobInlineResults pins GET /jobs/{id} carrying rendered bytes:
// the unit result matches what /units serves, the scenario result
// matches what /scenarios serves, and nothing is truncated at real
// render sizes.
func TestJobInlineResults(t *testing.T) {
	_, ts := startServer(t, Config{Parallelism: 2})
	body := `{"units": ["table2"], "scenarios": [{"name": "inline", "workloads": ["H-Grep"], "sizes_kb": [16, 64]}]}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var idResp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ack, &idResp); err != nil || idResp.ID == "" {
		t.Fatalf("submit ack %q: %v", ack, err)
	}

	var status JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, _, b := get(t, ts.URL+"/v1/jobs/"+idResp.ID)
		if err := json.Unmarshal(b, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == JobDone || status.State == JobFailed || status.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", status.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.State != JobDone {
		t.Fatalf("job finished %s (%s)", status.State, status.Error)
	}
	if status.ResultsTruncated {
		t.Fatal("small job claims truncated results")
	}
	if len(status.Results) != 2 {
		t.Fatalf("want 2 inline results, got %d: %v", len(status.Results), keysOf(status.Results))
	}

	// The inline unit render is exactly what the synchronous endpoint
	// serves for the same store.
	code, _, unitBytes := get(t, ts.URL+"/v1/units/table2")
	if code != http.StatusOK {
		t.Fatalf("unit fetch: %d", code)
	}
	if status.Results["table2"] != string(unitBytes) {
		t.Fatal("inline unit result differs from /units/table2")
	}
	resp, err = http.Post(ts.URL+"/v1/scenarios", "application/json",
		strings.NewReader(`{"name": "inline", "workloads": ["H-Grep"], "sizes_kb": [16, 64]}`))
	if err != nil {
		t.Fatal(err)
	}
	scenBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if status.Results["scenario:inline"] != string(scenBytes) {
		t.Fatal("inline scenario result differs from /scenarios")
	}

	// Hidden primer units carry timings but no inline render.
	if _, ok := status.Results["dataset-primer"]; ok {
		t.Fatal("hidden primer leaked an inline result")
	}
}

func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestServingUnderMemQuota pins eviction byte-invisibility end to end:
// a server squeezed into a far-too-small memory quota evicts
// constantly, yet every re-requested unit and scenario serves exactly
// the bytes the first (fully cold) request served.
func TestServingUnderMemQuota(t *testing.T) {
	srv, ts := startServer(t, Config{
		Parallelism: 2,
		MemQuota:    artifact.MemQuota{MaxBytes: 4 << 10},
	})

	code, _, cold := get(t, ts.URL+"/v1/units/table1")
	if code != http.StatusOK {
		t.Fatalf("cold unit: %d", code)
	}
	spec := `{"workloads": ["H-Grep"], "sizes_kb": [16, 64]}`
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	scenCold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	// Churn distinct scenarios through the tiny quota to force
	// eviction of everything above.
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"workloads": ["S-Sort"], "sizes_kb": [%d]}`, 16<<i)
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	st := srv.Store().Stats()
	if st.Evictions == 0 {
		t.Fatalf("4KB quota never evicted: %+v", st)
	}
	if st.ResidentBytes > 4<<10 {
		t.Fatalf("resident %d exceeds the 4KB quota", st.ResidentBytes)
	}

	code, _, again := get(t, ts.URL+"/v1/units/table1")
	if code != http.StatusOK {
		t.Fatalf("re-request: %d", code)
	}
	if !bytes.Equal(cold, again) {
		t.Fatal("evicted unit re-served different bytes")
	}
	resp, err = http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	scenAgain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(scenCold, scenAgain) {
		t.Fatal("evicted scenario re-served different bytes")
	}

	// The eviction counters surface in both observability endpoints.
	_, _, sb := get(t, ts.URL+"/v1/stats")
	var stats map[string]any
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if ev, ok := stats["store_evictions"].(float64); !ok || ev == 0 {
		t.Fatalf("/stats store_evictions = %v", stats["store_evictions"])
	}
	_, _, mb := get(t, ts.URL+"/metrics")
	for _, family := range []string{
		"# TYPE reprod_store_evictions_total counter",
		"# TYPE reprod_store_resident_bytes gauge",
		"# TYPE reprod_store_kind_resident_bytes gauge",
		"reprod_store_kind_evictions_total{kind=",
	} {
		if !strings.Contains(string(mb), family) {
			t.Errorf("metrics missing %q", family)
		}
	}
}
