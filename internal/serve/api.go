package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/artifact"
	"repro/internal/datagen"
	"repro/internal/experiments"
)

// The v1 HTTP surface. Every resource lives under /v1; legacy
// unversioned paths 308-redirect to their v1 home (308 preserves the
// method and body, so redirect-following clients keep working through
// POST /scenarios and POST /jobs).
//
//	GET    /v1/units/{unit}   one paper unit, rendered text (fig6, table2, ...)
//	POST   /v1/scenarios      ad-hoc scenario spec (JSON body) → rendered text
//	POST   /v1/jobs           {"units": [...], "scenarios": [...]} → {"id": ...}
//	GET    /v1/jobs           paginated summaries: ?state= ?limit= ?cursor=
//	GET    /v1/jobs/{id}      state, timings, inline results, error
//	DELETE /v1/jobs/{id}      cancel (queued or running)
//	GET    /v1/jobs/{id}/events  SSE: backlog replay + live lifecycle events
//	GET    /v1/events         SSE firehose, ?topics= filter (engine, flight, store, fleet, job/*)
//	GET    /v1/stats          counters as JSON
//	GET    /metrics           Prometheus text format (unversioned: infra)
//	GET    /healthz           liveness probe, "ok" (unversioned: infra)
//
// Errors are a uniform JSON envelope with a stable machine-readable
// code, replacing the pre-v1 ad-hoc text bodies:
//
//	{"error": {"code": "unknown_unit", "message": "...", "key": "..."}}
//
// key carries the artifact identity the request resolved to, when it
// resolved to one (compute failures, abandoned flights). Codes:
// method_not_allowed, bad_body, unknown_unit, invalid_scenario,
// invalid_job, unknown_job, invalid_query, draining,
// client_closed_request, compute_failed.
//
// GET /v1/jobs returns a page envelope, newest first:
//
//	{"jobs": [summary...], "next_cursor": "job-00000042"}
//
// Summaries omit timings and results (fetch the job id for those).
// ?state= filters on one lifecycle state, ?limit= bounds the page
// (default 100, max 1000), ?cursor= resumes after a previous page's
// next_cursor. next_cursor is absent on the last page.

// apiError is the body of the v1 error envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Key     string `json:"key,omitempty"`
}

// writeErr writes the uniform v1 error envelope.
func writeErr(w http.ResponseWriter, status int, code, message, key string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error apiError `json:"error"`
	}{apiError{Code: code, Message: message, Key: key}})
}

// statusClientClosedRequest is nginx's conventional 499 — the request
// ended because the requester left, not because either side failed.
const statusClientClosedRequest = 499

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/units/", s.handleUnit)
	mux.HandleFunc("/v1/scenarios", s.handleScenario)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	// Liveness and readiness are deliberately split: /healthz says the
	// process is up (restarting it won't help), /readyz says it wants
	// traffic. A draining or degraded replica is alive but not ready —
	// load balancers should drain it, not kill it. Degraded replicas
	// still answer correctly (memory hits + local compute), so /readyz
	// is advisory, not a correctness gate.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Healthy()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		io.WriteString(w, reason+"\n")
	})
	for _, p := range []string{"/units/", "/scenarios", "/jobs", "/jobs/", "/stats"} {
		mux.HandleFunc(p, redirectV1)
	}
	return mux
}

// redirectV1 sends a legacy unversioned path to its /v1 home with a
// 308: permanent, method- and body-preserving.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// respond writes rendered bytes with provenance headers — the id the
// bytes live under in the store, and how this request obtained them
// (warm / computed / coalesced), which the coalescing tests and the CI
// serving job assert on.
func respond(w http.ResponseWriter, keyID, source string, b []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Reprod-Key", keyID)
	w.Header().Set("X-Reprod-Source", source)
	w.Write(b)
}

// finish maps a flight outcome onto the response.
func (s *Server) finish(w http.ResponseWriter, keyID string, joined bool, b []byte, err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or every client was): nothing useful
			// to write, but account for the abandonment.
			s.abandoned.Add(1)
			writeErr(w, statusClientClosedRequest, "client_closed_request",
				"request cancelled: every requester left", keyID)
			return
		}
		writeErr(w, http.StatusInternalServerError, "compute_failed", err.Error(), keyID)
		return
	}
	source := "computed"
	if joined {
		source = "coalesced"
		s.coalesced.Add(1)
	}
	respond(w, keyID, source, b)
}

// handleUnit answers GET /v1/units/{unit}: the rendered unit, served
// warm from the store when possible, proxied to the key's fleet home
// when cold on a non-home replica, computed (coalesced) otherwise —
// byte-identical to what cmd/repro writes for the same unit at the
// same options.
func (s *Server) handleUnit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "units are fetched with GET", "")
		return
	}
	unit := strings.ToLower(strings.TrimPrefix(r.URL.Path, "/v1/units/"))
	if !validUnit(unit) {
		writeErr(w, http.StatusNotFound, "unknown_unit", fmt.Sprintf("unknown unit %q (known: %s)",
			unit, strings.Join(experiments.VisibleUnitNames(), " ")), "")
		return
	}
	s.unitReqs.Add(1)
	key := experiments.UnitRenderKey(s.cfg.Opt, unit)
	if b, ok := artifact.Peek[[]byte](s.store, key, nil); ok {
		s.warmHits.Add(1)
		respond(w, key.ID(), "warm", b)
		return
	}
	if owner, fwd := s.route(r, key.ID()); fwd {
		if s.proxy(w, r, owner, key.ID(), nil) {
			return
		}
		if b, ok := s.rePeek(key); ok {
			respond(w, key.ID(), "warm", b)
			return
		}
	}
	b, joined, err := s.flights.do(r.Context(), key.ID(), func(fctx context.Context) ([]byte, error) {
		return s.compute(fctx, key.ID(), func(sess *experiments.Session) ([]byte, error) {
			return s.renderUnit(fctx, sess, unit, s.engineEvents)
		})
	})
	s.finish(w, key.ID(), joined, b, err)
}

// rePeek re-checks the warm path after a failed proxy: the proxy spent
// its retry budget in backoff, long enough for a concurrent requester
// (or the rerouted wave in front of us) to have finished the key
// locally — serve those bytes instead of opening a fresh flight.
func (s *Server) rePeek(key artifact.Key) ([]byte, bool) {
	b, ok := artifact.Peek[[]byte](s.store, key, nil)
	if ok {
		s.warmHits.Add(1)
	}
	return b, ok
}

// handleScenario answers POST /v1/scenarios: validate and canonicalize
// the spec, then serve it exactly like a unit — warm from the store,
// proxied to its fleet home, or computed once under coalescing.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "scenarios are submitted with POST", "")
		return
	}
	spec, ok := decodeScenario(w, r)
	if !ok {
		return
	}
	canon, err := spec.Canonical(s.cfg.Opt)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_scenario", err.Error(), "")
		return
	}
	s.scenarioReqs.Add(1)
	key := experiments.ScenarioKey(canon)
	if b, ok := artifact.Peek[[]byte](s.store, key, nil); ok {
		s.warmHits.Add(1)
		respond(w, key.ID(), "warm", b)
		return
	}
	// Marshal the canonical form before routing: route() may consume a
	// tripped owner's single half-open probe slot, which must not be
	// wasted on a request that then fails to serialize. The owner
	// re-canonicalizes (idempotent) and lands on the same key.
	if body, merr := json.Marshal(canon); merr == nil {
		if owner, fwd := s.route(r, key.ID()); fwd {
			if s.proxy(w, r, owner, key.ID(), body) {
				return
			}
			if b, ok := s.rePeek(key); ok {
				respond(w, key.ID(), "warm", b)
				return
			}
		}
	}
	b, joined, err := s.flights.do(r.Context(), key.ID(), func(fctx context.Context) ([]byte, error) {
		return s.compute(fctx, key.ID(), func(sess *experiments.Session) ([]byte, error) {
			return experiments.RunScenario(sess, canon)
		})
	})
	s.finish(w, key.ID(), joined, b, err)
}

// decodeScenario parses a scenario body, bounding it like any request
// body.
func decodeScenario(w http.ResponseWriter, r *http.Request) (Scenario, bool) {
	var spec Scenario
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil || json.Unmarshal(body, &spec) != nil {
		writeErr(w, http.StatusBadRequest, "bad_body", "body is not a JSON scenario spec", "")
		return Scenario{}, false
	}
	return spec, true
}

// maxJobsPageLimit bounds one GET /v1/jobs page.
const maxJobsPageLimit = 1000

// handleJobs answers POST /v1/jobs (submit) and GET /v1/jobs (list,
// paginated).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		state := JobState(q.Get("state"))
		if state != "" && !validJobState(state) {
			writeErr(w, http.StatusBadRequest, "invalid_query",
				fmt.Sprintf("unknown state %q (want queued, running, done, failed or canceled)", state), "")
			return
		}
		limit := 100
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 || n > maxJobsPageLimit {
				writeErr(w, http.StatusBadRequest, "invalid_query",
					fmt.Sprintf("limit %q must be an integer in [1, %d]", ls, maxJobsPageLimit), "")
				return
			}
			limit = n
		}
		cursor := q.Get("cursor")
		if cursor != "" && !strings.HasPrefix(cursor, "job-") {
			writeErr(w, http.StatusBadRequest, "invalid_query",
				fmt.Sprintf("cursor %q is not a job id from a previous page", cursor), "")
			return
		}
		page := s.jobs.page(state, limit, cursor)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(page)
	case http.MethodPost:
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; submit to another replica", "")
			return
		}
		var req JobRequest
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || json.Unmarshal(body, &req) != nil {
			writeErr(w, http.StatusBadRequest, "bad_body", "body is not a JSON job request", "")
			return
		}
		if len(req.Units) == 0 && len(req.Scenarios) == 0 {
			writeErr(w, http.StatusBadRequest, "invalid_job", "job selects no units and no scenarios", "")
			return
		}
		for i, u := range req.Units {
			req.Units[i] = strings.ToLower(u)
			if !validUnit(req.Units[i]) {
				writeErr(w, http.StatusBadRequest, "unknown_unit", fmt.Sprintf("unknown unit %q", u), "")
				return
			}
		}
		// Scenarios are validated now (a bad spec fails the submit, not
		// the poll) but canonicalized again at run time; Canonical is
		// deterministic, so the two agree.
		for _, spec := range req.Scenarios {
			if _, err := spec.Canonical(s.cfg.Opt); err != nil {
				writeErr(w, http.StatusBadRequest, "invalid_scenario", err.Error(), "")
				return
			}
		}
		j := s.jobs.add(req)
		s.jobsSubmitted.Add(1)
		s.emitJob(j, "queued", map[string]any{"units": len(req.Units), "scenarios": len(req.Scenarios)})
		go func() {
			defer s.jobs.wg.Done()
			s.pool.ForEach(1, func(int) { s.runJob(j) })
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": j.id})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "jobs are listed with GET and submitted with POST", "")
	}
}

// handleJob answers GET /v1/jobs/{id} (status), DELETE /v1/jobs/{id}
// (cancel), and GET /v1/jobs/{id}/events (SSE lifecycle stream).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	events := false
	if rest, ok := strings.CutSuffix(id, "/events"); ok {
		id, events = rest, true
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "unknown job "+id, "")
		return
	}
	if events {
		s.handleJobEvents(w, r, j)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.jobStatus(r.Context(), j))
	case http.MethodDelete:
		j.cancel()
		w.WriteHeader(http.StatusAccepted)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "jobs are polled with GET and cancelled with DELETE", "")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	ss := s.store.Stats()
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{
		"unit_requests": st.UnitRequests, "scenario_requests": st.ScenarioRequests,
		"warm_hits": st.WarmHits, "coalesced": st.Coalesced, "computes": st.Computes,
		"abandoned": st.Abandoned, "in_flight": st.InFlight,
		"jobs_submitted": st.JobsSubmitted, "jobs_done": st.JobsDone,
		"jobs_failed": st.JobsFailed, "jobs_canceled": st.JobsCanceled,
		"trace_passes": st.TracePasses, "profile_runs": st.ProfileRuns,
		"sweep_stackdist_passes": st.StackDistPasses,
		"sweep_replay_passes":    st.ReplayPasses,
		"renders":                st.Renders,
		"fleet_size":             st.FleetSize,
		"fleet_proxied":          st.Proxied,
		"fleet_proxy_fallback":   st.ProxyFallback,
		"fleet_peer_served":      st.PeerServed,
		"fleet_loop_guarded":     st.LoopGuarded,
		"fleet_rerouted":         st.Rerouted,
		"fleet_proxy_retries":    st.ProxyRetries,
		"fleet_peer_unhealthy":   st.PeerUnhealthy,
		"breaker_trips":          st.BreakerTrips,
		"breaker_probes":         st.BreakerProbes,
		"breaker_recoveries":     st.BreakerRecoveries,
		"store_degraded":         boolGauge(st.StoreDegraded),
		"store_retries":          st.StoreRetries,
		"store_skipped":          st.StoreSkipped,
		"events_published":       st.EventsPublished,
		"events_dropped":         st.EventsDropped,
		"subscribers":            st.EventSubscribers,
		"dataset_generations":    datagen.Generations(),
		"store_fills":            ss.Fills, "store_mem_hits": ss.MemHits,
		"store_backend_hits": ss.BackendHits, "store_backend_discards": ss.BackendDiscards,
		"store_prefetched":       ss.Prefetched,
		"store_evictions":        ss.Evictions,
		"store_evicted_bytes":    ss.EvictedBytes,
		"store_resident_bytes":   ss.ResidentBytes,
		"store_resident_entries": ss.ResidentEntries,
		"store_mem_hit_ratio":    ss.MemHitRatio(),
		"goroutines":             int64(runtime.NumGoroutine()),
	}
	if len(ss.KindResident) > 0 {
		out["store_kind_resident_bytes"] = ss.KindResident
	}
	if len(ss.KindEvictions) > 0 {
		out["store_kind_evictions"] = ss.KindEvictions
	}
	if len(st.PeerStates) > 0 {
		out["peer_states"] = st.PeerStates
	}
	json.NewEncoder(w).Encode(out)
}

// boolGauge maps a condition onto the 0/1 convention shared by the
// JSON stats and the Prometheus gauge.
func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// handleMetrics exposes the counters in the Prometheus text exposition
// format, matching artifactd's conventions (one counter family per
// field, reprod_ prefix).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	ss := s.store.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counters := []struct {
		name, help string
		value      int64
	}{
		{"reprod_unit_requests_total", "Paper-unit requests received.", st.UnitRequests},
		{"reprod_scenario_requests_total", "Scenario requests received.", st.ScenarioRequests},
		{"reprod_warm_hits_total", "Requests answered straight from the store.", st.WarmHits},
		{"reprod_coalesced_total", "Requests that joined an in-flight computation.", st.Coalesced},
		{"reprod_computes_total", "Computations actually executed.", st.Computes},
		{"reprod_abandoned_total", "Requests whose clients left before the answer.", st.Abandoned},
		{"reprod_fleet_proxied_total", "Cold requests forwarded to their home replica.", st.Proxied},
		{"reprod_fleet_proxy_fallback_total", "Forwards failed over to local compute (owner unreachable).", st.ProxyFallback},
		{"reprod_fleet_peer_served_total", "Requests received from a fleet peer.", st.PeerServed},
		{"reprod_fleet_loop_guarded_total", "Peer-forwarded requests this replica would have routed elsewhere.", st.LoopGuarded},
		{"reprod_fleet_rerouted_total", "Requests routed around a tripped peer breaker.", st.Rerouted},
		{"reprod_breaker_trips_total", "Peer breakers tripped open (fail limit reached).", st.BreakerTrips},
		{"reprod_breaker_probes_total", "Half-open probes sent to tripped peers.", st.BreakerProbes},
		{"reprod_breaker_recoveries_total", "Peer breakers closed again by a successful probe.", st.BreakerRecoveries},
		{"reprod_jobs_submitted_total", "Jobs accepted.", st.JobsSubmitted},
		{"reprod_jobs_done_total", "Jobs finished successfully.", st.JobsDone},
		{"reprod_jobs_failed_total", "Jobs finished with an error.", st.JobsFailed},
		{"reprod_jobs_canceled_total", "Jobs cancelled (client or shutdown).", st.JobsCanceled},
		{"reprod_trace_passes_total", "Sweep trace passes executed.", st.TracePasses},
		{"reprod_sweep_stackdist_passes_total", "Trace passes run by the stack-distance sweep engine.", st.StackDistPasses},
		{"reprod_sweep_replay_passes_total", "Trace passes run by the concrete-cache replay engine.", st.ReplayPasses},
		{"reprod_profile_runs_total", "Profiling runs executed.", st.ProfileRuns},
		{"reprod_renders_total", "Units rendered.", st.Renders},
		{"reprod_store_fills_total", "Store computations executed.", ss.Fills},
		{"reprod_store_backend_hits_total", "Fills satisfied by the persistence backend.", ss.BackendHits},
		{"reprod_store_prefetched_total", "Entries staged by bulk prefetch.", ss.Prefetched},
		{"reprod_store_evictions_total", "Memory-tier residents evicted under quota.", ss.Evictions},
		{"reprod_store_evicted_bytes_total", "Charged bytes evicted by the memory tier.", ss.EvictedBytes},
		{"reprod_events_published_total", "Events materialized on the event bus.", st.EventsPublished},
		{"reprod_events_dropped_total", "Events shed from slow subscribers' rings.", st.EventsDropped},
	}
	for _, m := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
	// reprod_retries_total is labeled by component: the store's HTTP
	// backend and the fleet proxy retry independently.
	fmt.Fprintf(w, "# HELP reprod_retries_total Extra attempts beyond each operation's first.\n# TYPE reprod_retries_total counter\n")
	fmt.Fprintf(w, "reprod_retries_total{component=\"store\"} %d\n", st.StoreRetries)
	fmt.Fprintf(w, "reprod_retries_total{component=\"proxy\"} %d\n", st.ProxyRetries)
	fmt.Fprintf(w, "# HELP reprod_in_flight Computations currently in flight.\n# TYPE reprod_in_flight gauge\nreprod_in_flight %d\n", st.InFlight)
	fmt.Fprintf(w, "# HELP reprod_event_subscribers Event-bus subscribers currently attached.\n# TYPE reprod_event_subscribers gauge\nreprod_event_subscribers %d\n", st.EventSubscribers)
	fmt.Fprintf(w, "# HELP reprod_peer_unhealthy Fleet peers currently sidelined (breaker not closed).\n# TYPE reprod_peer_unhealthy gauge\nreprod_peer_unhealthy %d\n", st.PeerUnhealthy)
	fmt.Fprintf(w, "# HELP reprod_store_degraded Whether the persistence backend is degraded (1 = serving memory hits and computing locally).\n# TYPE reprod_store_degraded gauge\nreprod_store_degraded %d\n", boolGauge(st.StoreDegraded))
	if len(st.PeerStates) > 0 {
		peers := make([]string, 0, len(st.PeerStates))
		for p := range st.PeerStates {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		fmt.Fprintf(w, "# HELP reprod_breaker_state Peer breaker state (0 closed, 1 half-open, 2 open).\n# TYPE reprod_breaker_state gauge\n")
		for _, p := range peers {
			var v int
			switch st.PeerStates[p] {
			case "half-open":
				v = 1
			case "open":
				v = 2
			}
			fmt.Fprintf(w, "reprod_breaker_state{peer=%q} %d\n", p, v)
		}
	}
	fmt.Fprintf(w, "# HELP reprod_fleet_size Fleet membership size (0 = fleet mode off).\n# TYPE reprod_fleet_size gauge\nreprod_fleet_size %d\n", st.FleetSize)
	fmt.Fprintf(w, "# HELP reprod_store_resident_bytes Charged bytes resident in the store's memory tier.\n# TYPE reprod_store_resident_bytes gauge\nreprod_store_resident_bytes %d\n", ss.ResidentBytes)
	fmt.Fprintf(w, "# HELP reprod_store_resident_entries Residents (entries + staged prefetches) in the memory tier.\n# TYPE reprod_store_resident_entries gauge\nreprod_store_resident_entries %d\n", ss.ResidentEntries)
	fmt.Fprintf(w, "# HELP reprod_store_mem_hit_ratio Fraction of store lookups answered by a resident entry.\n# TYPE reprod_store_mem_hit_ratio gauge\nreprod_store_mem_hit_ratio %g\n", ss.MemHitRatio())
	writeKindFamily(w, "reprod_store_kind_resident_bytes", "Resident memory-tier bytes by artefact kind.", "gauge", ss.KindResident)
	writeKindFamily(w, "reprod_store_kind_evictions_total", "Memory-tier evictions by artefact kind.", "counter", ss.KindEvictions)
}

// writeKindFamily emits one labeled Prometheus family with a
// deterministic (sorted) sample order, skipping empty families.
func writeKindFamily(w io.Writer, name, help, typ string, byKind map[string]int64) {
	if len(byKind) == 0 {
		return
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k := range kinds {
		fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, byKind[k])
	}
}
