package serve

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"repro/internal/artifact/httpstore"
)

// Fleet mode: N reprod replicas share the key space by rendezvous
// (highest-random-weight) hashing. Every artefact key has exactly one
// home replica — the member whose hash with the key scores highest —
// so per-key request coalescing works fleet-wide: no matter which
// replica a cold request lands on, it is forwarded to the key's home,
// where concurrent requests from the whole fleet join one flight.
//
// The routing rules, in order:
//
//  1. Local warm fast path: a request whose artefact is already
//     available to this replica (memory tier or shared backend) is
//     answered locally — routing only ever touches cold requests.
//  2. Proxy to home: a cold request on a non-home replica is forwarded
//     to the owner over the same v1 endpoint, carrying a loop-guard
//     header (fleetHopHeader) so the owner — whatever its own view of
//     the membership — computes locally instead of forwarding again.
//     One hop, never two.
//  3. Fallback to local compute: an unreachable owner degrades the
//     request to a local computation. Worst case the fleet computes a
//     key once per replica instead of once — availability over strict
//     single-compute, and a shared artifactd backend still dedupes
//     across processes for all but true races.
//
// Rendezvous hashing (vs a ring) keeps the membership math trivial and
// the disruption minimal: when a member leaves, only the keys it owned
// move (scattering evenly over the survivors); when one joins, only
// the keys it now wins move — everything else keeps its owner, so the
// fleet-wide warm set stays warm.
type fleet struct {
	self    string
	members []string // sorted, deduped, self included
	client  *http.Client
}

// fleetHopHeader marks a request already forwarded once by a replica:
// the receiver must answer it locally, never forward again. The value
// is the forwarding replica's advertised URL (diagnostics only).
const fleetHopHeader = "X-Reprod-Fleet-Hop"

// fleetOwnerHeader is set on proxied responses so clients (and the CI
// fleet assertions) can see which replica actually answered.
const fleetOwnerHeader = "X-Reprod-Fleet-Owner"

// newFleet builds the membership from the advertised self URL and the
// peer list. An empty self or a membership of one disables fleet mode
// (every key is local). Member URLs are normalized (trailing slash
// trimmed) so equal spellings compare equal across replicas.
func newFleet(self string, peers []string) (*fleet, error) {
	self = normalizeMember(self)
	if self == "" {
		if len(peers) > 0 {
			return nil, fmt.Errorf("serve: fleet peers configured without a self URL")
		}
		return nil, nil
	}
	seen := map[string]bool{}
	var members []string
	for _, p := range append([]string{self}, peers...) {
		p = normalizeMember(p)
		if p == "" {
			continue
		}
		if u, err := url.Parse(p); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("serve: fleet member %q is not an absolute http(s) URL", p)
		}
		if !seen[p] {
			seen[p] = true
			members = append(members, p)
		}
	}
	sort.Strings(members)
	if len(members) <= 1 {
		return nil, nil // a fleet of one routes nothing
	}
	// Proxied cold requests can legitimately take as long as the
	// computation behind them, so the client carries no overall
	// timeout; the shared transport bounds dialing, and the waiting
	// client's context cancels an abandoned proxy call. All replicas
	// ride one pooled transport — per-peer keep-alive connections are
	// reused across requests instead of redialed.
	return &fleet{
		self:    self,
		members: members,
		client:  &http.Client{Transport: httpstore.SharedTransport()},
	}, nil
}

func normalizeMember(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// size reports the membership size (0 when fleet mode is off).
func (f *fleet) size() int {
	if f == nil {
		return 0
	}
	return len(f.members)
}

// owner returns key's home member: the highest rendezvous score. Ties
// (astronomically unlikely with 64-bit scores) break toward the
// lexicographically smaller member, which every replica agrees on.
func (f *fleet) owner(key string) string {
	var best string
	var bestScore uint64
	for _, m := range f.members {
		s := rendezvousScore(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// rendezvousScore hashes (member, key) into the weight the member bids
// for the key: FNV-64a over member\x00key, then a splitmix64 finalizer
// — FNV alone biases noticeably on short low-entropy inputs (member
// URLs differing in one character), and a biased score skews ownership
// shares fleet-wide. Cheap, stateless, identical on every replica.
func rendezvousScore(member, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, member)
	h.Write([]byte{0})
	io.WriteString(h, key)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// route decides what to do with a cold request for keyID: answer
// locally (proxy == false), or forward to the returned owner. Requests
// already forwarded once (loop-guard header) are always local.
func (s *Server) route(r *http.Request, keyID string) (owner string, proxy bool) {
	if s.fleet == nil {
		return "", false
	}
	if r.Header.Get(fleetHopHeader) != "" {
		s.peerServed.Add(1)
		if s.fleet.owner(keyID) != s.fleet.self {
			// The sender's membership view disagrees with ours (a
			// rolling restart, a partial -peers list). Compute locally
			// anyway — the loop guard exists precisely so disagreement
			// costs one misplaced computation, never a forwarding loop.
			s.loopGuarded.Add(1)
		}
		return "", false
	}
	owner = s.fleet.owner(keyID)
	if owner == s.fleet.self {
		return "", false
	}
	return owner, true
}

// proxy forwards the request to owner over the same v1 path and writes
// the owner's response through. Returns false — without having written
// anything — when the owner is unreachable, in which case the caller
// computes locally (the fallback leg of the routing contract). body is
// the canonical request body to resend (nil for GETs).
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner, keyID string, body []byte) bool {
	target := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, rd)
	if err != nil {
		s.proxyFallback.Add(1)
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(fleetHopHeader, s.fleet.self)
	resp, err := s.fleet.client.Do(req)
	if err != nil {
		// Unreachable owner (or the waiting client left — the local
		// compute path will then see the dead context immediately).
		s.proxyFallback.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.proxied.Add(1)
	for _, h := range []string{"Content-Type", "X-Reprod-Key", "X-Reprod-Source"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(fleetOwnerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
