package serve

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/artifact/httpstore"
	"repro/internal/retry"
)

// Fleet mode: N reprod replicas share the key space by rendezvous
// (highest-random-weight) hashing. Every artefact key has exactly one
// home replica — the member whose hash with the key scores highest —
// so per-key request coalescing works fleet-wide: no matter which
// replica a cold request lands on, it is forwarded to the key's home,
// where concurrent requests from the whole fleet join one flight.
//
// The routing rules, in order:
//
//  1. Local warm fast path: a request whose artefact is already
//     available to this replica (memory tier or shared backend) is
//     answered locally — routing only ever touches cold requests.
//  2. Proxy to home: a cold request on a non-home replica is forwarded
//     to the owner over the same v1 endpoint, carrying a loop-guard
//     header (fleetHopHeader) so the owner — whatever its own view of
//     the membership — computes locally instead of forwarding again.
//     One hop, never two.
//  3. Fallback to local compute: an unreachable owner degrades the
//     request to a local computation. Worst case the fleet computes a
//     key once per replica instead of once — availability over strict
//     single-compute, and a shared artifactd backend still dedupes
//     across processes for all but true races.
//
// Peer health: every peer carries a consecutive-failure circuit
// breaker (retry.Breaker). Proxy attempts that end in a transport
// error — retried once with backoff first — count against the owner;
// at the fail limit the breaker trips and subsequent requests for
// that peer's keys are rerouted by re-running rendezvous over the
// healthy members (usually landing local), so a dead owner costs one
// trip, not a dial timeout per request. After the cooldown exactly
// one request is let through as a half-open probe; its success closes
// the breaker. Health is local knowledge — replicas may briefly
// disagree, which costs duplicate computes, never loops (the hop
// guard still bounds forwarding at one).
//
// Rendezvous hashing (vs a ring) keeps the membership math trivial and
// the disruption minimal: when a member leaves, only the keys it owned
// move (scattering evenly over the survivors); when one joins, only
// the keys it now wins move — everything else keeps its owner, so the
// fleet-wide warm set stays warm.
type fleet struct {
	self    string
	members []string // sorted, deduped, self included
	client  *http.Client
	health  map[string]*retry.Breaker // per peer (self excluded)
	retry   retry.Policy              // per proxy attempt
}

// fleetHopHeader marks a request already forwarded once by a replica:
// the receiver must answer it locally, never forward again. The value
// is the forwarding replica's advertised URL (diagnostics only).
const fleetHopHeader = "X-Reprod-Fleet-Hop"

// fleetOwnerHeader is set on proxied responses so clients (and the CI
// fleet assertions) can see which replica actually answered.
const fleetOwnerHeader = "X-Reprod-Fleet-Owner"

// newFleet builds the membership from the advertised self URL and the
// peer list. An empty self or a membership of one disables fleet mode
// (every key is local). Member URLs are normalized (trailing slash
// trimmed) so equal spellings compare equal across replicas.
// failLimit/cooldown tune the per-peer breakers (0 = retry defaults).
func newFleet(self string, peers []string, failLimit int, cooldown time.Duration) (*fleet, error) {
	self = normalizeMember(self)
	if self == "" {
		if len(peers) > 0 {
			return nil, fmt.Errorf("serve: fleet peers configured without a self URL")
		}
		return nil, nil
	}
	seen := map[string]bool{}
	var members []string
	for _, p := range append([]string{self}, peers...) {
		p = normalizeMember(p)
		if p == "" {
			continue
		}
		if u, err := url.Parse(p); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("serve: fleet member %q is not an absolute http(s) URL", p)
		}
		if !seen[p] {
			seen[p] = true
			members = append(members, p)
		}
	}
	sort.Strings(members)
	if len(members) <= 1 {
		return nil, nil // a fleet of one routes nothing
	}
	// Proxied cold requests can legitimately take as long as the
	// computation behind them, so the client carries no overall
	// timeout; the shared transport bounds dialing, and the waiting
	// client's context cancels an abandoned proxy call. All replicas
	// ride one pooled transport — per-peer keep-alive connections are
	// reused across requests instead of redialed.
	health := make(map[string]*retry.Breaker, len(members)-1)
	for _, m := range members {
		if m != self {
			health[m] = &retry.Breaker{FailLimit: failLimit, Cooldown: cooldown}
		}
	}
	return &fleet{
		self:    self,
		members: members,
		client:  &http.Client{Transport: httpstore.SharedTransport()},
		health:  health,
		// One quick in-request retry smooths transient resets (a peer
		// restarting, a flap edge); persistent failure is the breaker's
		// job, so the budget stays small.
		retry: retry.Policy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.5},
	}, nil
}

// breaker returns member's health breaker (nil for self or unknown
// members).
func (f *fleet) breaker(member string) *retry.Breaker {
	if f == nil {
		return nil
	}
	return f.health[member]
}

// healthyOwner re-runs rendezvous over self plus the peers whose
// breakers are closed, excluding the sidelined owner — every replica
// with the same health view agrees on the result, so rerouted keys
// still coalesce fleet-wide in the common all-see-it-down case.
func (f *fleet) healthyOwner(key, exclude string) string {
	var best string
	var bestScore uint64
	for _, m := range f.members {
		if m == exclude {
			continue
		}
		if m != f.self && !f.health[m].Viable() {
			continue
		}
		s := rendezvousScore(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// healthSnapshot aggregates the per-peer breakers for /stats: state
// by peer, how many peers are currently sidelined (not closed), and
// the summed lifecycle counters.
func (f *fleet) healthSnapshot() (states map[string]string, unhealthy int64, c retry.BreakerCounters) {
	if f == nil {
		return nil, 0, c
	}
	states = make(map[string]string, len(f.health))
	for m, b := range f.health {
		st := b.State()
		states[m] = st.String()
		if st != retry.Closed {
			unhealthy++
		}
		bc := b.Counters()
		c.Trips += bc.Trips
		c.Probes += bc.Probes
		c.Recoveries += bc.Recoveries
	}
	return states, unhealthy, c
}

func normalizeMember(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// size reports the membership size (0 when fleet mode is off).
func (f *fleet) size() int {
	if f == nil {
		return 0
	}
	return len(f.members)
}

// owner returns key's home member: the highest rendezvous score. Ties
// (astronomically unlikely with 64-bit scores) break toward the
// lexicographically smaller member, which every replica agrees on.
func (f *fleet) owner(key string) string {
	var best string
	var bestScore uint64
	for _, m := range f.members {
		s := rendezvousScore(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// rendezvousScore hashes (member, key) into the weight the member bids
// for the key: FNV-64a over member\x00key, then a splitmix64 finalizer
// — FNV alone biases noticeably on short low-entropy inputs (member
// URLs differing in one character), and a biased score skews ownership
// shares fleet-wide. Cheap, stateless, identical on every replica.
func rendezvousScore(member, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, member)
	h.Write([]byte{0})
	io.WriteString(h, key)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// route decides what to do with a cold request for keyID: answer
// locally (proxy == false), or forward to the returned owner. Requests
// already forwarded once (loop-guard header) are always local. An
// owner whose breaker is open is routed around: rendezvous re-runs
// over the healthy members, so its keys land on one agreed-upon
// stand-in (often self) instead of paying a dial timeout each.
func (s *Server) route(r *http.Request, keyID string) (owner string, proxy bool) {
	if s.fleet == nil {
		return "", false
	}
	if r.Header.Get(fleetHopHeader) != "" {
		s.peerServed.Add(1)
		if s.fleet.owner(keyID) != s.fleet.self {
			// The sender's membership view disagrees with ours (a
			// rolling restart, a partial -peers list). Compute locally
			// anyway — the loop guard exists precisely so disagreement
			// costs one misplaced computation, never a forwarding loop.
			s.loopGuarded.Add(1)
		}
		return "", false
	}
	owner = s.fleet.owner(keyID)
	if owner == s.fleet.self {
		return "", false
	}
	// Allow grants closed-breaker traffic freely and exactly one
	// half-open probe per cooldown; proxy() reports the outcome back.
	if s.fleet.breaker(owner).Allow() {
		return owner, true
	}
	s.rerouted.Add(1)
	alt := s.fleet.healthyOwner(keyID, owner)
	if s.fleetEvents.Active() {
		s.fleetEvents.Event("reroute", map[string]any{"key": keyID, "owner": owner, "alt": alt})
	}
	if alt == "" || alt == s.fleet.self {
		return "", false
	}
	if s.fleet.breaker(alt).Allow() {
		return alt, true
	}
	return "", false
}

// proxy forwards the request to owner over the same v1 path and writes
// the owner's response through — byte-identical body and status, so an
// owner's error envelope (compute_failed, draining, ...) reaches the
// client exactly as the owner wrote it. Returns false — without having
// written anything — when the owner is unreachable after the in-request
// retry, in which case the caller computes locally (the fallback leg of
// the routing contract) and the owner's breaker records the failure.
// Only transport-level errors count against the peer: any received
// HTTP response, even a 5xx, proves it alive. body is the canonical
// request body to resend (nil for GETs).
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner, keyID string, body []byte) bool {
	target := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	br := s.fleet.breaker(owner)
	var resp *http.Response
	err := s.fleet.retry.Do(r.Context(), func(n int) error {
		if n > 0 {
			s.proxyRetries.Add(1)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, rerr := http.NewRequestWithContext(r.Context(), r.Method, target, rd)
		if rerr != nil {
			return retry.Permanent(rerr)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set(fleetHopHeader, s.fleet.self)
		resp, rerr = s.fleet.client.Do(req)
		return rerr
	})
	if err != nil {
		// Unreachable owner — or the waiting client left, in which
		// case the local compute path sees the dead context immediately
		// and the peer is not to blame.
		if br != nil && r.Context().Err() == nil {
			br.Failure()
		}
		s.proxyFallback.Add(1)
		if s.fleetEvents.Active() {
			s.fleetEvents.Event("proxy_fallback", map[string]any{"key": keyID, "owner": owner, "error": err.Error()})
		}
		return false
	}
	if br != nil {
		br.Success()
	}
	defer resp.Body.Close()
	s.proxied.Add(1)
	if s.fleetEvents.Active() {
		s.fleetEvents.Event("proxy", map[string]any{"key": keyID, "owner": owner, "status": resp.StatusCode})
	}
	for _, h := range []string{"Content-Type", "X-Reprod-Key", "X-Reprod-Source"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(fleetOwnerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
