package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/eventbus"
)

// flightGroup coalesces concurrent requests for the same artefact key
// into one computation, with cancellation by abandonment: every waiter
// holds a reference on the flight, a waiter whose own context dies
// releases it, and when the last reference drops the flight's context
// is cancelled — which stops the simulation work underneath (the
// session threads it into every emitter). The next request for the key
// starts fresh.
//
// This is singleflight with two differences that matter to a serving
// daemon: the computation runs under its own context (detached from
// any single requester, so one impatient client can't kill the answer
// nine others are waiting for), and an abandoned computation is
// actually aborted rather than left burning CPU for nobody.
//
// Every lifecycle edge is published on the flight topic (flight_start,
// coalesce_join, coalesce_leave, flight_cancel, flight_finish) — after
// the group lock is released, never blocking, and only when a
// subscriber is attached.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	events  *eventbus.Publisher
}

type flight struct {
	refs    int
	cancel  context.CancelFunc
	done    chan struct{}
	started time.Time
	val     []byte
	err     error
}

func newFlightGroup(events *eventbus.Publisher) *flightGroup {
	return &flightGroup{flights: map[string]*flight{}, events: events}
}

// do returns run's result for key, starting the computation when this
// is the first request and joining (joined=true) when one is already
// in flight. ctx cancels only this caller's wait: the computation
// stops only when every waiter has gone.
func (g *flightGroup) do(ctx context.Context, key string, run func(context.Context) ([]byte, error)) (val []byte, joined bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	var refs int
	if ok {
		f.refs++
		refs = f.refs
	} else {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{refs: 1, cancel: cancel, done: make(chan struct{}), started: time.Now()}
		g.flights[key] = f
		go func() {
			f.val, f.err = run(fctx)
			g.mu.Lock()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			if g.events.Active() {
				g.events.Event("flight_finish", map[string]any{
					"key": key, "ms": float64(time.Since(f.started).Microseconds()) / 1000, "ok": f.err == nil,
				})
			}
			cancel() // release the context either way
			close(f.done)
		}()
	}
	g.mu.Unlock()
	if g.events.Active() {
		if ok {
			g.events.Event("coalesce_join", map[string]any{"key": key, "refs": refs})
		} else {
			g.events.Event("flight_start", map[string]any{"key": key})
		}
	}

	select {
	case <-f.done:
		return f.val, ok, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		refs := f.refs
		abandoned := refs == 0
		if abandoned && g.flights[key] == f {
			// Unhook immediately so a fresh request doesn't join a
			// flight that is already unwinding.
			delete(g.flights, key)
		}
		g.mu.Unlock()
		if g.events.Active() {
			g.events.Event("coalesce_leave", map[string]any{"key": key, "refs": refs})
			if abandoned {
				g.events.Event("flight_cancel", map[string]any{"key": key})
			}
		}
		if abandoned {
			f.cancel()
		}
		return nil, ok, ctx.Err()
	}
}

// inFlight reports the number of live flights (for /stats).
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
