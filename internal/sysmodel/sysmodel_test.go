package sysmodel

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stack"
	"repro/internal/workloads"
)

func mkResult(insts, in, inter, out uint64, factor float64, cw float64) *workloads.Result {
	return &workloads.Result{
		Workload: workloads.Workload{
			Stack: stack.Descriptor{Name: "t", SysCPUFactor: factor},
		},
		Insts: insts, InBytes: in, InterBytes: inter, OutBytes: out,
		CPUWeight: cw,
	}
}

func vecWithIPC(ipc float64) metrics.Vector {
	var v metrics.Vector
	v[metrics.IPC] = ipc
	return v
}

func TestComputeHeavyIsCPUIntensive(t *testing.T) {
	// 2000 insts/byte at IPC 1.3: compute dwarfs I/O.
	b := Analyze(DefaultCluster(), mkResult(2_000_000, 1000, 10, 10, 1, 1), vecWithIPC(1.3))
	if b.Class != CPUIntensive {
		t.Fatalf("class = %v, want CPU-intensive (util %.2f)", b.Class, b.CPUUtil)
	}
	if b.CPUUtil <= 0.85 {
		t.Fatalf("CPU utilization %.2f should exceed the paper's 85%% rule", b.CPUUtil)
	}
}

func TestScanIsIOIntensive(t *testing.T) {
	// 2 insts/byte: a pure scan is disk-bound.
	b := Analyze(DefaultCluster(), mkResult(2_000, 1000, 0, 10, 1, 1), vecWithIPC(1.5))
	if b.Class != IOIntensive {
		t.Fatalf("class = %v, want IO-intensive (util %.2f, iowait %.2f, wio %.2f)",
			b.Class, b.CPUUtil, b.IOWait, b.WeightedIOTime)
	}
}

func TestShuffleHeavyRaisesWeightedIO(t *testing.T) {
	light := Analyze(DefaultCluster(), mkResult(50_000, 1000, 0, 0, 1, 1), vecWithIPC(1.2))
	heavy := Analyze(DefaultCluster(), mkResult(50_000, 1000, 2000, 1000, 1, 1), vecWithIPC(1.2))
	if heavy.WeightedIOTime <= light.WeightedIOTime {
		t.Fatalf("shuffle-heavy weighted I/O %.2f <= light %.2f",
			heavy.WeightedIOTime, light.WeightedIOTime)
	}
}

func TestSysFactorScalesCPU(t *testing.T) {
	lo := Analyze(DefaultCluster(), mkResult(20_000, 1000, 0, 10, 1, 1), vecWithIPC(1.2))
	hi := Analyze(DefaultCluster(), mkResult(20_000, 1000, 0, 10, 40, 1), vecWithIPC(1.2))
	if hi.CPUSeconds <= lo.CPUSeconds {
		t.Fatal("SysCPUFactor did not scale CPU seconds")
	}
	if hi.CPUUtil <= lo.CPUUtil {
		t.Fatal("SysCPUFactor did not raise utilization")
	}
}

func TestCPUWeightScalesCPU(t *testing.T) {
	one := Analyze(DefaultCluster(), mkResult(20_000, 1000, 0, 10, 1, 1), vecWithIPC(1.2))
	fifteen := Analyze(DefaultCluster(), mkResult(20_000, 1000, 0, 10, 1, 15), vecWithIPC(1.2))
	if fifteen.CPUSeconds < one.CPUSeconds*10 {
		t.Fatal("CPUWeight did not scale CPU seconds")
	}
}

func TestDegenerateInputsAreHybrid(t *testing.T) {
	b := Analyze(DefaultCluster(), mkResult(1000, 0, 0, 0, 1, 1), vecWithIPC(1))
	if b.Class != Hybrid {
		t.Fatal("zero-input run should classify as hybrid")
	}
	b = Analyze(DefaultCluster(), mkResult(1000, 100, 0, 0, 1, 1), vecWithIPC(0))
	if b.Class != Hybrid {
		t.Fatal("zero-IPC run should classify as hybrid")
	}
}

func TestClassifyRuleBoundaries(t *testing.T) {
	if classify(Behaviour{CPUUtil: 0.86}) != CPUIntensive {
		t.Fatal("util > 85% must be CPU-intensive")
	}
	if classify(Behaviour{CPUUtil: 0.5, WeightedIOTime: 11}) != IOIntensive {
		t.Fatal("weighted I/O > 10 must be IO-intensive")
	}
	if classify(Behaviour{CPUUtil: 0.5, IOWait: 0.25}) != IOIntensive {
		t.Fatal("iowait > 20% with util < 60% must be IO-intensive")
	}
	if classify(Behaviour{CPUUtil: 0.7, IOWait: 0.25, WeightedIOTime: 5}) != Hybrid {
		t.Fatal("util 70% with moderate iowait must be hybrid")
	}
}

func TestUtilizationBounded(t *testing.T) {
	b := Analyze(DefaultCluster(), mkResult(10_000_000, 100, 0, 0, 50, 20), vecWithIPC(0.5))
	if b.CPUUtil > 1 {
		t.Fatalf("CPU utilization %v > 1", b.CPUUtil)
	}
	if b.IOWait < 0 {
		t.Fatalf("negative iowait %v", b.IOWait)
	}
}
