// Package sysmodel implements the system-behaviour characterization of
// the paper's §3.2.1: CPU utilization, I/O-wait ratio, average weighted
// disk-I/O-time ratio and I/O bandwidth for a workload deployed at the
// paper's scale (≈128 GB of input on a 5-node cluster), and the rule
// that classifies each workload as CPU-intensive, I/O-intensive or
// hybrid.
//
// The model extrapolates from a simulated run: the run yields the
// workload's instructions-per-input-byte and IPC; the cluster model
// turns those into CPU seconds, and the measured input/intermediate/
// output volumes into disk and network seconds.
package sysmodel

import (
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// ClusterConfig is the deployment the paper used (§4.1: 5 nodes, one
// Xeon E5645 each, input ≈128 GB).
type ClusterConfig struct {
	Nodes          int
	CoresPerNode   int
	FreqHz         float64
	DiskBWBytes    float64 // per node sequential disk bandwidth
	NetBWBytes     float64 // per node network bandwidth
	InputBytes     float64 // total dataset size at deployment scale
	ReplicationOut int     // HDFS-style output replication factor
}

// DefaultCluster returns the paper's testbed deployment.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Nodes:          5,
		CoresPerNode:   6,
		FreqHz:         2.40e9,
		DiskBWBytes:    150e6,
		NetBWBytes:     117e6, // 1 GbE
		InputBytes:     128e9,
		ReplicationOut: 3,
	}
}

// Class is the paper's system-behaviour class.
type Class int

// System behaviour classes (§3.2.1).
const (
	CPUIntensive Class = iota
	IOIntensive
	Hybrid
)

var classNames = []string{"CPU-Intensive", "IO-Intensive", "Hybrid"}

// String names the class.
func (c Class) String() string { return classNames[c] }

// Behaviour is a workload's modelled system behaviour at deployment
// scale.
type Behaviour struct {
	// CPUUtil is the fraction of wall time the CPUs execute.
	CPUUtil float64
	// IOWait is the fraction of time CPUs wait on outstanding disk I/O.
	IOWait float64
	// WeightedIOTime is the average weighted disk I/O time ratio
	// (queue-depth-weighted I/O time over run time, as read from
	// /proc/diskstats by the paper's methodology).
	WeightedIOTime float64
	// DiskBW and NetBW are the achieved bandwidths per node (bytes/s).
	DiskBW, NetBW float64
	// CPUSeconds and IOSeconds are the modelled totals.
	CPUSeconds, IOSeconds float64
	// Class is the §3.2.1 classification.
	Class Class
}

// Analyze models the deployment-scale system behaviour of a profiled
// run: res carries the byte tallies of the simulated run and v its
// micro-architectural vector (for IPC).
func Analyze(cfg ClusterConfig, res *workloads.Result, v metrics.Vector) Behaviour {
	var b Behaviour
	if res.InBytes == 0 || v[metrics.IPC] == 0 {
		b.Class = Hybrid
		return b
	}
	instPerByte := float64(res.Insts) / float64(res.InBytes)
	interRatio := float64(res.InterBytes) / float64(res.InBytes)
	outRatio := float64(res.OutBytes) / float64(res.InBytes)

	// Scale to the deployment input size; the stack's SysCPUFactor
	// stands in for the system-software instruction path the
	// simulation does not emit (see stack.Descriptor).
	sysFactor := res.Workload.Stack.SysCPUFactor
	if sysFactor <= 0 {
		sysFactor = 1
	}
	cw := res.CPUWeight
	if cw <= 0 {
		cw = 1
	}
	totalInsts := instPerByte * cfg.InputBytes * sysFactor * cw
	coreHz := v[metrics.IPC] * cfg.FreqHz
	b.CPUSeconds = totalInsts / coreHz / float64(cfg.Nodes*cfg.CoresPerNode)

	// Disk: read input once, spill+read intermediate locally, write
	// output with replication. Network: shuffle + replication copies.
	diskBytes := cfg.InputBytes * (1 + interRatio + outRatio*float64(cfg.ReplicationOut))
	netBytes := cfg.InputBytes * (interRatio + outRatio*float64(cfg.ReplicationOut-1))
	diskSec := diskBytes / (cfg.DiskBWBytes * float64(cfg.Nodes))
	netSec := netBytes / (cfg.NetBWBytes * float64(cfg.Nodes))
	b.IOSeconds = diskSec + netSec

	// Overlap model: data-parallel frameworks overlap compute with I/O
	// but not perfectly; the slower side dominates the wall time and a
	// fraction of the faster side leaks past the overlap.
	const overlap = 0.75
	slow := b.CPUSeconds
	if b.IOSeconds > slow {
		slow = b.IOSeconds
	}
	fast := b.CPUSeconds + b.IOSeconds - slow
	wall := slow + (1-overlap)*fast
	if wall <= 0 {
		b.Class = Hybrid
		return b
	}
	b.CPUUtil = b.CPUSeconds / wall
	if b.CPUUtil > 1 {
		b.CPUUtil = 1
	}
	b.IOWait = (b.IOSeconds - overlap*minF(b.CPUSeconds, b.IOSeconds)) / wall
	if b.IOWait < 0 {
		b.IOWait = 0
	}
	// Weighted I/O time: busy disk seconds times modelled queue depth.
	queueDepth := 1.5 + 4*interRatio + 2*outRatio
	b.WeightedIOTime = diskSec / wall * queueDepth
	b.DiskBW = diskBytes / wall / float64(cfg.Nodes)
	b.NetBW = netBytes / wall / float64(cfg.Nodes)

	b.Class = classify(b)
	return b
}

// classify applies the paper's §3.2.1 rule verbatim:
//  1. CPU utilization > 85% → CPU-intensive;
//  2. weighted disk I/O time ratio > 10, or I/O wait > 20% with CPU
//     utilization < 60% → I/O-intensive;
//  3. otherwise hybrid.
func classify(b Behaviour) Class {
	if b.CPUUtil > 0.85 {
		return CPUIntensive
	}
	if b.WeightedIOTime > 10 || (b.IOWait > 0.20 && b.CPUUtil < 0.60) {
		return IOIntensive
	}
	return Hybrid
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
