// Package metrics defines the 45-metric micro-architectural
// characterization vector the paper's WCRT methodology is built on
// (§3: "we choose 45 metrics from micro-architecture aspects, including
// instruction mix, cache and TLB behaviors, branch execution, pipeline
// behaviors, off-core requests and snoop response, parallelism, and
// operation intensity").
//
// The concrete 45 metrics here follow that grouping; the exact list the
// authors used was published only on the (now defunct) BigDataBench web
// page, so this is our documented reconstruction.
package metrics

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/machine"
)

// Metric indices into a Vector.
const (
	// Instruction mix (9).
	MixLoad = iota
	MixStore
	MixBranch
	MixInt
	MixFP
	IntAddrShare
	IntFPAddrShare
	IntOtherShare
	MemPerKI

	// Cache behaviour (10).
	L1IMPKI
	L1IMissRatio
	L1DMPKI
	L1DMissRatio
	L2MPKI
	L2MissRatio
	L3MPKI
	L3MissRatio
	L2InstShare
	L2TrafficBytesPerKI

	// TLB behaviour (4).
	ITLBMPKI
	ITLBMissRatio
	DTLBMPKI
	DTLBMissRatio

	// Branch execution (5).
	BrMispredictRatio
	BrMispredictMPKI
	BrTakenRatio
	BTBMissPerKI
	IndirectShare

	// Pipeline behaviour (6).
	IPC
	CPI
	FrontStallRatio
	BackStallRatio
	IMissStallPerKI
	MispredictStallPerKI

	// Off-core requests and snoop responses (4).
	OffcoreReqPerKI
	SnoopRespPerKI
	MemReadPerKI
	MemWritePerKI

	// Parallelism (2).
	ILP
	MLP

	// Operation intensity (3).
	FlopsPerByte
	IntOpsPerByte
	GFLOPS

	// Footprint (2).
	CodeFootprintKB
	DataFootprintMB

	// NumMetrics is the vector length (45).
	NumMetrics
)

// Vector is one workload's characterization.
type Vector [NumMetrics]float64

var names = [NumMetrics]string{
	"load ratio", "store ratio", "branch ratio", "integer ratio", "fp ratio",
	"int-addr share", "fp-addr share", "int-other share", "mem refs/KI",
	"L1I MPKI", "L1I miss ratio", "L1D MPKI", "L1D miss ratio",
	"L2 MPKI", "L2 miss ratio", "L3 MPKI", "L3 miss ratio",
	"L2 inst share", "L2 traffic B/KI",
	"ITLB MPKI", "ITLB miss ratio", "DTLB MPKI", "DTLB miss ratio",
	"br mispredict ratio", "br mispredict MPKI", "br taken ratio",
	"BTB miss/KI", "indirect share",
	"IPC", "CPI", "front-end stall ratio", "back-end stall ratio",
	"I-miss stall/KI", "mispredict stall/KI",
	"offcore req/KI", "snoop resp/KI", "mem read/KI", "mem write/KI",
	"ILP", "MLP",
	"flops/byte", "int-ops/byte", "GFLOPS",
	"code footprint KB", "data footprint MB",
}

// Name returns the human-readable name of metric i.
func Name(i int) string { return names[i] }

// Names returns all 45 metric names in index order.
func Names() []string {
	out := make([]string, NumMetrics)
	copy(out, names[:])
	return out
}

// Group identifies the paper's eight metric groups.
type Group int

// Metric groups per §3 of the paper.
const (
	GroupMix Group = iota
	GroupCache
	GroupTLB
	GroupBranch
	GroupPipeline
	GroupOffcore
	GroupParallelism
	GroupIntensity
)

var groupNames = []string{
	"instruction mix", "cache", "TLB", "branch execution",
	"pipeline", "off-core", "parallelism", "operation intensity",
}

// String names the group.
func (g Group) String() string { return groupNames[g] }

// GroupOf returns the group of metric i.
func GroupOf(i int) Group {
	switch {
	case i <= MemPerKI:
		return GroupMix
	case i <= L2TrafficBytesPerKI:
		return GroupCache
	case i <= DTLBMissRatio:
		return GroupTLB
	case i <= IndirectShare:
		return GroupBranch
	case i <= MispredictStallPerKI:
		return GroupPipeline
	case i <= MemWritePerKI:
		return GroupOffcore
	case i <= MLP:
		return GroupParallelism
	default:
		return GroupIntensity
	}
}

// Compute derives the 45-metric vector from a finished machine run.
func Compute(m *machine.Machine) Vector {
	var v Vector
	c := &m.C
	n := float64(c.Insts)
	if n == 0 {
		return v
	}
	ki := n / 1000

	// Instruction mix.
	intOps := float64(c.ByOp[isa.IntAlu] + c.ByOp[isa.IntAddr] + c.ByOp[isa.FPAddr] +
		c.ByOp[isa.IntMul] + c.ByOp[isa.IntDiv])
	fpOps := float64(c.ByOp[isa.FPArith] + c.ByOp[isa.FPDiv])
	v[MixLoad] = float64(c.ByOp[isa.Load]) / n
	v[MixStore] = float64(c.ByOp[isa.Store]) / n
	v[MixBranch] = float64(c.ByOp[isa.Branch]) / n
	v[MixInt] = intOps / n
	v[MixFP] = fpOps / n
	if intOps > 0 {
		v[IntAddrShare] = float64(c.ByOp[isa.IntAddr]) / intOps
		v[IntFPAddrShare] = float64(c.ByOp[isa.FPAddr]) / intOps
		v[IntOtherShare] = float64(c.ByOp[isa.IntAlu]+c.ByOp[isa.IntMul]+c.ByOp[isa.IntDiv]) / intOps
	}
	v[MemPerKI] = float64(c.ByOp[isa.Load]+c.ByOp[isa.Store]) / ki

	// Cache behaviour.
	h := m.H
	v[L1IMPKI] = float64(h.L1I.Misses) / ki
	v[L1IMissRatio] = h.L1I.MissRatio()
	v[L1DMPKI] = float64(h.L1D.Misses) / ki
	v[L1DMissRatio] = h.L1D.MissRatio()
	v[L2MPKI] = float64(h.L2.Misses) / ki
	v[L2MissRatio] = h.L2.MissRatio()
	if h.L3 != nil {
		v[L3MPKI] = float64(h.L3.Misses) / ki
		v[L3MissRatio] = h.L3.MissRatio()
	} else {
		v[L3MPKI] = float64(h.L2.Misses) / ki
		v[L3MissRatio] = h.L2.MissRatio()
	}
	if tot := h.L2IMiss + h.L2DMiss; tot > 0 {
		v[L2InstShare] = float64(h.L2IMiss) / float64(tot)
	}
	v[L2TrafficBytesPerKI] = float64(h.L2.Misses*64) / ki

	// TLB behaviour: the reported MPKI counts completed page walks
	// (misses in both TLB levels), matching the DTLB_MISSES.WALK
	// events perf reports on the testbed.
	v[ITLBMPKI] = float64(c.ITLBWalks) / ki
	if m.ITLB.Accesses > 0 {
		v[ITLBMissRatio] = float64(c.ITLBWalks) / float64(m.ITLB.Accesses)
	}
	v[DTLBMPKI] = float64(c.DTLBWalks) / ki
	if m.DTLB.Accesses > 0 {
		v[DTLBMissRatio] = float64(c.DTLBWalks) / float64(m.DTLB.Accesses)
	}

	// Branch execution.
	bs := m.BP.Stats()
	if c.Branches > 0 {
		v[BrMispredictRatio] = float64(c.Mispredict) / float64(c.Branches)
		v[BrTakenRatio] = float64(c.Taken) / float64(c.Branches)
		v[IndirectShare] = float64(bs.Indirect) / float64(c.Branches)
	}
	v[BrMispredictMPKI] = float64(c.Mispredict) / ki
	v[BTBMissPerKI] = float64(bs.BTBMisses) / ki

	// Pipeline behaviour.
	p := m.Pipe
	v[IPC] = p.IPC()
	if v[IPC] > 0 {
		v[CPI] = 1 / v[IPC]
	}
	v[FrontStallRatio] = p.FrontStall()
	idealCPI := 1 / float64(p.Config().CommitWidth)
	back := v[CPI] - idealCPI - v[FrontStallRatio]*v[CPI]
	if back < 0 {
		back = 0
	}
	if v[CPI] > 0 {
		v[BackStallRatio] = back / v[CPI]
	}
	v[IMissStallPerKI] = float64(p.IMissStall) / ki
	v[MispredictStallPerKI] = float64(p.MispredictStall) / ki

	// Off-core requests and snoop responses. Off-core demand requests
	// are L2 misses; every memory-bound request elicits one snoop
	// response in the modelled two-socket home-snooped system.
	v[OffcoreReqPerKI] = float64(h.L2IMiss+h.L2DMiss) / ki
	v[SnoopRespPerKI] = float64(h.MemReads) / ki
	v[MemReadPerKI] = float64(h.MemReads) / ki
	v[MemWritePerKI] = float64(h.MemWrites) / ki

	// Parallelism.
	v[ILP] = p.ILP()
	v[MLP] = p.MLP()

	// Operation intensity.
	memBytes := float64((h.MemReads + h.MemWrites) * 64)
	if memBytes > 0 {
		v[FlopsPerByte] = fpOps / memBytes
		v[IntOpsPerByte] = intOps / memBytes
	}
	if p.Cycles > 0 {
		v[GFLOPS] = fpOps * m.Cfg.FreqHz / float64(p.Cycles) / 1e9
	}

	// Footprint.
	v[CodeFootprintKB] = float64(m.CodeFootprintBytes()) / 1024
	v[DataFootprintMB] = float64(m.DataFootprintBytes()) / (1 << 20)

	return v
}
