package metrics

import (
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

func TestNumMetricsIs45(t *testing.T) {
	if NumMetrics != 45 {
		t.Fatalf("NumMetrics = %d; the paper's methodology uses 45", NumMetrics)
	}
	if len(Names()) != 45 {
		t.Fatal("Names() length != 45")
	}
	seen := map[string]bool{}
	for i := 0; i < NumMetrics; i++ {
		n := Name(i)
		if n == "" {
			t.Fatalf("metric %d unnamed", i)
		}
		if seen[n] {
			t.Fatalf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
}

func TestEightGroupsCovered(t *testing.T) {
	// §3: "instruction mix, cache and TLB behaviors, branch execution,
	// pipeline behaviors, off-core requests and snoop responses,
	// parallelism, and operation intensity".
	counts := map[Group]int{}
	for i := 0; i < NumMetrics; i++ {
		counts[GroupOf(i)]++
	}
	for g := GroupMix; g <= GroupIntensity; g++ {
		if counts[g] == 0 {
			t.Fatalf("metric group %v empty", g)
		}
		if g.String() == "" {
			t.Fatalf("group %d unnamed", g)
		}
	}
}

func TestComputeSanity(t *testing.T) {
	m := machine.New(machine.XeonE5645())
	w := workloads.Representative17()[14] // H-WordCount
	workloads.Run(w, m, 200_000)
	m.Finish()
	v := Compute(m)

	mixSum := v[MixLoad] + v[MixStore] + v[MixBranch] + v[MixInt] + v[MixFP]
	if mixSum < 0.98 || mixSum > 1.02 {
		t.Fatalf("instruction mix sums to %v, want ~1", mixSum)
	}
	intSum := v[IntAddrShare] + v[IntFPAddrShare] + v[IntOtherShare]
	if intSum < 0.98 || intSum > 1.02 {
		t.Fatalf("integer breakdown sums to %v, want ~1", intSum)
	}
	if v[IPC] <= 0 || v[IPC] > 4 {
		t.Fatalf("IPC %v out of (0,4]", v[IPC])
	}
	if v[CPI]*v[IPC] < 0.99 || v[CPI]*v[IPC] > 1.01 {
		t.Fatalf("CPI*IPC = %v, want 1", v[CPI]*v[IPC])
	}
	if v[L1IMPKI] < 0 || v[L1IMissRatio] < 0 || v[L1IMissRatio] > 1 {
		t.Fatal("L1I stats out of range")
	}
	if v[FrontStallRatio] < 0 || v[FrontStallRatio] > 1 {
		t.Fatalf("front stall ratio %v out of [0,1]", v[FrontStallRatio])
	}
	if v[BrTakenRatio] <= 0 || v[BrTakenRatio] > 1 {
		t.Fatalf("taken ratio %v out of (0,1]", v[BrTakenRatio])
	}
	if v[CodeFootprintKB] <= 0 || v[DataFootprintMB] <= 0 {
		t.Fatal("footprints not measured")
	}
	if v[ILP] < 1 {
		t.Fatalf("ILP %v < 1", v[ILP])
	}
	if v[MLP] < 1 {
		t.Fatalf("MLP %v < 1", v[MLP])
	}
}

func TestComputeEmptyMachine(t *testing.T) {
	m := machine.New(machine.XeonE5645())
	v := Compute(m)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("metric %s nonzero (%v) on an empty run", Name(i), x)
		}
	}
}

// TestL2HierarchyConsistency: L2 misses can never exceed L2 accesses,
// and LLC misses can never exceed L2 misses plus prefetch effects.
func TestHierarchyCounterConsistency(t *testing.T) {
	m := machine.New(machine.XeonE5645())
	workloads.Run(workloads.Representative17()[0], m, 150_000)
	m.Finish()
	h := m.H
	if h.L2.Misses > h.L2.Accesses {
		t.Fatal("L2 misses exceed accesses")
	}
	if h.L1I.Misses > h.L1I.Accesses || h.L1D.Misses > h.L1D.Accesses {
		t.Fatal("L1 misses exceed accesses")
	}
	if h.L2IMiss+h.L2DMiss != h.L2.Misses {
		t.Fatalf("L2 I/D split %d+%d != total %d", h.L2IMiss, h.L2DMiss, h.L2.Misses)
	}
}
