// Package core implements WCRT — the paper's workload characterization
// and reduction tool (§2.2, §3): profilers that collect the 45-metric
// micro-architectural vector for each workload, and a performance-data
// analyzer that normalizes the vectors to a Gaussian distribution,
// reduces dimensionality with PCA, clusters with K-means, and selects
// one representative workload per cluster — the procedure that reduces
// BigDataBench's 77 workloads to the 17 of Table 2.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/conc"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Profiler runs workloads on a machine model and collects their
// characterization vectors. It parallelizes across workloads; each run
// gets an independent machine, like WCRT's per-node profiler agents.
type Profiler struct {
	// Machine is the platform configuration profiled on.
	Machine machine.Config
	// Budget is the instruction budget per workload run.
	Budget int64
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// BlockSize is the trace-replay batch size (instructions per
	// delivered block; 0 = trace.DefaultBlockSize). Purely a plumbing
	// knob: every size produces byte-identical profiles.
	BlockSize int
}

// Profile is one workload's collected characterization.
type Profile struct {
	Workload workloads.Workload
	Vector   metrics.Vector
	Run      *workloads.Result
}

// Profile characterizes one workload on a fresh machine model. The
// machine consumes the trace through the block path (trace.BlockProbe),
// so the Table 2 / Fig. 1-5 profiling runs ride the batched hot loop.
func (p *Profiler) Profile(w workloads.Workload) Profile {
	prof, _ := p.ProfileCtx(nil, w) // a nil context never cancels
	return prof
}

// ProfileCtx is Profile bound to a context: a cancelled ctx aborts the
// simulation within a few thousand instructions and returns ctx.Err()
// with a zero Profile — a truncated run is never turned into a vector.
// A nil or background context behaves exactly like Profile.
func (p *Profiler) ProfileCtx(ctx context.Context, w workloads.Workload) (Profile, error) {
	m := machine.New(p.Machine)
	res, err := workloads.RunBlockCtx(ctx, w, m, p.Budget, p.BlockSize)
	if err != nil {
		return Profile{}, err
	}
	m.Finish()
	return Profile{Workload: w, Vector: metrics.Compute(m), Run: res}, nil
}

// ProfileAll characterizes every workload and returns profiles in
// input order.
func (p *Profiler) ProfileAll(list []workloads.Workload) []Profile {
	out := make([]Profile, len(list))
	conc.ForEach(p.Parallelism, len(list), func(i int) {
		out[i] = p.Profile(list[i])
	})
	return out
}

// Analyzer reduces a profiled workload set to representatives.
type Analyzer struct {
	// ExplainTarget is the PCA cumulative-variance threshold
	// (default 0.9).
	ExplainTarget float64
	// Seed drives the deterministic K-means++ initialization.
	Seed uint64
}

// Cluster is one cluster of the reduction.
type Cluster struct {
	// Members are indices into the profiled set.
	Members []int
	// Representative is the member closest to the centroid.
	Representative int
}

// Reduction is the outcome of the WCRT workload-subset procedure.
type Reduction struct {
	// K is the number of clusters.
	K int
	// Clusters are ordered by descending size (Table 2 order).
	Clusters []Cluster
	// Explained is the PCA variance retained.
	Explained float64
	// Dimensions is the number of principal components kept.
	Dimensions int
	// Projected is the PCA-space location of each workload.
	Projected *linalg.Matrix
	// Names echoes the workload IDs in profile order.
	Names []string
}

// Reduce clusters the profiles into k representatives (the paper's
// final result uses k=17). Pass k <= 0 to select k automatically with
// the analyzer's information criterion.
func (a *Analyzer) Reduce(profiles []Profile, k int) (*Reduction, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: Reduce with no profiles")
	}
	target := a.ExplainTarget
	if target == 0 {
		target = 0.9
	}
	x := linalg.NewMatrix(len(profiles), metrics.NumMetrics)
	names := make([]string, len(profiles))
	for i, p := range profiles {
		copy(x.Row(i), p.Vector[:])
		names[i] = p.Workload.ID
	}
	stats.Normalize(x)
	pca, err := stats.PCA(x, target)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k, err = stats.ChooseK(pca.Projected, 2, min(len(profiles)-1, 24), 1.0, a.Seed)
		if err != nil {
			return nil, err
		}
	}
	km, err := stats.KMeans(pca.Projected, k, a.Seed)
	if err != nil {
		return nil, err
	}
	clusters := make([]Cluster, k)
	for i, c := range km.Assign {
		clusters[c].Members = append(clusters[c].Members, i)
	}
	for c := range clusters {
		best, bestD := -1, 0.0
		for _, i := range clusters[c].Members {
			d := sqDist(pca.Projected.Row(i), km.Centroids.Row(c))
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		clusters[c].Representative = best
	}
	// Order clusters by descending size, as Table 2 lists them.
	sort.SliceStable(clusters, func(i, j int) bool {
		if len(clusters[i].Members) != len(clusters[j].Members) {
			return len(clusters[i].Members) > len(clusters[j].Members)
		}
		return clusters[i].Representative < clusters[j].Representative
	})
	return &Reduction{
		K:          k,
		Clusters:   clusters,
		Explained:  pca.Explained,
		Dimensions: pca.Projected.Cols,
		Projected:  pca.Projected,
		Names:      names,
	}, nil
}

// Representatives returns the representative workload IDs with the
// size of the cluster each one stands for (the parenthesized counts of
// Table 2).
func (r *Reduction) Representatives() []struct {
	ID    string
	Count int
} {
	out := make([]struct {
		ID    string
		Count int
	}, len(r.Clusters))
	for i, c := range r.Clusters {
		out[i].ID = r.Names[c.Representative]
		out[i].Count = len(c.Members)
	}
	return out
}

// Similarity returns the n-by-n euclidean distance matrix of the
// workloads in PCA space (the analyzer's visualization input).
func (r *Reduction) Similarity() *linalg.Matrix {
	n := r.Projected.Rows
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := sqDist(r.Projected.Row(i), r.Projected.Row(j))
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	return d
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		dd := a[i] - b[i]
		s += dd * dd
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
