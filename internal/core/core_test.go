package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim/machine"
	"repro/internal/workloads"
)

func profileSome(t *testing.T, list []workloads.Workload, budget int64) []Profile {
	t.Helper()
	p := &Profiler{Machine: machine.XeonE5645(), Budget: budget}
	return p.ProfileAll(list)
}

func TestProfileAllOrderAndCompleteness(t *testing.T) {
	list := workloads.MPI6()
	profiles := profileSome(t, list, 50_000)
	if len(profiles) != len(list) {
		t.Fatalf("%d profiles for %d workloads", len(profiles), len(list))
	}
	for i, p := range profiles {
		if p.Workload.ID != list[i].ID {
			t.Fatalf("profile %d out of order: %s != %s", i, p.Workload.ID, list[i].ID)
		}
		if p.Vector[metrics.IPC] <= 0 {
			t.Fatalf("%s: zero IPC", p.Workload.ID)
		}
		if p.Run == nil || p.Run.Insts == 0 {
			t.Fatalf("%s: missing run summary", p.Workload.ID)
		}
	}
}

func TestProfilerDeterministic(t *testing.T) {
	list := workloads.MPI6()[:2]
	a := profileSome(t, list, 40_000)
	b := profileSome(t, list, 40_000)
	for i := range a {
		if a[i].Vector != b[i].Vector {
			t.Fatalf("%s: repeated profiling differs", a[i].Workload.ID)
		}
	}
}

func TestReduceBasics(t *testing.T) {
	profiles := profileSome(t, append(workloads.MPI6(), workloads.Representative17()[:6]...), 40_000)
	a := &Analyzer{Seed: 1}
	red, err := a.Reduce(profiles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if red.K != 4 || len(red.Clusters) != 4 {
		t.Fatalf("reduction produced %d clusters, want 4", len(red.Clusters))
	}
	total := 0
	for _, c := range red.Clusters {
		total += len(c.Members)
		found := false
		for _, m := range c.Members {
			if m == c.Representative {
				found = true
			}
		}
		if !found {
			t.Fatal("representative not a member of its own cluster")
		}
	}
	if total != len(profiles) {
		t.Fatalf("cluster members sum to %d, want %d", total, len(profiles))
	}
	// Clusters ordered by descending size.
	for i := 1; i < len(red.Clusters); i++ {
		if len(red.Clusters[i].Members) > len(red.Clusters[i-1].Members) {
			t.Fatal("clusters not ordered by size")
		}
	}
	if red.Explained < 0.9 {
		t.Fatalf("PCA kept %.2f variance, target 0.9", red.Explained)
	}
	if red.Dimensions <= 0 || red.Dimensions > metrics.NumMetrics {
		t.Fatalf("PCA dimensions = %d", red.Dimensions)
	}
}

func TestReduceGroupsStackmates(t *testing.T) {
	// Two very different behaviours x two instances each: clustering
	// with k=2 should split by behaviour, not arbitrarily.
	list := []workloads.Workload{
		workloads.MPI6()[1],             // M-Kmeans
		workloads.MPI6()[1],             // duplicate behaviour
		workloads.Representative17()[0], // H-Read (service)
		workloads.Representative17()[0],
	}
	list[1].ID = "M-Kmeans-b"
	list[3].ID = "H-Read-b"
	profiles := profileSome(t, list, 60_000)
	a := &Analyzer{Seed: 3}
	red, err := a.Reduce(profiles, 2)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) int {
		for ci, c := range red.Clusters {
			for _, m := range c.Members {
				if red.Names[m] == name {
					return ci
				}
			}
		}
		return -1
	}
	if find("M-Kmeans") != find("M-Kmeans-b") {
		t.Fatal("identical workloads landed in different clusters")
	}
	if find("H-Read") != find("H-Read-b") {
		t.Fatal("identical service workloads landed in different clusters")
	}
	if find("M-Kmeans") == find("H-Read") {
		t.Fatal("compute kernel and service workload merged into one cluster")
	}
}

func TestReduceErrors(t *testing.T) {
	a := &Analyzer{}
	if _, err := a.Reduce(nil, 3); err == nil {
		t.Fatal("empty profile set accepted")
	}
	profiles := profileSome(t, workloads.MPI6()[:3], 30_000)
	if _, err := a.Reduce(profiles, 99); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestRepresentativesAndSimilarity(t *testing.T) {
	profiles := profileSome(t, workloads.MPI6(), 40_000)
	a := &Analyzer{Seed: 2}
	red, err := a.Reduce(profiles, 3)
	if err != nil {
		t.Fatal(err)
	}
	reps := red.Representatives()
	if len(reps) != 3 {
		t.Fatalf("%d representatives, want 3", len(reps))
	}
	sum := 0
	for _, r := range reps {
		sum += r.Count
	}
	if sum != len(profiles) {
		t.Fatalf("representative counts sum to %d, want %d", sum, len(profiles))
	}
	sim := red.Similarity()
	n := len(profiles)
	if sim.Rows != n || sim.Cols != n {
		t.Fatal("similarity matrix shape wrong")
	}
	for i := 0; i < n; i++ {
		if sim.At(i, i) != 0 {
			t.Fatal("self-distance nonzero")
		}
		for j := 0; j < n; j++ {
			if sim.At(i, j) != sim.At(j, i) {
				t.Fatal("similarity not symmetric")
			}
		}
	}
}
