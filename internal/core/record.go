package core

import (
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// ProfileRecord is the serializable form of a Profile: the 45-metric
// characterization vector plus the run summary, minus the live
// Workload (kernels hold closures no codec can round-trip). A record
// persists in the artifact store and rebinds onto the live workload
// it was profiled from.
type ProfileRecord struct {
	ID             string
	Vector         metrics.Vector
	Insts          uint64
	InBytes        uint64
	OutBytes       uint64
	InterBytes     uint64
	Records        uint64
	FrameworkShare float64
	CPUWeight      float64
}

// Record strips p to its serializable form.
func Record(p Profile) ProfileRecord {
	return ProfileRecord{
		ID:             p.Workload.ID,
		Vector:         p.Vector,
		Insts:          p.Run.Insts,
		InBytes:        p.Run.InBytes,
		OutBytes:       p.Run.OutBytes,
		InterBytes:     p.Run.InterBytes,
		Records:        p.Run.Records,
		FrameworkShare: p.Run.FrameworkShare,
		CPUWeight:      p.Run.CPUWeight,
	}
}

// Matches reports whether the record was profiled from w — the
// staleness check a store-loaded record must pass before rebinding.
func (r ProfileRecord) Matches(w workloads.Workload) bool { return r.ID == w.ID }

// Rebind reconstitutes the Profile for the live workload w. The
// result is identical to the Profile the original run produced.
func (r ProfileRecord) Rebind(w workloads.Workload) Profile {
	return Profile{
		Workload: w,
		Vector:   r.Vector,
		Run: &workloads.Result{
			Workload:       w,
			Insts:          r.Insts,
			InBytes:        r.InBytes,
			OutBytes:       r.OutBytes,
			InterBytes:     r.InterBytes,
			Records:        r.Records,
			FrameworkShare: r.FrameworkShare,
			CPUWeight:      r.CPUWeight,
		},
	}
}
