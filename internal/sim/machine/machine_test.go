package machine

import (
	"testing"

	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/xrand"
)

func TestPresetsBuild(t *testing.T) {
	for _, cfg := range []Config{XeonE5645(), AtomD510()} {
		m := New(cfg)
		if m.H == nil || m.Pipe == nil || m.BP == nil || m.STLB == nil {
			t.Fatalf("%s: incomplete machine", cfg.Name)
		}
	}
}

func TestXeonMatchesPaperTable3(t *testing.T) {
	cfg := XeonE5645()
	if cfg.Cores != 6 {
		t.Errorf("cores = %d, want 6", cfg.Cores)
	}
	if cfg.L1D.Size != 32<<10 || cfg.L1I.Size != 32<<10 {
		t.Error("L1 sizes != 32 KB")
	}
	if cfg.L2.Size != 256<<10 {
		t.Error("L2 != 256 KB")
	}
	if cfg.L3.Size != 12<<20 {
		t.Error("L3 != 12 MB")
	}
	if cfg.FreqHz != 2.40e9 {
		t.Error("frequency != 2.40 GHz")
	}
}

func TestAtomMatchesPaperTable4(t *testing.T) {
	cfg := AtomD510()
	if cfg.Predictor != PredTwoLevel {
		t.Error("Atom must use the two-level predictor")
	}
	if cfg.Pipe.MispredictPenalty != 15 {
		t.Errorf("Atom penalty = %d, want 15", cfg.Pipe.MispredictPenalty)
	}
	if !cfg.Pipe.InOrder {
		t.Error("Atom must be in-order")
	}
}

func runSynthetic(m *Machine, n int) {
	l := mem.NewLayout()
	r := trace.NewRoutine(l, "k", 32<<10)
	e := trace.NewEmitter(m, int64(n))
	e.Enter(r)
	base := l.Alloc(1 << 20)
	rng := xrand.New(1)
	top := e.Here()
	for e.OK() {
		v := e.Load(base+rng.Uint64n(1<<20)&^7, 8, isa.NoReg)
		e.Int(isa.IntAddr, v, isa.NoReg)
		e.Store(base+rng.Uint64n(1<<20)&^7, 8, v, isa.NoReg)
		e.Int(isa.IntAlu, v, isa.NoReg)
		e.Loop(top, true, v)
	}
}

func TestCountersConsistent(t *testing.T) {
	m := New(XeonE5645())
	runSynthetic(m, 10000)
	m.Finish()
	c := m.C
	if c.Insts != 10000 {
		t.Fatalf("insts = %d, want 10000", c.Insts)
	}
	var sum uint64
	for _, v := range c.ByOp {
		sum += v
	}
	if sum != c.Insts {
		t.Fatalf("op counts sum %d != insts %d", sum, c.Insts)
	}
	if c.Branches == 0 || c.Taken == 0 {
		t.Fatal("no branches counted")
	}
	if m.Pipe.Cycles == 0 {
		t.Fatal("no cycles accumulated")
	}
	if m.H.L1D.Accesses == 0 || m.H.L1I.Accesses != c.Insts {
		t.Fatal("cache access counts inconsistent")
	}
}

func TestFootprintTracking(t *testing.T) {
	m := New(XeonE5645())
	runSynthetic(m, 5000)
	if m.CodeFootprintBytes() == 0 {
		t.Fatal("no code footprint recorded")
	}
	if m.DataFootprintBytes() == 0 {
		t.Fatal("no data footprint recorded")
	}
	// 1 MB random data walk: footprint should approach 1 MB but never
	// exceed region + rounding.
	if m.DataFootprintBytes() > 2<<20 {
		t.Fatalf("data footprint %d way beyond the touched region", m.DataFootprintBytes())
	}
}

func TestSweepMonotonic(t *testing.T) {
	s := NewSweep(DefaultSweepSizesKB)
	l := mem.NewLayout()
	r := trace.NewRoutine(l, "k", 512<<10)
	e := trace.NewEmitter(s, 50000)
	st := trace.Stream{
		Mix: trace.Mix{Load: 0.3, Store: 0.1, Branch: 0.2, IntAddr: 0.2, Taken: 0.3},
		Pri: trace.NewRandomWalk(mem.HeapBase, 2<<20),
		Rng: xrand.New(2),
	}
	for e.OK() {
		st.Emit(e, r, e.Emitted()%r.Size, 1000)
	}
	for _, view := range [][]float64{s.InstMissRatios(), s.DataMissRatios(), s.UnifiedMissRatios()} {
		for i := 1; i < len(view); i++ {
			// LRU stack property: bigger caches never miss more
			// (allow a sliver of noise from set-count changes).
			if view[i] > view[i-1]*1.05+1e-9 {
				t.Fatalf("miss ratio not monotone: size %d KB %.4f -> %d KB %.4f",
					s.SizesKB[i-1], view[i-1], s.SizesKB[i], view[i])
			}
		}
	}
}
