package machine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestNewSweepSpecDefaultsMatchNewSweep pins that the spec constructor
// with zero overrides is the classic sweep: same geometry, identical
// curves for the same trace.
func TestNewSweepSpecDefaultsMatchNewSweep(t *testing.T) {
	sizes := []int{16, 64, 256}
	w := workloads.Representative17()[4] // S-WordCount
	const budget = 60_000

	ref := NewSweep(sizes)
	ref.Parallelism = 1
	workloads.Run(w, ref, budget)

	spec, err := NewSweepSpec(sizes, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallelism = 1
	workloads.Run(w, spec, budget)

	if !reflect.DeepEqual(ref.Curves(), spec.Curves()) {
		t.Fatal("default NewSweepSpec curves differ from NewSweep")
	}
}

// TestNewSweepSpecGeometryChangesCurves runs the same trace against a
// different associativity and line size and expects different miss
// behaviour — the overrides must actually reach the caches.
func TestNewSweepSpecGeometryChangesCurves(t *testing.T) {
	sizes := []int{16, 32}
	w := workloads.Representative17()[4]
	const budget = 60_000

	def := NewSweep(sizes)
	def.Parallelism = 1
	workloads.Run(w, def, budget)

	narrow, err := NewSweepSpec(sizes, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	narrow.Parallelism = 1
	workloads.Run(w, narrow, budget)

	if reflect.DeepEqual(def.Curves(), narrow.Curves()) {
		t.Fatal("2-way/128B curves identical to 8-way/64B — overrides ignored")
	}
}

// TestNewSweepSpecRejectsBadGeometry pins validation.
func TestNewSweepSpecRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		sizes      []int
		ways, line int
	}{
		{[]int{16}, 0, 48},   // line not a power of two
		{[]int{16}, 0, 4},    // line too small
		{[]int{16}, -1, 0},   // negative ways
		{[]int{16}, 3, 0},    // 16 KB not divisible into 3-way 64B sets
		{[]int{16}, 0, 8192}, // 16 KB smaller than one 8-way 8 KB-line set
	}
	for _, c := range cases {
		if _, err := NewSweepSpec(c.sizes, c.ways, c.line); err == nil {
			t.Errorf("NewSweepSpec(%v, %d, %d) accepted invalid geometry", c.sizes, c.ways, c.line)
		}
	}
}

// TestSweepCancelDrainsBlocks pins the drain path: a cancelled sweep
// ignores delivered blocks entirely (the caches see nothing), so an
// abandoned request stops paying replay cost immediately.
func TestSweepCancelDrainsBlocks(t *testing.T) {
	sw := NewSweep([]int{16, 32})
	sw.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	sw.Cancel = ctx.Done()
	cancel()

	w := workloads.Representative17()[4]
	workloads.Run(w, sw, 50_000)

	for _, c := range sw.icaches {
		if c.Accesses != 0 {
			t.Fatalf("cancelled sweep still accessed caches (%d accesses)", c.Accesses)
		}
	}
}
