package machine

import (
	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
)

// Sweep reproduces the methodology of the paper's locality study
// (§5.4, Fig. 6-9): an Atom-like in-order core with a two-level cache
// whose L1 capacity is varied from 16 KB to 8192 KB while the miss
// ratio is recorded. One Sweep evaluates all sizes in a single trace
// pass by maintaining an independent cache per size for each of the
// three views: instruction-only, data-only, and unified
// (instructions + data, Fig. 8).
//
// Sweep implements trace.Probe.
type Sweep struct {
	// SizesKB lists the evaluated L1 capacities.
	SizesKB []int

	icaches []*cache.Cache
	dcaches []*cache.Cache
	ucaches []*cache.Cache

	lastILine uint64
}

// DefaultSweepSizesKB are the paper's ten L1 capacities.
var DefaultSweepSizesKB = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// NewSweep builds a sweep over the given sizes (8-way, 64-byte lines
// per the paper's simulator configuration).
func NewSweep(sizesKB []int) *Sweep {
	s := &Sweep{SizesKB: sizesKB}
	for _, kb := range sizesKB {
		cfg := cache.Config{Size: kb << 10, Ways: 8, LineSize: 64, Latency: 1}
		cfg.Name = "sweepI"
		s.icaches = append(s.icaches, cache.New(cfg))
		cfg.Name = "sweepD"
		s.dcaches = append(s.dcaches, cache.New(cfg))
		cfg.Name = "sweepU"
		s.ucaches = append(s.ucaches, cache.New(cfg))
	}
	return s
}

// Inst implements trace.Probe.
//
// Instruction fetches are counted per fetched line (as MARSSx86's
// cache statistics do), so sequential code issues one I-access per
// 64-byte block; data references are counted per access.
func (s *Sweep) Inst(i *isa.Inst) {
	if line := i.PC >> 6; line != s.lastILine {
		s.lastILine = line
		for k := range s.icaches {
			s.icaches[k].Access(i.PC, false)
			s.ucaches[k].Access(i.PC, false)
		}
	}
	if i.Op == isa.Load || i.Op == isa.Store {
		wr := i.Op == isa.Store
		for k := range s.dcaches {
			s.dcaches[k].Access(i.Addr, wr)
			s.ucaches[k].Access(i.Addr, wr)
		}
	}
}

// Curves bundles the three per-size miss-ratio views a single Sweep
// trace pass produces. Extracting all views at once lets callers run
// each workload exactly once and share the result across the
// instruction, data and unified figures (Figs. 6-9).
type Curves struct {
	SizesKB []int
	Inst    []float64
	Data    []float64
	Unified []float64
}

// Curves extracts every view of the sweep in one call.
func (s *Sweep) Curves() Curves {
	return Curves{
		SizesKB: s.SizesKB,
		Inst:    s.InstMissRatios(),
		Data:    s.DataMissRatios(),
		Unified: s.UnifiedMissRatios(),
	}
}

// InstMissRatios returns the instruction-cache miss ratio per size.
func (s *Sweep) InstMissRatios() []float64 { return ratios(s.icaches) }

// DataMissRatios returns the data-cache miss ratio per size.
func (s *Sweep) DataMissRatios() []float64 { return ratios(s.dcaches) }

// UnifiedMissRatios returns the unified-cache miss ratio per size.
func (s *Sweep) UnifiedMissRatios() []float64 { return ratios(s.ucaches) }

func ratios(cs []*cache.Cache) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.MissRatio()
	}
	return out
}
