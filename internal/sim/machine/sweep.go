package machine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conc"
	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
)

// replayPool is the process-wide worker pool behind every sweep's
// per-block cache fan-out, created on first parallel replay. Sharing
// one GOMAXPROCS-sized pool amortizes goroutine creation across the
// thousands of blocks a trace pass delivers and caps total replay
// concurrency at the machine regardless of how many sweeps run at
// once (sweepGroup fans workloads out on top of this).
var (
	replayPoolOnce sync.Once
	replayPool     *conc.Pool
)

func sharedReplayPool() *conc.Pool {
	replayPoolOnce.Do(func() { replayPool = conc.NewPool(0) })
	return replayPool
}

// Sweep reproduces the methodology of the paper's locality study
// (§5.4, Fig. 6-9): an Atom-like in-order core with a two-level cache
// whose L1 capacity is varied from 16 KB to 8192 KB while the miss
// ratio is recorded. One Sweep evaluates all sizes in a single trace
// pass by maintaining an independent cache per size for each of the
// three views: instruction-only, data-only, and unified
// (instructions + data, Fig. 8).
//
// Sweep implements both trace.Probe (the retained per-instruction
// reference: every cache accessed inline, instruction by instruction)
// and trace.BlockProbe (the hot path: each block is decoded once into
// packed access streams, then the 30 caches replay those streams via
// cache.AccessBlock, fanned out across a bounded worker pool). The two
// paths produce bit-identical curves by construction — every cache
// sees the identical access sequence either way; the block path only
// changes when it looks.
type Sweep struct {
	// SizesKB lists the evaluated L1 capacities.
	SizesKB []int

	// Parallelism bounds the per-cache fan-out of block replay:
	// 1 replays serially in the calling goroutine; other values fan
	// the caches out across a shared process-wide worker pool (sized
	// by GOMAXPROCS) with at most Parallelism replays in flight for
	// this sweep (0 = no per-sweep bound beyond the pool). The caches
	// are independent, so every setting yields the same curves.
	Parallelism int

	// Cancel, when non-nil, aborts the replay: once the channel is
	// closed, InstBlock drains delivered blocks without touching the
	// caches. The curves are then truncated and must be discarded —
	// cancellation exists so an abandoned request stops burning CPU,
	// never to produce partial results.
	Cancel <-chan struct{}

	icaches []*cache.Cache
	dcaches []*cache.Cache
	ucaches []*cache.Cache

	blockDecoder
}

// blockDecoder turns instruction blocks into the three packed access
// streams every sweep engine replays: instruction lines (adjacent
// duplicates dropped, with the dedup state carried across blocks),
// data lines (consecutive same-line accesses merged into runs) and the
// unified interleaving (its own stream — order matters to LRU state).
// Sweep and StackSweep share it, so the two engines consume
// byte-identical streams by construction.
type blockDecoder struct {
	lastILine uint64
	lineShift uint

	// Per-block scratch streams, reused across blocks.
	iRecs, dRecs, uRecs []cache.Rec
}

// decode repacks one block, leaving the streams in iRecs/dRecs/uRecs
// (valid until the next call).
func (d *blockDecoder) decode(block []isa.Inst) {
	iRecs, dRecs, uRecs := d.iRecs[:0], d.dRecs[:0], d.uRecs[:0]
	last := d.lastILine
	shift := d.lineShift
	for k := range block {
		i := &block[k]
		if line := i.PC >> shift; line != last {
			last = line
			// Adjacent I records always name different lines (that is
			// the dedup), so no run merging is possible on the I side;
			// in the unified stream the preceding record can only be a
			// different I line or a data line from a disjoint region.
			rec := cache.PackRec(line, false)
			iRecs = append(iRecs, rec)
			uRecs = append(uRecs, rec)
		}
		if i.Op == isa.Load || i.Op == isa.Store {
			line := i.Addr >> shift
			write := i.Op == isa.Store
			// Sequential scans revisit a 64-byte line several times in
			// a row; merging the run into one record makes the revisit
			// O(1) in every consumer replaying it (the line is MRU
			// after its first access — only counters can change).
			if len(dRecs) == 0 || !cache.TryMerge(&dRecs[len(dRecs)-1], line, write) {
				dRecs = append(dRecs, cache.PackRec(line, write))
			}
			if len(uRecs) == 0 || !cache.TryMerge(&uRecs[len(uRecs)-1], line, write) {
				uRecs = append(uRecs, cache.PackRec(line, write))
			}
		}
	}
	d.lastILine = last
	d.iRecs, d.dRecs, d.uRecs = iRecs, dRecs, uRecs
}

// DefaultSweepSizesKB are the paper's ten L1 capacities.
var DefaultSweepSizesKB = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Default sweep-cache geometry (the paper's simulator configuration).
// The sweep's lineShift — log2 of the line size — packs line addresses
// once per access in the block decoder instead of letting every cache
// re-shift the byte address.
const (
	DefaultSweepWays      = 8
	DefaultSweepLineBytes = 64
)

// NewSweep builds a sweep over the given sizes (8-way, 64-byte lines
// per the paper's simulator configuration).
func NewSweep(sizesKB []int) *Sweep {
	s, err := NewSweepSpec(sizesKB, 0, 0)
	if err != nil {
		panic("machine: " + err.Error()) // default geometry is always valid
	}
	return s
}

// NewSweepSpec is NewSweep with the cache geometry overridable —
// the serving layer's ad-hoc scenarios sweep non-paper associativities
// and line sizes through it. ways and lineBytes of 0 select the
// defaults (8 ways, 64-byte lines); a non-power-of-two line size, or
// any size that does not divide into whole sets, is rejected rather
// than silently rounded.
func NewSweepSpec(sizesKB []int, ways, lineBytes int) (*Sweep, error) {
	if ways == 0 {
		ways = DefaultSweepWays
	}
	if lineBytes == 0 {
		lineBytes = DefaultSweepLineBytes
	}
	if ways < 1 {
		return nil, fmt.Errorf("machine: sweep ways %d < 1", ways)
	}
	if lineBytes < 8 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("machine: sweep line size %d not a power of two >= 8", lineBytes)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	s := &Sweep{SizesKB: sizesKB, blockDecoder: blockDecoder{lineShift: shift}}
	for _, kb := range sizesKB {
		cfg := cache.Config{Size: kb << 10, Ways: ways, LineSize: lineBytes, Latency: 1}
		if !cfg.Valid() {
			return nil, fmt.Errorf("machine: sweep size %d KB not divisible into %d-way sets of %d-byte lines",
				kb, ways, lineBytes)
		}
		cfg.Name = "sweepI"
		s.icaches = append(s.icaches, cache.New(cfg))
		cfg.Name = "sweepD"
		s.dcaches = append(s.dcaches, cache.New(cfg))
		cfg.Name = "sweepU"
		s.ucaches = append(s.ucaches, cache.New(cfg))
	}
	return s, nil
}

// Inst implements trace.Probe — the retained serial reference.
//
// Instruction fetches are counted per fetched line (as MARSSx86's
// cache statistics do), so sequential code issues one I-access per
// 64-byte block; data references are counted per access.
func (s *Sweep) Inst(i *isa.Inst) {
	if line := i.PC >> s.lineShift; line != s.lastILine {
		s.lastILine = line
		for k := range s.icaches {
			s.icaches[k].Access(i.PC, false)
			s.ucaches[k].Access(i.PC, false)
		}
	}
	if i.Op == isa.Load || i.Op == isa.Store {
		wr := i.Op == isa.Store
		for k := range s.dcaches {
			s.dcaches[k].Access(i.Addr, wr)
			s.ucaches[k].Access(i.Addr, wr)
		}
	}
}

// InstBlock implements trace.BlockProbe. Stage one decodes the block
// exactly once into three packed access streams — I-line dedup and
// same-line run merging applied here, once, instead of per cache —
// and stage two fans the 30 caches out across the worker pool, each
// replaying its view's stream through cache.AccessBlock. The streams
// are read-only during the fan-out and each cache is owned by exactly
// one worker, so the replay is deterministic under any schedule.
func (s *Sweep) InstBlock(block []isa.Inst) {
	if s.Cancel != nil {
		select {
		case <-s.Cancel:
			return // drain: the curves are already condemned
		default:
		}
	}
	s.decode(block)
	iRecs, dRecs, uRecs := s.iRecs, s.dRecs, s.uRecs

	n := len(s.icaches)
	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par == 1 {
		// Serial replay skips the pool; still one AccessBlock per
		// cache per block, which is where the batching win lives.
		for k := 0; k < n; k++ {
			s.icaches[k].AccessBlock(iRecs)
		}
		for k := 0; k < n; k++ {
			s.dcaches[k].AccessBlock(dRecs)
		}
		for k := 0; k < n; k++ {
			s.ucaches[k].AccessBlock(uRecs)
		}
		return
	}
	sharedReplayPool().ForEachN(par, 3*n, func(k int) {
		switch k / n {
		case 0:
			s.icaches[k%n].AccessBlock(iRecs)
		case 1:
			s.dcaches[k%n].AccessBlock(dRecs)
		default:
			s.ucaches[k%n].AccessBlock(uRecs)
		}
	})
}

// Curves bundles the three per-size miss-ratio views a single Sweep
// trace pass produces. Extracting all views at once lets callers run
// each workload exactly once and share the result across the
// instruction, data and unified figures (Figs. 6-9).
type Curves struct {
	SizesKB []int
	Inst    []float64
	Data    []float64
	Unified []float64
}

// Curves extracts every view of the sweep in one call.
func (s *Sweep) Curves() Curves {
	return Curves{
		SizesKB: s.SizesKB,
		Inst:    s.InstMissRatios(),
		Data:    s.DataMissRatios(),
		Unified: s.UnifiedMissRatios(),
	}
}

// InstMissRatios returns the instruction-cache miss ratio per size.
func (s *Sweep) InstMissRatios() []float64 { return ratios(s.icaches) }

// DataMissRatios returns the data-cache miss ratio per size.
func (s *Sweep) DataMissRatios() []float64 { return ratios(s.dcaches) }

// UnifiedMissRatios returns the unified-cache miss ratio per size.
func (s *Sweep) UnifiedMissRatios() []float64 { return ratios(s.ucaches) }

func ratios(cs []*cache.Cache) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.MissRatio()
	}
	return out
}
