package machine

import (
	"repro/internal/sim/cache"
	"repro/internal/sim/pipeline"
	"repro/internal/sim/tlb"
)

// XeonE5645 returns the configuration of the paper's testbed node
// (Table 3): a 6-core 2.40 GHz Westmere-EP Xeon with 32 KB L1I,
// 32 KB L1D, 256 KB L2 per core and a 12 MB shared L3, the hybrid
// branch predictor of Table 4, and a 4-wide out-of-order core.
func XeonE5645() Config {
	return Config{
		Name:              "Intel Xeon E5645",
		FreqHz:            2.40e9,
		Cores:             6,
		PeakFlopsPerCycle: 4, // 2 FP pipes x 128-bit SSE double

		L1I: cache.Config{Name: "L1I", Size: 32 << 10, Ways: 4, LineSize: 64, Latency: 4},
		L1D: cache.Config{Name: "L1D", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 4},
		L2:  cache.Config{Name: "L2", Size: 256 << 10, Ways: 8, LineSize: 64, Latency: 10},
		L3:  cache.Config{Name: "L3", Size: 12 << 20, Ways: 16, LineSize: 64, Latency: 38},

		MemLatency: 190,

		ITLB: tlb.Config{Name: "ITLB", Entries: 128, Ways: 4, WalkLatency: 20},
		DTLB: tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, WalkLatency: 25},

		Predictor: PredHybrid,
		Pipe: pipeline.Config{
			Name:              "ooo-4w",
			FetchWidth:        4,
			CommitWidth:       4,
			Window:            128,
			MispredictPenalty: 12,
			IntLat:            1,
			MulLat:            3,
			DivLat:            20,
			FPLat:             4,
			FPDivLat:          22,
			LoadLat:           [5]int{0, 4, 10, 38, 190},
			ITLBPenalty:       20,
			DTLBPenalty:       25,
		},
	}
}

// AtomD510 returns the configuration of the paper's low-power
// comparison platform (Table 4): a dual-core 1.66 GHz in-order Atom
// with the simple two-level predictor, a 128-entry BTB and a 15-cycle
// misprediction penalty. It has no L3.
func AtomD510() Config {
	return Config{
		Name:              "Intel Atom D510",
		FreqHz:            1.66e9,
		Cores:             2,
		PeakFlopsPerCycle: 1,

		L1I: cache.Config{Name: "L1I", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 3},
		L1D: cache.Config{Name: "L1D", Size: 24 << 10, Ways: 6, LineSize: 64, Latency: 3},
		L2:  cache.Config{Name: "L2", Size: 512 << 10, Ways: 8, LineSize: 64, Latency: 15},

		MemLatency: 170,

		ITLB: tlb.Config{Name: "ITLB", Entries: 32, Ways: 4, WalkLatency: 30},
		DTLB: tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, WalkLatency: 30},

		Predictor: PredTwoLevel,
		Pipe: pipeline.Config{
			Name:              "inorder-2w",
			FetchWidth:        2,
			CommitWidth:       2,
			Window:            16,
			InOrder:           true,
			MispredictPenalty: 15,
			IntLat:            1,
			MulLat:            5,
			DivLat:            30,
			FPLat:             5,
			FPDivLat:          32,
			LoadLat:           [5]int{0, 3, 15, 170, 170},
			ITLBPenalty:       30,
			DTLBPenalty:       30,
		},
	}
}
