package machine

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// driveSweep emits a mixed synthetic stream into e (the same workload
// shape TestSweepMonotonic uses, plus stores and sequential phases so
// run merging and dirty lines are exercised).
func driveSweep(e *trace.Emitter) {
	l := mem.NewLayout()
	r := trace.NewRoutine(l, "k", 256<<10)
	st := trace.Stream{
		Mix:  trace.Mix{Load: 0.25, Store: 0.12, Branch: 0.18, IntAddr: 0.2, Taken: 0.35, Chain: 0.3},
		Pri:  trace.NewWalk(mem.HeapBase, 4<<20, 8), // sequential: long mergeable runs
		Sec:  trace.NewRandomWalk(mem.HeapBase, 8<<20),
		SecP: 0.3,
		Rng:  xrand.New(11),
	}
	for e.OK() {
		st.Emit(e, r, e.Emitted()%r.Size, 500)
	}
	e.Flush()
}

// TestSweepBlockMatchesSerial is the replay-equivalence core: the
// block-based sweep (decode + fan-out) must produce bit-identical
// curves to the retained per-instruction path, for block sizes that
// are tiny, prime, exactly dividing the stream, and budget-truncated,
// and for serial and parallel cache fan-out.
func TestSweepBlockMatchesSerial(t *testing.T) {
	const budget = 60000
	ref := NewSweep(DefaultSweepSizesKB)
	driveSweep(trace.NewEmitter(trace.Unblocked(ref), budget))
	want := ref.Curves()
	if want.Inst[0] == 0 || want.Data[0] == 0 {
		t.Fatal("reference curves empty")
	}
	for _, bs := range []int{1, 7, 500, 4096, trace.DefaultBlockSize} {
		for _, par := range []int{1, 4} {
			sw := NewSweep(DefaultSweepSizesKB)
			sw.Parallelism = par
			driveSweep(trace.NewBlockEmitter(sw, budget, bs))
			if got := sw.Curves(); !reflect.DeepEqual(got, want) {
				t.Fatalf("block size %d, parallelism %d: curves differ from serial reference", bs, par)
			}
		}
	}
}

// TestSweepBlockRaceHammer drives several block sweeps with a wide
// cache fan-out concurrently; under -race this proves the per-cache
// parallel replay shares nothing but the read-only streams.
func TestSweepBlockRaceHammer(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]Curves, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw := NewSweep(DefaultSweepSizesKB)
			sw.Parallelism = 8
			driveSweep(trace.NewBlockEmitter(sw, 20000, 512))
			results[i] = sw.Curves()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent sweep %d diverged", i)
		}
	}
}

// TestMachineBlockMatchesSerial checks the Machine's block path leaves
// every counter identical to per-instruction delivery — the hoisted
// block-local tallies must flush to exactly what the per-instruction
// path accumulates, footprint bitmaps and sub-model state included.
func TestMachineBlockMatchesSerial(t *testing.T) {
	ref := New(XeonE5645())
	driveSweep(trace.NewEmitter(trace.Unblocked(ref), 30000))
	ref.Finish()
	for _, bs := range []int{1, 7, 64, 4096} {
		m := New(XeonE5645())
		driveSweep(trace.NewBlockEmitter(m, 30000, bs))
		m.Finish()
		if m.C != ref.C {
			t.Fatalf("block size %d: counters diverged", bs)
		}
		if m.Pipe.Cycles != ref.Pipe.Cycles {
			t.Fatalf("block size %d: cycle counts diverged", bs)
		}
		if m.H.L1I.Misses != ref.H.L1I.Misses || m.H.L2.Misses != ref.H.L2.Misses {
			t.Fatalf("block size %d: cache state diverged", bs)
		}
		if m.CodeFootprintBytes() != ref.CodeFootprintBytes() ||
			m.DataFootprintBytes() != ref.DataFootprintBytes() {
			t.Fatalf("block size %d: footprints diverged", bs)
		}
	}
}

// TestMachineBlockMatchesSerialWorkload repeats the byte-identity
// check over a real stack.Runtime-driven workload trace — the
// profiling path that motivated moving Machine.InstBlock onto a true
// block loop.
func TestMachineBlockMatchesSerialWorkload(t *testing.T) {
	w := workloads.Representative17()[14] // H-WordCount
	const budget = 60_000
	ref := New(XeonE5645())
	workloads.Run(w, trace.Unblocked(ref), budget)
	ref.Finish()
	for _, bs := range []int{1, 313, trace.DefaultBlockSize} {
		m := New(XeonE5645())
		workloads.RunBlock(w, m, budget, bs)
		m.Finish()
		if m.C != ref.C {
			t.Fatalf("block size %d: counters diverged", bs)
		}
		if m.Pipe.Cycles != ref.Pipe.Cycles {
			t.Fatalf("block size %d: cycle counts diverged", bs)
		}
		if m.CodeFootprintBytes() != ref.CodeFootprintBytes() ||
			m.DataFootprintBytes() != ref.DataFootprintBytes() {
			t.Fatalf("block size %d: footprints diverged", bs)
		}
	}
}
