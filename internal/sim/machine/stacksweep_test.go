package machine

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim/trace"
	"repro/internal/workloads"
)

// TestStackSweepMatchesReplayGeometries is the engine differential:
// for every associativity the scenarios sweep, non-default line sizes
// included, the stack-distance engine must produce bit-identical
// curves to the concrete-cache replay oracle over the same workload
// trace.
func TestStackSweepMatchesReplayGeometries(t *testing.T) {
	w := workloads.Representative17()[4] // S-WordCount
	const budget = 60_000
	cases := []struct {
		sizes      []int
		ways, line int
	}{
		{[]int{16, 64, 256, 1024}, 1, 0},
		{[]int{16, 64, 256, 1024}, 2, 0},
		{[]int{16, 64, 256, 1024}, 4, 0},
		{[]int{16, 64, 256, 1024}, 8, 0},
		{[]int{16, 64, 256, 1024}, 16, 0},
		{[]int{16, 32, 128}, 2, 32},
		{[]int{16, 32, 128}, 8, 128},
		{[]int{64, 512}, 4, 256},
	}
	for _, c := range cases {
		ref, err := NewSweepSpec(c.sizes, c.ways, c.line)
		if err != nil {
			t.Fatal(err)
		}
		ref.Parallelism = 1
		workloads.Run(w, ref, budget)
		want := ref.Curves()

		ss, err := NewStackSweep(c.line, SweepGeometry{SizesKB: c.sizes, Ways: c.ways})
		if err != nil {
			t.Fatal(err)
		}
		ss.Parallelism = 1
		workloads.Run(w, ss, budget)
		if got := ss.Curves(0); !reflect.DeepEqual(got, want) {
			t.Errorf("ways=%d line=%d: stackdist curves diverge from replay\n got %+v\nwant %+v",
				c.ways, c.line, got, want)
		}
	}
}

// TestStackSweepMultiGeometryOnePass runs four geometries through one
// StackSweep pass and requires each to match its own dedicated replay
// sweep — the whole point of the engine: N geometries, one trace pass.
func TestStackSweepMultiGeometryOnePass(t *testing.T) {
	w := workloads.Representative17()[14] // H-WordCount
	const budget = 60_000
	sizes := DefaultSweepSizesKB[:6]
	geoms := []SweepGeometry{
		{SizesKB: sizes, Ways: 1},
		{SizesKB: sizes, Ways: 2},
		{SizesKB: sizes, Ways: 8},
		{SizesKB: []int{16, 64, 512}, Ways: 16},
	}
	ss, err := NewStackSweep(0, geoms...)
	if err != nil {
		t.Fatal(err)
	}
	ss.Parallelism = 2
	workloads.Run(w, ss, budget)
	for g, geom := range geoms {
		ref, err := NewSweepSpec(geom.SizesKB, geom.Ways, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref.Parallelism = 1
		workloads.Run(w, ref, budget)
		if got := ss.Curves(g); !reflect.DeepEqual(got, ref.Curves()) {
			t.Errorf("geometry %d (ways=%d): shared-pass curves diverge from dedicated replay", g, geom.Ways)
		}
	}
}

// TestStackSweepBlockMatchesSerial pins block delivery (decode + fan
// out, truncated tails included) to the per-instruction reference, for
// tiny, prime, and budget-truncated block sizes.
func TestStackSweepBlockMatchesSerial(t *testing.T) {
	const budget = 60_000
	mk := func() *StackSweep {
		ss, err := NewStackSweep(0, SweepGeometry{SizesKB: DefaultSweepSizesKB, Ways: 8},
			SweepGeometry{SizesKB: []int{16, 128}, Ways: 1}) // direct-mapped: distinct set counts stay live
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	ref := mk()
	driveSweep(trace.NewEmitter(trace.Unblocked(ref), budget))
	want := [2]Curves{ref.Curves(0), ref.Curves(1)}
	if want[0].Inst[0] == 0 || want[0].Data[0] == 0 {
		t.Fatal("reference curves empty")
	}
	for _, bs := range []int{1, 7, 500, 4096, trace.DefaultBlockSize} {
		for _, par := range []int{1, 4} {
			ss := mk()
			ss.Parallelism = par
			driveSweep(trace.NewBlockEmitter(ss, budget, bs))
			if got := [2]Curves{ss.Curves(0), ss.Curves(1)}; !reflect.DeepEqual(got, want) {
				t.Fatalf("block size %d, parallelism %d: curves differ from serial reference", bs, par)
			}
		}
	}
}

// TestStackSweepRaceHammer drives concurrent multi-geometry stack
// sweeps with a wide fan-out; under -race this proves the accumulators
// share nothing but the read-only streams.
func TestStackSweepRaceHammer(t *testing.T) {
	geoms := []SweepGeometry{
		{SizesKB: DefaultSweepSizesKB, Ways: 8},
		{SizesKB: DefaultSweepSizesKB, Ways: 2},
		{SizesKB: []int{16, 256}, Ways: 16},
	}
	var wg sync.WaitGroup
	results := make([][]Curves, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ss, err := NewStackSweep(0, geoms...)
			if err != nil {
				panic(err)
			}
			ss.Parallelism = 8
			driveSweep(trace.NewBlockEmitter(ss, 20000, 512))
			results[i] = []Curves{ss.Curves(0), ss.Curves(1), ss.Curves(2)}
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent stack sweep %d diverged", i)
		}
	}
}

// TestStackSweepRejectsBadGeometry pins validation parity with
// NewSweepSpec.
func TestStackSweepRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		sizes      []int
		ways, line int
	}{
		{[]int{16}, 0, 48},   // line not a power of two
		{[]int{16}, 0, 4},    // line too small
		{[]int{16}, -1, 0},   // negative ways
		{[]int{16}, 3, 0},    // 16 KB not divisible into 3-way 64B sets
		{[]int{16}, 0, 8192}, // 16 KB smaller than one 8-way 8 KB-line set
	}
	for _, c := range cases {
		if _, err := NewStackSweep(c.line, SweepGeometry{SizesKB: c.sizes, Ways: c.ways}); err == nil {
			t.Errorf("NewStackSweep(%d, ways=%d, %v) accepted invalid geometry", c.line, c.ways, c.sizes)
		}
	}
	if _, err := NewStackSweep(0); err == nil {
		t.Error("NewStackSweep with no geometries accepted")
	}
}

// TestStackSweepCancelDrainsBlocks pins the drain path: a cancelled
// stack sweep accounts nothing after the channel closes.
func TestStackSweepCancelDrainsBlocks(t *testing.T) {
	ss, err := NewStackSweep(0, SweepGeometry{SizesKB: []int{16, 32}, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	ss.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	ss.Cancel = ctx.Done()
	cancel()
	workloads.Run(workloads.Representative17()[4], ss, 50_000)
	for _, st := range ss.istacks {
		if st.Accesses() != 0 {
			t.Fatalf("cancelled stack sweep still accounted %d accesses", st.Accesses())
		}
	}
}
