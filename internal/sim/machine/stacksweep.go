package machine

import (
	"fmt"
	"runtime"

	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
	"repro/internal/sim/stackdist"
)

// SweepGeometry requests one miss-ratio curve from a StackSweep: the
// swept L1 capacities at one associativity. The line size is shared by
// the whole StackSweep (stack-distance accounting is exact across
// sizes and ways at a fixed line size; a different line size changes
// the access stream itself and needs its own pass).
type SweepGeometry struct {
	// SizesKB lists the evaluated capacities (0 ways selects the
	// default, as in NewSweepSpec).
	SizesKB []int
	Ways    int
}

// StackSweep is the single-pass sweep engine: instead of replaying the
// trace through one concrete cache per (size, view), it feeds the same
// packed streams into one stack-distance accumulator per distinct set
// count and view, then derives every requested geometry's miss ratios
// arithmetically from the reuse-depth histograms (stackdist.Stack).
// One trace pass therefore prices *all* geometries at the shared line
// size — the marginal cost of an extra geometry is at most one more
// set count to maintain, usually zero.
//
// It consumes exactly the streams Sweep does (the shared blockDecoder:
// I-line dedup, D-side run merging, unified interleaving) and its
// Curves are bit-identical to Sweep's for every geometry — Sweep
// remains the differential oracle proving that.
//
// Like Sweep it implements both trace.Probe (serial reference) and
// trace.BlockProbe (the hot path, with the per-(view, set count)
// accumulators fanned out across the shared replay pool).
type StackSweep struct {
	// Parallelism bounds the per-accumulator fan-out of block replay,
	// exactly as Sweep.Parallelism does for caches.
	Parallelism int

	// Cancel, when non-nil, makes InstBlock drain without accounting
	// once closed; the histograms are then truncated and must be
	// discarded.
	Cancel <-chan struct{}

	blockDecoder

	geoms     []SweepGeometry
	lineBytes int

	setCounts []int
	depths    []int // per set count: the max ways any geometry reads at it
	setIdx    map[int]int
	istacks   []*stackdist.Stack
	dstacks   []*stackdist.Stack
	ustacks   []*stackdist.Stack
}

// NewStackSweep builds a single-pass sweep over any number of
// geometries sharing one line size. Ways and lineBytes of 0 select the
// paper defaults; validation matches NewSweepSpec exactly (invalid
// line sizes and non-dividing capacities are rejected, never rounded).
func NewStackSweep(lineBytes int, geoms ...SweepGeometry) (*StackSweep, error) {
	if len(geoms) == 0 {
		return nil, fmt.Errorf("machine: stack sweep with no geometries")
	}
	if lineBytes == 0 {
		lineBytes = DefaultSweepLineBytes
	}
	if lineBytes < 8 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("machine: sweep line size %d not a power of two >= 8", lineBytes)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	s := &StackSweep{
		lineBytes:    lineBytes,
		blockDecoder: blockDecoder{lineShift: shift},
		setIdx:       map[int]int{},
	}
	for _, g := range geoms {
		if g.Ways == 0 {
			g.Ways = DefaultSweepWays
		}
		if g.Ways < 1 {
			return nil, fmt.Errorf("machine: sweep ways %d < 1", g.Ways)
		}
		for _, kb := range g.SizesKB {
			cfg := cache.Config{Name: "sweep", Size: kb << 10, Ways: g.Ways, LineSize: lineBytes, Latency: 1}
			if !cfg.Valid() {
				return nil, fmt.Errorf("machine: sweep size %d KB not divisible into %d-way sets of %d-byte lines",
					kb, g.Ways, lineBytes)
			}
			// Stacks only track as deep as the deepest reader of this
			// set count: a set count serving only a 1-way geometry keeps
			// a depth-1 stack (one compare per access), which is what
			// keeps many-geometry passes near-flat.
			sets := (kb << 10) / (g.Ways * lineBytes)
			if idx, ok := s.setIdx[sets]; ok {
				if g.Ways > s.depths[idx] {
					s.depths[idx] = g.Ways
				}
			} else {
				s.setIdx[sets] = len(s.setCounts)
				s.setCounts = append(s.setCounts, sets)
				s.depths = append(s.depths, g.Ways)
			}
		}
		s.geoms = append(s.geoms, g)
	}
	for i, sets := range s.setCounts {
		s.istacks = append(s.istacks, stackdist.New(sets, s.depths[i]))
		s.dstacks = append(s.dstacks, stackdist.New(sets, s.depths[i]))
		s.ustacks = append(s.ustacks, stackdist.New(sets, s.depths[i]))
	}
	return s, nil
}

// Geometries returns the requested geometries in construction order
// (Ways resolved to the default where 0 was passed).
func (s *StackSweep) Geometries() []SweepGeometry { return s.geoms }

// Inst implements trace.Probe — the serial reference, accounting every
// access inline with the same I-line dedup Sweep.Inst applies. Run
// merging is a block-path packing detail; the per-access and packed
// forms accumulate identical histograms (a merged repeat is a depth-0
// hit by construction).
func (s *StackSweep) Inst(i *isa.Inst) {
	if line := i.PC >> s.lineShift; line != s.lastILine {
		s.lastILine = line
		for k := range s.istacks {
			s.istacks[k].Access(line, 0)
			s.ustacks[k].Access(line, 0)
		}
	}
	if i.Op == isa.Load || i.Op == isa.Store {
		line := i.Addr >> s.lineShift
		for k := range s.dstacks {
			s.dstacks[k].Access(line, 0)
			s.ustacks[k].Access(line, 0)
		}
	}
}

// InstBlock implements trace.BlockProbe: decode once (shared with
// Sweep), then replay the three streams into every set count's
// accumulators. Each accumulator is owned by exactly one worker and
// the streams are read-only during the fan-out, so any schedule
// produces the same histograms.
func (s *StackSweep) InstBlock(block []isa.Inst) {
	if s.Cancel != nil {
		select {
		case <-s.Cancel:
			return // drain: the histograms are already condemned
		default:
		}
	}
	s.decode(block)
	iRecs, dRecs, uRecs := s.iRecs, s.dRecs, s.uRecs

	n := len(s.istacks)
	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par == 1 || n == 1 {
		for k := 0; k < n; k++ {
			s.istacks[k].AccessBlock(iRecs)
		}
		for k := 0; k < n; k++ {
			s.dstacks[k].AccessBlock(dRecs)
		}
		for k := 0; k < n; k++ {
			s.ustacks[k].AccessBlock(uRecs)
		}
		return
	}
	sharedReplayPool().ForEachN(par, 3*n, func(k int) {
		switch k / n {
		case 0:
			s.istacks[k%n].AccessBlock(iRecs)
		case 1:
			s.dstacks[k%n].AccessBlock(dRecs)
		default:
			s.ustacks[k%n].AccessBlock(uRecs)
		}
	})
}

// Curves derives geometry g's three miss-ratio views from the
// histograms — Sweep.Curves()-compatible, bit-identical to what the
// concrete caches would have reported.
func (s *StackSweep) Curves(g int) Curves {
	geom := s.geoms[g]
	out := Curves{
		SizesKB: geom.SizesKB,
		Inst:    make([]float64, len(geom.SizesKB)),
		Data:    make([]float64, len(geom.SizesKB)),
		Unified: make([]float64, len(geom.SizesKB)),
	}
	for j, kb := range geom.SizesKB {
		idx := s.setIdx[(kb<<10)/(geom.Ways*s.lineBytes)]
		out.Inst[j] = s.istacks[idx].MissRatio(geom.Ways)
		out.Data[j] = s.dstacks[idx].MissRatio(geom.Ways)
		out.Unified[j] = s.ustacks[idx].MissRatio(geom.Ways)
	}
	return out
}
