// Package machine composes the cache hierarchy, TLBs, branch predictor
// and pipeline into a full per-core performance model that consumes an
// instrumented instruction stream (trace.Probe) and exposes the raw
// counters from which the 45-metric characterization vector is derived.
package machine

import (
	"repro/internal/sim/branch"
	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/pipeline"
	"repro/internal/sim/tlb"
)

// PredictorKind selects a branch predictor organization.
type PredictorKind int

const (
	// PredHybrid is the Xeon-E5645-class hybrid predictor.
	PredHybrid PredictorKind = iota
	// PredTwoLevel is the Atom-D510-class two-level predictor.
	PredTwoLevel
)

// Config describes a complete modelled node (one core of it is
// simulated; Cores and FreqHz feed the system model and the GFLOPS
// arithmetic).
type Config struct {
	// Name labels the machine model in reports.
	Name string
	// FreqHz is the core clock.
	FreqHz float64
	// Cores is the socket core count.
	Cores int
	// PeakFlopsPerCycle is the per-core FP issue capability used for
	// the paper's peak-GFLOPS observation (§5.1 implications).
	PeakFlopsPerCycle int

	L1I, L1D, L2, L3 cache.Config
	MemLatency       int
	// ITLB and DTLB are the first-level TLBs; STLB the shared second
	// level whose coverage is what keeps real-world TLB walk rates low.
	ITLB, DTLB, STLB tlb.Config
	Predictor        PredictorKind
	Pipe             pipeline.Config
}

// Counters aggregates the per-run events not already counted inside
// the sub-models.
type Counters struct {
	Insts      uint64
	ByOp       [isa.NumOps]uint64
	Branches   uint64
	Taken      uint64
	Mispredict uint64
	LoadBytes  uint64
	StoreBytes uint64
	// ITLBWalks and DTLBWalks count translations that missed both TLB
	// levels (completed page walks — the events behind Fig. 5's MPKI).
	ITLBWalks, DTLBWalks uint64
}

// Machine is one modelled core plus its memory system. It implements
// trace.Probe. Construct with New; one Machine serves one workload run.
type Machine struct {
	Cfg  Config
	H    *cache.Hierarchy
	ITLB *tlb.TLB
	DTLB *tlb.TLB
	STLB *tlb.TLB
	BP   branch.Predictor
	Pipe *pipeline.Model
	C    Counters

	codeLines bitmap // touched text-segment cache lines
	dataPages bitmap // touched heap/stack pages
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	var bp branch.Predictor
	switch cfg.Predictor {
	case PredTwoLevel:
		bp = branch.NewTwoLevel()
	default:
		bp = branch.NewHybrid()
	}
	stlb := cfg.STLB
	if stlb.Entries == 0 {
		stlb = tlb.Config{Name: "STLB", Entries: 512, Ways: 4, WalkLatency: 25}
	}
	m := &Machine{
		Cfg:  cfg,
		H:    cache.NewHierarchy(cfg.L1I, cfg.L1D, cfg.L2, cfg.L3, cfg.MemLatency),
		ITLB: tlb.New(cfg.ITLB),
		DTLB: tlb.New(cfg.DTLB),
		STLB: tlb.New(stlb),
		BP:   bp,
		Pipe: pipeline.New(cfg.Pipe),
	}
	m.codeLines = newBitmap((mem.CodeLimit - mem.CodeBase) / mem.LineSize)
	m.dataPages = newBitmap((mem.HeapLimit - mem.HeapBase) / mem.PageSize)
	return m
}

// SetPredictor swaps the branch predictor (used by the Table 4
// experiment to run the same stream against both organizations).
func (m *Machine) SetPredictor(p branch.Predictor) { m.BP = p }

// Inst implements trace.Probe.
func (m *Machine) Inst(i *isa.Inst) {
	c := &m.C
	c.Insts++
	c.ByOp[i.Op]++

	ilevel := m.H.Fetch(i.PC)
	itlbExtra := 0
	if m.ITLB.Access(i.PC) {
		if m.STLB.Access(i.PC) {
			itlbExtra = m.STLB.Config().WalkLatency
			c.ITLBWalks++
		} else {
			itlbExtra = stlbHitLatency
		}
	}
	if i.PC >= mem.CodeBase && i.PC < mem.CodeLimit {
		m.codeLines.set((i.PC - mem.CodeBase) / mem.LineSize)
	}

	mispredict := false
	frontExtra := itlbExtra
	if i.Op == isa.Branch {
		c.Branches++
		if i.Taken {
			c.Taken++
		}
		var redirect bool
		mispredict, redirect = m.BP.Access(i)
		if mispredict {
			c.Mispredict++
		}
		if redirect {
			frontExtra += btbRedirectCycles
		}
	}

	dlevel := 0
	dtlbExtra := 0
	if i.Op == isa.Load || i.Op == isa.Store {
		dlevel = m.H.Data(i.Addr, i.Op == isa.Store)
		if m.DTLB.Access(i.Addr) {
			if m.STLB.Access(i.Addr) {
				dtlbExtra = m.STLB.Config().WalkLatency
				c.DTLBWalks++
			} else {
				dtlbExtra = stlbHitLatency
			}
		}
		if i.Op == isa.Load {
			c.LoadBytes += uint64(i.Size)
		} else {
			c.StoreBytes += uint64(i.Size)
		}
		if i.Addr >= mem.HeapBase && i.Addr < mem.HeapLimit {
			m.dataPages.set((i.Addr - mem.HeapBase) / mem.PageSize)
		}
	}

	m.Pipe.Step(i, ilevel, dlevel, mispredict, frontExtra, dtlbExtra)
}

// InstBlock implements trace.BlockProbe. The pipeline, predictor and
// TLB models are inherently sequential, so the block is consumed in
// order; the block path instead hoists the bookkeeping out of the
// per-instruction loop — sub-model pointers and the walk latency load
// once per block, the event counters accumulate in locals and flush
// into Counters once per block. The models see the same calls in the
// same order as per-instruction delivery, so state and counters are
// bit-identical; only how the tallies are kept changes.
func (m *Machine) InstBlock(block []isa.Inst) {
	if len(block) == 0 {
		return
	}
	h, itlb, dtlb, stlb, bp, pipe := m.H, m.ITLB, m.DTLB, m.STLB, m.BP, m.Pipe
	walkLatency := stlb.Config().WalkLatency
	var byOp [isa.NumOps]uint64
	var branches, taken, mispredicts uint64
	var loadBytes, storeBytes uint64
	var itlbWalks, dtlbWalks uint64
	for k := range block {
		i := &block[k]
		byOp[i.Op]++

		ilevel := h.Fetch(i.PC)
		itlbExtra := 0
		if itlb.Access(i.PC) {
			if stlb.Access(i.PC) {
				itlbExtra = walkLatency
				itlbWalks++
			} else {
				itlbExtra = stlbHitLatency
			}
		}
		if i.PC >= mem.CodeBase && i.PC < mem.CodeLimit {
			m.codeLines.set((i.PC - mem.CodeBase) / mem.LineSize)
		}

		mispredict := false
		frontExtra := itlbExtra
		if i.Op == isa.Branch {
			branches++
			if i.Taken {
				taken++
			}
			var redirect bool
			mispredict, redirect = bp.Access(i)
			if mispredict {
				mispredicts++
			}
			if redirect {
				frontExtra += btbRedirectCycles
			}
		}

		dlevel := 0
		dtlbExtra := 0
		if i.Op == isa.Load || i.Op == isa.Store {
			dlevel = h.Data(i.Addr, i.Op == isa.Store)
			if dtlb.Access(i.Addr) {
				if stlb.Access(i.Addr) {
					dtlbExtra = walkLatency
					dtlbWalks++
				} else {
					dtlbExtra = stlbHitLatency
				}
			}
			if i.Op == isa.Load {
				loadBytes += uint64(i.Size)
			} else {
				storeBytes += uint64(i.Size)
			}
			if i.Addr >= mem.HeapBase && i.Addr < mem.HeapLimit {
				m.dataPages.set((i.Addr - mem.HeapBase) / mem.PageSize)
			}
		}

		pipe.Step(i, ilevel, dlevel, mispredict, frontExtra, dtlbExtra)
	}
	c := &m.C
	c.Insts += uint64(len(block))
	for op, n := range byOp {
		c.ByOp[op] += n
	}
	c.Branches += branches
	c.Taken += taken
	c.Mispredict += mispredicts
	c.LoadBytes += loadBytes
	c.StoreBytes += storeBytes
	c.ITLBWalks += itlbWalks
	c.DTLBWalks += dtlbWalks
}

// stlbHitLatency is the extra latency of a first-level TLB miss that
// hits the second-level TLB.
const stlbHitLatency = 7

// btbRedirectCycles is the decode-time fetch bubble when a taken
// branch's target was absent from the BTB.
const btbRedirectCycles = 3

// Finish completes end-of-run accounting. Call once before reading
// counters or deriving metrics.
func (m *Machine) Finish() {
	m.H.FinishWritebacks()
}

// CodeFootprintBytes returns the bytes of distinct text-segment cache
// lines touched — the instruction footprint the paper discusses in
// §5.4 (Hadoop ≈ 1 MB vs PARSEC ≈ 128 KB).
func (m *Machine) CodeFootprintBytes() uint64 {
	return m.codeLines.count() * mem.LineSize
}

// DataFootprintBytes returns the bytes of distinct data pages touched.
func (m *Machine) DataFootprintBytes() uint64 {
	return m.dataPages.count() * mem.PageSize
}

// bitmap is a fixed-size bit set.
type bitmap []uint64

func newBitmap(bits uint64) bitmap {
	return make(bitmap, (bits+63)/64)
}

func (b bitmap) set(i uint64) {
	w := i / 64
	if w < uint64(len(b)) {
		b[w] |= 1 << (i % 64)
	}
}

func (b bitmap) count() uint64 {
	var n uint64
	for _, w := range b {
		n += uint64(popcount(w))
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
