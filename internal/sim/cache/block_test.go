package cache

import (
	"testing"

	"repro/internal/xrand"
)

// genStream builds a reproducible access stream with sequential runs
// (mergeable), random jumps, and mixed writes.
func genStream(seed uint64, n int) []struct {
	addr  uint64
	write bool
} {
	rng := xrand.New(seed)
	out := make([]struct {
		addr  uint64
		write bool
	}, 0, n)
	addr := uint64(0x10000)
	for len(out) < n {
		switch rng.Uint64n(4) {
		case 0: // sequential run within and across lines
			run := int(rng.Uint64n(20)) + 1
			for i := 0; i < run && len(out) < n; i++ {
				out = append(out, struct {
					addr  uint64
					write bool
				}{addr, rng.Uint64n(5) == 0})
				addr += 8
			}
		case 1: // random jump
			addr = rng.Uint64n(1 << 22)
		default: // re-touch the current line
			out = append(out, struct {
				addr  uint64
				write bool
			}{addr, rng.Uint64n(3) == 0})
		}
	}
	return out
}

// replayState snapshots everything observable about a cache after a
// replay, plus behavioural probes (a follow-up access pattern) that
// expose replacement-state differences the counters might mask.
type replayState struct {
	accesses, misses, writebacks uint64
	probeHits                    int
}

func runSerial(cfg Config, seed uint64, n int) (*Cache, replayState) {
	c := New(cfg)
	for _, a := range genStream(seed, n) {
		c.Access(a.addr, a.write)
	}
	return c, snapshot(c)
}

func runBlocked(cfg Config, seed uint64, n, chunk int) (*Cache, replayState) {
	c := New(cfg)
	stream := genStream(seed, n)
	var recs []Rec
	flush := func() {
		c.AccessBlock(recs)
		recs = recs[:0]
	}
	for i, a := range stream {
		line := a.addr >> c.LineShift()
		if len(recs) == 0 || !TryMerge(&recs[len(recs)-1], line, a.write) {
			recs = append(recs, PackRec(line, a.write))
		}
		if (i+1)%chunk == 0 {
			flush()
		}
	}
	flush()
	return c, snapshot(c)
}

// snapshot reads the counters, then probes replacement state by
// counting hits over a fixed follow-up pattern (which itself perturbs
// the cache, so call it exactly once, last).
func snapshot(c *Cache) replayState {
	s := replayState{accesses: c.Accesses, misses: c.Misses, writebacks: c.Writebacks}
	rng := xrand.New(99)
	for i := 0; i < 2000; i++ {
		a, m := c.Accesses, c.Misses
		c.Access(rng.Uint64n(1<<22), false)
		if c.Misses == m && c.Accesses == a+1 {
			s.probeHits++
		}
	}
	return s
}

// TestAccessBlockMatchesAccess proves the bulk path leaves counters
// and replacement state bit-identical to per-access replay, across
// power-of-two and non-power-of-two set counts and across chunk
// boundaries that split runs.
func TestAccessBlockMatchesAccess(t *testing.T) {
	cfgs := []Config{
		{Name: "pow2", Size: 16 << 10, Ways: 8, LineSize: 64, Latency: 1},
		{Name: "pow2-big", Size: 1 << 20, Ways: 8, LineSize: 64, Latency: 1},
		{Name: "nonpow2", Size: 3 * 64 * 4 * 16, Ways: 4, LineSize: 64, Latency: 1}, // 48 sets
		{Name: "narrow", Size: 2 << 10, Ways: 2, LineSize: 64, Latency: 1},
	}
	for _, cfg := range cfgs {
		_, want := runSerial(cfg, 42, 20000)
		for _, chunk := range []int{1, 7, 1000, 4096, 20000} {
			_, got := runBlocked(cfg, 42, 20000, chunk)
			if got != want {
				t.Fatalf("%s chunk %d: blocked %+v != serial %+v", cfg.Name, chunk, got, want)
			}
		}
	}
}

// TestTryMergeSemantics pins the record packing: merges accumulate the
// run counter and OR the write flag, refuse line changes, and saturate.
func TestTryMergeSemantics(t *testing.T) {
	r := PackRec(5, false)
	if !TryMerge(&r, 5, true) {
		t.Fatal("same-line merge refused")
	}
	if r>>recCountShift != 1 || r&1 != 1 || (r>>1)&recLineMask != 5 {
		t.Fatalf("merged record malformed: %#x", r)
	}
	if TryMerge(&r, 6, false) {
		t.Fatal("merged across a line change")
	}
	r = PackRec(7, false)
	for i := 0; i < recCountMax; i++ {
		if !TryMerge(&r, 7, false) {
			t.Fatalf("merge %d refused before saturation", i)
		}
	}
	if TryMerge(&r, 7, false) {
		t.Fatal("merge beyond the run counter's range")
	}
	// A saturated record replays with its full count.
	c := New(Config{Name: "sat", Size: 16 << 10, Ways: 8, LineSize: 64, Latency: 1})
	c.AccessBlock([]Rec{r})
	if c.Accesses != uint64(recCountMax)+1 || c.Misses != 1 {
		t.Fatalf("saturated record: %d accesses, %d misses", c.Accesses, c.Misses)
	}
}

// TestAccessBlockEmpty checks the no-op edge.
func TestAccessBlockEmpty(t *testing.T) {
	c := New(Config{Name: "e", Size: 16 << 10, Ways: 8, LineSize: 64, Latency: 1})
	c.AccessBlock(nil)
	if c.Accesses != 0 {
		t.Fatal("empty block counted accesses")
	}
}
