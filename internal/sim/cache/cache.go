// Package cache implements set-associative cache models with true-LRU
// replacement, write-back/write-allocate policy, and a three-level
// hierarchy matching the paper's Xeon E5645 testbed (Table 3:
// 32 KB L1I + 32 KB L1D per core, 256 KB L2 per core, 12 MB shared L3).
//
// The hierarchy models demand accesses plus next-line instruction and
// data prefetchers (every platform the paper measures has them); the
// MPKI counters report demand misses only, matching what perf events
// count. The footprint study (Fig. 6-9) uses bare caches without
// prefetch, as MARSSx86 was configured in the paper.
package cache

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports ("L1I", "L2", ...).
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the associativity.
	Ways int
	// LineSize is the block size in bytes (64 throughout the paper).
	LineSize int
	// Latency is the hit latency in cycles, charged by the pipeline.
	Latency int
}

// Valid reports whether the config describes a usable cache.
func (c Config) Valid() bool {
	return c.Size > 0 && c.Ways > 0 && c.LineSize > 0 &&
		c.Size%(c.Ways*c.LineSize) == 0
}

// Cache is a single set-associative cache with true-LRU replacement.
// The zero value is not usable; construct with New.
//
// A set's whole state lives in one contiguous meta slab region — its
// ways' tags followed by its ways' LRU stamps, with the dirty flag
// folded into the tag word — so one access touches one small span of
// one array (and one TLB page) instead of scattering loads across
// three parallel arrays. For the 8-way geometries every model uses,
// that is two adjacent 64-byte lines per set.
type Cache struct {
	cfg       Config
	sets      uint64
	setMask   uint64 // sets-1 when sets is a power of two
	pow2      bool   // set indexing may use the mask instead of %
	lineShift uint
	// meta holds sets*ways*2 words: for set s, tags occupy
	// [s*2W, s*2W+W) and stamps [s*2W+W, s*2W+2W). A tag word is the
	// line address + 1 (0 stays "invalid") with the dirty flag in the
	// top bit.
	meta  []uint64
	clock uint64

	// lastTag/lastIdx remember the immediately preceding access (the
	// meta index of its tag word): the line is guaranteed resident
	// there (nothing can evict it without going through Access, which
	// rewrites these), so a repeat access to the same line skips the
	// way scan. State evolution is bit-identical to the scanning path.
	lastTag uint64
	lastIdx uint64
	// mru hints the most recently touched way per set, checked before
	// the full way scan. Purely a probe-order hint: the tag is always
	// verified, so results are identical with or without it.
	mru []uint8

	// Accesses counts lookups; Misses counts fills; Writebacks counts
	// dirty evictions (memory write traffic).
	Accesses, Misses, Writebacks uint64
}

// New constructs a cache from cfg. It panics on an invalid geometry,
// which always indicates a programming error in a machine preset.
func New(cfg Config) *Cache {
	if !cfg.Valid() {
		panic("cache: invalid geometry for " + cfg.Name)
	}
	sets := cfg.Size / (cfg.Ways * cfg.LineSize)
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      uint64(sets),
		setMask:   uint64(sets - 1),
		pow2:      sets&(sets-1) == 0,
		lineShift: shift,
		meta:      make([]uint64, sets*cfg.Ways*2),
		mru:       make([]uint8, sets),
	}
}

// dirtyBit marks a dirty line in its tag word. Tags are line+1 with
// line = addr >> lineShift < 2^58, so the top bit is always free.
const dirtyBit = 1 << 63

// LineShift returns log2 of the line size — the shift callers packing
// AccessBlock records must apply to byte addresses.
func (c *Cache) LineShift() uint { return c.lineShift }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, installing the line on a miss (evicting the
// LRU way) and returns true on a hit. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.Accesses++
	line := addr >> c.lineShift
	tag := line + 1 // 0 stays "invalid"
	c.clock++
	meta := c.meta
	if tag == c.lastTag {
		w := uint64(0)
		if write {
			w = dirtyBit
		}
		idx := c.lastIdx
		meta[idx] |= w
		meta[idx+uint64(c.cfg.Ways)] = c.clock
		return true
	}
	var setNo uint64
	if c.pow2 {
		setNo = line & c.setMask
	} else {
		setNo = line % c.sets
	}
	ways := uint64(c.cfg.Ways)
	set := setNo * ways * 2 // tag words at set..set+ways, stamps follow
	if idx := set + uint64(c.mru[setNo]); meta[idx]&^dirtyBit == tag {
		if write {
			meta[idx] |= dirtyBit
		}
		meta[idx+ways] = c.clock
		c.lastTag, c.lastIdx = tag, idx
		return true
	}
	wayTags := meta[set : set+ways]
	for w := range wayTags {
		if wayTags[w]&^dirtyBit == tag {
			idx := set + uint64(w)
			if write {
				meta[idx] |= dirtyBit
			}
			meta[idx+ways] = c.clock
			c.lastTag, c.lastIdx = tag, idx
			c.mru[setNo] = uint8(w)
			return true
		}
	}
	c.Misses++
	// Evict true-LRU way.
	stamps := meta[set+ways : set+2*ways]
	victim := uint64(0)
	oldest := stamps[0]
	for w := uint64(1); w < ways; w++ {
		if stamps[w] < oldest {
			oldest = stamps[w]
			victim = w
		}
	}
	vIdx := set + victim
	if old := meta[vIdx]; old != 0 && old&dirtyBit != 0 {
		c.Writebacks++
	}
	nw := tag
	if write {
		nw |= dirtyBit
	}
	meta[vIdx] = nw
	stamps[victim] = c.clock
	c.lastTag, c.lastIdx = tag, vIdx
	c.mru[setNo] = uint8(victim)
	return false
}

// A Rec is one packed access run for AccessBlock: the cache-line
// address (the byte address shifted down by LineShift) in bits 1..47,
// the write flag in bit 0, and a run counter in the top 16 bits — a
// record stands for 1 + counter back-to-back accesses to its line,
// with the write flag OR-ed over the run. Packing drops everything
// Access recomputes per call (offset bits, op class, sizes) and
// run-merging drops the accesses themselves: after the first access
// of a run the line is resident, so the rest can only refresh its LRU
// stamp, bump the clock and counters, and accumulate dirtiness — all
// O(1) on the merged record, and exactly what Access would have done
// one call at a time.
type Rec = uint64

const (
	recCountShift = 48
	// recLineMask bounds the line address a record can carry (47
	// bits — byte addresses up to 2^53 at 64-byte lines, far beyond
	// the simulated layout).
	recLineMask = (uint64(1)<<recCountShift - 1) >> 1
	recCountMax = 1<<(64-recCountShift) - 1
)

// PackRec builds the AccessBlock record for a single access.
func PackRec(line uint64, write bool) Rec {
	r := line << 1
	if write {
		r |= 1
	}
	return r
}

// TryMerge folds one access into the immediately preceding record when
// it targets the same line and the run counter has room, returning
// whether it merged. Decoders call it once per access; every cache
// replaying the stream then gets the run for free.
func TryMerge(prev *Rec, line uint64, write bool) bool {
	p := *prev
	if (p>>1)&recLineMask != line || p>>recCountShift == recCountMax {
		return false
	}
	p += 1 << recCountShift
	if write {
		p |= 1
	}
	*prev = p
	return true
}

// RecLine extracts a record's line address — the inverse of PackRec,
// exported so other replay engines (the stack-distance sweep) can
// consume the same packed streams the block decoders produce.
func RecLine(r Rec) uint64 { return (r >> 1) & recLineMask }

// RecRun extracts a record's merged-run count: the number of *extra*
// accesses folded into the record beyond its first (0 for an unmerged
// record), so a record represents RecRun+1 accesses in total.
func RecRun(r Rec) uint64 { return r >> recCountShift }

// RecWrite reports whether any access of the record's run wrote.
func RecWrite(r Rec) bool { return r&1 != 0 }

// AccessBlock replays a packed record stream through the cache:
// exactly equivalent — counter-for-counter and bit-for-bit in
// replacement state — to calling Access(line<<LineShift, write) for
// each record in order, but with the per-call overhead hoisted out of
// the loop: set indexing uses the power-of-two mask instead of %,
// array bases and the LRU clock live in locals (one bounds-check
// region per set scan), and the demand counters accumulate per block
// instead of per access.
//
// The sweep experiments fan 30 of these out per block; each cache's
// state is touched by exactly one AccessBlock call at a time.
func (c *Cache) AccessBlock(recs []Rec) {
	if len(recs) == 0 {
		return
	}
	ways := uint64(c.cfg.Ways)
	meta, mru := c.meta, c.mru
	sets, setMask, pow2 := c.sets, c.setMask, c.pow2
	clock := c.clock
	lastTag, lastIdx := c.lastTag, c.lastIdx
	var accesses, misses, writebacks uint64
	for _, rec := range recs {
		line := (rec >> 1) & recLineMask
		wbit := (rec & 1) << 63 // dirtyBit iff the run wrote
		tag := line + 1         // 0 stays "invalid"
		// A record's whole run retires here: the clock advances once
		// per represented access and the stamp below lands on the
		// run's final clock value, exactly as per-access replay would
		// leave it.
		run := rec >> recCountShift
		clock += run + 1
		accesses += run + 1
		if tag == lastTag {
			meta[lastIdx] |= wbit
			meta[lastIdx+ways] = clock
			continue
		}
		var setNo uint64
		if pow2 {
			setNo = line & setMask
		} else {
			setNo = line % sets
		}
		set := setNo * ways * 2 // tag words at set..set+ways, stamps follow
		if idx := set + uint64(mru[setNo]); meta[idx]&^dirtyBit == tag {
			meta[idx] |= wbit
			meta[idx+ways] = clock
			lastTag, lastIdx = tag, idx
			continue
		}
		wayTags := meta[set : set+ways]
		hit := false
		for w := range wayTags {
			if wayTags[w]&^dirtyBit == tag {
				idx := set + uint64(w)
				meta[idx] |= wbit
				meta[idx+ways] = clock
				lastTag, lastIdx = tag, idx
				mru[setNo] = uint8(w)
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		misses++
		// Evict true-LRU way.
		stamps := meta[set+ways : set+2*ways]
		victim := uint64(0)
		oldest := stamps[0]
		for w := uint64(1); w < ways; w++ {
			if stamps[w] < oldest {
				oldest = stamps[w]
				victim = w
			}
		}
		vIdx := set + victim
		if meta[vIdx]&dirtyBit != 0 {
			writebacks++
		}
		meta[vIdx] = tag | wbit
		stamps[victim] = clock
		lastTag, lastIdx = tag, vIdx
		mru[setNo] = uint8(victim)
	}
	c.clock = clock
	c.lastTag, c.lastIdx = lastTag, lastIdx
	c.Accesses += accesses
	c.Misses += misses
	c.Writebacks += writebacks
}

// Touch installs addr without affecting the demand counters; it is
// the fill path used by the prefetcher. Returns true if the line was
// already present.
func (c *Cache) Touch(addr uint64, write bool) bool {
	a, m, w := c.Accesses, c.Misses, c.Writebacks
	hit := c.Access(addr, write)
	c.Accesses, c.Misses, c.Writebacks = a, m, w
	return hit
}

// MissRatio returns Misses/Accesses (0 when never accessed).
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.meta {
		c.meta[i] = 0
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.clock = 0
	c.lastTag, c.lastIdx = 0, 0
	c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
}

// Hierarchy is the three-level structure of the modelled node: split
// L1, unified L2, optional unified L3 (the Atom model has none). It
// tracks instruction/data splits at the shared levels because the
// paper's software-stack analysis (§5.5) attributes L2/LLC misses to
// instruction footprint.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	// MemLatency is the DRAM access latency in cycles.
	MemLatency int

	// Instruction-side and data-side access/miss splits at L2 and L3.
	L2IAcc, L2IMiss, L2DAcc, L2DMiss uint64
	L3IAcc, L3IMiss, L3DAcc, L3DMiss uint64
	// MemReads counts demand fills from memory; MemWrites counts
	// last-level writebacks.
	MemReads, MemWrites uint64
}

// Level identifiers returned by Fetch and Data.
const (
	LvlL1  = 1
	LvlL2  = 2
	LvlL3  = 3
	LvlMem = 4
)

// NewHierarchy builds a hierarchy; pass a zero Config for no L3.
func NewHierarchy(l1i, l1d, l2, l3 Config, memLatency int) *Hierarchy {
	h := &Hierarchy{
		L1I:        New(l1i),
		L1D:        New(l1d),
		L2:         New(l2),
		MemLatency: memLatency,
	}
	if l3.Size > 0 {
		h.L3 = New(l3)
	}
	return h
}

// Fetch performs an instruction fetch of pc and returns the level that
// hit (LvlL1..LvlMem). A demand miss triggers the next-line
// instruction prefetcher (all modelled front ends have one), so
// straight-line cold code pays one exposed fill per two lines.
func (h *Hierarchy) Fetch(pc uint64) int {
	if h.L1I.Access(pc, false) {
		return LvlL1
	}
	level := LvlL2
	h.L2IAcc++
	if !h.L2.Access(pc, false) {
		h.L2IMiss++
		if h.L3 == nil {
			level = LvlMem
			h.MemReads++
		} else {
			h.L3IAcc++
			if h.L3.Access(pc, false) {
				level = LvlL3
			} else {
				h.L3IMiss++
				h.MemReads++
				level = LvlMem
			}
		}
	}
	h.prefetch(pc + 64)
	return level
}

// prefetch quietly installs a line through the hierarchy.
func (h *Hierarchy) prefetch(addr uint64) {
	h.L1I.Touch(addr, false)
	h.L2.Touch(addr, false)
	if h.L3 != nil {
		h.L3.Touch(addr, false)
	}
}

// Data performs a data access and returns the level that hit. A demand
// miss triggers the next-line data prefetcher (the DCU/L2 streamers of
// the modelled Xeon), so sequential streams expose roughly one fill in
// two.
func (h *Hierarchy) Data(addr uint64, write bool) int {
	if h.L1D.Access(addr, write) {
		return LvlL1
	}
	level := LvlL2
	h.L2DAcc++
	if !h.L2.Access(addr, write) {
		h.L2DMiss++
		if h.L3 == nil {
			level = LvlMem
			h.MemReads++
		} else {
			h.L3DAcc++
			if h.L3.Access(addr, write) {
				level = LvlL3
			} else {
				h.L3DMiss++
				h.MemReads++
				level = LvlMem
			}
		}
	}
	// Degree-2 streamer: the L2/DCU prefetchers of the modelled
	// platforms run ahead of sequential streams.
	h.L1D.Touch(addr+64, false)
	h.L1D.Touch(addr+128, false)
	h.L2.Touch(addr+64, false)
	h.L2.Touch(addr+128, false)
	if h.L3 != nil {
		h.L3.Touch(addr+64, false)
		h.L3.Touch(addr+128, false)
	}
	return level
}

// Latency returns the access latency in cycles for a hit at level.
func (h *Hierarchy) Latency(level int) int {
	switch level {
	case LvlL1:
		return h.L1D.cfg.Latency
	case LvlL2:
		return h.L2.cfg.Latency
	case LvlL3:
		if h.L3 != nil {
			return h.L3.cfg.Latency
		}
		return h.MemLatency
	default:
		return h.MemLatency
	}
}

// FillLatency returns the extra cycles an instruction fetch stalls when
// its line comes from the given level (0 for an L1 hit).
func (h *Hierarchy) FillLatency(level int) int {
	if level <= LvlL1 {
		return 0
	}
	return h.Latency(level)
}

// FinishWritebacks accounts final memory write traffic (last-level
// writebacks) into MemWrites. Call once at end of run.
func (h *Hierarchy) FinishWritebacks() {
	if h.L3 != nil {
		h.MemWrites = h.L3.Writebacks
	} else {
		h.MemWrites = h.L2.Writebacks
	}
}
