// Package cache implements set-associative cache models with true-LRU
// replacement, write-back/write-allocate policy, and a three-level
// hierarchy matching the paper's Xeon E5645 testbed (Table 3:
// 32 KB L1I + 32 KB L1D per core, 256 KB L2 per core, 12 MB shared L3).
//
// The hierarchy models demand accesses plus next-line instruction and
// data prefetchers (every platform the paper measures has them); the
// MPKI counters report demand misses only, matching what perf events
// count. The footprint study (Fig. 6-9) uses bare caches without
// prefetch, as MARSSx86 was configured in the paper.
package cache

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports ("L1I", "L2", ...).
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the associativity.
	Ways int
	// LineSize is the block size in bytes (64 throughout the paper).
	LineSize int
	// Latency is the hit latency in cycles, charged by the pipeline.
	Latency int
}

// Valid reports whether the config describes a usable cache.
func (c Config) Valid() bool {
	return c.Size > 0 && c.Ways > 0 && c.LineSize > 0 &&
		c.Size%(c.Ways*c.LineSize) == 0
}

// Cache is a single set-associative cache with true-LRU replacement.
// The zero value is not usable; construct with New.
type Cache struct {
	cfg       Config
	sets      uint64
	lineShift uint
	tags      []uint64 // sets*ways; 0 means invalid (tags stored as line+1)
	stamp     []uint64 // LRU timestamps, parallel to tags
	dirty     []bool
	clock     uint64

	// lastTag/lastIdx remember the immediately preceding access: the
	// line is guaranteed resident there (nothing can evict it without
	// going through Access, which rewrites these), so a repeat access
	// to the same line skips the way scan. State evolution is
	// bit-identical to the scanning path.
	lastTag uint64
	lastIdx uint64
	// mru hints the most recently touched way per set, checked before
	// the full way scan. Purely a probe-order hint: the tag is always
	// verified, so results are identical with or without it.
	mru []uint8

	// Accesses counts lookups; Misses counts fills; Writebacks counts
	// dirty evictions (memory write traffic).
	Accesses, Misses, Writebacks uint64
}

// New constructs a cache from cfg. It panics on an invalid geometry,
// which always indicates a programming error in a machine preset.
func New(cfg Config) *Cache {
	if !cfg.Valid() {
		panic("cache: invalid geometry for " + cfg.Name)
	}
	sets := cfg.Size / (cfg.Ways * cfg.LineSize)
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg:       cfg,
		sets:      uint64(sets),
		lineShift: shift,
		tags:      make([]uint64, n),
		stamp:     make([]uint64, n),
		dirty:     make([]bool, n),
		mru:       make([]uint8, sets),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, installing the line on a miss (evicting the
// LRU way) and returns true on a hit. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.Accesses++
	line := addr >> c.lineShift
	tag := line + 1 // 0 stays "invalid"
	c.clock++
	if tag == c.lastTag {
		c.stamp[c.lastIdx] = c.clock
		if write {
			c.dirty[c.lastIdx] = true
		}
		return true
	}
	setNo := line % c.sets
	set := setNo * uint64(c.cfg.Ways)
	if idx := set + uint64(c.mru[setNo]); c.tags[idx] == tag {
		c.stamp[idx] = c.clock
		if write {
			c.dirty[idx] = true
		}
		c.lastTag, c.lastIdx = tag, idx
		return true
	}
	ways := c.tags[set : set+uint64(c.cfg.Ways)]
	for w := range ways {
		if ways[w] == tag {
			idx := set + uint64(w)
			c.stamp[idx] = c.clock
			if write {
				c.dirty[idx] = true
			}
			c.lastTag, c.lastIdx = tag, idx
			c.mru[setNo] = uint8(w)
			return true
		}
	}
	c.Misses++
	// Evict true-LRU way.
	victim := set
	oldest := c.stamp[set]
	for w := uint64(1); w < uint64(c.cfg.Ways); w++ {
		if c.stamp[set+w] < oldest {
			oldest = c.stamp[set+w]
			victim = set + w
		}
	}
	if c.tags[victim] != 0 && c.dirty[victim] {
		c.Writebacks++
	}
	c.tags[victim] = tag
	c.stamp[victim] = c.clock
	c.dirty[victim] = write
	c.lastTag, c.lastIdx = tag, victim
	c.mru[setNo] = uint8(victim - set)
	return false
}

// Touch installs addr without affecting the demand counters; it is
// the fill path used by the prefetcher. Returns true if the line was
// already present.
func (c *Cache) Touch(addr uint64, write bool) bool {
	a, m, w := c.Accesses, c.Misses, c.Writebacks
	hit := c.Access(addr, write)
	c.Accesses, c.Misses, c.Writebacks = a, m, w
	return hit
}

// MissRatio returns Misses/Accesses (0 when never accessed).
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.dirty[i] = false
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.clock = 0
	c.lastTag, c.lastIdx = 0, 0
	c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
}

// Hierarchy is the three-level structure of the modelled node: split
// L1, unified L2, optional unified L3 (the Atom model has none). It
// tracks instruction/data splits at the shared levels because the
// paper's software-stack analysis (§5.5) attributes L2/LLC misses to
// instruction footprint.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	// MemLatency is the DRAM access latency in cycles.
	MemLatency int

	// Instruction-side and data-side access/miss splits at L2 and L3.
	L2IAcc, L2IMiss, L2DAcc, L2DMiss uint64
	L3IAcc, L3IMiss, L3DAcc, L3DMiss uint64
	// MemReads counts demand fills from memory; MemWrites counts
	// last-level writebacks.
	MemReads, MemWrites uint64
}

// Level identifiers returned by Fetch and Data.
const (
	LvlL1  = 1
	LvlL2  = 2
	LvlL3  = 3
	LvlMem = 4
)

// NewHierarchy builds a hierarchy; pass a zero Config for no L3.
func NewHierarchy(l1i, l1d, l2, l3 Config, memLatency int) *Hierarchy {
	h := &Hierarchy{
		L1I:        New(l1i),
		L1D:        New(l1d),
		L2:         New(l2),
		MemLatency: memLatency,
	}
	if l3.Size > 0 {
		h.L3 = New(l3)
	}
	return h
}

// Fetch performs an instruction fetch of pc and returns the level that
// hit (LvlL1..LvlMem). A demand miss triggers the next-line
// instruction prefetcher (all modelled front ends have one), so
// straight-line cold code pays one exposed fill per two lines.
func (h *Hierarchy) Fetch(pc uint64) int {
	if h.L1I.Access(pc, false) {
		return LvlL1
	}
	level := LvlL2
	h.L2IAcc++
	if !h.L2.Access(pc, false) {
		h.L2IMiss++
		if h.L3 == nil {
			level = LvlMem
			h.MemReads++
		} else {
			h.L3IAcc++
			if h.L3.Access(pc, false) {
				level = LvlL3
			} else {
				h.L3IMiss++
				h.MemReads++
				level = LvlMem
			}
		}
	}
	h.prefetch(pc + 64)
	return level
}

// prefetch quietly installs a line through the hierarchy.
func (h *Hierarchy) prefetch(addr uint64) {
	h.L1I.Touch(addr, false)
	h.L2.Touch(addr, false)
	if h.L3 != nil {
		h.L3.Touch(addr, false)
	}
}

// Data performs a data access and returns the level that hit. A demand
// miss triggers the next-line data prefetcher (the DCU/L2 streamers of
// the modelled Xeon), so sequential streams expose roughly one fill in
// two.
func (h *Hierarchy) Data(addr uint64, write bool) int {
	if h.L1D.Access(addr, write) {
		return LvlL1
	}
	level := LvlL2
	h.L2DAcc++
	if !h.L2.Access(addr, write) {
		h.L2DMiss++
		if h.L3 == nil {
			level = LvlMem
			h.MemReads++
		} else {
			h.L3DAcc++
			if h.L3.Access(addr, write) {
				level = LvlL3
			} else {
				h.L3DMiss++
				h.MemReads++
				level = LvlMem
			}
		}
	}
	// Degree-2 streamer: the L2/DCU prefetchers of the modelled
	// platforms run ahead of sequential streams.
	h.L1D.Touch(addr+64, false)
	h.L1D.Touch(addr+128, false)
	h.L2.Touch(addr+64, false)
	h.L2.Touch(addr+128, false)
	if h.L3 != nil {
		h.L3.Touch(addr+64, false)
		h.L3.Touch(addr+128, false)
	}
	return level
}

// Latency returns the access latency in cycles for a hit at level.
func (h *Hierarchy) Latency(level int) int {
	switch level {
	case LvlL1:
		return h.L1D.cfg.Latency
	case LvlL2:
		return h.L2.cfg.Latency
	case LvlL3:
		if h.L3 != nil {
			return h.L3.cfg.Latency
		}
		return h.MemLatency
	default:
		return h.MemLatency
	}
}

// FillLatency returns the extra cycles an instruction fetch stalls when
// its line comes from the given level (0 for an L1 hit).
func (h *Hierarchy) FillLatency(level int) int {
	if level <= LvlL1 {
		return 0
	}
	return h.Latency(level)
}

// FinishWritebacks accounts final memory write traffic (last-level
// writebacks) into MemWrites. Call once at end of run.
func (h *Hierarchy) FinishWritebacks() {
	if h.L3 != nil {
		h.MemWrites = h.L3.Writebacks
	} else {
		h.MemWrites = h.L2.Writebacks
	}
}
