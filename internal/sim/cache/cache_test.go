package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func smallCache(sizeKB, ways int) *Cache {
	return New(Config{Name: "t", Size: sizeKB << 10, Ways: ways, LineSize: 64, Latency: 1})
}

func TestHitAfterMiss(t *testing.T) {
	c := smallCache(4, 4)
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038, false) {
		t.Fatal("same-line access missed")
	}
}

func TestAssociativityRetention(t *testing.T) {
	// With 4 ways, 4 distinct lines mapping to the same set must all
	// be retained.
	c := smallCache(4, 4)
	sets := uint64(4 << 10 / (4 * 64))
	for w := uint64(0); w < 4; w++ {
		c.Access(w*sets*64, false)
	}
	for w := uint64(0); w < 4; w++ {
		if !c.Access(w*sets*64, false) {
			t.Fatalf("way %d evicted under 4-way set with 4 lines", w)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(4, 2)
	sets := uint64(4 << 10 / (2 * 64))
	a, b, d := uint64(0), sets*64, 2*sets*64
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Access(a, false) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(b, false) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := smallCache(4, 1)
	sets := uint64(4 << 10 / 64)
	c.Access(0, true)        // dirty
	c.Access(sets*64, false) // evicts dirty line
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	c.Access(2*sets*64, false) // evicts clean line
	if c.Writebacks != 1 {
		t.Fatalf("clean eviction counted as writeback")
	}
}

// TestLRUInclusion verifies the stack property of LRU: a larger cache
// with the same associativity-per-set growth never misses more than a
// smaller one on any access sequence.
func TestLRUInclusion(t *testing.T) {
	f := func(seed uint64) bool {
		small := smallCache(4, 4)
		big := smallCache(8, 8) // same set count, more ways
		r := xrand.New(seed)
		var smallMiss, bigMiss uint64
		for i := 0; i < 4000; i++ {
			addr := r.Uint64n(64 << 10)
			if !small.Access(addr, false) {
				smallMiss++
			}
			if !big.Access(addr, false) {
				bigMiss++
			}
		}
		return bigMiss <= smallMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchDoesNotCount(t *testing.T) {
	c := smallCache(4, 4)
	c.Touch(0x40, false)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatalf("Touch affected counters: acc=%d miss=%d", c.Accesses, c.Misses)
	}
	if !c.Access(0x40, false) {
		t.Fatal("Touch did not install the line")
	}
}

func TestMissRatioBounds(t *testing.T) {
	c := smallCache(4, 4)
	r := xrand.New(1)
	for i := 0; i < 10000; i++ {
		c.Access(r.Uint64n(1<<20), false)
	}
	mr := c.MissRatio()
	if mr <= 0 || mr > 1 {
		t.Fatalf("miss ratio %v out of (0,1]", mr)
	}
}

func TestReset(t *testing.T) {
	c := smallCache(4, 4)
	c.Access(0x40, true)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 || c.Writebacks != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if c.Access(0x40, false) {
		t.Fatal("Reset did not clear contents")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	New(Config{Name: "bad", Size: 1000, Ways: 3, LineSize: 64})
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "L1I", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L1D", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L2", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 10},
		Config{Name: "L3", Size: 256 << 10, Ways: 16, LineSize: 64, Latency: 38},
		190)
	if lvl := h.Data(0x100000, false); lvl != LvlMem {
		t.Fatalf("cold access hit level %d, want memory", lvl)
	}
	if lvl := h.Data(0x100000, false); lvl != LvlL1 {
		t.Fatalf("warm access hit level %d, want L1", lvl)
	}
	if h.MemReads != 1 {
		t.Fatalf("MemReads = %d, want 1", h.MemReads)
	}
}

func TestHierarchyPrefetchNextLine(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "L1I", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L1D", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L2", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 10},
		Config{}, 190)
	h.Data(0x200000, false) // miss; prefetches 0x200040
	if lvl := h.Data(0x200040, false); lvl != LvlL1 {
		t.Fatalf("next line not prefetched into L1 (level %d)", lvl)
	}
}

func TestHierarchyNoL3(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "L1I", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L1D", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L2", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 10},
		Config{}, 170)
	if h.L3 != nil {
		t.Fatal("zero L3 config still built an L3")
	}
	if lvl := h.Fetch(0x400000); lvl != LvlMem {
		t.Fatalf("cold fetch hit level %d, want memory", lvl)
	}
	if h.Latency(LvlL3) != 170 {
		t.Fatalf("L3 latency without L3 should be memory latency")
	}
}

func TestFetchDataSplitCounters(t *testing.T) {
	h := NewHierarchy(
		Config{Name: "L1I", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L1D", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 4},
		Config{Name: "L2", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 10},
		Config{Name: "L3", Size: 256 << 10, Ways: 16, LineSize: 64, Latency: 38},
		190)
	h.Fetch(0x1000000)
	h.Data(0x2000000, false)
	if h.L2IAcc != 1 || h.L2DAcc != 1 {
		t.Fatalf("L2 I/D access split wrong: I=%d D=%d", h.L2IAcc, h.L2DAcc)
	}
}
