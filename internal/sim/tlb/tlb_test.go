package tlb

import (
	"testing"

	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

func TestHitWithinPage(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 64, Ways: 4, WalkLatency: 25})
	if !tl.Access(0x1000) {
		t.Fatal("cold translation did not miss")
	}
	if tl.Access(0x1FFF) {
		t.Fatal("same-page translation missed")
	}
	if !tl.Access(0x2000) {
		t.Fatal("next page did not miss")
	}
}

func TestCapacity(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 64, Ways: 4, WalkLatency: 25})
	// Touch 64 distinct pages: all fit.
	for p := uint64(0); p < 64; p++ {
		tl.Access(p * mem.PageSize)
	}
	miss := 0
	for p := uint64(0); p < 64; p++ {
		if tl.Access(p * mem.PageSize) {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d misses re-touching a working set equal to capacity", miss)
	}
}

func TestThrashBeyondCapacity(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 64, Ways: 4, WalkLatency: 25})
	r := xrand.New(3)
	for i := 0; i < 10000; i++ {
		tl.Access(r.Uint64n(1<<30) &^ (mem.PageSize - 1))
	}
	if tl.MissRatio() < 0.9 {
		t.Fatalf("random pages over 256K pages should thrash, miss ratio %v", tl.MissRatio())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TLB geometry did not panic")
		}
	}()
	New(Config{Name: "bad", Entries: 10, Ways: 3})
}
