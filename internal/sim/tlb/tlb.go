// Package tlb models instruction and data translation look-aside
// buffers. A TLB is structurally a small set-associative cache keyed by
// page number; a miss charges a page-walk penalty in the pipeline and
// is counted toward the ITLB/DTLB MPKI metrics of the paper's Fig. 5.
package tlb

import "repro/internal/sim/mem"

// Config describes a TLB.
type Config struct {
	// Name labels the TLB ("ITLB"/"DTLB").
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity.
	Ways int
	// WalkLatency is the page-walk penalty in cycles on a miss.
	WalkLatency int
}

// TLB is a set-associative translation buffer with true-LRU
// replacement. Construct with New.
type TLB struct {
	cfg   Config
	sets  uint64
	tags  []uint64
	stamp []uint64
	clock uint64

	// Accesses and Misses count translations.
	Accesses, Misses uint64
}

// New constructs a TLB; it panics on an invalid geometry.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid geometry for " + cfg.Name)
	}
	n := cfg.Entries
	return &TLB{
		cfg:   cfg,
		sets:  uint64(cfg.Entries / cfg.Ways),
		tags:  make([]uint64, n),
		stamp: make([]uint64, n),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Access translates addr, returning true on a TLB miss (page walk).
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := mem.PageOf(addr)
	tag := page + 1
	set := (page % t.sets) * uint64(t.cfg.Ways)
	ways := t.tags[set : set+uint64(t.cfg.Ways)]
	t.clock++
	for w := range ways {
		if ways[w] == tag {
			t.stamp[set+uint64(w)] = t.clock
			return false
		}
	}
	t.Misses++
	victim := set
	oldest := t.stamp[set]
	for w := uint64(1); w < uint64(t.cfg.Ways); w++ {
		if t.stamp[set+w] < oldest {
			oldest = t.stamp[set+w]
			victim = set + w
		}
	}
	t.tags[victim] = tag
	t.stamp[victim] = t.clock
	return true
}

// MissRatio returns Misses/Accesses (0 when never accessed).
func (t *TLB) MissRatio() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
