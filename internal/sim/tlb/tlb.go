// Package tlb models instruction and data translation look-aside
// buffers. A TLB is structurally a small set-associative cache keyed by
// page number; a miss charges a page-walk penalty in the pipeline and
// is counted toward the ITLB/DTLB MPKI metrics of the paper's Fig. 5.
package tlb

import "repro/internal/sim/mem"

// Config describes a TLB.
type Config struct {
	// Name labels the TLB ("ITLB"/"DTLB").
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity.
	Ways int
	// WalkLatency is the page-walk penalty in cycles on a miss.
	WalkLatency int
}

// TLB is a set-associative translation buffer with true-LRU
// replacement. Construct with New.
type TLB struct {
	cfg   Config
	sets  uint64
	tags  []uint64
	stamp []uint64
	clock uint64

	// lastTag/lastIdx remember the immediately preceding translation;
	// the entry is guaranteed resident (only Access evicts, and it
	// rewrites these), so repeat accesses to the same page skip the way
	// scan. State evolution is identical to the scanning path.
	lastTag uint64
	lastIdx uint64

	// Accesses and Misses count translations.
	Accesses, Misses uint64
}

// New constructs a TLB; it panics on an invalid geometry.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid geometry for " + cfg.Name)
	}
	n := cfg.Entries
	return &TLB{
		cfg:   cfg,
		sets:  uint64(cfg.Entries / cfg.Ways),
		tags:  make([]uint64, n),
		stamp: make([]uint64, n),
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Access translates addr, returning true on a TLB miss (page walk).
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := mem.PageOf(addr)
	tag := page + 1
	t.clock++
	if tag == t.lastTag {
		t.stamp[t.lastIdx] = t.clock
		return false
	}
	set := (page % t.sets) * uint64(t.cfg.Ways)
	ways := t.tags[set : set+uint64(t.cfg.Ways)]
	for w := range ways {
		if ways[w] == tag {
			idx := set + uint64(w)
			t.stamp[idx] = t.clock
			t.lastTag, t.lastIdx = tag, idx
			return false
		}
	}
	t.Misses++
	victim := set
	oldest := t.stamp[set]
	for w := uint64(1); w < uint64(t.cfg.Ways); w++ {
		if t.stamp[set+w] < oldest {
			oldest = t.stamp[set+w]
			victim = set + w
		}
	}
	t.tags[victim] = tag
	t.stamp[victim] = t.clock
	t.lastTag, t.lastIdx = tag, victim
	return true
}

// MissRatio returns Misses/Accesses (0 when never accessed).
func (t *TLB) MissRatio() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
