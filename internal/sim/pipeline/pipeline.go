// Package pipeline implements a cycle-approximate processor timing
// model driven by the dynamic instruction stream.
//
// The model is a greedy dataflow scheduler in the style of interval
// analysis: each instruction is fetched subject to front-end bandwidth
// and stalls (instruction-cache misses, ITLB walks, branch
// misprediction redirects), dispatched subject to window (ROB)
// occupancy, executed when its register operands are ready (loads pay
// the latency of the cache level that served them), and committed
// subject to commit bandwidth. Cycles are the final commit time; IPC,
// front-end stall attribution, ILP and MLP fall out of the schedule.
//
// Two configurations reproduce the paper's platforms: a 4-wide
// out-of-order Xeon-E5645-class core and a 2-wide in-order
// Atom-D510-class core.
package pipeline

import "repro/internal/sim/isa"

// Config describes a core.
type Config struct {
	// Name labels the core model.
	Name string
	// FetchWidth is instructions fetched per cycle.
	FetchWidth int
	// CommitWidth is instructions committed per cycle.
	CommitWidth int
	// Window is the reorder-buffer capacity; with InOrder it acts as a
	// small in-flight buffer.
	Window int
	// InOrder forces program-order issue (execution may still overlap
	// through latency, as on the dual-issue Atom).
	InOrder bool
	// MispredictPenalty is the redirect penalty in cycles.
	MispredictPenalty int

	// Execution latencies in cycles.
	IntLat, MulLat, DivLat, FPLat, FPDivLat int
	// LoadLat maps the hit level (1..4: L1, L2, L3, memory) to load
	// latency; index 0 is unused.
	LoadLat [5]int
	// ITLBPenalty and DTLBPenalty are page-walk costs in cycles.
	ITLBPenalty, DTLBPenalty int
}

// Model is the running pipeline state for one core. Construct with New;
// one Model serves one workload run.
type Model struct {
	cfg Config

	ready [isa.NumRegs]uint64 // register ready cycle
	rob   []uint64            // ring buffer of commit cycles
	robAt int

	nextFetchCycle uint64
	fetchedInCycle int

	lastCommitCycle uint64
	commitsInCycle  int

	lastExecStart uint64 // in-order issue constraint

	// dataflow chain depth (unit latency) for the windowed ILP metric
	depth      [isa.NumRegs]uint64
	maxDepth   uint64
	winStart   uint64 // maxDepth at the start of the current window
	winInsts   uint64
	chainTotal uint64 // accumulated per-window critical-path lengths

	// outstanding long-latency load tracking for the MLP metric
	missEnds [16]uint64
	missAt   int

	// Statistics.
	Insts  uint64
	Cycles uint64
	// Stall attribution in cycles.
	IMissStall, ITLBStall, MispredictStall uint64
	// MLP accumulators: sum of overlapping long-latency loads observed
	// at each long-latency load issue, and their count.
	MLPSum, MLPCount uint64
}

// New constructs a pipeline model.
func New(cfg Config) *Model {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	return &Model{cfg: cfg, rob: make([]uint64, cfg.Window)}
}

// Config returns the core configuration.
func (m *Model) Config() Config { return m.cfg }

// Step advances the model by one instruction.
//
// ilevel is the cache level that served the instruction fetch and
// dlevel the level that served the data access (0 if none); mispredict
// reports the branch outcome; itlbExtra and dtlbExtra are the extra
// translation cycles (0 on a first-level TLB hit, small on an STLB
// hit, the full walk on an STLB miss).
func (m *Model) Step(i *isa.Inst, ilevel, dlevel int, mispredict bool, itlbExtra, dtlbExtra int) {
	cfg := &m.cfg

	// --- Fetch ---
	if m.fetchedInCycle >= cfg.FetchWidth {
		m.nextFetchCycle++
		m.fetchedInCycle = 0
	}
	fc := m.nextFetchCycle
	if ilevel > 1 {
		// The decoupled fetch queue absorbs part of an instruction
		// fill: decode keeps draining buffered instructions while the
		// miss is outstanding, so only ~60% of the fill latency is
		// exposed.
		stall := uint64(fillLatency(cfg, ilevel)) * 3 / 5
		fc += stall
		m.IMissStall += stall
		m.nextFetchCycle = fc
		m.fetchedInCycle = 0
	}
	if itlbExtra > 0 {
		stall := uint64(itlbExtra)
		fc += stall
		m.ITLBStall += stall
		m.nextFetchCycle = fc
		m.fetchedInCycle = 0
	}
	m.fetchedInCycle++

	// --- Dispatch: window occupancy ---
	oldest := m.rob[m.robAt]
	dispatch := fc
	if oldest > dispatch {
		dispatch = oldest
	}

	// --- Execute: operand readiness ---
	start := dispatch
	if r := m.ready[i.Src1]; r > start {
		start = r
	}
	if r := m.ready[i.Src2]; r > start {
		start = r
	}
	if cfg.InOrder {
		if m.lastExecStart > start {
			start = m.lastExecStart
		}
		m.lastExecStart = start
	}
	lat := m.latency(i, dlevel, dtlbExtra)
	done := start + lat

	if i.Dst != isa.NoReg {
		m.ready[i.Dst] = done
		d := m.depth[i.Src1]
		if m.depth[i.Src2] > d {
			d = m.depth[i.Src2]
		}
		d++
		m.depth[i.Dst] = d
		if d > m.maxDepth {
			m.maxDepth = d
		}
	}
	m.winInsts++
	if m.winInsts == ilpWindow {
		grow := m.maxDepth - m.winStart
		if grow == 0 {
			grow = 1
		}
		m.chainTotal += grow
		m.winStart = m.maxDepth
		m.winInsts = 0
	}

	// MLP: long-latency loads overlapping in flight.
	if i.Op == isa.Load && dlevel >= 3 {
		overlap := uint64(1)
		for _, end := range m.missEnds {
			if end > start {
				overlap++
			}
		}
		m.missEnds[m.missAt] = done
		m.missAt = (m.missAt + 1) % len(m.missEnds)
		m.MLPSum += overlap
		m.MLPCount++
	}

	// --- Branch resolution ---
	if mispredict {
		// The redirect waits for the branch to resolve, but a real
		// out-of-order core hides most of a long resolution (branches
		// resolve early out of the scheduler and wrong-path fetch
		// overlaps), so the exposed wait beyond fetch is bounded; and
		// the flush empties the window, so earlier back-pressure does
		// not also charge the redirect.
		resolve := done
		const maxExposedResolution = 30
		if resolve > fc+maxExposedResolution {
			resolve = fc + maxExposedResolution
		}
		redirect := resolve + uint64(cfg.MispredictPenalty)
		if redirect > m.nextFetchCycle {
			m.MispredictStall += redirect - m.nextFetchCycle
			m.nextFetchCycle = redirect
			m.fetchedInCycle = 0
		}
		// Flush: the window is empty after a misprediction.
		for k := range m.rob {
			m.rob[k] = 0
		}
	}

	// --- Commit ---
	c := done
	if c < m.lastCommitCycle {
		c = m.lastCommitCycle
	}
	if c == m.lastCommitCycle {
		m.commitsInCycle++
		if m.commitsInCycle > cfg.CommitWidth {
			c++
			m.commitsInCycle = 1
		}
	} else {
		m.commitsInCycle = 1
	}
	m.lastCommitCycle = c

	m.rob[m.robAt] = c
	m.robAt = (m.robAt + 1) % cfg.Window

	m.Insts++
	m.Cycles = c
}

func (m *Model) latency(i *isa.Inst, dlevel, dtlbExtra int) uint64 {
	cfg := &m.cfg
	var lat int
	switch i.Op {
	case isa.Load:
		lat = cfg.LoadLat[dlevel] + dtlbExtra
	case isa.Store:
		// Stores retire through the store buffer; they occupy a slot
		// but do not stall dependents in this model.
		lat = 1 + dtlbExtra
	case isa.IntMul:
		lat = cfg.MulLat
	case isa.IntDiv:
		lat = cfg.DivLat
	case isa.FPArith:
		lat = cfg.FPLat
	case isa.FPDiv:
		lat = cfg.FPDivLat
	default:
		lat = cfg.IntLat
	}
	if lat < 1 {
		lat = 1
	}
	return uint64(lat)
}

func fillLatency(cfg *Config, level int) int {
	if level <= 1 {
		return 0
	}
	return cfg.LoadLat[level]
}

// IPC returns retired instructions per cycle.
func (m *Model) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Insts) / float64(m.Cycles)
}

// FrontStall returns the fraction of cycles lost to front-end events
// (instruction misses, ITLB walks, mispredict redirects).
func (m *Model) FrontStall() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.IMissStall+m.ITLBStall+m.MispredictStall) / float64(m.Cycles)
}

// ilpWindow is the instruction window over which dataflow parallelism
// is measured (matching the modelled ROB capacity).
const ilpWindow = 128

// ILP returns the windowed dataflow parallelism of the observed
// stream: for each 128-instruction window, the window size divided by
// the unit-latency critical-path growth inside it, averaged over the
// run. This is the classic limit-study ILP bounded to a realistic
// scheduling window.
func (m *Model) ILP() float64 {
	windows := m.Insts / ilpWindow
	if windows == 0 || m.chainTotal == 0 {
		return 1
	}
	return float64(windows) * ilpWindow / float64(m.chainTotal)
}

// MLP returns the mean number of overlapping long-latency loads
// observed at long-latency load issue (1.0 if none overlapped).
func (m *Model) MLP() float64 {
	if m.MLPCount == 0 {
		return 1
	}
	return float64(m.MLPSum) / float64(m.MLPCount)
}
