package pipeline

import (
	"testing"

	"repro/internal/sim/isa"
)

func testCfg(inorder bool) Config {
	return Config{
		Name: "test", FetchWidth: 4, CommitWidth: 4, Window: 128,
		InOrder: inorder, MispredictPenalty: 12,
		IntLat: 1, MulLat: 3, DivLat: 20, FPLat: 4, FPDivLat: 22,
		LoadLat: [5]int{0, 4, 10, 38, 190}, ITLBPenalty: 20, DTLBPenalty: 25,
	}
}

func feed(m *Model, n int, build func(i int) isa.Inst, ilevel, dlevel int) {
	for i := 0; i < n; i++ {
		inst := build(i)
		m.Step(&inst, ilevel, dlevel, false, 0, 0)
	}
}

func TestIndependentIntIPCNearWidth(t *testing.T) {
	m := New(testCfg(false))
	feed(m, 10000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: isa.Reg(8 + i%200)}
	}, 1, 0)
	if ipc := m.IPC(); ipc < 3.5 {
		t.Fatalf("independent int stream IPC = %.2f, want near 4", ipc)
	}
}

func TestSerialChainIPCNearOne(t *testing.T) {
	m := New(testCfg(false))
	feed(m, 10000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: 5, Src1: 5}
	}, 1, 0)
	if ipc := m.IPC(); ipc > 1.1 {
		t.Fatalf("serial chain IPC = %.2f, want <= ~1", ipc)
	}
}

func TestMemoryChainBoundByLatency(t *testing.T) {
	m := New(testCfg(false))
	// Dependent loads from memory: IPC ~ 1/190.
	feed(m, 2000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.Load, Dst: 5, Src1: 5, Addr: uint64(i) * 64, Size: 8}
	}, 1, 4)
	if ipc := m.IPC(); ipc > 0.01 {
		t.Fatalf("dependent memory chain IPC = %.4f, want ~1/190", ipc)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	m := New(testCfg(false))
	feed(m, 2000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.Load, Dst: isa.Reg(8 + i%200), Addr: uint64(i) * 64, Size: 8}
	}, 1, 4)
	if ipc := m.IPC(); ipc < 0.3 {
		t.Fatalf("independent memory misses IPC = %.3f, want overlap >> 1/190", ipc)
	}
	if mlp := m.MLP(); mlp < 2 {
		t.Fatalf("MLP = %.1f, want > 2 for overlapping misses", mlp)
	}
}

func TestInOrderSlower(t *testing.T) {
	mk := func(inorder bool) float64 {
		cfg := testCfg(inorder)
		if inorder {
			cfg.FetchWidth, cfg.CommitWidth, cfg.Window = 2, 2, 16
		}
		m := New(cfg)
		feed(m, 5000, func(i int) isa.Inst {
			op := isa.IntAlu
			if i%4 == 0 {
				op = isa.Load
			}
			return isa.Inst{Op: op, Dst: isa.Reg(8 + i%100), Addr: uint64(i * 8), Size: 8}
		}, 1, 2)
		return m.IPC()
	}
	ooo, ino := mk(false), mk(true)
	if ino >= ooo {
		t.Fatalf("in-order IPC %.2f >= out-of-order %.2f", ino, ooo)
	}
}

func TestIMissStallsFetch(t *testing.T) {
	clean := New(testCfg(false))
	feed(clean, 2000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: isa.Reg(8 + i%100)}
	}, 1, 0)
	missy := New(testCfg(false))
	feed(missy, 2000, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: isa.Reg(8 + i%100)}
	}, 3, 0) // every fetch fills from L3
	if missy.IPC() >= clean.IPC()/2 {
		t.Fatalf("I-miss stream IPC %.2f not clearly below clean %.2f", missy.IPC(), clean.IPC())
	}
	if missy.IMissStall == 0 {
		t.Fatal("no I-miss stall recorded")
	}
}

func TestMispredictStall(t *testing.T) {
	m := New(testCfg(false))
	for i := 0; i < 1000; i++ {
		inst := isa.Inst{Op: isa.Branch, Kind: isa.BrCond, PC: uint64(i * 4), Taken: true}
		m.Step(&inst, 1, 0, i%10 == 0, 0, 0)
	}
	if m.MispredictStall == 0 {
		t.Fatal("mispredicts recorded no stall")
	}
	if m.FrontStall() <= 0 || m.FrontStall() > 1 {
		t.Fatalf("front stall ratio %v out of (0,1]", m.FrontStall())
	}
}

func TestCyclesMonotonic(t *testing.T) {
	m := New(testCfg(false))
	last := uint64(0)
	for i := 0; i < 1000; i++ {
		inst := isa.Inst{Op: isa.IntAlu, Dst: isa.Reg(8 + i%100)}
		m.Step(&inst, 1, 0, false, 0, 0)
		if m.Cycles < last {
			t.Fatalf("cycles went backwards at %d", i)
		}
		last = m.Cycles
	}
}

func TestILPWindowed(t *testing.T) {
	wide := New(testCfg(false))
	feed(wide, 12800, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: isa.Reg(8 + i%200)}
	}, 1, 0)
	serial := New(testCfg(false))
	feed(serial, 12800, func(i int) isa.Inst {
		return isa.Inst{Op: isa.IntAlu, Dst: 5, Src1: 5}
	}, 1, 0)
	if wide.ILP() <= serial.ILP() {
		t.Fatalf("ILP(wide)=%.1f <= ILP(serial)=%.1f", wide.ILP(), serial.ILP())
	}
	if s := serial.ILP(); s > 1.5 {
		t.Fatalf("serial ILP = %.2f, want ~1", s)
	}
}

func TestDTLBExtraAddsLatency(t *testing.T) {
	a := New(testCfg(false))
	b := New(testCfg(false))
	for i := 0; i < 2000; i++ {
		inst := isa.Inst{Op: isa.Load, Dst: 5, Src1: 5, Addr: uint64(i * 8), Size: 8}
		a.Step(&inst, 1, 1, false, 0, 0)
		inst2 := inst
		b.Step(&inst2, 1, 1, false, 0, 25)
	}
	if b.IPC() >= a.IPC() {
		t.Fatalf("DTLB walks did not slow the chain: %.3f >= %.3f", b.IPC(), a.IPC())
	}
}
