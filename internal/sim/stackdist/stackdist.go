// Package stackdist implements Mattson-style per-set LRU stack-distance
// accounting over the packed access streams the block decoder already
// produces (cache.Rec). One pass over a stream yields a reuse-depth
// histogram per set count, from which the exact miss count of *every*
// associativity up to the tracked depth follows arithmetically:
//
//	Misses(W) = Σ_{d >= W} hist[d]
//
// because a W-way true-LRU set-associative cache hits an access exactly
// when the line is among the W most recently touched distinct lines of
// its set (LRU's inclusion property), i.e. when its per-set stack depth
// is < W. The concrete cache.Cache model satisfies this precisely: its
// LRU stamps are strictly increasing (no ties among valid ways) and
// invalid ways fill before any victim is chosen (stamp 0 is older than
// any real stamp), so its resident set is always the W most recent
// distinct lines and its integer Accesses/Misses counters — and hence
// the float64 miss ratios — match this accounting bit for bit.
package stackdist

import (
	"fmt"

	"repro/internal/sim/cache"
)

// compressBytes is the tag-slab size past which AccessBlock groups each
// block's records by set before replaying them (see accessGrouped): for
// stacks much larger than the cache hierarchy the per-record set is
// effectively a random slab line, so grouping turns one cache miss per
// record into one per touched set, and repeats of a set's hottest line
// inside the block fold into a counter bump with no stack walk at all.
const compressBytes = 1 << 19

// Stack tracks the LRU stack distance of every access for one set
// count. The depth bounds how far a line's reuse is tracked: a reuse
// deeper than depth lands in the overflow bucket and counts as a miss
// for every associativity ≤ depth, which is exactly what a cache with
// at most depth ways would see. One Stack therefore answers Misses(W)
// for every W in [1, depth].
//
// A Stack is not safe for concurrent use; sweeps give every (view, set
// count) pair its own Stack and fan those out instead.
type Stack struct {
	sets  uint64
	depth int
	pow2  bool
	mask  uint64

	// slab holds the per-set stacks back to back: set s occupies
	// slab[s*depth : (s+1)*depth], most recent first. Entries are
	// line+1 so the zero value means "empty slot"; empty slots only
	// ever trail the valid entries of a set.
	slab []uint64

	// hist[d] counts accesses whose line was found at stack depth d;
	// hist[depth] counts accesses not found within depth (cold or
	// too-deep reuse — a miss for every tracked associativity).
	hist     []uint64
	accesses uint64

	// compress gates the per-block set-grouping path; set by New from
	// the slab size, overridable in tests.
	compress bool

	// Grouping scratch, reused across blocks: next chains records of
	// the same set in stream order; tab/tabGen is an epoch-stamped
	// open-addressing map from set to group index.
	next   []int32
	groups []group
	tab    []int32
	tabGen []uint32
	gen    uint32
}

type group struct {
	set        uint64
	head, tail int32
}

// New returns a Stack over the given set count, tracking reuse to the
// given depth (the largest associativity it can answer for).
func New(sets, depth int) *Stack {
	if sets < 1 {
		panic(fmt.Sprintf("stackdist: %d sets", sets))
	}
	if depth < 1 {
		panic(fmt.Sprintf("stackdist: depth %d", depth))
	}
	s := &Stack{
		sets:  uint64(sets),
		depth: depth,
		pow2:  sets&(sets-1) == 0,
		mask:  uint64(sets - 1),
		slab:  make([]uint64, sets*depth),
		hist:  make([]uint64, depth+1),
	}
	s.compress = len(s.slab)*8 >= compressBytes
	return s
}

// Sets returns the set count. Depth returns the tracked stack depth.
func (s *Stack) Sets() int  { return int(s.sets) }
func (s *Stack) Depth() int { return s.depth }

func (s *Stack) setOf(line uint64) uint64 {
	if s.pow2 {
		return line & s.mask
	}
	return line % s.sets
}

// Access records one access to line plus run immediate same-line
// repeats (the packed merged-run convention: repeats are depth-0 hits
// by construction, matching cache.AccessBlock's run retirement).
func (s *Stack) Access(line, run uint64) {
	depth := uint64(s.depth)
	base := s.setOf(line) * depth
	s.access(s.slab[base:base+depth], line, run)
}

// access replays one record against a single set's stack st.
func (s *Stack) access(st []uint64, line, run uint64) {
	tag := line + 1
	s.accesses += run + 1
	if st[0] == tag {
		s.hist[0] += run + 1
		return
	}
	s.hist[0] += run
	prev := st[0]
	st[0] = tag
	d := s.depth
	for i := 1; i < s.depth; i++ {
		cur := st[i]
		st[i] = prev
		if cur == tag {
			d = i
			break
		}
		if cur == 0 {
			break // trailing empties: the line is cold, d stays depth
		}
		prev = cur
	}
	s.hist[d]++
}

// AccessBlock replays one block's packed records. For large slabs the
// records are first grouped by set (order within a set preserved) —
// per-set LRU state depends only on that set's subsequence and the
// histogram is a commutative sum, so the totals are identical to the
// in-order replay for every input.
func (s *Stack) AccessBlock(recs []cache.Rec) {
	if len(recs) == 0 {
		return
	}
	if s.compress && len(recs) > 1 {
		s.accessGrouped(recs)
		return
	}
	depth := uint64(s.depth)
	for _, rec := range recs {
		line := cache.RecLine(rec)
		base := s.setOf(line) * depth
		s.access(s.slab[base:base+depth], line, cache.RecRun(rec))
	}
}

// accessGrouped is the compressed large-slab path: chain the block's
// records per set, then drain set by set so each per-set stack is
// loaded once per block instead of once per record, with same-line
// repeats inside the block folding through the MRU fast path.
func (s *Stack) accessGrouped(recs []cache.Rec) {
	need := 1
	for need < 2*len(recs) {
		need <<= 1
	}
	if len(s.tab) < need {
		s.tab = make([]int32, need)
		s.tabGen = make([]uint32, need)
	}
	s.gen++
	if s.gen == 0 { // epoch counter wrapped: reset the stamps once
		for i := range s.tabGen {
			s.tabGen[i] = 0
		}
		s.gen = 1
	}
	gen := s.gen
	mask := uint32(len(s.tab) - 1)
	if cap(s.next) < len(recs) {
		s.next = make([]int32, len(recs))
	}
	next := s.next[:len(recs)]
	s.groups = s.groups[:0]
	for i, rec := range recs {
		next[i] = -1
		set := s.setOf(cache.RecLine(rec))
		h := uint32((set*0x9E3779B97F4A7C15)>>32) & mask
		for {
			if s.tabGen[h] != gen {
				s.tabGen[h] = gen
				s.tab[h] = int32(len(s.groups))
				s.groups = append(s.groups, group{set: set, head: int32(i), tail: int32(i)})
				break
			}
			if g := &s.groups[s.tab[h]]; g.set == set {
				next[g.tail] = int32(i)
				g.tail = int32(i)
				break
			}
			h = (h + 1) & mask
		}
	}
	depth := uint64(s.depth)
	for gi := range s.groups {
		g := &s.groups[gi]
		base := g.set * depth
		st := s.slab[base : base+depth]
		for idx := g.head; idx >= 0; idx = next[idx] {
			rec := recs[idx]
			s.access(st, cache.RecLine(rec), cache.RecRun(rec))
		}
	}
}

// Accesses returns the total accesses recorded (merged runs included).
func (s *Stack) Accesses() uint64 { return s.accesses }

// Misses returns the exact miss count a ways-associative true-LRU
// cache with this set count would report over the recorded stream.
// ways must be in [1, Depth()].
func (s *Stack) Misses(ways int) uint64 {
	if ways < 1 || ways > s.depth {
		panic(fmt.Sprintf("stackdist: Misses(%d) outside tracked depth %d", ways, s.depth))
	}
	var m uint64
	for _, h := range s.hist[ways:] {
		m += h
	}
	return m
}

// MissRatio returns Misses(ways)/Accesses as the concrete cache model
// computes it — the same integer counts through the same float64
// division, so the ratios are bit-identical (0 when never accessed).
func (s *Stack) MissRatio(ways int) float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.Misses(ways)) / float64(s.accesses)
}

// Hist returns a copy of the reuse-depth histogram: Hist()[d] counts
// accesses hitting at depth d for d < Depth(); Hist()[Depth()] counts
// accesses not found within the tracked depth.
func (s *Stack) Hist() []uint64 {
	return append([]uint64(nil), s.hist...)
}
