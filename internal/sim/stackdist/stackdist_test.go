package stackdist

import (
	"math/rand"
	"testing"

	"repro/internal/sim/cache"
)

// synthStream packs a pseudo-random access stream the way the block
// decoder does: lines drawn from a small working set with bursts of
// sequential reuse, consecutive same-line accesses merged into runs.
func synthStream(r *rand.Rand, n, lineSpan int) []cache.Rec {
	var recs []cache.Rec
	line := uint64(r.Intn(lineSpan))
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1, 2: // revisit the current line (forms runs)
		case 3, 4, 5, 6:
			line = uint64(r.Intn(lineSpan))
		default:
			line++
		}
		write := r.Intn(4) == 0
		if len(recs) == 0 || !cache.TryMerge(&recs[len(recs)-1], line, write) {
			recs = append(recs, cache.PackRec(line, write))
		}
	}
	return recs
}

// replayCache counts (accesses, misses) of a concrete ways-associative
// LRU cache with the given set count over the packed stream.
func replayCache(sets, ways int, blocks [][]cache.Rec) (uint64, uint64) {
	c := cache.New(cache.Config{
		Name: "ref", Size: sets * ways * 64, Ways: ways, LineSize: 64, Latency: 1,
	})
	for _, b := range blocks {
		c.AccessBlock(b)
	}
	return c.Accesses, c.Misses
}

// TestStackMatchesCache is the core differential: for every (sets,
// ways) combination — powers of two and not — the stack's Misses(W)
// must equal the concrete cache model's fill count exactly, and the
// MissRatio must be bit-identical.
func TestStackMatchesCache(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var blocks [][]cache.Rec
	for i := 0; i < 6; i++ {
		blocks = append(blocks, synthStream(r, 3000, 4096))
	}
	for _, sets := range []int{1, 2, 7, 16, 96, 128, 1000, 4096} {
		for _, depth := range []int{1, 2, 16} {
			s := New(sets, depth)
			for _, b := range blocks {
				s.AccessBlock(b)
			}
			for ways := 1; ways <= depth; ways++ {
				wantA, wantM := replayCache(sets, ways, blocks)
				if s.Accesses() != wantA {
					t.Fatalf("sets=%d ways=%d: accesses %d, cache %d", sets, ways, s.Accesses(), wantA)
				}
				if got := s.Misses(ways); got != wantM {
					t.Errorf("sets=%d depth=%d ways=%d: misses %d, cache %d", sets, depth, ways, got, wantM)
				}
				wantRatio := float64(wantM) / float64(wantA)
				if got := s.MissRatio(ways); got != wantRatio {
					t.Errorf("sets=%d ways=%d: ratio %v, cache %v", sets, ways, got, wantRatio)
				}
			}
		}
	}
}

// TestGroupedMatchesInOrder forces both AccessBlock paths over the
// same streams and requires identical histograms: set grouping must be
// invisible in the totals, whatever the block size (including tiny
// tails and single-record blocks).
func TestGroupedMatchesInOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	stream := synthStream(r, 20000, 1<<16)
	for _, sets := range []int{64, 1000, 8192} {
		plain := New(sets, 16)
		plain.compress = false
		grouped := New(sets, 16)
		grouped.compress = true
		for _, blockLen := range []int{1, 3, 117, 4096} {
			for off := 0; off < len(stream); off += blockLen {
				end := off + blockLen
				if end > len(stream) {
					end = len(stream)
				}
				plain.AccessBlock(stream[off:end])
				grouped.AccessBlock(stream[off:end])
			}
		}
		if plain.Accesses() != grouped.Accesses() {
			t.Fatalf("sets=%d: accesses %d vs %d", sets, plain.Accesses(), grouped.Accesses())
		}
		ph, gh := plain.Hist(), grouped.Hist()
		for d := range ph {
			if ph[d] != gh[d] {
				t.Errorf("sets=%d: hist[%d] %d vs %d", sets, d, ph[d], gh[d])
			}
		}
	}
}

// TestMergedRuns checks the packed-run convention directly: a run's
// extra accesses are depth-0 hits, never misses.
func TestMergedRuns(t *testing.T) {
	s := New(4, 2)
	rec := cache.PackRec(5, false)
	for i := 0; i < 9; i++ {
		if !cache.TryMerge(&rec, 5, true) {
			t.Fatal("merge failed")
		}
	}
	s.AccessBlock([]cache.Rec{rec})
	if s.Accesses() != 10 {
		t.Fatalf("accesses %d, want 10", s.Accesses())
	}
	if got := s.Misses(1); got != 1 {
		t.Fatalf("misses %d, want 1 (cold fill only)", got)
	}
	if h := s.Hist(); h[0] != 9 {
		t.Fatalf("hist[0] %d, want 9", h[0])
	}
}

// TestHistogramShape checks the defining identities: Misses is
// non-increasing in ways, bounded by accesses, and Misses(1) + hits at
// depth 0 = accesses.
func TestHistogramShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := New(128, 16)
	s.AccessBlock(synthStream(r, 30000, 1<<14))
	prev := s.Accesses() + 1
	for ways := 1; ways <= 16; ways++ {
		m := s.Misses(ways)
		if m > s.Accesses() {
			t.Fatalf("ways=%d: misses %d > accesses %d", ways, m, s.Accesses())
		}
		if m > prev {
			t.Fatalf("ways=%d: misses %d increased from %d", ways, m, prev)
		}
		prev = m
	}
	if got := s.Misses(1) + s.Hist()[0]; got != s.Accesses() {
		t.Fatalf("misses(1)+hist[0] = %d, want %d", got, s.Accesses())
	}
}

// TestAccessMatchesAccessBlock pins the serial entry point to the
// block path.
func TestAccessMatchesAccessBlock(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	stream := synthStream(r, 5000, 1<<12)
	a, b := New(96, 8), New(96, 8)
	for _, rec := range stream {
		a.Access(cache.RecLine(rec), cache.RecRun(rec))
	}
	b.AccessBlock(stream)
	if a.Accesses() != b.Accesses() {
		t.Fatalf("accesses %d vs %d", a.Accesses(), b.Accesses())
	}
	ah, bh := a.Hist(), b.Hist()
	for d := range ah {
		if ah[d] != bh[d] {
			t.Errorf("hist[%d]: %d vs %d", d, ah[d], bh[d])
		}
	}
}
