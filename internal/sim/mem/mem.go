// Package mem models the simulated flat address space shared by a
// workload, its software stack and the micro-architecture models.
//
// Nothing is ever stored at these addresses: the workload kernels keep
// their real data in ordinary Go values and use mem to assign each
// object a stable simulated address, so that the cache, TLB and
// footprint models observe realistic address streams (sequential scans
// over record buffers, pointer-chasing through simulated heap objects,
// code fetches spread over framework text segments).
package mem

// Geometry constants of the simulated machine.
const (
	// PageSize is the virtual memory page size (4 KB, matching the
	// paper's testbed kernel configuration).
	PageSize = 4096
	// LineSize is the cache line size at every level (64 B, Xeon E5645).
	LineSize = 64
)

// Address-space layout. The segments are widely separated so that code,
// heap and stack can never alias.
const (
	// CodeBase is the bottom of the text segment.
	CodeBase uint64 = 0x0000_0000_0040_0000
	// CodeLimit bounds total simulated code (32 MB is ample for the
	// largest stack plus kernels plus libraries).
	CodeLimit uint64 = CodeBase + 32<<20
	// HeapBase is the bottom of the simulated heap.
	HeapBase uint64 = 0x0000_0001_0000_0000
	// HeapLimit bounds the simulated heap (16 GB of address space).
	HeapLimit uint64 = HeapBase + 16<<30
	// StackBase is the top of the simulated stack region (grows down).
	StackBase uint64 = 0x0000_7FFF_FF00_0000
)

// Layout is a bump allocator over the simulated address space.
// Each workload run owns one Layout; it is not safe for concurrent use.
type Layout struct {
	codeNext uint64
	heapNext uint64
}

// NewLayout returns an empty address-space layout.
func NewLayout() *Layout {
	return &Layout{codeNext: CodeBase, heapNext: HeapBase}
}

// Code reserves size bytes of text segment, aligned to a cache line,
// and returns the base address. It panics if the text segment is
// exhausted, which indicates a misconfigured stack model.
func (l *Layout) Code(size uint64) uint64 {
	base := align(l.codeNext, LineSize)
	if base+size > CodeLimit {
		panic("mem: text segment exhausted")
	}
	l.codeNext = base + size
	return base
}

// CodeUsed returns the number of text-segment bytes reserved so far.
func (l *Layout) CodeUsed() uint64 { return l.codeNext - CodeBase }

// Alloc reserves size bytes of heap, 16-byte aligned, and returns the
// base address. It panics when the simulated heap is exhausted.
func (l *Layout) Alloc(size uint64) uint64 {
	base := align(l.heapNext, 16)
	if base+size > HeapLimit {
		panic("mem: simulated heap exhausted")
	}
	l.heapNext = base + size
	return base
}

// AllocArray reserves an array of n elements of elem bytes each,
// aligned so that element 0 starts on a cache line, and returns the
// base address. Element i lives at base + uint64(i)*elem.
func (l *Layout) AllocArray(n int, elem uint64) uint64 {
	base := align(l.heapNext, LineSize)
	size := uint64(n) * elem
	if base+size > HeapLimit {
		panic("mem: simulated heap exhausted")
	}
	l.heapNext = base + size
	return base
}

// HeapUsed returns the number of heap bytes reserved so far.
func (l *Layout) HeapUsed() uint64 { return l.heapNext - HeapBase }

// LineOf returns the cache-line index of addr.
func LineOf(addr uint64) uint64 { return addr / LineSize }

// PageOf returns the page number of addr.
func PageOf(addr uint64) uint64 { return addr / PageSize }

func align(x, a uint64) uint64 {
	return (x + a - 1) &^ (a - 1)
}
