package mem

import (
	"testing"
	"testing/quick"
)

func TestLayoutSeparation(t *testing.T) {
	l := NewLayout()
	c := l.Code(1 << 20)
	h := l.Alloc(1 << 20)
	if c < CodeBase || c+1<<20 > CodeLimit {
		t.Fatalf("code allocation %#x outside text segment", c)
	}
	if h < HeapBase || h+1<<20 > HeapLimit {
		t.Fatalf("heap allocation %#x outside heap", h)
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		l := NewLayout()
		type region struct{ base, size uint64 }
		var regions []region
		for _, s := range sizes {
			size := uint64(s) + 1
			base := l.Alloc(size)
			for _, r := range regions {
				if base < r.base+r.size && r.base < base+size {
					return false
				}
			}
			regions = append(regions, region{base, size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeAllocationsDisjointAndAligned(t *testing.T) {
	l := NewLayout()
	a := l.Code(100)
	b := l.Code(100)
	if a%LineSize != 0 || b%LineSize != 0 {
		t.Fatal("code allocations not line aligned")
	}
	if b < a+100 {
		t.Fatal("code allocations overlap")
	}
}

func TestAllocArrayAlignment(t *testing.T) {
	l := NewLayout()
	base := l.AllocArray(100, 8)
	if base%LineSize != 0 {
		t.Fatalf("array base %#x not line aligned", base)
	}
}

func TestUsageCounters(t *testing.T) {
	l := NewLayout()
	l.Code(4096)
	l.Alloc(8192)
	if l.CodeUsed() < 4096 {
		t.Fatalf("CodeUsed = %d", l.CodeUsed())
	}
	if l.HeapUsed() < 8192 {
		t.Fatalf("HeapUsed = %d", l.HeapUsed())
	}
}

func TestExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("text exhaustion did not panic")
		}
	}()
	l := NewLayout()
	l.Code(CodeLimit - CodeBase + 1)
}

func TestLineAndPageHelpers(t *testing.T) {
	if LineOf(127) != 1 || LineOf(128) != 2 {
		t.Fatal("LineOf wrong")
	}
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf wrong")
	}
}
