// Package isa defines the micro-operation vocabulary of the simulated
// machine: the dynamic instruction record that instrumented workload
// kernels emit and that the micro-architecture models consume.
//
// The vocabulary mirrors the categories the paper reports on: loads,
// stores, branches, integer operations (further split into integer
// address calculation, floating-point address calculation and other
// integer computation, cf. Fig. 2 of the paper) and floating-point
// arithmetic.
package isa

// Op is the class of a dynamic instruction.
type Op uint8

const (
	// Nop is a scheduling bubble (rare; used for alignment padding).
	Nop Op = iota
	// Load reads Size bytes from Addr.
	Load
	// Store writes Size bytes to Addr.
	Store
	// Branch is any control transfer; see Kind.
	Branch
	// IntAlu is general integer computation (compare, logic, add).
	IntAlu
	// IntAddr is integer address calculation for an integer-array or
	// pointer access. The paper's Fig. 2 reports 64% of integer
	// instructions in big data workloads fall in this class.
	IntAddr
	// FPAddr is integer address calculation feeding a floating-point
	// array access (18% of integer instructions in Fig. 2).
	FPAddr
	// IntMul is integer multiply.
	IntMul
	// IntDiv is integer divide.
	IntDiv
	// FPArith is floating point add/sub/mul (counted as FLOPs).
	FPArith
	// FPDiv is floating point divide/sqrt (counted as FLOPs).
	FPDiv
	numOps
)

// NumOps is the number of distinct op classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	"nop", "load", "store", "branch", "int", "int-addr", "fp-addr",
	"int-mul", "int-div", "fp", "fp-div",
}

// String returns the lower-case mnemonic of the op class.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return "op?"
}

// IsInteger reports whether the op retires as an integer instruction
// (the paper's "integer" mix class: ALU, address calculation, mul, div).
func (o Op) IsInteger() bool {
	switch o {
	case IntAlu, IntAddr, FPAddr, IntMul, IntDiv:
		return true
	}
	return false
}

// IsFP reports whether the op retires as a floating-point instruction.
func (o Op) IsFP() bool { return o == FPArith || o == FPDiv }

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// BranchKind distinguishes control-transfer flavours; the branch
// predictors treat them differently (cf. paper Table 4: conditional
// jumps vs. indirect jumps and calls).
type BranchKind uint8

const (
	// BrNone marks a non-branch instruction.
	BrNone BranchKind = iota
	// BrCond is a conditional direct branch.
	BrCond
	// BrUncond is an unconditional direct jump.
	BrUncond
	// BrCall is a direct call.
	BrCall
	// BrRet is a return.
	BrRet
	// BrIndirectCall is an indirect call (virtual dispatch).
	BrIndirectCall
	// BrIndirectJump is an indirect jump (switch tables).
	BrIndirectJump
)

var brNames = []string{"none", "cond", "jmp", "call", "ret", "icall", "ijmp"}

// String returns the mnemonic of the branch kind.
func (k BranchKind) String() string {
	if int(k) < len(brNames) {
		return brNames[k]
	}
	return "br?"
}

// Reg identifies an architectural register in the dataflow model.
// Register 0 is the hard-wired "no dependency" register: its value is
// always ready, like the RISC zero register.
type Reg uint8

// NoReg is the always-ready register used when an operand carries no
// dependency.
const NoReg Reg = 0

// NumRegs is the size of the register file tracked by the pipeline
// models.
const NumRegs = 256

// Inst is one dynamic instruction. Emitters reuse a single Inst value;
// consumers must not retain the pointer across calls.
type Inst struct {
	// PC is the instruction address. All instructions are 4 bytes.
	PC uint64
	// Addr is the data address for Load/Store.
	Addr uint64
	// Target is the branch target for Branch.
	Target uint64
	// Op is the instruction class.
	Op Op
	// Kind is the branch flavour (BrNone unless Op == Branch).
	Kind BranchKind
	// Taken is the architectural outcome of a conditional branch;
	// unconditional transfers are always taken.
	Taken bool
	// Size is the access size in bytes for Load/Store.
	Size uint8
	// Dst is the destination register (NoReg for stores/branches).
	Dst Reg
	// Src1, Src2 are source registers (NoReg when absent).
	Src1, Src2 Reg
}

// InstBytes is the (fixed) instruction encoding size in bytes.
const InstBytes = 4
