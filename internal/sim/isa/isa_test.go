package isa

import "testing"

func TestOpClassification(t *testing.T) {
	intOps := []Op{IntAlu, IntAddr, FPAddr, IntMul, IntDiv}
	for _, op := range intOps {
		if !op.IsInteger() {
			t.Errorf("%v not classified as integer", op)
		}
		if op.IsFP() || op.IsMem() {
			t.Errorf("%v misclassified as FP or mem", op)
		}
	}
	for _, op := range []Op{FPArith, FPDiv} {
		if !op.IsFP() || op.IsInteger() {
			t.Errorf("%v FP classification wrong", op)
		}
	}
	for _, op := range []Op{Load, Store} {
		if !op.IsMem() || op.IsInteger() || op.IsFP() {
			t.Errorf("%v mem classification wrong", op)
		}
	}
	if Branch.IsInteger() || Branch.IsFP() || Branch.IsMem() {
		t.Error("branch misclassified")
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" || op.String() == "op?" {
			t.Errorf("op %d has no name", op)
		}
	}
	if Op(200).String() != "op?" {
		t.Error("out-of-range op name")
	}
}

func TestBranchKindStrings(t *testing.T) {
	kinds := []BranchKind{BrNone, BrCond, BrUncond, BrCall, BrRet, BrIndirectCall, BrIndirectJump}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "br?" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestNoRegIsZero(t *testing.T) {
	if NoReg != 0 {
		t.Fatal("NoReg must be register 0 (the always-ready register)")
	}
}
